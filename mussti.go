// Package mussti is the public API of the MUSS-TI reproduction: a
// multi-level shuttle-scheduling compiler for entanglement-module-linked
// trapped-ion (EML-QCCD) devices, after Wu et al., MICRO 2025.
//
// Every compiler — MUSS-TI and the paper's three baselines — implements the
// Compiler interface and lives in a process-wide registry under a stable
// name ("mussti", "murali", "dai", "mqt"). A Compiler schedules a Circuit
// onto any Target machine (an EML-QCCD *Device or a monolithic QCCD *Grid)
// under one shared CompileConfig, and reports one unified *Result.
//
// A minimal session:
//
//	c := mussti.Benchmark("QFT_n32")              // or build a Circuit by hand
//	dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
//	comp, _ := mussti.LookupCompiler("mussti")
//	res, err := comp.Compile(ctx, c, dev, nil)    // nil config = paper defaults
//	fmt.Println(res.Metrics.Shuttles, res.Metrics.Fidelity.Log10())
//
// Tweak a knob with the functional options layered over the defaults:
//
//	cfg := mussti.NewCompileConfig(mussti.WithLookAhead(6))
//	res, err = comp.Compile(ctx, c, dev, cfg)
//
// Or compare every registered compiler on one machine:
//
//	g, _ := mussti.NewGrid(2, 3, 8)
//	for _, comp := range mussti.Compilers() {
//		res, err := comp.Compile(ctx, c, g, nil)
//		...
//	}
//
// Out-of-tree compilers join through RegisterCompiler and automatically
// appear in every experiment, the measurement cache and CSV output of the
// harness. The pre-registry entry points (Compile, CompileContext,
// CompileBaseline, CompileBaselineContext) remain as deprecated wrappers
// with unchanged behaviour.
//
// The package re-exports the stable parts of the internal packages:
// circuit construction (Circuit, Gate), benchmark generators, EML-QCCD and
// grid architectures, the physics model, the compiler registry, and the
// experiment harness that regenerates every table and figure of the paper.
package mussti

import (
	"context"
	"io"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/circuit"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
	"mussti/internal/dist"
	"mussti/internal/eval"
	"mussti/internal/physics"
	"mussti/internal/service"
	"mussti/internal/sim"
)

// Circuit is the quantum-circuit IR: an ordered gate list over n qubits.
type Circuit = circuit.Circuit

// Gate is a single circuit operation.
type Gate = circuit.Gate

// Kind tags a gate's operation.
type Kind = circuit.Kind

// Re-exported gate kinds (the full set lives in internal/circuit).
const (
	KindH       = circuit.KindH
	KindX       = circuit.KindX
	KindRZ      = circuit.KindRZ
	KindMS      = circuit.KindMS
	KindCX      = circuit.KindCX
	KindCZ      = circuit.KindCZ
	KindCP      = circuit.KindCP
	KindSwap    = circuit.KindSwap
	KindMeasure = circuit.KindMeasure
)

// NewCircuit returns an empty named circuit over n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// ParseQASM reads an OpenQASM 2.0 subset (QASMBench-style files).
func ParseQASM(name string, r io.Reader) (*Circuit, error) { return circuit.ParseQASM(name, r) }

// LowerToNative rewrites a circuit into the trapped-ion native gate set:
// Mølmer–Sørensen entangling gates plus one-qubit rotations (SWAP becomes
// three MS gates — the identity behind the paper's T≥3 threshold).
func LowerToNative(c *Circuit) *Circuit { return circuit.LowerToNative(c) }

// OptimizeOneQubit cancels and merges adjacent one-qubit gates; two-qubit
// gates and measurements act as barriers.
func OptimizeOneQubit(c *Circuit) *Circuit { return circuit.OptimizeOneQubit(c) }

// Benchmark builds a paper benchmark by its table name, e.g. "Adder_n32",
// "SQRT_n299". It panics on unknown names; use BenchmarkByName for errors.
//
// Generation is deterministic and memoized internally; the returned
// circuit is a private copy the caller may freely mutate.
func Benchmark(name string) *Circuit { return bench.MustByName(name).Clone() }

// BenchmarkByName builds a paper benchmark, returning an error for unknown
// or malformed names. Like Benchmark, it returns a private copy backed by
// the internal memoized cache.
func BenchmarkByName(name string) (*Circuit, error) {
	c, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return c.Clone(), nil
}

// BenchmarkFamilies lists the supported generator families.
func BenchmarkFamilies() []string { return bench.Families() }

// Device is an EML-QCCD machine; Grid is the monolithic baseline lattice.
type (
	Device       = arch.Device
	DeviceConfig = arch.Config
	Grid         = arch.Grid
	Zone         = arch.Zone
	Level        = arch.Level
)

// Zone levels of the EML-QCCD hierarchy.
const (
	LevelStorage   = arch.LevelStorage
	LevelOperation = arch.LevelOperation
	LevelOptical   = arch.LevelOptical
)

// DeviceConfigFor returns the paper's standard configuration sized for n
// qubits (modules in 2×2 blocks, trap capacity 16, 4 optical ports).
func DeviceConfigFor(n int) DeviceConfig { return arch.DefaultConfig(n) }

// NewDevice builds an EML-QCCD device, panicking on invalid configs; use
// NewDeviceErr when the config comes from user input.
func NewDevice(cfg DeviceConfig) *Device { return arch.MustNew(cfg) }

// NewDeviceErr builds an EML-QCCD device.
func NewDeviceErr(cfg DeviceConfig) (*Device, error) { return arch.New(cfg) }

// NewGrid builds a rows×cols baseline QCCD grid.
func NewGrid(rows, cols, capacity int) (*Grid, error) { return arch.NewGrid(rows, cols, capacity) }

// Physics model (Table 1 of the paper).
type PhysicsParams = physics.Params

// DefaultPhysics returns the Table-1 parameters.
func DefaultPhysics() PhysicsParams { return physics.Default() }

// Compiler types.
type (
	// Compiler is a nameable compilation strategy: it schedules a Circuit
	// onto a Target and reports a unified *Result. The four built-ins
	// register as "mussti", "murali", "dai" and "mqt"; out-of-tree
	// compilers join through RegisterCompiler.
	Compiler = core.Compiler
	// Target is a machine a compiler can schedule onto; *Device and *Grid
	// both implement it.
	Target = arch.Target
	// CompileConfig is the one configuration type shared by every
	// compiler: each reads the fields it understands (zero fields mean
	// "this compiler's default") and ignores the rest.
	CompileConfig = core.CompileConfig
	// CompileOption mutates a CompileConfig; see NewCompileConfig.
	CompileOption = core.CompileOption
	// DisplayNamer is optionally implemented by compilers whose
	// human-facing label differs from their registry name; see
	// CompilerLabel.
	DisplayNamer = core.DisplayNamer
	// ConfigDefaulter is optionally implemented by compilers whose
	// paper-default configuration differs from the zero CompileConfig.
	ConfigDefaulter = core.ConfigDefaulter
	// TargetSupporter is optionally implemented by compilers restricted to
	// certain machine shapes (the grid-only baselines implement it), so
	// harnesses — including the experiment runner's -compilers path — can
	// skip an incompatible compiler with a note instead of failing a whole
	// experiment mid-run. Compile must still reject unsupported targets
	// itself; this is advisory.
	TargetSupporter = core.TargetSupporter
	// Options configures a MUSS-TI compilation.
	//
	// Deprecated: Options is the pre-registry name of CompileConfig.
	Options = core.Options
	// ReplacementPolicy selects the conflict-handling victim policy.
	ReplacementPolicy = core.ReplacementPolicy
	// Result is a compilation outcome (metrics + mappings + trace), shared
	// by every compiler behind the Compiler interface.
	Result = core.Result
	// SchedStats counts the scheduler's per-mechanism decisions.
	SchedStats = core.SchedStats
	// Metrics aggregates shuttles, times and fidelity for one run.
	Metrics = sim.Metrics
	// MappingStrategy selects the initial placement.
	MappingStrategy = core.MappingStrategy
)

// RegisterCompiler adds a compiler to the process-wide registry; it errors
// on an empty or already-taken name. Registered compilers resolve through
// LookupCompiler and automatically appear in every experiment, the
// measurement cache and CSV output.
func RegisterCompiler(c Compiler) error { return core.RegisterCompiler(c) }

// LookupCompiler returns the registered compiler with the given name
// ("mussti", "murali", "dai", "mqt", or an out-of-tree registration).
func LookupCompiler(name string) (Compiler, error) { return core.LookupCompiler(name) }

// Compilers returns the registered compilers in registration order (the
// built-ins first: mussti, murali, dai, mqt). The slice is a copy.
func Compilers() []Compiler { return core.Compilers() }

// CompilerNames returns the registered compiler names in registration order.
func CompilerNames() []string { return core.CompilerNames() }

// CompilerLabel returns a compiler's human-facing label — the paper's table
// names ("MUSS-TI", "QCCD-Murali", ...) for the built-ins, Name() otherwise.
func CompilerLabel(c Compiler) string { return core.CompilerLabel(c) }

// SupportsTarget reports whether the compiler declares support for the
// target's machine shape (via TargetSupporter); compilers that don't
// implement it are assumed to support anything and error from Compile if
// not. Use it to pre-filter a compiler set before a sweep.
func SupportsTarget(c Compiler, t Target) bool { return core.SupportsTarget(c, t) }

// NewCompileConfig returns the paper's default configuration with the given
// functional options applied, e.g.
// NewCompileConfig(WithLookAhead(6), WithTrace()).
func NewCompileConfig(opts ...CompileOption) *CompileConfig { return core.NewCompileConfig(opts...) }

// Functional options for NewCompileConfig.
var (
	// WithMapping selects the initial-placement strategy.
	WithMapping = core.WithMapping
	// WithSwapInsertion toggles the §3.3 inter-module SWAP insertion.
	WithSwapInsertion = core.WithSwapInsertion
	// WithLookAhead sets the look-ahead window k in DAG layers.
	WithLookAhead = core.WithLookAhead
	// WithSwapThreshold sets the SWAP-insertion weight threshold T.
	WithSwapThreshold = core.WithSwapThreshold
	// WithPhysics sets the physics model.
	WithPhysics = core.WithPhysics
	// WithTrace enables op-level trace recording.
	WithTrace = core.WithTrace
	// WithReplacement selects the conflict-handling victim policy.
	WithReplacement = core.WithReplacement
	// WithObserver attaches per-step progress callbacks.
	WithObserver = core.WithObserver
	// WithRoutingLookAhead toggles the routing attraction term.
	WithRoutingLookAhead = core.WithRoutingLookAhead
	// WithParallelism bounds how many scheduling passes one compile may run
	// concurrently (default 1: sequential; output is byte-identical at any
	// setting).
	WithParallelism = core.WithParallelism
)

// Initial-mapping strategies (§3.4 of the paper).
const (
	MappingTrivial = core.MappingTrivial
	MappingSABRE   = core.MappingSABRE
)

// Replacement policies for the conflict-handling ablation; the default
// zero value is the paper's LRU scheduler.
const (
	ReplaceLRU    = core.ReplaceLRU
	ReplaceFIFO   = core.ReplaceFIFO
	ReplaceRandom = core.ReplaceRandom
	ReplaceBelady = core.ReplaceBelady
)

// DefaultOptions is the paper's headline configuration: SABRE mapping plus
// SWAP insertion with k=8 and T=4.
func DefaultOptions() Options { return core.DefaultOptions() }

// Compile schedules a circuit onto an EML-QCCD device with MUSS-TI.
//
// Deprecated: resolve the compiler through the registry instead —
// LookupCompiler("mussti") then Compile(ctx, c, dev, cfg). This wrapper's
// behaviour is unchanged.
func Compile(c *Circuit, d *Device, opts Options) (*Result, error) {
	return core.Compile(c, d, opts)
}

// CompileContext is Compile with cooperative cancellation: the scheduling
// loops check ctx at every frontier step, so a cancelled or expired context
// aborts a long compile within one scheduler step and surfaces ctx.Err().
//
// Deprecated: resolve the compiler through the registry instead —
// LookupCompiler("mussti") then Compile(ctx, c, dev, cfg). This wrapper's
// behaviour is unchanged.
func CompileContext(ctx context.Context, c *Circuit, d *Device, opts Options) (*Result, error) {
	return core.CompileContext(ctx, c, d, opts)
}

// Observer receives per-step progress callbacks (gates scheduled, shuttles,
// evictions, inserted SWAPs) from a running compilation — MUSS-TI or
// baseline. Attach one via Options.Observer / BaselineOptions.Observer; it
// never changes the schedule.
type Observer = core.Observer

// Batch compilation: many (target, config) variants of one circuit share
// the per-circuit preparation and compile on a bounded worker group.
type (
	// BatchVariant is one (target, config) pair of a CompileBatch; a nil
	// Config means the paper's defaults, as with Compiler.Compile.
	BatchVariant = core.BatchVariant
	// BatchCompiler is optionally implemented by compilers that support
	// batch compilation; the registry's "mussti" entry implements it.
	BatchCompiler = core.BatchCompiler
)

// CompileBatch compiles one circuit against many (target, config) variants
// with MUSS-TI, building the per-circuit preparation (dependency DAG,
// per-qubit gate lists, next-use tables) once and running the variants on a
// worker group bounded by GOMAXPROCS. results[i] corresponds to variants[i]
// and is byte-identical to a standalone Compile of that variant (modulo the
// wall-clock CompileTime), regardless of worker count:
//
//	variants := []mussti.BatchVariant{
//		{Target: dev, Config: nil},                                   // paper defaults
//		{Target: dev, Config: mussti.NewCompileConfig(mussti.WithLookAhead(4))},
//	}
//	results, err := mussti.CompileBatch(ctx, c, variants)
func CompileBatch(ctx context.Context, c *Circuit, variants []BatchVariant) ([]*Result, error) {
	return core.CompileBatch(ctx, c, variants)
}

// CompileBatchBounded is CompileBatch with an explicit worker bound
// (workers <= 0 means GOMAXPROCS) — for callers that already own a worker
// pool and must not oversubscribe it.
func CompileBatchBounded(ctx context.Context, c *Circuit, variants []BatchVariant, workers int) ([]*Result, error) {
	return core.CompileBatchBounded(ctx, c, variants, workers)
}

// ScheduleOp is one timed entry of a recorded schedule.
type ScheduleOp = sim.Op

// VerifySchedule independently re-checks a recorded schedule against the
// circuit and device: zone occupancy, gate legality, per-qubit program
// order, inserted-SWAP bookkeeping and timing. It shares no state with the
// execution engine, so scheduler bugs cannot hide behind their own
// bookkeeping.
func VerifySchedule(c *Circuit, d *Device, initial []int, trace []ScheduleOp) error {
	return sim.VerifySchedule(c, sim.ZonesOfDevice(d), initial, trace)
}

// WriteScheduleJSON serialises a recorded schedule as JSON for external
// tooling; ReadScheduleJSON loads it back.
func WriteScheduleJSON(w io.Writer, numQubits int, trace []ScheduleOp) error {
	return sim.WriteScheduleJSON(w, numQubits, trace)
}

// ReadScheduleJSON loads a schedule written by WriteScheduleJSON.
func ReadScheduleJSON(r io.Reader) (numQubits int, trace []ScheduleOp, err error) {
	return sim.ReadScheduleJSON(r)
}

// Baseline compilers (the paper's comparison points).
type (
	BaselineAlgorithm = baseline.Algorithm
	// BaselineOptions configures a baseline run.
	//
	// Deprecated: the registry path takes the shared CompileConfig; the
	// baselines read its Params, LookAhead, Trace and Observer fields.
	BaselineOptions = baseline.Options
	// BaselineResult is the outcome of a baseline compilation — now the
	// same type as Result, so harnesses handle one result shape.
	BaselineResult = baseline.Result
)

// Baseline algorithm identifiers.
const (
	BaselineMurali = baseline.Murali // ISCA 2020 greedy QCCD compiler [55]
	BaselineDai    = baseline.Dai    // advanced shuttle strategies [13]
	BaselineMQT    = baseline.MQT    // MQT dedicated-zone shuttling [70]
)

// CompileBaseline schedules a circuit onto a monolithic grid with one of
// the baseline compilers.
//
// Deprecated: resolve the compiler through the registry instead —
// LookupCompiler("murali"/"dai"/"mqt") then Compile(ctx, c, grid, cfg).
// This wrapper's behaviour is unchanged.
func CompileBaseline(algo BaselineAlgorithm, c *Circuit, g *Grid, opts BaselineOptions) (*BaselineResult, error) {
	return baseline.Compile(algo, c, g, opts)
}

// CompileBaselineContext is CompileBaseline with cooperative cancellation,
// mirroring CompileContext.
//
// Deprecated: resolve the compiler through the registry instead —
// LookupCompiler("murali"/"dai"/"mqt") then Compile(ctx, c, grid, cfg).
// This wrapper's behaviour is unchanged.
func CompileBaselineContext(ctx context.Context, algo BaselineAlgorithm, c *Circuit, g *Grid, opts BaselineOptions) (*BaselineResult, error) {
	return baseline.CompileContext(ctx, algo, c, g, opts)
}

// Experiment harness: regenerate the paper's tables and figures.
type ExperimentInfo = eval.Experiment

// ExperimentList returns the paper's experiments in order, followed by the
// extension studies (replacement-policy ablation, optical-port sweep).
func ExperimentList() []ExperimentInfo { return eval.AllExperiments() }

// RunExperiment runs one experiment by ID ("table2", "fig6"..."fig13")
// sequentially and returns its rendered text.
func RunExperiment(id string) (string, error) {
	e, err := eval.ByID(id)
	if err != nil {
		return "", err
	}
	return e.Run()
}

// Runner fans independent experiment measurements out over a bounded worker
// pool. One Runner may serve many concurrent experiments; they share its
// concurrency budget.
type Runner = eval.Runner

// NewRunner returns a measurement runner with the given worker count;
// workers <= 0 means GOMAXPROCS. A nil *Runner means strictly sequential
// execution wherever one is accepted.
func NewRunner(workers int) *Runner { return eval.NewRunner(workers) }

// RunExperimentContext runs one experiment by ID on the given runner (nil =
// sequential), honouring ctx cancellation. The worker count never affects
// the rendered tables: deterministic cells are reassembled in paper order,
// and the experiments whose cells are wall-clock compile times (fig10,
// fig11) always run their measurements serially.
func RunExperimentContext(ctx context.Context, id string, r *Runner) (string, error) {
	e, err := eval.ByID(id)
	if err != nil {
		return "", err
	}
	return e.RunContext(ctx, r)
}

// Measurement is one structured (application, compiler, device) data point
// of the experiment harness.
type Measurement = eval.Measurement

// RunExperimentCollect is RunExperimentContext, additionally returning the
// experiment's structured Measurement rows in paper order — the data behind
// the rendered text, for CSV export and other sinks.
func RunExperimentCollect(ctx context.Context, id string, r *Runner) (string, []Measurement, error) {
	e, err := eval.ByID(id)
	if err != nil {
		return "", nil, err
	}
	return e.CollectContext(ctx, r)
}

// RunExperimentWith is RunExperimentCollect restricted to the given
// registered compiler names: the experiment measures (and renders columns or
// sections for) only those compilers, in order — including out-of-tree
// registrations. An empty list means the experiment's default compiler set,
// which reproduces the paper byte-for-byte.
func RunExperimentWith(ctx context.Context, id string, r *Runner, compilers []string) (string, []Measurement, error) {
	e, err := eval.ByID(id)
	if err != nil {
		return "", nil, err
	}
	return e.CollectWith(ctx, r, compilers)
}

// WriteMeasurementsCSV writes measurements as CSV with a header row, the
// interchange format for plotting the figures outside Go.
func WriteMeasurementsCSV(w io.Writer, ms []Measurement) error {
	return eval.WriteMeasurementsCSV(w, ms)
}

// Distributed execution: a Runner's jobs can execute in spawned worker
// processes (on this machine or, via a remote shell in the worker command,
// any other) instead of in-process goroutines. The Runner keeps every
// scheduling responsibility, so distributed output is byte-identical to
// sequential output. See cmd/experiments -dist / -worker / -cachedir for
// the ready-made CLI wiring.
type (
	// Coordinator owns a fleet of spawned worker processes and dispatches
	// experiment jobs to them; it implements RemoteExecutor, so hand it to
	// Runner.SetRemote. Workers that die mid-job are replaced and their
	// jobs retried.
	Coordinator = dist.Coordinator
	// CoordinatorOptions tune fleet behaviour (worker stderr destination,
	// environment, retry bound, pipeline window, launcher, heartbeats);
	// the zero value is ready to use.
	CoordinatorOptions = dist.CoordinatorOptions
	// CoordinatorStats is a snapshot of a coordinator's dispatch counters
	// (jobs dispatched, coalesced batches, retries, worker deaths).
	CoordinatorStats = dist.CoordinatorStats
	// WorkerLauncher starts the processes a Coordinator manages; plug a
	// custom implementation into CoordinatorOptions.Launcher to move the
	// fleet off-machine.
	WorkerLauncher = dist.WorkerLauncher
	// WorkerHandle is one launched worker's protocol streams and
	// lifecycle, as returned by a WorkerLauncher.
	WorkerHandle = dist.WorkerHandle
	// LocalLauncher runs workers as directly spawned child processes —
	// the default launcher.
	LocalLauncher = dist.LocalLauncher
	// CommandLauncher wraps the worker command in an exec-style prefix
	// ("ssh -o BatchMode=yes build-02", a container runtime, nice) so the
	// fleet runs wherever the prefix lands it.
	CommandLauncher = dist.CommandLauncher
	// RemoteExecutor dispatches one job to an external execution
	// substrate; Runner.SetRemote accepts any implementation.
	RemoteExecutor = eval.RemoteExecutor
	// PipelinedExecutor is a RemoteExecutor whose Capacity reports how
	// many jobs it absorbs in flight; Runner.SetRemote widens its pool to
	// match.
	PipelinedExecutor = eval.PipelinedExecutor
	// DiskCache is an on-disk measurement store shared by any number of
	// processes; attach one via Runner.SetDiskCache so repeated runs and
	// whole worker fleets compile each point once, ever.
	DiskCache = eval.DiskCache
	// CompileSpec describes one measurement point through the compiler
	// registry — the unit the distributed wire protocol ships.
	CompileSpec = eval.CompileSpec
	// EvalJob is one independent measurement job of the experiment
	// harness.
	EvalJob = eval.Job
)

// NewCoordinator spawns n worker processes running argv (typically the
// host binary itself with a -worker style flag) and returns the
// coordinator managing them; pass it to Runner.SetRemote. Call Close to
// reap the fleet.
func NewCoordinator(n int, argv []string, opts *CoordinatorOptions) (*Coordinator, error) {
	return dist.NewCoordinator(n, argv, opts)
}

// ServeWorker runs the worker side of the distributed protocol: it reads
// job envelopes from r (the coordinator's pipe), executes them through
// runner.RunJob — cancellation, memoization and any attached disk cache
// intact — and writes measurement envelopes to w. It returns on r's EOF.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, runner *Runner) error {
	return dist.ServeWorker(ctx, r, w, runner)
}

// NewDiskCache opens (creating if needed) a shared on-disk measurement
// cache directory; attach it with Runner.SetDiskCache.
func NewDiskCache(dir string) (*DiskCache, error) { return eval.NewDiskCache(dir) }

// Compilation as a service: the compiler behind an HTTP+JSON endpoint. A
// Service wraps a Runner, so every harness layer carries over — concurrent
// identical requests coalesce through the measurement memo, results persist
// to an attached DiskCache, and a Coordinator fleet compiles remote when the
// Runner has one set. See cmd/musstid for the ready-made server binary.
type (
	// Service is the HTTP compilation service; it implements http.Handler.
	// Endpoints: POST /v1/compile (built-in benchmark or inline QASM,
	// optionally streaming progress events), GET /v1/compilers,
	// GET /v1/benchmarks, GET /metrics, GET /healthz.
	Service = service.Server
	// ServiceOptions configures a Service: the Runner (required), an
	// optional Coordinator for fleet metrics, admission bounds and the
	// progress streaming cadence.
	ServiceOptions = service.Options
	// ServiceMetrics is the GET /metrics response: request and cache
	// counters, compile-latency quantiles, admission gauges and fleet
	// health.
	ServiceMetrics = service.MetricsSnapshot
)

// NewService builds a compilation service over opts.Runner. The service
// installs its metrics collector as the runner's job hook, so the runner
// must not have another SetJobHook consumer.
func NewService(opts ServiceOptions) (*Service, error) { return service.New(opts) }
