// Package mussti is the public API of the MUSS-TI reproduction: a
// multi-level shuttle-scheduling compiler for entanglement-module-linked
// trapped-ion (EML-QCCD) devices, after Wu et al., MICRO 2025.
//
// A minimal session:
//
//	c := mussti.Benchmark("QFT_n32")              // or build a Circuit by hand
//	dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
//	res, err := mussti.Compile(c, dev, mussti.DefaultOptions())
//	fmt.Println(res.Metrics.Shuttles, res.Metrics.Fidelity.Log10())
//
// The package re-exports the stable parts of the internal packages:
// circuit construction (Circuit, Gate), benchmark generators, EML-QCCD and
// grid architectures, the physics model, the MUSS-TI compiler, the three
// baseline compilers, and the experiment harness that regenerates every
// table and figure of the paper.
package mussti

import (
	"context"
	"io"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/circuit"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
	"mussti/internal/eval"
	"mussti/internal/physics"
	"mussti/internal/sim"
)

// Circuit is the quantum-circuit IR: an ordered gate list over n qubits.
type Circuit = circuit.Circuit

// Gate is a single circuit operation.
type Gate = circuit.Gate

// Kind tags a gate's operation.
type Kind = circuit.Kind

// Re-exported gate kinds (the full set lives in internal/circuit).
const (
	KindH       = circuit.KindH
	KindX       = circuit.KindX
	KindRZ      = circuit.KindRZ
	KindMS      = circuit.KindMS
	KindCX      = circuit.KindCX
	KindCZ      = circuit.KindCZ
	KindCP      = circuit.KindCP
	KindSwap    = circuit.KindSwap
	KindMeasure = circuit.KindMeasure
)

// NewCircuit returns an empty named circuit over n qubits.
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// ParseQASM reads an OpenQASM 2.0 subset (QASMBench-style files).
func ParseQASM(name string, r io.Reader) (*Circuit, error) { return circuit.ParseQASM(name, r) }

// LowerToNative rewrites a circuit into the trapped-ion native gate set:
// Mølmer–Sørensen entangling gates plus one-qubit rotations (SWAP becomes
// three MS gates — the identity behind the paper's T≥3 threshold).
func LowerToNative(c *Circuit) *Circuit { return circuit.LowerToNative(c) }

// OptimizeOneQubit cancels and merges adjacent one-qubit gates; two-qubit
// gates and measurements act as barriers.
func OptimizeOneQubit(c *Circuit) *Circuit { return circuit.OptimizeOneQubit(c) }

// Benchmark builds a paper benchmark by its table name, e.g. "Adder_n32",
// "SQRT_n299". It panics on unknown names; use BenchmarkByName for errors.
//
// Generation is deterministic and memoized internally; the returned
// circuit is a private copy the caller may freely mutate.
func Benchmark(name string) *Circuit { return bench.MustByName(name).Clone() }

// BenchmarkByName builds a paper benchmark, returning an error for unknown
// or malformed names. Like Benchmark, it returns a private copy backed by
// the internal memoized cache.
func BenchmarkByName(name string) (*Circuit, error) {
	c, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	return c.Clone(), nil
}

// BenchmarkFamilies lists the supported generator families.
func BenchmarkFamilies() []string { return bench.Families() }

// Device is an EML-QCCD machine; Grid is the monolithic baseline lattice.
type (
	Device       = arch.Device
	DeviceConfig = arch.Config
	Grid         = arch.Grid
	Zone         = arch.Zone
	Level        = arch.Level
)

// Zone levels of the EML-QCCD hierarchy.
const (
	LevelStorage   = arch.LevelStorage
	LevelOperation = arch.LevelOperation
	LevelOptical   = arch.LevelOptical
)

// DeviceConfigFor returns the paper's standard configuration sized for n
// qubits (modules in 2×2 blocks, trap capacity 16, 4 optical ports).
func DeviceConfigFor(n int) DeviceConfig { return arch.DefaultConfig(n) }

// NewDevice builds an EML-QCCD device, panicking on invalid configs; use
// NewDeviceErr when the config comes from user input.
func NewDevice(cfg DeviceConfig) *Device { return arch.MustNew(cfg) }

// NewDeviceErr builds an EML-QCCD device.
func NewDeviceErr(cfg DeviceConfig) (*Device, error) { return arch.New(cfg) }

// NewGrid builds a rows×cols baseline QCCD grid.
func NewGrid(rows, cols, capacity int) (*Grid, error) { return arch.NewGrid(rows, cols, capacity) }

// Physics model (Table 1 of the paper).
type PhysicsParams = physics.Params

// DefaultPhysics returns the Table-1 parameters.
func DefaultPhysics() PhysicsParams { return physics.Default() }

// Compiler types.
type (
	// Options configures a MUSS-TI compilation.
	Options = core.Options
	// ReplacementPolicy selects the conflict-handling victim policy.
	ReplacementPolicy = core.ReplacementPolicy
	// Result is a compilation outcome (metrics + mappings + trace).
	Result = core.Result
	// SchedStats counts the scheduler's per-mechanism decisions.
	SchedStats = core.SchedStats
	// Metrics aggregates shuttles, times and fidelity for one run.
	Metrics = sim.Metrics
	// MappingStrategy selects the initial placement.
	MappingStrategy = core.MappingStrategy
)

// Initial-mapping strategies (§3.4 of the paper).
const (
	MappingTrivial = core.MappingTrivial
	MappingSABRE   = core.MappingSABRE
)

// Replacement policies for the conflict-handling ablation; the default
// zero value is the paper's LRU scheduler.
const (
	ReplaceLRU    = core.ReplaceLRU
	ReplaceFIFO   = core.ReplaceFIFO
	ReplaceRandom = core.ReplaceRandom
	ReplaceBelady = core.ReplaceBelady
)

// DefaultOptions is the paper's headline configuration: SABRE mapping plus
// SWAP insertion with k=8 and T=4.
func DefaultOptions() Options { return core.DefaultOptions() }

// Compile schedules a circuit onto an EML-QCCD device with MUSS-TI.
func Compile(c *Circuit, d *Device, opts Options) (*Result, error) {
	return core.Compile(c, d, opts)
}

// CompileContext is Compile with cooperative cancellation: the scheduling
// loops check ctx at every frontier step, so a cancelled or expired context
// aborts a long compile within one scheduler step and surfaces ctx.Err().
func CompileContext(ctx context.Context, c *Circuit, d *Device, opts Options) (*Result, error) {
	return core.CompileContext(ctx, c, d, opts)
}

// Observer receives per-step progress callbacks (gates scheduled, shuttles,
// evictions, inserted SWAPs) from a running compilation — MUSS-TI or
// baseline. Attach one via Options.Observer / BaselineOptions.Observer; it
// never changes the schedule.
type Observer = core.Observer

// ScheduleOp is one timed entry of a recorded schedule.
type ScheduleOp = sim.Op

// VerifySchedule independently re-checks a recorded schedule against the
// circuit and device: zone occupancy, gate legality, per-qubit program
// order, inserted-SWAP bookkeeping and timing. It shares no state with the
// execution engine, so scheduler bugs cannot hide behind their own
// bookkeeping.
func VerifySchedule(c *Circuit, d *Device, initial []int, trace []ScheduleOp) error {
	return sim.VerifySchedule(c, sim.ZonesOfDevice(d), initial, trace)
}

// WriteScheduleJSON serialises a recorded schedule as JSON for external
// tooling; ReadScheduleJSON loads it back.
func WriteScheduleJSON(w io.Writer, numQubits int, trace []ScheduleOp) error {
	return sim.WriteScheduleJSON(w, numQubits, trace)
}

// ReadScheduleJSON loads a schedule written by WriteScheduleJSON.
func ReadScheduleJSON(r io.Reader) (numQubits int, trace []ScheduleOp, err error) {
	return sim.ReadScheduleJSON(r)
}

// Baseline compilers (the paper's comparison points).
type (
	BaselineAlgorithm = baseline.Algorithm
	BaselineOptions   = baseline.Options
	BaselineResult    = baseline.Result
)

// Baseline algorithm identifiers.
const (
	BaselineMurali = baseline.Murali // ISCA 2020 greedy QCCD compiler [55]
	BaselineDai    = baseline.Dai    // advanced shuttle strategies [13]
	BaselineMQT    = baseline.MQT    // MQT dedicated-zone shuttling [70]
)

// CompileBaseline schedules a circuit onto a monolithic grid with one of
// the baseline compilers.
func CompileBaseline(algo BaselineAlgorithm, c *Circuit, g *Grid, opts BaselineOptions) (*BaselineResult, error) {
	return baseline.Compile(algo, c, g, opts)
}

// CompileBaselineContext is CompileBaseline with cooperative cancellation,
// mirroring CompileContext.
func CompileBaselineContext(ctx context.Context, algo BaselineAlgorithm, c *Circuit, g *Grid, opts BaselineOptions) (*BaselineResult, error) {
	return baseline.CompileContext(ctx, algo, c, g, opts)
}

// Experiment harness: regenerate the paper's tables and figures.
type ExperimentInfo = eval.Experiment

// ExperimentList returns the paper's experiments in order, followed by the
// extension studies (replacement-policy ablation, optical-port sweep).
func ExperimentList() []ExperimentInfo { return eval.AllExperiments() }

// RunExperiment runs one experiment by ID ("table2", "fig6"..."fig13")
// sequentially and returns its rendered text.
func RunExperiment(id string) (string, error) {
	e, err := eval.ByID(id)
	if err != nil {
		return "", err
	}
	return e.Run()
}

// Runner fans independent experiment measurements out over a bounded worker
// pool. One Runner may serve many concurrent experiments; they share its
// concurrency budget.
type Runner = eval.Runner

// NewRunner returns a measurement runner with the given worker count;
// workers <= 0 means GOMAXPROCS. A nil *Runner means strictly sequential
// execution wherever one is accepted.
func NewRunner(workers int) *Runner { return eval.NewRunner(workers) }

// RunExperimentContext runs one experiment by ID on the given runner (nil =
// sequential), honouring ctx cancellation. The worker count never affects
// the rendered tables: deterministic cells are reassembled in paper order,
// and the experiments whose cells are wall-clock compile times (fig10,
// fig11) always run their measurements serially.
func RunExperimentContext(ctx context.Context, id string, r *Runner) (string, error) {
	e, err := eval.ByID(id)
	if err != nil {
		return "", err
	}
	return e.RunContext(ctx, r)
}

// Measurement is one structured (application, compiler, device) data point
// of the experiment harness.
type Measurement = eval.Measurement

// RunExperimentCollect is RunExperimentContext, additionally returning the
// experiment's structured Measurement rows in paper order — the data behind
// the rendered text, for CSV export and other sinks.
func RunExperimentCollect(ctx context.Context, id string, r *Runner) (string, []Measurement, error) {
	e, err := eval.ByID(id)
	if err != nil {
		return "", nil, err
	}
	return e.CollectContext(ctx, r)
}

// WriteMeasurementsCSV writes measurements as CSV with a header row, the
// interchange format for plotting the figures outside Go.
func WriteMeasurementsCSV(w io.Writer, ms []Measurement) error {
	return eval.WriteMeasurementsCSV(w, ms)
}
