// Capacity tuning: co-design the EML-QCCD trap capacity with a target
// application, the §5.3 analysis of the paper. Small traps force extra
// shuttling (heating the zones); big traps stretch the ion chains and
// degrade every MS gate by 1−εN². The sweet spot sits in between — the
// paper recommends 14–18 ions per trap.
//
// The second sweep varies the optical zone's port count separately,
// showing the trade-off of a port-limited ion-photon interface.
//
//	go run ./examples/capacity_tuning
package main

import (
	"fmt"
	"log"

	"mussti"
)

func main() {
	app := "BV_n128"
	c := mussti.Benchmark(app)

	fmt.Printf("trap-capacity sweep for %s (uniform zones):\n", app)
	fmt.Println("cap   shuttles   exec(µs)     fidelity")
	for capacity := 12; capacity <= 20; capacity += 2 {
		cfg := mussti.DeviceConfigFor(c.NumQubits)
		cfg.TrapCapacity = capacity
		m := compile(c, cfg)
		fmt.Printf("%-4d  %-9d  %-11.0f  %.4g\n", capacity, m.Shuttles, m.MakespanUS, m.Fidelity.Value())
	}

	fmt.Printf("\noptical-port sweep for %s (trap capacity 16):\n", app)
	fmt.Println("ports  shuttles   fiber   fidelity")
	for ports := 2; ports <= 16; ports *= 2 {
		cfg := mussti.DeviceConfigFor(c.NumQubits)
		cfg.OpticalCapacity = ports
		m := compile(c, cfg)
		fmt.Printf("%-5d  %-9d  %-6d  %.4g\n", ports, m.Shuttles, m.FiberGates, m.Fidelity.Value())
	}
}

func compile(c *mussti.Circuit, cfg mussti.DeviceConfig) mussti.Metrics {
	res, err := mussti.Compile(c, mussti.NewDevice(cfg), mussti.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	return res.Metrics
}
