// Quickstart: compile one benchmark circuit for an EML-QCCD device with
// MUSS-TI and print the three paper metrics (shuttles, execution time,
// fidelity).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mussti"
)

func main() {
	// A 32-qubit quantum Fourier transform — the densest small benchmark.
	c := mussti.Benchmark("QFT_n32")

	// An EML-QCCD machine sized for the circuit: modules of four zones
	// (2 storage + 1 operation + 1 optical), trap capacity 16, linked
	// through the photonic entanglement module.
	dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))

	// Compilers are registry values; "mussti" is the paper's compiler.
	// A nil config means its headline configuration — SABRE initial
	// mapping plus look-ahead SWAP insertion (k=8, T=4); tweak knobs with
	// mussti.NewCompileConfig(mussti.WithLookAhead(6), ...).
	comp, err := mussti.LookupCompiler("mussti")
	if err != nil {
		log.Fatal(err)
	}
	res, err := comp.Compile(context.Background(), c, dev, nil)
	if err != nil {
		log.Fatal(err)
	}

	st := c.Stats()
	m := res.Metrics
	fmt.Printf("circuit:        %s (%d qubits, %d two-qubit gates, depth %d)\n",
		c.Name, st.Qubits, st.TwoQubit, st.Depth)
	fmt.Printf("shuttles:       %d (plus %d in-trap chain swaps)\n", m.Shuttles, m.ChainSwaps)
	fmt.Printf("fiber gates:    %d (%d inserted SWAPs)\n", m.FiberGates, m.InsertedSwaps)
	fmt.Printf("execution time: %.0f µs\n", m.MakespanUS)
	fmt.Printf("fidelity:       %.3g (log10 %.2f)\n", m.Fidelity.Value(), m.Fidelity.Log10())
	fmt.Printf("compile time:   %s\n", res.CompileTime)
}
