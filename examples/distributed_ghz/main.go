// Distributed GHZ: entangle a 128-qubit GHZ chain across four EML-QCCD
// modules and watch how the compiler uses the photonic link — fiber gates
// where the chain crosses module boundaries, ordinary MS gates inside each
// module, and the zone traffic the multi-level scheduler generates.
//
//	go run ./examples/distributed_ghz
package main

import (
	"fmt"
	"log"

	"mussti"
)

func main() {
	c := mussti.Benchmark("GHZ_n128")
	cfg := mussti.DeviceConfigFor(c.NumQubits)
	dev := mussti.NewDevice(cfg)
	fmt.Printf("device: %d modules × (2 storage + 1 operation + 1 optical), trap capacity %d\n\n",
		cfg.Modules, cfg.TrapCapacity)

	opts := mussti.DefaultOptions()
	opts.Trace = true
	res, err := mussti.Compile(c, dev, opts)
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("two-qubit gates: %d local MS + %d fiber-entangled\n", m.Gates2, m.FiberGates)
	fmt.Printf("shuttles:        %d\n", m.Shuttles)
	fmt.Printf("execution time:  %.0f µs\n", m.MakespanUS)
	fmt.Printf("fidelity:        %.4f\n\n", m.Fidelity.Value())

	// Show where the photonic link fired: those are exactly the chain
	// gates whose qubits sit on different modules.
	fmt.Println("fiber gates on the entanglement module:")
	for _, op := range res.Trace {
		if op.Kind != "fiber" {
			continue
		}
		fmt.Printf("  t=%8.0f µs  q%-3d — q%-3d  (optical zones %d ↔ %d)\n",
			op.StartUS, op.Qubits[0], op.Qubits[1], op.Zone, op.ZoneB)
	}

	// Module occupancy after the run: the GHZ chain stays clustered.
	perModule := make(map[int]int)
	for _, z := range res.FinalMapping {
		perModule[dev.Zone(z).Module]++
	}
	fmt.Println("\nfinal ions per module:")
	for mdl := 0; mdl < cfg.Modules; mdl++ {
		fmt.Printf("  module %d: %d ions\n", mdl, perModule[mdl])
	}
}
