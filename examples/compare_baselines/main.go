// Compare baselines: run one application through every compiler in the
// registry on the same 2×3 grid structure and print the comparison rows, in
// registration order — MUSS-TI first, then the paper's three baselines: the
// greedy Murali et al. grid compiler [55], the Dai et al. advanced shuttle
// strategies [13], and the MQT-style dedicated-zone shuttler [70].
// Registering another compiler (mussti.RegisterCompiler) adds a row with no
// change here.
//
//	go run ./examples/compare_baselines [Application_nNN]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mussti"
)

func main() {
	app := "SQRT_n30"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	c, err := mussti.BenchmarkByName(app)
	if err != nil {
		log.Fatal(err)
	}
	const rows, cols, capacity = 2, 3, 8
	g, err := mussti.NewGrid(rows, cols, capacity)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on a %dx%d QCCD grid (trap capacity %d)\n\n", app, rows, cols, capacity)
	fmt.Printf("%-12s  %9s  %12s  %12s\n", "compiler", "shuttles", "exec (µs)", "fidelity")

	// Every registered compiler accepts the same (circuit, target, config)
	// triple; a nil config means each compiler's own paper defaults (for
	// MUSS-TI: SABRE mapping, LRU replacement, executable-first selection).
	// Compilers that declare themselves incompatible with the grid target
	// (say, an out-of-tree EML-only registration) are skipped, not fatal.
	ctx := context.Background()
	for _, comp := range mussti.Compilers() {
		if !mussti.SupportsTarget(comp, g) {
			fmt.Printf("%-12s  (skipped: does not target the QCCD grid)\n", mussti.CompilerLabel(comp))
			continue
		}
		res, err := comp.Compile(ctx, c, g, nil)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%-12s  %9d  %12.0f  %12.3g\n",
			mussti.CompilerLabel(comp), m.Shuttles, m.MakespanUS, m.Fidelity.Value())
	}
}
