// Compare baselines: run one application through all four compilers of the
// paper's Table 2 — the MQT-style dedicated-zone shuttler [70], the greedy
// Murali et al. grid compiler [55], the Dai et al. advanced shuttle
// strategies [13], and MUSS-TI — on the same 2×3 grid structure, and print
// the comparison row.
//
//	go run ./examples/compare_baselines [Application_nNN]
package main

import (
	"fmt"
	"log"
	"os"

	"mussti"
)

func main() {
	app := "SQRT_n30"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	c, err := mussti.BenchmarkByName(app)
	if err != nil {
		log.Fatal(err)
	}
	const rows, cols, capacity = 2, 3, 8
	g, err := mussti.NewGrid(rows, cols, capacity)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on a %dx%d QCCD grid (trap capacity %d)\n\n", app, rows, cols, capacity)
	fmt.Printf("%-12s  %9s  %12s  %12s\n", "compiler", "shuttles", "exec (µs)", "fidelity")

	for _, algo := range []mussti.BaselineAlgorithm{
		mussti.BaselineMQT, mussti.BaselineMurali, mussti.BaselineDai,
	} {
		res, err := mussti.CompileBaseline(algo, c, g, mussti.BaselineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%-12s  %9d  %12.0f  %12.3g\n", algo, m.Shuttles, m.MakespanUS, m.Fidelity.Value())
	}

	// MUSS-TI schedules the same grid through its multi-level scheduler
	// (LRU replacement, executable-first selection, SABRE mapping).
	res, err := mussti.Compile(c, g.Device(), mussti.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("%-12s  %9d  %12.0f  %12.3g\n", "MUSS-TI", m.Shuttles, m.MakespanUS, m.Fidelity.Value())
}
