module mussti

go 1.24
