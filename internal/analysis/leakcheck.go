package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// leakcheckScope names the package-path fragments the pass covers: the PR 7
// concurrency machinery (worker pools, batch fan-out, the process fleet) and
// the pass's own fixtures. cmd/ entry points are excluded deliberately —
// their goroutines live for the process and are reaped by exit.
var leakcheckScope = []string{
	"internal/core",
	"internal/eval",
	"internal/dist",
	"testdata/src/leakcheck",
}

// LeakcheckAnalyzer protects the "no leaked goroutines after cancel + Close"
// guarantee the PR 5/7 tests pin dynamically. Within internal/{core,eval,dist}
// it enforces two structural rules:
//
//   - every goroutine must carry a completion signal in its own body — a
//     sync.WaitGroup Done, a close of a channel, or a send the launcher can
//     receive. A goroutine with none of these can outlive its launcher with
//     no way to join it, which is exactly how workers leak past Close.
//   - a loop that blocks on channel operations must also select on a
//     context's Done channel (or receive from one), so cancellation can
//     interrupt it. Operations inside a select with a default case are
//     non-blocking and exempt.
//
// Both rules are syntactic over one function body: a goroutine joined by
// machinery the pass cannot see (or a loop whose channel provably never
// blocks) carries an //mussti:allow=leakcheck directive naming that reason,
// keeping every exception reviewable.
var LeakcheckAnalyzer = &Analyzer{
	Name: "leakcheck",
	Doc:  "flags unjoinable goroutines and cancellation-deaf channel loops in internal/{core,eval,dist}",
	Run:  runLeakcheck,
}

func runLeakcheck(pass *Pass) error {
	path := pass.Pkg.Path()
	inScope := false
	for _, frag := range leakcheckScope {
		if strings.Contains(path, frag) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoroutineJoin(pass, n)
			case *ast.ForStmt:
				checkLoopCancellation(pass, n.Pos(), n.Body, nil)
			case *ast.RangeStmt:
				var rangeOp ast.Node
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						rangeOp = n
					}
				}
				checkLoopCancellation(pass, n.Pos(), n.Body, rangeOp)
			}
			return true
		})
	}
	return nil
}

// checkGoroutineJoin enforces the completion-signal rule on one go statement.
func checkGoroutineJoin(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		pass.Reportf(g.Pos(), "goroutine body is a plain call with no completion signal the launcher can join; wrap it in a func literal that calls a WaitGroup's Done, closes a channel, or sends on one")
		return
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.CallExpr:
			if isWaitGroupDone(pass, n) || isCloseCall(pass, n) {
				joined = true
			}
		}
		return !joined
	})
	if !joined {
		pass.Reportf(g.Pos(), "goroutine has no completion signal in its body (WaitGroup Done, channel close or send): it cannot be joined and may outlive its launcher")
	}
}

// isWaitGroupDone matches wg.Done() where wg is a sync.WaitGroup.
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isCloseCall matches the builtin close(ch).
func isCloseCall(pass *Pass, call *ast.CallExpr) bool {
	b, ok := calleeObj(pass, call).(*types.Builtin)
	return ok && b.Name() == "close"
}

// checkLoopCancellation enforces the ctx.Done rule on one loop body. rangeOp
// is non-nil when the loop itself is a blocking channel operation (range
// over a channel). Nested loops and function literals are excluded — each is
// checked as its own construct — and so is anything inside a select that has
// a default case (non-blocking) or a Done case (already cancellation-aware).
func checkLoopCancellation(pass *Pass, loopPos token.Pos, body *ast.BlockStmt, rangeOp ast.Node) {
	aware := false // the loop can observe cancellation somewhere in its body
	var blocking ast.Node
	if rangeOp != nil {
		blocking = rangeOp
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if aware {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if selectIsCancellationAware(pass, n) {
				aware = true
				return false
			}
			if selectHasDefault(n) {
				// Non-blocking: its comm ops cannot stall the loop. Case
				// bodies still run inline, so keep walking those.
				for _, c := range n.Body.List {
					for _, s := range c.(*ast.CommClause).Body {
						ast.Inspect(s, walk)
					}
				}
				return false
			}
			if blocking == nil {
				blocking = n
			}
			return true // the comm ops and bodies are ordinary loop content
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if isDoneReceive(pass, n) {
					aware = true
					return false
				}
				if blocking == nil {
					blocking = n
				}
			}
		case *ast.SendStmt:
			if blocking == nil {
				blocking = n
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	if blocking != nil && !aware {
		pass.Reportf(blocking.Pos(), "loop blocks on a channel operation with no ctx.Done() case in reach: cancellation cannot interrupt it (add a select on the context, or allow with the reason it cannot stall)")
	}
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// selectIsCancellationAware reports whether one of the select's comm clauses
// receives from a context's Done channel.
func selectIsCancellationAware(pass *Pass, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		comm := c.(*ast.CommClause).Comm
		var recv ast.Expr
		switch s := comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		if u, ok := ast.Unparen(recv).(*ast.UnaryExpr); ok && u.Op == token.ARROW && isDoneReceive(pass, u) {
			return true
		}
	}
	return false
}

// isDoneReceive matches <-x.Done() where x is a context.Context.
func isDoneReceive(pass *Pass, recv *ast.UnaryExpr) bool {
	call, ok := ast.Unparen(recv.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && isContextType(t)
}
