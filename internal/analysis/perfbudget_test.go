package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// The parser tests feed canned gc diagnostic streams through
// parseCompilerFacts; the shapes are the ones go1.24 actually emits under
// -m=2 -d=ssa/check_bce/debug=1 (package headers, duplicated escape
// phrasings, indented flow traces, ./-relative paths).

func TestParseCompilerFacts(t *testing.T) {
	stream := `# mussti/internal/dag
./a.go:10:6: can inline (*Graph).Executed with cost 5 as: ...
internal/dag/a.go:20:13: make([]int, n) escapes to heap
internal/dag/a.go:20:13: make([]int, n) escapes to heap:
internal/dag/a.go:20:13:   flow: ~r0 = &{storage for make([]int, n)}:
internal/dag/a.go:21:2: moved to heap: x
internal/dag/a.go:30:9: Found IsInBounds
internal/dag/a.go:31:9: Found IsSliceInBounds
# mussti/internal/core
internal/core/b.go:40:6: cannot inline run: function too complex: cost 900 exceeds budget 80
internal/core/b.go:41:15: inlining call to small
internal/core/b.go:42:3: x does not escape
`
	facts, err := parseCompilerFacts([]byte(stream))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range facts {
		got = append(got, f.String())
	}
	want := []string{
		"a.go:10:6: [can-inline] (*Graph).Executed with cost 5 as: ...",
		"internal/dag/a.go:20:13: [escape] make([]int, n) escapes to heap",
		"internal/dag/a.go:21:2: [escape] moved to heap: x",
		"internal/dag/a.go:30:9: [bounds] Found IsInBounds",
		"internal/dag/a.go:31:9: [bounds] Found IsSliceInBounds",
		"internal/core/b.go:40:6: [cannot-inline] run: function too complex: cost 900 exceeds budget 80",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d facts, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fact %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

func TestParseCompilerFactsDedupsEscapesByPosition(t *testing.T) {
	// -m=2 phrases the same escape several ways at one position; the budget
	// must count the site once.
	stream := `./x.go:5:2: moved to heap: buf
./x.go:5:2: buf escapes to heap
./x.go:6:2: moved to heap: other
`
	facts, err := parseCompilerFacts([]byte(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 2 {
		t.Fatalf("got %d facts, want 2 (escapes at one position must dedup): %v", len(facts), facts)
	}
	if facts[0].File != "x.go" || facts[0].Line != 5 {
		t.Errorf("first fact at %s:%d, want x.go:5", facts[0].File, facts[0].Line)
	}
}

func TestClassifyFactSkipsTraceContinuations(t *testing.T) {
	for _, msg := range []string{
		"  flow: p = &x:",
		"  from p = &x (assign-pair) at ./x.go:4:5",
		" leaking param: d",
	} {
		if _, _, ok := classifyFact(msg); ok {
			t.Errorf("classifyFact(%q) classified a trace continuation", msg)
		}
	}
}

// budgetFixture builds a committed/current pair that agrees everywhere, for
// the drift tests to perturb.
func budgetFixture() (*Budget, *BudgetResult) {
	committed := &Budget{
		Go:     runtime.Version(),
		GOARCH: runtime.GOARCH,
		Functions: map[string]FuncBudget{
			"pkg.Hot":        {Escapes: 1, Bounds: 2},
			"pkg.(*T).Small": {Escapes: 0, Bounds: 0, Inline: true},
		},
	}
	res := &BudgetResult{
		Budget: &Budget{
			Go:     runtime.Version(),
			GOARCH: runtime.GOARCH,
			Functions: map[string]FuncBudget{
				"pkg.Hot":        {Escapes: 1, Bounds: 2},
				"pkg.(*T).Small": {Escapes: 0, Bounds: 0, Inline: true},
			},
		},
		FuncFacts: map[string][]CompilerFact{
			"pkg.Hot": {
				{File: "pkg/hot.go", Line: 12, Col: 9, Kind: FactEscape, Detail: "moved to heap: x"},
				{File: "pkg/hot.go", Line: 14, Col: 3, Kind: FactBounds, Detail: "Found IsInBounds"},
				{File: "pkg/hot.go", Line: 15, Col: 3, Kind: FactBounds, Detail: "Found IsInBounds"},
			},
		},
		InlineAnnotated: map[string]bool{"pkg.(*T).Small": true},
		InlineFailure:   map[string]string{},
	}
	return committed, res
}

func TestCheckBudgetClean(t *testing.T) {
	committed, res := budgetFixture()
	if drifts := CheckBudget(committed, res); len(drifts) != 0 {
		t.Fatalf("clean budget drifted: %v", drifts)
	}
}

func TestCheckBudgetEscapeDriftCarriesEvidence(t *testing.T) {
	committed, res := budgetFixture()
	fns := res.Budget.Functions
	fns["pkg.Hot"] = FuncBudget{Escapes: 2, Bounds: 2}
	drifts := CheckBudget(committed, res)
	if len(drifts) != 1 {
		t.Fatalf("got %d drifts, want 1: %v", len(drifts), drifts)
	}
	d := drifts[0]
	if d.Key != "pkg.Hot" || !strings.Contains(d.Message, "heap escapes drifted: budget 1, compiler now reports 2") {
		t.Fatalf("wrong drift: %s", d)
	}
	// The evidence must be the escape facts only, not the bounds facts.
	if len(d.Facts) != 1 || d.Facts[0].Kind != FactEscape {
		t.Fatalf("drift evidence %v, want exactly the escape fact", d.Facts)
	}
}

func TestCheckBudgetBoundsDrift(t *testing.T) {
	committed, res := budgetFixture()
	res.Budget.Functions["pkg.Hot"] = FuncBudget{Escapes: 1, Bounds: 3}
	drifts := CheckBudget(committed, res)
	if len(drifts) != 1 || !strings.Contains(drifts[0].Message, "bounds checks drifted: budget 2, compiler now reports 3") {
		t.Fatalf("got %v", drifts)
	}
	if len(drifts[0].Facts) != 2 || drifts[0].Facts[0].Kind != FactBounds {
		t.Fatalf("drift evidence %v, want the two bounds facts", drifts[0].Facts)
	}
}

func TestCheckBudgetInlineRegression(t *testing.T) {
	committed, res := budgetFixture()
	res.InlineFailure["pkg.(*T).Small"] = "function too complex: cost 90 exceeds budget 80"
	drifts := CheckBudget(committed, res)
	if len(drifts) != 1 || !strings.Contains(drifts[0].Message, "must stay inlinable") {
		t.Fatalf("got %v", drifts)
	}
	regs := res.InlineRegressions()
	if len(regs) != 1 || regs[0].Key != "pkg.(*T).Small" {
		t.Fatalf("InlineRegressions = %v", regs)
	}
}

func TestCheckBudgetAnnotationChurn(t *testing.T) {
	committed, res := budgetFixture()
	// A newly annotated function the committed file has never seen, and a
	// committed entry whose annotation was deleted from source.
	res.Budget.Functions["pkg.New"] = FuncBudget{}
	delete(res.Budget.Functions, "pkg.Hot")
	drifts := CheckBudget(committed, res)
	if len(drifts) != 2 {
		t.Fatalf("got %d drifts, want 2: %v", len(drifts), drifts)
	}
	// Sorted by key: pkg.Hot (stale) before pkg.New (missing).
	if drifts[0].Key != "pkg.Hot" || !strings.Contains(drifts[0].Message, "no longer annotated") {
		t.Errorf("drift 0 = %s", drifts[0])
	}
	if drifts[1].Key != "pkg.New" || !strings.Contains(drifts[1].Message, "missing from "+BudgetFile) {
		t.Errorf("drift 1 = %s", drifts[1])
	}
}

func TestBudgetFileRoundTrip(t *testing.T) {
	committed, _ := budgetFixture()
	path := filepath.Join(t.TempDir(), BudgetFile)
	if err := WriteBudgetFile(path, committed); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBudgetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Go != committed.Go || back.GOARCH != committed.GOARCH || len(back.Functions) != len(committed.Functions) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if fb := back.Functions["pkg.(*T).Small"]; !fb.Inline {
		t.Fatalf("round trip dropped the inline bit: %+v", fb)
	}
}

// TestPerfBudgetSelfCheck is the repo eating its own dogfood: the committed
// perfbudget.json must exactly describe this tree. Skipped on a toolchain
// other than the one that wrote the budget — escape analysis and inlining
// costs shift between releases, and CI pins the matching version.
func TestPerfBudgetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping module-wide diagnostic build")
	}
	modroot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(modroot, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", modroot, err)
	}
	committed, err := ReadBudgetFile(filepath.Join(modroot, BudgetFile))
	if err != nil {
		t.Fatalf("reading committed budget (generate with `go run ./cmd/musstilint -writebudget`): %v", err)
	}
	if committed.Go != runtime.Version() || committed.GOARCH != runtime.GOARCH {
		t.Skipf("budget written by %s/%s, running %s/%s: verdicts are toolchain-specific",
			committed.Go, committed.GOARCH, runtime.Version(), runtime.GOARCH)
	}
	pkgs, err := Load(modroot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	facts, err := CollectCompilerFacts(modroot)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ComputeBudget(modroot, pkgs, facts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range CheckBudget(committed, res) {
		t.Errorf("budget drift: %s", d)
	}
}
