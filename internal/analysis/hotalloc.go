package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotallocAnalyzer freezes the PR 4 performance wins: the compile hot path
// (DAG frontier maintenance, the scheduler step, WalkAhead, the
// SWAP-inserter and the sim engine's per-op methods) is allocation-free in
// steady state, and the benchmarks pin it. This pass makes the invariant
// reviewable without running benchmarks: inside any function whose doc
// comment carries //mussti:hotpath, it flags constructs that heap-allocate
// every call:
//
//   - map and slice composite literals, &T{...} pointer literals,
//     make and new;
//   - fmt.* calls (Sprintf formatting allocates; fmt.Errorf is exempt
//     directly inside a return statement or panic — a failing path is by
//     definition not steady state);
//   - function literals that capture variables (the closure cell escapes
//     unless the callee provably doesn't retain it — sites pinned
//     non-escaping by a benchmark carry an allow directive saying so);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - go and defer statements.
//
// Intentional cold-path allocations inside a hot function — lazily growing
// a scratch buffer, building an error — are suppressed line by line with
// //mussti:allow=hotalloc plus a reason, which doubles as documentation of
// why the allocation is acceptable.
var HotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags per-call heap allocations inside //mussti:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

// checkHotFunc walks one hot function's body with an ancestor stack, so
// failure-path constructs (inside return or panic) can be exempted.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CompositeLit:
			checkCompositeLit(pass, fn, n, stack)
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, stack)
		case *ast.FuncLit:
			if capturesVariables(pass, n) && !onFailurePath(stack) {
				pass.Reportf(n.Pos(), "%s is a hot path: closure captures variables and may heap-allocate per call (hoist it, or allow with the benchmark that pins it non-escaping)", fn.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !onFailurePath(stack) {
				if t := pass.TypesInfo.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "%s is a hot path: string concatenation allocates per call", fn.Name.Name)
					}
				}
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is a hot path: starting a goroutine allocates per call", fn.Name.Name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "%s is a hot path: defer costs per call; restructure with explicit cleanup", fn.Name.Name)
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// checkCompositeLit flags literals whose backing store heap-allocates: map
// and slice literals always, struct literals only behind &. Value struct
// and array literals live on the stack and pass.
func checkCompositeLit(pass *Pass, fn *ast.FuncDecl, lit *ast.CompositeLit, stack []ast.Node) {
	if onFailurePath(stack) {
		return
	}
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "%s is a hot path: map literal allocates per call", fn.Name.Name)
	case *types.Slice:
		pass.Reportf(lit.Pos(), "%s is a hot path: slice literal allocates per call (a [N]T array stays on the stack)", fn.Name.Name)
	default:
		if len(stack) >= 2 {
			if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == lit {
				pass.Reportf(u.Pos(), "%s is a hot path: &%s{...} escapes to the heap per call", fn.Name.Name, types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
	}
}

// checkHotCall flags allocating builtins and fmt calls.
func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	if pass.TypesInfo.Types[call.Fun].IsType() {
		// Conversion: string <-> []byte/[]rune copies per call.
		if onFailurePath(stack) {
			return
		}
		to := pass.TypesInfo.TypeOf(call)
		from := pass.TypesInfo.TypeOf(call.Args[0])
		if to != nil && from != nil && isStringBytesPair(to, from) {
			pass.Reportf(call.Pos(), "%s is a hot path: %s conversion copies per call", fn.Name.Name, types.TypeString(to, types.RelativeTo(pass.Pkg)))
		}
		return
	}
	obj := calleeObj(pass, call)
	if obj == nil {
		return
	}
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "make", "new":
			if !onFailurePath(stack) {
				pass.Reportf(call.Pos(), "%s is a hot path: %s allocates per call (reuse a scratch buffer, or allow the growth branch with a reason)", fn.Name.Name, b.Name())
			}
		}
		return
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && !onFailurePath(stack) {
		pass.Reportf(call.Pos(), "%s is a hot path: fmt.%s formats and allocates per call", fn.Name.Name, obj.Name())
	}
}

// onFailurePath reports whether the innermost node sits under a return
// statement or a panic argument — paths taken only when the call is about
// to unwind, hence never in steady state.
func onFailurePath(stack []ast.Node) bool {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// capturesVariables reports whether the function literal references any
// variable declared outside itself (a closure that needs a heap cell when
// it escapes).
func capturesVariables(pass *Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Package-level variables are not captured; locals declared before
		// the literal but used inside it are.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() {
			captures = true
		}
		return !captures
	})
	return captures
}

// isStringBytesPair reports whether the conversion moves between string and
// []byte/[]rune in either direction.
func isStringBytesPair(a, b types.Type) bool {
	isStr := func(t types.Type) bool {
		bt, ok := t.Underlying().(*types.Basic)
		return ok && bt.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(a) && isByteSlice(b)) || (isByteSlice(a) && isStr(b))
}
