package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic that survived suppression filtering.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form, with
// the analyzer name as a suffix tag so output lines are self-identifying.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// Check runs every analyzer over every error-free package and returns the
// unsuppressed findings, ordered by file position. Packages that failed to
// load or type-check are skipped — the caller reports pkg.Errors itself —
// so analyzers never see partial type information.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			continue
		}
		// Suppression indexes, one per file, keyed by filename.
		supp := make(map[string]suppressions, len(pkg.Files))
		for _, f := range pkg.Files {
			supp[pkg.Fset.Position(f.Package).Filename] = collectSuppressions(pkg.Fset, f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				if s, ok := supp[posn.Filename]; ok && s.allows(a.Name, posn.Line) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: posn, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			pass.Report = func(Diagnostic) { panic("analysis: Report called after Run returned") }
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
