package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SempairAnalyzer proves the invariant behind eval's slot accounting: the
// worker-pool semaphore never oversubscribes and never loses capacity. It
// abstractly interprets every function (and function literal) over all
// control-flow paths — if/else, loops to a fixpoint, switch, select per comm
// clause, defer, break/continue/return — tracking two balances:
//
//   - semaphore slots: a send on a channel whose name is semaphore-like
//     ("sem", "semCh", "workerSem", ...) or a call to a method named Acquire
//     acquires one; the matching receive or a Release call releases it.
//     Every path to an exit must end with balance zero: a positive balance
//     is a slot leaked (the pool shrinks forever), a negative one is an
//     over-release (the pool oversubscribes).
//   - borrowed slots: v := x.borrowSlots(n) creates a live borrow bound to
//     v; x.releaseSlots(v) returns it. A path that exits with a live borrow,
//     or discards the borrowSlots result, can never return the slots.
//
// The two blessed low-level primitives themselves (borrowSlots exits holding
// what it hands the caller; releaseSlots drains on the caller's behalf) are
// intentionally unbalanced and carry //mussti:allow=sempair directives —
// every other unbalanced path is a bug. Functions using goto are skipped.
var SempairAnalyzer = &Analyzer{
	Name: "sempair",
	Doc:  "flags semaphore acquire/release and slot borrow/return imbalances on any control-flow path",
	Run:  runSempair,
}

const (
	// semMaxPending saturates the unmatched-acquire stack so loops that
	// acquire without releasing still reach a fixpoint.
	semMaxPending = 4
	// semMaxStates caps the abstract state set per scope; beyond it the
	// function is skipped rather than mis-reported.
	semMaxStates = 48
	// semMaxIters caps loop fixpoint rounds (paranoia; the state lattice is
	// finite, so this should never bind).
	semMaxIters = 64
)

func runSempair(pass *Pass) error {
	for _, f := range pass.Files {
		// A function literal that is immediately invoked or deferred runs in
		// its launcher's scope, so its effects count there; one launched by
		// go (and one stored or passed as a value) is its own scope.
		inline := map[*ast.FuncLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					inline[lit] = false
				}
			case *ast.CallExpr:
				if lit, ok := n.Fun.(*ast.FuncLit); ok {
					if _, isGo := inline[lit]; !isGo {
						inline[lit] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					newSemInterp(pass, inline).checkScope(n.Body)
				}
			case *ast.FuncLit:
				if !inline[n] {
					newSemInterp(pass, inline).checkScope(n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// --- abstract state ---------------------------------------------------------

// semState is one abstract execution state: the positions of semaphore
// acquires not yet released on this path, and the live borrowSlots tokens
// (variable -> borrow position).
type semState struct {
	acquires []token.Pos
	borrows  map[*types.Var]token.Pos
}

func (st semState) key() string {
	var b strings.Builder
	for _, p := range st.acquires {
		fmt.Fprintf(&b, "a%d,", p)
	}
	ps := make([]int, 0, len(st.borrows))
	for _, p := range st.borrows { //mussti:allow=determinism positions are sorted before use
		ps = append(ps, int(p))
	}
	sort.Ints(ps)
	for _, p := range ps {
		fmt.Fprintf(&b, "b%d,", p)
	}
	return b.String()
}

func (st semState) withAcquire(pos token.Pos) semState {
	if len(st.acquires) >= semMaxPending {
		return st // saturate: the leak is already visible on shorter paths
	}
	next := make([]token.Pos, len(st.acquires)+1)
	copy(next, st.acquires)
	next[len(st.acquires)] = pos
	st.acquires = next
	return st
}

func (st semState) withRelease() semState {
	st.acquires = st.acquires[:len(st.acquires)-1]
	return st
}

func (st semState) withBorrow(v *types.Var, pos token.Pos) semState {
	next := make(map[*types.Var]token.Pos, len(st.borrows)+1)
	for k, p := range st.borrows {
		next[k] = p
	}
	next[v] = pos
	st.borrows = next
	return st
}

func (st semState) withReturnedBorrow(v *types.Var) semState {
	if _, live := st.borrows[v]; !live {
		return st
	}
	next := make(map[*types.Var]token.Pos, len(st.borrows))
	for k, p := range st.borrows {
		if k != v {
			next[k] = p
		}
	}
	st.borrows = next
	return st
}

// mergeStates unions two state sets, deduplicating by key.
func mergeStates(a, b []semState) []semState {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]semState, 0, len(a)+len(b))
	for _, set := range [2][]semState{a, b} {
		for _, st := range set {
			if k := st.key(); !seen[k] {
				seen[k] = true
				out = append(out, st)
			}
		}
	}
	return out
}

// --- effects ----------------------------------------------------------------

type semOpKind int

const (
	opAcquire semOpKind = iota
	opRelease
	opBorrow        // tok is the bound variable
	opBorrowDropped // borrowSlots result not bound to a variable
	opReturnBorrow  // tok may be nil (untracked argument: no effect)
)

type semOp struct {
	kind semOpKind
	pos  token.Pos
	tok  *types.Var
}

// semFlows accumulates the states that left the normal fall-through path.
// Branch states are keyed "break:<label>" / "continue:<label>" ("" for
// unlabeled) and consumed by the innermost construct they target.
type semFlows struct {
	returns  []semState
	branches map[string][]semState
}

func (fl *semFlows) branch(kind, label string, states []semState) {
	if fl.branches == nil {
		fl.branches = map[string][]semState{}
	}
	key := kind + ":" + label
	fl.branches[key] = append(fl.branches[key], states...)
}

// take removes and returns the states parked under kind for the empty label
// and, when non-empty, the given label.
func (fl *semFlows) take(kind, label string) []semState {
	out := mergeStates(nil, fl.branches[kind+":"])
	delete(fl.branches, kind+":")
	if label != "" {
		out = mergeStates(out, fl.branches[kind+":"+label])
		delete(fl.branches, kind+":"+label)
	}
	return out
}

// --- interpreter ------------------------------------------------------------

type semInterp struct {
	pass     *Pass
	inline   map[*ast.FuncLit]bool
	bail     bool
	reported map[token.Pos]bool
}

func newSemInterp(pass *Pass, inline map[*ast.FuncLit]bool) *semInterp {
	return &semInterp{pass: pass, inline: inline, reported: map[token.Pos]bool{}}
}

func (in *semInterp) reportOnce(pos token.Pos, format string, args ...any) {
	if !in.reported[pos] {
		in.reported[pos] = true
		in.pass.Reportf(pos, format, args...)
	}
}

// checkScope interprets one function body. Bodies without semaphore traffic
// (the overwhelming majority) are skipped after a single cheap scan.
func (in *semInterp) checkScope(body *ast.BlockStmt) {
	touches, hasGoto := in.scanScope(body)
	if !touches || hasGoto {
		return // goto-using functions are beyond this interpreter; none exist
	}
	var fl semFlows
	out := in.execStmt(body, []semState{{}}, &fl)
	if in.bail {
		return
	}
	for _, st := range mergeStates(out, fl.returns) {
		for _, pos := range st.acquires {
			in.reportOnce(pos, "semaphore slot acquired here is not released on every path to an exit: the pool loses capacity")
		}
		for _, pos := range st.borrows { //mussti:allow=determinism reportOnce dedups by position and the checker sorts findings positionally
			in.reportOnce(pos, "slots borrowed here are not returned via releaseSlots on every path to an exit")
		}
	}
}

// scanScope reports whether the body (excluding nested function literals)
// contains any semaphore traffic, and whether it uses goto.
func (in *semInterp) scanScope(body *ast.BlockStmt) (touches, hasGoto bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return in.inline[n]
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				hasGoto = true
			}
		case *ast.SendStmt:
			if in.isSemChan(n.Chan) {
				touches = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && in.isSemChan(n.X) {
				touches = true
			}
		case *ast.CallExpr:
			if in.callKind(n) >= 0 {
				touches = true
			}
		}
		return true
	})
	return touches, hasGoto
}

// isSemChan reports whether the expression is a channel whose terminal name
// marks it as a semaphore.
func (in *semInterp) isSemChan(e ast.Expr) bool {
	var name string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	if !(name == "sem" || strings.HasPrefix(name, "sem") ||
		strings.HasSuffix(name, "Sem") || strings.HasSuffix(name, "Semaphore")) {
		return false
	}
	t := in.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// callKind classifies a call: 0 = Acquire, 1 = Release, 2 = borrowSlots,
// 3 = releaseSlots, -1 = not semaphore traffic. Acquire/Release must be
// method calls (a package-level function named Release is not a semaphore).
func (in *semInterp) callKind(call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return -1
	}
	if in.pass.TypesInfo.Selections[sel] == nil {
		return -1
	}
	switch sel.Sel.Name {
	case "Acquire":
		return 0
	case "Release":
		return 1
	case "borrowSlots":
		return 2
	case "releaseSlots":
		return 3
	}
	return -1
}

// nodeOps extracts the semaphore effects of one statement or expression in
// syntactic order, excluding nested function literals (each is its own
// scope) and go-statement bodies (the effects run on the new goroutine).
func (in *semInterp) nodeOps(n ast.Node) []semOp {
	var ops []semOp
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// Inline (immediately-invoked or deferred) literals run here, so
			// their effects apply in this scope, linearized; others do not.
			return in.inline[x]
		case *ast.SendStmt:
			if in.isSemChan(x.Chan) {
				ops = append(ops, semOp{kind: opAcquire, pos: x.Arrow})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && in.isSemChan(x.X) {
				ops = append(ops, semOp{kind: opRelease, pos: x.OpPos})
			}
		case *ast.CallExpr:
			switch in.callKind(x) {
			case 0:
				ops = append(ops, semOp{kind: opAcquire, pos: x.Pos()})
			case 1:
				ops = append(ops, semOp{kind: opRelease, pos: x.Pos()})
			case 2:
				ops = append(ops, semOp{kind: opBorrowDropped, pos: x.Pos()})
			case 3:
				ops = append(ops, semOp{kind: opReturnBorrow, pos: x.Pos(), tok: in.argVar(x)})
			}
		}
		return true
	})
	return ops
}

// argVar resolves a call's single argument to a variable, or nil.
func (in *semInterp) argVar(call *ast.CallExpr) *types.Var {
	if len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := in.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// applyOps threads one effect list through every state.
func (in *semInterp) applyOps(ops []semOp, states []semState) []semState {
	for _, op := range ops {
		if op.kind == opBorrowDropped {
			in.reportOnce(op.pos, "borrowSlots result is discarded: the borrowed slots can never be returned")
			continue
		}
		out := states[:0:0]
		for _, st := range states {
			switch op.kind {
			case opAcquire:
				st = st.withAcquire(op.pos)
			case opRelease:
				if len(st.acquires) == 0 {
					in.reportOnce(op.pos, "semaphore released here without a matching acquire on this path: the pool oversubscribes")
				} else {
					st = st.withRelease()
				}
			case opReturnBorrow:
				if op.tok != nil {
					st = st.withReturnedBorrow(op.tok)
				}
			}
			out = append(out, st)
		}
		states = mergeStates(nil, out)
	}
	return states
}

// applyNode applies a statement or expression's effects, special-casing
// borrow bindings (v := x.borrowSlots(n) and var v = x.borrowSlots(n)) so
// the token attaches to the assigned variable instead of being reported as
// dropped.
func (in *semInterp) applyNode(n ast.Node, states []semState) []semState {
	if n == nil {
		return states
	}
	if lhs, call, ok := in.borrowBinding(n); ok {
		for _, a := range call.Args {
			states = in.applyNode(a, states)
		}
		v := in.lhsVar(lhs)
		if v == nil {
			// Bound to a blank or untrackable target: can't follow it; the
			// result is still reachable, so stay silent rather than guess.
			return states
		}
		out := states[:0:0]
		for _, st := range states {
			if _, live := st.borrows[v]; live {
				in.reportOnce(call.Pos(), "borrowSlots overwrites %s while previously borrowed slots are still unreturned", v.Name())
			}
			out = append(out, st.withBorrow(v, call.Pos()))
		}
		return mergeStates(nil, out)
	}
	return in.applyOps(in.nodeOps(n), states)
}

// borrowBinding matches `lhs = x.borrowSlots(n)`, `lhs := ...` and
// `var lhs = ...` forms with a single target.
func (in *semInterp) borrowBinding(n ast.Node) (ast.Expr, *ast.CallExpr, bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && in.callKind(call) == 2 {
				return n.Lhs[0], call, true
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && len(gd.Specs) == 1 {
			if vs, ok := gd.Specs[0].(*ast.ValueSpec); ok && len(vs.Names) == 1 && len(vs.Values) == 1 {
				if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok && in.callKind(call) == 2 {
					return vs.Names[0], call, true
				}
			}
		}
	}
	return nil, nil, false
}

// lhsVar resolves an assignment target to its variable, or nil.
func (in *semInterp) lhsVar(lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := in.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := in.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// isPanicCall matches a statement that unconditionally unwinds.
func (in *semInterp) isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// --- statement execution ----------------------------------------------------

func (in *semInterp) execBlock(list []ast.Stmt, states []semState, fl *semFlows) []semState {
	for _, s := range list {
		states = in.execStmt(s, states, fl)
		if in.bail {
			return nil
		}
	}
	return states
}

func (in *semInterp) execStmt(s ast.Stmt, states []semState, fl *semFlows) []semState {
	if in.bail || len(states) == 0 {
		return nil
	}
	if len(states) > semMaxStates {
		in.bail = true
		return nil
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return in.execBlock(s.List, states, fl)
	case *ast.IfStmt:
		if s.Init != nil {
			states = in.execStmt(s.Init, states, fl)
		}
		states = in.applyNode(s.Cond, states)
		thenOut := in.execStmt(s.Body, states, fl)
		elseOut := states
		if s.Else != nil {
			elseOut = in.execStmt(s.Else, states, fl)
		}
		return mergeStates(thenOut, elseOut)
	case *ast.ForStmt:
		return in.execFor(s, states, fl, "")
	case *ast.RangeStmt:
		return in.execRange(s, states, fl, "")
	case *ast.LabeledStmt:
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			return in.execFor(inner, states, fl, s.Label.Name)
		case *ast.RangeStmt:
			return in.execRange(inner, states, fl, s.Label.Name)
		case *ast.SwitchStmt:
			return in.execSwitch(inner, states, fl, s.Label.Name)
		case *ast.TypeSwitchStmt:
			return in.execTypeSwitch(inner, states, fl, s.Label.Name)
		case *ast.SelectStmt:
			return in.execSelect(inner, states, fl, s.Label.Name)
		default:
			return in.execStmt(s.Stmt, states, fl)
		}
	case *ast.SwitchStmt:
		return in.execSwitch(s, states, fl, "")
	case *ast.TypeSwitchStmt:
		return in.execTypeSwitch(s, states, fl, "")
	case *ast.SelectStmt:
		return in.execSelect(s, states, fl, "")
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			states = in.applyNode(e, states)
		}
		fl.returns = append(fl.returns, states...)
		return nil
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			fl.branch("break", label, states)
		case token.CONTINUE:
			fl.branch("continue", label, states)
		case token.GOTO:
			in.bail = true
		case token.FALLTHROUGH:
			// Treated as end-of-case: the next case's body re-runs from the
			// switch entry state, a mild over-approximation.
		}
		return nil
	case *ast.GoStmt:
		// The body's effects run on the new goroutine (its literal is its
		// own scope); only the argument expressions evaluate here.
		for _, a := range s.Call.Args {
			states = in.applyNode(a, states)
		}
		return states
	case *ast.DeferStmt:
		// A deferred release runs at exit; for pairing purposes applying it
		// here is equivalent (the analyzer checks balance, not timing).
		return in.applyNode(s.Call, states)
	default:
		if in.isPanicCall(s) {
			in.applyNode(s, states) // argument effects still happen
			return nil              // then the path unwinds
		}
		return in.applyNode(s, states)
	}
}

func (in *semInterp) execFor(s *ast.ForStmt, states []semState, fl *semFlows, label string) []semState {
	if s.Init != nil {
		states = in.execStmt(s.Init, states, fl)
	}
	var exits []semState
	seen := map[string]bool{}
	work := states
	for iter := 0; len(work) > 0 && !in.bail; iter++ {
		if iter >= semMaxIters {
			in.bail = true
			return nil
		}
		var fresh []semState
		for _, st := range work {
			if k := st.key(); !seen[k] {
				seen[k] = true
				fresh = append(fresh, st)
			}
		}
		if len(fresh) == 0 {
			break
		}
		if s.Cond != nil {
			fresh = in.applyNode(s.Cond, fresh)
			// The condition can be false on loop entry or any iteration.
			exits = mergeStates(exits, fresh)
		}
		out := in.execStmt(s.Body, fresh, fl)
		cont := mergeStates(out, fl.take("continue", label))
		if s.Post != nil {
			cont = in.execStmt(s.Post, cont, fl)
		}
		exits = mergeStates(exits, fl.take("break", label))
		work = cont
	}
	return exits
}

func (in *semInterp) execRange(s *ast.RangeStmt, states []semState, fl *semFlows, label string) []semState {
	states = in.applyNode(s.X, states)
	exits := states // zero iterations
	seen := map[string]bool{}
	work := states
	for iter := 0; len(work) > 0 && !in.bail; iter++ {
		if iter >= semMaxIters {
			in.bail = true
			return nil
		}
		var fresh []semState
		for _, st := range work {
			if k := st.key(); !seen[k] {
				seen[k] = true
				fresh = append(fresh, st)
			}
		}
		if len(fresh) == 0 {
			break
		}
		out := in.execStmt(s.Body, fresh, fl)
		cont := mergeStates(out, fl.take("continue", label))
		exits = mergeStates(exits, cont) // the range can end after any iteration
		exits = mergeStates(exits, fl.take("break", label))
		work = cont
	}
	return exits
}

func (in *semInterp) execSwitch(s *ast.SwitchStmt, states []semState, fl *semFlows, label string) []semState {
	if s.Init != nil {
		states = in.execStmt(s.Init, states, fl)
	}
	if s.Tag != nil {
		states = in.applyNode(s.Tag, states)
	}
	var out []semState
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		st := states
		for _, e := range cc.List {
			st = in.applyNode(e, st)
		}
		out = mergeStates(out, in.execBlock(cc.Body, st, fl))
	}
	if !hasDefault {
		out = mergeStates(out, states) // no case matched
	}
	return mergeStates(out, fl.take("break", label))
}

func (in *semInterp) execTypeSwitch(s *ast.TypeSwitchStmt, states []semState, fl *semFlows, label string) []semState {
	if s.Init != nil {
		states = in.execStmt(s.Init, states, fl)
	}
	states = in.execStmt(s.Assign, states, fl)
	var out []semState
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		out = mergeStates(out, in.execBlock(cc.Body, states, fl))
	}
	if !hasDefault {
		out = mergeStates(out, states)
	}
	return mergeStates(out, fl.take("break", label))
}

func (in *semInterp) execSelect(s *ast.SelectStmt, states []semState, fl *semFlows, label string) []semState {
	if len(s.Body.List) == 0 {
		return nil // empty select blocks forever
	}
	var out []semState
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		st := states
		if cc.Comm != nil {
			st = in.execStmt(cc.Comm, st, fl)
		}
		out = mergeStates(out, in.execBlock(cc.Body, st, fl))
	}
	return mergeStates(out, fl.take("break", label))
}
