package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked compilation unit ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Errors holds parse/type-check problems. Analyzers are not run over
	// packages with errors; the driver surfaces them instead, like go vet.
	Errors []error
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir, "" = cwd),
// compiles their dependencies' export data via the go command, and parses +
// type-checks every matched package from source. It needs no network and no
// module dependencies: type information for imports is read from the build
// cache's export files, exactly as `go vet` feeds its unitchecker.
//
// Test files are deliberately excluded: the suite's invariants protect
// production determinism and hot paths; tests are free to use wall clock,
// randomness and allocations.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, keyed by resolved package path.
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Name == "" {
			continue
		}
		pkg := &Package{PkgPath: lp.ImportPath, Fset: fset}
		if lp.Error != nil {
			pkg.Errors = append(pkg.Errors, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err))
		}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				pkg.Errors = append(pkg.Errors, err)
				continue
			}
			pkg.Files = append(pkg.Files, f)
		}
		if len(pkg.Errors) == 0 {
			imp := NewExportImporter(fset, exports, lp.ImportMap)
			pkg.Types, pkg.Info, pkg.Errors = TypeCheck(fset, lp.ImportPath, pkg.Files, imp)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// listCache memoizes goList output per (dir, patterns) for the life of the
// process. Every analyzer run over the same tree — the six passes of one
// Check call, repeated fixture loads in the test binary — shares one
// `go list -export` invocation, by far the slowest step of a load.
var listCache sync.Map // string -> []listedPackage

// goList runs `go list -e -deps -export -json` over the patterns and decodes
// the package stream. Results are cached; see listCache. The module mode is
// forced to -mod=mod so a stray vendor/ directory or workspace default can
// not starve the loader of export data — unless GOFLAGS explicitly pins a
// -mod, which is honored (the command line would override GOFLAGS, so the
// flag is simply not passed then).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	if cached, ok := listCache.Load(key); ok {
		return cached.([]listedPackage), nil
	}
	args := []string{"list", "-e", "-deps", "-export"}
	if !strings.Contains(os.Getenv("GOFLAGS"), "-mod=") {
		args = append(args, "-mod=mod")
	}
	args = append(args, "-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,ImportMap,Incomplete,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	listCache.Store(key, listed)
	return listed, nil
}

// NewExportImporter returns a types.Importer that reads gc export data files.
// exports maps resolved package paths to export data files; importMap (may be
// nil) first translates source-level import paths (vendoring etc.), matching
// the contract of go list's ImportMap and vet's Config.ImportMap.
func NewExportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	base := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if resolved, ok := importMap[path]; ok {
			path = resolved
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return base.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TypeCheck type-checks one package's parsed files, returning the package,
// full type info and any errors. Checking continues past errors so partial
// info is available, but callers should not analyze packages with errors.
func TypeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil && len(errs) == 0 {
		errs = append(errs, err)
	}
	return pkg, info, errs
}
