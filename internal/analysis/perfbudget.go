package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// This file is the enforcement half of the compiler-feedback tier. The
// committed perfbudget.json records, for every //mussti:hotpath and
// //mussti:inline function, what the compiler proved about it: how many
// heap escapes and unelided bounds checks it contains, and whether it is
// inlinable. CheckBudget compares a fresh fact collection against the
// committed file and reports any drift — in either direction, so an
// improvement is also recorded (by regenerating) rather than silently
// banked. Regeneration is one command: musstilint -writebudget.

// BudgetFile is the budget's committed location, relative to the module
// root.
const BudgetFile = "perfbudget.json"

// A FuncBudget is the compiler-verified profile of one annotated function.
type FuncBudget struct {
	// Escapes counts distinct heap-escape sites inside the function.
	Escapes int `json:"escapes"`
	// Bounds counts bounds checks the SSA backend could not eliminate.
	Bounds int `json:"bounds"`
	// Inline records inlinability for //mussti:inline functions (absent
	// for hotpath-only functions; never legitimately false in a committed
	// budget, since -writebudget refuses to record a regression).
	Inline bool `json:"inline,omitempty"`
}

// A Budget is the full committed file: the toolchain that produced it plus
// one entry per annotated function, keyed "pkgpath.(*Recv).Name".
type Budget struct {
	Go        string                `json:"go"`
	GOARCH    string                `json:"goarch"`
	Functions map[string]FuncBudget `json:"functions"`
}

// A BudgetResult is a freshly computed budget plus the evidence behind it,
// for diff reporting.
type BudgetResult struct {
	Budget *Budget
	// FuncFacts holds each function's escape/bounds facts (and its inline
	// verdict), keyed like Budget.Functions.
	FuncFacts map[string][]CompilerFact
	// InlineAnnotated marks the keys carrying //mussti:inline.
	InlineAnnotated map[string]bool
	// InlineFailure holds the compiler's reason for each annotated
	// function that is not inlinable.
	InlineFailure map[string]string
}

// ComputeBudget folds a compiler fact stream onto the annotated functions
// of the loaded packages. Packages with errors are skipped (the caller
// surfaces those separately); fact positions are module-root-relative,
// matching CollectCompilerFacts.
func ComputeBudget(modroot string, pkgs []*Package, facts []CompilerFact) (*BudgetResult, error) {
	byFile := make(map[string][]CompilerFact)
	for _, f := range facts {
		byFile[f.File] = append(byFile[f.File], f)
	}
	res := &BudgetResult{
		Budget:          &Budget{Go: runtime.Version(), GOARCH: runtime.GOARCH, Functions: map[string]FuncBudget{}},
		FuncFacts:       map[string][]CompilerFact{},
		InlineAnnotated: map[string]bool{},
		InlineFailure:   map[string]string{},
	}
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				hot := hasDirective(fn.Doc, "hotpath")
				inl := hasDirective(fn.Doc, "inline")
				if !hot && !inl {
					continue
				}
				key := funcKey(pkg.PkgPath, fn)
				if _, dup := res.Budget.Functions[key]; dup {
					return nil, fmt.Errorf("analysis: duplicate budget key %s", key)
				}
				pos := pkg.Fset.Position(fn.Pos())
				end := pkg.Fset.Position(fn.End())
				rel, err := filepath.Rel(modroot, pos.Filename)
				if err != nil {
					return nil, fmt.Errorf("analysis: %s outside module root %s: %v", pos.Filename, modroot, err)
				}
				rel = filepath.ToSlash(rel)
				fb := FuncBudget{}
				for _, fact := range byFile[rel] {
					if fact.Line < pos.Line || fact.Line > end.Line {
						continue
					}
					switch fact.Kind {
					case FactEscape:
						fb.Escapes++
						res.FuncFacts[key] = append(res.FuncFacts[key], fact)
					case FactBounds:
						fb.Bounds++
						res.FuncFacts[key] = append(res.FuncFacts[key], fact)
					case FactCanInline, FactCannotInline:
						if fact.Line == pos.Line && inl {
							res.FuncFacts[key] = append(res.FuncFacts[key], fact)
							if fact.Kind == FactCanInline {
								fb.Inline = true
							} else {
								res.InlineFailure[key] = fact.Detail
							}
						}
					}
				}
				if inl {
					res.InlineAnnotated[key] = true
					if !fb.Inline && res.InlineFailure[key] == "" {
						res.InlineFailure[key] = "no inlining verdict recorded at the declaration (stale build cache?)"
					}
				}
				res.Budget.Functions[key] = fb
			}
		}
	}
	return res, nil
}

// funcKey renders a budget key: pkgpath.Name, pkgpath.Recv.Name or
// pkgpath.(*Recv).Name.
func funcKey(pkgPath string, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return pkgPath + "." + fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	star := false
	if s, ok := t.(*ast.StarExpr); ok {
		star = true
		t = s.X
	}
	name := "?"
	if id, ok := t.(*ast.Ident); ok {
		name = id.Name
	}
	if star {
		return fmt.Sprintf("%s.(*%s).%s", pkgPath, name, fn.Name.Name)
	}
	return fmt.Sprintf("%s.%s.%s", pkgPath, name, fn.Name.Name)
}

// ReadBudgetFile loads a committed budget.
func ReadBudgetFile(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %v", path, err)
	}
	if b.Functions == nil {
		b.Functions = map[string]FuncBudget{}
	}
	return &b, nil
}

// WriteBudgetFile commits a budget, stable and human-diffable (json
// marshals the function map in key order).
func WriteBudgetFile(path string, b *Budget) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// A BudgetDrift is one divergence between the committed budget and the
// compiler's current verdict, with the facts that prove it.
type BudgetDrift struct {
	Key     string
	Message string
	Facts   []CompilerFact
}

func (d BudgetDrift) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", d.Key, d.Message)
	for _, f := range d.Facts {
		fmt.Fprintf(&b, "\n\t%s", f)
	}
	return b.String()
}

// CheckBudget diffs the committed budget against a fresh result. Any drift
// — a regression, an improvement, an annotation added or removed — is
// reported; the committed file must exactly describe the tree.
func CheckBudget(committed *Budget, res *BudgetResult) []BudgetDrift {
	var drifts []BudgetDrift
	add := func(key, msg string, facts []CompilerFact) {
		drifts = append(drifts, BudgetDrift{Key: key, Message: msg, Facts: facts})
	}
	current := res.Budget.Functions
	for key, cur := range current { //mussti:allow=determinism drifts are sorted before returning
		want, ok := committed.Functions[key]
		if !ok {
			add(key, "annotated in source but missing from "+BudgetFile, nil)
			continue
		}
		if reason, bad := res.InlineFailure[key]; bad && res.InlineAnnotated[key] {
			add(key, "must stay inlinable but the compiler says: cannot inline: "+reason, nil)
		}
		if cur.Escapes != want.Escapes {
			add(key, fmt.Sprintf("heap escapes drifted: budget %d, compiler now reports %d", want.Escapes, cur.Escapes),
				factsOfKind(res.FuncFacts[key], FactEscape))
		}
		if cur.Bounds != want.Bounds {
			add(key, fmt.Sprintf("bounds checks drifted: budget %d, compiler now reports %d", want.Bounds, cur.Bounds),
				factsOfKind(res.FuncFacts[key], FactBounds))
		}
	}
	for key := range committed.Functions { //mussti:allow=determinism drifts are sorted before returning
		if _, ok := current[key]; !ok {
			add(key, "present in "+BudgetFile+" but no longer annotated in source", nil)
		}
	}
	sort.Slice(drifts, func(i, j int) bool {
		if drifts[i].Key != drifts[j].Key {
			return drifts[i].Key < drifts[j].Key
		}
		return drifts[i].Message < drifts[j].Message
	})
	return drifts
}

// InlineRegressions lists the //mussti:inline functions the compiler
// currently refuses to inline. -writebudget fails on these rather than
// committing a budget that contradicts its own annotations.
func (res *BudgetResult) InlineRegressions() []BudgetDrift {
	var out []BudgetDrift
	for key := range res.InlineAnnotated { //mussti:allow=determinism regressions are sorted before returning
		if reason, bad := res.InlineFailure[key]; bad {
			out = append(out, BudgetDrift{Key: key, Message: "cannot inline: " + reason})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func factsOfKind(facts []CompilerFact, kind FactKind) []CompilerFact {
	var out []CompilerFact
	for _, f := range facts {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}
