package analysis

import (
	"crypto/sha256"
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// WirePackages names the packages whose exported struct types form a
// cross-process wire format. Composite literals of these types must be
// keyed everywhere in the repo: an unkeyed (positional) literal silently
// changes meaning when a field is inserted — exactly the failure the
// versioned envelope exists to prevent.
var WirePackages = map[string]bool{
	"mussti/internal/dist": true,
}

// WirecompatAnalyzer protects the versioned internal/dist wire format.
// Structs annotated //mussti:wire are the envelope schema; the pass
// enforces, per package that declares any:
//
//   - no map, chan, func or interface fields (not losslessly and
//     deterministically serializable), no unexported fields (silently
//     dropped by encoding/json), and an explicit json tag on every field —
//     the wire layout must be spelled, not inferred;
//   - an integer EnvelopeVersion constant and a string wireChecksum
//     constant whose value matches a fingerprint of (version, every wire
//     struct's fields in declaration order). Any schema edit therefore
//     fails the lint with the new expected checksum in the message: pasting
//     it in is the conscious "I versioned this change" act, and the diff
//     shows checksum (and version, when compatibility breaks) next to the
//     field change for review.
//
// Everywhere else, composite literals of WirePackages struct types must use
// field keys.
var WirecompatAnalyzer = &Analyzer{
	Name: "wirecompat",
	Doc:  "flags wire-envelope fields that break serializability and schema changes without a version/checksum bump",
	Run:  runWirecompat,
}

func runWirecompat(pass *Pass) error {
	wire := collectWireStructs(pass)
	if len(wire) > 0 {
		for _, ws := range wire {
			checkWireFields(pass, ws)
		}
		checkChecksum(pass, wire)
	}
	checkKeyedLiterals(pass, wire)
	return nil
}

// wireStruct is one //mussti:wire-annotated declaration.
type wireStruct struct {
	name string
	spec *ast.TypeSpec
	st   *ast.StructType
}

// collectWireStructs gathers annotated struct declarations in source order.
// The directive may sit on the TypeSpec or (for single-spec declarations)
// on the enclosing GenDecl doc.
func collectWireStructs(pass *Pass) []wireStruct {
	var out []wireStruct
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if hasDirective(ts.Doc, "wire") || (len(gd.Specs) == 1 && hasDirective(gd.Doc, "wire")) {
					out = append(out, wireStruct{name: ts.Name.Name, spec: ts, st: st})
				}
			}
		}
	}
	return out
}

// checkWireFields enforces serializability on one envelope struct.
func checkWireFields(pass *Pass, ws wireStruct) {
	for _, field := range ws.st.Fields.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if bad := unserializableKind(t); bad != "" {
			pass.Reportf(field.Pos(), "wire struct %s: %s field cannot cross the wire losslessly and deterministically; spell the data as explicit fields", ws.name, bad)
		}
		names := field.Names
		if len(names) == 0 {
			pass.Reportf(field.Pos(), "wire struct %s: embedded field flattens the wire layout implicitly; name it", ws.name)
			continue
		}
		for _, name := range names {
			if !name.IsExported() {
				pass.Reportf(name.Pos(), "wire struct %s: unexported field %s is silently dropped by encoding/json", ws.name, name.Name)
				continue
			}
			if field.Tag == nil || !strings.Contains(field.Tag.Value, `json:"`) {
				pass.Reportf(name.Pos(), "wire struct %s: field %s needs an explicit json tag — the wire name is a contract, not an inference", ws.name, name.Name)
			}
		}
	}
}

// unserializableKind names the first wire-hostile type constructor in t, or
// "". Pointers and slices recurse (both encode naturally); named element
// types do not (their own declarations are checked where annotated).
func unserializableKind(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Chan:
		return "chan"
	case *types.Signature:
		return "func"
	case *types.Interface:
		return "interface"
	case *types.Pointer:
		if _, named := types.Unalias(t).(*types.Named); !named {
			return unserializableKind(u.Elem())
		}
	case *types.Slice:
		if _, named := types.Unalias(t).(*types.Named); !named {
			return unserializableKind(u.Elem())
		}
	}
	return ""
}

// checkChecksum verifies the EnvelopeVersion + wireChecksum pinning.
func checkChecksum(pass *Pass, wire []wireStruct) {
	scope := pass.Pkg.Scope()
	verObj, _ := scope.Lookup("EnvelopeVersion").(*types.Const)
	if verObj == nil {
		pass.Reportf(wire[0].spec.Pos(), "package declares wire structs but no integer EnvelopeVersion constant; mixed fleets must fail loudly on format skew")
		return
	}
	want := wireFingerprint(pass, verObj.Val().ExactString(), wire)
	sumObj, _ := scope.Lookup("wireChecksum").(*types.Const)
	if sumObj == nil {
		sumObj, _ = scope.Lookup("WireChecksum").(*types.Const)
	}
	if sumObj == nil {
		pass.Reportf(wire[0].spec.Pos(), "package declares wire structs but no wireChecksum constant; add `const wireChecksum = %q` so schema edits force a reviewed bump", want)
		return
	}
	got := strings.Trim(sumObj.Val().ExactString(), `"`)
	if got != want {
		pass.Reportf(sumObj.Pos(), "wire schema or EnvelopeVersion changed but wireChecksum was not updated: set it to %q — and bump EnvelopeVersion if the change breaks old decoders", want)
	}
}

// wireFingerprint renders the schema canonically and hashes it: the version
// value, then each wire struct in declaration order with its field names,
// package-qualified types and tags.
func wireFingerprint(pass *Pass, version string, wire []wireStruct) string {
	var b strings.Builder
	fmt.Fprintf(&b, "version=%s\n", version)
	qual := func(p *types.Package) string {
		if p == pass.Pkg {
			return ""
		}
		return p.Path()
	}
	for _, ws := range wire {
		fmt.Fprintf(&b, "%s{", ws.name)
		for _, field := range ws.st.Fields.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			ts := "?"
			if t != nil {
				ts = types.TypeString(t, qual)
			}
			tag := ""
			if field.Tag != nil {
				tag = field.Tag.Value
			}
			if len(field.Names) == 0 {
				fmt.Fprintf(&b, "_ %s %s;", ts, tag)
			}
			for _, name := range field.Names {
				fmt.Fprintf(&b, "%s %s %s;", name.Name, ts, tag)
			}
		}
		b.WriteString("}\n")
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:8])
}

// checkKeyedLiterals flags unkeyed composite literals of wire struct types:
// annotated ones in this package, and any struct from a WirePackages
// package (the annotation is invisible across package boundaries, so the
// package path is the contract there).
func checkKeyedLiterals(pass *Pass, wire []wireStruct) {
	local := make(map[string]bool, len(wire))
	for _, ws := range wire {
		local[ws.name] = true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			named, ok := types.Unalias(pass.TypesInfo.TypeOf(lit)).(*types.Named)
			if !ok {
				return true
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				return true
			}
			obj := named.Obj()
			isWire := false
			if obj.Pkg() == pass.Pkg {
				isWire = local[obj.Name()]
			} else if obj.Pkg() != nil {
				isWire = WirePackages[obj.Pkg().Path()]
			}
			if !isWire {
				return true
			}
			for _, elt := range lit.Elts {
				if _, keyed := elt.(*ast.KeyValueExpr); !keyed {
					pass.Reportf(lit.Pos(), "unkeyed composite literal of wire type %s: positional fields silently re-bind when the schema changes; use field keys", obj.Name())
					break
				}
			}
			return true
		})
	}
}
