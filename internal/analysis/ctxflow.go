package analysis

import (
	"go/ast"
	"go/types"
)

// CtxflowAnalyzer protects mid-compile cancellation. Since PR 2 every
// scheduling loop checks its context at each frontier step; that guarantee
// dies silently if an entry point drops the context on the floor or
// restarts the chain with a fresh background context. Two patterns are
// flagged:
//
//   - a function that takes a context.Context but never uses it (including
//     a blank "_" parameter): the caller's deadline and cancellation stop
//     propagating right there.
//   - a call to context.Background() or context.TODO() inside a function
//     that already has a context parameter: downstream work detaches from
//     the caller's cancellation mid-chain. Root-of-chain uses (main, the
//     deprecated no-context wrappers) have no context parameter and are
//     not flagged.
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags dropped context parameters and mid-chain context.Background()/TODO() calls",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxParams(pass, fn)
			checkMidChainBackground(pass, fn)
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParams returns the identifiers of fn's context.Context parameters
// (blank ones included).
func ctxParams(pass *Pass, fn *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	for _, field := range fn.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t == nil || !isContextType(t) {
			continue
		}
		out = append(out, field.Names...)
	}
	return out
}

// checkCtxParams flags context parameters the body never consumes.
func checkCtxParams(pass *Pass, fn *ast.FuncDecl) {
	for _, name := range ctxParams(pass, fn) {
		if name.Name == "_" {
			pass.Reportf(name.Pos(), "%s discards its context.Context: cancellation stops propagating here (name and use it, or suppress with a reason)", fn.Name.Name)
			continue
		}
		obj := pass.TypesInfo.Defs[name]
		if obj == nil {
			continue
		}
		used := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if used {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(name.Pos(), "%s never uses its context.Context parameter %s: cancellation stops propagating here", fn.Name.Name, name.Name)
		}
	}
}

// checkMidChainBackground flags context.Background()/TODO() calls inside
// functions that already received a context.
func checkMidChainBackground(pass *Pass, fn *ast.FuncDecl) {
	if len(ctxParams(pass, fn)) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			// A nested function literal is its own chain root only if it
			// escapes this one; keep checking — detaching inside a closure
			// spawned from a context-bearing function is the same bug.
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeObj(pass, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			switch obj.Name() {
			case "Background", "TODO":
				pass.Reportf(call.Pos(), "%s has a context parameter but calls context.%s(): downstream work detaches from the caller's cancellation", fn.Name.Name, obj.Name())
			}
		}
		return true
	})
}
