package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// This file is the collection half of the compiler-feedback tier: instead of
// guessing at allocations with AST heuristics (hotalloc), it asks the
// compiler itself. One `go build` with escape analysis, inlining and
// bounds-check-elimination diagnostics enabled yields a typed fact stream
// that perfbudget.go folds onto the //mussti:hotpath- and //mussti:inline-
// annotated functions.

// A FactKind classifies one compiler diagnostic.
type FactKind int

const (
	// FactEscape is a heap escape ("moved to heap: x", "... escapes to
	// heap"), deduplicated by position: -m=2 phrases the same escape
	// several ways at one site.
	FactEscape FactKind = iota
	// FactBounds is a bounds check the SSA backend could not eliminate
	// ("Found IsInBounds" / "Found IsSliceInBounds").
	FactBounds
	// FactCanInline records that a function is inlinable, with its cost in
	// Detail.
	FactCanInline
	// FactCannotInline records why a function is not inlinable in Detail.
	FactCannotInline
)

func (k FactKind) String() string {
	switch k {
	case FactEscape:
		return "escape"
	case FactBounds:
		return "bounds"
	case FactCanInline:
		return "can-inline"
	case FactCannotInline:
		return "cannot-inline"
	}
	return "unknown"
}

// A CompilerFact is one diagnostic, positioned by module-root-relative file
// path.
type CompilerFact struct {
	File   string
	Line   int
	Col    int
	Kind   FactKind
	Detail string // the diagnostic message body
}

func (f CompilerFact) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Kind, f.Detail)
}

// BuildFlags are the gcflags handed to every package of the module when
// collecting facts: full escape analysis traces plus bounds-check debugging.
const BuildFlags = "-m=2 -d=ssa/check_bce/debug=1"

// factLine matches one positioned diagnostic. Indented continuation lines
// ("  flow: ...", "  from ..." traces) carry a message starting with a
// space and are classified away by the Kind matchers instead.
var factLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// CollectCompilerFacts builds the whole module with diagnostic flags and
// parses the stream. The build cache replays compiler diagnostics for
// unchanged packages, so warm runs cost little more than a cache probe. A
// failed build returns its stderr as the error.
func CollectCompilerFacts(modroot string) ([]CompilerFact, error) {
	cmd := exec.Command("go", "build", "-gcflags="+BuildFlags, "./...")
	cmd.Dir = modroot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=%q: %v\n%s", BuildFlags, err, stderr.Bytes())
	}
	return parseCompilerFacts(stderr.Bytes())
}

// parseCompilerFacts decodes the diagnostic stream into deduplicated facts.
func parseCompilerFacts(out []byte) ([]CompilerFact, error) {
	var facts []CompilerFact
	seenEscape := map[string]bool{} // file:line:col, -m=2 repeats escapes
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue // package section header
		}
		m := factLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		kind, detail, ok := classifyFact(msg)
		if !ok {
			continue
		}
		ln, err1 := strconv.Atoi(m[2])
		col, err2 := strconv.Atoi(m[3])
		if err1 != nil || err2 != nil {
			continue
		}
		file := filepath.ToSlash(strings.TrimPrefix(m[1], "./"))
		if kind == FactEscape {
			key := fmt.Sprintf("%s:%d:%d", file, ln, col)
			if seenEscape[key] {
				continue
			}
			seenEscape[key] = true
		}
		facts = append(facts, CompilerFact{File: file, Line: ln, Col: col, Kind: kind, Detail: detail})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analysis: scanning compiler diagnostics: %v", err)
	}
	return facts, nil
}

// classifyFact maps one diagnostic message to a fact kind, or ok=false for
// messages the budget does not track (parameter leaks, non-escapes, escape
// flow traces, inline-call markers).
func classifyFact(msg string) (FactKind, string, bool) {
	switch {
	case strings.HasPrefix(msg, " "):
		return 0, "", false // indented -m=2 trace continuation
	case strings.HasPrefix(msg, "moved to heap: "),
		strings.HasSuffix(msg, "escapes to heap"),
		strings.HasSuffix(msg, "escapes to heap:"):
		return FactEscape, strings.TrimSuffix(msg, ":"), true
	case msg == "Found IsInBounds", msg == "Found IsSliceInBounds":
		return FactBounds, msg, true
	case strings.HasPrefix(msg, "can inline "):
		return FactCanInline, strings.TrimPrefix(msg, "can inline "), true
	case strings.HasPrefix(msg, "cannot inline "):
		return FactCannotInline, strings.TrimPrefix(msg, "cannot inline "), true
	}
	return 0, "", false
}
