// Package clean is the determinism analyzer's positive fixture: map-range
// bodies it must accept — commutative integer accumulation, keyed stores,
// loop-local work — plus the allow directive for sanctioned exceptions.
// The fixture test demands zero diagnostics here.
package clean

import (
	"sort"
	"time"
)

// Count tallies entries; integer increments commute.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Total sums integers; += on ints is order-free.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert rebuilds a map through keyed stores: each element lands in its own
// slot no matter the visit order.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Prune deletes in place; the delete builtin commutes.
func Prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// Scale does loop-local arithmetic only.
func Scale(m map[string]int, sink map[string]int) {
	for k, v := range m {
		doubled := v * 2
		sink[k] = doubled
	}
}

// SortedKeys is the sanctioned ordered iteration — collect, sort, then use —
// with the directive documenting why the collection loop is safe.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { //mussti:allow=determinism keys are sorted before use
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stamp demonstrates the wall-clock allow for reporting-only timing.
func Stamp() time.Time {
	return time.Now() //mussti:allow=determinism fixture: reporting metadata, not measured output
}
