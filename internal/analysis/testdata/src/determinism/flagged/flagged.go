// Package flagged is the determinism analyzer's negative fixture: every
// construct below must be reported. The `want` comments carry the expected
// diagnostic as a regexp; the fixture test fails on any mismatch in either
// direction.
package flagged

import (
	"fmt"
	"math/rand" // want `import of "math/rand"`
	"time"
)

// Timestamp reads the wall clock.
func Timestamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic code`
}

// Elapsed measures against the wall clock.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic code`
}

// Roll leans on the global generator (only the import is flagged).
func Roll() int { return rand.Intn(6) }

// Keys collects map keys in whatever order iteration visits them.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `overwrites a variable declared outside the loop`
		out = append(out, k)
	}
	return out
}

// Print renders entries in iteration order.
func Print(m map[string]int) {
	for k, v := range m { // want `calls Println, whose effects may observe iteration order`
		fmt.Println(k, v)
	}
}

// AnyKey returns whichever key iteration happens to visit first.
func AnyKey(m map[string]int) string {
	for k := range m { // want `returns from inside the loop, picking a random element`
		return k
	}
	return ""
}

// Gather appends through a loop-local alias; the append itself is ordered.
func Gather(m map[int]int, sink [][]int) {
	for k := range m { // want `appends in iteration order`
		row := sink[0]
		row = append(row, k)
		sink[0] = row
	}
}

// SumFloats accumulates floats, whose rounding depends on visit order.
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates with \+= on a non-integer`
		sum += v
	}
	return sum
}

// First exits the loop early, keeping a random element. (The keyed store
// itself is order-free; the break is what picks an arbitrary element.)
func First(m map[int]int, sink []int) {
	for k := range m { // want `exits the loop early, picking a random element`
		sink[0] = k
		break
	}
}
