// Package clean is the sempair analyzer's positive fixture: balanced
// semaphore and borrow traffic across branches, loops, selects and defers,
// plus allow-directive coverage for the two deliberately unbalanced
// primitive shapes.
package clean

import "context"

type pool struct{ sem chan struct{} }

func (p *pool) borrowSlots(n int) int { return n }

func (p *pool) releaseSlots(n int) { _ = n }

// balanced pairs acquire and release on the straight path.
func balanced(p *pool, work func()) {
	p.sem <- struct{}{}
	work()
	<-p.sem
}

// deferred releases via defer, which covers every path including the early
// return.
func deferred(p *pool, work func() bool) bool {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	if !work() {
		return false
	}
	return true
}

// selectAcquire acquires through a select and releases on both exits.
func selectAcquire(ctx context.Context, p *pool, work func()) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case p.sem <- struct{}{}:
	}
	work()
	<-p.sem
	return nil
}

// worker loops acquiring and releasing once per iteration.
func worker(ctx context.Context, p *pool, jobs []func()) {
	for _, j := range jobs {
		select {
		case <-ctx.Done():
			return
		case p.sem <- struct{}{}:
		}
		j()
		<-p.sem
	}
}

// borrower returns everything it borrowed on both paths (extra may be zero:
// releasing an unborrowed count is the no-op contract).
func borrower(p *pool, boost bool, work func(int)) {
	extra := 0
	if boost {
		extra = p.borrowSlots(2)
	}
	work(1 + extra)
	p.releaseSlots(extra)
}

// prim mirrors eval's blessed unbalanced helpers: the imbalance is the
// contract, documented by the allow directives.
type prim struct{ sem chan struct{} }

func (p *prim) grab(n int) int {
	got := 0
	for got < n {
		select {
		case p.sem <- struct{}{}: //mussti:allow=sempair the claimed slots are handed to the caller, who returns them via put
			got++
		default:
			return got
		}
	}
	return got
}

func (p *prim) put(n int) {
	for ; n > 0; n-- {
		<-p.sem //mussti:allow=sempair returns slots the caller claimed via grab
	}
}
