// Package flagged is the sempair analyzer's negative fixture: semaphore and
// slot-borrow traffic that goes unbalanced on at least one control-flow
// path.
package flagged

// pool is a counting semaphore with borrowable slots, shaped like eval's
// Runner. The borrow/release stubs only exist to give the calls types.
type pool struct{ sem chan struct{} }

func (p *pool) borrowSlots(n int) int { return n }

func (p *pool) releaseSlots(n int) { _ = n }

// leak acquires and never releases.
func leak(p *pool) {
	p.sem <- struct{}{} // want `not released on every path`
}

// overRelease releases a slot it never acquired.
func overRelease(p *pool) {
	<-p.sem // want `without a matching acquire`
}

// earlyReturn releases on the happy path only.
func earlyReturn(p *pool, fail bool) {
	p.sem <- struct{}{} // want `not released on every path`
	if fail {
		return
	}
	<-p.sem
}

// dropped discards the borrowed slot count.
func dropped(p *pool) {
	p.borrowSlots(2) // want `discarded`
}

// lostBorrow returns without releasing its borrow on one path.
func lostBorrow(p *pool, fail bool) int {
	got := p.borrowSlots(2) // want `not returned via releaseSlots on every path`
	if fail {
		return 0
	}
	p.releaseSlots(got)
	return got
}

// overwritten re-borrows into the same variable while the first borrow is
// still live, losing its count.
func overwritten(p *pool) {
	got := p.borrowSlots(1)
	got = p.borrowSlots(1) // want `while previously borrowed slots are still unreturned`
	p.releaseSlots(got)
}

// gate carries semaphore-shaped methods.
type gate struct{}

func (g *gate) Acquire() {}

func (g *gate) Release() {}

// methodLeak pairs Acquire with Release on only one switch arm.
func methodLeak(g *gate, mode int) {
	g.Acquire() // want `not released on every path`
	switch mode {
	case 0:
		g.Release()
	}
}
