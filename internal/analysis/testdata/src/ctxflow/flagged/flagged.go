// Package flagged is the ctxflow analyzer's negative fixture: entry points
// that drop their context or restart the chain with a background one.
package flagged

import "context"

// Dropped takes a context and never consumes it.
func Dropped(ctx context.Context, n int) int { // want `Dropped never uses its context.Context parameter ctx`
	return n * 2
}

// Blank discards the context by name.
func Blank(_ context.Context, n int) int { // want `Blank discards its context.Context`
	return n
}

// Detach checks its own context, then hands downstream work a fresh root.
func Detach(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return leaf(context.Background()) // want `Detach has a context parameter but calls context.Background\(\)`
}

// DetachInClosure does the same inside a function literal it spawns.
func DetachInClosure(ctx context.Context) func() error {
	_ = ctx.Err()
	return func() error {
		return leaf(context.TODO()) // want `DetachInClosure has a context parameter but calls context.TODO\(\)`
	}
}

func leaf(ctx context.Context) error { return ctx.Err() }
