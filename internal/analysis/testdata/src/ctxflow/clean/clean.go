// Package clean is the ctxflow analyzer's positive fixture: contexts
// threaded end to end, and legitimate chain roots.
package clean

import "context"

// Threaded passes its context straight through.
func Threaded(ctx context.Context) error {
	return leaf(ctx)
}

// Checked consumes the context itself.
func Checked(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n * 2, nil
}

// Derived wraps the inbound context rather than replacing it.
func Derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return leaf(sub)
}

// Root has no inbound context; starting a chain here is legitimate.
func Root() error {
	return leaf(context.Background())
}

func leaf(ctx context.Context) error { return ctx.Err() }
