// Package flagged is the wirecompat analyzer's negative fixture: a wire
// schema with unserializable fields, implicit layout, a stale checksum and
// a positional literal.
package flagged

// EnvelopeVersion is the fixture wire version.
const EnvelopeVersion = 3

// wireChecksum is stale on purpose: the analyzer recomputes the schema
// fingerprint and demands the paste-in.
const wireChecksum = "0000000000000000" // want `wireChecksum was not updated`

// Envelope is the fixture schema.
//
//mussti:wire
type Envelope struct {
	Routing map[string]int `json:"routing"` // want `map field cannot cross the wire`
	hidden  int            // want `unexported field hidden is silently dropped`
	Bare    int            // want `field Bare needs an explicit json tag`
}

// Meta rides along unannotated; only its embedding below is the offence.
type Meta struct {
	Origin string `json:"origin"`
}

// Header embeds, flattening the wire layout implicitly.
//
//mussti:wire
type Header struct {
	Meta `json:"meta"` // want `embedded field flattens the wire layout implicitly`
	Seq  uint64        `json:"seq"`
}

// NewEnvelope builds one positionally.
func NewEnvelope() Envelope {
	return Envelope{nil, 1, 2} // want `unkeyed composite literal of wire type Envelope`
}
