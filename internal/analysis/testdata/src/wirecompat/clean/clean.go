// Package clean is the wirecompat analyzer's positive fixture: a fully
// tagged, versioned, checksum-pinned envelope built with field keys.
package clean

// EnvelopeVersion is the fixture wire version.
const EnvelopeVersion = 1

// wireChecksum pins the fixture schema; the fixture test fails if the
// analyzer's fingerprint drifts from it.
const wireChecksum = "29728728bf2a5851"

// Envelope is the schema.
//
//mussti:wire
type Envelope struct {
	V    int    `json:"v"`
	Name string `json:"name"`
	Data []byte `json:"data,omitempty"`
}

// NewEnvelope builds one with keys.
func NewEnvelope(v int, name string) Envelope {
	return Envelope{V: v, Name: name}
}
