// Package clean is the leakcheck analyzer's positive fixture: every
// goroutine carries a completion signal the launcher can join, every
// blocking loop can observe cancellation, and the allow directive documents
// the one deliberate exception.
package clean

import (
	"context"
	"sync"
)

// joined launches workers that report through a WaitGroup.
func joined(work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

// closer signals completion by closing a channel the launcher receives on.
func closer(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// sender delivers its result: the send is the join.
func sender(compute func() int) int {
	out := make(chan int, 1)
	go func() {
		out <- compute()
	}()
	return <-out
}

// cancellable blocks on channels but selects on ctx.Done at every step.
func cancellable(ctx context.Context, in, out chan int) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case v := <-in:
			select {
			case out <- v:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// nonBlocking drains what is immediately available: a select with a default
// clause never stalls the loop.
func nonBlocking(ch chan int) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		default:
			return total
		}
	}
}

// allowed documents why its loop cannot stall.
func allowed(sem chan struct{}, n int) {
	for ; n > 0; n-- {
		<-sem //mussti:allow=leakcheck every token was placed by this goroutine, so the receive never blocks
	}
}
