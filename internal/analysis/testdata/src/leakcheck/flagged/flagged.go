// Package flagged is the leakcheck analyzer's negative fixture: goroutines
// with no joinable completion signal, and loops that block on channel
// operations with no way to observe cancellation.
package flagged

import "context"

// fireAndForget launches a goroutine nothing can ever join.
func fireAndForget(work func()) {
	go func() { // want `no completion signal`
		work()
	}()
}

// bareCall launches a named function directly: even if work signals
// somewhere, the launcher cannot see it here.
func bareCall(work func()) {
	go work() // want `plain call with no completion signal`
}

// drainAll blocks on a receive every iteration with no Done case in reach.
func drainAll(ctx context.Context, ch chan int) int {
	total := 0
	for i := 0; i < 8; i++ {
		total += <-ch // want `cancellation cannot interrupt`
	}
	_ = ctx
	return total
}

// pump sends in a loop with no Done case.
func pump(ch chan int, n int) {
	for i := 0; i < n; i++ {
		ch <- i // want `cancellation cannot interrupt`
	}
}

// rangeChan ranges over a channel: a blocking receive per iteration.
func rangeChan(ch chan int) int {
	total := 0
	for v := range ch { // want `cancellation cannot interrupt`
		total += v
	}
	return total
}

// selectNoDone blocks in a select that knows nothing of cancellation.
func selectNoDone(a, b chan int) {
	for {
		select { // want `cancellation cannot interrupt`
		case v := <-a:
			b <- v
		}
	}
}
