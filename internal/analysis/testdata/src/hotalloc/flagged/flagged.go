// Package flagged is the hotalloc analyzer's negative fixture: functions
// annotated //mussti:hotpath whose bodies heap-allocate per call.
package flagged

import "fmt"

type table struct{ rows []int }

// Lookup allocates five different ways in steady state.
//
//mussti:hotpath
func Lookup(t *table, q int) int {
	weights := map[int]int{q: 1}   // want `map literal allocates per call`
	ids := []int{q, q + 1}         // want `slice literal allocates per call`
	box := &table{rows: ids}       // want `&table\{\.\.\.\} escapes to the heap per call`
	buf := make([]int, q)          // want `make allocates per call`
	label := fmt.Sprintf("q%d", q) // want `fmt.Sprintf formats and allocates per call`
	return weights[q] + len(box.rows) + len(buf) + len(label)
}

// Key builds strings per call.
//
//mussti:hotpath
func Key(prefix string, q int) int {
	s := prefix + ":" // want `string concatenation allocates per call`
	b := []byte(s)    // want `conversion copies per call`
	return len(b) + q
}

// Each passes a capturing closure down per call.
//
//mussti:hotpath
func Each(t *table, f func(int)) {
	n := len(t.rows)
	walk(func(i int) { f(i % n) }) // want `closure captures variables`
}

// Finish spawns and defers per call.
//
//mussti:hotpath
func Finish(done chan<- int) {
	go notify(done)    // want `starting a goroutine allocates per call`
	defer notify(done) // want `defer costs per call`
}

func walk(f func(int))       { f(0) }
func notify(done chan<- int) { done <- 1 }
