// Package clean is the hotalloc analyzer's positive fixture: a hot function
// that stays allocation-free in steady state, and an unannotated one that
// may allocate freely.
package clean

import "fmt"

type table struct{ scratch []int }

// Hot is annotated and steady-state allocation-free: value arrays stay on
// the stack, the scratch growth branch carries an allow, and the error
// literal sits on the failing path.
//
//mussti:hotpath
func Hot(t *table, q int) error {
	if q < 0 {
		return fmt.Errorf("hot: negative qubit %d", q)
	}
	pair := [2]int{q, q + 1}
	if cap(t.scratch) < q {
		t.scratch = make([]int, q) //mussti:allow=hotalloc scratch grows to the largest query, then stays
	}
	row := t.scratch[:0]
	for _, p := range pair {
		row = append(row, p)
	}
	t.scratch = row
	return nil
}

// Cold has no annotation; allocation here is nobody's business.
func Cold(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
