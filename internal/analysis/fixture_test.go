package analysis

import (
	"regexp"
	"testing"
)

// Fixture convention: each analyzer owns testdata/src/<name>/{flagged,clean}.
// In flagged, every offending line carries a comment of the form
//
//	// want `regexp`
//
// and the test demands a one-to-one match between want comments and
// diagnostics. The clean package must produce zero diagnostics — including
// via allow directives, which the clean fixtures exercise deliberately.

var wantRe = regexp.MustCompile("want `([^`]*)`")

type wantMark struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture loads one fixture package, failing the test on any load or
// type-check error — a fixture that does not compile tests nothing.
func loadFixture(t *testing.T, rel string) []*Package {
	t.Helper()
	pkgs, err := Load("", "./testdata/src/"+rel)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", rel)
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			t.Fatalf("fixture %s does not type-check: %v", rel, e)
		}
	}
	return pkgs
}

// collectWants parses the want comments out of a fixture's sources.
func collectWants(t *testing.T, pkgs []*Package) []*wantMark {
	t.Helper()
	var out []*wantMark
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, &wantMark{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// checkFixturePair runs one analyzer over its flagged and clean fixtures.
func checkFixturePair(t *testing.T, a *Analyzer, name string) {
	t.Helper()

	flagged := loadFixture(t, name+"/flagged")
	wants := collectWants(t, flagged)
	if len(wants) == 0 {
		t.Fatalf("fixture %s/flagged declares no want comments", name)
	}
	findings, err := Check(flagged, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}

	clean := loadFixture(t, name+"/clean")
	cleanFindings, err := Check(clean, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range cleanFindings {
		t.Errorf("clean fixture flagged: %s", f)
	}
}

func TestDeterminismFixtures(t *testing.T) { checkFixturePair(t, DeterminismAnalyzer, "determinism") }
func TestCtxflowFixtures(t *testing.T)     { checkFixturePair(t, CtxflowAnalyzer, "ctxflow") }
func TestHotallocFixtures(t *testing.T)    { checkFixturePair(t, HotallocAnalyzer, "hotalloc") }
func TestWirecompatFixtures(t *testing.T)  { checkFixturePair(t, WirecompatAnalyzer, "wirecompat") }
func TestLeakcheckFixtures(t *testing.T)   { checkFixturePair(t, LeakcheckAnalyzer, "leakcheck") }
func TestSempairFixtures(t *testing.T)     { checkFixturePair(t, SempairAnalyzer, "sempair") }
