package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer protects the harness's headline invariant: experiment
// output is byte-identical at any parallelism level, across processes and
// cache states. Three nondeterminism sources are flagged:
//
//   - iteration over a map whose body feeds order-sensitive code (appends,
//     non-commutative accumulation, calls with observable effects, early
//     exits): Go randomizes map order per iteration, so any such loop can
//     change output between runs. Order-insensitive bodies — integer
//     counting, map-to-map rebuilds, constant flag sets — pass.
//   - time.Now / time.Since: wall clock in measured code makes output vary
//     by machine and load. Legitimately wall-clock results (the paper's
//     Fig. 10/11 compile-time cells, progress displays) carry an allow
//     directive naming why.
//   - importing math/rand or math/rand/v2: unseeded global state. The
//     repo's deterministic needs are served by explicit counters
//     (core.splitMix64 with fixed seed).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "flags order-sensitive map iteration, wall clock and math/rand in deterministic code",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "import of %s: use a seeded, explicit generator so runs are reproducible", imp.Path.Value)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if obj := calleeObj(pass, n); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
					switch obj.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(n.Pos(), "time.%s in deterministic code: wall clock varies across runs and machines", obj.Name())
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						if why := orderSensitive(pass, n); why != "" {
							pass.Reportf(n.Pos(), "map iteration order is random and this loop %s; iterate sorted keys instead", why)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// calleeObj resolves the called function's object, or nil for dynamic calls
// and builtins.
func calleeObj(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// orderSensitive reports why the body of a range-over-map loop depends on
// iteration order, or "" when every statement is provably commutative. The
// classification is conservative: anything it cannot prove order-free is
// order-sensitive.
func orderSensitive(pass *Pass, rng *ast.RangeStmt) (why string) {
	// Variables declared inside the loop are private to one iteration;
	// writes to them are order-free. Collect the loop's own declarations
	// (including the key/value vars) by scope position.
	inLoop := func(obj types.Object) bool {
		return obj != nil && rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if pass.TypesInfo.Types[n.Fun].IsType() {
				return true // conversion, not a call
			}
			obj := calleeObj(pass, n)
			if b, ok := obj.(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "delete", "min", "max", "real", "imag", "complex":
					return true
				case "append":
					why = "appends in iteration order"
					return false
				}
				why = fmt.Sprintf("calls %s", b.Name())
				return false
			}
			// Any other call may write output, append, or otherwise observe
			// order; proving purity is out of scope.
			name := "a function"
			if obj != nil {
				name = obj.Name()
			}
			why = fmt.Sprintf("calls %s, whose effects may observe iteration order", name)
			return false
		case *ast.SendStmt:
			why = "sends on a channel in iteration order"
			return false
		case *ast.ReturnStmt:
			why = "returns from inside the loop, picking a random element"
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				why = "exits the loop early, picking a random element"
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if why = assignSensitivity(pass, n.Tok, lhs, inLoop); why != "" {
					return false
				}
			}
		case *ast.IncDecStmt:
			// x++ / x-- commute (integer overflow wraps associatively).
		case *ast.GoStmt, *ast.DeferStmt:
			why = "launches work in iteration order"
			return false
		}
		return true
	})
	return why
}

// assignSensitivity classifies one assignment target inside a map-range
// body. tok is the assignment operator.
func assignSensitivity(pass *Pass, tok token.Token, lhs ast.Expr, inLoop func(types.Object) bool) string {
	lhs = ast.Unparen(lhs)
	// Writes to loop-local variables are private to one iteration.
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return ""
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if inLoop(obj) {
			return ""
		}
	}
	// Storing under a key (m[k] = v, s[i] = v) lands each element at its own
	// slot regardless of visit order.
	if _, ok := lhs.(*ast.IndexExpr); ok {
		return ""
	}
	t := pass.TypesInfo.TypeOf(lhs)
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Commutative-associative on integers; on floats the rounding (and
		// on strings the concatenation) depends on order.
		if t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return ""
			}
		}
		return fmt.Sprintf("accumulates with %s on a non-integer, which is order-dependent", tok)
	case token.ASSIGN, token.DEFINE:
		return "overwrites a variable declared outside the loop (last writer depends on order)"
	default:
		return fmt.Sprintf("updates an outer variable with %s, which is order-dependent", tok)
	}
}
