package analysis

import "testing"

// TestRepoSelfCheck runs the full suite over the whole module and demands
// silence — the executable form of the repo's invariants: deterministic
// output, cancellation that reaches every scheduling loop, an
// allocation-free compile hot path and a versioned wire format. A finding
// here means either the tree regressed or an exemption needs an allow
// directive with a reason; both belong in review, not in a green build.
func TestRepoSelfCheck(t *testing.T) {
	pkgs, err := Load("", "mussti/...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			t.Errorf("%s: %v", p.PkgPath, e)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	findings, err := Check(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
