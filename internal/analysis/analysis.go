// Package analysis is the repo-invariant lint suite: a small, dependency-free
// analogue of golang.org/x/tools/go/analysis (which this module cannot vendor)
// plus six custom passes that turn the project's runtime-tested invariants
// into compile-time checks:
//
//   - determinism: byte-identical experiment output at any parallelism level
//     (no order-sensitive map iteration, no wall-clock or math/rand in
//     measured code);
//   - ctxflow: mid-compile cancellation (entry points must consume their
//     context.Context and never restart the chain with context.Background);
//   - hotalloc: the allocation-free compile hot path (functions annotated
//     //mussti:hotpath must not allocate in steady state);
//   - wirecompat: the versioned internal/dist wire format (no map fields,
//     keyed literals only, schema changes force a checksum + version bump);
//   - leakcheck: goroutines in internal/{core,eval,dist} must carry a
//     completion signal, and channel loops must select on ctx.Done;
//   - sempair: semaphore acquire/release and slot borrow/return must pair
//     on every control-flow path.
//
// On top of the AST passes sits a compiler-feedback tier (compilerfacts.go,
// perfbudget.go): one `go build` with escape-analysis, inlining and
// bounds-check diagnostics enabled is parsed into typed facts and checked
// against the committed perfbudget.json — //mussti:hotpath functions may
// not gain heap escapes or bounds checks, //mussti:inline leaf helpers must
// remain inlinable, and any drift fails `musstilint -budget` with a
// per-function diff (`musstilint -writebudget` regenerates).
//
// The framework mirrors go/analysis deliberately — Analyzer structs with a
// Run(*Pass) hook, per-package Pass state, position-based diagnostics — so
// the passes could move onto the real framework unchanged if the dependency
// ever becomes available. cmd/musstilint is the driver: standalone over
// package patterns, or unit-at-a-time under `go vet -vettool`.
//
// # Directives
//
// Source annotates itself with //mussti: comments:
//
//	//mussti:hotpath                  (function doc) hotalloc + perfbudget check this function
//	//mussti:inline                   (function doc) perfbudget requires this function inlinable
//	//mussti:wire                     (type doc) struct is part of the wire format
//	//mussti:allow=<analyzer> reason  suppress one analyzer on this line and the next
//
// An allow directive in a file's header comments (before the package clause)
// suppresses the analyzer for the whole file. Suppressions are expected to
// carry a reason; they are the documented escape hatch that keeps the
// repo-wide self-check (zero diagnostics on mussti/...) honest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one lint pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run executes the pass over one package, reporting findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is the input to one analyzer over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The checker installs it; analyzers
	// must not call it after Run returns.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned within the Pass's Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// All returns the suite's analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CtxflowAnalyzer,
		HotallocAnalyzer,
		WirecompatAnalyzer,
		LeakcheckAnalyzer,
		SempairAnalyzer,
	}
}

// directivePrefix introduces every source annotation the suite understands.
const directivePrefix = "//mussti:"

// directive is one parsed //mussti: comment.
type directive struct {
	pos  token.Pos
	verb string // "hotpath", "inline", "wire", "allow"
	arg  string // analyzer name for allow
}

// parseDirective parses a single comment line; ok is false for ordinary
// comments.
func parseDirective(c *ast.Comment) (directive, bool) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	// The verb ends at the first space (the remainder is the human reason).
	verb, _, _ := strings.Cut(rest, " ")
	d := directive{pos: c.Pos(), verb: verb}
	if name, ok := strings.CutPrefix(verb, "allow="); ok {
		d.verb = "allow"
		d.arg = name
	}
	return d, true
}

// hasDirective reports whether the doc comment carries the given bare verb
// (e.g. "hotpath" or "wire").
func hasDirective(doc *ast.CommentGroup, verb string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.verb == verb {
			return true
		}
	}
	return false
}

// suppressions indexes the allow directives of one file.
type suppressions struct {
	// fileWide holds analyzer names allowed for the entire file.
	fileWide map[string]bool
	// byLine maps source line -> analyzer names allowed on that line.
	byLine map[int]map[string]bool
}

// collectSuppressions scans a file's comments for allow directives. A
// directive before the package clause applies file-wide; any other applies
// to its own line and the line below (so it can trail the flagged code or
// sit on its own line above it).
func collectSuppressions(fset *token.FileSet, f *ast.File) suppressions {
	s := suppressions{fileWide: map[string]bool{}, byLine: map[int]map[string]bool{}}
	pkgLine := fset.Position(f.Package).Line
	for _, g := range f.Comments {
		for _, c := range g.List {
			d, ok := parseDirective(c)
			if !ok || d.verb != "allow" || d.arg == "" {
				continue
			}
			line := fset.Position(d.pos).Line
			if line < pkgLine {
				s.fileWide[d.arg] = true
				continue
			}
			for _, l := range [2]int{line, line + 1} {
				if s.byLine[l] == nil {
					s.byLine[l] = map[string]bool{}
				}
				s.byLine[l][d.arg] = true
			}
		}
	}
	return s
}

// allows reports whether the analyzer is suppressed at the given line.
func (s suppressions) allows(analyzer string, line int) bool {
	return s.fileWide[analyzer] || s.byLine[line][analyzer]
}
