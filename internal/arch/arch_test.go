package arch

import (
	"testing"
	"testing/quick"
)

func TestLevelProperties(t *testing.T) {
	if LevelStorage.GateCapable() {
		t.Error("storage must not be gate capable")
	}
	if !LevelOperation.GateCapable() || !LevelOptical.GateCapable() {
		t.Error("operation/optical must be gate capable")
	}
	names := map[Level]string{LevelStorage: "storage", LevelOperation: "operation", LevelOptical: "optical"}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestDefaultConfigLayout(t *testing.T) {
	d := MustNew(DefaultConfig(128))
	if len(d.Modules) != 4 {
		t.Fatalf("modules = %d, want 4 (one 2x2 block per 128 qubits)", len(d.Modules))
	}
	for _, m := range d.Modules {
		if len(m.Zones) != 4 {
			t.Fatalf("module %d has %d zones, want 4", m.ID, len(m.Zones))
		}
		levels := make(map[Level]int)
		for _, z := range m.Zones {
			levels[d.Zones[z].Level]++
		}
		if levels[LevelStorage] != 2 || levels[LevelOperation] != 1 || levels[LevelOptical] != 1 {
			t.Errorf("module %d levels = %v", m.ID, levels)
		}
		if m.MaxIons != 32 {
			t.Errorf("module %d MaxIons = %d, want 32", m.ID, m.MaxIons)
		}
	}
}

func TestModulesFor(t *testing.T) {
	cases := map[int]int{0: 4, 1: 4, 32: 4, 128: 4, 129: 8, 256: 8, 257: 12, 299: 12}
	for n, want := range cases {
		if got := ModulesFor(n); got != want {
			t.Errorf("ModulesFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Modules: 0, TrapCapacity: 16, OperationZones: 1},
		{Modules: 1, TrapCapacity: 1, OperationZones: 1},
		{Modules: 1, TrapCapacity: 16}, // no gate-capable zone
		{Modules: 1, TrapCapacity: 16, OperationZones: 1, StorageZones: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestZonesByLevelAndOptical(t *testing.T) {
	d := MustNew(DefaultConfig(128))
	if got := len(d.OpticalZones()); got != 4 {
		t.Errorf("optical zones = %d, want 4", got)
	}
	for m := range d.Modules {
		if got := len(d.ZonesByLevel(m, LevelStorage)); got != 2 {
			t.Errorf("module %d storage zones = %d, want 2", m, got)
		}
	}
}

func TestCapacityRespectsMaxIons(t *testing.T) {
	d := MustNew(DefaultConfig(128))
	// 4 zones x 16 = 64 slots but MaxIons 32 per module.
	if got := d.Capacity(); got != 128 {
		t.Errorf("capacity = %d, want 128", got)
	}
	cfg := DefaultConfig(128)
	cfg.MaxIonsPerModule = 1000
	d = MustNew(cfg)
	if got := d.Capacity(); got != 256 {
		t.Errorf("uncapped capacity = %d, want 256", got)
	}
}

func TestIntraDistance(t *testing.T) {
	d := MustNew(DefaultConfig(32))
	m0 := d.Modules[0]
	first, last := m0.Zones[0], m0.Zones[len(m0.Zones)-1]
	if got := d.IntraDistanceUM(first, last); got != 300 {
		t.Errorf("distance across module = %v, want 300 (3 hops x 100um)", got)
	}
	if got := d.IntraDistanceUM(first, first); got != 0 {
		t.Errorf("self distance = %v, want 0", got)
	}
}

func TestDistanceMatrixMatchesFallback(t *testing.T) {
	// A device built by New answers from the precomputed matrix; a shallow
	// copy with the matrix stripped takes the compute-per-call fallback.
	// Every same-module pair must agree, and the fallback must keep the
	// cross-module panic behaviour.
	d := MustNew(DefaultConfig(64))
	slow := *d
	slow.dist = nil
	for _, m := range d.Modules {
		for _, a := range m.Zones {
			for _, b := range m.Zones {
				if got, want := d.IntraDistanceUM(a, b), slow.IntraDistanceUM(a, b); got != want {
					t.Fatalf("matrix distance (%d,%d) = %v, fallback %v", a, b, got, want)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("fallback cross-module distance did not panic")
		}
	}()
	slow.IntraDistanceUM(d.Modules[0].Zones[0], d.Modules[1].Zones[0])
}

func TestIntraDistancePanicsAcrossModules(t *testing.T) {
	d := MustNew(DefaultConfig(32))
	defer func() {
		if recover() == nil {
			t.Error("cross-module distance did not panic")
		}
	}()
	d.IntraDistanceUM(d.Modules[0].Zones[0], d.Modules[1].Zones[0])
}

func TestOpticalCapacityKnob(t *testing.T) {
	cfg := DefaultConfig(32)
	cfg.OpticalCapacity = 4
	d := MustNew(cfg)
	for _, z := range d.Zones {
		want := 16
		if z.Level == LevelOptical {
			want = 4
		}
		if z.Capacity != want {
			t.Errorf("zone %d (%v) capacity = %d, want %d", z.ID, z.Level, z.Capacity, want)
		}
	}
	// Larger than trap capacity clamps down.
	cfg.OpticalCapacity = 99
	d = MustNew(cfg)
	for _, z := range d.OpticalZones() {
		if d.Zones[z].Capacity != 16 {
			t.Errorf("optical capacity = %d, want clamped 16", d.Zones[z].Capacity)
		}
	}
}

func TestMultipleOpticalZones(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.OpticalZones = 2
	d := MustNew(cfg)
	for m := range d.Modules {
		if got := len(d.ZonesByLevel(m, LevelOptical)); got != 2 {
			t.Errorf("module %d optical zones = %d, want 2", m, got)
		}
	}
}

func TestLevelsDescending(t *testing.T) {
	ls := LevelsDescending()
	if len(ls) != 3 || ls[0] != LevelOptical || ls[2] != LevelStorage {
		t.Errorf("LevelsDescending = %v", ls)
	}
}

func TestPropertyZoneIDsDense(t *testing.T) {
	f := func(modules, storage uint8) bool {
		cfg := Config{
			Modules:        int(modules%8) + 1,
			TrapCapacity:   8,
			StorageZones:   int(storage % 4),
			OperationZones: 1,
			OpticalZones:   1,
		}
		d, err := New(cfg)
		if err != nil {
			return false
		}
		for i, z := range d.Zones {
			if z.ID != i {
				return false
			}
		}
		// Every zone belongs to exactly one module's list.
		seen := make(map[int]bool)
		for _, m := range d.Modules {
			for _, z := range m.Zones {
				if seen[z] {
					return false
				}
				seen[z] = true
			}
		}
		return len(seen) == len(d.Zones)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
