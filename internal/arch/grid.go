package arch

import "fmt"

// Grid is the monolithic QCCD lattice the baseline compilers target: a
// rows×cols array of uniform traps. Any trap may host two-qubit gates
// (the paper's critique of traditional QCCD compilers: gates "applied in
// arbitrary zones"); ions shuttle between 4-adjacent traps.
type Grid struct {
	Rows, Cols int
	// Capacity is the per-trap chain capacity.
	Capacity int
	// TrapPitchUM is the centre-to-centre distance between adjacent traps.
	TrapPitchUM float64
}

// NewGrid builds a rows×cols grid of traps with the given capacity.
func NewGrid(rows, cols, capacity int) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("arch: grid dimensions must be positive, got %dx%d", rows, cols)
	}
	if capacity < 2 {
		return nil, fmt.Errorf("arch: trap capacity must be ≥2, got %d", capacity)
	}
	return &Grid{Rows: rows, Cols: cols, Capacity: capacity, TrapPitchUM: 100}, nil
}

// MustNewGrid is NewGrid for known-good parameters; it panics on error.
func MustNewGrid(rows, cols, capacity int) *Grid {
	g, err := NewGrid(rows, cols, capacity)
	if err != nil {
		panic(err)
	}
	return g
}

// NumTraps returns rows*cols.
func (g *Grid) NumTraps() int { return g.Rows * g.Cols }

// String summarises the grid, e.g. "QCCD grid 2x3, trap capacity 8".
func (g *Grid) String() string {
	return fmt.Sprintf("QCCD grid %dx%d, trap capacity %d", g.Rows, g.Cols, g.Capacity)
}

// TotalCapacity returns the total ion capacity.
func (g *Grid) TotalCapacity() int { return g.NumTraps() * g.Capacity }

// RowCol converts a trap ID to grid coordinates.
func (g *Grid) RowCol(t int) (row, col int) { return t / g.Cols, t % g.Cols }

// TrapAt converts grid coordinates to a trap ID.
func (g *Grid) TrapAt(row, col int) int { return row*g.Cols + col }

// Neighbors returns the 4-adjacent traps of t.
func (g *Grid) Neighbors(t int) []int {
	r, c := g.RowCol(t)
	out := make([]int, 0, 4)
	if r > 0 {
		out = append(out, g.TrapAt(r-1, c))
	}
	if r+1 < g.Rows {
		out = append(out, g.TrapAt(r+1, c))
	}
	if c > 0 {
		out = append(out, g.TrapAt(r, c-1))
	}
	if c+1 < g.Cols {
		out = append(out, g.TrapAt(r, c+1))
	}
	return out
}

// Distance returns the Manhattan hop count between two traps; each hop is
// one shuttle operation for grid compilers.
func (g *Grid) Distance(a, b int) int {
	ra, ca := g.RowCol(a)
	rb, cb := g.RowCol(b)
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Device adapts the grid to the zone/module Device model so the MUSS-TI
// core scheduler can drive a standard QCCD lattice directly — Table 2 of
// the paper "appl[ies] MUSS-TI on these standard QCCD structures". The
// whole grid becomes one module whose traps are uniform gate-capable
// (operation-level) zones in row-major order; there is no optical zone, so
// no fiber gates or SWAP insertion arise, and MUSS-TI's advantage comes
// from scheduling alone.
func (g *Grid) Device() *Device {
	d := &Device{TrapCapacity: g.Capacity, ZonePitchUM: g.TrapPitchUM, DistKey: g.CacheKey()}
	mod := Module{ID: 0, MaxIons: g.TotalCapacity()}
	for t := 0; t < g.NumTraps(); t++ {
		z := Zone{ID: t, Module: 0, Level: LevelOperation, Capacity: g.Capacity, Pos: t}
		d.Zones = append(d.Zones, z)
		mod.Zones = append(mod.Zones, z.ID)
	}
	d.Modules = []Module{mod}
	d.DistUM = func(a, b int) float64 { return float64(g.Distance(a, b)) * g.TrapPitchUM }
	// Freeze the lattice geometry into the O(1) distance matrix so the
	// scheduler's cost loops never call back into the closure.
	d.PrecomputeDistances()
	return d
}

// PathTowards returns the next trap on a shortest path from a to b
// (row-major: resolve the row difference first). a == b returns a.
func (g *Grid) PathTowards(a, b int) int {
	if a == b {
		return a
	}
	ra, ca := g.RowCol(a)
	rb, cb := g.RowCol(b)
	switch {
	case ra < rb:
		return g.TrapAt(ra+1, ca)
	case ra > rb:
		return g.TrapAt(ra-1, ca)
	case ca < cb:
		return g.TrapAt(ra, ca+1)
	default:
		return g.TrapAt(ra, ca-1)
	}
}
