package arch

import (
	"strings"
	"testing"
)

func TestDeviceString(t *testing.T) {
	d := MustNew(DefaultConfig(128))
	s := d.String()
	for _, want := range []string{"4 modules", "2×storage(16)", "1×operation(16)", "1×optical(16)", "≤32"} {
		if !strings.Contains(s, want) {
			t.Errorf("device string %q missing %q", s, want)
		}
	}
	empty := &Device{}
	if !strings.Contains(empty.String(), "empty") {
		t.Errorf("empty device string = %q", empty.String())
	}
}

func TestGridString(t *testing.T) {
	g := MustNewGrid(2, 3, 8)
	if got := g.String(); got != "QCCD grid 2x3, trap capacity 8" {
		t.Errorf("grid string = %q", got)
	}
}
