package arch

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Target is a machine a compiler can schedule a circuit onto. Both
// architectures of the paper implement it — *Device (the EML-QCCD machine
// MUSS-TI targets) and *Grid (the monolithic QCCD lattice the baseline
// compilers target) — so the compiler registry can hand any circuit/machine
// pair to any registered compiler and let the compiler decide whether it
// supports that machine shape.
type Target interface {
	// QubitCapacity is the total number of ions the machine can hold; a
	// compiler rejects circuits wider than this.
	QubitCapacity() int
	// CacheKey renders the machine's full configuration as a deterministic
	// string: equal machines yield equal keys in any process, so the key is
	// safe to use in shared or persisted measurement caches.
	CacheKey() string
	// String summarises the machine for logs and table banners.
	String() string
}

// Compile-time checks that both architectures satisfy Target.
var (
	_ Target = (*Device)(nil)
	_ Target = (*Grid)(nil)
)

// QubitCapacity implements Target; it equals Capacity().
func (d *Device) QubitCapacity() int { return d.Capacity() }

// CacheKey implements Target: a deterministic rendering of every structural
// field (zones, levels, capacities, module caps, pitch). A custom DistUM is
// keyed by the builder-supplied DistKey (the grid adapter stamps the source
// grid's key there); when a builder set DistUM but no DistKey, the key
// digests the full intra-module distance matrix instead — the matrix is the
// function's entire observable behaviour, so devices differing only in
// distance geometry can never collide.
func (d *Device) CacheKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "eml{cap=%d pitch=%g", d.TrapCapacity, d.ZonePitchUM)
	if d.DistUM != nil {
		key := d.DistKey
		if key == "" {
			h := fnv.New64a()
			for _, m := range d.Modules {
				for _, za := range m.Zones {
					for _, zb := range m.Zones {
						fmt.Fprintf(h, "%g,", d.DistUM(za, zb))
					}
				}
			}
			key = fmt.Sprintf("fnv:%016x", h.Sum64())
		}
		fmt.Fprintf(&b, " customdist(%s)", key)
	}
	for _, m := range d.Modules {
		fmt.Fprintf(&b, " m%d[max=%d", m.ID, m.MaxIons)
		for _, id := range m.Zones {
			z := d.Zones[id]
			fmt.Fprintf(&b, " %d:%s/%d@%d", z.ID, z.Level, z.Capacity, z.Pos)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}

// QubitCapacity implements Target; it equals TotalCapacity(). (The method
// name avoids the Capacity field, which is the per-trap chain capacity.)
func (g *Grid) QubitCapacity() int { return g.TotalCapacity() }

// CacheKey implements Target: grids are fully described by their dimensions,
// per-trap capacity and pitch.
func (g *Grid) CacheKey() string {
	return fmt.Sprintf("grid{%dx%d cap=%d pitch=%g}", g.Rows, g.Cols, g.Capacity, g.TrapPitchUM)
}

// CacheKey renders an EML-QCCD build description deterministically, the
// Config-level counterpart of Device.CacheKey for measurement-cache keys.
// Config is a flat value type, so the rendering is stable across processes.
func (c Config) CacheKey() string {
	return fmt.Sprintf("emlcfg%+v", c)
}
