package arch

import (
	"testing"
	"testing/quick"
)

func TestGridBasics(t *testing.T) {
	g := MustNewGrid(3, 4, 16)
	if g.NumTraps() != 12 {
		t.Errorf("traps = %d, want 12", g.NumTraps())
	}
	if g.TotalCapacity() != 192 {
		t.Errorf("capacity = %d, want 192", g.TotalCapacity())
	}
	r, c := g.RowCol(7)
	if r != 1 || c != 3 {
		t.Errorf("RowCol(7) = %d,%d want 1,3", r, c)
	}
	if g.TrapAt(1, 3) != 7 {
		t.Errorf("TrapAt(1,3) = %d, want 7", g.TrapAt(1, 3))
	}
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(0, 3, 8); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewGrid(2, 2, 1); err == nil {
		t.Error("capacity 1 accepted")
	}
}

func TestGridNeighbors(t *testing.T) {
	g := MustNewGrid(3, 3, 8)
	cases := map[int]int{0: 2, 1: 3, 4: 4, 8: 2}
	for trap, want := range cases {
		if got := len(g.Neighbors(trap)); got != want {
			t.Errorf("neighbors(%d) = %d, want %d", trap, got, want)
		}
	}
	for _, nb := range g.Neighbors(4) {
		if g.Distance(4, nb) != 1 {
			t.Errorf("neighbor %d of 4 at distance %d", nb, g.Distance(4, nb))
		}
	}
}

func TestGridDistanceManhattan(t *testing.T) {
	g := MustNewGrid(4, 5, 8)
	if d := g.Distance(0, g.TrapAt(3, 4)); d != 7 {
		t.Errorf("corner distance = %d, want 7", d)
	}
	if d := g.Distance(3, 3); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestPathTowardsConverges(t *testing.T) {
	g := MustNewGrid(4, 5, 8)
	f := func(a, b uint8) bool {
		from := int(a) % g.NumTraps()
		to := int(b) % g.NumTraps()
		cur := from
		steps := 0
		for cur != to {
			next := g.PathTowards(cur, to)
			if g.Distance(next, to) != g.Distance(cur, to)-1 {
				return false // each step must reduce distance by one
			}
			cur = next
			steps++
			if steps > g.Rows+g.Cols {
				return false
			}
		}
		return steps == g.Distance(from, to)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGridDevice(t *testing.T) {
	g := MustNewGrid(2, 3, 8)
	d := g.Device()
	if len(d.Modules) != 1 {
		t.Fatalf("grid device modules = %d, want 1", len(d.Modules))
	}
	if len(d.Zones) != 6 {
		t.Fatalf("grid device zones = %d, want 6", len(d.Zones))
	}
	for _, z := range d.Zones {
		if z.Level != LevelOperation {
			t.Errorf("zone %d level = %v, want operation", z.ID, z.Level)
		}
		if z.Capacity != 8 {
			t.Errorf("zone %d capacity = %d, want 8", z.ID, z.Capacity)
		}
	}
	// Distance uses the lattice metric, not the linear segment.
	if got := d.IntraDistanceUM(0, 3); got != 100 {
		t.Errorf("device distance(0,3) = %v, want 100 (vertical neighbours)", got)
	}
	if got := d.IntraDistanceUM(0, 5); got != 300 {
		t.Errorf("device distance(0,5) = %v, want 300", got)
	}
	if len(d.OpticalZones()) != 0 {
		t.Error("grid device has optical zones")
	}
}
