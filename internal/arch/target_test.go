package arch

import (
	"strings"
	"testing"
)

func TestTargetQubitCapacity(t *testing.T) {
	var targets = []struct {
		tgt  Target
		want int
	}{
		{MustNew(DefaultConfig(128)), MustNew(DefaultConfig(128)).Capacity()},
		{MustNewGrid(2, 3, 8), 48},
	}
	for _, c := range targets {
		if got := c.tgt.QubitCapacity(); got != c.want {
			t.Errorf("%T.QubitCapacity() = %d, want %d", c.tgt, got, c.want)
		}
	}
}

func TestTargetCacheKeys(t *testing.T) {
	// Equal machines yield equal keys; different machines must not collide.
	if a, b := MustNewGrid(2, 3, 8).CacheKey(), MustNewGrid(2, 3, 8).CacheKey(); a != b {
		t.Errorf("equal grids, different keys: %q vs %q", a, b)
	}
	keys := map[string]string{}
	for name, tgt := range map[string]Target{
		"grid-2x3-8":  MustNewGrid(2, 3, 8),
		"grid-3x2-8":  MustNewGrid(3, 2, 8),
		"grid-2x3-12": MustNewGrid(2, 3, 12),
		"eml-128":     MustNew(DefaultConfig(128)),
		"eml-256":     MustNew(DefaultConfig(256)),
	} {
		k := tgt.CacheKey()
		if prev, dup := keys[k]; dup {
			t.Errorf("%s and %s collide on key %q", prev, name, k)
		}
		keys[k] = name
	}
	// The grid's Device adapter stamps the source grid's geometry into the
	// key, so it aliases neither a segment-distance device of the same
	// shape nor another grid with the same zone structure but different
	// distance geometry (2x3 vs 3x2: same six traps, different hop counts).
	if k := MustNewGrid(2, 3, 8).Device().CacheKey(); !strings.Contains(k, "customdist") {
		t.Errorf("grid-adapted device key lacks customdist marker: %q", k)
	}
	if a, b := MustNewGrid(2, 3, 8).Device().CacheKey(), MustNewGrid(3, 2, 8).Device().CacheKey(); a == b {
		t.Errorf("devices with different grid geometry share key %q", a)
	}
	// Even without a DistKey, custom-distance devices differing only in
	// geometry must not collide: the key falls back to digesting the
	// distance matrix itself.
	d1, d2 := MustNewGrid(2, 3, 8).Device(), MustNewGrid(3, 2, 8).Device()
	d1.DistKey, d2.DistKey = "", ""
	if a, b := d1.CacheKey(), d2.CacheKey(); a == b {
		t.Errorf("unkeyed custom-distance devices share key %q", a)
	}
	if a, b := d1.CacheKey(), d1.CacheKey(); a != b {
		t.Errorf("distance-matrix digest not deterministic: %q vs %q", a, b)
	}
}

func TestConfigCacheKeyDistinguishes(t *testing.T) {
	a, b := DefaultConfig(128), DefaultConfig(128)
	if a.CacheKey() != b.CacheKey() {
		t.Error("equal configs, different keys")
	}
	b.OpticalCapacity = 4
	if a.CacheKey() == b.CacheKey() {
		t.Error("different configs share a key")
	}
}
