// Package arch models the two trapped-ion architectures of the MUSS-TI
// paper:
//
//   - the EML-QCCD device (§2.2, Fig. 2): several QCCD modules, each a short
//     linear segment of functional zones — storage (level 0), operation
//     (level 1) and optical (level 2) — linked module-to-module through a
//     photonic entanglement module;
//   - the monolithic QCCD grid (Fig. 1b) that the baseline compilers
//     [55][13][70] target: a rows×cols lattice of uniform traps where any
//     trap may host a two-qubit gate and ions shuttle between adjacent
//     traps.
//
// The package is purely structural: capacities, levels, adjacency and
// distances. Time and fidelity live in internal/physics; occupancy state
// lives in the schedulers.
package arch

import (
	"fmt"
	"strings"
)

// Level classifies a zone's role, ordered like the memory hierarchy the
// paper's scheduler mirrors: storage acts as external storage (level 0),
// the operation zone as main memory (level 1), and the optical zone as the
// CPU (level 2).
type Level int

// Zone levels.
const (
	LevelStorage   Level = 0
	LevelOperation Level = 1
	LevelOptical   Level = 2
)

// String returns the zone-level name.
func (l Level) String() string {
	switch l {
	case LevelStorage:
		return "storage"
	case LevelOperation:
		return "operation"
	case LevelOptical:
		return "optical"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// GateCapable reports whether two-qubit gates may execute in a zone of this
// level. Only operation and optical zones have the integrated optical
// waveguides needed to drive MS gates (§2.3).
func (l Level) GateCapable() bool { return l >= LevelOperation }

// Zone is one trap segment inside a module.
type Zone struct {
	// ID is the device-wide zone identifier.
	ID int
	// Module is the owning module's index.
	Module int
	// Level is the functional role.
	Level Level
	// Capacity is the trap capacity (maximum chain length).
	Capacity int
	// Pos is the zone's position along its module's linear segment, used
	// for shuttle distances (segment order: storage…, operation, optical).
	Pos int
}

// Module is one QCCD unit of the EML device.
type Module struct {
	// ID is the module index.
	ID int
	// Zones lists the module's zone IDs in segment order.
	Zones []int
	// MaxIons caps the total ions the module may hold (32 in the paper).
	MaxIons int
}

// Device is an entanglement-module-linked QCCD machine.
type Device struct {
	Zones   []Zone
	Modules []Module
	// TrapCapacity is the uniform per-zone capacity.
	TrapCapacity int
	// ZonePitchUM is the physical distance between adjacent zones of a
	// module in micrometres; shuttle Move time is distance / speed.
	ZonePitchUM float64
	// DistUM, when non-nil, overrides the linear-segment distance between
	// two same-module zones (used by the grid adapter, whose traps live on
	// a lattice rather than a segment). IntraDistanceUM reads distances
	// from the matrix PrecomputeDistances froze, not from this closure —
	// set DistUM before building the matrix (as Grid.Device does), or call
	// PrecomputeDistances again after changing it; mutating only DistUM on
	// an already-built device would silently keep the old geometry.
	DistUM func(a, b int) float64
	// DistKey identifies the DistUM geometry in CacheKey: a function value
	// cannot be rendered, so builders that set DistUM should set DistKey to
	// a deterministic description of the geometry (the grid adapter uses
	// the source grid's CacheKey). When left empty, CacheKey digests the
	// full intra-module distance matrix instead — correct, but O(zones²)
	// calls into DistUM per CacheKey call.
	DistKey string

	// dist is the flattened NZ×NZ intra-module zone-distance matrix filled
	// by PrecomputeDistances (negative entries mark cross-module pairs).
	// IntraDistanceUM answers from it in O(1); when nil — a hand-assembled
	// Device literal — it falls back to computing per call.
	dist []float64
}

// Config describes an EML-QCCD build.
type Config struct {
	// Modules is the number of QCCD units.
	Modules int
	// TrapCapacity is the per-zone chain capacity (16 in the paper's
	// main configuration; Table 2 uses 12 and 8).
	TrapCapacity int
	// StorageZones and OpticalZones per module; the paper's default is
	// 2 storage + 1 operation + 1 optical, and Fig. 12 studies 2 optical.
	StorageZones   int
	OperationZones int
	OpticalZones   int
	// OpticalCapacity is the optical zone's chain capacity; 0 means "same
	// as TrapCapacity", the paper's uniform-capacity reading. Lower values
	// model port-limited interface traps ("only the minimal number of
	// optical ports necessary", §2.2); examples/capacity_tuning sweeps
	// this trade-off.
	OpticalCapacity int
	// MaxIonsPerModule caps ions per module (32 in the paper); 0 means
	// the sum of zone capacities.
	MaxIonsPerModule int
	// ZonePitchUM defaults to 100µm when 0.
	ZonePitchUM float64
}

// DefaultConfig returns the paper's main EML-QCCD configuration for a
// machine able to host n qubits: trap capacity 16, one optical + one
// operation + two storage zones per module, at most 32 ions per module,
// with modules added as 2×2 blocks — "a new 2×2 QCCD grid is added only
// when the total qubit count exceeds a multiple of 32" (§4), i.e. four
// modules per 128 qubits.
func DefaultConfig(n int) Config {
	return Config{
		Modules:          ModulesFor(n),
		TrapCapacity:     16,
		StorageZones:     2,
		OperationZones:   1,
		OpticalZones:     1,
		MaxIonsPerModule: 32,
		ZonePitchUM:      100,
	}
}

// ModulesFor implements the paper's dynamic module-count rule: modules come
// in 2×2 blocks of four, one block per 128 qubits (4 modules × 32 ions).
func ModulesFor(n int) int {
	if n <= 0 {
		return 4
	}
	blocks := (n + 127) / 128
	return 4 * blocks
}

// New builds a Device from a Config. It returns an error when the machine
// cannot be assembled coherently (no gate-capable zone, zero capacity...).
func New(cfg Config) (*Device, error) {
	if cfg.Modules <= 0 {
		return nil, fmt.Errorf("arch: need at least one module, got %d", cfg.Modules)
	}
	if cfg.TrapCapacity < 2 {
		return nil, fmt.Errorf("arch: trap capacity must be ≥2 for two-qubit gates, got %d", cfg.TrapCapacity)
	}
	if cfg.OperationZones+cfg.OpticalZones <= 0 {
		return nil, fmt.Errorf("arch: module has no gate-capable zone")
	}
	if cfg.StorageZones < 0 || cfg.OperationZones < 0 || cfg.OpticalZones < 0 {
		return nil, fmt.Errorf("arch: negative zone count")
	}
	pitch := cfg.ZonePitchUM
	if pitch <= 0 {
		pitch = 100
	}
	optCap := cfg.OpticalCapacity
	if optCap <= 0 || optCap > cfg.TrapCapacity {
		optCap = cfg.TrapCapacity
	}
	if optCap < 2 {
		return nil, fmt.Errorf("arch: optical capacity must be ≥2, got %d", optCap)
	}
	d := &Device{TrapCapacity: cfg.TrapCapacity, ZonePitchUM: pitch}
	for m := 0; m < cfg.Modules; m++ {
		mod := Module{ID: m}
		pos := 0
		add := func(level Level) {
			capacity := cfg.TrapCapacity
			if level == LevelOptical {
				capacity = optCap
			}
			z := Zone{ID: len(d.Zones), Module: m, Level: level, Capacity: capacity, Pos: pos}
			pos++
			d.Zones = append(d.Zones, z)
			mod.Zones = append(mod.Zones, z.ID)
		}
		for i := 0; i < cfg.StorageZones; i++ {
			add(LevelStorage)
		}
		for i := 0; i < cfg.OperationZones; i++ {
			add(LevelOperation)
		}
		for i := 0; i < cfg.OpticalZones; i++ {
			add(LevelOptical)
		}
		mod.MaxIons = cfg.MaxIonsPerModule
		if mod.MaxIons <= 0 {
			mod.MaxIons = len(mod.Zones) * cfg.TrapCapacity
		}
		d.Modules = append(d.Modules, mod)
	}
	d.PrecomputeDistances()
	return d, nil
}

// PrecomputeDistances builds the intra-module zone-distance matrix behind
// IntraDistanceUM, turning every later distance query into one array read.
// New and Grid.Device call it automatically; builders that assemble a Device
// literally (or mutate zone geometry afterwards) may call it themselves —
// or not, in which case distances are computed per call as before.
func (d *Device) PrecomputeDistances() {
	nz := len(d.Zones)
	dist := make([]float64, nz*nz)
	for i := range dist {
		dist[i] = -1 // cross-module sentinel; overwritten for legal pairs
	}
	for _, m := range d.Modules {
		for _, a := range m.Zones {
			for _, b := range m.Zones {
				dist[a*nz+b] = d.intraDistanceSlow(a, b)
			}
		}
	}
	d.dist = dist
}

// intraDistanceSlow computes one intra-module distance from first
// principles: the builder-supplied DistUM geometry when set, the linear
// zone-segment pitch otherwise. PrecomputeDistances evaluates it once per
// same-module zone pair; IntraDistanceUM uses it only on matrix-less
// devices.
func (d *Device) intraDistanceSlow(a, b int) float64 {
	if d.DistUM != nil {
		return d.DistUM(a, b)
	}
	diff := d.Zones[a].Pos - d.Zones[b].Pos
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) * d.ZonePitchUM
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// NumZones returns the total zone count.
func (d *Device) NumZones() int { return len(d.Zones) }

// Zone returns the zone with the given ID.
func (d *Device) Zone(id int) *Zone { return &d.Zones[id] }

// Capacity returns the total ion capacity of the device respecting the
// per-module cap.
func (d *Device) Capacity() int {
	total := 0
	for _, m := range d.Modules {
		c := 0
		for _, z := range m.Zones {
			c += d.Zones[z].Capacity
		}
		if c > m.MaxIons {
			c = m.MaxIons
		}
		total += c
	}
	return total
}

// ZonesByLevel returns the zone IDs of module m at the given level.
func (d *Device) ZonesByLevel(m int, level Level) []int {
	var out []int
	for _, z := range d.Modules[m].Zones {
		if d.Zones[z].Level == level {
			out = append(out, z)
		}
	}
	return out
}

// OpticalZones returns all optical zone IDs on the device.
func (d *Device) OpticalZones() []int {
	var out []int
	for _, z := range d.Zones {
		if z.Level == LevelOptical {
			out = append(out, z.ID)
		}
	}
	return out
}

// IntraDistanceUM returns the physical shuttle distance between two zones of
// the same module — an O(1) read of the precomputed distance matrix on
// devices built by New or Grid.Device. It panics if the zones belong to
// different modules: ions never physically travel between modules on an
// EML-QCCD device (qubit state crosses modules only through fiber
// entanglement), so asking for such a distance is a scheduler bug.
//
// The body is just the matrix probe; everything else — the cross-module
// panic and the matrix-less fallback — lives in intraDistanceFallback,
// which re-derives which of the two it is from the same state. (The probe
// plus one call still costs 87 against the inliner's budget of 80, so the
// function carries no //mussti:inline claim; the split keeps the cold
// panic formatting out of the hot function body.)
//
//mussti:hotpath
func (d *Device) IntraDistanceUM(a, b int) float64 {
	if d.dist != nil {
		if v := d.dist[a*len(d.Zones)+b]; v >= 0 {
			return v
		}
	}
	return d.intraDistanceFallback(a, b)
}

// intraDistanceFallback is IntraDistanceUM's out-of-line tail: a negative
// matrix entry means a cross-module query (panic), no matrix at all means a
// first-principles computation on an unprepared device.
func (d *Device) intraDistanceFallback(a, b int) float64 {
	if d.dist == nil && d.Zones[a].Module == d.Zones[b].Module {
		return d.intraDistanceSlow(a, b)
	}
	panic(fmt.Sprintf("arch: intra-module distance across modules %d and %d",
		d.Zones[a].Module, d.Zones[b].Module))
}

// LevelsDescending enumerates zone levels from highest to lowest.
func LevelsDescending() []Level {
	return []Level{LevelOptical, LevelOperation, LevelStorage}
}

// String summarises the device for logs and CLI headers, e.g.
// "EML-QCCD: 4 modules × [2×storage(16) 1×operation(16) 1×optical(16)], ≤32 ions/module".
func (d *Device) String() string {
	if len(d.Modules) == 0 {
		return "EML-QCCD: empty device"
	}
	m := d.Modules[0]
	counts := make(map[Level]int)
	caps := make(map[Level]int)
	for _, z := range m.Zones {
		counts[d.Zones[z].Level]++
		caps[d.Zones[z].Level] = d.Zones[z].Capacity
	}
	var parts []string
	for _, l := range []Level{LevelStorage, LevelOperation, LevelOptical} {
		if counts[l] > 0 {
			parts = append(parts, fmt.Sprintf("%d×%s(%d)", counts[l], l, caps[l]))
		}
	}
	return fmt.Sprintf("EML-QCCD: %d modules × [%s], ≤%d ions/module",
		len(d.Modules), strings.Join(parts, " "), m.MaxIons)
}
