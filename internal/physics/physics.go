// Package physics implements the time and fidelity model of the MUSS-TI
// paper (§4 "Fidelity Model", Table 1).
//
// Shuttle primitives (Split, Move, Swap, Merge) have fixed durations and
// deposit motional heat n̄; their fidelity is F = exp(−t/T1 − k·n̄) with
// T1 = 600e6 µs and k = 0.001 (Eq. 1). Gates have intrinsic fidelities —
// one-qubit 0.9999, two-qubit 1 − εN² with ε = 1/25600 and N the current
// chain length of the hosting trap, fiber entanglement 0.99 — degraded by
// the hosting zone's background fidelity B_i = exp(−k·heat_i), where heat_i
// accumulates the n̄ of every shuttle primitive that touched zone i. This
// realises the paper's statement that shuttle-induced heating "accumulates
// linearly with the number of shuttles" and lowers the fidelity of
// *subsequent* gates in that zone.
//
// Fidelity products underflow float64 for the large benchmarks (the paper
// reports values down to 1e-280 and rounds past ~2.2e-308 to zero), so all
// accumulation happens in natural-log space; callers convert to linear or
// log10 for reporting.
package physics

import "math"

// Params carries every tunable of the model. The zero value is not useful;
// start from Default().
type Params struct {
	// Durations in microseconds (Table 1).
	SplitTimeUS   float64
	MergeTimeUS   float64
	SwapTimeUS    float64 // chain reorder swap (physical ion swap in trap)
	MoveSpeedUMUS float64 // µm per µs
	Gate1TimeUS   float64
	Gate2TimeUS   float64
	FiberTimeUS   float64

	// Heat deposited per primitive, in mean phonon number n̄ (Table 1).
	SplitHeat float64
	MoveHeat  float64
	SwapHeat  float64
	MergeHeat float64

	// Fidelity constants (§4).
	T1US          float64 // qubit lifetime, 600e6 µs
	HeatingRate   float64 // k = 0.001
	Gate1Fidelity float64 // 0.9999
	Epsilon       float64 // ε = 1/25600, two-qubit decay coefficient
	FiberFidelity float64 // 0.99

	// Idealised-model switches for the optimality analysis (§5.9).
	PerfectShuttle bool // shuttles deposit no heat and cost no fidelity
	PerfectGates   bool // two-qubit gates at fixed 0.9999 fidelity
}

// Default returns the paper's Table-1 parameters.
func Default() Params {
	return Params{
		SplitTimeUS:   80,
		MergeTimeUS:   80,
		SwapTimeUS:    40,
		MoveSpeedUMUS: 2,
		Gate1TimeUS:   5,
		Gate2TimeUS:   40,
		FiberTimeUS:   200,

		SplitHeat: 1,
		MoveHeat:  0.1,
		SwapHeat:  0.3,
		MergeHeat: 1,

		T1US:          600e6,
		HeatingRate:   0.001,
		Gate1Fidelity: 0.9999,
		Epsilon:       1.0 / 25600.0,
		FiberFidelity: 0.99,
	}
}

// MoveTimeUS returns the Move duration for a given distance in µm.
func (p Params) MoveTimeUS(distanceUM float64) float64 {
	if p.MoveSpeedUMUS <= 0 {
		return 0
	}
	return distanceUM / p.MoveSpeedUMUS
}

// ShuttleLogF returns ln F for one shuttle primitive of duration t carrying
// heat n̄, per Eq. 1: F = exp(−t/T1 − k·n̄).
func (p Params) ShuttleLogF(tUS, heat float64) float64 {
	if p.PerfectShuttle {
		return 0
	}
	return -tUS/p.T1US - p.HeatingRate*heat
}

// Gate1LogF returns ln F for a one-qubit gate in a zone with background
// log-fidelity bgLogF.
func (p Params) Gate1LogF(bgLogF float64) float64 {
	return math.Log(p.Gate1Fidelity) + bgLogF
}

// Gate2Fidelity returns the intrinsic two-qubit MS-gate fidelity for a trap
// currently holding n ions: 1 − εN² (§4), clamped to (0, 1].
func (p Params) Gate2Fidelity(n int) float64 {
	if p.PerfectGates {
		return 0.9999
	}
	f := 1 - p.Epsilon*float64(n)*float64(n)
	if f <= 0 {
		// A chain so long the model predicts total loss; keep a floor so
		// log-fidelity stays finite and comparable.
		return 1e-6
	}
	return f
}

// Gate2LogF returns ln F for a two-qubit gate in a trap with n ions and
// background log-fidelity bgLogF.
func (p Params) Gate2LogF(n int, bgLogF float64) float64 {
	return math.Log(p.Gate2Fidelity(n)) + bgLogF
}

// FiberLogF returns ln F for one fiber-entanglement operation between two
// optical zones with background log-fidelities bgA and bgB.
func (p Params) FiberLogF(bgA, bgB float64) float64 {
	f := p.FiberFidelity
	if p.PerfectGates {
		f = 0.9999
	}
	return math.Log(f) + bgA + bgB
}

// BackgroundLogF converts accumulated zone heat into the zone's background
// log-fidelity: ln B_i = −k·heat_i.
func (p Params) BackgroundLogF(heat float64) float64 {
	if p.PerfectShuttle {
		return 0
	}
	return -p.HeatingRate * heat
}

// Fidelity is a log-space fidelity accumulator.
type Fidelity struct {
	logF float64 // natural log of the running product
	ops  int
}

// MulLog multiplies the running product by exp(lnF).
func (f *Fidelity) MulLog(lnF float64) {
	f.logF += lnF
	f.ops++
}

// Log returns the natural log of the product.
func (f Fidelity) Log() float64 { return f.logF }

// Log10 returns log10 of the product — the scale the paper's figures use.
func (f Fidelity) Log10() float64 { return f.logF / math.Ln10 }

// Value returns the product as a float64; it underflows to 0 below
// ~2.2e-308, exactly as the paper describes for Python.
func (f Fidelity) Value() float64 { return math.Exp(f.logF) }

// Ops returns how many factors have been accumulated.
func (f Fidelity) Ops() int { return f.ops }
