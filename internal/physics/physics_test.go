package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesTable1(t *testing.T) {
	p := Default()
	cases := []struct {
		name      string
		got, want float64
	}{
		{"split", p.SplitTimeUS, 80},
		{"merge", p.MergeTimeUS, 80},
		{"swap", p.SwapTimeUS, 40},
		{"move speed", p.MoveSpeedUMUS, 2},
		{"1q time", p.Gate1TimeUS, 5},
		{"2q time", p.Gate2TimeUS, 40},
		{"fiber time", p.FiberTimeUS, 200},
		{"split heat", p.SplitHeat, 1},
		{"move heat", p.MoveHeat, 0.1},
		{"swap heat", p.SwapHeat, 0.3},
		{"merge heat", p.MergeHeat, 1},
		{"T1", p.T1US, 600e6},
		{"k", p.HeatingRate, 0.001},
		{"1q fidelity", p.Gate1Fidelity, 0.9999},
		{"epsilon", p.Epsilon, 1.0 / 25600.0},
		{"fiber fidelity", p.FiberFidelity, 0.99},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestMoveTime(t *testing.T) {
	p := Default()
	if got := p.MoveTimeUS(100); got != 50 {
		t.Errorf("MoveTimeUS(100) = %v, want 50 (2 um/us)", got)
	}
	if got := p.MoveTimeUS(0); got != 0 {
		t.Errorf("MoveTimeUS(0) = %v, want 0", got)
	}
}

func TestShuttleLogFEquation1(t *testing.T) {
	p := Default()
	// F = exp(-t/T1 - k*n̄)
	got := p.ShuttleLogF(80, 1)
	want := -80/600e6 - 0.001*1
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("ShuttleLogF(80,1) = %v, want %v", got, want)
	}
	if got >= 0 {
		t.Error("shuttle log-fidelity must be negative")
	}
}

func TestGate2FidelityQuadraticDecay(t *testing.T) {
	p := Default()
	// 1 - eps*N^2 with eps = 1/25600: N=16 -> 0.99.
	if got := p.Gate2Fidelity(16); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("Gate2Fidelity(16) = %v, want 0.99", got)
	}
	if p.Gate2Fidelity(4) <= p.Gate2Fidelity(20) {
		t.Error("fidelity must decrease with chain length")
	}
	// Degenerate chains clamp to a positive floor instead of going <= 0.
	if got := p.Gate2Fidelity(1000); got <= 0 {
		t.Errorf("Gate2Fidelity(1000) = %v, want positive floor", got)
	}
}

func TestBackgroundLogF(t *testing.T) {
	p := Default()
	if got := p.BackgroundLogF(0); got != 0 {
		t.Errorf("no heat should give background 1 (log 0), got %v", got)
	}
	if p.BackgroundLogF(10) >= p.BackgroundLogF(5) {
		t.Error("hotter zone must have lower background fidelity")
	}
}

func TestPerfectShuttleSwitch(t *testing.T) {
	p := Default()
	p.PerfectShuttle = true
	if p.ShuttleLogF(80, 1) != 0 {
		t.Error("perfect shuttle must cost nothing")
	}
	if p.BackgroundLogF(100) != 0 {
		t.Error("perfect shuttle must suppress heat background")
	}
}

func TestPerfectGatesSwitch(t *testing.T) {
	p := Default()
	p.PerfectGates = true
	if got := p.Gate2Fidelity(30); got != 0.9999 {
		t.Errorf("perfect gate fidelity = %v, want 0.9999", got)
	}
	want := math.Log(0.9999)
	if got := p.FiberLogF(0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("perfect fiber logF = %v, want %v", got, want)
	}
}

func TestFiberLogFIncludesBothBackgrounds(t *testing.T) {
	p := Default()
	clean := p.FiberLogF(0, 0)
	if math.Abs(clean-math.Log(0.99)) > 1e-12 {
		t.Errorf("clean fiber logF = %v, want ln 0.99", clean)
	}
	dirty := p.FiberLogF(-0.01, -0.02)
	if math.Abs(dirty-(clean-0.03)) > 1e-12 {
		t.Errorf("dirty fiber logF = %v, want clean-0.03", dirty)
	}
}

func TestFidelityAccumulator(t *testing.T) {
	var f Fidelity
	if f.Value() != 1 || f.Log() != 0 || f.Ops() != 0 {
		t.Error("zero accumulator should be the identity")
	}
	f.MulLog(math.Log(0.5))
	f.MulLog(math.Log(0.5))
	if math.Abs(f.Value()-0.25) > 1e-12 {
		t.Errorf("value = %v, want 0.25", f.Value())
	}
	if math.Abs(f.Log10()-math.Log10(0.25)) > 1e-12 {
		t.Errorf("log10 = %v, want %v", f.Log10(), math.Log10(0.25))
	}
	if f.Ops() != 2 {
		t.Errorf("ops = %d, want 2", f.Ops())
	}
}

func TestFidelityUnderflowBehavesLikePaper(t *testing.T) {
	// The paper reports fidelities rounding to zero below ~2.2e-308 in
	// Python; the linear view underflows identically while the log view
	// stays usable.
	var f Fidelity
	for i := 0; i < 100000; i++ {
		f.MulLog(math.Log(0.99))
	}
	if f.Value() != 0 {
		t.Errorf("linear value = %v, want underflow to 0", f.Value())
	}
	if math.IsInf(f.Log10(), 0) || f.Log10() > -300 {
		t.Errorf("log10 = %v, want finite and < -300", f.Log10())
	}
}

func TestPropertyLogFMonotonicInHeat(t *testing.T) {
	p := Default()
	f := func(a, b uint16) bool {
		h1, h2 := float64(a), float64(b)
		if h1 > h2 {
			h1, h2 = h2, h1
		}
		return p.BackgroundLogF(h1) >= p.BackgroundLogF(h2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyGate2LogFDecreasesWithChain(t *testing.T) {
	p := Default()
	f := func(n uint8) bool {
		c := int(n%100) + 2
		return p.Gate2LogF(c, 0) >= p.Gate2LogF(c+1, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
