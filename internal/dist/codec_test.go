package dist

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/core"
	"mussti/internal/eval"
	"mussti/internal/physics"
)

// roundTrip encodes j, decodes the line back, and fails the test unless the
// decoded job reproduces j's resolved spec and cache key exactly.
func roundTrip(t *testing.T, name string, j eval.Job) {
	t.Helper()
	line, err := EncodeJob(7, j)
	if err != nil {
		t.Fatalf("%s: encode: %v", name, err)
	}
	seq, back, err := DecodeJob(line)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if seq != 7 {
		t.Errorf("%s: seq 7 round-tripped to %d", name, seq)
	}
	want, err := j.Resolve()
	if err != nil {
		t.Fatalf("%s: resolve: %v", name, err)
	}
	got, err := back.Resolve()
	if err != nil {
		t.Fatalf("%s: decoded job does not resolve: %v", name, err)
	}
	// The Observer is the one deliberate loss (callbacks cannot cross a
	// process boundary and never affect a measurement); null it before the
	// deep comparison so everything else must match.
	if want.Config != nil && want.Config.Observer != nil {
		cfg := *want.Config
		cfg.Observer = nil
		want.Config = &cfg
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: spec did not round-trip:\nwant %+v\ngot  %+v", name, want, got)
	}
	wk, wok := want.CacheKey()
	gk, gok := got.CacheKey()
	if wok != gok || wk != gk {
		t.Errorf("%s: cache key did not round-trip:\nwant (%v) %s\ngot  (%v) %s", name, wok, wk, gok, gk)
	}
}

// TestEnvelopeRoundTripExhaustive is the codec's lossless-round-trip
// contract: every registered compiler, both target kinds (EML device from a
// Config — zero and explicit — and monolithic grid), and every CompileConfig
// option must survive encode→decode with an identical spec and cache key.
func TestEnvelopeRoundTripExhaustive(t *testing.T) {
	grids := []*arch.Grid{nil, arch.MustNewGrid(2, 2, 12), arch.MustNewGrid(2, 3, 8)}
	archs := []arch.Config{{}, arch.DefaultConfig(32), {Modules: 2, TrapCapacity: 8, StorageZones: 1, OperationZones: 1, OpticalZones: 1}}
	ideal := physics.Default()
	ideal.PerfectGates = true
	configs := []*core.CompileConfig{
		nil,
		core.NewCompileConfig(),
		core.NewCompileConfig(core.WithMapping(core.MappingTrivial)),
		core.NewCompileConfig(core.WithSwapInsertion(false)),
		core.NewCompileConfig(core.WithLookAhead(3)),
		core.NewCompileConfig(core.WithSwapThreshold(9)),
		core.NewCompileConfig(core.WithPhysics(ideal)),
		core.NewCompileConfig(core.WithTrace()),
		core.NewCompileConfig(core.WithReplacement(core.ReplaceBelady)),
		core.NewCompileConfig(core.WithRoutingLookAhead(false)),
	}
	for _, comp := range core.CompilerNames() {
		for gi, g := range grids {
			for ai, a := range archs {
				if g != nil && ai > 0 {
					continue // Grid wins over Arch in spec resolution; don't test dead combos
				}
				for ci, cfg := range configs {
					s := eval.CompileSpec{App: "GHZ_n32", Compiler: comp, Grid: g, Arch: a, Config: cfg}
					roundTrip(t, comp+"/"+string(rune('a'+gi))+string(rune('0'+ai))+string(rune('0'+ci)), eval.Job{Spec: &s})
				}
			}
		}
	}
}

// TestLegacySpecsEncodeViaConversion: the deprecated Mussti/Baseline spec
// styles cross the wire through their existing CompileSpec conversion, so a
// legacy job and its registry twin land on the same cache key after decode
// (their envelopes may differ in spelling — the legacy conversion writes an
// explicit default config where the registry style leaves nil — but never
// in meaning).
func TestLegacySpecsEncodeViaConversion(t *testing.T) {
	legacy := eval.Job{Baseline: &eval.BaselineSpec{App: "BV_n32", Algorithm: baseline.Dai, Rows: 2, Cols: 3, Capacity: 8}}
	registry := eval.Job{Spec: &eval.CompileSpec{App: "BV_n32", Compiler: "dai", Grid: arch.MustNewGrid(2, 3, 8)}}
	roundTrip(t, "legacy-baseline", legacy)
	keyOf := func(j eval.Job) string {
		t.Helper()
		line, err := EncodeJob(1, j)
		if err != nil {
			t.Fatal(err)
		}
		_, back, err := DecodeJob(line)
		if err != nil {
			t.Fatal(err)
		}
		s, err := back.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		k, ok := s.CacheKey()
		if !ok {
			t.Fatalf("uncacheable after decode: %+v", s)
		}
		return k
	}
	if l, r := keyOf(legacy), keyOf(registry); l != r {
		t.Errorf("legacy and registry jobs decode to different cache keys:\n%s\n%s", l, r)
	}

	mLegacy := eval.Job{Mussti: &eval.MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}}
	roundTrip(t, "legacy-mussti", mLegacy)

	if _, err := EncodeJob(1, eval.Job{}); err == nil {
		t.Error("empty job encoded; want error")
	}
}

// TestObserverNeverCrossesTheWire: an attached observer is dropped by the
// codec (it cannot serialise), and the cache key — which excludes observers
// by design — is unchanged.
func TestObserverNeverCrossesTheWire(t *testing.T) {
	cfg := core.NewCompileConfig(core.WithObserver(core.ObserverOrNop(nil)))
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Config: cfg}
	line, err := EncodeJob(1, eval.Job{Spec: &s})
	if err != nil {
		t.Fatalf("observer made the job unencodable: %v", err)
	}
	_, back, err := DecodeJob(line)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if got.Config == nil || got.Config.Observer != nil {
		t.Errorf("observer crossed the wire: %+v", got.Config)
	}
}

// TestParallelismNeverCrossesTheWire: Parallelism is an execution-resource
// knob — compiles are byte-identical at any setting — so like the Observer
// it is dropped by the codec and each worker applies its own. The decoded
// spec must come back with the sequential default.
func TestParallelismNeverCrossesTheWire(t *testing.T) {
	cfg := core.NewCompileConfig(core.WithParallelism(8))
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Config: cfg}
	line, err := EncodeJob(1, eval.Job{Spec: &s})
	if err != nil {
		t.Fatalf("parallelism made the job unencodable: %v", err)
	}
	_, back, err := DecodeJob(line)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if got.Config == nil || got.Config.Parallelism != 0 {
		t.Errorf("parallelism crossed the wire: %+v", got.Config)
	}
}

// TestResultEnvelopeRoundTrip covers both outcome shapes and the
// exactly-one-of validation.
func TestResultEnvelopeRoundTrip(t *testing.T) {
	m := eval.Measurement{App: "GHZ_n32", Compiler: "MUSS-TI", Qubits: 32, TwoQubit: 31,
		Shuttles: 3, TimeUS: 2075.5, Fidelity: 0.815, Log10F: -0.0888}
	line, err := EncodeResult(9, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, err := DecodeResult(line)
	if err != nil {
		t.Fatal(err)
	}
	if env.Seq != 9 || env.Err != "" || env.Measurement == nil || *env.Measurement != m {
		t.Errorf("measurement result did not round-trip: %+v", env)
	}

	line, err = EncodeResult(10, eval.Measurement{}, errors.New("eval: GHZ_n32/mussti: boom"))
	if err != nil {
		t.Fatal(err)
	}
	env, err = DecodeResult(line)
	if err != nil {
		t.Fatal(err)
	}
	if env.Seq != 10 || env.Measurement != nil || env.Err != "eval: GHZ_n32/mussti: boom" {
		t.Errorf("error result did not round-trip: %+v", env)
	}
}

// TestDecodeRejectsMalformed pins the error-never-panic contract on a
// catalogue of malformed envelopes.
func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"not json", "seq=1 spec=GHZ"},
		{"truncated", `{"v":2,"kind":"job","seq":1,"spec":{"app":"GH`},
		{"wrong version", `{"v":99,"kind":"job","seq":1,"spec":{"app":"GHZ_n32","compiler":"mussti"}}`},
		{"zero version", `{"kind":"job","seq":1,"spec":{"app":"GHZ_n32","compiler":"mussti"}}`},
		{"missing kind", `{"v":2,"seq":1,"spec":{"app":"GHZ_n32","compiler":"mussti"}}`},
		{"wrong kind", `{"v":2,"kind":"result","seq":1,"spec":{"app":"GHZ_n32","compiler":"mussti"}}`},
		{"unknown field", `{"v":2,"kind":"job","seq":1,"spec":{"app":"GHZ_n32","compiler":"mussti","bogus":3}}`},
		{"trailing garbage", `{"v":2,"kind":"job","seq":1,"spec":{"app":"GHZ_n32","compiler":"mussti"}}{"v":2}`},
		{"wrong types", `{"v":2,"kind":"job","seq":"one","spec":{"app":"GHZ_n32","compiler":"mussti"}}`},
		{"array", `[1,2,3]`},
	}
	for _, c := range cases {
		if _, _, err := DecodeJob([]byte(c.data)); err == nil {
			t.Errorf("DecodeJob(%s) accepted malformed input", c.name)
		}
	}
	results := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"wrong version", `{"v":99,"kind":"result","seq":1,"err":"x"}`},
		{"missing kind", `{"v":2,"seq":1,"err":"x"}`},
		{"wrong kind", `{"v":2,"kind":"pong","seq":1,"err":"x"}`},
		{"neither outcome", `{"v":2,"kind":"result","seq":1}`},
		{"both outcomes", `{"v":2,"kind":"result","seq":1,"measurement":{},"err":"x"}`},
		{"unknown field", `{"v":2,"kind":"result","seq":1,"err":"x","extra":true}`},
	}
	for _, c := range results {
		if _, err := DecodeResult([]byte(c.data)); err == nil {
			t.Errorf("DecodeResult(%s) accepted malformed input", c.name)
		}
	}
}

// TestDecodeRejectsOldWireVersion pins the version bump: a v1 envelope (the
// pre-pipelining wire format — kindless, one job per frame) must be refused
// by every v2 entry point, so a mixed-version fleet fails loudly at the
// first frame instead of silently misinterpreting the stream.
func TestDecodeRejectsOldWireVersion(t *testing.T) {
	v1Job := `{"v":1,"seq":1,"spec":{"app":"GHZ_n32","compiler":"mussti"}}`
	v1Result := `{"v":1,"seq":1,"err":"x"}`
	if _, _, err := DecodeJob([]byte(v1Job)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("DecodeJob accepted a v1 envelope (err %v); the wire version bump must reject it", err)
	}
	if _, err := DecodeResult([]byte(v1Result)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("DecodeResult accepted a v1 envelope (err %v)", err)
	}
	if _, err := SniffFrame([]byte(v1Job)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("SniffFrame accepted a v1 frame (err %v)", err)
	}
}

// TestSniffFrameRoutesKinds: the loose probe must report every kind the
// strict decoders accept, and reject kindless or version-skewed frames
// before any shape-specific parsing.
func TestSniffFrameRoutesKinds(t *testing.T) {
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti"}
	spec, err := WireSpecOf(eval.Job{Spec: &s})
	if err != nil {
		t.Fatal(err)
	}
	frames := []struct {
		kind string
		make func() ([]byte, error)
	}{
		{KindJob, func() ([]byte, error) { return EncodeJobSpec(1, spec) }},
		{KindBatch, func() ([]byte, error) { return EncodeBatch([]WireJob{{Seq: 1, Spec: spec}}) }},
		{KindPing, func() ([]byte, error) { return EncodePing(2) }},
		{KindPong, func() ([]byte, error) { return EncodePong(2) }},
		{KindResult, func() ([]byte, error) { return EncodeResult(3, eval.Measurement{}, nil) }},
		{KindResults, func() ([]byte, error) {
			return EncodeBatchResult([]WireResult{NewWireResult(3, eval.Measurement{}, nil)})
		}},
	}
	for _, f := range frames {
		line, err := f.make()
		if err != nil {
			t.Fatalf("%s: encode: %v", f.kind, err)
		}
		kind, err := SniffFrame(line)
		if err != nil {
			t.Errorf("%s: sniff: %v", f.kind, err)
		} else if kind != f.kind {
			t.Errorf("sniffed %q, want %q", kind, f.kind)
		}
	}
	if _, err := SniffFrame([]byte(`{"v":2,"seq":1}`)); err == nil {
		t.Error("SniffFrame accepted a kindless frame")
	}
	if _, err := SniffFrame([]byte(`not json`)); err == nil {
		t.Error("SniffFrame accepted non-JSON")
	}
}

// TestBatchRoundTrip: a coalesced batch frame must decode into exactly the
// member seqs and jobs it was built from, and empty batches are refused on
// both sides.
func TestBatchRoundTrip(t *testing.T) {
	apps := []string{"GHZ_n32", "BV_n32", "QAOA_n32"}
	wire := make([]WireJob, len(apps))
	for i, app := range apps {
		s := eval.CompileSpec{App: app, Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
		spec, err := WireSpecOf(eval.Job{Spec: &s})
		if err != nil {
			t.Fatal(err)
		}
		wire[i] = WireJob{Seq: uint64(100 + i), Spec: spec}
	}
	line, err := EncodeBatch(wire)
	if err != nil {
		t.Fatal(err)
	}
	seqs, jobs, err := DecodeBatch(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != len(apps) || len(jobs) != len(apps) {
		t.Fatalf("batch of %d decoded to %d seqs / %d jobs", len(apps), len(seqs), len(jobs))
	}
	for i := range apps {
		if seqs[i] != uint64(100+i) {
			t.Errorf("member %d: seq %d, want %d", i, seqs[i], 100+i)
		}
		got, err := jobs[i].Resolve()
		if err != nil {
			t.Fatal(err)
		}
		if got.App != apps[i] {
			t.Errorf("member %d: app %q, want %q", i, got.App, apps[i])
		}
	}
	if _, err := EncodeBatch(nil); err == nil {
		t.Error("EncodeBatch accepted an empty batch")
	}
	if _, _, err := DecodeBatch([]byte(`{"v":2,"kind":"batch","jobs":[]}`)); err == nil {
		t.Error("DecodeBatch accepted an empty batch")
	}
}

// TestHeartbeatRoundTrip: pings and pongs carry their seq, and the decoder
// refuses every other kind.
func TestHeartbeatRoundTrip(t *testing.T) {
	ping, err := EncodePing(41)
	if err != nil {
		t.Fatal(err)
	}
	kind, seq, err := DecodeHeartbeat(ping)
	if err != nil || kind != KindPing || seq != 41 {
		t.Errorf("ping round-trip: kind %q seq %d err %v", kind, seq, err)
	}
	pong, err := EncodePong(42)
	if err != nil {
		t.Fatal(err)
	}
	kind, seq, err = DecodeHeartbeat(pong)
	if err != nil || kind != KindPong || seq != 42 {
		t.Errorf("pong round-trip: kind %q seq %d err %v", kind, seq, err)
	}
	if _, _, err := DecodeHeartbeat([]byte(`{"v":2,"kind":"job","seq":1}`)); err == nil {
		t.Error("DecodeHeartbeat accepted a job frame")
	}
}

// TestBatchResultRoundTrip covers both member shapes and the per-member
// exactly-one-of validation.
func TestBatchResultRoundTrip(t *testing.T) {
	m := eval.Measurement{App: "GHZ_n32", Compiler: "MUSS-TI", Qubits: 32, TwoQubit: 31}
	line, err := EncodeBatchResult([]WireResult{
		NewWireResult(5, m, nil),
		NewWireResult(6, eval.Measurement{}, errors.New("boom")),
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := DecodeBatchResult(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("decoded %d members, want 2", len(results))
	}
	if results[0].Seq != 5 || results[0].Err != "" || results[0].Measurement == nil || *results[0].Measurement != m {
		t.Errorf("measurement member did not round-trip: %+v", results[0])
	}
	if results[1].Seq != 6 || results[1].Measurement != nil || results[1].Err != "boom" {
		t.Errorf("error member did not round-trip: %+v", results[1])
	}
	if _, err := EncodeBatchResult(nil); err == nil {
		t.Error("EncodeBatchResult accepted an empty result set")
	}
	if _, err := DecodeBatchResult([]byte(`{"v":2,"kind":"results","results":[{"seq":1}]}`)); err == nil {
		t.Error("DecodeBatchResult accepted a member with neither outcome")
	}
}

// FuzzDecodeJobEnvelope is the codec's robustness fuzz target: arbitrary
// bytes must either fail to decode or decode into a job whose re-encoding
// decodes to an identical cache key — and nothing may ever panic. The
// seeded corpus under testdata/fuzz mixes valid envelopes with truncations
// and type confusions.
func FuzzDecodeJobEnvelope(f *testing.F) {
	seedJobs := []eval.Job{
		{Spec: &eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti"}},
		{Spec: &eval.CompileSpec{App: "QFT_n32", Compiler: "dai", Grid: arch.MustNewGrid(2, 2, 12)}},
		{Spec: &eval.CompileSpec{App: "BV_n32", Compiler: "murali", Config: core.NewCompileConfig(core.WithLookAhead(5))}},
		{Spec: &eval.CompileSpec{App: "SQRT_n30", Compiler: "mqt", Arch: arch.DefaultConfig(30)}},
	}
	for _, j := range seedJobs {
		line, err := EncodeJob(1, j)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{"v":1,"seq":1,"spec":{"app":"GHZ_n32","compiler":"mussti","bogus":3}}`))
	f.Add([]byte(`{"v":99}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"v":1,"seq":18446744073709551615,"spec":{"app":"","compiler":""}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, job, err := DecodeJob(data)
		if err != nil {
			return // malformed input must error, and it did
		}
		spec, err := job.Resolve()
		if err != nil {
			t.Fatalf("decoded job does not resolve: %v", err)
		}
		k1, ok1 := spec.CacheKey()
		line, err := EncodeJob(seq, job)
		if err != nil {
			t.Fatalf("decoded job does not re-encode: %v", err)
		}
		seq2, job2, err := DecodeJob(line)
		if err != nil {
			t.Fatalf("re-encoded job does not decode: %v", err)
		}
		if seq2 != seq {
			t.Fatalf("seq %d re-encoded to %d", seq, seq2)
		}
		spec2, err := job2.Resolve()
		if err != nil {
			t.Fatalf("re-decoded job does not resolve: %v", err)
		}
		k2, ok2 := spec2.CacheKey()
		if ok1 != ok2 || k1 != k2 {
			t.Fatalf("cache key not preserved:\nfirst  (%v) %s\nsecond (%v) %s", ok1, k1, ok2, k2)
		}
	})
}

// FuzzSpecRoundTrip fuzzes the spec fields themselves (rather than raw
// bytes): any spec the harness could construct must round-trip to an
// identical cache key, whatever strings and numbers it carries.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add("GHZ_n32", "mussti", false, 2, 2, 12, 100.0, 0, 16, 8, true, 1, 8, 4, false, 0)
	f.Add("QFT_n32", "dai", true, 2, 3, 8, 75.5, 4, 12, 6, false, 0, 0, 0, false, 0)
	f.Add("", "", false, 0, 0, 0, 0.0, 0, 0, 0, true, 0, -1, -7, true, 3)
	f.Add("weird|app\nname", "no-such-compiler", true, -1, 1<<30, 2, -0.0, 1, 1, 1, true, 99, 1<<40, 1, true, -9)
	f.Fuzz(func(t *testing.T, app, compiler string, useGrid bool, rows, cols, capacity int, pitch float64,
		modules, trapCap, optCap int, hasConfig bool, mapping, lookAhead, swapT int, trace bool, repl int) {
		s := eval.CompileSpec{App: app, Compiler: compiler}
		if useGrid {
			s.Grid = &arch.Grid{Rows: rows, Cols: cols, Capacity: capacity, TrapPitchUM: pitch}
		} else {
			s.Arch = arch.Config{Modules: modules, TrapCapacity: trapCap, OpticalCapacity: optCap, ZonePitchUM: pitch}
		}
		if hasConfig {
			s.Config = &core.CompileConfig{
				Mapping:       core.MappingStrategy(mapping),
				LookAhead:     lookAhead,
				SwapThreshold: swapT,
				Trace:         trace,
				Replacement:   core.ReplacementPolicy(repl),
				Params:        physics.Default(),
			}
		}
		j := eval.Job{Spec: &s}
		line, err := EncodeJob(1, j)
		if err != nil {
			// Two inputs are legitimately unencodable: non-finite floats
			// (JSON has no Inf/NaN) and invalid UTF-8 names (encoding/json
			// would silently rewrite them, so the codec refuses instead).
			if strings.Contains(err.Error(), "unsupported value") ||
				strings.Contains(err.Error(), "valid UTF-8") {
				return
			}
			t.Fatalf("encode failed: %v", err)
		}
		_, back, err := DecodeJob(line)
		if err != nil {
			t.Fatalf("own encoding does not decode: %v", err)
		}
		got, err := back.Resolve()
		if err != nil {
			t.Fatalf("decoded job does not resolve: %v", err)
		}
		k1, ok1 := s.CacheKey()
		k2, ok2 := got.CacheKey()
		if ok1 != ok2 || k1 != k2 {
			t.Fatalf("cache key not preserved:\nin  (%v) %s\nout (%v) %s", ok1, k1, ok2, k2)
		}
	})
}
