package dist

import (
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"sync"
)

// WorkerLauncher starts the processes a Coordinator manages. The default is
// local process execution; a launcher that wraps the worker command in a
// remote shell (CommandLauncher with an ssh prefix, a container runtime, a
// cluster submit tool) moves the fleet off-machine without the coordinator
// knowing — the envelope protocol only needs a stdin/stdout byte stream.
type WorkerLauncher interface {
	// Launch starts one worker running argv with the given environment (nil
	// inherits the parent's) and stderr destination, returning a handle over
	// its protocol streams and lifecycle.
	Launch(argv, env []string, stderr io.Writer) (WorkerHandle, error)
}

// WorkerHandle is one launched worker: its protocol streams and the three
// lifecycle operations the coordinator needs. Implementations must make
// Wait reap whatever resources the launch claimed (a local process, a
// remote shell) and tolerate a Kill racing it.
type WorkerHandle interface {
	// Stdin is the job-frame stream; closing it asks an idle worker to exit.
	Stdin() io.WriteCloser
	// Stdout is the result-frame stream.
	Stdout() io.Reader
	// Kill hard-stops the worker.
	Kill() error
	// Wait blocks until the worker is gone and reaps it. Call exactly once.
	Wait() error
	// Pid is the launched process's id, or -1 when the launcher has none
	// (diagnostics only; the coordinator never signals it directly).
	Pid() int
}

// LocalLauncher runs workers as directly spawned child processes — the
// default when CoordinatorOptions.Launcher is nil.
type LocalLauncher struct{}

// Launch implements WorkerLauncher via exec.Command.
func (LocalLauncher) Launch(argv, env []string, stderr io.Writer) (WorkerHandle, error) {
	if len(argv) == 0 || argv[0] == "" {
		return nil, fmt.Errorf("dist: launching worker: empty command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = env
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: launching worker: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: launching worker: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: launching worker: %w", err)
	}
	return &execHandle{cmd: cmd, stdin: stdin, stdout: stdout}, nil
}

// CommandLauncher wraps the worker argv in a command prefix before local
// execution — the ssh-style seam: Prefix {"ssh", "-o", "BatchMode=yes",
// "build-02"} runs every worker on build-02, with stdin/stdout tunnelling
// the envelope protocol unchanged. Anything that execs its trailing
// arguments works the same way (env, nice, a container runtime's exec).
// Note the prefix command is what runs locally: Kill stops it (ssh tears
// the remote process down with the session), and Pid is the local wrapper's.
type CommandLauncher struct {
	Prefix []string
}

// Launch implements WorkerLauncher by prepending the prefix to argv.
func (l CommandLauncher) Launch(argv, env []string, stderr io.Writer) (WorkerHandle, error) {
	if len(l.Prefix) == 0 || l.Prefix[0] == "" {
		return nil, fmt.Errorf("dist: launching worker: CommandLauncher needs a command prefix")
	}
	full := make([]string, 0, len(l.Prefix)+len(argv))
	full = append(full, l.Prefix...)
	full = append(full, argv...)
	return LocalLauncher{}.Launch(full, env, stderr)
}

// execHandle adapts an exec.Cmd to WorkerHandle.
type execHandle struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.Reader
}

func (h *execHandle) Stdin() io.WriteCloser { return h.stdin }
func (h *execHandle) Stdout() io.Reader     { return h.stdout }

func (h *execHandle) Kill() error {
	if h.cmd.Process == nil {
		return nil
	}
	return h.cmd.Process.Kill()
}

func (h *execHandle) Wait() error { return h.cmd.Wait() }

func (h *execHandle) Pid() int {
	if h.cmd.Process == nil {
		return -1
	}
	return h.cmd.Process.Pid
}

// prefixWriter tags every line written through it with a stable prefix
// ("[w3] ") so interleaved fleet stderr — progress ticks, crash reports —
// stays attributable to its worker. Output is line-buffered: a partial line
// is held until its newline arrives, then emitted as a single Write to the
// underlying writer (which keeps lines whole even when several workers
// share one destination). Flush emits any held partial line, newline-
// terminated, so a crashing worker's last words are not lost.
type prefixWriter struct {
	mu     sync.Mutex
	w      io.Writer
	prefix []byte
	buf    []byte // pending bytes of an incomplete line
}

func newPrefixWriter(w io.Writer, prefix string) *prefixWriter {
	return &prefixWriter{w: w, prefix: []byte(prefix)}
}

// Write implements io.Writer. Errors from the underlying writer are
// reported but the accepted byte count stays len(b): the worker's stderr is
// best-effort diagnostics, and short-write accounting against the pipe
// would kill the worker over a logging failure.
func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = append(p.buf, b...)
	var firstErr error
	for {
		i := bytes.IndexByte(p.buf, '\n')
		if i < 0 {
			break
		}
		line := make([]byte, 0, len(p.prefix)+i+1)
		line = append(line, p.prefix...)
		line = append(line, p.buf[:i+1]...)
		p.buf = p.buf[i+1:]
		if _, err := p.w.Write(line); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if len(p.buf) == 0 {
		p.buf = nil // release the backing array between lines
	}
	return len(b), firstErr
}

// Flush emits any buffered partial line with a trailing newline.
func (p *prefixWriter) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) == 0 {
		return nil
	}
	line := make([]byte, 0, len(p.prefix)+len(p.buf)+1)
	line = append(line, p.prefix...)
	line = append(line, p.buf...)
	line = append(line, '\n')
	p.buf = nil
	_, err := p.w.Write(line)
	return err
}
