package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"mussti/internal/arch"
	"mussti/internal/eval"
)

// TestWorkerHelper is not a test: it is the worker process the coordinator
// tests spawn, entered by re-executing the test binary with
// -test.run=^TestWorkerHelper$ and MUSSTI_DIST_HELPER=1. It speaks the
// envelope protocol on stdin/stdout and exits the process directly so the
// testing framework's trailing output never pollutes the protocol stream.
//
// Fault-injection modes, each arbitrated across the fleet by an O_EXCL lock
// file so exactly one worker misbehaves:
//
//   - MUSSTI_DIST_CRASH_LOCK: the winner dies the moment real work arrives
//     (heartbeat pings are skipped — this is a crash mid-job, not a hang).
//   - MUSSTI_DIST_STALE_LOCK: the winner answers its first job with a bogus
//     seq from nowhere, then keeps ponging — a protocol violation the
//     coordinator must treat as worker death.
//   - MUSSTI_DIST_HANG_LOCK: the winner reads forever and never writes a
//     byte — the shape only heartbeat timeouts can catch.
func TestWorkerHelper(t *testing.T) {
	if os.Getenv("MUSSTI_DIST_HELPER") != "1" {
		t.Skip("re-exec helper for the coordinator tests, not a test")
	}
	if winsLock(os.Getenv("MUSSTI_DIST_CRASH_LOCK")) {
		in := bufio.NewReader(os.Stdin)
		for {
			line, err := in.ReadBytes('\n')
			if err != nil {
				os.Exit(3)
			}
			if kind, err := SniffFrame(line); err != nil || kind == KindJob || kind == KindBatch {
				os.Exit(3) // die only once real work arrived
			}
		}
	}
	if winsLock(os.Getenv("MUSSTI_DIST_STALE_LOCK")) {
		staleWorker()
	}
	if winsLock(os.Getenv("MUSSTI_DIST_HANG_LOCK")) {
		in := bufio.NewReader(os.Stdin)
		for {
			if _, err := in.ReadBytes('\n'); err != nil {
				os.Exit(3)
			}
		}
	}
	r := eval.NewRunner(1)
	if dir := os.Getenv("MUSSTI_DIST_CACHEDIR"); dir != "" {
		dc, err := eval.NewDiskCache(dir)
		if err != nil {
			os.Exit(1)
		}
		r.SetDiskCache(dc)
	}
	if err := ServeWorker(context.Background(), os.Stdin, os.Stdout, r); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// winsLock reports whether this process created the lock file first.
func winsLock(lock string) bool {
	if lock == "" {
		return false
	}
	f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// staleWorker answers pings correctly but its first job with a seq the
// coordinator never issued, then goes back to ponging without ever
// answering the real job. Never returns.
func staleWorker() {
	in := bufio.NewReader(os.Stdin)
	out := bufio.NewWriter(os.Stdout)
	emit := func(line []byte, err error) {
		if err != nil {
			os.Exit(1)
		}
		out.Write(append(line, '\n'))
		out.Flush()
	}
	for {
		line, err := in.ReadBytes('\n')
		if err != nil {
			os.Exit(3)
		}
		kind, err := SniffFrame(line)
		if err != nil {
			os.Exit(1)
		}
		switch kind {
		case KindPing:
			_, seq, err := DecodeHeartbeat(line)
			if err != nil {
				os.Exit(1)
			}
			emit(EncodePong(seq))
		case KindJob:
			seq, _, err := DecodeJob(line)
			if err != nil {
				os.Exit(1)
			}
			emit(EncodeResult(seq+1<<40, eval.Measurement{}, nil))
		case KindBatch:
			seqs, _, err := DecodeBatch(line)
			if err != nil {
				os.Exit(1)
			}
			emit(EncodeBatchResult([]WireResult{NewWireResult(seqs[0]+1<<40, eval.Measurement{}, nil)}))
		}
	}
}

// helperCoordinator spawns a coordinator whose workers are re-executions of
// this test binary in worker-helper mode. opts may be nil; its Env field is
// overwritten with the helper environment plus extraEnv.
func helperCoordinator(t *testing.T, n int, opts *CoordinatorOptions, extraEnv ...string) *Coordinator {
	t.Helper()
	argv := []string{os.Args[0], "-test.run=^TestWorkerHelper$"}
	env := append(os.Environ(), "MUSSTI_DIST_HELPER=1")
	env = append(env, extraEnv...)
	var o CoordinatorOptions
	if opts != nil {
		o = *opts
	}
	o.Env = env
	c, err := NewCoordinator(n, argv, &o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testJobs is a small mixed workload: two grids, six jobs — enough to
// exercise both workers of a two-worker fleet and give retries somewhere to
// land.
func testJobs() []eval.Job {
	g22 := arch.MustNewGrid(2, 2, 12)
	g23 := arch.MustNewGrid(2, 3, 8)
	var jobs []eval.Job
	for _, app := range []string{"GHZ_n32", "BV_n32", "QAOA_n32"} {
		for _, g := range []*arch.Grid{g22, g23} {
			s := eval.CompileSpec{App: app, Compiler: "mussti", Grid: g}
			jobs = append(jobs, eval.Job{Spec: &s})
		}
	}
	return jobs
}

// sameMeasurement compares two measurements modulo CompileTime — the one
// deliberately nondeterministic field (wall clock), which no deterministic
// experiment renders (fig10/fig11 are Serial and never reach a remote).
func sameMeasurement(a, b eval.Measurement) bool {
	a.CompileTime, b.CompileTime = 0, 0
	return a == b
}

// TestCoordinatorMatchesLocalExecution: the same job list run through a
// worker fleet and run in-process must produce identical measurements, in
// identical (paper) order — at lockstep (Pipeline=1), at the default
// window, and with coalescing disabled, since none of those settings may
// affect output.
func TestCoordinatorMatchesLocalExecution(t *testing.T) {
	jobs := testJobs()
	local, err := (*eval.Runner)(nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		opts CoordinatorOptions
	}{
		{"lockstep", CoordinatorOptions{Pipeline: 1}},
		{"pipelined", CoordinatorOptions{Pipeline: 4}},
		{"pipelined-uncoalesced", CoordinatorOptions{Pipeline: 4, DisableCoalescing: true}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			coord := helperCoordinator(t, 2, &v.opts)
			r := eval.NewRunner(2)
			r.SetRemote(coord)
			distributed, err := r.Run(context.Background(), jobs)
			if err != nil {
				t.Fatal(err)
			}
			if len(local) != len(distributed) {
				t.Fatalf("local %d measurements, distributed %d", len(local), len(distributed))
			}
			for i := range local {
				if !sameMeasurement(local[i], distributed[i]) {
					t.Errorf("job %d differs:\nlocal       %+v\ndistributed %+v", i, local[i], distributed[i])
				}
			}
		})
	}
}

// TestCommandLauncherWrapsWorkerCommand: a CommandLauncher with an
// exec-style prefix (env(1) stands in for ssh) must produce the same
// results as direct local launch — the coordinator cannot tell.
func TestCommandLauncherWrapsWorkerCommand(t *testing.T) {
	if _, err := os.Stat("/usr/bin/env"); err != nil {
		t.Skip("no /usr/bin/env on this machine")
	}
	jobs := testJobs()[:2]
	local, err := (*eval.Runner)(nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	coord := helperCoordinator(t, 1, &CoordinatorOptions{Launcher: CommandLauncher{Prefix: []string{"/usr/bin/env"}}})
	r := eval.NewRunner(1)
	r.SetRemote(coord)
	distributed, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if !sameMeasurement(local[i], distributed[i]) {
			t.Errorf("job %d differs through CommandLauncher:\nlocal       %+v\ndistributed %+v", i, local[i], distributed[i])
		}
	}
}

// TestWorkerDeathRetry is the fault-injection test: one worker of the fleet
// dies mid-job (after receiving it), and the coordinator must reassign
// every job in its window to another worker, restore fleet capacity, and
// still hand back every measurement in paper order. With the default
// pipeline the dead worker takes a whole window of jobs down with it, so
// this exercises the requeue-all path, not just single-job retry.
func TestWorkerDeathRetry(t *testing.T) {
	lock := tempPath(t, "crash-once")
	jobs := testJobs()
	local, err := (*eval.Runner)(nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	coord := helperCoordinator(t, 2, nil, "MUSSTI_DIST_CRASH_LOCK="+lock)
	r := eval.NewRunner(2)
	r.SetRemote(coord)
	distributed, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("run did not survive a worker death: %v", err)
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("crash lock untouched — the fault was never injected: %v", err)
	}
	for i := range local {
		if !sameMeasurement(local[i], distributed[i]) {
			t.Errorf("job %d differs after retry:\nlocal       %+v\ndistributed %+v", i, local[i], distributed[i])
		}
	}
	// The dead worker must have been replaced: the fleet is back to size.
	coord.mu.Lock()
	alive := len(coord.procs)
	coord.mu.Unlock()
	if alive != 2 {
		t.Errorf("fleet has %d workers after a death, want 2 (replacement spawned)", alive)
	}
	if st := coord.Stats(); st.Deaths < 1 || st.Retried < 1 {
		t.Errorf("stats after an injected death: %+v, want Deaths>=1 and Retried>=1", st)
	}
}

// TestStaleSeqIsWorkerDeath: a worker answering a seq the coordinator never
// gave it (a stale answer from a previous window, a duplicate, an
// invention) can no longer be trusted; the coordinator must reap it like a
// death and complete its real job on the replacement.
func TestStaleSeqIsWorkerDeath(t *testing.T) {
	lock := tempPath(t, "stale-once")
	coord := helperCoordinator(t, 1, nil, "MUSSTI_DIST_STALE_LOCK="+lock)
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
	m, err := coord.RunJob(context.Background(), eval.Job{Spec: &s})
	if err != nil {
		t.Fatalf("job did not survive a stale-seq worker: %v", err)
	}
	localMs, err := (*eval.Runner)(nil).Run(context.Background(), []eval.Job{{Spec: &s}})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMeasurement(m, localMs[0]) {
		t.Errorf("measurement after stale-seq retry differs:\nlocal  %+v\nremote %+v", localMs[0], m)
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("stale lock untouched — the fault was never injected: %v", err)
	}
	if st := coord.Stats(); st.Deaths < 1 || st.Retried < 1 {
		t.Errorf("stats after a stale-seq violation: %+v, want Deaths>=1 and Retried>=1", st)
	}
}

// TestHeartbeatTimeoutRequeuesWindow: a worker that goes completely silent
// with a full window of jobs in flight must be declared dead by the
// heartbeat deadline, and every windowed job requeued and completed on the
// replacement — the liveness path no transport error ever triggers.
func TestHeartbeatTimeoutRequeuesWindow(t *testing.T) {
	lock := tempPath(t, "hang-once")
	coord := helperCoordinator(t, 1, &CoordinatorOptions{
		Pipeline:        3,
		Heartbeat:       30 * time.Millisecond,
		HeartbeatMisses: 3,
	}, "MUSSTI_DIST_HANG_LOCK="+lock)
	jobs := testJobs()[:3]
	local, err := (*eval.Runner)(nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	ms := make([]eval.Measurement, len(jobs))
	errs := make([]error, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms[i], errs[i] = coord.RunJob(context.Background(), jobs[i])
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("windowed jobs never completed after the worker hung")
	}
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d failed after heartbeat reap: %v", i, errs[i])
		}
		if !sameMeasurement(ms[i], local[i]) {
			t.Errorf("job %d differs after heartbeat requeue:\nlocal  %+v\nremote %+v", i, local[i], ms[i])
		}
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("hang lock untouched — the fault was never injected: %v", err)
	}
	st := coord.Stats()
	if st.Deaths < 1 {
		t.Errorf("Deaths = %d after a hung worker, want >= 1", st.Deaths)
	}
	if st.Retried < uint64(len(jobs)) {
		t.Errorf("Retried = %d, want >= %d (the whole window requeued)", st.Retried, len(jobs))
	}
	coord.mu.Lock()
	alive := len(coord.procs)
	coord.mu.Unlock()
	if alive != 1 {
		t.Errorf("fleet has %d workers after the reap, want 1 (replacement spawned)", alive)
	}
}

// TestCloseRacesRunJobDuringRespawn: Close landing while the coordinator is
// mid-respawn (worker crashed, replacement starting, job about to requeue)
// must neither hang nor leak — RunJob returns a result or a closed error,
// and Close still reaps everything.
func TestCloseRacesRunJobDuringRespawn(t *testing.T) {
	lock := tempPath(t, "crash-close-race")
	coord := helperCoordinator(t, 1, nil, "MUSSTI_DIST_CRASH_LOCK="+lock)
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
	done := make(chan error, 1)
	go func() {
		_, err := coord.RunJob(context.Background(), eval.Job{Spec: &s})
		done <- err
	}()
	// Let the crash happen and the respawn begin, then slam the door.
	time.Sleep(20 * time.Millisecond)
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, errClosed) && !strings.Contains(err.Error(), "dist:") {
			t.Errorf("RunJob across Close-during-respawn: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunJob hung across Close during a respawn")
	}
}

// TestJobErrorsAreNotRetried: a job that fails for real (unknown app) must
// surface its error without consuming a worker — errors are facts, not
// faults.
func TestJobErrorsAreNotRetried(t *testing.T) {
	coord := helperCoordinator(t, 1, nil)
	s := eval.CompileSpec{App: "NoSuchApp_n5", Compiler: "mussti"}
	_, err := coord.RunJob(context.Background(), eval.Job{Spec: &s})
	if err == nil {
		t.Fatal("unknown app succeeded remotely")
	}
	if !strings.Contains(err.Error(), "unknown family") {
		t.Errorf("error lost its text crossing the wire: %v", err)
	}
	// The worker answered (it did not die), so the fleet must be intact and
	// immediately reusable.
	s2 := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
	if _, err := coord.RunJob(context.Background(), eval.Job{Spec: &s2}); err != nil {
		t.Errorf("fleet unusable after a job error: %v", err)
	}
	if st := coord.Stats(); st.Deaths != 0 || st.Retried != 0 {
		t.Errorf("job error consumed fault machinery: %+v, want zero Deaths/Retried", st)
	}
}

// TestCancelLeavesNoOrphansOrGoroutines is PR 2's cancellation discipline
// extended across process boundaries: cancelling the coordinator's context
// mid-compile must abort promptly, and — after Close — leave neither
// orphaned worker processes nor leaked goroutines behind. (With multiplexed
// dispatch a cancelled job no longer kills its worker: the abandoned result
// is dropped on arrival and the worker lives on for the next job.)
func TestCancelLeavesNoOrphansOrGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	coord := helperCoordinator(t, 2, nil)

	// Snapshot the fleet's PIDs while it is alive.
	pids := coordPIDs(coord)
	if len(pids) != 2 {
		t.Fatalf("expected 2 worker PIDs, got %v", pids)
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := eval.CompileSpec{App: "SQRT_n299", Compiler: "mussti"} // ~300ms compile: plenty of time to cancel mid-job
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.RunJob(ctx, eval.Job{Spec: &s})
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled RunJob returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunJob did not return after cancellation")
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	// Every worker process must be gone (kill(pid, 0) fails for reaped
	// PIDs). A brief retry loop absorbs scheduler lag.
	deadline := time.Now().Add(3 * time.Second)
	for _, pid := range pids {
		for syscall.Kill(pid, 0) == nil {
			if time.Now().After(deadline) {
				t.Fatalf("worker PID %d still alive after Close", pid)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// And the coordinator's goroutines must drain.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after cancelled run + Close", before, runtime.NumGoroutine())
}

// TestFleetLostFailsInsteadOfHanging: when the last worker dies AND its
// replacement cannot spawn (worker binary gone — rebuilt mid-run, deleted,
// fork limits), RunJob must fail with an error rather than block forever on
// an idle pool nothing will ever refill.
func TestFleetLostFailsInsteadOfHanging(t *testing.T) {
	// A stand-in worker that dies on its first job: reads one line, exits.
	script := filepath.Join(t.TempDir(), "dying-worker.sh")
	if err := os.WriteFile(script, []byte("#!/bin/sh\nread line\nexit 3\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(1, []string{script}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// The fleet is up; now make every respawn fail.
	if err := os.Remove(script); err != nil {
		t.Fatal(err)
	}
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
	done := make(chan error, 1)
	go func() {
		_, err := coord.RunJob(context.Background(), eval.Job{Spec: &s})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job succeeded on a dead fleet")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunJob hung after the fleet was lost")
	}
}

// TestCloseIdempotentAndFailsNewJobs: Close twice is fine; RunJob after
// Close reports the closed coordinator instead of hanging.
func TestCloseIdempotentAndFailsNewJobs(t *testing.T) {
	coord := helperCoordinator(t, 1, nil)
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
	if _, err := coord.RunJob(context.Background(), eval.Job{Spec: &s}); !errors.Is(err, errClosed) {
		t.Errorf("RunJob after Close: %v, want errClosed", err)
	}
}

// TestCapacityWidensRunner: SetRemote with a pipelined coordinator must
// widen the runner's pool to workers × window, so every window can fill.
func TestCapacityWidensRunner(t *testing.T) {
	coord := helperCoordinator(t, 2, &CoordinatorOptions{Pipeline: 4})
	if got := coord.Capacity(); got != 8 {
		t.Fatalf("Capacity() = %d, want 8", got)
	}
	r := eval.NewRunner(2)
	r.SetRemote(coord)
	if got := r.Workers(); got != 8 {
		t.Errorf("runner widened to %d workers, want 8", got)
	}
	// A wider local pool is never narrowed.
	r16 := eval.NewRunner(16)
	r16.SetRemote(coord)
	if got := r16.Workers(); got != 16 {
		t.Errorf("runner narrowed to %d workers, want 16", got)
	}
}

// TestPrefixWriterLineBuffering: the stderr tagger must prefix every line,
// hold partial lines until their newline arrives (even across Write
// calls), and flush a held fragment on demand.
func TestPrefixWriterLineBuffering(t *testing.T) {
	var sb strings.Builder
	pw := newPrefixWriter(&sb, "[w7] ")
	fmt.Fprintf(pw, "first line\nsecond ")
	fmt.Fprintf(pw, "continues\nthird has no newline")
	if got, want := sb.String(), "[w7] first line\n[w7] second continues\n"; got != want {
		t.Errorf("before flush:\n got %q\nwant %q", got, want)
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := sb.String(), "[w7] first line\n[w7] second continues\n[w7] third has no newline\n"; got != want {
		t.Errorf("after flush:\n got %q\nwant %q", got, want)
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); strings.HasSuffix(got, "\n\n") {
		t.Errorf("empty flush emitted output: %q", got)
	}
}

// TestWorkerStderrIsPrefixed: fleet stderr arriving at the coordinator's
// writer must carry the per-worker tag.
func TestWorkerStderrIsPrefixed(t *testing.T) {
	script := filepath.Join(t.TempDir(), "noisy-worker.sh")
	if err := os.WriteFile(script, []byte("#!/bin/sh\necho 'hello from the fleet' >&2\nwhile read line; do :; done\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sb strings.Builder
	lockedW := writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(b)
	})
	coord, err := NewCoordinator(2, []string{script}, &CoordinatorOptions{Stderr: lockedW})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := sb.String()
		mu.Unlock()
		if strings.Contains(got, "[w0] hello from the fleet\n") && strings.Contains(got, "[w1] hello from the fleet\n") {
			break
		}
		if time.Now().After(deadline) {
			coord.Close()
			t.Fatalf("worker stderr not prefixed within deadline; got %q", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }

// coordPIDs snapshots the PIDs of the coordinator's live workers.
func coordPIDs(c *Coordinator) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	pids := make([]int, 0, len(c.procs))
	for w := range c.procs {
		if pid := w.h.Pid(); pid > 0 {
			pids = append(pids, pid)
		}
	}
	return pids
}

// tempPath returns a path in a test temp dir that does not exist yet.
func tempPath(t *testing.T, name string) string {
	t.Helper()
	return t.TempDir() + "/" + name
}
