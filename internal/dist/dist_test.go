package dist

import (
	"bufio"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"mussti/internal/arch"
	"mussti/internal/eval"
)

// TestWorkerHelper is not a test: it is the worker process the coordinator
// tests spawn, entered by re-executing the test binary with
// -test.run=^TestWorkerHelper$ and MUSSTI_DIST_HELPER=1. It speaks the
// envelope protocol on stdin/stdout and exits the process directly so the
// testing framework's trailing output never pollutes the protocol stream.
//
// MUSSTI_DIST_CRASH_LOCK, when set, makes exactly one worker of the fleet
// die mid-job: the first process to create the lock file (O_EXCL arbitrates
// across the fleet) reads one job envelope and exits without answering —
// the deterministic stand-in for a worker crashing or its machine dying.
func TestWorkerHelper(t *testing.T) {
	if os.Getenv("MUSSTI_DIST_HELPER") != "1" {
		t.Skip("re-exec helper for the coordinator tests, not a test")
	}
	if lock := os.Getenv("MUSSTI_DIST_CRASH_LOCK"); lock != "" {
		if f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); err == nil {
			f.Close()
			bufio.NewReader(os.Stdin).ReadBytes('\n') // die only after a job arrived
			os.Exit(3)
		}
	}
	r := eval.NewRunner(1)
	if dir := os.Getenv("MUSSTI_DIST_CACHEDIR"); dir != "" {
		dc, err := eval.NewDiskCache(dir)
		if err != nil {
			os.Exit(1)
		}
		r.SetDiskCache(dc)
	}
	if err := ServeWorker(context.Background(), os.Stdin, os.Stdout, r); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// helperCoordinator spawns a coordinator whose workers are re-executions of
// this test binary in worker-helper mode.
func helperCoordinator(t *testing.T, n int, extraEnv ...string) *Coordinator {
	t.Helper()
	argv := []string{os.Args[0], "-test.run=^TestWorkerHelper$"}
	env := append(os.Environ(), "MUSSTI_DIST_HELPER=1")
	env = append(env, extraEnv...)
	c, err := NewCoordinator(n, argv, &CoordinatorOptions{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testJobs is a small mixed workload: two compilers, two grids, six jobs —
// enough to exercise both workers of a two-worker fleet and give retries
// somewhere to land.
func testJobs() []eval.Job {
	g22 := arch.MustNewGrid(2, 2, 12)
	g23 := arch.MustNewGrid(2, 3, 8)
	var jobs []eval.Job
	for _, app := range []string{"GHZ_n32", "BV_n32", "QAOA_n32"} {
		for _, g := range []*arch.Grid{g22, g23} {
			s := eval.CompileSpec{App: app, Compiler: "mussti", Grid: g}
			jobs = append(jobs, eval.Job{Spec: &s})
		}
	}
	return jobs
}

// sameMeasurement compares two measurements modulo CompileTime — the one
// deliberately nondeterministic field (wall clock), which no deterministic
// experiment renders (fig10/fig11 are Serial and never reach a remote).
func sameMeasurement(a, b eval.Measurement) bool {
	a.CompileTime, b.CompileTime = 0, 0
	return a == b
}

// TestCoordinatorMatchesLocalExecution: the same job list run through a
// worker fleet and run in-process must produce identical measurements, in
// identical (paper) order.
func TestCoordinatorMatchesLocalExecution(t *testing.T) {
	jobs := testJobs()
	local, err := (*eval.Runner)(nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	coord := helperCoordinator(t, 2)
	r := eval.NewRunner(2)
	r.SetRemote(coord)
	distributed, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != len(distributed) {
		t.Fatalf("local %d measurements, distributed %d", len(local), len(distributed))
	}
	for i := range local {
		if !sameMeasurement(local[i], distributed[i]) {
			t.Errorf("job %d differs:\nlocal       %+v\ndistributed %+v", i, local[i], distributed[i])
		}
	}
}

// TestWorkerDeathRetry is the fault-injection test: one worker of the fleet
// dies mid-job (after receiving it), and the coordinator must reassign that
// job to another worker, restore fleet capacity, and still hand back every
// measurement in paper order.
func TestWorkerDeathRetry(t *testing.T) {
	lock := tempPath(t, "crash-once")
	jobs := testJobs()
	local, err := (*eval.Runner)(nil).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	coord := helperCoordinator(t, 2, "MUSSTI_DIST_CRASH_LOCK="+lock)
	r := eval.NewRunner(2)
	r.SetRemote(coord)
	distributed, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("run did not survive a worker death: %v", err)
	}
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("crash lock untouched — the fault was never injected: %v", err)
	}
	for i := range local {
		if !sameMeasurement(local[i], distributed[i]) {
			t.Errorf("job %d differs after retry:\nlocal       %+v\ndistributed %+v", i, local[i], distributed[i])
		}
	}
	// The dead worker must have been replaced: the fleet is back to size.
	coord.mu.Lock()
	alive := len(coord.procs)
	coord.mu.Unlock()
	if alive != 2 {
		t.Errorf("fleet has %d workers after a death, want 2 (replacement spawned)", alive)
	}
}

// TestJobErrorsAreNotRetried: a job that fails for real (unknown app) must
// surface its error without consuming a worker — errors are facts, not
// faults.
func TestJobErrorsAreNotRetried(t *testing.T) {
	coord := helperCoordinator(t, 1)
	s := eval.CompileSpec{App: "NoSuchApp_n5", Compiler: "mussti"}
	_, err := coord.RunJob(context.Background(), eval.Job{Spec: &s})
	if err == nil {
		t.Fatal("unknown app succeeded remotely")
	}
	if !strings.Contains(err.Error(), "unknown family") {
		t.Errorf("error lost its text crossing the wire: %v", err)
	}
	// The worker answered (it did not die), so the fleet must be intact and
	// immediately reusable.
	s2 := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
	if _, err := coord.RunJob(context.Background(), eval.Job{Spec: &s2}); err != nil {
		t.Errorf("fleet unusable after a job error: %v", err)
	}
}

// TestCancelLeavesNoOrphansOrGoroutines is PR 2's cancellation discipline
// extended across process boundaries: cancelling the coordinator's context
// mid-compile must abort promptly, kill the in-flight worker process, and
// — after Close — leave neither orphaned worker processes nor leaked
// goroutines behind.
func TestCancelLeavesNoOrphansOrGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	coord := helperCoordinator(t, 2)

	// Snapshot the fleet's PIDs while it is alive.
	pids := coordPIDs(coord)
	if len(pids) != 2 {
		t.Fatalf("expected 2 worker PIDs, got %v", pids)
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := eval.CompileSpec{App: "SQRT_n299", Compiler: "mussti"} // ~300ms compile: plenty of time to cancel mid-job
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.RunJob(ctx, eval.Job{Spec: &s})
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled RunJob returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunJob did not return after cancellation")
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	// Every worker process must be gone (kill(pid, 0) fails for reaped
	// PIDs). A brief retry loop absorbs scheduler lag.
	deadline := time.Now().Add(3 * time.Second)
	for _, pid := range pids {
		for syscall.Kill(pid, 0) == nil {
			if time.Now().After(deadline) {
				t.Fatalf("worker PID %d still alive after Close", pid)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// And the coordinator's goroutines must drain.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after cancelled run + Close", before, runtime.NumGoroutine())
}

// TestFleetLostFailsInsteadOfHanging: when the last worker dies AND its
// replacement cannot spawn (worker binary gone — rebuilt mid-run, deleted,
// fork limits), RunJob must fail with an error rather than block forever on
// an idle pool nothing will ever refill.
func TestFleetLostFailsInsteadOfHanging(t *testing.T) {
	// A stand-in worker that dies on its first job: reads one line, exits.
	script := filepath.Join(t.TempDir(), "dying-worker.sh")
	if err := os.WriteFile(script, []byte("#!/bin/sh\nread line\nexit 3\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(1, []string{script}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// The fleet is up; now make every respawn fail.
	if err := os.Remove(script); err != nil {
		t.Fatal(err)
	}
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
	done := make(chan error, 1)
	go func() {
		_, err := coord.RunJob(context.Background(), eval.Job{Spec: &s})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job succeeded on a dead fleet")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunJob hung after the fleet was lost")
	}
}

// TestCloseIdempotentAndFailsNewJobs: Close twice is fine; RunJob after
// Close reports the closed coordinator instead of hanging.
func TestCloseIdempotentAndFailsNewJobs(t *testing.T) {
	coord := helperCoordinator(t, 1)
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	s := eval.CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}
	if _, err := coord.RunJob(context.Background(), eval.Job{Spec: &s}); !errors.Is(err, errClosed) {
		t.Errorf("RunJob after Close: %v, want errClosed", err)
	}
}

// coordPIDs snapshots the PIDs of the coordinator's live workers.
func coordPIDs(c *Coordinator) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	pids := make([]int, 0, len(c.procs))
	for w := range c.procs {
		if w.cmd.Process != nil {
			pids = append(pids, w.cmd.Process.Pid)
		}
	}
	return pids
}

// tempPath returns a path in a test temp dir that does not exist yet.
func tempPath(t *testing.T, name string) string {
	t.Helper()
	return t.TempDir() + "/" + name
}
