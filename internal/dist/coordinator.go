package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"mussti/internal/eval"
)

// Coordinator owns a fleet of spawned worker processes and dispatches one
// job per idle worker over the stdin/stdout envelope protocol. It
// implements eval.RemoteExecutor, so plugging it into a Runner via
// SetRemote turns the in-process pool into a multi-process one without
// changing any scheduling semantics: the Runner still bounds concurrency,
// memoizes, reports the deterministic first error and reassembles results
// in paper order — the coordinator is pure transport plus fault handling.
//
// Fault model: a worker that dies mid-job (crash, OOM kill, machine loss
// for remote shells) surfaces as a transport failure; the coordinator
// reaps it, spawns a replacement to restore fleet capacity, and retries
// the job on another worker up to MaxAttempts times. Real job errors —
// a measurement that fails identically everywhere — are never retried;
// they travel back inside result envelopes and surface exactly like an
// in-process job failure.
type Coordinator struct {
	argv []string
	opts CoordinatorOptions

	seq  atomic.Uint64
	idle chan *workerProc

	mu     sync.Mutex
	procs  map[*workerProc]struct{}
	closed bool
	// closeCh unblocks acquirers when the coordinator shuts down.
	closeCh chan struct{}
}

// CoordinatorOptions tune fleet behaviour; the zero value is ready to use.
type CoordinatorOptions struct {
	// Stderr receives every worker's stderr (progress ticks, crash
	// reports). Nil means the coordinator process's own stderr.
	Stderr io.Writer
	// Env is the environment for spawned workers; nil inherits the
	// coordinator's.
	Env []string
	// MaxAttempts bounds how many workers one job may be dispatched to
	// before the job is failed (0 means 3). Only worker deaths consume
	// attempts; job errors are definitive on the first worker.
	MaxAttempts int
}

// errClosed reports dispatch on a Close()d coordinator.
var errClosed = errors.New("dist: coordinator closed")

// NewCoordinator spawns n worker processes running argv (argv[0] is the
// binary; a typical fleet runs the host binary itself with a -worker flag)
// and returns the coordinator managing them. On any spawn failure the
// already-started workers are cleaned up before the error returns. Close
// must be called to reap the fleet.
func NewCoordinator(n int, argv []string, opts *CoordinatorOptions) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one worker, got %d", n)
	}
	if len(argv) == 0 || argv[0] == "" {
		return nil, fmt.Errorf("dist: coordinator needs a worker command")
	}
	c := &Coordinator{
		argv:    append([]string(nil), argv...),
		idle:    make(chan *workerProc, n),
		procs:   make(map[*workerProc]struct{}),
		closeCh: make(chan struct{}),
	}
	if opts != nil {
		c.opts = *opts
	}
	if c.opts.MaxAttempts <= 0 {
		c.opts.MaxAttempts = 3
	}
	for i := 0; i < n; i++ {
		w, err := c.spawn()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.idle <- w //mussti:allow=leakcheck idle is buffered to exactly n and this pre-fill is its only writer, so the send never blocks
	}
	return c, nil
}

// Workers reports the fleet size.
func (c *Coordinator) Workers() int { return cap(c.idle) }

// workerProc is one spawned worker and its protocol streams.
type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   *bufio.Reader
	// term makes process termination idempotent: a job-level reap and a
	// coordinator Close may race to shut the same worker down, and
	// exec.Cmd tolerates neither double Wait nor concurrent Wait.
	term sync.Once
}

// terminate shuts the worker process down and reaps it: stdin closes (a
// worker between jobs exits on the EOF), and after the grace period the
// process is killed. Zero grace kills immediately — the path for workers
// whose state is unknown. terminate always returns with the process reaped.
func (w *workerProc) terminate(grace time.Duration) {
	w.term.Do(func() {
		w.stdin.Close()
		done := make(chan struct{})
		go func() {
			w.cmd.Wait()
			close(done)
		}()
		if grace > 0 {
			select {
			case <-done:
				return
			case <-time.After(grace):
			}
		}
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
		<-done
	})
}

// spawn starts one worker process and registers it for cleanup.
func (c *Coordinator) spawn() (*workerProc, error) {
	cmd := exec.Command(c.argv[0], c.argv[1:]...)
	cmd.Env = c.opts.Env
	if c.opts.Stderr != nil {
		cmd.Stderr = c.opts.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: spawning worker: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: spawning worker: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawning worker: %w", err)
	}
	w := &workerProc{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		w.terminate(0)
		return nil, errClosed
	}
	c.procs[w] = struct{}{}
	c.mu.Unlock()
	return w, nil
}

// reap removes a dead (or dying) worker from the fleet and ensures the
// process is gone.
func (c *Coordinator) reap(w *workerProc) {
	c.mu.Lock()
	delete(c.procs, w)
	c.mu.Unlock()
	w.terminate(0)
}

// acquire waits for an idle worker.
func (c *Coordinator) acquire(ctx context.Context) (*workerProc, error) {
	select {
	case w := <-c.idle:
		return w, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.closeCh:
		return nil, errClosed
	}
}

// RunJob implements eval.RemoteExecutor: it encodes the job, dispatches it
// to an idle worker, and decodes the response. A worker death mid-job
// triggers a replacement spawn and a retry on another worker (bounded by
// MaxAttempts); ctx cancellation kills the in-flight worker — aborting its
// compile at the process level — and returns ctx.Err().
func (c *Coordinator) RunJob(ctx context.Context, j eval.Job) (eval.Measurement, error) {
	seq := c.seq.Add(1)
	line, err := EncodeJob(seq, j)
	if err != nil {
		// Unencodable jobs fail like unresolvable ones in-process: a real
		// job error, no dispatch, no retry.
		return eval.Measurement{}, err
	}
	line = append(line, '\n')
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		w, err := c.acquire(ctx)
		if err != nil {
			return eval.Measurement{}, err
		}
		env, transportErr := c.dispatch(ctx, w, line, seq)
		if transportErr == nil {
			c.release(w)
			if env.Err != "" {
				return eval.Measurement{}, errors.New(env.Err)
			}
			return *env.Measurement, nil
		}
		// The worker is unusable — dead, cancelled mid-read, or speaking a
		// broken protocol. Reap it; on cancellation stop there, otherwise
		// restore fleet capacity and try the job elsewhere.
		c.reap(w)
		if ctx.Err() != nil {
			return eval.Measurement{}, ctx.Err()
		}
		lastErr = transportErr
		if nw, err := c.spawn(); err == nil {
			c.release(nw)
		} else if errors.Is(err, errClosed) {
			return eval.Measurement{}, errClosed
		} else {
			lastErr = fmt.Errorf("%w (and respawning a worker failed: %v)", transportErr, err)
			// If that failed respawn left the fleet empty, no acquire can
			// ever succeed again: shut the coordinator down — waking every
			// other blocked dispatcher with errClosed — instead of letting
			// the retry loop hang on an idle channel nothing will refill.
			c.mu.Lock()
			alive := len(c.procs)
			c.mu.Unlock()
			if alive == 0 {
				c.Close()
				return eval.Measurement{}, fmt.Errorf("dist: worker fleet lost: %w", lastErr)
			}
		}
	}
	return eval.Measurement{}, fmt.Errorf("dist: job failed on %d workers: %w", c.opts.MaxAttempts, lastErr)
}

// release returns a healthy worker to the idle pool (or kills it if the
// coordinator closed while the worker was busy).
func (c *Coordinator) release(w *workerProc) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		c.reap(w)
		return
	}
	select {
	case c.idle <- w:
	default:
		// Cannot happen — the pool is sized to the fleet — but a full
		// channel must not deadlock the caller.
		c.reap(w)
	}
}

// dispatch sends one encoded job to w and reads its response. Any returned
// error is a transport failure: the job's fate on this worker is unknown
// and the worker must be discarded.
func (c *Coordinator) dispatch(ctx context.Context, w *workerProc, line []byte, seq uint64) (ResultEnvelope, error) {
	if _, err := w.stdin.Write(line); err != nil {
		return ResultEnvelope{}, fmt.Errorf("dist: writing job to worker: %w", err)
	}
	type readResult struct {
		line []byte
		err  error
	}
	ch := make(chan readResult, 1)
	go func() {
		resp, err := w.out.ReadBytes('\n')
		ch <- readResult{resp, err}
	}()
	var resp readResult
	select {
	case resp = <-ch:
	case <-ctx.Done():
		// Abort the in-flight compile at the process level; the pending
		// read then fails and the goroutine exits through the buffered
		// channel. The caller reaps the worker.
		return ResultEnvelope{}, ctx.Err()
	case <-c.closeCh:
		return ResultEnvelope{}, errClosed
	}
	if resp.err != nil {
		return ResultEnvelope{}, fmt.Errorf("dist: worker died mid-job: %w", resp.err)
	}
	env, err := DecodeResult(resp.line)
	if err != nil {
		return ResultEnvelope{}, err
	}
	if env.Seq != seq {
		return ResultEnvelope{}, fmt.Errorf("dist: worker answered job %d while %d was outstanding", env.Seq, seq)
	}
	return env, nil
}

// closeGrace is how long Close waits for workers to exit on stdin EOF
// before killing them.
const closeGrace = 3 * time.Second

// Close shuts the fleet down: every worker's stdin closes (idle workers
// exit immediately on EOF), stragglers are killed after a short grace
// period, and all processes are reaped before Close returns — no orphans
// survive it. Close is idempotent and safe to call concurrently with
// RunJob, which then fails with a closed-coordinator error.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closeCh)
	procs := make([]*workerProc, 0, len(c.procs))
	for w := range c.procs { //mussti:allow=determinism shutdown fan-out; kill order is irrelevant
		procs = append(procs, w)
	}
	c.procs = make(map[*workerProc]struct{})
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range procs {
		wg.Add(1)
		go func(w *workerProc) {
			defer wg.Done()
			w.terminate(closeGrace)
		}(w)
	}
	wg.Wait()
	// Drain the idle pool; its workers were reaped above.
	for {
		select {
		case <-c.idle:
		default:
			return nil
		}
	}
}
