package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mussti/internal/eval"
)

// Coordinator owns a fleet of spawned worker processes and dispatches jobs
// to them over the stdin/stdout envelope protocol. It implements
// eval.RemoteExecutor (and eval.PipelinedExecutor), so plugging it into a
// Runner via SetRemote turns the in-process pool into a multi-process one
// without changing any scheduling semantics: the Runner still bounds
// concurrency, memoizes, reports the deterministic first error and
// reassembles results in paper order — the coordinator is pure transport
// plus fault handling.
//
// Dispatch is pipelined and multiplexed: each worker has a sender/receiver
// goroutine pair that keeps up to Pipeline jobs in flight at once, matching
// results to outstanding jobs by seq (results may complete out of order on
// the wire; ordering is the Runner's job). Jobs arriving while a worker has
// window to spare coalesce into one batch frame, which the worker compiles
// through the shared-prep CompileBatch path. Post-PR 4 most compiles are
// sub-millisecond, so without the window every job would pay a full process
// round-trip of protocol latency; with it the pipe and the worker stay busy
// simultaneously.
//
// Liveness: the sender pings each worker every heartbeat interval, and the
// worker answers from its read loop even mid-compile. A worker with jobs in
// flight that stays silent for HeartbeatMisses consecutive intervals is
// declared dead. A worker that is alive but completes nothing for a full
// interval has its window shrunk to 1 (backpressure: new jobs route to
// faster workers) until it completes something.
//
// Fault model: a worker that dies mid-job (crash, OOM kill, machine loss
// for remote launchers, heartbeat timeout) is reaped, a replacement is
// spawned to restore fleet capacity, and every job in its window is
// requeued to the surviving fleet, each consuming one of its MaxAttempts.
// Real job errors — a measurement that fails identically everywhere — are
// never retried; they travel back inside result envelopes and surface
// exactly like an in-process job failure.
type Coordinator struct {
	n    int
	argv []string
	opts CoordinatorOptions

	// seq numbers every dispatched frame; fresh on each dispatch (retries
	// included) so a late answer to a previous attempt can never be confused
	// with the current one.
	seq atomic.Uint64
	// submit is the unbuffered dispatch queue: RunJob blocking on the send
	// is the global backpressure when every worker's window is full.
	submit chan *call

	// ctx is the coordinator's lifecycle: cancelled by Close or by a
	// fleet-lost failure, it unblocks every waiter and stops every loop.
	ctx    context.Context
	cancel context.CancelFunc

	stats coordStats

	mu     sync.Mutex
	procs  map[*workerProc]struct{}
	nextID int
	closed bool
	// failErr, when non-nil, is why the coordinator shut itself down
	// (fleet lost); RunJob reports it instead of the generic errClosed.
	failErr error
	// wg joins every per-worker goroutine pair; Close waits for it.
	wg sync.WaitGroup
}

// CoordinatorOptions tune fleet behaviour; the zero value is ready to use.
type CoordinatorOptions struct {
	// Stderr receives every worker's stderr (progress ticks, crash
	// reports), each line prefixed with a stable worker id ("[w3] ...").
	// Nil means the coordinator process's own stderr.
	Stderr io.Writer
	// Env is the environment for spawned workers; nil inherits the
	// coordinator's.
	Env []string
	// MaxAttempts bounds how many workers one job may be dispatched to
	// before the job is failed (0 means 3). Only worker deaths consume
	// attempts; job errors are definitive on the first worker.
	MaxAttempts int
	// Pipeline is how many jobs the coordinator keeps in flight per worker
	// (0 means 4). 1 restores lockstep dispatch: one job on the wire per
	// worker at a time. Output is byte-identical at any setting.
	Pipeline int
	// DisableCoalescing ships every job as its own frame instead of
	// merging window-mates into batch frames. Batching never changes
	// output, only the work per wire round-trip; disable it when the
	// workers run with batch compilation off (-batch=false).
	DisableCoalescing bool
	// Launcher starts worker processes; nil means LocalLauncher (direct
	// child processes). See CommandLauncher for ssh-style fleets.
	Launcher WorkerLauncher
	// Heartbeat is the liveness probe interval (0 means 500ms).
	Heartbeat time.Duration
	// HeartbeatMisses is how many consecutive silent intervals a worker
	// with jobs in flight may accumulate before it is declared dead and
	// its window requeued (0 means 6 — three seconds at the default
	// interval, far above any pipe round-trip and far below a hang).
	HeartbeatMisses int
}

const (
	defaultMaxAttempts     = 3
	defaultPipeline        = 4
	defaultHeartbeat       = 500 * time.Millisecond
	defaultHeartbeatMisses = 6
)

// errClosed reports dispatch on a Close()d coordinator.
var errClosed = errors.New("dist: coordinator closed")

// call is one RunJob moving through the coordinator: the spec validated
// once at submission, the waiter's context, and a buffered outcome channel.
// attempts is touched only by the goroutine currently owning the call (one
// sender at a time, then at most one requeue), never concurrently.
type call struct {
	ctx      context.Context
	spec     WireSpec
	attempts int
	done     chan outcome
}

type outcome struct {
	m   eval.Measurement
	err error
}

// deliver hands the waiter its outcome; a second delivery (or one to a
// waiter that already gave up) is dropped by the buffered channel.
func (cl *call) deliver(m eval.Measurement, err error) {
	select {
	case cl.done <- outcome{m, err}:
	default:
	}
}

// coordStats are the coordinator's cumulative dispatch counters.
type coordStats struct {
	dispatched atomic.Uint64
	batched    atomic.Uint64
	batches    atomic.Uint64
	retried    atomic.Uint64
	deaths     atomic.Uint64
}

// CoordinatorStats is a snapshot of fleet dispatch counters, for
// diagnostics and fault-path tests.
type CoordinatorStats struct {
	// Dispatched counts jobs written to workers, retries included.
	Dispatched uint64
	// Batched counts jobs that shared a coalesced batch frame with at
	// least one other job; Batches counts the frames.
	Batched uint64
	Batches uint64
	// Retried counts jobs requeued after their worker died.
	Retried uint64
	// Deaths counts workers reaped for cause: crash, protocol violation,
	// heartbeat timeout. Workers reaped by Close are not deaths.
	Deaths uint64
}

// Stats returns a snapshot of the coordinator's dispatch counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Dispatched: c.stats.dispatched.Load(),
		Batched:    c.stats.batched.Load(),
		Batches:    c.stats.batches.Load(),
		Retried:    c.stats.retried.Load(),
		Deaths:     c.stats.deaths.Load(),
	}
}

// NewCoordinator spawns n worker processes running argv (argv[0] is the
// binary; a typical fleet runs the host binary itself with a -worker flag)
// and returns the coordinator managing them. On any spawn failure the
// already-started workers are cleaned up before the error returns. Close
// must be called to reap the fleet.
func NewCoordinator(n int, argv []string, opts *CoordinatorOptions) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one worker, got %d", n)
	}
	if len(argv) == 0 || argv[0] == "" {
		return nil, fmt.Errorf("dist: coordinator needs a worker command")
	}
	c := &Coordinator{
		n:      n,
		argv:   append([]string(nil), argv...),
		submit: make(chan *call),
		procs:  make(map[*workerProc]struct{}),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	if opts != nil {
		c.opts = *opts
	}
	if c.opts.MaxAttempts <= 0 {
		c.opts.MaxAttempts = defaultMaxAttempts
	}
	if c.opts.Pipeline <= 0 {
		c.opts.Pipeline = defaultPipeline
	}
	if c.opts.Launcher == nil {
		c.opts.Launcher = LocalLauncher{}
	}
	if c.opts.Heartbeat <= 0 {
		c.opts.Heartbeat = defaultHeartbeat
	}
	if c.opts.HeartbeatMisses <= 0 {
		c.opts.HeartbeatMisses = defaultHeartbeatMisses
	}
	for i := 0; i < n; i++ {
		w, err := c.spawn()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.start(w)
	}
	return c, nil
}

// Workers reports the fleet size.
func (c *Coordinator) Workers() int { return c.n }

// Capacity reports how many jobs the fleet absorbs concurrently: workers ×
// pipeline window. It implements eval.PipelinedExecutor, so SetRemote
// widens the runner's pool to keep every window full.
func (c *Coordinator) Capacity() int { return c.n * c.opts.Pipeline }

// workerProc is one spawned worker: its protocol streams, its window of
// outstanding jobs, and the receiver→sender signalling.
type workerProc struct {
	id    int
	h     WorkerHandle
	stdin io.WriteCloser
	out   *bufio.Reader
	errw  *prefixWriter

	mu          sync.Mutex
	outstanding map[uint64]*call

	// freed wakes the sender when a window slot opens (buffered 1; a
	// coalesced wake covers any number of completions).
	freed chan struct{}
	// heard is set by the receiver on every frame and swapped false at
	// each heartbeat tick: false across a whole interval with jobs in
	// flight means the worker is silent. completed works the same way for
	// job completions and drives the slow-worker window shrink.
	heard     atomic.Bool
	completed atomic.Bool

	// failOnce/failErr/failed publish the first fatal error: transport
	// failure, protocol violation, or heartbeat timeout.
	failOnce sync.Once
	failErr  error
	failed   chan struct{}

	// term makes process termination idempotent: a death-path reap and a
	// coordinator Close may race to shut the same worker down, and the
	// handle tolerates neither double Wait nor concurrent Wait.
	term sync.Once
}

// fail records the worker's first fatal error and signals both loops.
func (w *workerProc) fail(err error) {
	w.failOnce.Do(func() {
		w.failErr = err
		close(w.failed)
	})
}

// inflight reports how many jobs the worker currently has in its window.
func (w *workerProc) inflight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.outstanding)
}

// track registers a dispatched call under its wire seq.
func (w *workerProc) track(seq uint64, cl *call) {
	w.mu.Lock()
	w.outstanding[seq] = cl
	w.mu.Unlock()
}

// take claims the call answering to seq, removing it from the window.
func (w *workerProc) take(seq uint64) (*call, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cl, ok := w.outstanding[seq]
	if ok {
		delete(w.outstanding, seq)
	}
	return cl, ok
}

// drain empties the window, returning its calls in seq (dispatch) order so
// requeueing is deterministic.
func (w *workerProc) drain() []*call {
	w.mu.Lock()
	defer w.mu.Unlock()
	seqs := make([]uint64, 0, len(w.outstanding))
	for seq := range w.outstanding { //mussti:allow=determinism requeue order is fixed by the seq sort below, not by map order
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	calls := make([]*call, len(seqs))
	for i, seq := range seqs {
		calls[i] = w.outstanding[seq]
	}
	w.outstanding = make(map[uint64]*call)
	return calls
}

// terminate shuts the worker process down and reaps it: stdin closes (a
// worker between jobs exits on the EOF), and after the grace period the
// process is killed. Zero grace kills immediately — the path for workers
// whose state is unknown. terminate always returns with the process reaped
// and any buffered stderr flushed.
func (w *workerProc) terminate(grace time.Duration) {
	w.term.Do(func() {
		w.stdin.Close()
		done := make(chan struct{})
		go func() {
			w.h.Wait()
			close(done)
		}()
		if grace > 0 {
			select {
			case <-done:
				w.errw.Flush()
				return
			case <-time.After(grace):
			}
		}
		w.h.Kill()
		<-done
		w.errw.Flush()
	})
}

// spawn launches one worker process and registers it for cleanup.
func (c *Coordinator) spawn() (*workerProc, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClosed
	}
	id := c.nextID
	c.nextID++
	c.mu.Unlock()

	base := c.opts.Stderr
	if base == nil {
		base = os.Stderr
	}
	errw := newPrefixWriter(base, fmt.Sprintf("[w%d] ", id))
	h, err := c.opts.Launcher.Launch(c.argv, c.opts.Env, errw)
	if err != nil {
		return nil, fmt.Errorf("dist: spawning worker: %w", err)
	}
	w := &workerProc{
		id:          id,
		h:           h,
		stdin:       h.Stdin(),
		out:         bufio.NewReader(h.Stdout()),
		errw:        errw,
		outstanding: make(map[uint64]*call),
		freed:       make(chan struct{}, 1),
		failed:      make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		w.terminate(0)
		return nil, errClosed
	}
	c.procs[w] = struct{}{}
	c.mu.Unlock()
	return w, nil
}

// start runs the worker's sender/receiver pair under the coordinator's
// WaitGroup.
func (c *Coordinator) start(w *workerProc) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.runWorker(w)
	}()
}

// reap removes a dead (or dying) worker from the fleet and ensures the
// process is gone.
func (c *Coordinator) reap(w *workerProc) {
	c.mu.Lock()
	delete(c.procs, w)
	c.mu.Unlock()
	w.terminate(0)
}

// runWorker is one worker's lifetime: a receiver goroutine owning the read
// side for as long as the process lives, the send loop inline, and — on
// worker death — the reap/respawn/requeue sequence.
func (c *Coordinator) runWorker(w *workerProc) {
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		c.receive(w)
	}()
	c.sendLoop(w)
	if c.ctx.Err() != nil {
		// Coordinator shutdown: Close (or the fleet-lost path) terminates
		// and reaps every registered worker; just join the receiver.
		<-recvDone
		return
	}
	// Worker death. Kill the process first so the receiver unblocks, join
	// it, then reap — after this no result for the window can arrive, so
	// requeueing cannot double-execute a job.
	w.terminate(0)
	<-recvDone
	c.reap(w)
	c.stats.deaths.Add(1)
	cause := w.failErr
	if cause == nil {
		cause = errors.New("dist: worker failed")
	}
	fmt.Fprintf(w.errw, "dist: worker died: %v\n", cause)
	// Restore fleet capacity before requeueing, so the requeued jobs have a
	// sender to land on even in a single-worker fleet.
	if nw, err := c.spawn(); err == nil {
		c.start(nw)
	} else if !errors.Is(err, errClosed) {
		c.mu.Lock()
		alive := len(c.procs)
		c.mu.Unlock()
		if alive == 0 {
			// The fleet is gone and cannot be rebuilt: shut down, waking
			// every submitted and waiting RunJob with the cause.
			c.failFleet(fmt.Errorf("dist: worker fleet lost: %w (and respawning a worker failed: %v)", cause, err))
		}
	}
	c.requeue(w, cause)
}

// requeue puts every job from a dead worker's window back on the dispatch
// queue (in dispatch order), failing jobs that exhausted MaxAttempts.
func (c *Coordinator) requeue(w *workerProc, cause error) {
	for _, cl := range w.drain() {
		if cl.attempts >= c.opts.MaxAttempts {
			cl.deliver(eval.Measurement{}, fmt.Errorf("dist: job failed on %d workers: %w", cl.attempts, cause))
			continue
		}
		select {
		case c.submit <- cl:
			c.stats.retried.Add(1)
		case <-cl.ctx.Done():
			cl.deliver(eval.Measurement{}, cl.ctx.Err())
		case <-c.ctx.Done():
			cl.deliver(eval.Measurement{}, c.closedErr())
		}
	}
}

// sendLoop is the worker's dispatch side: it pulls calls from the shared
// submit queue while the window has room, coalesces queued-up calls into
// batch frames, and runs the heartbeat clock. It returns when the worker
// fails or the coordinator shuts down.
func (c *Coordinator) sendLoop(w *workerProc) {
	hb := time.NewTicker(c.opts.Heartbeat)
	defer hb.Stop()
	silent, stale := 0, 0
	for {
		window := c.opts.Pipeline
		if stale > 0 {
			// Backpressure: the worker went a full interval without
			// completing anything. Shrink its window to 1 so new jobs
			// route to faster workers until it proves alive again.
			window = 1
		}
		free := window - w.inflight()
		if free <= 0 {
			select {
			case <-w.freed:
			case <-hb.C:
				if !c.heartbeat(w, &silent, &stale) {
					return
				}
			case <-w.failed:
				return
			case <-c.ctx.Done():
				return
			}
			continue
		}
		select {
		case cl := <-c.submit:
			if !c.dispatch(w, cl, free) {
				return
			}
		case <-w.freed:
			// Recompute the window; a completion may also clear the
			// stale-worker shrink.
		case <-hb.C:
			if !c.heartbeat(w, &silent, &stale) {
				return
			}
		case <-w.failed:
			return
		case <-c.ctx.Done():
			return
		}
	}
}

// heartbeat runs one liveness tick: account the interval just ended, then
// ping. Returns false when the worker is declared dead.
func (c *Coordinator) heartbeat(w *workerProc, silent, stale *int) bool {
	inflight := w.inflight()
	if inflight > 0 && !w.heard.Swap(false) {
		*silent++
		if *silent >= c.opts.HeartbeatMisses {
			w.fail(fmt.Errorf("dist: worker %d silent for %d heartbeat intervals with %d jobs in flight", w.id, *silent, inflight))
			return false
		}
	} else {
		*silent = 0
	}
	if inflight > 0 && !w.completed.Swap(false) {
		*stale++
	} else {
		*stale = 0
	}
	line, err := EncodePing(c.seq.Add(1))
	if err == nil {
		_, err = w.stdin.Write(append(line, '\n'))
	}
	if err != nil {
		w.fail(fmt.Errorf("dist: pinging worker %d: %w", w.id, err))
		return false
	}
	return true
}

// dispatch sends the call (plus up to free-1 more already queued, coalesced
// into one batch frame) to the worker. Calls are tracked in the window
// before the write, so a write failure leaves them requeueable. Returns
// false when the worker is unusable.
func (c *Coordinator) dispatch(w *workerProc, first *call, free int) bool {
	calls := []*call{first}
	if !c.opts.DisableCoalescing {
	gather:
		for len(calls) < free {
			select {
			case cl := <-c.submit:
				calls = append(calls, cl)
			default:
				break gather
			}
		}
	}
	// Skip calls whose waiter already gave up; their RunJob has returned
	// and dispatching them would burn window on dead work.
	live := calls[:0]
	for _, cl := range calls {
		if err := cl.ctx.Err(); err != nil {
			cl.deliver(eval.Measurement{}, err)
			continue
		}
		live = append(live, cl)
	}
	if len(live) == 0 {
		return true
	}
	var line []byte
	var err error
	if len(live) == 1 {
		seq := c.seq.Add(1)
		live[0].attempts++
		w.track(seq, live[0])
		line, err = EncodeJobSpec(seq, live[0].spec)
	} else {
		jobs := make([]WireJob, len(live))
		for i, cl := range live {
			seq := c.seq.Add(1)
			cl.attempts++
			w.track(seq, cl)
			jobs[i] = WireJob{Seq: seq, Spec: cl.spec}
		}
		line, err = EncodeBatch(jobs)
		c.stats.batched.Add(uint64(len(live)))
		c.stats.batches.Add(1)
	}
	if err != nil {
		// Specs were trial-marshalled at submission, so this is effectively
		// unreachable; treat it as fatal for the worker's window rather
		// than guess which member poisoned the frame.
		w.fail(fmt.Errorf("dist: encoding dispatch for worker %d: %w", w.id, err))
		return false
	}
	if _, err := w.stdin.Write(append(line, '\n')); err != nil {
		w.fail(fmt.Errorf("dist: writing to worker %d: %w", w.id, err))
		return false
	}
	c.stats.dispatched.Add(uint64(len(live)))
	return true
}

// receive owns the worker's read side for the process's lifetime (one
// goroutine per worker, not per dispatch), matching every result frame to
// its outstanding call by seq and answering the sender's liveness
// accounting. It returns — after failing the worker — on read error,
// protocol violation, or an answer to a seq that is not outstanding.
func (c *Coordinator) receive(w *workerProc) {
	for {
		line, err := w.out.ReadBytes('\n')
		if err != nil {
			w.fail(fmt.Errorf("dist: worker %d died: %w", w.id, err))
			return
		}
		kind, err := SniffFrame(line)
		if err != nil {
			w.fail(fmt.Errorf("dist: worker %d: %w", w.id, err))
			return
		}
		w.heard.Store(true)
		switch kind {
		case KindPong:
			if _, _, err := DecodeHeartbeat(line); err != nil {
				w.fail(fmt.Errorf("dist: worker %d: %w", w.id, err))
				return
			}
		case KindResult:
			env, err := DecodeResult(line)
			if err != nil {
				w.fail(fmt.Errorf("dist: worker %d: %w", w.id, err))
				return
			}
			if !c.settle(w, env.Seq, env.Measurement, env.Err) {
				return
			}
		case KindResults:
			results, err := DecodeBatchResult(line)
			if err != nil {
				w.fail(fmt.Errorf("dist: worker %d: %w", w.id, err))
				return
			}
			for _, r := range results {
				if !c.settle(w, r.Seq, r.Measurement, r.Err) {
					return
				}
			}
		default:
			w.fail(fmt.Errorf("dist: worker %d sent unexpected %q frame", w.id, kind))
			return
		}
	}
}

// settle delivers one result to its outstanding call and frees its window
// slot. An answer to a seq that is not outstanding — a stale seq from a
// previous window, a duplicate, an invention — is a protocol violation:
// the worker's stream can no longer be trusted, so it is failed (false).
func (c *Coordinator) settle(w *workerProc, seq uint64, m *eval.Measurement, errText string) bool {
	cl, ok := w.take(seq)
	if !ok {
		w.fail(fmt.Errorf("dist: worker %d answered seq %d, which is not outstanding", w.id, seq))
		return false
	}
	w.completed.Store(true)
	if errText != "" {
		cl.deliver(eval.Measurement{}, errors.New(errText))
	} else {
		cl.deliver(*m, nil)
	}
	select {
	case w.freed <- struct{}{}:
	default:
	}
	return true
}

// RunJob implements eval.RemoteExecutor: the job is validated once, queued,
// dispatched into some worker's window, and its result awaited. Worker
// deaths retry the job elsewhere (bounded by MaxAttempts) without RunJob
// noticing; ctx cancellation abandons the job — the result, if the worker
// still produces one, is dropped on arrival — and returns ctx.Err().
func (c *Coordinator) RunJob(ctx context.Context, j eval.Job) (eval.Measurement, error) {
	spec, err := WireSpecOf(j)
	if err != nil {
		// Unencodable jobs fail like unresolvable ones in-process: a real
		// job error, no dispatch, no retry.
		return eval.Measurement{}, err
	}
	cl := &call{ctx: ctx, spec: spec, done: make(chan outcome, 1)}
	select {
	case c.submit <- cl:
	case <-ctx.Done():
		return eval.Measurement{}, ctx.Err()
	case <-c.ctx.Done():
		return eval.Measurement{}, c.closedErr()
	}
	select {
	case out := <-cl.done:
		return out.m, out.err
	case <-ctx.Done():
		return eval.Measurement{}, ctx.Err()
	case <-c.ctx.Done():
		// Prefer a result that raced the shutdown.
		select {
		case out := <-cl.done:
			return out.m, out.err
		default:
		}
		return eval.Measurement{}, c.closedErr()
	}
}

// closedErr is what RunJob reports on a shut-down coordinator: the
// fleet-lost cause when the shutdown was involuntary, errClosed after a
// plain Close.
func (c *Coordinator) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failErr != nil {
		return c.failErr
	}
	return errClosed
}

// shutdown marks the coordinator closed (recording cause, if any, for
// closedErr), cancels the lifecycle context, and hands back the workers to
// terminate. Idempotent: only the first call gets the worker list.
func (c *Coordinator) shutdown(cause error) []*workerProc {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.failErr = cause
	c.cancel()
	procs := make([]*workerProc, 0, len(c.procs))
	for w := range c.procs { //mussti:allow=determinism shutdown fan-out; kill order is irrelevant
		procs = append(procs, w)
	}
	c.procs = make(map[*workerProc]struct{})
	return procs
}

// failFleet shuts the coordinator down because the fleet is unrecoverable;
// workers are killed without grace.
func (c *Coordinator) failFleet(cause error) {
	for _, w := range c.shutdown(cause) {
		w.terminate(0)
	}
}

// closeGrace is how long Close waits for workers to exit on stdin EOF
// before killing them.
const closeGrace = 3 * time.Second

// Close shuts the fleet down: every worker's stdin closes (idle workers
// exit immediately on EOF), stragglers are killed after a short grace
// period, and all processes are reaped and all coordinator goroutines
// joined before Close returns — no orphans survive it. Close is idempotent
// and safe to call concurrently with RunJob, which then fails with a
// closed-coordinator error.
func (c *Coordinator) Close() error {
	procs := c.shutdown(nil)
	var wg sync.WaitGroup
	for _, w := range procs {
		wg.Add(1)
		go func(w *workerProc) {
			defer wg.Done()
			w.terminate(closeGrace)
		}(w)
	}
	wg.Wait()
	c.wg.Wait()
	return nil
}
