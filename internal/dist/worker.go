package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"

	"mussti/internal/eval"
)

// maxEnvelopeBytes bounds one protocol line. Envelopes are small (a spec is
// a few hundred bytes; a coalesced batch a few kilobytes), so the bound only
// guards against a corrupted stream convincing the scanner to buffer
// without limit.
const maxEnvelopeBytes = 8 << 20

// lineWriter serializes frame writes to the protocol stream: the read loop
// answers pings while the main loop writes results, and interleaving two
// half-written frames would corrupt the wire.
type lineWriter struct {
	mu  sync.Mutex
	out *bufio.Writer
}

func (lw *lineWriter) writeLine(line []byte) error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if _, err := lw.out.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("dist: worker writing frame: %w", err)
	}
	if err := lw.out.Flush(); err != nil {
		return fmt.Errorf("dist: worker writing frame: %w", err)
	}
	return nil
}

// frame is one decoded unit of work handed from the read loop to the
// executor: a single job or a coalesced batch.
type frame struct {
	seqs  []uint64
	jobs  []eval.Job
	batch bool
}

// ServeWorker runs the worker side of the protocol: it reads frames line by
// line from r, executes job frames through the runner — the exact path the
// in-process pool drives, so context cancellation, observer ticks and
// memoization (including a shared on-disk cache attached to the runner) all
// apply — and writes result frames to w. Real job failures travel back
// inside result envelopes; ServeWorker itself returns only on r's EOF
// (nil), ctx cancellation, or a broken protocol stream (non-nil error — the
// coordinator treats the process death as a transport failure and reassigns
// the window).
//
// The read side runs in its own goroutine so heartbeat pings are answered
// immediately, even mid-compile — that is what lets the coordinator tell a
// slow compile (pongs flow, results don't) from a hung or dead worker
// (silence). The frame channel is buffered well past any sane pipeline
// window so a queued job never blocks the reader off stdin — otherwise a
// compile outlasting the heartbeat deadline would strand unread pings in
// the pipe behind the next job frame and get a live worker reaped as
// silent. Jobs still execute strictly in arrival order, one frame at a
// time, and a batch frame compiles through the Runner's shared-prep batch
// path, so the protocol needs no interleaving rules.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, runner *eval.Runner) error {
	lw := &lineWriter{out: bufio.NewWriter(w)}
	frames := make(chan frame, 256)
	readErr := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		defer close(frames)
		readErr <- readFrames(ctx, r, lw, frames, stop)
	}()
	for {
		select {
		case f, ok := <-frames:
			if !ok {
				return <-readErr
			}
			if err := serveFrame(ctx, lw, runner, f); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// readFrames owns the read side: it decodes every incoming line, answers
// pings inline, and hands job/batch frames to the executor. It returns on
// EOF (nil), a broken stream, or when the executor stops listening.
func readFrames(ctx context.Context, r io.Reader, lw *lineWriter, frames chan<- frame, stop <-chan struct{}) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxEnvelopeBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		kind, err := SniffFrame(line)
		if err != nil {
			// The stream itself is broken (a half-written line from a dying
			// coordinator, version skew): abort rather than guess at what
			// the peer meant.
			return err
		}
		var f frame
		switch kind {
		case KindPing:
			_, seq, err := DecodeHeartbeat(line)
			if err != nil {
				return err
			}
			pong, err := EncodePong(seq)
			if err != nil {
				return err
			}
			if err := lw.writeLine(pong); err != nil {
				return err
			}
			continue
		case KindJob:
			seq, job, err := DecodeJob(line)
			if err != nil {
				return err
			}
			f = frame{seqs: []uint64{seq}, jobs: []eval.Job{job}}
		case KindBatch:
			seqs, jobs, err := DecodeBatch(line)
			if err != nil {
				return err
			}
			f = frame{seqs: seqs, jobs: jobs, batch: true}
		default:
			return fmt.Errorf("dist: worker received unexpected %q frame", kind)
		}
		select {
		case frames <- f:
		case <-stop:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dist: worker reading jobs: %w", err)
	}
	return nil
}

// serveFrame executes one frame and writes its result frame. Single jobs
// answer with a result envelope, batches with one results envelope carrying
// every member — the member order matches the request, but the coordinator
// matches by seq so it would not need to care.
func serveFrame(ctx context.Context, lw *lineWriter, runner *eval.Runner, f frame) error {
	if !f.batch {
		m, jobErr := runner.RunJob(ctx, f.jobs[0])
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := EncodeResult(f.seqs[0], m, jobErr)
		if err != nil {
			return err
		}
		return lw.writeLine(resp)
	}
	ms, errs := runner.RunJobs(ctx, f.jobs)
	if err := ctx.Err(); err != nil {
		return err
	}
	results := make([]WireResult, len(f.seqs))
	for i, seq := range f.seqs {
		results[i] = NewWireResult(seq, ms[i], errs[i])
	}
	resp, err := EncodeBatchResult(results)
	if err != nil {
		return err
	}
	return lw.writeLine(resp)
}
