package dist

import (
	"bufio"
	"context"
	"fmt"
	"io"

	"mussti/internal/eval"
)

// maxEnvelopeBytes bounds one protocol line. Envelopes are small (a spec is
// a few hundred bytes), so the bound only guards against a corrupted stream
// convincing the scanner to buffer without limit.
const maxEnvelopeBytes = 8 << 20

// ServeWorker runs the worker side of the protocol: it reads job envelopes
// line by line from r, executes each through runner.RunJob — the exact path
// the in-process pool drives, so context cancellation, observer ticks and
// memoization (including a shared on-disk cache attached to the runner) all
// apply — and writes one result envelope per job to w. Real job failures
// travel back inside result envelopes; ServeWorker itself returns only on
// r's EOF (nil), ctx cancellation, or a broken protocol stream (non-nil
// error — the coordinator treats the process death as a transport failure
// and reassigns the job).
//
// Jobs execute strictly in arrival order, one at a time: the coordinator
// keeps at most one job outstanding per worker and runs N workers for
// parallelism, which keeps the protocol free of interleaving rules.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, runner *eval.Runner) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxEnvelopeBytes)
	out := bufio.NewWriter(w)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		seq, job, err := DecodeJob(line)
		if err != nil {
			// The stream itself is broken (a half-written line from a dying
			// coordinator, version skew): abort rather than guess at what
			// the peer meant.
			return err
		}
		m, jobErr := runner.RunJob(ctx, job)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		resp, err := EncodeResult(seq, m, jobErr)
		if err != nil {
			return err
		}
		resp = append(resp, '\n')
		if _, err := out.Write(resp); err != nil {
			return fmt.Errorf("dist: worker writing result: %w", err)
		}
		if err := out.Flush(); err != nil {
			return fmt.Errorf("dist: worker writing result: %w", err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dist: worker reading jobs: %w", err)
	}
	return nil
}
