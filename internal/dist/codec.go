// Package dist fans experiment jobs out across OS processes and machines.
//
// The experiment harness (internal/eval) already decomposes every table and
// figure into independent, self-contained measurement jobs and reassembles
// results in paper order; this package adds the two pieces a fleet needs on
// top of that: a wire codec that moves jobs and measurements between
// processes losslessly, and a coordinator/worker pair that speaks it.
//
// The protocol is deliberately minimal — newline-delimited JSON envelopes
// over a worker process's stdin/stdout:
//
//	coordinator → worker:  {"v":1,"seq":N,"spec":{...}}\n
//	worker → coordinator:  {"v":1,"seq":N,"measurement":{...}}\n
//	                       {"v":1,"seq":N,"err":"..."}\n
//
// Each worker executes one job at a time through the same Runner path the
// in-process pool uses (cancellation, memoization and the shared on-disk
// cache intact), so a distributed run is byte-identical to a sequential
// one. The envelope is versioned: a coordinator and worker disagreeing on
// the format fail loudly instead of mis-measuring.
package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"unicode/utf8"

	"mussti/internal/arch"
	"mussti/internal/core"
	"mussti/internal/eval"
	"mussti/internal/physics"
)

// EnvelopeVersion is the wire format version. Bump it when the envelope
// layout (or the semantics of any field) changes; mixed fleets then error
// on the first exchange instead of silently decoding wrong measurements.
const EnvelopeVersion = 1

// wireChecksum pins the envelope schema. The wirecompat analyzer recomputes
// the fingerprint from EnvelopeVersion plus every //mussti:wire struct's
// fields (names, types, tags, in declaration order) and fails the lint until
// this constant matches — so any schema edit shows up in review next to a
// deliberate checksum (and, for breaking changes, version) bump.
const wireChecksum = "c0fd6a9031372a45"

// JobEnvelope is the wire form of one measurement job.
//
//mussti:wire
type JobEnvelope struct {
	// V is the format version; decoders reject any value other than
	// EnvelopeVersion.
	V int `json:"v"`
	// Seq identifies the job within one coordinator/worker conversation;
	// responses echo it, so a protocol desync is detected immediately.
	Seq uint64 `json:"seq"`
	// Spec is the resolved measurement spec.
	Spec WireSpec `json:"spec"`
}

// WireSpec mirrors eval.CompileSpec field for field, spelled as its own
// struct so the wire format is an explicit contract: a change to the spec
// types must be reconciled here (and versioned) rather than silently
// altering what old workers decode.
//
//mussti:wire
type WireSpec struct {
	App      string      `json:"app"`
	Compiler string      `json:"compiler"`
	Grid     *WireGrid   `json:"grid,omitempty"`
	Arch     *WireArch   `json:"arch,omitempty"`
	Config   *WireConfig `json:"config,omitempty"`
}

// WireGrid mirrors arch.Grid.
//
//mussti:wire
type WireGrid struct {
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	Capacity    int     `json:"capacity"`
	TrapPitchUM float64 `json:"trapPitchUM"`
}

// WireArch mirrors arch.Config. A nil *WireArch encodes the zero Config
// (the paper-default machine for the app's qubit count).
//
//mussti:wire
type WireArch struct {
	Modules          int     `json:"modules"`
	TrapCapacity     int     `json:"trapCapacity"`
	StorageZones     int     `json:"storageZones"`
	OperationZones   int     `json:"operationZones"`
	OpticalZones     int     `json:"opticalZones"`
	OpticalCapacity  int     `json:"opticalCapacity"`
	MaxIonsPerModule int     `json:"maxIonsPerModule"`
	ZonePitchUM      float64 `json:"zonePitchUM"`
}

// WireConfig mirrors core.CompileConfig minus the Observer and Parallelism:
// callbacks cannot cross a process boundary, and Parallelism describes the
// worker's execution resources, not the measurement — the compile is
// byte-identical at any setting, each worker picks its own. The cache key
// excludes both for the same reason, so dropping them keeps the round-trip
// lossless for everything a measurement depends on.
//
//mussti:wire
type WireConfig struct {
	Mapping                 int            `json:"mapping"`
	SwapInsertion           bool           `json:"swapInsertion"`
	LookAhead               int            `json:"lookAhead"`
	SwapThreshold           int            `json:"swapThreshold"`
	Params                  physics.Params `json:"params"`
	Trace                   bool           `json:"trace"`
	Replacement             int            `json:"replacement"`
	DisableRoutingLookAhead bool           `json:"disableRoutingLookAhead"`
}

// ResultEnvelope is the wire form of one job's outcome: exactly one of
// Measurement and Err is set.
//
//mussti:wire
type ResultEnvelope struct {
	V           int               `json:"v"`
	Seq         uint64            `json:"seq"`
	Measurement *eval.Measurement `json:"measurement,omitempty"`
	// Err carries a real job failure (bad app name, compiler invariant
	// break) back as text; transport failures never produce an envelope.
	Err string `json:"err,omitempty"`
}

// EncodeJob renders the job as a one-line envelope. Legacy Mussti/Baseline
// spec jobs encode through their existing CompileSpec conversion, so both
// API styles share one wire form. Jobs that fail to resolve are
// unencodable and error here, before any dispatch.
func EncodeJob(seq uint64, j eval.Job) ([]byte, error) {
	s, err := j.Resolve()
	if err != nil {
		return nil, fmt.Errorf("dist: encoding job: %w", err)
	}
	// encoding/json silently rewrites invalid UTF-8 to U+FFFD, which would
	// mutate the name (and the cache key) in transit. A name the codec
	// cannot carry losslessly must fail loudly here instead.
	if !utf8.ValidString(s.App) || !utf8.ValidString(s.Compiler) {
		return nil, fmt.Errorf("dist: encoding job: app/compiler names must be valid UTF-8 (app %q, compiler %q)", s.App, s.Compiler)
	}
	env := JobEnvelope{V: EnvelopeVersion, Seq: seq, Spec: specToWire(s)}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding job: %w", err)
	}
	return data, nil
}

// DecodeJob parses a job envelope. Malformed input — syntactically broken
// JSON, unknown fields, version skew, trailing garbage — errors; it never
// panics (the codec fuzz test pins that). The returned job carries the
// decoded spec, whose cache key is identical to the encoded job's.
func DecodeJob(data []byte) (uint64, eval.Job, error) {
	var env JobEnvelope
	if err := decodeStrict(data, &env); err != nil {
		return 0, eval.Job{}, fmt.Errorf("dist: decoding job envelope: %w", err)
	}
	if env.V != EnvelopeVersion {
		return 0, eval.Job{}, fmt.Errorf("dist: job envelope version %d, this build speaks %d", env.V, EnvelopeVersion)
	}
	spec := specFromWire(env.Spec)
	return env.Seq, eval.Job{Spec: &spec}, nil
}

// EncodeResult renders a job outcome as a one-line envelope. A non-nil err
// wins over the measurement.
func EncodeResult(seq uint64, m eval.Measurement, jobErr error) ([]byte, error) {
	env := ResultEnvelope{V: EnvelopeVersion, Seq: seq}
	if jobErr != nil {
		env.Err = jobErr.Error()
		if env.Err == "" {
			env.Err = "unknown error"
		}
	} else {
		env.Measurement = &m
	}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding result: %w", err)
	}
	return data, nil
}

// DecodeResult parses a result envelope; like DecodeJob it errors on any
// malformed input and never panics.
func DecodeResult(data []byte) (ResultEnvelope, error) {
	var env ResultEnvelope
	if err := decodeStrict(data, &env); err != nil {
		return ResultEnvelope{}, fmt.Errorf("dist: decoding result envelope: %w", err)
	}
	if env.V != EnvelopeVersion {
		return ResultEnvelope{}, fmt.Errorf("dist: result envelope version %d, this build speaks %d", env.V, EnvelopeVersion)
	}
	if (env.Measurement == nil) == (env.Err == "") {
		return ResultEnvelope{}, fmt.Errorf("dist: result envelope needs exactly one of measurement and err")
	}
	return env, nil
}

// decodeStrict unmarshals with unknown fields rejected and trailing input
// refused, so a truncated or corrupted stream fails instead of yielding a
// half-decoded envelope.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after envelope")
	}
	return nil
}

func specToWire(s eval.CompileSpec) WireSpec {
	w := WireSpec{App: s.App, Compiler: s.Compiler}
	if s.Grid != nil {
		w.Grid = &WireGrid{Rows: s.Grid.Rows, Cols: s.Grid.Cols, Capacity: s.Grid.Capacity, TrapPitchUM: s.Grid.TrapPitchUM}
	}
	if s.Arch != (arch.Config{}) {
		w.Arch = &WireArch{
			Modules:          s.Arch.Modules,
			TrapCapacity:     s.Arch.TrapCapacity,
			StorageZones:     s.Arch.StorageZones,
			OperationZones:   s.Arch.OperationZones,
			OpticalZones:     s.Arch.OpticalZones,
			OpticalCapacity:  s.Arch.OpticalCapacity,
			MaxIonsPerModule: s.Arch.MaxIonsPerModule,
			ZonePitchUM:      s.Arch.ZonePitchUM,
		}
	}
	if s.Config != nil {
		w.Config = &WireConfig{
			Mapping:                 int(s.Config.Mapping),
			SwapInsertion:           s.Config.SwapInsertion,
			LookAhead:               s.Config.LookAhead,
			SwapThreshold:           s.Config.SwapThreshold,
			Params:                  s.Config.Params,
			Trace:                   s.Config.Trace,
			Replacement:             int(s.Config.Replacement),
			DisableRoutingLookAhead: s.Config.DisableRoutingLookAhead,
		}
	}
	return w
}

func specFromWire(w WireSpec) eval.CompileSpec {
	s := eval.CompileSpec{App: w.App, Compiler: w.Compiler}
	if w.Grid != nil {
		s.Grid = &arch.Grid{Rows: w.Grid.Rows, Cols: w.Grid.Cols, Capacity: w.Grid.Capacity, TrapPitchUM: w.Grid.TrapPitchUM}
	}
	if w.Arch != nil {
		s.Arch = arch.Config{
			Modules:          w.Arch.Modules,
			TrapCapacity:     w.Arch.TrapCapacity,
			StorageZones:     w.Arch.StorageZones,
			OperationZones:   w.Arch.OperationZones,
			OpticalZones:     w.Arch.OpticalZones,
			OpticalCapacity:  w.Arch.OpticalCapacity,
			MaxIonsPerModule: w.Arch.MaxIonsPerModule,
			ZonePitchUM:      w.Arch.ZonePitchUM,
		}
	}
	if w.Config != nil {
		s.Config = &core.CompileConfig{
			Mapping:                 core.MappingStrategy(w.Config.Mapping),
			SwapInsertion:           w.Config.SwapInsertion,
			LookAhead:               w.Config.LookAhead,
			SwapThreshold:           w.Config.SwapThreshold,
			Params:                  w.Config.Params,
			Trace:                   w.Config.Trace,
			Replacement:             core.ReplacementPolicy(w.Config.Replacement),
			DisableRoutingLookAhead: w.Config.DisableRoutingLookAhead,
		}
	}
	return s
}
