// Package dist fans experiment jobs out across OS processes and machines.
//
// The experiment harness (internal/eval) already decomposes every table and
// figure into independent, self-contained measurement jobs and reassembles
// results in paper order; this package adds the two pieces a fleet needs on
// top of that: a wire codec that moves jobs and measurements between
// processes losslessly, and a coordinator/worker pair that speaks it.
//
// The protocol is newline-delimited JSON frames over a worker process's
// stdin/stdout, each tagged with a kind:
//
//	coordinator → worker:  {"v":2,"kind":"job","seq":N,"spec":{...}}\n
//	                       {"v":2,"kind":"batch","jobs":[{"seq":N,"spec":{...}},...]}\n
//	                       {"v":2,"kind":"ping","seq":N}\n
//	worker → coordinator:  {"v":2,"kind":"result","seq":N,"measurement":{...}}\n
//	                       {"v":2,"kind":"result","seq":N,"err":"..."}\n
//	                       {"v":2,"kind":"results","results":[...]}\n
//	                       {"v":2,"kind":"pong","seq":N}\n
//
// The coordinator keeps a window of jobs in flight per worker and matches
// results to outstanding jobs by seq, so results may complete out of order
// on the wire; paper-order reassembly stays Runner-side and a distributed
// run is byte-identical to a sequential one. Sub-millisecond jobs coalesce
// into batch frames, which the worker executes through the shared-prep
// CompileBatch path. Pings answer from the worker's read loop even while a
// compile is running, so a live worker is distinguishable from a hung one.
// The envelope is versioned: a coordinator and worker disagreeing on the
// format fail loudly instead of mis-measuring.
package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"unicode/utf8"

	"mussti/internal/arch"
	"mussti/internal/core"
	"mussti/internal/eval"
	"mussti/internal/physics"
)

// EnvelopeVersion is the wire format version. Bump it when the envelope
// layout (or the semantics of any field) changes; mixed fleets then error
// on the first exchange instead of silently decoding wrong measurements.
// Version history: 1 — one lockstep job/result pair per worker; 2 — kind-
// tagged frames with pipelined dispatch, batch envelopes and heartbeats.
const EnvelopeVersion = 2

// wireChecksum pins the envelope schema. The wirecompat analyzer recomputes
// the fingerprint from EnvelopeVersion plus every //mussti:wire struct's
// fields (names, types, tags, in declaration order) and fails the lint until
// this constant matches — so any schema edit shows up in review next to a
// deliberate checksum (and, for breaking changes, version) bump.
const wireChecksum = "3ce215cc13197461"

// Frame kinds. Kind is part of every frame so one stream can interleave
// jobs, batches and liveness probes without positional rules.
const (
	// KindJob carries one job (coordinator → worker).
	KindJob = "job"
	// KindBatch carries several jobs in one frame; the worker may compile
	// them through a shared prep (coordinator → worker).
	KindBatch = "batch"
	// KindPing is a liveness probe (coordinator → worker).
	KindPing = "ping"
	// KindResult carries one job outcome (worker → coordinator).
	KindResult = "result"
	// KindResults carries a batch frame's outcomes (worker → coordinator).
	KindResults = "results"
	// KindPong answers a ping, echoing its seq (worker → coordinator).
	KindPong = "pong"
)

// JobEnvelope is the wire form of one measurement job.
//
//mussti:wire
type JobEnvelope struct {
	// V is the format version; decoders reject any value other than
	// EnvelopeVersion.
	V int `json:"v"`
	// Kind is KindJob.
	Kind string `json:"kind"`
	// Seq identifies the job within one coordinator/worker conversation;
	// responses echo it, so results can complete out of order and a
	// protocol desync is detected immediately.
	Seq uint64 `json:"seq"`
	// Spec is the resolved measurement spec.
	Spec WireSpec `json:"spec"`
}

// WireJob is one member of a batch frame: a seq and its spec.
//
//mussti:wire
type WireJob struct {
	Seq  uint64   `json:"seq"`
	Spec WireSpec `json:"spec"`
}

// BatchJobEnvelope is the wire form of several jobs coalesced into one
// frame. The worker answers with one BatchResultEnvelope carrying every
// member's outcome (per-member: a job error never poisons its neighbours).
//
//mussti:wire
type BatchJobEnvelope struct {
	V    int       `json:"v"`
	Kind string    `json:"kind"`
	Jobs []WireJob `json:"jobs"`
}

// HeartbeatEnvelope is a liveness probe (ping) or its echo (pong). Seq
// identifies the probe; a worker answers from its read loop even while a
// compile runs, so silence over several probes means the process is hung or
// gone, not merely busy.
//
//mussti:wire
type HeartbeatEnvelope struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	Seq  uint64 `json:"seq"`
}

// WireSpec mirrors eval.CompileSpec field for field, spelled as its own
// struct so the wire format is an explicit contract: a change to the spec
// types must be reconciled here (and versioned) rather than silently
// altering what old workers decode.
//
//mussti:wire
type WireSpec struct {
	App      string      `json:"app"`
	Compiler string      `json:"compiler"`
	Grid     *WireGrid   `json:"grid,omitempty"`
	Arch     *WireArch   `json:"arch,omitempty"`
	Config   *WireConfig `json:"config,omitempty"`
}

// WireGrid mirrors arch.Grid.
//
//mussti:wire
type WireGrid struct {
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	Capacity    int     `json:"capacity"`
	TrapPitchUM float64 `json:"trapPitchUM"`
}

// WireArch mirrors arch.Config. A nil *WireArch encodes the zero Config
// (the paper-default machine for the app's qubit count).
//
//mussti:wire
type WireArch struct {
	Modules          int     `json:"modules"`
	TrapCapacity     int     `json:"trapCapacity"`
	StorageZones     int     `json:"storageZones"`
	OperationZones   int     `json:"operationZones"`
	OpticalZones     int     `json:"opticalZones"`
	OpticalCapacity  int     `json:"opticalCapacity"`
	MaxIonsPerModule int     `json:"maxIonsPerModule"`
	ZonePitchUM      float64 `json:"zonePitchUM"`
}

// WireConfig mirrors core.CompileConfig minus the Observer and Parallelism:
// callbacks cannot cross a process boundary, and Parallelism describes the
// worker's execution resources, not the measurement — the compile is
// byte-identical at any setting, each worker picks its own. The cache key
// excludes both for the same reason, so dropping them keeps the round-trip
// lossless for everything a measurement depends on.
//
//mussti:wire
type WireConfig struct {
	Mapping                 int            `json:"mapping"`
	SwapInsertion           bool           `json:"swapInsertion"`
	LookAhead               int            `json:"lookAhead"`
	SwapThreshold           int            `json:"swapThreshold"`
	Params                  physics.Params `json:"params"`
	Trace                   bool           `json:"trace"`
	Replacement             int            `json:"replacement"`
	DisableRoutingLookAhead bool           `json:"disableRoutingLookAhead"`
}

// ResultEnvelope is the wire form of one job's outcome: exactly one of
// Measurement and Err is set.
//
//mussti:wire
type ResultEnvelope struct {
	V           int               `json:"v"`
	Kind        string            `json:"kind"`
	Seq         uint64            `json:"seq"`
	Measurement *eval.Measurement `json:"measurement,omitempty"`
	// Err carries a real job failure (bad app name, compiler invariant
	// break) back as text; transport failures never produce an envelope.
	Err string `json:"err,omitempty"`
}

// WireResult is one member of a batch result frame; like ResultEnvelope,
// exactly one of Measurement and Err is set.
//
//mussti:wire
type WireResult struct {
	Seq         uint64            `json:"seq"`
	Measurement *eval.Measurement `json:"measurement,omitempty"`
	Err         string            `json:"err,omitempty"`
}

// BatchResultEnvelope answers a BatchJobEnvelope with every member's
// outcome.
//
//mussti:wire
type BatchResultEnvelope struct {
	V       int          `json:"v"`
	Kind    string       `json:"kind"`
	Results []WireResult `json:"results"`
}

// SniffFrame reads a frame's version and kind without decoding its body, so
// a receiver can route one line to the right strict decoder. Version skew
// and kindless frames error here, before any shape-specific parsing.
func SniffFrame(data []byte) (string, error) {
	var probe struct {
		V    int    `json:"v"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("dist: decoding frame: %w", err)
	}
	if probe.V != EnvelopeVersion {
		return "", fmt.Errorf("dist: frame version %d, this build speaks %d", probe.V, EnvelopeVersion)
	}
	if probe.Kind == "" {
		return "", fmt.Errorf("dist: frame has no kind")
	}
	return probe.Kind, nil
}

// WireSpecOf resolves and validates a job for transport, returning its wire
// spec. Legacy Mussti/Baseline spec jobs convert through their existing
// CompileSpec conversion, so both API styles share one wire form. Jobs that
// fail to resolve — or that cannot cross the wire losslessly — error here,
// before any dispatch, so a transport-level retry never re-pays validation.
func WireSpecOf(j eval.Job) (WireSpec, error) {
	s, err := j.Resolve()
	if err != nil {
		return WireSpec{}, fmt.Errorf("dist: encoding job: %w", err)
	}
	// encoding/json silently rewrites invalid UTF-8 to U+FFFD, which would
	// mutate the name (and the cache key) in transit. A name the codec
	// cannot carry losslessly must fail loudly here instead.
	if !utf8.ValidString(s.App) || !utf8.ValidString(s.Compiler) {
		return WireSpec{}, fmt.Errorf("dist: encoding job: app/compiler names must be valid UTF-8 (app %q, compiler %q)", s.App, s.Compiler)
	}
	w := specToWire(s)
	// Trial-marshal now so unencodable values (non-finite floats) surface as
	// a job error at submission, not as a mid-dispatch transport anomaly.
	if _, err := json.Marshal(w); err != nil {
		return WireSpec{}, fmt.Errorf("dist: encoding job: %w", err)
	}
	return w, nil
}

// EncodeJob renders the job as a one-line envelope.
func EncodeJob(seq uint64, j eval.Job) ([]byte, error) {
	w, err := WireSpecOf(j)
	if err != nil {
		return nil, err
	}
	return EncodeJobSpec(seq, w)
}

// EncodeJobSpec renders an already-validated wire spec as a one-line job
// envelope; the coordinator validates once via WireSpecOf and re-encodes
// with a fresh seq on every dispatch (retries included).
func EncodeJobSpec(seq uint64, spec WireSpec) ([]byte, error) {
	env := JobEnvelope{V: EnvelopeVersion, Kind: KindJob, Seq: seq, Spec: spec}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding job: %w", err)
	}
	return data, nil
}

// DecodeJob parses a job envelope. Malformed input — syntactically broken
// JSON, unknown fields, version skew, trailing garbage — errors; it never
// panics (the codec fuzz test pins that). The returned job carries the
// decoded spec, whose cache key is identical to the encoded job's.
func DecodeJob(data []byte) (uint64, eval.Job, error) {
	var env JobEnvelope
	if err := decodeStrict(data, &env); err != nil {
		return 0, eval.Job{}, fmt.Errorf("dist: decoding job envelope: %w", err)
	}
	if env.V != EnvelopeVersion {
		return 0, eval.Job{}, fmt.Errorf("dist: job envelope version %d, this build speaks %d", env.V, EnvelopeVersion)
	}
	if env.Kind != KindJob {
		return 0, eval.Job{}, fmt.Errorf("dist: job envelope has kind %q, want %q", env.Kind, KindJob)
	}
	spec := specFromWire(env.Spec)
	return env.Seq, eval.Job{Spec: &spec}, nil
}

// EncodeBatch renders several jobs as one batch frame.
func EncodeBatch(jobs []WireJob) ([]byte, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("dist: encoding batch: no jobs")
	}
	env := BatchJobEnvelope{V: EnvelopeVersion, Kind: KindBatch, Jobs: jobs}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding batch: %w", err)
	}
	return data, nil
}

// DecodeBatch parses a batch frame into per-member seqs and jobs.
func DecodeBatch(data []byte) ([]uint64, []eval.Job, error) {
	var env BatchJobEnvelope
	if err := decodeStrict(data, &env); err != nil {
		return nil, nil, fmt.Errorf("dist: decoding batch envelope: %w", err)
	}
	if env.V != EnvelopeVersion {
		return nil, nil, fmt.Errorf("dist: batch envelope version %d, this build speaks %d", env.V, EnvelopeVersion)
	}
	if env.Kind != KindBatch {
		return nil, nil, fmt.Errorf("dist: batch envelope has kind %q, want %q", env.Kind, KindBatch)
	}
	if len(env.Jobs) == 0 {
		return nil, nil, fmt.Errorf("dist: batch envelope has no jobs")
	}
	seqs := make([]uint64, len(env.Jobs))
	jobs := make([]eval.Job, len(env.Jobs))
	for i, wj := range env.Jobs {
		spec := specFromWire(wj.Spec)
		seqs[i] = wj.Seq
		jobs[i] = eval.Job{Spec: &spec}
	}
	return seqs, jobs, nil
}

// EncodePing renders a liveness probe.
func EncodePing(seq uint64) ([]byte, error) { return encodeHeartbeat(KindPing, seq) }

// EncodePong renders a probe's echo.
func EncodePong(seq uint64) ([]byte, error) { return encodeHeartbeat(KindPong, seq) }

func encodeHeartbeat(kind string, seq uint64) ([]byte, error) {
	data, err := json.Marshal(HeartbeatEnvelope{V: EnvelopeVersion, Kind: kind, Seq: seq})
	if err != nil {
		return nil, fmt.Errorf("dist: encoding %s: %w", kind, err)
	}
	return data, nil
}

// DecodeHeartbeat parses a ping or pong frame, returning its kind and seq.
func DecodeHeartbeat(data []byte) (string, uint64, error) {
	var env HeartbeatEnvelope
	if err := decodeStrict(data, &env); err != nil {
		return "", 0, fmt.Errorf("dist: decoding heartbeat: %w", err)
	}
	if env.V != EnvelopeVersion {
		return "", 0, fmt.Errorf("dist: heartbeat version %d, this build speaks %d", env.V, EnvelopeVersion)
	}
	if env.Kind != KindPing && env.Kind != KindPong {
		return "", 0, fmt.Errorf("dist: heartbeat has kind %q, want %q or %q", env.Kind, KindPing, KindPong)
	}
	return env.Kind, env.Seq, nil
}

// EncodeResult renders a job outcome as a one-line envelope. A non-nil err
// wins over the measurement.
func EncodeResult(seq uint64, m eval.Measurement, jobErr error) ([]byte, error) {
	env := ResultEnvelope{V: EnvelopeVersion, Kind: KindResult, Seq: seq}
	if jobErr != nil {
		env.Err = jobErr.Error()
		if env.Err == "" {
			env.Err = "unknown error"
		}
	} else {
		env.Measurement = &m
	}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding result: %w", err)
	}
	return data, nil
}

// DecodeResult parses a result envelope; like DecodeJob it errors on any
// malformed input and never panics.
func DecodeResult(data []byte) (ResultEnvelope, error) {
	var env ResultEnvelope
	if err := decodeStrict(data, &env); err != nil {
		return ResultEnvelope{}, fmt.Errorf("dist: decoding result envelope: %w", err)
	}
	if env.V != EnvelopeVersion {
		return ResultEnvelope{}, fmt.Errorf("dist: result envelope version %d, this build speaks %d", env.V, EnvelopeVersion)
	}
	if env.Kind != KindResult {
		return ResultEnvelope{}, fmt.Errorf("dist: result envelope has kind %q, want %q", env.Kind, KindResult)
	}
	if (env.Measurement == nil) == (env.Err == "") {
		return ResultEnvelope{}, fmt.Errorf("dist: result envelope needs exactly one of measurement and err")
	}
	return env, nil
}

// NewWireResult builds one batch-result member from a job outcome.
func NewWireResult(seq uint64, m eval.Measurement, jobErr error) WireResult {
	r := WireResult{Seq: seq}
	if jobErr != nil {
		r.Err = jobErr.Error()
		if r.Err == "" {
			r.Err = "unknown error"
		}
	} else {
		r.Measurement = &m
	}
	return r
}

// EncodeBatchResult renders a batch frame's outcomes.
func EncodeBatchResult(results []WireResult) ([]byte, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("dist: encoding batch result: no results")
	}
	env := BatchResultEnvelope{V: EnvelopeVersion, Kind: KindResults, Results: results}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding batch result: %w", err)
	}
	return data, nil
}

// DecodeBatchResult parses a batch result frame, validating every member's
// exactly-one-of shape.
func DecodeBatchResult(data []byte) ([]WireResult, error) {
	var env BatchResultEnvelope
	if err := decodeStrict(data, &env); err != nil {
		return nil, fmt.Errorf("dist: decoding batch result: %w", err)
	}
	if env.V != EnvelopeVersion {
		return nil, fmt.Errorf("dist: batch result version %d, this build speaks %d", env.V, EnvelopeVersion)
	}
	if env.Kind != KindResults {
		return nil, fmt.Errorf("dist: batch result has kind %q, want %q", env.Kind, KindResults)
	}
	if len(env.Results) == 0 {
		return nil, fmt.Errorf("dist: batch result has no results")
	}
	for i, r := range env.Results {
		if (r.Measurement == nil) == (r.Err == "") {
			return nil, fmt.Errorf("dist: batch result member %d needs exactly one of measurement and err", i)
		}
	}
	return env.Results, nil
}

// decodeStrict unmarshals with unknown fields rejected and trailing input
// refused, so a truncated or corrupted stream fails instead of yielding a
// half-decoded envelope.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after envelope")
	}
	return nil
}

func specToWire(s eval.CompileSpec) WireSpec {
	w := WireSpec{App: s.App, Compiler: s.Compiler}
	if s.Grid != nil {
		w.Grid = &WireGrid{Rows: s.Grid.Rows, Cols: s.Grid.Cols, Capacity: s.Grid.Capacity, TrapPitchUM: s.Grid.TrapPitchUM}
	}
	if s.Arch != (arch.Config{}) {
		w.Arch = &WireArch{
			Modules:          s.Arch.Modules,
			TrapCapacity:     s.Arch.TrapCapacity,
			StorageZones:     s.Arch.StorageZones,
			OperationZones:   s.Arch.OperationZones,
			OpticalZones:     s.Arch.OpticalZones,
			OpticalCapacity:  s.Arch.OpticalCapacity,
			MaxIonsPerModule: s.Arch.MaxIonsPerModule,
			ZonePitchUM:      s.Arch.ZonePitchUM,
		}
	}
	if s.Config != nil {
		w.Config = &WireConfig{
			Mapping:                 int(s.Config.Mapping),
			SwapInsertion:           s.Config.SwapInsertion,
			LookAhead:               s.Config.LookAhead,
			SwapThreshold:           s.Config.SwapThreshold,
			Params:                  s.Config.Params,
			Trace:                   s.Config.Trace,
			Replacement:             int(s.Config.Replacement),
			DisableRoutingLookAhead: s.Config.DisableRoutingLookAhead,
		}
	}
	return w
}

func specFromWire(w WireSpec) eval.CompileSpec {
	s := eval.CompileSpec{App: w.App, Compiler: w.Compiler}
	if w.Grid != nil {
		s.Grid = &arch.Grid{Rows: w.Grid.Rows, Cols: w.Grid.Cols, Capacity: w.Grid.Capacity, TrapPitchUM: w.Grid.TrapPitchUM}
	}
	if w.Arch != nil {
		s.Arch = arch.Config{
			Modules:          w.Arch.Modules,
			TrapCapacity:     w.Arch.TrapCapacity,
			StorageZones:     w.Arch.StorageZones,
			OperationZones:   w.Arch.OperationZones,
			OpticalZones:     w.Arch.OpticalZones,
			OpticalCapacity:  w.Arch.OpticalCapacity,
			MaxIonsPerModule: w.Arch.MaxIonsPerModule,
			ZonePitchUM:      w.Arch.ZonePitchUM,
		}
	}
	if w.Config != nil {
		s.Config = &core.CompileConfig{
			Mapping:                 core.MappingStrategy(w.Config.Mapping),
			SwapInsertion:           w.Config.SwapInsertion,
			LookAhead:               w.Config.LookAhead,
			SwapThreshold:           w.Config.SwapThreshold,
			Params:                  w.Config.Params,
			Trace:                   w.Config.Trace,
			Replacement:             core.ReplacementPolicy(w.Config.Replacement),
			DisableRoutingLookAhead: w.Config.DisableRoutingLookAhead,
		}
	}
	return s
}
