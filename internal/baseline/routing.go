package baseline

import (
	"fmt"
	"math"

	"mussti/internal/dag"
)

// hop shuttles q one grid step to the adjacent trap `next`, evicting an ion
// from `next` to its least-loaded neighbour if it is full. Eviction never
// displaces a protected qubit.
func (r *gridRouter) hop(q, next, protectA, protectB int) error {
	for r.eng.Free(next) == 0 {
		victim := r.evictionVictim(next, protectA, protectB)
		if victim == -1 {
			return fmt.Errorf("baseline: trap %d full of protected ions", next)
		}
		spill, hops := r.spillTarget(next)
		if spill == -1 {
			return fmt.Errorf("baseline: grid has no free slot for eviction from trap %d", next)
		}
		// The evicted ion transits intermediate junctions without merging
		// into chains en route, so a multi-hop spill is one shuttle over a
		// longer distance.
		victimFrom := r.eng.ZoneOf(victim)
		if err := r.eng.Move(victim, spill, float64(hops)*r.grid.TrapPitchUM); err != nil {
			return err
		}
		r.obs.Eviction(victim, victimFrom, spill)
	}
	from := r.eng.ZoneOf(q)
	if err := r.eng.Move(q, next, r.grid.TrapPitchUM); err != nil {
		return err
	}
	r.obs.Shuttle(q, from, next)
	return nil
}

// evictionVictim picks the LRU ion of a trap, skipping protected qubits.
func (r *gridRouter) evictionVictim(trap, protectA, protectB int) int {
	victim, oldest := -1, int64(math.MaxInt64)
	for _, q := range r.eng.Chain(trap) {
		if q == protectA || q == protectB {
			continue
		}
		if r.lastUsed[q] < oldest {
			victim, oldest = q, r.lastUsed[q]
		}
	}
	return victim
}

// spillTarget finds the nearest trap with free space by breadth-first
// search from the congested trap, preferring the least-loaded trap among
// the nearest ring. Returns (-1, 0) only when the whole grid is full.
func (r *gridRouter) spillTarget(trap int) (target, hops int) {
	visited := make([]bool, r.grid.NumTraps())
	visited[trap] = true
	ring := []int{trap}
	for depth := 1; len(ring) > 0; depth++ {
		var next []int
		best, bestLoad := -1, math.MaxInt32
		for _, t := range ring {
			for _, nb := range r.grid.Neighbors(t) {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				next = append(next, nb)
				if r.eng.Free(nb) > 0 {
					if l := r.eng.Load(nb); l < bestLoad {
						best, bestLoad = nb, l
					}
				}
			}
		}
		if best != -1 {
			return best, depth
		}
		ring = next
	}
	return -1, 0
}

// walk shuttles q trap-by-trap to dst along a shortest path.
func (r *gridRouter) walk(q, dst, protectA, protectB int) error {
	for r.eng.ZoneOf(q) != dst {
		next := r.grid.PathTowards(r.eng.ZoneOf(q), dst)
		if err := r.hop(q, next, protectA, protectB); err != nil {
			return err
		}
	}
	return nil
}

// routeMurali implements the greedy ISCA-2020 policy: move the first
// operand trap-by-trap into its partner's trap, then execute.
func (r *gridRouter) routeMurali(id int) error {
	a, b := r.operands(id)
	if err := r.walk(a, r.eng.ZoneOf(b), a, b); err != nil {
		return err
	}
	return r.executeNode(id)
}

// routeDai implements the TQE-2024 advanced shuttle strategy: pick the
// meeting trap by minimising current travel plus a look-ahead term over
// upcoming partners, and move only the qubits that need moving.
func (r *gridRouter) routeDai(id int) error {
	a, b := r.operands(id)
	dst := r.bestMeetingTrap(a, b)
	for _, q := range [2]int{a, b} {
		if r.eng.ZoneOf(q) != dst {
			if err := r.walk(q, dst, a, b); err != nil {
				return err
			}
		}
	}
	return r.executeNode(id)
}

// bestMeetingTrap scores candidate traps for a Dai-style gate: travel cost
// for the two operands, future-partner attraction within the look-ahead
// window, and congestion penalty. Candidates are the operand traps and the
// traps on the bounding rectangle corners between them — a small, cheap
// candidate set that covers "stay", "meet at partner" and "meet midway".
func (r *gridRouter) bestMeetingTrap(a, b int) int {
	ta, tb := r.eng.ZoneOf(a), r.eng.ZoneOf(b)
	ra, ca := r.grid.RowCol(ta)
	rb, cb := r.grid.RowCol(tb)
	mid := r.grid.TrapAt((ra+rb)/2, (ca+cb)/2)
	cands := []int{ta, tb, mid}

	// Look-ahead attraction: positions of the next partners of a and b,
	// gathered into one reused buffer (one window scan per operand).
	attract := r.futurePartnerTraps(a, b)

	best, bestCost := tb, math.Inf(1)
	for _, t := range cands {
		cost := float64(r.grid.Distance(ta, t) + r.grid.Distance(tb, t))
		for _, at := range attract {
			cost += 0.3 * float64(r.grid.Distance(t, at))
		}
		// Congestion: ions that would need evicting.
		incoming := 0
		if ta != t {
			incoming++
		}
		if tb != t {
			incoming++
		}
		if over := incoming - r.eng.Free(t); over > 0 {
			cost += 2 * float64(over)
		}
		if cost < bestCost {
			best, bestCost = t, cost
		}
	}
	return best
}

// futurePartnerTraps returns the traps of a's partners within the next
// LookAhead DAG layers, followed by b's. It deliberately keeps the two
// window scans of the pre-refactor per-operand calls: merging them into one
// scan would interleave the partners and change the floating-point
// summation order of bestMeetingTrap's cost (bit-identical schedules are
// this package's golden-output contract), so only the per-call allocation
// was removed. The result is the router's reused scratch buffer, valid
// until the next routed gate.
func (r *gridRouter) futurePartnerTraps(a, b int) []int {
	traps := r.trapScratch[:0]
	r.g.WalkAhead(r.opts.LookAhead, func(_ int, n *dag.Node) {
		if p := n.Gate.Other(a); p >= 0 {
			traps = append(traps, r.eng.ZoneOf(p))
		}
	})
	r.g.WalkAhead(r.opts.LookAhead, func(_ int, n *dag.Node) {
		if p := n.Gate.Other(b); p >= 0 {
			traps = append(traps, r.eng.ZoneOf(p))
		}
	})
	r.trapScratch = traps
	return traps
}

// routeMQT implements the dedicated-processing-zone discipline of the MQT
// shuttling compiler: both ions travel to the processing trap (trap 0),
// the gate executes there, and both ions return to their home traps. The
// back-and-forth makes schedules predictable and verifiable — and shuttle-
// expensive, matching the [70] columns of Table 2.
func (r *gridRouter) routeMQT(id int) error {
	a, b := r.operands(id)
	const processing = 0
	for _, q := range [2]int{a, b} {
		if err := r.walk(q, processing, a, b); err != nil {
			return err
		}
	}
	if err := r.executeNode(id); err != nil {
		return err
	}
	for _, q := range [2]int{a, b} {
		if err := r.walkHome(q, a, b); err != nil {
			return err
		}
	}
	return nil
}

// walkHome returns q towards its home trap, diverting to the nearest trap
// with space if home is full.
func (r *gridRouter) walkHome(q, protectA, protectB int) error {
	dst := r.home[q]
	if r.eng.Free(dst) == 0 && r.eng.ZoneOf(q) != dst {
		if alt, _ := r.spillTarget(dst); alt != -1 {
			dst = alt
		}
	}
	return r.walk(q, dst, protectA, protectB)
}
