package baseline

import (
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/circuit/bench"
)

func grid22() *arch.Grid { return arch.MustNewGrid(2, 2, 12) }

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{Murali: "QCCD-Murali", Dai: "QCCD-Dai", MQT: "MQT", Algorithm(9): "unknown"}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestCompileRejectsOversized(t *testing.T) {
	c := bench.MustByName("GHZ_n256")
	g := arch.MustNewGrid(2, 2, 8) // 32 slots
	if _, err := Compile(Murali, c, g, Options{}); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestAllBaselinesCompleteSmallSuite(t *testing.T) {
	g := grid22()
	for _, name := range bench.SmallSuite() {
		c := bench.MustByName(name)
		st := c.Stats()
		for _, algo := range []Algorithm{Murali, Dai, MQT} {
			res, err := Compile(algo, c, g, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, algo, err)
			}
			m := res.Metrics
			if m.Gates2 != st.TwoQubit {
				t.Errorf("%s/%s: executed %d 2q gates, want %d", name, algo, m.Gates2, st.TwoQubit)
			}
			if m.Gates1 != st.OneQubit || m.Measurements != st.Measures {
				t.Errorf("%s/%s: 1q/meas = %d/%d, want %d/%d",
					name, algo, m.Gates1, m.Measurements, st.OneQubit, st.Measures)
			}
			if m.FiberGates != 0 {
				t.Errorf("%s/%s: fiber gates on a grid", name, algo)
			}
		}
	}
}

func TestMQTShuttlesDominate(t *testing.T) {
	// The dedicated-processing-zone discipline must cost far more shuttles
	// than the greedy compilers — the Table 2 ordering.
	g := grid22()
	for _, name := range []string{"Adder_n32", "QFT_n32", "SQRT_n30"} {
		c := bench.MustByName(name)
		mur, err := Compile(Murali, c, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mqt, err := Compile(MQT, c, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if mqt.Metrics.Shuttles <= 2*mur.Metrics.Shuttles {
			t.Errorf("%s: MQT %d shuttles not ≫ Murali %d", name, mqt.Metrics.Shuttles, mur.Metrics.Shuttles)
		}
	}
}

func TestDaiBeatsOrMatchesMurali(t *testing.T) {
	g := grid22()
	for _, name := range bench.SmallSuite() {
		c := bench.MustByName(name)
		mur, err := Compile(Murali, c, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dai, err := Compile(Dai, c, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dai.Metrics.Shuttles > mur.Metrics.Shuttles {
			t.Errorf("%s: Dai %d shuttles worse than Murali %d", name, dai.Metrics.Shuttles, mur.Metrics.Shuttles)
		}
	}
}

func TestBaselineDeterministic(t *testing.T) {
	g := grid22()
	c := bench.MustByName("QFT_n32")
	for _, algo := range []Algorithm{Murali, Dai, MQT} {
		a, err := Compile(algo, c, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(algo, c, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics.Shuttles != b.Metrics.Shuttles || a.Metrics.MakespanUS != b.Metrics.MakespanUS {
			t.Errorf("%s not deterministic", algo)
		}
	}
}

func TestColocationSkipsShuttling(t *testing.T) {
	// Two qubits in the same trap gate for free under Murali/Dai.
	c := circuit.New("local", 2)
	c.MS(0, 1)
	g := grid22()
	for _, algo := range []Algorithm{Murali, Dai} {
		res, err := Compile(algo, c, g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.Shuttles != 0 {
			t.Errorf("%s: co-located gate cost %d shuttles", algo, res.Metrics.Shuttles)
		}
	}
	// MQT still hauls both to the processing zone and back.
	res, err := Compile(MQT, c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Shuttles == 0 {
		t.Error("MQT executed outside the processing zone")
	}
}

func TestMQTProcessingZoneDiscipline(t *testing.T) {
	c := circuit.New("p", 4)
	c.MS(0, 3)
	g := arch.MustNewGrid(2, 2, 4)
	res, err := Compile(MQT, c, g, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	gateTrap := -1
	for _, op := range res.Trace {
		if op.Kind == "gate2" {
			gateTrap = op.Zone
		}
	}
	if gateTrap != 0 {
		t.Errorf("MQT gate executed in trap %d, want processing trap 0", gateTrap)
	}
}

func TestDaiLookAheadOption(t *testing.T) {
	g := arch.MustNewGrid(3, 4, 16)
	c := bench.MustByName("Adder_n128")
	deep, err := Compile(Dai, c, g, Options{LookAhead: 8})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := Compile(Dai, c, g, Options{LookAhead: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both must complete; counts may differ but stay in the same decade.
	if deep.Metrics.Shuttles == 0 || shallow.Metrics.Shuttles == 0 {
		t.Error("look-ahead variant produced zero shuttles on Adder_n128")
	}
}

func TestLargeGridRun(t *testing.T) {
	if testing.Short() {
		t.Skip("large baseline run skipped in -short")
	}
	g := arch.MustNewGrid(4, 5, 16)
	c := bench.MustByName("GHZ_n256")
	for _, algo := range []Algorithm{Murali, Dai} {
		if _, err := Compile(algo, c, g, Options{}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}
