// Package baseline re-implements the three comparison compilers of the
// MUSS-TI evaluation, all targeting the monolithic QCCD grid of Fig. 1(b):
//
//   - Murali et al., "Architecting NISQ trapped ion quantum computers"
//     (ISCA 2020) [55]: the standard greedy QCCD compiler — execute ready
//     gates, otherwise shuttle the first operand trap-by-trap towards its
//     partner, evicting overflow ions to neighbouring traps.
//   - Dai et al., "Advanced Shuttle Strategies for Parallel QCCD
//     Architectures" (IEEE TQE 2024) [13]: improves on [55] with
//     look-ahead destination choice (the meeting trap is picked to also
//     suit upcoming partners) and by preferring the cheaper of the two
//     operands to move.
//   - Schoenberger et al., MQT "Shuttling for scalable trapped-ion quantum
//     computers" (TCAD 2024) [70]: a dedicated-processing-zone discipline —
//     ions shuttle from their home traps to a processing site for every
//     gate and return afterwards, giving exact but shuttle-hungry
//     schedules (the largest shuttle counts in Table 2).
//
// These are faithful to the *algorithmic signature* of each system rather
// than line-by-line ports (the originals are external Python/C++ code);
// see DESIGN.md "Substitutions". All three share the grid router in this
// package and the physics engine in internal/sim, so metric differences
// come from scheduling policy alone.
package baseline

import (
	"context"
	"fmt"
	"time"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/core"
	"mussti/internal/dag"
	"mussti/internal/physics"
	"mussti/internal/sim"
)

// Algorithm selects one of the baseline compilers.
type Algorithm int

// Baseline algorithms.
const (
	// Murali is the ISCA 2020 greedy QCCD compiler [55].
	Murali Algorithm = iota
	// Dai is the look-ahead shuttle-strategy compiler [13].
	Dai
	// MQT is the dedicated-processing-zone shuttling compiler [70].
	MQT
)

// String names the algorithm as the paper's tables do.
func (a Algorithm) String() string {
	switch a {
	case Murali:
		return "QCCD-Murali"
	case Dai:
		return "QCCD-Dai"
	case MQT:
		return "MQT"
	}
	return "unknown"
}

// RegistryName is the algorithm's compiler-registry identifier ("murali",
// "dai", "mqt") — the name LookupCompiler resolves, as distinct from the
// paper's table label that String returns.
func (a Algorithm) RegistryName() string {
	switch a {
	case Murali:
		return "murali"
	case Dai:
		return "dai"
	case MQT:
		return "mqt"
	}
	return ""
}

// Result is the outcome of a baseline compilation. The baselines report
// through the same type as MUSS-TI (metrics, compile time and trace; the
// scheduler-stats and mapping fields stay zero), so harnesses handle one
// result shape for every compiler.
type Result = core.Result

// Options configures a baseline run.
//
// Deprecated: Options predates the unified core.CompileConfig; its fields
// are the subset of CompileConfig the baselines read. New code should build
// a CompileConfig and go through the compiler registry.
type Options struct {
	// Params is the physics model; zero value means physics.Default().
	Params physics.Params
	// LookAhead is the Dai look-ahead window in DAG layers (default 4).
	LookAhead int
	// Trace enables op recording.
	Trace bool
	// Observer, when non-nil, receives the same per-step progress
	// callbacks as the MUSS-TI compiler (gates scheduled, per-hop
	// shuttles, evictions). It never changes the schedule.
	Observer core.Observer
}

// Config lifts the legacy Options into the unified CompileConfig.
func (o Options) Config() core.CompileConfig {
	return core.CompileConfig{
		Params:    o.Params,
		LookAhead: o.LookAhead,
		Trace:     o.Trace,
		Observer:  o.Observer,
	}
}

// fromConfig projects the unified CompileConfig onto the fields the
// baselines read; the MUSS-TI-specific knobs are ignored by design.
func fromConfig(cfg *core.CompileConfig) Options {
	if cfg == nil {
		return Options{}
	}
	return Options{
		Params:    cfg.Params,
		LookAhead: cfg.LookAhead,
		Trace:     cfg.Trace,
		Observer:  cfg.Observer,
	}
}

func (o Options) withDefaults() Options {
	if o.Params == (physics.Params{}) {
		o.Params = physics.Default()
	}
	if o.LookAhead <= 0 {
		o.LookAhead = 4
	}
	return o
}

// Compile schedules circuit c onto grid g with the chosen baseline. It is
// CompileContext with a background context.
func Compile(algo Algorithm, c *circuit.Circuit, g *arch.Grid, opts Options) (*Result, error) {
	return CompileContext(context.Background(), algo, c, g, opts)
}

// CompileContext is Compile with cooperative cancellation: the routing loop
// checks ctx at every frontier step, so a cancelled or expired context
// aborts the compile within one scheduler step and surfaces ctx.Err().
func CompileContext(ctx context.Context, algo Algorithm, c *circuit.Circuit, g *arch.Grid, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if c.NumQubits > g.TotalCapacity() {
		return nil, fmt.Errorf("baseline: circuit %q needs %d qubits, grid holds %d",
			c.Name, c.NumQubits, g.TotalCapacity())
	}
	start := time.Now() //mussti:allow=determinism CompileTime is reporting metadata, never schedule input
	r := &gridRouter{
		ctx:  ctx,
		algo: algo,
		c:    c,
		grid: g,
		opts: opts,
		eng:  sim.NewGridEngine(g, c.NumQubits, opts.Params),
		g:    dag.Build(c),
		obs:  core.ObserverOrNop(opts.Observer),
	}
	if opts.Trace {
		r.eng.EnableTrace()
	}
	if err := r.init(); err != nil {
		return nil, err
	}
	if err := r.run(); err != nil {
		return nil, err
	}
	//mussti:allow=determinism CompileTime is reporting metadata, never schedule input
	return &Result{Metrics: r.eng.Metrics(), CompileTime: time.Since(start), Trace: r.eng.Trace()}, nil
}

// gridRouter is shared scheduling state for all three baselines.
type gridRouter struct {
	ctx  context.Context
	algo Algorithm
	c    *circuit.Circuit
	grid *arch.Grid
	opts Options
	eng  *sim.Engine
	g    *dag.Graph
	obs  core.Observer

	perQubit [][]int
	cursor   []int
	lastUsed []int64
	clock    int64
	executed int   // two-qubit gates done, for Observer ticks
	home     []int // MQT: each qubit's home trap

	// trapScratch is the reused buffer of futurePartnerTraps (Dai's
	// look-ahead destination choice, run once per routed gate).
	trapScratch []int
}

func (r *gridRouter) init() error {
	n := r.c.NumQubits
	r.perQubit = r.c.PerQubitGates()
	r.cursor = make([]int, n)
	r.lastUsed = make([]int64, n)
	r.home = make([]int, n)
	// Row-major sequential fill, the trivial mapping all three original
	// systems start from. MQT reserves its processing trap (trap 0).
	trap := 0
	if r.algo == MQT {
		trap = 1
	}
	for q := 0; q < n; q++ {
		for r.eng.Free(trap) == 0 {
			trap++
			if trap >= r.grid.NumTraps() {
				return fmt.Errorf("baseline: grid full while placing qubit %d", q)
			}
		}
		if err := r.eng.Place(q, trap); err != nil {
			return err
		}
		r.home[q] = trap
	}
	return nil
}

func (r *gridRouter) run() error {
	for q := 0; q < r.c.NumQubits; q++ {
		if err := r.flushOneQubit(q); err != nil {
			return err
		}
	}
	for !r.g.Done() {
		// Cancellation aborts within one frontier step, mirroring the
		// MUSS-TI scheduler's contract.
		if err := r.ctx.Err(); err != nil {
			return err
		}
		frontier := r.g.Frontier()
		progressed := false
		// All baselines execute already-co-located gates first; this is
		// standard greedy behaviour in [55] and [13]. MQT's discipline
		// executes only at the processing site, so co-location elsewhere
		// does not qualify.
		if r.algo != MQT {
			for _, id := range frontier {
				if r.g.Executed(id) {
					continue
				}
				a, b := r.operands(id)
				if r.eng.ZoneOf(a) == r.eng.ZoneOf(b) {
					if err := r.executeNode(id); err != nil {
						return err
					}
					progressed = true
				}
			}
			if progressed {
				continue
			}
		}
		id := frontier[0]
		if err := r.routeAndExecute(id); err != nil {
			return err
		}
	}
	for q := 0; q < r.c.NumQubits; q++ {
		if err := r.flushOneQubit(q); err != nil {
			return err
		}
	}
	return nil
}

func (r *gridRouter) operands(id int) (int, int) {
	g := r.g.Nodes[id].Gate
	return g.Qubits[0], g.Qubits[1]
}

func (r *gridRouter) executeNode(id int) error {
	a, b := r.operands(id)
	if err := r.eng.Gate2(a, b); err != nil {
		return fmt.Errorf("baseline %s: gate %v: %w", r.algo, r.g.Nodes[id].Gate, err)
	}
	r.clock++
	r.lastUsed[a] = r.clock
	r.lastUsed[b] = r.clock
	r.executed++
	r.obs.GateScheduled(r.executed, len(r.g.Nodes))
	gi := r.g.Nodes[id].GateIndex
	for _, q := range [2]int{a, b} {
		if r.cursor[q] < len(r.perQubit[q]) && r.perQubit[q][r.cursor[q]] == gi {
			r.cursor[q]++
		} else {
			return fmt.Errorf("baseline: cursor desync on qubit %d", q)
		}
	}
	r.g.Execute(id)
	for _, q := range [2]int{a, b} {
		if err := r.flushOneQubit(q); err != nil {
			return err
		}
	}
	return nil
}

func (r *gridRouter) flushOneQubit(q int) error {
	for r.cursor[q] < len(r.perQubit[q]) {
		gi := r.perQubit[q][r.cursor[q]]
		gate := r.c.Gates[gi]
		if gate.Kind.IsTwoQubit() {
			return nil
		}
		var err error
		if gate.Kind == circuit.KindMeasure {
			err = r.eng.Measure(q)
		} else {
			err = r.eng.Gate1(q)
		}
		if err != nil {
			return err
		}
		r.cursor[q]++
	}
	return nil
}

func (r *gridRouter) routeAndExecute(id int) error {
	switch r.algo {
	case Murali:
		return r.routeMurali(id)
	case Dai:
		return r.routeDai(id)
	case MQT:
		return r.routeMQT(id)
	}
	return fmt.Errorf("baseline: unknown algorithm %d", r.algo)
}
