package baseline

import (
	"context"
	"fmt"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/core"
)

// compiler adapts one baseline Algorithm to the core.Compiler interface.
// All three baselines target the monolithic QCCD grid only; handing them an
// EML-QCCD device is an error, not a silent conversion — the paper's
// comparison is precisely grid compilers versus the EML machine.
type compiler struct {
	algo Algorithm
}

func (b compiler) Name() string        { return b.algo.RegistryName() }
func (b compiler) DisplayName() string { return b.algo.String() }

// DefaultConfig: the zero CompileConfig IS the baselines' default (each
// zero field reads as "my own default" — k=4 for Dai, Table-1 physics).
// Declaring it explicitly pins the nil-config contract for harness cache
// keys rather than relying on the absent-interface fallback.
func (b compiler) DefaultConfig() core.CompileConfig { return core.CompileConfig{} }

// SupportsTarget: grid only, so harnesses can skip EML-device sweeps for
// the baselines up front instead of failing mid-run.
func (b compiler) SupportsTarget(t arch.Target) bool {
	_, ok := t.(*arch.Grid)
	return ok
}

func (b compiler) Compile(ctx context.Context, c *circuit.Circuit, t arch.Target, cfg *core.CompileConfig) (*core.Result, error) {
	g, ok := t.(*arch.Grid)
	if !ok {
		return nil, fmt.Errorf("baseline: %s targets the monolithic QCCD grid, not %T", b.algo, t)
	}
	return CompileContext(ctx, b.algo, c, g, fromConfig(cfg))
}

func init() {
	for _, a := range []Algorithm{Murali, Dai, MQT} {
		core.MustRegisterCompiler(compiler{algo: a})
	}
}
