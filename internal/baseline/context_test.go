package baseline

import (
	"context"
	"errors"
	"testing"
	"time"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
)

// TestCompileContextPreCancelled: a cancelled context aborts a baseline
// compile at the first frontier step and surfaces ctx.Err().
func TestCompileContextPreCancelled(t *testing.T) {
	c := bench.MustByName("Adder_n128")
	g := arch.MustNewGrid(3, 4, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	for _, algo := range []Algorithm{Murali, Dai, MQT} {
		if _, err := CompileContext(ctx, algo, c, g, Options{}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", algo, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-cancelled compiles took %s, want a prompt return", elapsed)
	}
}

// countingObserver tallies callbacks for the observer cross-checks.
type countingObserver struct {
	gatesDone, gatesTotal      int
	shuttles, evictions, swaps int
}

func (o *countingObserver) GateScheduled(done, total int) { o.gatesDone, o.gatesTotal = done, total }
func (o *countingObserver) Shuttle(q, from, to int)       { o.shuttles++ }
func (o *countingObserver) Eviction(victim, from, to int) { o.evictions++ }
func (o *countingObserver) SwapInserted(a, b int)         { o.swaps++ }

// TestObserverSeesBaselineEvents: the observer's move tally must match the
// engine's shuttle metric (every hop and eviction reports exactly once),
// and the final gate tick must cover the whole circuit.
func TestObserverSeesBaselineEvents(t *testing.T) {
	c := bench.MustByName("QAOA_n32")
	g := arch.MustNewGrid(2, 2, 12)
	obs := &countingObserver{}
	res, err := Compile(Murali, c, g, Options{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.gatesDone != obs.gatesTotal || obs.gatesDone == 0 {
		t.Errorf("final gate tick %d/%d, want a complete pass", obs.gatesDone, obs.gatesTotal)
	}
	if got := obs.shuttles + obs.evictions; got != res.Metrics.Shuttles {
		t.Errorf("observer saw %d moves, metrics count %d shuttles", got, res.Metrics.Shuttles)
	}
	if obs.swaps != 0 {
		t.Errorf("baselines insert no SWAPs, observer saw %d", obs.swaps)
	}
}

// TestObserverDoesNotChangeBaselineSchedule: observation is read-only.
func TestObserverDoesNotChangeBaselineSchedule(t *testing.T) {
	c := bench.MustByName("QAOA_n32")
	g := arch.MustNewGrid(2, 2, 12)
	bare, err := Compile(Dai, c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Compile(Dai, c, g, Options{Observer: &countingObserver{}})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Metrics != observed.Metrics {
		t.Errorf("metrics differ with observer attached: %+v vs %+v", bare.Metrics, observed.Metrics)
	}
}
