package sim

import (
	"fmt"

	"mussti/internal/circuit"
)

// VerifySchedule independently re-checks a recorded trace against the
// source circuit and the device description. It is deliberately a second
// implementation — it shares no state with Engine — so a scheduler bug
// that slipped past the engine's per-op checks is caught here:
//
//  1. Occupancy: replayed zone loads never exceed capacity, ions are where
//     the trace says they are, and moves only touch placed ions.
//  2. Gate legality: two-qubit gates run in one gate-capable zone; fiber
//     gates span optical zones of two different modules.
//  3. Program order: for every qubit, the logical two-qubit gates execute
//     in exactly the order the circuit prescribes (inserted SWAPs are
//     transparent: they permute the logical↔physical binding, not the
//     program).
//  4. Timing: operations touching a shared zone or qubit never overlap.
//
// initial maps each logical qubit to its starting zone.
func VerifySchedule(c *circuit.Circuit, zones []ZoneInfo, initial []int, trace []Op) error {
	_, err := VerifyAndExtract(c, zones, initial, trace)
	return err
}

// VerifyAndExtract verifies the schedule like VerifySchedule and, on
// success, returns the order in which the circuit's gates (indices into
// c.Gates) were executed. The order is a topological reordering of the
// program: per-qubit order is preserved, and only gates with disjoint
// supports commute past each other — which is why executing it yields the
// same unitary as the program order (see internal/quantum's end-to-end
// semantic test).
func VerifyAndExtract(c *circuit.Circuit, zones []ZoneInfo, initial []int, trace []Op) ([]int, error) {
	v := &verifier{c: c, zones: zones, trace: trace}
	if err := v.run(initial); err != nil {
		return nil, err
	}
	return v.executed, nil
}

type verifier struct {
	c     *circuit.Circuit
	zones []ZoneInfo
	trace []Op

	loc      []int // logical qubit -> zone
	load     []int // zone -> ion count
	busyZone []float64
	busyQ    []float64

	// perQubit / cursor mirror the scheduler's program-order bookkeeping.
	perQubit [][]int
	cursor   []int

	// pendingSwap counts non-program fiber ops per unordered pair; at
	// three, the pair's logical bindings exchange (an inserted SWAP).
	pendingSwap map[[2]int]int

	// executed records consumed circuit gate indices in execution order.
	executed []int
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (v *verifier) run(initial []int) error {
	n := v.c.NumQubits
	if len(initial) != n {
		return fmt.Errorf("verify: initial mapping has %d entries for %d qubits", len(initial), n)
	}
	v.loc = make([]int, n)
	v.load = make([]int, len(v.zones))
	v.busyZone = make([]float64, len(v.zones))
	v.busyQ = make([]float64, n)
	v.perQubit = make([][]int, n)
	v.cursor = make([]int, n)
	v.pendingSwap = make(map[[2]int]int)
	for q, z := range initial {
		if z < 0 || z >= len(v.zones) {
			return fmt.Errorf("verify: qubit %d starts in invalid zone %d", q, z)
		}
		v.loc[q] = z
		v.load[z]++
		if v.load[z] > v.zones[z].Capacity {
			return fmt.Errorf("verify: initial mapping overfills zone %d", z)
		}
	}
	for gi, g := range v.c.Gates {
		for _, q := range g.Operands() {
			v.perQubit[q] = append(v.perQubit[q], gi)
		}
	}

	for i, op := range v.trace {
		if err := v.step(i, op); err != nil {
			return err
		}
	}
	// Every circuit gate must have been executed.
	for q := 0; q < n; q++ {
		if v.cursor[q] != len(v.perQubit[q]) {
			return fmt.Errorf("verify: qubit %d executed %d of %d gates", q, v.cursor[q], len(v.perQubit[q]))
		}
	}
	// No half-finished inserted SWAPs. Report the smallest offending pair,
	// not a random one, so a failing verification prints the same error on
	// every run.
	var worst [2]int
	found := false
	//mussti:allow=determinism deterministic min-selection: every iteration order yields the smallest pair
	for pair := range v.pendingSwap {
		if !found || pair[0] < worst[0] || (pair[0] == worst[0] && pair[1] < worst[1]) {
			worst, found = pair, true
		}
	}
	if found {
		return fmt.Errorf("verify: pair %v has %d dangling fiber ops (incomplete SWAP)", worst, v.pendingSwap[worst])
	}
	return nil
}

func (v *verifier) step(i int, op Op) error {
	switch op.Kind {
	case "chainswap":
		return v.reserveZone(i, op, op.Zone)
	case "split":
		return v.reserveZone(i, op, op.Zone)
	case "move":
		// Transit; the merge performs the occupancy update.
		return nil
	case "merge":
		q := op.Qubits[0]
		src, dst := op.ZoneB, op.Zone
		if v.loc[q] != src {
			return fmt.Errorf("verify: op %d merges qubit %d from zone %d but it is in %d", i, q, src, v.loc[q])
		}
		if v.load[dst] >= v.zones[dst].Capacity {
			return fmt.Errorf("verify: op %d overfills zone %d", i, dst)
		}
		v.load[src]--
		v.load[dst]++
		v.loc[q] = dst
		return v.reserveZone(i, op, dst)
	case "gate1":
		q := op.Qubits[0]
		gi, err := v.nextGate(q)
		if err != nil {
			return fmt.Errorf("verify: op %d: %w", i, err)
		}
		g := v.c.Gates[gi]
		if !g.Kind.IsOneQubit() {
			return fmt.Errorf("verify: op %d executes 1q op but program expects %v", i, g)
		}
		v.cursor[q]++
		v.executed = append(v.executed, gi)
		return v.reserveQubits(i, op)
	case "gate2":
		a, b := op.Qubits[0], op.Qubits[1]
		if v.loc[a] != op.Zone || v.loc[b] != op.Zone {
			return fmt.Errorf("verify: op %d gate2 in zone %d but qubits at %d,%d", i, op.Zone, v.loc[a], v.loc[b])
		}
		if !v.zones[op.Zone].GateCapable {
			return fmt.Errorf("verify: op %d gate2 in non-gate-capable zone %d", i, op.Zone)
		}
		if err := v.consumeTwoQubit(a, b); err != nil {
			return fmt.Errorf("verify: op %d: %w", i, err)
		}
		return v.reserveQubits(i, op)
	case "fiber":
		a, b := op.Qubits[0], op.Qubits[1]
		za, zb := v.loc[a], v.loc[b]
		if za != op.Zone || zb != op.ZoneB {
			return fmt.Errorf("verify: op %d fiber zones %d/%d but qubits at %d/%d", i, op.Zone, op.ZoneB, za, zb)
		}
		if !v.zones[za].Optical || !v.zones[zb].Optical {
			return fmt.Errorf("verify: op %d fiber outside optical zones", i)
		}
		if v.zones[za].Module == v.zones[zb].Module {
			return fmt.Errorf("verify: op %d fiber within module %d", i, v.zones[za].Module)
		}
		if v.isProgramGate(a, b) {
			if err := v.consumeTwoQubit(a, b); err != nil {
				return fmt.Errorf("verify: op %d: %w", i, err)
			}
			return v.reserveQubits(i, op)
		}
		// Not a program gate: must belong to an inserted SWAP — three
		// fiber MS gates on the pair, after which the logical bindings
		// exchange. Count them per pair.
		key := pairKey(a, b)
		v.pendingSwap[key]++
		if v.pendingSwap[key] == 3 {
			delete(v.pendingSwap, key)
			v.loc[a], v.loc[b] = v.loc[b], v.loc[a]
		}
		return v.reserveQubits(i, op)
	default:
		return fmt.Errorf("verify: op %d has unknown kind %q", i, op.Kind)
	}
}

// nextGate returns the next program gate index for qubit q.
func (v *verifier) nextGate(q int) (int, error) {
	if v.cursor[q] >= len(v.perQubit[q]) {
		return 0, fmt.Errorf("qubit %d has no remaining program gates", q)
	}
	return v.perQubit[q][v.cursor[q]], nil
}

// isProgramGate reports whether the next program gate of both qubits is the
// same two-qubit gate on exactly this pair.
func (v *verifier) isProgramGate(a, b int) bool {
	ga, errA := v.nextGate(a)
	gb, errB := v.nextGate(b)
	if errA != nil || errB != nil || ga != gb {
		return false
	}
	g := v.c.Gates[ga]
	return g.Kind.IsTwoQubit() && g.Touches(a) && g.Touches(b)
}

func (v *verifier) consumeTwoQubit(a, b int) error {
	ga, errA := v.nextGate(a)
	gb, errB := v.nextGate(b)
	if errA != nil {
		return errA
	}
	if errB != nil {
		return errB
	}
	if ga != gb {
		return fmt.Errorf("qubits %d,%d disagree on next gate (%d vs %d)", a, b, ga, gb)
	}
	g := v.c.Gates[ga]
	if !g.Kind.IsTwoQubit() {
		return fmt.Errorf("program gate %d is not two-qubit: %v", ga, g)
	}
	v.cursor[a]++
	v.cursor[b]++
	v.executed = append(v.executed, ga)
	return nil
}

// reserveZone checks zone-serialised timing for shuttle primitives.
func (v *verifier) reserveZone(i int, op Op, zone int) error {
	if op.StartUS+1e-9 < v.busyZone[zone] {
		return fmt.Errorf("verify: op %d starts at %v before zone %d frees at %v", i, op.StartUS, zone, v.busyZone[zone])
	}
	v.busyZone[zone] = op.StartUS + op.DurUS
	return nil
}

// reserveQubits checks qubit-serialised timing for gates.
func (v *verifier) reserveQubits(i int, op Op) error {
	for _, q := range op.Qubits {
		if op.StartUS+1e-9 < v.busyQ[q] {
			return fmt.Errorf("verify: op %d starts at %v before qubit %d frees at %v", i, op.StartUS, q, v.busyQ[q])
		}
		v.busyQ[q] = op.StartUS + op.DurUS
	}
	return nil
}
