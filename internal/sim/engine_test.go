package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mussti/internal/physics"
)

// twoModuleZones builds a minimal EML-like zone set: per module one storage,
// one operation, one optical zone of the given capacity.
func twoModuleZones(capacity int) []ZoneInfo {
	var zs []ZoneInfo
	for m := 0; m < 2; m++ {
		zs = append(zs,
			ZoneInfo{Capacity: capacity, GateCapable: false, Optical: false, Module: m},
			ZoneInfo{Capacity: capacity, GateCapable: true, Optical: false, Module: m},
			ZoneInfo{Capacity: capacity, GateCapable: true, Optical: true, Module: m},
		)
	}
	return zs
}

func TestPlaceAndLegality(t *testing.T) {
	e := NewEngine(twoModuleZones(2), 4, physics.Default())
	if err := e.Place(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Place(0, 1); err == nil {
		t.Error("double placement accepted")
	}
	if err := e.Place(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Place(2, 0); err == nil {
		t.Error("placement into full zone accepted")
	}
	if err := e.Place(9, 0); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	if err := e.Place(2, 99); err == nil {
		t.Error("invalid zone accepted")
	}
	if e.ZoneOf(0) != 0 || e.ZoneOf(3) != -1 {
		t.Error("ZoneOf bookkeeping wrong")
	}
}

func TestMoveUpdatesOccupancyAndMetrics(t *testing.T) {
	e := NewEngine(twoModuleZones(4), 3, physics.Default())
	for q, z := range []int{0, 0, 0} {
		if err := e.Place(q, z); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Move(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if e.ZoneOf(0) != 1 {
		t.Errorf("zone of 0 = %d, want 1", e.ZoneOf(0))
	}
	m := e.Metrics()
	if m.Shuttles != 1 {
		t.Errorf("shuttles = %d, want 1", m.Shuttles)
	}
	// Qubit 0 was at the chain head (edge): no chain swaps.
	if m.ChainSwaps != 0 {
		t.Errorf("chain swaps = %d, want 0", m.ChainSwaps)
	}
	// Split(80) + Move(100um/2) + Merge(80) = 210us.
	if math.Abs(m.MakespanUS-210) > 1e-9 {
		t.Errorf("makespan = %v, want 210", m.MakespanUS)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestMoveInteriorIonPaysChainSwaps(t *testing.T) {
	e := NewEngine(twoModuleZones(5), 5, physics.Default())
	for q := 0; q < 5; q++ {
		if err := e.Place(q, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Chain is [0 1 2 3 4]; qubit 2 sits dead centre: 2 swaps to an edge.
	if err := e.Move(2, 1, 100); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().ChainSwaps; got != 2 {
		t.Errorf("chain swaps = %d, want 2", got)
	}
	// Edge ion pays none.
	if err := e.Move(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().ChainSwaps; got != 2 {
		t.Errorf("chain swaps after edge move = %d, want still 2", got)
	}
}

func TestMoveErrors(t *testing.T) {
	e := NewEngine(twoModuleZones(1), 3, physics.Default())
	if err := e.Place(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Place(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Move(0, 1, 100); err == nil {
		t.Error("move into full zone accepted")
	}
	if err := e.Move(0, 0, 100); err == nil {
		t.Error("move into own zone accepted")
	}
	if err := e.Move(2, 1, 100); err == nil {
		t.Error("move of unplaced qubit accepted")
	}
	if err := e.Move(0, 77, 100); err == nil {
		t.Error("move to invalid zone accepted")
	}
}

func TestGate2Legality(t *testing.T) {
	e := NewEngine(twoModuleZones(4), 4, physics.Default())
	e.Place(0, 1)
	e.Place(1, 1)
	e.Place(2, 0)
	e.Place(3, 4)
	if err := e.Gate2(0, 1); err != nil {
		t.Errorf("co-located gate rejected: %v", err)
	}
	if err := e.Gate2(0, 3); err == nil {
		t.Error("cross-zone gate accepted")
	}
	e.Place(0, 0)
	if err := e.Gate2(0, 2); err == nil {
		t.Error("2q gate in storage (non-gate-capable) accepted")
	}
}

func TestGate2FidelityDependsOnChainLength(t *testing.T) {
	p := physics.Default()
	run := func(extra int) float64 {
		e := NewEngine(twoModuleZones(16), 16, p)
		for q := 0; q < 2+extra; q++ {
			if err := e.Place(q, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Gate2(0, 1); err != nil {
			t.Fatal(err)
		}
		return e.Metrics().Fidelity.Log()
	}
	if run(0) <= run(10) {
		t.Error("gate in longer chain must have lower fidelity")
	}
}

func TestFiberLegality(t *testing.T) {
	e := NewEngine(twoModuleZones(4), 4, physics.Default())
	e.Place(0, 2) // optical module 0
	e.Place(1, 5) // optical module 1
	e.Place(2, 1) // operation module 0
	e.Place(3, 2) // optical module 0
	if err := e.Fiber(0, 1); err != nil {
		t.Errorf("valid fiber gate rejected: %v", err)
	}
	if err := e.Fiber(0, 2); err == nil {
		t.Error("fiber gate with non-optical partner accepted")
	}
	if err := e.Fiber(0, 3); err == nil {
		t.Error("fiber gate within one module accepted")
	}
	m := e.Metrics()
	if m.FiberGates != 1 {
		t.Errorf("fiber gates = %d, want 1", m.FiberGates)
	}
}

func TestInsertedSwapExchangesBindings(t *testing.T) {
	e := NewEngine(twoModuleZones(4), 4, physics.Default())
	e.Place(0, 2)
	e.Place(1, 5)
	if err := e.InsertedSwap(0, 1); err != nil {
		t.Fatal(err)
	}
	if e.ZoneOf(0) != 5 || e.ZoneOf(1) != 2 {
		t.Errorf("swap did not exchange positions: q0@%d q1@%d", e.ZoneOf(0), e.ZoneOf(1))
	}
	m := e.Metrics()
	if m.FiberGates != 3 {
		t.Errorf("fiber gates = %d, want 3 (a SWAP is three MS gates)", m.FiberGates)
	}
	if m.InsertedSwaps != 1 {
		t.Errorf("inserted swaps = %d, want 1", m.InsertedSwaps)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestHeatAccumulationDegradesLaterGates(t *testing.T) {
	p := physics.Default()
	e := NewEngine(twoModuleZones(4), 3, p)
	e.Place(0, 1)
	e.Place(1, 1)
	e.Place(2, 0)
	if err := e.Gate2(0, 1); err != nil {
		t.Fatal(err)
	}
	cold := e.Metrics().Fidelity.Log()
	// Heat the operation zone with shuttle traffic.
	for i := 0; i < 5; i++ {
		if err := e.Move(2, 1, 100); err != nil {
			t.Fatal(err)
		}
		if err := e.Move(2, 0, 100); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Metrics().Fidelity.Log()
	if err := e.Gate2(0, 1); err != nil {
		t.Fatal(err)
	}
	hotGate := e.Metrics().Fidelity.Log() - before
	if hotGate >= cold {
		t.Errorf("hot-zone gate logF %v not worse than cold %v", hotGate, cold)
	}
}

func TestMakespanCreditsParallelZones(t *testing.T) {
	e := NewEngine(twoModuleZones(4), 4, physics.Default())
	e.Place(0, 1)
	e.Place(1, 1)
	e.Place(2, 4)
	e.Place(3, 4)
	// Two gates in different modules overlap fully.
	e.Gate2(0, 1)
	e.Gate2(2, 3)
	if got := e.Metrics().MakespanUS; got != 40 {
		t.Errorf("parallel makespan = %v, want 40", got)
	}
	// A second gate in the same zone serialises.
	e.Gate2(0, 1)
	if got := e.Metrics().MakespanUS; got != 80 {
		t.Errorf("serial makespan = %v, want 80", got)
	}
}

func TestMeasureCountsSeparately(t *testing.T) {
	e := NewEngine(twoModuleZones(4), 2, physics.Default())
	e.Place(0, 0)
	if err := e.Measure(0); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Measurements != 1 || m.Gates1 != 0 {
		t.Errorf("measure bookkeeping: meas=%d g1=%d", m.Measurements, m.Gates1)
	}
	if err := e.Gate1(0); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().Gates1; got != 1 {
		t.Errorf("gates1 = %d, want 1", got)
	}
}

func TestTraceRecording(t *testing.T) {
	e := NewEngine(twoModuleZones(4), 2, physics.Default())
	e.EnableTrace()
	e.Place(0, 0)
	e.Place(1, 1)
	e.Move(0, 1, 100)
	e.Gate2(0, 1)
	tr := e.Trace()
	kinds := make(map[string]int)
	for _, op := range tr {
		kinds[op.Kind]++
	}
	if kinds["split"] != 1 || kinds["move"] != 1 || kinds["merge"] != 1 || kinds["gate2"] != 1 {
		t.Errorf("trace kinds = %v", kinds)
	}
	// Ops are timestamped in order along shared resources.
	for i := 1; i < len(tr); i++ {
		if tr[i].StartUS < tr[i-1].StartUS {
			t.Errorf("trace timestamps out of order: %v then %v", tr[i-1], tr[i])
		}
	}
}

func TestSwapsToEdge(t *testing.T) {
	e := NewEngine(twoModuleZones(5), 5, physics.Default())
	for q := 0; q < 5; q++ {
		e.Place(q, 0)
	}
	wants := []int{0, 1, 2, 1, 0}
	for q, want := range wants {
		if got := e.SwapsToEdge(q); got != want {
			t.Errorf("SwapsToEdge(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestPropertyRandomOpsKeepConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		zones := twoModuleZones(3)
		e := NewEngine(zones, 8, physics.Default())
		placed := 0
		for q := 0; q < 8 && placed < 8; q++ {
			z := rng.Intn(len(zones))
			if e.Free(z) > 0 {
				if err := e.Place(q, z); err != nil {
					return false
				}
				placed++
			}
		}
		for i := 0; i < 100; i++ {
			q := rng.Intn(placed)
			if e.ZoneOf(q) == -1 {
				continue
			}
			z := rng.Intn(len(zones))
			if z == e.ZoneOf(q) || e.Free(z) == 0 {
				continue
			}
			if err := e.Move(q, z, float64(rng.Intn(300))); err != nil {
				return false
			}
		}
		return e.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyShuttleCountMatchesMoves(t *testing.T) {
	f := func(nMoves uint8) bool {
		moves := int(nMoves%50) + 1
		e := NewEngine(twoModuleZones(4), 1, physics.Default())
		if err := e.Place(0, 0); err != nil {
			return false
		}
		cur := 0
		for i := 0; i < moves; i++ {
			next := (cur + 1) % 3 // cycle within module 0
			if err := e.Move(0, next, 100); err != nil {
				return false
			}
			cur = next
		}
		return e.Metrics().Shuttles == moves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
