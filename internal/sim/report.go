package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ZoneReport summarises one zone's activity over a run: how busy it was,
// how much motional heat it accumulated, and how its chain occupancy ended.
type ZoneReport struct {
	Zone        int     `json:"zone"`
	Module      int     `json:"module"`
	Optical     bool    `json:"optical"`
	GateCapable bool    `json:"gateCapable"`
	BusyUS      float64 `json:"busyUS"`      // summed op time charged to the zone
	Utilization float64 `json:"utilization"` // BusyUS / makespan
	Heat        float64 `json:"heat"`        // accumulated n̄
	FinalLoad   int     `json:"finalLoad"`
	Capacity    int     `json:"capacity"`
}

// Report aggregates a run for human consumption and regression tests.
type Report struct {
	Metrics Metrics      `json:"-"`
	Zones   []ZoneReport `json:"zones"`

	// Summary numbers.
	MakespanUS   float64 `json:"makespanUS"`
	Shuttles     int     `json:"shuttles"`
	ChainSwaps   int     `json:"chainSwaps"`
	FiberGates   int     `json:"fiberGates"`
	Log10F       float64 `json:"log10Fidelity"`
	HottestZone  int     `json:"hottestZone"`
	HottestHeat  float64 `json:"hottestHeat"`
	BusiestZone  int     `json:"busiestZone"`
	MaxUtilShare float64 `json:"maxUtilization"`
}

// BuildReport computes the per-zone activity report. It requires the
// engine to have been created with EnableTrace (the per-zone busy time is
// reconstructed from the trace); heat and occupancy come from live state.
func (e *Engine) BuildReport() Report {
	m := e.Metrics()
	r := Report{
		Metrics:    m,
		MakespanUS: m.MakespanUS,
		Shuttles:   m.Shuttles,
		ChainSwaps: m.ChainSwaps,
		FiberGates: m.FiberGates,
		Log10F:     m.Fidelity.Log10(),
	}
	busy := make([]float64, len(e.zones))
	for _, op := range e.trace {
		switch op.Kind {
		case "fiber":
			busy[op.Zone] += op.DurUS
			if op.ZoneB >= 0 {
				busy[op.ZoneB] += op.DurUS
			}
		case "move":
			// Transit time belongs to neither chain.
		default:
			busy[op.Zone] += op.DurUS
		}
	}
	for z, info := range e.zones {
		zr := ZoneReport{
			Zone:        z,
			Module:      info.Module,
			Optical:     info.Optical,
			GateCapable: info.GateCapable,
			BusyUS:      busy[z],
			Heat:        e.heat[z],
			FinalLoad:   len(e.chains[z]),
			Capacity:    info.Capacity,
		}
		if m.MakespanUS > 0 {
			zr.Utilization = busy[z] / m.MakespanUS
		}
		r.Zones = append(r.Zones, zr)
		if zr.Heat > r.HottestHeat {
			r.HottestHeat, r.HottestZone = zr.Heat, z
		}
		if zr.Utilization > r.MaxUtilShare {
			r.MaxUtilShare, r.BusiestZone = zr.Utilization, z
		}
	}
	return r
}

// WriteText renders the report as an aligned table.
func (r Report) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan %.0fus  shuttles %d  chain swaps %d  fiber %d  log10F %.2f\n",
		r.MakespanUS, r.Shuttles, r.ChainSwaps, r.FiberGates, r.Log10F)
	fmt.Fprintf(&sb, "%-5s %-7s %-8s %-9s %-7s %-6s %s\n",
		"zone", "module", "kind", "busy(us)", "util", "heat", "load")
	for _, z := range r.Zones {
		kind := "storage"
		switch {
		case z.Optical:
			kind = "optical"
		case z.GateCapable:
			kind = "op"
		}
		fmt.Fprintf(&sb, "%-5d %-7d %-8s %-9.0f %-7.2f %-6.1f %d/%d\n",
			z.Zone, z.Module, kind, z.BusyUS, z.Utilization, z.Heat, z.FinalLoad, z.Capacity)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// scheduleJSON is the serialised form of a trace.
type scheduleJSON struct {
	NumQubits int  `json:"numQubits"`
	Ops       []Op `json:"ops"`
}

// WriteScheduleJSON serialises a trace (plus register width) as JSON, the
// interchange format for external visualisers.
func WriteScheduleJSON(w io.Writer, numQubits int, trace []Op) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(scheduleJSON{NumQubits: numQubits, Ops: trace})
}

// ReadScheduleJSON reads a trace previously written by WriteScheduleJSON.
func ReadScheduleJSON(r io.Reader) (numQubits int, trace []Op, err error) {
	var s scheduleJSON
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return 0, nil, fmt.Errorf("sim: decoding schedule: %w", err)
	}
	if s.NumQubits <= 0 {
		return 0, nil, fmt.Errorf("sim: schedule has invalid qubit count %d", s.NumQubits)
	}
	return s.NumQubits, s.Ops, nil
}

// TopHotZones returns the n hottest zones, hottest first — the Fig. 7
// narrative ("small trap capacities lead to increased shuttling, which
// heats the trap") made inspectable.
func (r Report) TopHotZones(n int) []ZoneReport {
	zs := append([]ZoneReport(nil), r.Zones...)
	sort.Slice(zs, func(i, j int) bool { return zs[i].Heat > zs[j].Heat })
	if n > len(zs) {
		n = len(zs)
	}
	return zs[:n]
}
