// Package sim executes compiler-emitted operation sequences against a
// zone-occupancy model, enforcing hardware legality and accumulating the
// paper's three metrics: shuttle count, execution-time estimate and
// fidelity (§4 "Metrics").
//
// The engine is architecture-agnostic: both the EML-QCCD device and the
// monolithic baseline grid present themselves as a flat list of zones with
// capacity, gate capability, an optical flag and a module tag. Compilers
// drive the engine imperatively (Move, Gate2, Fiber, ...); the engine
// maintains chain order inside each trap — shuttling is only legal at chain
// edges, so an interior ion pays chain-Swap operations to reach an edge
// first, exactly the constraint Fig. 4 of the paper highlights.
//
// Timing uses per-resource availability: every operation starts when the
// zones and qubits it touches are free and occupies them for its duration.
// The makespan of the busiest resource is the execution-time estimate;
// independent zones overlap freely, which is how the paper's simulator
// credits parallelism across traps.
package sim

import (
	"fmt"

	"mussti/internal/physics"
)

// ZoneInfo describes one trap segment to the engine.
type ZoneInfo struct {
	// Capacity is the maximum chain length.
	Capacity int
	// GateCapable marks zones where two-qubit MS gates may run
	// (operation + optical zones on EML; every trap on the grid).
	GateCapable bool
	// Optical marks fiber-entanglement-capable zones.
	Optical bool
	// Module tags the owning module; fiber gates require different
	// modules. Grid traps all share module 0 (no fiber possible anyway).
	Module int
}

// Metrics aggregates everything the evaluation reports.
type Metrics struct {
	// Shuttles counts trap-to-trap ion transfers (one Split+Move+Merge
	// composite each) — the paper's headline metric.
	Shuttles int
	// ChainSwaps counts in-trap reorder swaps spent reaching chain edges.
	ChainSwaps int
	// Gates1, Gates2, FiberGates, Measurements count executed operations.
	Gates1       int
	Gates2       int
	FiberGates   int
	Measurements int
	// InsertedSwaps counts logical SWAPs added by the compiler (each is
	// three fiber-entangled MS gates, §3.3).
	InsertedSwaps int
	// MakespanUS is the execution-time estimate in µs.
	MakespanUS float64
	// Fidelity is the running log-space product over all operations.
	Fidelity physics.Fidelity
}

// Op is one timed entry of the optional execution trace.
type Op struct {
	Kind    string
	Qubits  []int
	Zone    int // primary zone (destination for moves)
	ZoneB   int // secondary zone (source for moves, partner for fiber); -1 if none
	StartUS float64
	DurUS   float64
}

// Engine is the execution state: chain contents, per-zone heat, resource
// availability and metrics.
type Engine struct {
	zones  []ZoneInfo
	params physics.Params

	chains  [][]int // per zone: ordered logical qubits (chain order)
	loc     []int   // per qubit: zone ID, -1 when unplaced
	idx     []int   // per qubit: position within its chain, -1 when unplaced
	heat    []float64
	availZ  []float64
	availQ  []float64
	nQubits int

	metrics Metrics
	trace   []Op
	keepOp  bool
}

// NewEngine builds an engine over the given zones for n logical qubits.
func NewEngine(zones []ZoneInfo, n int, p physics.Params) *Engine {
	e := &Engine{
		zones:   zones,
		params:  p,
		chains:  make([][]int, len(zones)),
		loc:     make([]int, n),
		idx:     make([]int, n),
		heat:    make([]float64, len(zones)),
		availZ:  make([]float64, len(zones)),
		availQ:  make([]float64, n),
		nQubits: n,
	}
	for i := range e.loc {
		e.loc[i] = -1
		e.idx[i] = -1
	}
	return e
}

// EnableTrace turns on op recording (used by tests and the CLI -trace flag).
func (e *Engine) EnableTrace() { e.keepOp = true }

// Trace returns the recorded ops (nil unless EnableTrace was called).
func (e *Engine) Trace() []Op { return e.trace }

// Metrics returns a snapshot of the accumulated metrics with the makespan
// finalised.
func (e *Engine) Metrics() Metrics {
	m := e.metrics
	m.MakespanUS = 0
	for _, t := range e.availZ {
		if t > m.MakespanUS {
			m.MakespanUS = t
		}
	}
	for _, t := range e.availQ {
		if t > m.MakespanUS {
			m.MakespanUS = t
		}
	}
	return m
}

// NumQubits returns the logical register width.
func (e *Engine) NumQubits() int { return e.nQubits }

// ZoneOf returns the zone currently holding q (-1 if unplaced).
//
//mussti:hotpath
func (e *Engine) ZoneOf(q int) int { return e.loc[q] }

// Chain returns the chain content of zone z in order. The returned slice is
// the engine's own storage; callers must not mutate it.
//
//mussti:hotpath
func (e *Engine) Chain(z int) []int { return e.chains[z] }

// Load returns the current chain length of zone z.
//
//mussti:hotpath
func (e *Engine) Load(z int) int { return len(e.chains[z]) }

// Free returns the remaining capacity of zone z.
//
//mussti:hotpath
func (e *Engine) Free(z int) int { return e.zones[z].Capacity - len(e.chains[z]) }

// Heat returns the accumulated motional heat of zone z.
func (e *Engine) Heat(z int) float64 { return e.heat[z] }

// Info returns the static description of zone z.
func (e *Engine) Info(z int) ZoneInfo { return e.zones[z] }

// Place sets the initial position of q without cost. It errors when the
// zone is full or q is already placed; initial mapping must be consistent.
func (e *Engine) Place(q, z int) error {
	if q < 0 || q >= e.nQubits {
		return fmt.Errorf("sim: place qubit %d out of range", q)
	}
	if e.loc[q] != -1 {
		return fmt.Errorf("sim: qubit %d already placed in zone %d", q, e.loc[q])
	}
	if z < 0 || z >= len(e.zones) {
		return fmt.Errorf("sim: place into invalid zone %d", z)
	}
	if len(e.chains[z]) >= e.zones[z].Capacity {
		return fmt.Errorf("sim: zone %d full (capacity %d)", z, e.zones[z].Capacity)
	}
	e.chains[z] = append(e.chains[z], q)
	e.loc[q] = z
	e.idx[q] = len(e.chains[z]) - 1
	return nil
}

// record appends a trace entry when tracing is on. It takes the (at most
// two) qubits as plain ints — q2 is -1 for one-qubit ops — so untraced runs,
// the steady state of every compile, build no []int argument at all: the
// Qubits slice is only materialised inside the keepOp branch.
//
//mussti:hotpath
func (e *Engine) record(kind string, q1, q2 int, zone, zoneB int, start, dur float64) {
	if e.keepOp {
		qs := []int{q1} //mussti:allow=hotalloc trace-only branch; untraced compiles never reach it
		if q2 >= 0 {
			qs = append(qs, q2)
		}
		e.trace = append(e.trace, Op{Kind: kind, Qubits: qs, Zone: zone, ZoneB: zoneB, StartUS: start, DurUS: dur})
	}
}

// indexInChain returns q's index within its chain. O(1): the engine tracks
// every qubit's chain position through Place/Move/InsertedSwap instead of
// scanning the chain (CheckConsistency still audits the tracked positions
// against the chains themselves).
//
//mussti:hotpath
//mussti:inline
func (e *Engine) indexInChain(q int) int {
	if e.loc[q] == -1 {
		panic(fmt.Sprintf("sim: chain index of unplaced qubit %d", q))
	}
	return e.idx[q]
}

// Move shuttles q from its current zone to dst, paying chain swaps to reach
// the nearer chain edge, then Split, Move (over distanceUM) and Merge. It
// errors when dst is full, identical to the source, or q is unplaced — all
// compiler bugs that must surface.
//
//mussti:hotpath
func (e *Engine) Move(q, dst int, distanceUM float64) error {
	src := e.loc[q]
	if src == -1 {
		return fmt.Errorf("sim: move of unplaced qubit %d", q)
	}
	if dst < 0 || dst >= len(e.zones) {
		return fmt.Errorf("sim: move to invalid zone %d", dst)
	}
	if dst == src {
		return fmt.Errorf("sim: qubit %d moved to its own zone %d", q, src)
	}
	if len(e.chains[dst]) >= e.zones[dst].Capacity {
		return fmt.Errorf("sim: move qubit %d to full zone %d (capacity %d)", q, dst, e.zones[dst].Capacity)
	}
	p := e.params

	idx := e.indexInChain(q)
	l := len(e.chains[src])
	swaps := idx
	if l-1-idx < swaps {
		swaps = l - 1 - idx
	}

	start := maxf(e.availZ[src], e.availZ[dst], e.availQ[q])
	t := start
	// Chain swaps to reach the nearer edge.
	for s := 0; s < swaps; s++ {
		e.heat[src] += p.SwapHeat
		e.metrics.Fidelity.MulLog(p.ShuttleLogF(p.SwapTimeUS, p.SwapHeat))
		e.record("chainswap", q, -1, src, -1, t, p.SwapTimeUS)
		t += p.SwapTimeUS
	}
	e.metrics.ChainSwaps += swaps

	// Split from the source chain.
	e.heat[src] += p.SplitHeat
	e.metrics.Fidelity.MulLog(p.ShuttleLogF(p.SplitTimeUS, p.SplitHeat))
	e.record("split", q, -1, src, -1, t, p.SplitTimeUS)
	t += p.SplitTimeUS
	srcFree := t // source zone is free once the ion has split off

	// Move over the physical distance.
	mt := p.MoveTimeUS(distanceUM)
	e.heat[dst] += p.MoveHeat
	e.metrics.Fidelity.MulLog(p.ShuttleLogF(mt, p.MoveHeat))
	e.record("move", q, -1, dst, src, t, mt)
	t += mt

	// Merge into the destination chain.
	e.heat[dst] += p.MergeHeat
	e.metrics.Fidelity.MulLog(p.ShuttleLogF(p.MergeTimeUS, p.MergeHeat))
	e.record("merge", q, -1, dst, src, t, p.MergeTimeUS)
	t += p.MergeTimeUS

	e.metrics.Shuttles++
	e.availZ[src] = srcFree
	e.availZ[dst] = t
	e.availQ[q] = t

	// Update occupancy: remove from src preserving order (re-indexing the
	// ions that shift down), append at dst edge.
	chain := e.chains[src]
	for j := idx; j < len(chain)-1; j++ {
		chain[j] = chain[j+1]
		e.idx[chain[j]] = j
	}
	e.chains[src] = chain[:len(chain)-1]
	e.chains[dst] = append(e.chains[dst], q)
	e.loc[q] = dst
	e.idx[q] = len(e.chains[dst]) - 1
	return nil
}

// Gate1 executes a one-qubit gate on q in place.
//
//mussti:hotpath
func (e *Engine) Gate1(q int) error {
	z := e.loc[q]
	if z == -1 {
		return fmt.Errorf("sim: 1q gate on unplaced qubit %d", q)
	}
	p := e.params
	start := maxf(e.availZ[z], e.availQ[q])
	e.metrics.Fidelity.MulLog(p.Gate1LogF(p.BackgroundLogF(e.heat[z])))
	e.record("gate1", q, -1, z, -1, start, p.Gate1TimeUS)
	end := start + p.Gate1TimeUS
	e.availZ[z] = end
	e.availQ[q] = end
	e.metrics.Gates1++
	return nil
}

// Measure executes a measurement; modelled like a one-qubit op with 1q
// duration (readout fidelity folded into Gate1Fidelity).
//
//mussti:hotpath
func (e *Engine) Measure(q int) error {
	if err := e.Gate1(q); err != nil {
		return err
	}
	e.metrics.Gates1--
	e.metrics.Measurements++
	return nil
}

// Gate2 executes a two-qubit MS gate; both qubits must share one
// gate-capable zone.
//
//mussti:hotpath
func (e *Engine) Gate2(a, b int) error {
	za, zb := e.loc[a], e.loc[b]
	if za == -1 || zb == -1 {
		return fmt.Errorf("sim: 2q gate on unplaced qubit (%d@%d, %d@%d)", a, za, b, zb)
	}
	if za != zb {
		return fmt.Errorf("sim: 2q gate %d-%d across zones %d and %d", a, b, za, zb)
	}
	if !e.zones[za].GateCapable {
		return fmt.Errorf("sim: 2q gate %d-%d in non-gate-capable zone %d", a, b, za)
	}
	p := e.params
	start := maxf(e.availZ[za], e.availQ[a], e.availQ[b])
	n := len(e.chains[za])
	e.metrics.Fidelity.MulLog(p.Gate2LogF(n, p.BackgroundLogF(e.heat[za])))
	e.record("gate2", a, b, za, -1, start, p.Gate2TimeUS)
	end := start + p.Gate2TimeUS
	e.availZ[za] = end
	e.availQ[a] = end
	e.availQ[b] = end
	e.metrics.Gates2++
	return nil
}

// Fiber executes one fiber-entangled two-qubit gate between qubits sitting
// in optical zones of two different modules.
//
//mussti:hotpath
func (e *Engine) Fiber(a, b int) error {
	za, zb := e.loc[a], e.loc[b]
	if za == -1 || zb == -1 {
		return fmt.Errorf("sim: fiber gate on unplaced qubit (%d@%d, %d@%d)", a, za, b, zb)
	}
	if za == zb {
		return fmt.Errorf("sim: fiber gate %d-%d within one zone %d", a, b, za)
	}
	ia, ib := e.zones[za], e.zones[zb]
	if !ia.Optical || !ib.Optical {
		return fmt.Errorf("sim: fiber gate %d-%d outside optical zones (%d:%v, %d:%v)", a, b, za, ia.Optical, zb, ib.Optical)
	}
	if ia.Module == ib.Module {
		return fmt.Errorf("sim: fiber gate %d-%d within module %d", a, b, ia.Module)
	}
	p := e.params
	start := maxf(e.availZ[za], e.availZ[zb], e.availQ[a], e.availQ[b])
	e.metrics.Fidelity.MulLog(p.FiberLogF(p.BackgroundLogF(e.heat[za]), p.BackgroundLogF(e.heat[zb])))
	e.record("fiber", a, b, za, zb, start, p.FiberTimeUS)
	end := start + p.FiberTimeUS
	e.availZ[za] = end
	e.availZ[zb] = end
	e.availQ[a] = end
	e.availQ[b] = end
	e.metrics.FiberGates++
	return nil
}

// InsertedSwap realises a compiler-inserted logical SWAP between qubits on
// different modules: three fiber-entangled MS gates (§3.3), after which the
// logical qubits exchange physical positions in the engine's bookkeeping.
//
//mussti:hotpath
func (e *Engine) InsertedSwap(a, b int) error {
	for i := 0; i < 3; i++ {
		if err := e.Fiber(a, b); err != nil {
			return fmt.Errorf("sim: inserted swap %d-%d: %w", a, b, err)
		}
	}
	e.metrics.InsertedSwaps++
	// Exchange the physical bindings: position (zone + chain slot) of a now
	// holds logical b and vice versa.
	za, zb := e.loc[a], e.loc[b]
	ia, ib := e.indexInChain(a), e.indexInChain(b)
	e.chains[za][ia], e.chains[zb][ib] = b, a
	e.loc[a], e.loc[b] = zb, za
	e.idx[a], e.idx[b] = ib, ia
	// Their availability timestamps travel with the logical qubits and are
	// already equal after the three fiber ops.
	return nil
}

// SwapsToEdge returns how many chain swaps a move of q would pay to reach
// the nearer edge of its current chain. Schedulers use it for cost
// estimates. Returns 0 for unplaced qubits.
//
//mussti:hotpath
func (e *Engine) SwapsToEdge(q int) int {
	if e.loc[q] == -1 {
		return 0
	}
	idx := e.indexInChain(q)
	l := len(e.chains[e.loc[q]])
	s := idx
	if l-1-idx < s {
		s = l - 1 - idx
	}
	return s
}

// CheckConsistency verifies internal invariants: every placed qubit appears
// in exactly the chain its loc claims, chains respect capacity and contain
// no duplicates. Property tests run this after random op sequences.
func (e *Engine) CheckConsistency() error {
	seen := make(map[int]int)
	for z, chain := range e.chains {
		if len(chain) > e.zones[z].Capacity {
			return fmt.Errorf("sim: zone %d over capacity: %d > %d", z, len(chain), e.zones[z].Capacity)
		}
		for i, q := range chain {
			if prev, dup := seen[q]; dup {
				return fmt.Errorf("sim: qubit %d in zones %d and %d", q, prev, z)
			}
			seen[q] = z
			if e.loc[q] != z {
				return fmt.Errorf("sim: qubit %d loc %d but found in zone %d", q, e.loc[q], z)
			}
			if e.idx[q] != i {
				return fmt.Errorf("sim: qubit %d tracked at chain index %d but sits at %d in zone %d", q, e.idx[q], i, z)
			}
		}
	}
	for q, z := range e.loc {
		if z == -1 {
			continue
		}
		if zz, ok := seen[q]; !ok || zz != z {
			return fmt.Errorf("sim: qubit %d claims zone %d but chain disagrees", q, z)
		}
	}
	return nil
}

func maxf(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
