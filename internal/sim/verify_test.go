package sim

import (
	"strings"
	"testing"

	"mussti/internal/circuit"
	"mussti/internal/physics"
)

// buildAndTrace runs a tiny hand-driven schedule and returns everything the
// verifier needs.
func buildAndTrace(t *testing.T) (*circuit.Circuit, []ZoneInfo, []int, *Engine) {
	t.Helper()
	c := circuit.New("v", 4)
	c.H(0)
	c.MS(0, 1)
	c.MS(2, 3)
	c.MS(1, 2)
	c.Measure(0)

	zones := twoModuleZones(4)
	e := NewEngine(zones, 4, physics.Default())
	e.EnableTrace()
	initial := []int{1, 1, 1, 1} // all in module 0's operation zone
	for q, z := range initial {
		if err := e.Place(q, z); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.Gate1(0))
	must(e.Gate2(0, 1))
	must(e.Gate2(2, 3))
	must(e.Gate2(1, 2))
	must(e.Measure(0))
	return c, zones, initial, e
}

func TestVerifyAcceptsLegalSchedule(t *testing.T) {
	c, zones, initial, e := buildAndTrace(t)
	if err := VerifySchedule(c, zones, initial, e.Trace()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsMissingGates(t *testing.T) {
	c, zones, initial, e := buildAndTrace(t)
	trace := e.Trace()
	if err := VerifySchedule(c, zones, initial, trace[:len(trace)-2]); err == nil {
		t.Error("truncated schedule accepted")
	}
}

func TestVerifyRejectsReorderedGates(t *testing.T) {
	c, zones, initial, e := buildAndTrace(t)
	trace := append([]Op(nil), e.Trace()...)
	// Swap the two dependent gate2 ops (0,1) and (1,2).
	var i01, i12 = -1, -1
	for i, op := range trace {
		if op.Kind == "gate2" && op.Qubits[0] == 0 {
			i01 = i
		}
		if op.Kind == "gate2" && op.Qubits[0] == 1 {
			i12 = i
		}
	}
	trace[i01], trace[i12] = trace[i12], trace[i01]
	if err := VerifySchedule(c, zones, initial, trace); err == nil {
		t.Error("reordered dependent gates accepted")
	}
}

func TestVerifyRejectsWrongZoneGate(t *testing.T) {
	c, zones, initial, e := buildAndTrace(t)
	trace := append([]Op(nil), e.Trace()...)
	for i, op := range trace {
		if op.Kind == "gate2" {
			trace[i].Zone = 0 // claim it ran in the storage zone
			_ = op
			break
		}
	}
	err := VerifySchedule(c, zones, initial, trace)
	if err == nil {
		t.Fatal("gate in storage zone accepted")
	}
	if !strings.Contains(err.Error(), "zone") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestVerifyRejectsBadInitialMapping(t *testing.T) {
	c, zones, _, e := buildAndTrace(t)
	if err := VerifySchedule(c, zones, []int{0, 0}, e.Trace()); err == nil {
		t.Error("short initial mapping accepted")
	}
	if err := VerifySchedule(c, zones, []int{0, 0, 0, 99}, e.Trace()); err == nil {
		t.Error("invalid zone in initial mapping accepted")
	}
	over := []int{0, 0, 0, 0}
	zs := twoModuleZones(2) // capacity 2: four ions overfill zone 0
	if err := VerifySchedule(c, zs, over, e.Trace()); err == nil {
		t.Error("overfilled initial mapping accepted")
	}
}

func TestVerifyFiberAndInsertedSwap(t *testing.T) {
	c := circuit.New("f", 2)
	c.MS(0, 1)
	zones := twoModuleZones(4)
	e := NewEngine(zones, 2, physics.Default())
	e.EnableTrace()
	initial := []int{2, 5} // optical zones of modules 0 and 1
	for q, z := range initial {
		if err := e.Place(q, z); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Fiber(0, 1); err != nil {
		t.Fatal(err)
	}
	// An inserted SWAP after the program gate.
	if err := e.InsertedSwap(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(c, zones, initial, e.Trace()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsDanglingFiber(t *testing.T) {
	c := circuit.New("f", 2) // no gates at all
	zones := twoModuleZones(4)
	e := NewEngine(zones, 2, physics.Default())
	e.EnableTrace()
	initial := []int{2, 5}
	for q, z := range initial {
		if err := e.Place(q, z); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Fiber(0, 1); err != nil {
		t.Fatal(err)
	}
	// One lone fiber op: neither a program gate nor a complete SWAP; the
	// binding never exchanges, so cursors check out, but wait — there is
	// no program gate to consume either, so the single fiber op counts as
	// pending SWAP 1 of 3 and verification must flag nothing... except the
	// engine executed a gate the program does not contain, which shows up
	// as no error only if we don't require pendingSwap empty. Require it.
	err := VerifySchedule(c, zones, initial, e.Trace())
	if err == nil {
		t.Error("dangling fiber op accepted")
	}
}
