package sim

import (
	"bytes"
	"strings"
	"testing"

	"mussti/internal/physics"
)

func reportEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(twoModuleZones(4), 4, physics.Default())
	e.EnableTrace()
	for q, z := range []int{1, 1, 4, 4} {
		if err := e.Place(q, z); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Gate2(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Move(0, 2, 100); err != nil {
		t.Fatal(err)
	}
	if err := e.Move(2, 5, 100); err != nil {
		t.Fatal(err)
	}
	if err := e.Fiber(0, 2); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildReport(t *testing.T) {
	e := reportEngine(t)
	r := e.BuildReport()
	if r.Shuttles != 2 || r.FiberGates != 1 {
		t.Errorf("summary = %+v", r)
	}
	if len(r.Zones) != 6 {
		t.Fatalf("zones = %d, want 6", len(r.Zones))
	}
	// The optical zones hosted the fiber gate: both must show busy time.
	if r.Zones[2].BusyUS == 0 || r.Zones[5].BusyUS == 0 {
		t.Error("optical zones show no busy time after a fiber gate")
	}
	// Zones that moved ions accumulated heat.
	if r.HottestHeat <= 0 {
		t.Error("no heat recorded")
	}
	if r.MaxUtilShare <= 0 || r.MaxUtilShare > 1 {
		t.Errorf("utilization share = %v", r.MaxUtilShare)
	}
	// Final loads sum to the ion count.
	total := 0
	for _, z := range r.Zones {
		total += z.FinalLoad
	}
	if total != 4 {
		t.Errorf("final loads sum to %d, want 4", total)
	}
}

func TestReportWriteText(t *testing.T) {
	e := reportEngine(t)
	var buf bytes.Buffer
	if err := e.BuildReport().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"makespan", "optical", "zone"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	e := reportEngine(t)
	var buf bytes.Buffer
	if err := WriteScheduleJSON(&buf, 4, e.Trace()); err != nil {
		t.Fatal(err)
	}
	n, ops, err := ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("qubits = %d, want 4", n)
	}
	if len(ops) != len(e.Trace()) {
		t.Fatalf("ops = %d, want %d", len(ops), len(e.Trace()))
	}
	for i := range ops {
		a, b := ops[i], e.Trace()[i]
		if a.Kind != b.Kind || a.Zone != b.Zone || a.StartUS != b.StartUS {
			t.Errorf("op %d: %+v != %+v", i, a, b)
		}
	}
}

func TestScheduleJSONErrors(t *testing.T) {
	if _, _, err := ReadScheduleJSON(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, _, err := ReadScheduleJSON(strings.NewReader(`{"numQubits":0,"ops":[]}`)); err == nil {
		t.Error("zero qubit count accepted")
	}
}

func TestTopHotZones(t *testing.T) {
	e := reportEngine(t)
	r := e.BuildReport()
	top := r.TopHotZones(2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].Heat < top[1].Heat {
		t.Error("hot zones not sorted")
	}
	all := r.TopHotZones(100)
	if len(all) != len(r.Zones) {
		t.Errorf("TopHotZones(100) = %d, want all %d", len(all), len(r.Zones))
	}
}
