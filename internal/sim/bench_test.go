package sim

import (
	"testing"

	"mussti/internal/physics"
)

// benchEngine builds a two-zone engine with a full 16-ion chain in zone 0,
// so moving an interior ion pays chain swaps — the regime the schedulers'
// cost estimates (SwapsToEdge) and the Move hot path both care about.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	zones := []ZoneInfo{
		{Capacity: 16, GateCapable: true, Module: 0},
		{Capacity: 16, GateCapable: true, Module: 0},
	}
	e := NewEngine(zones, 17, physics.Default())
	for q := 0; q < 16; q++ {
		if err := e.Place(q, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Place(16, 1); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEngineMove measures a mid-chain round trip between two zones:
// each iteration picks whichever ion currently sits in the middle of zone
// 0's full chain (7 chain swaps to reach an edge, then split + move +
// merge) and brings it back edge-to-edge. Reading the middle slot keeps the
// swap cost constant across iterations — a fixed qubit would drift to the
// chain tail after one round trip and measure the swap-free best case.
func BenchmarkEngineMove(b *testing.B) {
	e := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := e.Chain(0)[8]
		if err := e.Move(q, 1, 100); err != nil {
			b.Fatal(err)
		}
		if err := e.Move(q, 0, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwapsToEdge measures the scheduler-facing chain-position query,
// called once per candidate zone inside every gatherCost evaluation.
func BenchmarkSwapsToEdge(b *testing.B) {
	e := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += e.SwapsToEdge(8)
	}
	_ = sink
}
