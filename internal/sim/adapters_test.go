package sim

import (
	"testing"

	"mussti/internal/arch"
	"mussti/internal/physics"
)

func TestZonesOfDevicePreservesIDsAndRoles(t *testing.T) {
	d := arch.MustNew(arch.DefaultConfig(32))
	zs := ZonesOfDevice(d)
	if len(zs) != d.NumZones() {
		t.Fatalf("zones = %d, want %d", len(zs), d.NumZones())
	}
	for i, z := range zs {
		az := d.Zone(i)
		if z.Module != az.Module || z.Capacity != az.Capacity {
			t.Errorf("zone %d: %+v vs arch %+v", i, z, az)
		}
		if z.Optical != (az.Level == arch.LevelOptical) {
			t.Errorf("zone %d optical flag wrong", i)
		}
		if z.GateCapable != az.Level.GateCapable() {
			t.Errorf("zone %d gate-capable flag wrong", i)
		}
	}
}

func TestZonesOfGridAllGateCapable(t *testing.T) {
	g := arch.MustNewGrid(3, 4, 8)
	zs := ZonesOfGrid(g)
	if len(zs) != 12 {
		t.Fatalf("zones = %d, want 12", len(zs))
	}
	for i, z := range zs {
		if !z.GateCapable || z.Optical || z.Module != 0 || z.Capacity != 8 {
			t.Errorf("trap %d: %+v", i, z)
		}
	}
}

func TestNewDeviceAndGridEngines(t *testing.T) {
	d := arch.MustNew(arch.DefaultConfig(32))
	e := NewDeviceEngine(d, 32, physics.Default())
	if e.NumQubits() != 32 {
		t.Errorf("device engine qubits = %d", e.NumQubits())
	}
	g := arch.MustNewGrid(2, 2, 12)
	e = NewGridEngine(g, 30, physics.Default())
	if e.NumQubits() != 30 {
		t.Errorf("grid engine qubits = %d", e.NumQubits())
	}
	if err := e.Place(0, 3); err != nil {
		t.Errorf("place on grid engine: %v", err)
	}
}
