package sim

import (
	"mussti/internal/arch"
	"mussti/internal/physics"
)

// ZonesOfDevice flattens an EML-QCCD device into the engine's zone list.
// Zone IDs are preserved, so compilers can use arch zone IDs directly.
func ZonesOfDevice(d *arch.Device) []ZoneInfo {
	zs := make([]ZoneInfo, len(d.Zones))
	for i, z := range d.Zones {
		zs[i] = ZoneInfo{
			Capacity:    z.Capacity,
			GateCapable: z.Level.GateCapable(),
			Optical:     z.Level == arch.LevelOptical,
			Module:      z.Module,
		}
	}
	return zs
}

// ZonesOfGrid flattens a baseline grid into the engine's zone list. Every
// trap is gate-capable and non-optical; trap IDs are preserved.
func ZonesOfGrid(g *arch.Grid) []ZoneInfo {
	zs := make([]ZoneInfo, g.NumTraps())
	for i := range zs {
		zs[i] = ZoneInfo{Capacity: g.Capacity, GateCapable: true, Optical: false, Module: 0}
	}
	return zs
}

// NewDeviceEngine builds an engine over an EML-QCCD device.
func NewDeviceEngine(d *arch.Device, n int, p physics.Params) *Engine {
	return NewEngine(ZonesOfDevice(d), n, p)
}

// NewGridEngine builds an engine over a baseline grid.
func NewGridEngine(g *arch.Grid, n int, p physics.Params) *Engine {
	return NewEngine(ZonesOfGrid(g), n, p)
}
