package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mussti/internal/circuit"
)

func chainCircuit(n int) *circuit.Circuit {
	c := circuit.New("chain", n)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	return c
}

func TestBuildChain(t *testing.T) {
	g := Build(chainCircuit(5)) // gates (0,1)(1,2)(2,3)(3,4): a path
	if len(g.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(g.Nodes))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	f := g.Frontier()
	if len(f) != 1 || f[0] != 0 {
		t.Errorf("frontier = %v, want [0]", f)
	}
	for i := 0; i < 4; i++ {
		f := g.Frontier()
		if len(f) != 1 || f[0] != i {
			t.Fatalf("step %d: frontier = %v", i, f)
		}
		g.Execute(i)
	}
	if !g.Done() {
		t.Error("graph not done after executing all nodes")
	}
}

func TestBuildIgnoresOneQubitGates(t *testing.T) {
	c := circuit.New("mix", 3)
	c.H(0)
	c.CX(0, 1)
	c.X(1)
	c.CZ(1, 2)
	c.Measure(2)
	g := Build(c)
	if len(g.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(g.Nodes))
	}
	if g.Nodes[0].GateIndex != 1 || g.Nodes[1].GateIndex != 3 {
		t.Errorf("gate indices = %d,%d want 1,3", g.Nodes[0].GateIndex, g.Nodes[1].GateIndex)
	}
}

func TestParallelFrontier(t *testing.T) {
	c := circuit.New("par", 4)
	c.CX(0, 1)
	c.CX(2, 3)
	c.CX(1, 2)
	g := Build(c)
	f := g.Frontier()
	if len(f) != 2 || f[0] != 0 || f[1] != 1 {
		t.Fatalf("frontier = %v, want [0 1]", f)
	}
	g.Execute(1)
	f = g.Frontier()
	if len(f) != 1 || f[0] != 0 {
		t.Fatalf("after exec 1: frontier = %v, want [0]", f)
	}
	g.Execute(0)
	f = g.Frontier()
	if len(f) != 1 || f[0] != 2 {
		t.Fatalf("after exec 0: frontier = %v, want [2]", f)
	}
}

func TestExecuteOutOfOrderPanics(t *testing.T) {
	g := Build(chainCircuit(4))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Execute did not panic")
		}
	}()
	g.Execute(2)
}

func TestExecuteTwicePanics(t *testing.T) {
	g := Build(chainCircuit(3))
	g.Execute(0)
	defer func() {
		if recover() == nil {
			t.Error("double Execute did not panic")
		}
	}()
	g.Execute(0)
}

func TestReset(t *testing.T) {
	g := Build(chainCircuit(4))
	g.Execute(0)
	g.Execute(1)
	g.Reset()
	if g.Remaining() != 3 {
		t.Errorf("remaining after reset = %d, want 3", g.Remaining())
	}
	f := g.Frontier()
	if len(f) != 1 || f[0] != 0 {
		t.Errorf("frontier after reset = %v, want [0]", f)
	}
}

func TestLayers(t *testing.T) {
	c := circuit.New("layers", 4)
	c.CX(0, 1) // layer 0
	c.CX(2, 3) // layer 0
	c.CX(1, 2) // layer 1
	c.CX(0, 1) // layer 2 (after node 2 via qubit 1, after node 0 via qubit 0 -> max+1)
	g := Build(c)
	layers := g.Layers()
	if len(layers) != 3 {
		t.Fatalf("layers = %d, want 3: %v", len(layers), layers)
	}
	if len(layers[0]) != 2 || len(layers[1]) != 1 || len(layers[2]) != 1 {
		t.Errorf("layer sizes = %d/%d/%d, want 2/1/1", len(layers[0]), len(layers[1]), len(layers[2]))
	}
	if g.CriticalPathLen() != 3 {
		t.Errorf("critical path = %d, want 3", g.CriticalPathLen())
	}
}

func TestWalkAheadWindow(t *testing.T) {
	g := Build(chainCircuit(10)) // 9 nodes in a path: layer i = node i
	var seen []int
	g.WalkAhead(3, func(layer int, n *Node) {
		seen = append(seen, n.ID)
		if layer != n.ID {
			t.Errorf("node %d reported layer %d", n.ID, layer)
		}
	})
	if len(seen) != 3 {
		t.Fatalf("walked %v, want first 3 layers", seen)
	}
	// After executing node 0, the window shifts.
	g.Execute(0)
	seen = nil
	g.WalkAhead(2, func(layer int, n *Node) { seen = append(seen, n.ID) })
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("walked %v after executing node 0, want [1 2]", seen)
	}
}

func TestWalkAheadZeroWindow(t *testing.T) {
	g := Build(chainCircuit(4))
	called := false
	g.WalkAhead(0, func(int, *Node) { called = true })
	if called {
		t.Error("k=0 walked nodes")
	}
}

// randomCircuit builds a deterministic pseudo-random circuit for property
// tests.
func randomCircuit(seed int64, nQubits, nGates int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("rand", nQubits)
	for i := 0; i < nGates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(nQubits))
		default:
			a := rng.Intn(nQubits)
			b := rng.Intn(nQubits)
			for b == a {
				b = rng.Intn(nQubits)
			}
			c.MS(a, b)
		}
	}
	return c
}

func TestPropertyGraphValid(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 8, 60)
		g := Build(c)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFrontierDrainsInAnyOrder(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		c := randomCircuit(seed, 6, 40)
		g := Build(c)
		rng := rand.New(rand.NewSource(int64(pick)))
		steps := 0
		for !g.Done() {
			fr := g.Frontier()
			if len(fr) == 0 {
				return false // deadlock: not a DAG
			}
			g.Execute(fr[rng.Intn(len(fr))])
			steps++
			if steps > len(g.Nodes) {
				return false
			}
		}
		return g.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExecutionRespectsQubitOrder(t *testing.T) {
	// Executing always the smallest frontier node must see, per qubit,
	// strictly increasing gate indices.
	f := func(seed int64) bool {
		c := randomCircuit(seed, 7, 50)
		g := Build(c)
		lastGate := make(map[int]int)
		for !g.Done() {
			id := g.Frontier()[0]
			n := g.Nodes[id]
			for _, q := range n.Gate.Operands() {
				if prev, ok := lastGate[q]; ok && prev >= n.GateIndex {
					return false
				}
				lastGate[q] = n.GateIndex
			}
			g.Execute(id)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLayersPartitionNodes(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed, 8, 80)
		g := Build(c)
		layers := g.Layers()
		count := 0
		seen := make(map[int]bool)
		for _, l := range layers {
			for _, id := range l {
				if seen[id] {
					return false
				}
				seen[id] = true
				count++
			}
		}
		return count == len(g.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestByQubitOrdering(t *testing.T) {
	c := circuit.New("bq", 3)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(0, 2)
	g := Build(c)
	want := map[int][]int{0: {0, 2}, 1: {0, 1}, 2: {1, 2}}
	for q, ids := range want {
		got := g.ByQubit[q]
		if len(got) != len(ids) {
			t.Fatalf("qubit %d: nodes %v, want %v", q, got, ids)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Errorf("qubit %d: nodes %v, want %v", q, got, ids)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	c := circuit.New("empty", 3)
	c.H(0)
	g := Build(c)
	if !g.Done() || g.Remaining() != 0 {
		t.Error("graph with no 2q gates should be done")
	}
	if f := g.Frontier(); len(f) != 0 {
		t.Errorf("frontier = %v, want empty", f)
	}
}
