// Package dag builds and consumes the gate dependency graph described in
// §3.1 of the MUSS-TI paper.
//
// Each two-qubit gate of the circuit is a node; a directed edge (g_i, g_j)
// means g_j may only execute after g_i. MUSS-TI disregards one-qubit gates
// during scheduling (they execute in place), so the graph is built over
// two-qubit gates only, with dependencies induced by operand overlap: two
// gates conflict iff they share a qubit, and the earlier one in program
// order is the predecessor. Because qubit timelines are linear, it is
// sufficient to link each gate to the *next* gate on each of its operands —
// the transitive closure recovers all ordering constraints, and the graph
// stays O(g) in size, matching the paper's O(g) construction cost.
package dag

import (
	"fmt"

	"mussti/internal/circuit"
)

// Node is one two-qubit gate in the dependency graph.
type Node struct {
	// ID is the node's index within the graph (0..len(Nodes)-1), which is
	// also its rank in program order over two-qubit gates.
	ID int
	// GateIndex is the index of the gate in the source circuit's Gates.
	GateIndex int
	// Gate is the two-qubit gate itself.
	Gate circuit.Gate
	// Succ and Pred are adjacent node IDs (at most 2 each: one per operand).
	Succ []int
	Pred []int
}

// Graph is the dependency DAG over the two-qubit gates of one circuit.
type Graph struct {
	Nodes []Node
	// ByQubit lists, for each qubit, the node IDs touching it in order.
	ByQubit [][]int

	indegree []int // working copy consumed by Frontier bookkeeping
	executed []bool
	frontier map[int]struct{}
	nLeft    int
}

// Build constructs the graph from a circuit. Only two-qubit gates become
// nodes; all other gates are ignored.
func Build(c *circuit.Circuit) *Graph {
	g := &Graph{ByQubit: make([][]int, c.NumQubits)}
	last := make([]int, c.NumQubits) // last node touching each qubit, -1 if none
	for i := range last {
		last[i] = -1
	}
	for gi, gate := range c.Gates {
		if !gate.Kind.IsTwoQubit() {
			continue
		}
		id := len(g.Nodes)
		n := Node{ID: id, GateIndex: gi, Gate: gate}
		g.Nodes = append(g.Nodes, n)
		for _, q := range gate.Operands() {
			if p := last[q]; p >= 0 {
				// Avoid duplicate edge when both operands match.
				if len(g.Nodes[id].Pred) == 0 || g.Nodes[id].Pred[len(g.Nodes[id].Pred)-1] != p {
					g.Nodes[p].Succ = append(g.Nodes[p].Succ, id)
					g.Nodes[id].Pred = append(g.Nodes[id].Pred, p)
				}
			}
			last[q] = id
			g.ByQubit[q] = append(g.ByQubit[q], id)
		}
	}
	g.reset()
	return g
}

func (g *Graph) reset() {
	g.indegree = make([]int, len(g.Nodes))
	g.executed = make([]bool, len(g.Nodes))
	g.frontier = make(map[int]struct{})
	g.nLeft = len(g.Nodes)
	for _, n := range g.Nodes {
		g.indegree[n.ID] = len(n.Pred)
		if len(n.Pred) == 0 {
			g.frontier[n.ID] = struct{}{}
		}
	}
}

// Reset restores the graph to its unexecuted state so it can be scheduled
// again (used by the SABRE two-fold search, which executes the graph twice).
func (g *Graph) Reset() { g.reset() }

// Remaining reports how many nodes have not been executed yet.
func (g *Graph) Remaining() int { return g.nLeft }

// Done reports whether every node has been executed.
func (g *Graph) Done() bool { return g.nLeft == 0 }

// Frontier returns the IDs of currently executable nodes (zero unexecuted
// predecessors), in ascending ID order — i.e. first-come first-served order,
// which is the tie-break MUSS-TI's gate selection uses.
func (g *Graph) Frontier() []int {
	out := make([]int, 0, len(g.frontier))
	for id := range g.frontier {
		out = append(out, id)
	}
	// Insertion sort: frontiers are small (≤ number of qubits / 2).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Executed reports whether node id has been executed.
func (g *Graph) Executed(id int) bool { return g.executed[id] }

// Execute marks a frontier node as done and unlocks its successors.
// It panics if the node is not currently executable — calling it otherwise
// indicates a scheduler bug, which must not be silently absorbed.
func (g *Graph) Execute(id int) {
	if _, ok := g.frontier[id]; !ok {
		panic(fmt.Sprintf("dag: node %d executed out of order (indegree %d, executed %v)",
			id, g.indegree[id], g.executed[id]))
	}
	delete(g.frontier, id)
	g.executed[id] = true
	g.nLeft--
	for _, s := range g.Nodes[id].Succ {
		g.indegree[s]--
		if g.indegree[s] == 0 {
			g.frontier[s] = struct{}{}
		}
	}
}

// Layers returns the ASAP layering of the graph: layer 0 is the initial
// frontier, layer i+1 the nodes whose longest path from a source has length
// i+1. Used by tests and by the look-ahead weight table.
func (g *Graph) Layers() [][]int {
	depth := make([]int, len(g.Nodes))
	var layers [][]int
	for id := range g.Nodes {
		d := 0
		for _, p := range g.Nodes[id].Pred {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		for len(layers) <= d {
			layers = append(layers, nil)
		}
		layers[d] = append(layers[d], id)
	}
	return layers
}

// WalkAhead visits unexecuted nodes in the first k layers *of the remaining
// graph* (layer = longest unexecuted-predecessor path), calling visit for
// each with its remaining-layer index. This implements the "first k layers
// of the DAG" window that the SWAP-insertion weight table scans (§3.3).
//
// The traversal is O(window) because node IDs ascend with program order: a
// bounded forward scan from the frontier suffices.
func (g *Graph) WalkAhead(k int, visit func(layer int, n *Node)) {
	if k <= 0 || g.nLeft == 0 {
		return
	}
	// Remaining-layer computation restricted to unexecuted nodes. depth[id]
	// is only valid for visited ids; compute lazily in ID order (preds have
	// smaller IDs, so a single ascending pass is a topological order).
	depth := make(map[int]int, 64)
	for id := range g.Nodes {
		if g.executed[id] {
			continue
		}
		d := 0
		for _, p := range g.Nodes[id].Pred {
			if g.executed[p] {
				continue
			}
			if pd, ok := depth[p]; ok && pd+1 > d {
				d = pd + 1
			}
		}
		if d >= k {
			// Successors can only be deeper; but later IDs may still be
			// shallow, so keep scanning. Record depth for successors' sake.
			depth[id] = d
			continue
		}
		depth[id] = d
		visit(d, &g.Nodes[id])
	}
}

// CriticalPathLen returns the number of layers (two-qubit depth).
func (g *Graph) CriticalPathLen() int { return len(g.Layers()) }

// Validate checks structural invariants: edges are consistent, IDs ascend in
// program order, and the edge relation matches operand overlap. Tests use it
// as a property check against randomly generated circuits.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		for _, s := range n.Succ {
			if s <= n.ID || s >= len(g.Nodes) {
				return fmt.Errorf("node %d: bad successor %d", n.ID, s)
			}
			if !contains(g.Nodes[s].Pred, n.ID) {
				return fmt.Errorf("edge %d->%d missing reverse link", n.ID, s)
			}
			if !sharesOperand(n.Gate, g.Nodes[s].Gate) {
				return fmt.Errorf("edge %d->%d without shared operand", n.ID, s)
			}
		}
		for _, p := range n.Pred {
			if p >= n.ID || p < 0 {
				return fmt.Errorf("node %d: bad predecessor %d", n.ID, p)
			}
			if !contains(g.Nodes[p].Succ, n.ID) {
				return fmt.Errorf("edge %d->%d missing forward link", p, n.ID)
			}
		}
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sharesOperand(a, b circuit.Gate) bool {
	for _, q := range a.Operands() {
		if b.Touches(q) {
			return true
		}
	}
	return false
}
