// Package dag builds and consumes the gate dependency graph described in
// §3.1 of the MUSS-TI paper.
//
// Each two-qubit gate of the circuit is a node; a directed edge (g_i, g_j)
// means g_j may only execute after g_i. MUSS-TI disregards one-qubit gates
// during scheduling (they execute in place), so the graph is built over
// two-qubit gates only, with dependencies induced by operand overlap: two
// gates conflict iff they share a qubit, and the earlier one in program
// order is the predecessor. Because qubit timelines are linear, it is
// sufficient to link each gate to the *next* gate on each of its operands —
// the transitive closure recovers all ordering constraints, and the graph
// stays O(g) in size, matching the paper's O(g) construction cost.
package dag

import (
	"fmt"

	"mussti/internal/circuit"
)

// Node is one two-qubit gate in the dependency graph.
type Node struct {
	// ID is the node's index within the graph (0..len(Nodes)-1), which is
	// also its rank in program order over two-qubit gates.
	ID int
	// GateIndex is the index of the gate in the source circuit's Gates.
	GateIndex int
	// Gate is the two-qubit gate itself.
	Gate circuit.Gate
	// Succ and Pred are adjacent node IDs (at most 2 each: one per operand).
	Succ []int
	Pred []int
}

// Graph is the dependency DAG over the two-qubit gates of one circuit.
type Graph struct {
	Nodes []Node
	// ByQubit lists, for each qubit, the node IDs touching it in order.
	ByQubit [][]int

	// indegree[id] counts the *unexecuted* predecessors of id; it reaches 0
	// exactly when id joins the frontier. WalkAhead reads it as the number
	// of in-window relaxations a node needs before its layer is final.
	indegree []int
	executed []bool
	// frontier holds the currently executable node IDs in ascending order.
	// It is maintained incrementally: Execute removes the executed ID and
	// merges unlocked successors at their sorted positions, so no scheduler
	// step ever rebuilds (or re-sorts) it from scratch.
	frontier []int
	// frontierBuf is the reused snapshot handed out by Frontier.
	frontierBuf []int
	nLeft       int
	// watermark is the smallest unexecuted node ID (len(Nodes) when done).
	// Everything below it is history: no look-ahead or frontier operation
	// ever looks at IDs under the watermark again.
	watermark int

	// WalkAhead scratch, reused across calls so the steady state allocates
	// nothing. waMark is an epoch stamp: entries of waDepth/waSeen are valid
	// only where waMark equals the current generation, which makes clearing
	// between calls O(touched) instead of O(nodes).
	waDepth []int32
	waSeen  []int32
	waMark  []uint32
	waGen   uint32
	waHeap  []int32
}

// Build constructs the graph from a circuit. Only two-qubit gates become
// nodes; all other gates are ignored.
//
// Construction is O(g) in both time and allocation count: every node's
// Succ/Pred slice (at most two entries each, one per operand) and every
// ByQubit list is carved out of one shared backing array sized by a first
// counting pass, so building never reallocates per node.
func Build(c *circuit.Circuit) *Graph {
	nTwo := 0
	perQubit := make([]int, c.NumQubits) // two-qubit gates touching each qubit
	for _, gate := range c.Gates {
		if gate.Kind.IsTwoQubit() {
			nTwo++
			perQubit[gate.Qubits[0]]++
			perQubit[gate.Qubits[1]]++
		}
	}
	g := &Graph{
		Nodes:   make([]Node, 0, nTwo),
		ByQubit: make([][]int, c.NumQubits),
	}
	edgeBacking := make([]int, 4*nTwo) // 2 Succ + 2 Pred slots per node
	byQubitBacking := make([]int, 2*nTwo)
	off := 0
	for q, cnt := range perQubit {
		g.ByQubit[q] = byQubitBacking[off : off : off+cnt]
		off += cnt
	}
	last := perQubit // reuse: last node touching each qubit, -1 if none
	for i := range last {
		last[i] = -1
	}
	for gi, gate := range c.Gates {
		if !gate.Kind.IsTwoQubit() {
			continue
		}
		id := len(g.Nodes)
		n := Node{
			ID: id, GateIndex: gi, Gate: gate,
			Succ: edgeBacking[4*id : 4*id : 4*id+2],
			Pred: edgeBacking[4*id+2 : 4*id+2 : 4*id+4],
		}
		g.Nodes = append(g.Nodes, n)
		for _, q := range gate.Operands() {
			if p := last[q]; p >= 0 {
				// Avoid duplicate edge when both operands match.
				if len(g.Nodes[id].Pred) == 0 || g.Nodes[id].Pred[len(g.Nodes[id].Pred)-1] != p {
					g.Nodes[p].Succ = append(g.Nodes[p].Succ, id)
					g.Nodes[id].Pred = append(g.Nodes[id].Pred, p)
				}
			}
			last[q] = id
			g.ByQubit[q] = append(g.ByQubit[q], id)
		}
	}
	g.reset()
	return g
}

func (g *Graph) reset() {
	if g.indegree == nil {
		n := len(g.Nodes)
		g.indegree = make([]int, n)
		g.executed = make([]bool, n)
		g.waDepth = make([]int32, n)
		g.waSeen = make([]int32, n)
		g.waMark = make([]uint32, n)
	}
	g.frontier = g.frontier[:0]
	g.nLeft = len(g.Nodes)
	g.watermark = 0
	for _, n := range g.Nodes {
		g.executed[n.ID] = false
		g.indegree[n.ID] = len(n.Pred)
		if len(n.Pred) == 0 {
			// IDs ascend, so appends keep the frontier sorted.
			g.frontier = append(g.frontier, n.ID)
		}
	}
}

// Reset restores the graph to its unexecuted state so it can be scheduled
// again without rebuilding. The compiler leans on this: one compile replays
// a single Graph across the SABRE forward probe and every candidate
// production pass (core's per-circuit prep), so Reset runs on the compile
// hot path — it must restore every piece of execution state (indegree,
// executed flags, frontier, watermark) and nothing else.
func (g *Graph) Reset() { g.reset() }

// Clone returns a graph that shares g's immutable structure (Nodes, ByQubit
// and their backing arrays — frozen after Build) but owns private execution
// state, so two scheduling passes over one circuit can run concurrently.
// The clone starts unexecuted; it is as if Build had run twice, minus the
// O(g) construction. Cloning does not read g's execution state, so it is
// safe even while g itself is mid-schedule on another goroutine.
//
//mussti:hotpath
func (g *Graph) Clone() *Graph {
	c := &Graph{Nodes: g.Nodes, ByQubit: g.ByQubit} //mussti:allow=hotalloc one graph header per clone; reset reuses nothing of g's state
	c.reset()
	return c
}

// Remaining reports how many nodes have not been executed yet.
func (g *Graph) Remaining() int { return g.nLeft }

// Done reports whether every node has been executed.
func (g *Graph) Done() bool { return g.nLeft == 0 }

// Frontier returns the IDs of currently executable nodes (zero unexecuted
// predecessors), in ascending ID order — i.e. first-come first-served order,
// which is the tie-break MUSS-TI's gate selection uses.
//
// The returned slice is a reused buffer: it stays valid (as a snapshot)
// across Execute calls, but the next Frontier call overwrites it, so callers
// must not retain it across frontier reads.
//
//mussti:hotpath
//mussti:inline
func (g *Graph) Frontier() []int {
	if cap(g.frontierBuf) < len(g.frontier) {
		g.frontierBuf = make([]int, 0, cap(g.frontier)) //mussti:allow=hotalloc scratch grows to the widest frontier, then stays
	}
	g.frontierBuf = g.frontierBuf[:len(g.frontier)]
	copy(g.frontierBuf, g.frontier)
	return g.frontierBuf
}

// FirstUnexecuted returns the smallest unexecuted node ID — the watermark
// below which every node has executed — or len(Nodes) when the graph is
// done. Look-ahead windows start no earlier than here.
func (g *Graph) FirstUnexecuted() int { return g.watermark }

// Executed reports whether node id has been executed.
//
//mussti:hotpath
//mussti:inline
func (g *Graph) Executed(id int) bool { return g.executed[id] }

// Execute marks a frontier node as done and unlocks its successors.
// It panics if the node is not currently executable — calling it otherwise
// indicates a scheduler bug, which must not be silently absorbed.
//
//mussti:hotpath
func (g *Graph) Execute(id int) {
	pos := g.frontierIndex(id)
	if pos < 0 {
		panic(fmt.Sprintf("dag: node %d executed out of order (indegree %d, executed %v)",
			id, g.indegree[id], g.executed[id]))
	}
	g.frontier = append(g.frontier[:pos], g.frontier[pos+1:]...)
	g.executed[id] = true
	g.nLeft--
	for g.watermark < len(g.Nodes) && g.executed[g.watermark] {
		g.watermark++
	}
	for _, s := range g.Nodes[id].Succ {
		g.indegree[s]--
		if g.indegree[s] == 0 {
			g.frontierInsert(s)
		}
	}
}

// frontierIndex binary-searches the sorted frontier for id; -1 when absent.
//
//mussti:hotpath
//mussti:inline
func (g *Graph) frontierIndex(id int) int {
	lo, hi := 0, len(g.frontier)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.frontier[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.frontier) && g.frontier[lo] == id {
		return lo
	}
	return -1
}

// frontierInsert places id at its sorted position. Unlocked successors have
// larger IDs than the executed node but not necessarily than the rest of the
// frontier, so this is a real insertion, not an append.
//
//mussti:hotpath
//mussti:inline
func (g *Graph) frontierInsert(id int) {
	lo, hi := 0, len(g.frontier)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.frontier[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g.frontier = append(g.frontier, 0)
	copy(g.frontier[lo+1:], g.frontier[lo:])
	g.frontier[lo] = id
}

// Layers returns the ASAP layering of the graph: layer 0 is the initial
// frontier, layer i+1 the nodes whose longest path from a source has length
// i+1. Used by tests and by the look-ahead weight table.
func (g *Graph) Layers() [][]int {
	depth := make([]int, len(g.Nodes))
	var layers [][]int
	for id := range g.Nodes {
		d := 0
		for _, p := range g.Nodes[id].Pred {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		for len(layers) <= d {
			layers = append(layers, nil)
		}
		layers[d] = append(layers[d], id)
	}
	return layers
}

// WalkAhead visits unexecuted nodes in the first k layers *of the remaining
// graph* (layer = longest unexecuted-predecessor path), calling visit for
// each with its remaining-layer index, in ascending node-ID order. This
// implements the "first k layers of the DAG" window that the SWAP-insertion
// weight table scans (§3.3).
//
// The traversal is O(window): it expands the dependency graph outwards from
// the current frontier (every unexecuted node is reachable from it through
// unexecuted predecessors, and none sits below the FirstUnexecuted
// watermark) and stops expanding at layer k, so nodes beyond the window are
// never touched — not even the already-executed prefix the pre-watermark
// implementation rescanned from ID 0 on every call. All scratch state lives
// on the Graph and is epoch-cleared, so steady-state calls allocate nothing.
//
// A node's layer is final once all its unexecuted predecessors have been
// relaxed (indegree tracks exactly that count); nodes are released into a
// min-ID heap at that moment. Because predecessors always carry smaller IDs,
// release order never overtakes ID order, so popping the heap yields the
// same ascending-ID visit sequence the naive full scan produced. A node kept
// back by an out-of-window predecessor is itself beyond the window (its
// layer exceeds the predecessor's) and is correctly never released.
//
//mussti:hotpath
func (g *Graph) WalkAhead(k int, visit func(layer int, n *Node)) {
	if k <= 0 || g.nLeft == 0 {
		return
	}
	g.waGen++
	if g.waGen == 0 { // epoch counter wrapped: invalidate all stale marks
		for i := range g.waMark {
			g.waMark[i] = 0
		}
		g.waGen = 1
	}
	heap := g.waHeap[:0]
	for _, id := range g.frontier {
		g.waMark[id] = g.waGen
		g.waDepth[id] = 0
		heap = waHeapPush(heap, int32(id))
	}
	for len(heap) > 0 {
		var id int32
		id, heap = waHeapPop(heap)
		d := g.waDepth[id]
		if int(d) >= k {
			// Beyond the window: successors are deeper still, so the whole
			// subtree is pruned by simply not expanding it.
			continue
		}
		visit(int(d), &g.Nodes[id])
		for _, s := range g.Nodes[id].Succ {
			if g.waMark[s] != g.waGen {
				g.waMark[s] = g.waGen
				g.waDepth[s] = d + 1
				g.waSeen[s] = 1
			} else {
				if d+1 > g.waDepth[s] {
					g.waDepth[s] = d + 1
				}
				g.waSeen[s]++
			}
			if int(g.waSeen[s]) == g.indegree[s] {
				heap = waHeapPush(heap, int32(s))
			}
		}
	}
	g.waHeap = heap[:0] // keep capacity for the next call
}

// waHeapPush adds id to the binary min-heap h.
//
//mussti:hotpath
//mussti:inline
func waHeapPush(h []int32, id int32) []int32 {
	h = append(h, id)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// waHeapPop removes and returns the minimum of h.
//
//mussti:hotpath
func waHeapPop(h []int32) (int32, []int32) {
	min := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return min, h
}

// CriticalPathLen returns the number of layers (two-qubit depth).
func (g *Graph) CriticalPathLen() int { return len(g.Layers()) }

// Validate checks structural invariants: edges are consistent, IDs ascend in
// program order, and the edge relation matches operand overlap. Tests use it
// as a property check against randomly generated circuits.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		for _, s := range n.Succ {
			if s <= n.ID || s >= len(g.Nodes) {
				return fmt.Errorf("node %d: bad successor %d", n.ID, s)
			}
			if !contains(g.Nodes[s].Pred, n.ID) {
				return fmt.Errorf("edge %d->%d missing reverse link", n.ID, s)
			}
			if !sharesOperand(n.Gate, g.Nodes[s].Gate) {
				return fmt.Errorf("edge %d->%d without shared operand", n.ID, s)
			}
		}
		for _, p := range n.Pred {
			if p >= n.ID || p < 0 {
				return fmt.Errorf("node %d: bad predecessor %d", n.ID, p)
			}
			if !contains(g.Nodes[p].Succ, n.ID) {
				return fmt.Errorf("edge %d->%d missing forward link", p, n.ID)
			}
		}
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sharesOperand(a, b circuit.Gate) bool {
	for _, q := range a.Operands() {
		if b.Touches(q) {
			return true
		}
	}
	return false
}
