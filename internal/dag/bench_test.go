package dag

import "testing"

// benchCircuit is the shared workload of the dag microbenchmarks: a dense
// pseudo-random 64-qubit, 2000-gate circuit, large enough that per-step
// costs dominate over fixed overheads.
func benchGraph(seed int64) *Graph {
	return Build(randomCircuit(seed, 64, 2000))
}

// BenchmarkExecuteDrain measures the frontier hot loop of every scheduler:
// Reset, then repeatedly read the frontier and execute its oldest node until
// the graph drains. One op is one full drain (~1500 Execute+Frontier pairs).
func BenchmarkExecuteDrain(b *testing.B) {
	g := benchGraph(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		for !g.Done() {
			g.Execute(g.Frontier()[0])
		}
	}
}

// BenchmarkFrontier measures a single frontier read mid-drain.
func BenchmarkFrontier(b *testing.B) {
	g := benchGraph(2)
	for g.Remaining() > len(g.Nodes)/2 {
		g.Execute(g.Frontier()[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += len(g.Frontier())
	}
	_ = sink
}

// BenchmarkWalkAhead measures one look-ahead window scan (k=8, the MUSS-TI
// default) from the middle of a drain — the position where the pre-watermark
// implementation paid for every already-executed node below the frontier.
func BenchmarkWalkAhead(b *testing.B) {
	g := benchGraph(3)
	for g.Remaining() > len(g.Nodes)/2 {
		g.Execute(g.Frontier()[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		g.WalkAhead(8, func(layer int, n *Node) { sink += n.ID })
	}
	_ = sink
}
