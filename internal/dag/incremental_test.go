package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveFrontier recomputes the executable set from scratch: unexecuted
// nodes whose predecessors have all executed, in ascending ID order — the
// specification the incremental sorted frontier must match.
func naiveFrontier(g *Graph) []int {
	var out []int
	for _, n := range g.Nodes {
		if g.Executed(n.ID) {
			continue
		}
		ready := true
		for _, p := range n.Pred {
			if !g.Executed(p) {
				ready = false
				break
			}
		}
		if ready {
			out = append(out, n.ID)
		}
	}
	return out
}

// naiveWalkAhead is the reference look-ahead: a full ascending-ID scan over
// all unexecuted nodes computing each one's remaining layer (longest path
// through unexecuted predecessors), visiting those with layer < k. This is
// the pre-watermark implementation the windowed traversal replaced.
func naiveWalkAhead(g *Graph, k int, visit func(layer int, n *Node)) {
	if k <= 0 {
		return
	}
	depth := make(map[int]int)
	for id := range g.Nodes {
		if g.Executed(id) {
			continue
		}
		d := 0
		for _, p := range g.Nodes[id].Pred {
			if g.Executed(p) {
				continue
			}
			if pd, ok := depth[p]; ok && pd+1 > d {
				d = pd + 1
			}
		}
		depth[id] = d
		if d < k {
			visit(d, &g.Nodes[id])
		}
	}
}

type visitRec struct{ layer, id int }

func collectWalk(walk func(int, func(int, *Node)), k int) []visitRec {
	var out []visitRec
	walk(k, func(layer int, n *Node) { out = append(out, visitRec{layer, n.ID}) })
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPropertyIncrementalMatchesNaive drains randomly generated circuits in
// random executable order and checks, at every step, that the incremental
// frontier, the watermark and the windowed WalkAhead agree exactly (same
// nodes, same layers, same visit order) with recompute-from-scratch
// references — the correctness contract behind ISSUE 4's hot-path rework.
func TestPropertyIncrementalMatchesNaive(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		c := randomCircuit(seed, 8, 80)
		g := Build(c)
		rng := rand.New(rand.NewSource(int64(pick)))
		for {
			fr := append([]int(nil), g.Frontier()...)
			if !equalInts(fr, naiveFrontier(g)) {
				t.Logf("seed %d: frontier %v, naive %v", seed, fr, naiveFrontier(g))
				return false
			}
			wantMark := len(g.Nodes)
			for id := range g.Nodes {
				if !g.Executed(id) {
					wantMark = id
					break
				}
			}
			if g.FirstUnexecuted() != wantMark {
				t.Logf("seed %d: watermark %d, want %d", seed, g.FirstUnexecuted(), wantMark)
				return false
			}
			for _, k := range []int{1, 2, 3, 8, math.MaxInt32} {
				got := collectWalk(g.WalkAhead, k)
				want := collectWalk(func(k int, v func(int, *Node)) { naiveWalkAhead(g, k, v) }, k)
				if len(got) != len(want) {
					t.Logf("seed %d k=%d: %d visits, want %d", seed, k, len(got), len(want))
					return false
				}
				for i := range got {
					if got[i] != want[i] {
						t.Logf("seed %d k=%d visit %d: %+v, want %+v", seed, k, i, got[i], want[i])
						return false
					}
				}
			}
			if g.Done() {
				return g.FirstUnexecuted() == len(g.Nodes)
			}
			g.Execute(fr[rng.Intn(len(fr))])
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalSurvivesReset pins that Reset restores the incremental
// structures exactly (the SABRE two-fold search replays graphs).
func TestIncrementalSurvivesReset(t *testing.T) {
	c := randomCircuit(42, 6, 50)
	g := Build(c)
	before := append([]int(nil), g.Frontier()...)
	walkBefore := collectWalk(g.WalkAhead, 4)
	for i := 0; i < 10 && !g.Done(); i++ {
		g.Execute(g.Frontier()[0])
	}
	g.Reset()
	if !equalInts(append([]int(nil), g.Frontier()...), before) {
		t.Errorf("frontier after reset = %v, want %v", g.Frontier(), before)
	}
	after := collectWalk(g.WalkAhead, 4)
	if len(after) != len(walkBefore) {
		t.Fatalf("walk after reset visited %d nodes, want %d", len(after), len(walkBefore))
	}
	for i := range after {
		if after[i] != walkBefore[i] {
			t.Errorf("walk visit %d = %+v, want %+v", i, after[i], walkBefore[i])
		}
	}
	if g.FirstUnexecuted() != 0 {
		t.Errorf("watermark after reset = %d, want 0", g.FirstUnexecuted())
	}
}
