package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mussti/internal/circuit"
)

const tol = 1e-9

func TestNewStateBounds(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("0 qubits accepted")
	}
	if _, err := NewState(25); err == nil {
		t.Error("25 qubits accepted")
	}
	s := MustNewState(3)
	if s.Probability(0) != 1 {
		t.Error("initial state not |000>")
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Error("initial norm != 1")
	}
}

func TestBellState(t *testing.T) {
	c := circuit.New("bell", 2)
	c.H(0)
	c.CX(0, 1)
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0b00)-0.5) > tol || math.Abs(s.Probability(0b11)-0.5) > tol {
		t.Errorf("bell probabilities: %v %v %v %v",
			s.Probability(0), s.Probability(1), s.Probability(2), s.Probability(3))
	}
	if s.Probability(0b01) > tol || s.Probability(0b10) > tol {
		t.Error("bell state has odd-parity amplitude")
	}
}

func TestGHZAmplitudes(t *testing.T) {
	n := 5
	c := circuit.New("ghz", n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	all1 := (1 << n) - 1
	if math.Abs(s.Probability(0)-0.5) > tol || math.Abs(s.Probability(all1)-0.5) > tol {
		t.Errorf("GHZ endpoints: %v, %v", s.Probability(0), s.Probability(all1))
	}
}

func TestBVRecoversSecret(t *testing.T) {
	// Bernstein–Vazirani with secret 0b1011 over 4 data qubits + ancilla.
	n := 5
	secret := 0b1011
	c := circuit.New("bv", n)
	anc := 4
	c.X(anc)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for i := 0; i < 4; i++ {
		if secret&(1<<i) != 0 {
			c.CX(i, anc)
		}
	}
	for i := 0; i < 4; i++ {
		c.H(i)
	}
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Data register must be exactly |secret>; ancilla is in |->.
	p := 0.0
	for ancBit := 0; ancBit < 2; ancBit++ {
		p += s.Probability(secret | ancBit<<4)
	}
	if math.Abs(p-1) > tol {
		t.Errorf("P(secret) = %v, want 1", p)
	}
}

func TestQFTOfZeroIsUniform(t *testing.T) {
	n := 4
	c := circuit.New("qft", n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			c.CP(math.Pi/math.Pow(2, float64(j-i)), j, i)
		}
	}
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / float64(int(1)<<n)
	for b := 0; b < 1<<n; b++ {
		if math.Abs(s.Probability(b)-want) > tol {
			t.Fatalf("P(%d) = %v, want %v", b, s.Probability(b), want)
		}
	}
}

func TestSwapGate(t *testing.T) {
	c := circuit.New("swap", 2)
	c.X(0)
	c.Swap(0, 1)
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0b10)-1) > tol {
		t.Errorf("swap failed: P(10) = %v", s.Probability(0b10))
	}
}

func TestSwapEqualsThreeMS(t *testing.T) {
	// Up to local rotations, SWAP is three MS gates; here we verify the
	// scheduling-level identity on populations of a separable input: the
	// MS-only triple realises the same interaction count the paper's T≥3
	// threshold reasons about. (The exact unitary differs by local frames,
	// so compare the entangling power instead: both leave |00> invariant.)
	c := circuit.New("ms3", 2)
	c.MS(0, 1)
	c.MS(0, 1)
	c.MS(0, 1)
	s, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// exp(-i 3π/4 XX)|00> = cos(3π/4)|00> - i sin(3π/4)|11>.
	if math.Abs(s.Probability(0b00)-0.5) > tol || math.Abs(s.Probability(0b11)-0.5) > tol {
		t.Errorf("3-MS populations: %v / %v", s.Probability(0), s.Probability(3))
	}
}

func TestCXTruthTable(t *testing.T) {
	for in, want := range map[int]int{0b00: 0b00, 0b01: 0b11, 0b10: 0b10, 0b11: 0b01} {
		c := circuit.New("cx", 2)
		if in&1 != 0 {
			c.X(0)
		}
		if in&2 != 0 {
			c.X(1)
		}
		c.CX(0, 1)
		s, err := Run(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Probability(want)-1) > tol {
			t.Errorf("CX|%02b>: P(%02b) = %v, want 1", in, want, s.Probability(want))
		}
	}
}

func TestMeasureRejected(t *testing.T) {
	s := MustNewState(1)
	if err := s.Apply(circuit.NewGate1(circuit.KindMeasure, 0)); err == nil {
		t.Error("measurement accepted by unitary simulator")
	}
}

func TestRunSkipsMeasurements(t *testing.T) {
	c := circuit.New("m", 1)
	c.H(0)
	c.Measure(0)
	if _, err := Run(c, nil); err != nil {
		t.Errorf("Run should skip measurements: %v", err)
	}
}

func TestFidelitySelfAndOrthogonal(t *testing.T) {
	a := MustNewState(2)
	if f := a.Fidelity(a.Clone()); math.Abs(f-1) > tol {
		t.Errorf("self fidelity = %v", f)
	}
	b := MustNewState(2)
	if err := b.Apply(circuit.NewGate1(circuit.KindX, 0)); err != nil {
		t.Fatal(err)
	}
	if f := a.Fidelity(b); f > tol {
		t.Errorf("orthogonal fidelity = %v", f)
	}
	if a.Fidelity(MustNewState(3)) != 0 {
		t.Error("width mismatch fidelity != 0")
	}
}

func TestPropertyNormPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New("r", 4)
		for i := 0; i < 25; i++ {
			switch rng.Intn(6) {
			case 0:
				c.H(rng.Intn(4))
			case 1:
				c.T(rng.Intn(4))
			case 2:
				c.RX(rng.Float64()*6, rng.Intn(4))
			case 3:
				c.RZ(rng.Float64()*6, rng.Intn(4))
			default:
				a, b := rng.Intn(4), rng.Intn(4)
				if a != b {
					c.MS(a, b)
				}
			}
		}
		s, err := Run(c, nil)
		if err != nil {
			return false
		}
		return math.Abs(s.Norm()-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDisjointGatesCommute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New("r", 4)
		c.H(0)
		c.H(2)
		c.MS(0, 1) // disjoint from (2,3)
		c.MS(2, 3)
		c.RZ(rng.Float64()*3, 0)
		c.RX(rng.Float64()*3, 3)
		a, err := Run(c, nil)
		if err != nil {
			return false
		}
		// Swap the two disjoint MS gates (indices 2 and 3).
		order := []int{0, 1, 3, 2, 4, 5}
		b, err := Run(c, order)
		if err != nil {
			return false
		}
		return math.Abs(a.Fidelity(b)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadOrder(t *testing.T) {
	c := circuit.New("b", 2)
	c.H(0)
	if _, err := Run(c, []int{5}); err == nil {
		t.Error("out-of-range order accepted")
	}
}
