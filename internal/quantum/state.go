// Package quantum is a small dense statevector simulator over the circuit
// IR. It exists for two reasons: it completes the quantum-computation
// substrate the paper's background section rests on (§2.1 — states,
// amplitudes, MS gates), and it powers the end-to-end *semantic*
// verification of compiled schedules: executing a schedule's gate order
// must produce exactly the same state as the program order, because the
// scheduler may only commute gates with disjoint supports.
//
// The simulator is exact (complex128) and dense, so it is intended for
// verification-sized circuits (≲ 20 qubits), not for the 300-qubit
// benchmarks — those are evaluated by the scheduling metrics, not by state
// evolution.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"

	"mussti/internal/circuit"
)

// State is a dense statevector over n qubits. Qubit 0 is the lowest-order
// bit of the basis index.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0…0⟩ over n qubits. n must be in [1, 24] — beyond that
// the dense representation is deliberately refused rather than thrashing.
func NewState(n int) (*State, error) {
	if n < 1 || n > 24 {
		return nil, fmt.Errorf("quantum: statevector for %d qubits refused (supported: 1..24)", n)
	}
	s := &State{n: n, amp: make([]complex128, 1<<n)}
	s.amp[0] = 1
	return s, nil
}

// MustNewState is NewState for known-good sizes.
func MustNewState(n int) *State {
	s, err := NewState(n)
	if err != nil {
		panic(err)
	}
	return s
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns ⟨basis|ψ⟩ for a computational basis index.
func (s *State) Amplitude(basis int) complex128 { return s.amp[basis] }

// Probability returns |⟨basis|ψ⟩|².
func (s *State) Probability(basis int) float64 {
	a := s.amp[basis]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Norm returns ⟨ψ|ψ⟩ (1 for any legal evolution, up to float error).
func (s *State) Norm() float64 {
	t := 0.0
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return t
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Fidelity returns |⟨ψ|φ⟩|² between two states of equal width.
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		return 0
	}
	var ip complex128
	for i := range s.amp {
		ip += cmplx.Conj(s.amp[i]) * o.amp[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// apply1 applies the 2×2 matrix {{a,b},{c,d}} to qubit q.
func (s *State) apply1(q int, a, b, c, d complex128) {
	bit := 1 << q
	for i := 0; i < len(s.amp); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		x, y := s.amp[i], s.amp[j]
		s.amp[i] = a*x + b*y
		s.amp[j] = c*x + d*y
	}
}

// apply2 applies a 4×4 matrix m (row-major over basis |q1 q0⟩ = |00⟩,|01⟩,
// |10⟩,|11⟩ with q0 the first operand) to the qubit pair (q0, q1).
func (s *State) apply2(q0, q1 int, m *[4][4]complex128) {
	b0, b1 := 1<<q0, 1<<q1
	for i := 0; i < len(s.amp); i++ {
		if i&b0 != 0 || i&b1 != 0 {
			continue
		}
		idx := [4]int{i, i | b0, i | b1, i | b0 | b1}
		var in [4]complex128
		for k := 0; k < 4; k++ {
			in[k] = s.amp[idx[k]]
		}
		for r := 0; r < 4; r++ {
			var acc complex128
			for c := 0; c < 4; c++ {
				acc += m[r][c] * in[c]
			}
			s.amp[idx[r]] = acc
		}
	}
}

var invSqrt2 = complex(1/math.Sqrt2, 0)

// Apply applies one gate. Measurements are rejected — the simulator is a
// unitary checker; use Probability to inspect outcome distributions.
func (s *State) Apply(g circuit.Gate) error {
	switch g.Kind {
	case circuit.KindBarrier:
		return nil
	case circuit.KindMeasure:
		return fmt.Errorf("quantum: measurement is not unitary; strip measurements before simulating")
	}
	for _, q := range g.Operands() {
		if q < 0 || q >= s.n {
			return fmt.Errorf("quantum: gate %v out of range for %d qubits", g, s.n)
		}
	}
	switch g.Kind {
	case circuit.KindH:
		s.apply1(g.Qubits[0], invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
	case circuit.KindX:
		s.apply1(g.Qubits[0], 0, 1, 1, 0)
	case circuit.KindY:
		s.apply1(g.Qubits[0], 0, -1i, 1i, 0)
	case circuit.KindZ:
		s.apply1(g.Qubits[0], 1, 0, 0, -1)
	case circuit.KindS:
		s.apply1(g.Qubits[0], 1, 0, 0, 1i)
	case circuit.KindSdg:
		s.apply1(g.Qubits[0], 1, 0, 0, -1i)
	case circuit.KindT:
		s.apply1(g.Qubits[0], 1, 0, 0, cmplx.Exp(1i*math.Pi/4))
	case circuit.KindTdg:
		s.apply1(g.Qubits[0], 1, 0, 0, cmplx.Exp(-1i*math.Pi/4))
	case circuit.KindRX:
		c, sn := cplxCos(g.Param/2), cplxSin(g.Param/2)
		s.apply1(g.Qubits[0], c, -1i*sn, -1i*sn, c)
	case circuit.KindRY:
		c, sn := cplxCos(g.Param/2), cplxSin(g.Param/2)
		s.apply1(g.Qubits[0], c, -sn, sn, c)
	case circuit.KindRZ, circuit.KindU:
		e0, e1 := cmplx.Exp(complex(0, -g.Param/2)), cmplx.Exp(complex(0, g.Param/2))
		s.apply1(g.Qubits[0], e0, 0, 0, e1)
	case circuit.KindCX:
		m := ident4()
		// control = first operand (bit q0), target = second (bit q1):
		// swap rows |01⟩ ↔ |11⟩ in the (q0, q1) ordering where index bit
		// 0 is the control.
		m[1][1], m[1][3] = 0, 1
		m[3][3], m[3][1] = 0, 1
		s.apply2(g.Qubits[0], g.Qubits[1], m)
	case circuit.KindCZ:
		m := ident4()
		m[3][3] = -1
		s.apply2(g.Qubits[0], g.Qubits[1], m)
	case circuit.KindCP:
		m := ident4()
		m[3][3] = cmplx.Exp(complex(0, g.Param))
		s.apply2(g.Qubits[0], g.Qubits[1], m)
	case circuit.KindRZZ:
		m := ident4()
		e0, e1 := cmplx.Exp(complex(0, -g.Param/2)), cmplx.Exp(complex(0, g.Param/2))
		m[0][0], m[3][3] = e0, e0
		m[1][1], m[2][2] = e1, e1
		s.apply2(g.Qubits[0], g.Qubits[1], m)
	case circuit.KindMS, circuit.KindRXX:
		// Mølmer–Sørensen: exp(-i θ/2 X⊗X); the maximally entangling gate
		// uses θ=π/2 (the default when no angle is given).
		theta := g.Param
		if theta == 0 {
			theta = math.Pi / 2
		}
		c, sn := cplxCos(theta/2), complex(0, -1)*cplxSin(theta/2)
		m := &[4][4]complex128{
			{c, 0, 0, sn},
			{0, c, sn, 0},
			{0, sn, c, 0},
			{sn, 0, 0, c},
		}
		s.apply2(g.Qubits[0], g.Qubits[1], m)
	case circuit.KindSwap:
		m := ident4()
		m[1][1], m[1][2] = 0, 1
		m[2][2], m[2][1] = 0, 1
		s.apply2(g.Qubits[0], g.Qubits[1], m)
	default:
		return fmt.Errorf("quantum: unsupported gate kind %v", g.Kind)
	}
	return nil
}

func ident4() *[4][4]complex128 {
	return &[4][4]complex128{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}}
}

func cplxCos(x float64) complex128 { return complex(math.Cos(x), 0) }
func cplxSin(x float64) complex128 { return complex(math.Sin(x), 0) }

// Run applies the circuit's gates in the given order (indices into
// c.Gates); order == nil means program order. Measurements are skipped —
// callers compare pre-measurement states.
func Run(c *circuit.Circuit, order []int) (*State, error) {
	s, err := NewState(c.NumQubits)
	if err != nil {
		return nil, err
	}
	apply := func(g circuit.Gate) error {
		if g.Kind == circuit.KindMeasure {
			return nil
		}
		return s.Apply(g)
	}
	if order == nil {
		for _, g := range c.Gates {
			if err := apply(g); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	for _, gi := range order {
		if gi < 0 || gi >= len(c.Gates) {
			return nil, fmt.Errorf("quantum: gate index %d out of range", gi)
		}
		if err := apply(c.Gates[gi]); err != nil {
			return nil, err
		}
	}
	return s, nil
}
