package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit"
)

// fakeCompiler is a minimal Compiler for registry tests.
type fakeCompiler struct{ name string }

func (f fakeCompiler) Name() string { return f.name }
func (f fakeCompiler) Compile(ctx context.Context, c *circuit.Circuit, t arch.Target, cfg *CompileConfig) (*Result, error) {
	return &Result{}, nil
}

func TestRegistryHasMussti(t *testing.T) {
	c, err := LookupCompiler("mussti")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "mussti" {
		t.Errorf("Name = %q, want mussti", c.Name())
	}
	if CompilerLabel(c) != "MUSS-TI" {
		t.Errorf("label = %q, want MUSS-TI", CompilerLabel(c))
	}
	if cfg := DefaultConfigFor(c); cfg != DefaultOptions() {
		t.Errorf("DefaultConfigFor(mussti) = %+v, want DefaultOptions", cfg)
	}
	// This package registers "mussti" first; registration order is the
	// deterministic order Compilers() reports.
	if names := CompilerNames(); len(names) == 0 || names[0] != "mussti" {
		t.Errorf("CompilerNames() = %v, want mussti first", names)
	}
}

func TestRegisterCompilerDuplicate(t *testing.T) {
	if err := RegisterCompiler(fakeCompiler{name: "dup-test"}); err != nil {
		t.Fatal(err)
	}
	err := RegisterCompiler(fakeCompiler{name: "dup-test"})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration: err = %v, want already-registered error", err)
	}
	// Registration never replaces: the original stays resolvable.
	if _, err := LookupCompiler("dup-test"); err != nil {
		t.Error(err)
	}
}

func TestRegisterCompilerInvalid(t *testing.T) {
	if err := RegisterCompiler(nil); err == nil {
		t.Error("nil compiler accepted")
	}
	if err := RegisterCompiler(fakeCompiler{name: ""}); err == nil {
		t.Error("empty-name compiler accepted")
	}
}

func TestLookupCompilerUnknown(t *testing.T) {
	_, err := LookupCompiler("no-such-compiler")
	if err == nil {
		t.Fatal("unknown name resolved")
	}
	// The error teaches the registered names, so CLI typos self-explain.
	if !strings.Contains(err.Error(), "mussti") {
		t.Errorf("error does not list registered names: %v", err)
	}
}

// TestCompilersConcurrent hammers the registry from many goroutines —
// readers and writers together — so the race detector can prove
// Compilers()/LookupCompiler are safe against concurrent registration.
func TestCompilersConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			if err := RegisterCompiler(fakeCompiler{name: fmt.Sprintf("conc-test-%d", i)}); err != nil {
				t.Error(err)
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				for _, c := range Compilers() {
					if c.Name() == "" {
						t.Error("registered compiler with empty name")
						return
					}
				}
				if _, err := LookupCompiler("mussti"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every concurrent registration must have landed exactly once.
	seen := map[string]int{}
	for _, name := range CompilerNames() {
		seen[name]++
	}
	for i := 0; i < 8; i++ {
		if n := seen[fmt.Sprintf("conc-test-%d", i)]; n != 1 {
			t.Errorf("conc-test-%d registered %d times, want 1", i, n)
		}
	}
}

// TestMusstiCompilerTargets: the registry "mussti" accepts both machine
// shapes and rejects anything else, matching the deprecated entry points.
func TestMusstiCompilerTargets(t *testing.T) {
	comp, err := LookupCompiler("mussti")
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("ghz4", 4)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(2, 3)
	ctx := context.Background()

	dev := arch.MustNew(arch.DefaultConfig(4))
	viaIface, err := comp.Compile(ctx, c, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaLegacy, err := Compile(c, dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if viaIface.Metrics != viaLegacy.Metrics {
		t.Errorf("interface and legacy metrics differ:\n%+v\n%+v", viaIface.Metrics, viaLegacy.Metrics)
	}

	g := arch.MustNewGrid(2, 2, 4)
	if _, err := comp.Compile(ctx, c, g, nil); err != nil {
		t.Errorf("grid target rejected: %v", err)
	}
	if _, err := comp.Compile(ctx, c, nil, nil); err == nil {
		t.Error("nil target accepted")
	}
}

func TestNewCompileConfig(t *testing.T) {
	cfg := NewCompileConfig()
	if *cfg != DefaultOptions() {
		t.Errorf("NewCompileConfig() = %+v, want DefaultOptions", *cfg)
	}
	cfg = NewCompileConfig(
		WithMapping(MappingTrivial),
		WithSwapInsertion(false),
		WithLookAhead(6),
		WithSwapThreshold(5),
		WithReplacement(ReplaceFIFO),
		WithTrace(),
		WithRoutingLookAhead(false),
	)
	want := DefaultOptions()
	want.Mapping = MappingTrivial
	want.SwapInsertion = false
	want.LookAhead = 6
	want.SwapThreshold = 5
	want.Replacement = ReplaceFIFO
	want.Trace = true
	want.DisableRoutingLookAhead = true
	if *cfg != want {
		t.Errorf("options misapplied:\ngot  %+v\nwant %+v", *cfg, want)
	}
}
