package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
)

// TestCompileContextPreCancelled is the promptness contract: an already-
// cancelled context must abort the compile within one scheduler step —
// including the SABRE probe passes, which are full scheduling runs — even
// for a benchmark that takes hundreds of milliseconds to compile.
func TestCompileContextPreCancelled(t *testing.T) {
	c := bench.MustByName("SQRT_n117")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := CompileContext(ctx, c, d, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A full SQRT_n117 compile takes ~0.5s on the dev machine; one
	// scheduler step is microseconds. Allow generous CI headroom.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-cancelled compile took %s, want a prompt return", elapsed)
	}
}

// TestCompileContextDeadline: an expired deadline surfaces
// context.DeadlineExceeded, not a mangled internal error.
func TestCompileContextDeadline(t *testing.T) {
	c := bench.MustByName("Adder_n128")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := CompileContext(ctx, c, d, DefaultOptions()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// cancelAfterGates cancels its context once the scheduler has reported n
// gate executions, pinning the cancellation to a point deep inside the run
// loop regardless of how fast the compiler gets.
type cancelAfterGates struct {
	n      int
	cancel context.CancelFunc
}

func (o *cancelAfterGates) GateScheduled(done, total int) {
	if done == o.n {
		o.cancel()
	}
}
func (o *cancelAfterGates) Shuttle(q, from, to int)       {}
func (o *cancelAfterGates) Eviction(victim, from, to int) {}
func (o *cancelAfterGates) SwapInserted(a, b int)         {}

// TestCompileContextMidCompileCancel cancels while the scheduler is deep in
// a long compile; the run must abort with ctx.Err() instead of finishing.
// (The returned error is itself the proof of interruption: a compile that
// ran to completion returns nil.) The cancellation is triggered from the
// observer after a fixed number of gates — a wall-clock timer here would
// race the compile and flake whenever the compiler gets faster.
func TestCompileContextMidCompileCancel(t *testing.T) {
	c := bench.MustByName("SQRT_n117")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := DefaultOptions()
	opts.Observer = &cancelAfterGates{n: 100, cancel: cancel}
	start := time.Now()
	_, err := CompileContext(ctx, c, d, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (compile was not interrupted)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled compile took %s, want a prompt return", elapsed)
	}
}

// TestCompileContextBackgroundMatchesCompile: threading a live context must
// not change the schedule.
func TestCompileContextBackgroundMatchesCompile(t *testing.T) {
	c := bench.MustByName("QAOA_n128")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	plain, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := CompileContext(context.Background(), c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != withCtx.Metrics {
		t.Errorf("metrics differ: Compile %+v vs CompileContext %+v", plain.Metrics, withCtx.Metrics)
	}
}

// countingObserver tallies every callback; used to check the observer sees
// exactly the events the scheduler's own stats count.
type countingObserver struct {
	gatesDone, gatesTotal      int
	shuttles, evictions, swaps int
}

func (o *countingObserver) GateScheduled(done, total int) { o.gatesDone, o.gatesTotal = done, total }
func (o *countingObserver) Shuttle(q, from, to int)       { o.shuttles++ }
func (o *countingObserver) Eviction(victim, from, to int) { o.evictions++ }
func (o *countingObserver) SwapInserted(a, b int)         { o.swaps++ }

// TestObserverSeesSchedulerEvents runs a single-pass compile (trivial
// mapping — SABRE would aggregate several passes) and cross-checks the
// observer's tallies against Result.Stats and the engine metrics: the
// observer is a view of the run loop, not a second bookkeeper.
func TestObserverSeesSchedulerEvents(t *testing.T) {
	c := bench.MustByName("Adder_n128")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	obs := &countingObserver{}
	opts := DefaultOptions()
	opts.Mapping = MappingTrivial
	opts.Observer = obs
	res, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if obs.gatesDone != obs.gatesTotal || obs.gatesDone == 0 {
		t.Errorf("final gate tick %d/%d, want a complete pass", obs.gatesDone, obs.gatesTotal)
	}
	if obs.gatesDone != res.Stats.ExecutableFast+res.Stats.Routed {
		t.Errorf("observer saw %d gates, stats count %d",
			obs.gatesDone, res.Stats.ExecutableFast+res.Stats.Routed)
	}
	if obs.evictions != res.Stats.Evictions {
		t.Errorf("observer saw %d evictions, stats count %d", obs.evictions, res.Stats.Evictions)
	}
	if obs.swaps != res.Stats.SwapsInserted {
		t.Errorf("observer saw %d inserted swaps, stats count %d", obs.swaps, res.Stats.SwapsInserted)
	}
	// Every engine move flows through moveWithEviction, which reports each
	// one as either a Shuttle or an Eviction.
	if got := obs.shuttles + obs.evictions; got != res.Metrics.Shuttles {
		t.Errorf("observer saw %d moves, metrics count %d shuttles", got, res.Metrics.Shuttles)
	}
}

// TestObserverDoesNotChangeSchedule: observation must be a read-only layer.
func TestObserverDoesNotChangeSchedule(t *testing.T) {
	c := bench.MustByName("QAOA_n128")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	bare, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Observer = &countingObserver{}
	observed, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Metrics != observed.Metrics {
		t.Errorf("metrics differ with observer attached: %+v vs %+v", bare.Metrics, observed.Metrics)
	}
}
