package core

// Observer receives per-step callbacks from a running compilation, so
// progress reporting and tooling attach as a pluggable layer instead of a
// fork of the scheduling loop. Set it on Options (both this package's and
// the baseline compilers').
//
// Callbacks arrive synchronously on the compiling goroutine: they must be
// cheap and must not call back into the compiler. One Compile run may
// restart the gate count — SABRE evaluates several candidate mappings, each
// a full scheduling pass — so done can move backwards between passes.
// Implementations attached to several concurrent compilations must be safe
// for concurrent use.
type Observer interface {
	// GateScheduled fires after each two-qubit gate executes; done counts
	// gates executed in the current pass, total the pass's two-qubit gates.
	GateScheduled(done, total int)
	// Shuttle fires for each routing move of qubit q from zone `from` to
	// zone `to` (baseline compilers report per-trap hops).
	Shuttle(q, from, to int)
	// Eviction fires for each conflict-handling eviction of victim from
	// zone `from` to zone `to` — the page-fault events of §3.2.
	Eviction(victim, from, to int)
	// SwapInserted fires for each inter-module SWAP the §3.3 inserter adds
	// between qubits a and b.
	SwapInserted(a, b int)
}

// nopObserver is the Observer the scheduler uses when Options.Observer is
// nil, so the run loop never branches on observation.
type nopObserver struct{}

func (nopObserver) GateScheduled(done, total int) {}
func (nopObserver) Shuttle(q, from, to int)       {}
func (nopObserver) Eviction(victim, from, to int) {}
func (nopObserver) SwapInserted(a, b int)         {}

// ObserverOrNop returns obs, or the no-op observer when obs is nil, so run
// loops (here and in the baseline compilers) never branch on observation.
func ObserverOrNop(obs Observer) Observer {
	if obs == nil {
		return nopObserver{}
	}
	return obs
}
