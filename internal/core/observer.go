package core

// Observer receives per-step callbacks from a running compilation, so
// progress reporting and tooling attach as a pluggable layer instead of a
// fork of the scheduling loop. Set it on Options (both this package's and
// the baseline compilers').
//
// Callbacks arrive synchronously on the compiling goroutine: they must be
// cheap and must not call back into the compiler. One Compile run may
// restart the gate count — SABRE evaluates several candidate mappings, each
// a full scheduling pass — so done can move backwards between passes.
// Implementations attached to several concurrent compilations must be safe
// for concurrent use.
type Observer interface {
	// GateScheduled fires after each two-qubit gate executes; done counts
	// gates executed in the current pass, total the pass's two-qubit gates.
	GateScheduled(done, total int)
	// Shuttle fires for each routing move of qubit q from zone `from` to
	// zone `to` (baseline compilers report per-trap hops).
	Shuttle(q, from, to int)
	// Eviction fires for each conflict-handling eviction of victim from
	// zone `from` to zone `to` — the page-fault events of §3.2.
	Eviction(victim, from, to int)
	// SwapInserted fires for each inter-module SWAP the §3.3 inserter adds
	// between qubits a and b.
	SwapInserted(a, b int)
}

// nopObserver is the Observer the scheduler uses when Options.Observer is
// nil, so the run loop never branches on observation.
type nopObserver struct{}

func (nopObserver) GateScheduled(done, total int) {}
func (nopObserver) Shuttle(q, from, to int)       {}
func (nopObserver) Eviction(victim, from, to int) {}
func (nopObserver) SwapInserted(a, b int)         {}

// ObserverOrNop returns obs, or the no-op observer when obs is nil, so run
// loops (here and in the baseline compilers) never branch on observation.
func ObserverOrNop(obs Observer) Observer {
	if obs == nil {
		return nopObserver{}
	}
	return obs
}

// observerEvent kinds recorded by replayObserver.
const (
	evGate = iota
	evShuttle
	evEviction
	evSwap
)

// observerEvent is one recorded callback: which method fired and its
// arguments (x,y,z mapped positionally).
type observerEvent struct {
	kind    int
	x, y, z int
}

// replayObserver records callbacks into a buffer so a candidate pass that
// runs concurrently with an earlier-indexed one can deliver its events to
// the user's Observer *after* that candidate's — preserving the sequential
// event order exactly. Only later-indexed candidates are buffered; the
// first candidate streams live, so observers that drive cancellation (the
// progress UI's ctx hooks) still abort the compile mid-pass.
//
// Methods are called from a single scheduling goroutine; replay happens
// after that goroutine is joined, so no locking is needed.
type replayObserver struct {
	events []observerEvent
}

// The recording methods run once per scheduled event inside a candidate
// pass — the same cadence as the scheduler's own inner loop — so they are
// budgeted hot paths: amortised append growth is the only allocation.
//
//mussti:hotpath
func (r *replayObserver) GateScheduled(done, total int) {
	r.events = append(r.events, observerEvent{kind: evGate, x: done, y: total})
}

//mussti:hotpath
func (r *replayObserver) Shuttle(q, from, to int) {
	r.events = append(r.events, observerEvent{kind: evShuttle, x: q, y: from, z: to})
}

//mussti:hotpath
func (r *replayObserver) Eviction(victim, from, to int) {
	r.events = append(r.events, observerEvent{kind: evEviction, x: victim, y: from, z: to})
}

//mussti:hotpath
func (r *replayObserver) SwapInserted(a, b int) {
	r.events = append(r.events, observerEvent{kind: evSwap, x: a, y: b})
}

// replay delivers the recorded events to obs in recording order.
//
//mussti:hotpath
func (r *replayObserver) replay(obs Observer) {
	for _, e := range r.events {
		switch e.kind {
		case evGate:
			obs.GateScheduled(e.x, e.y)
		case evShuttle:
			obs.Shuttle(e.x, e.y, e.z)
		case evEviction:
			obs.Eviction(e.x, e.y, e.z)
		case evSwap:
			obs.SwapInserted(e.x, e.y)
		}
	}
}
