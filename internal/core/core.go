package core
