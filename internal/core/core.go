// Package core implements the MUSS-TI compiler (§3 of the paper): the
// multi-level shuttle scheduler for EML-QCCD devices.
//
// The scheduling loop mirrors multi-level memory management. Qubits are
// tasks; the storage zone is external storage (level 0), the operation zone
// main memory (level 1), the optical zone the CPU (level 2). A two-qubit
// gate needs its ions delivered to the right zone on time; misplaced
// partners are routed in, and when a target zone is full the least recently
// used resident is evicted one level down — the trap-world analogue of a
// page fault.
//
// Compile is the entry point; CompileContext adds cooperative cancellation
// (checked at every scheduler step) and per-step progress observation via
// the Observer interface, so long compiles can be interrupted and watched
// without forking the run loop.
package core

import (
	"context"
	"fmt"
	"time"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/sim"
)

// SchedStats counts the scheduler's decisions over one run — how often
// each mechanism of §3.2 fired. They explain *why* a schedule cost what it
// did and feed the ablation analyses.
type SchedStats struct {
	// ExecutableFast counts frontier gates executed with no routing
	// (the "prioritize executable gates" fast path).
	ExecutableFast int
	// Routed counts gates that needed qubit routing.
	Routed int
	// Evictions counts conflict-handling evictions (page faults).
	Evictions int
	// SwapsConsidered and SwapsInserted count §3.3 decisions.
	SwapsConsidered int
	SwapsInserted   int
}

// Result is the outcome of one compilation run.
type Result struct {
	// Metrics are the executed schedule's simulation metrics.
	Metrics sim.Metrics
	// Stats counts the scheduler's decisions.
	Stats SchedStats
	// CompileTime is the wall-clock scheduling cost (the paper's Fig. 10
	// metric), excluding circuit generation.
	CompileTime time.Duration
	// InitialMapping and FinalMapping give each qubit's zone before and
	// after execution.
	InitialMapping []int
	FinalMapping   []int
	// Trace is the op-level schedule when Options.Trace was set.
	Trace []sim.Op
	// Report is the per-zone activity report when Options.Trace was set.
	Report *sim.Report
}

// Compile schedules circuit c onto device d with the given options and
// returns the executed schedule's metrics. It errors when the device cannot
// hold the circuit or an internal invariant breaks. It is CompileContext
// with a background context.
func Compile(c *circuit.Circuit, d *arch.Device, opts Options) (*Result, error) {
	return CompileContext(context.Background(), c, d, opts)
}

// CompileContext is Compile with cooperative cancellation: the scheduling
// loops (including the SABRE probe passes) check ctx at every frontier
// step, so a cancelled or expired context aborts a long compile within one
// scheduler step and surfaces ctx.Err().
func CompileContext(ctx context.Context, c *circuit.Circuit, d *arch.Device, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if c.NumQubits > d.Capacity() {
		return nil, fmt.Errorf("core: circuit %q needs %d qubits, device holds %d",
			c.Name, c.NumQubits, d.Capacity())
	}
	start := time.Now() //mussti:allow=determinism CompileTime is reporting metadata, never schedule input

	// One prep serves every pass over c in this compile — the SABRE forward
	// probe and each candidate production run — via Graph.Reset; only the
	// reversed probe circuit needs its own build.
	p := newPrep(c)
	candidates, err := candidateMappings(ctx, p, d, opts)
	if err != nil {
		return nil, err
	}

	var best *Result
	for _, initial := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := newSchedulerWith(ctx, p, d, opts, initial)
		if err != nil {
			return nil, err
		}
		if opts.Trace {
			s.eng.EnableTrace()
		}
		if err := s.run(); err != nil {
			return nil, err
		}
		res := &Result{
			Metrics:        s.eng.Metrics(),
			Stats:          s.stats,
			InitialMapping: initial,
			FinalMapping:   s.mappingSnapshot(),
			Trace:          s.eng.Trace(),
		}
		if opts.Trace {
			rep := s.eng.BuildReport()
			res.Report = &rep
		}
		if best == nil || res.Metrics.Fidelity.Log() > best.Metrics.Fidelity.Log() {
			best = res
		}
	}
	best.CompileTime = time.Since(start) //mussti:allow=determinism CompileTime is reporting metadata, never schedule input
	return best, nil
}

// candidateMappings returns the initial mappings the compiler will try.
// SABRE evaluates both the two-fold-search mapping and the trivial one and
// Compile keeps whichever schedule reaches the higher fidelity: the search
// is a heuristic, and falling back costs only compile time (which the
// Fig. 11 trade-off accounts for).
func candidateMappings(ctx context.Context, p *prep, d *arch.Device, opts Options) ([][]int, error) {
	switch opts.Mapping {
	case MappingTrivial:
		m, err := trivialMapping(p.c.NumQubits, d)
		if err != nil {
			return nil, err
		}
		return [][]int{m}, nil
	case MappingSABRE:
		triv, err := trivialMapping(p.c.NumQubits, d)
		if err != nil {
			return nil, err
		}
		sab, err := sabreMapping(ctx, p, d, opts)
		if err != nil {
			return nil, err
		}
		return [][]int{sab, triv}, nil
	default:
		return nil, fmt.Errorf("core: unknown mapping strategy %d", opts.Mapping)
	}
}
