// Package core implements the MUSS-TI compiler (§3 of the paper): the
// multi-level shuttle scheduler for EML-QCCD devices.
//
// The scheduling loop mirrors multi-level memory management. Qubits are
// tasks; the storage zone is external storage (level 0), the operation zone
// main memory (level 1), the optical zone the CPU (level 2). A two-qubit
// gate needs its ions delivered to the right zone on time; misplaced
// partners are routed in, and when a target zone is full the least recently
// used resident is evicted one level down — the trap-world analogue of a
// page fault.
//
// Compile is the entry point; CompileContext adds cooperative cancellation
// (checked at every scheduler step) and per-step progress observation via
// the Observer interface, so long compiles can be interrupted and watched
// without forking the run loop.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/sim"
)

// SchedStats counts the scheduler's decisions over one run — how often
// each mechanism of §3.2 fired. They explain *why* a schedule cost what it
// did and feed the ablation analyses.
type SchedStats struct {
	// ExecutableFast counts frontier gates executed with no routing
	// (the "prioritize executable gates" fast path).
	ExecutableFast int
	// Routed counts gates that needed qubit routing.
	Routed int
	// Evictions counts conflict-handling evictions (page faults).
	Evictions int
	// SwapsConsidered and SwapsInserted count §3.3 decisions.
	SwapsConsidered int
	SwapsInserted   int
}

// Result is the outcome of one compilation run.
type Result struct {
	// Metrics are the executed schedule's simulation metrics.
	Metrics sim.Metrics
	// Stats counts the scheduler's decisions.
	Stats SchedStats
	// CompileTime is the wall-clock scheduling cost (the paper's Fig. 10
	// metric), excluding circuit generation.
	CompileTime time.Duration
	// InitialMapping and FinalMapping give each qubit's zone before and
	// after execution.
	InitialMapping []int
	FinalMapping   []int
	// Trace is the op-level schedule when Options.Trace was set.
	Trace []sim.Op
	// Report is the per-zone activity report when Options.Trace was set.
	Report *sim.Report
}

// Compile schedules circuit c onto device d with the given options and
// returns the executed schedule's metrics. It errors when the device cannot
// hold the circuit or an internal invariant breaks. It is CompileContext
// with a background context.
func Compile(c *circuit.Circuit, d *arch.Device, opts Options) (*Result, error) {
	return CompileContext(context.Background(), c, d, opts)
}

// CompileContext is Compile with cooperative cancellation: the scheduling
// loops (including the SABRE probe passes) check ctx at every frontier
// step, so a cancelled or expired context aborts a long compile within one
// scheduler step and surfaces ctx.Err().
//
// With Options.Parallelism ≥ 2 and SABRE mapping, the two candidate
// production runs execute concurrently over cloned prep state and the
// reduction compares results in candidate-index order with the same strict
// better-than rule as the sequential loop, so the returned Result (and
// every tie-break) is byte-identical to Parallelism=1. Observer callbacks
// keep their sequential order too: the first candidate streams live from
// the calling goroutine's pass, later candidates record into a buffer
// replayed after the join — so an observer that cancels ctx mid-pass (the
// progress UI) still stops the whole compile within one scheduler step.
func CompileContext(ctx context.Context, c *circuit.Circuit, d *arch.Device, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if c.NumQubits > d.Capacity() {
		return nil, fmt.Errorf("core: circuit %q needs %d qubits, device holds %d",
			c.Name, c.NumQubits, d.Capacity())
	}
	start := time.Now() //mussti:allow=determinism CompileTime is reporting metadata, never schedule input

	// One prep serves every pass over c in this compile — the SABRE forward
	// probe and each candidate production run — via Graph.Reset; only the
	// reversed probe circuit needs its own build.
	res, err := compileWithPrep(ctx, newPrep(c), d, opts)
	if err != nil {
		return nil, err
	}
	res.CompileTime = time.Since(start) //mussti:allow=determinism CompileTime is reporting metadata, never schedule input
	return res, nil
}

// compileWithPrep runs the candidate loop over an existing prep. opts must
// already be withDefaults-normalised and the circuit known to fit d (the
// callers — CompileContext and CompileBatch — check capacity). CompileTime
// is left zero for the caller to stamp.
func compileWithPrep(ctx context.Context, p *prep, d *arch.Device, opts Options) (*Result, error) {
	if opts.Parallelism > 1 && opts.Mapping == MappingSABRE {
		return compileParallel(ctx, p, d, opts)
	}
	candidates, err := candidateMappings(ctx, p, d, opts)
	if err != nil {
		return nil, err
	}
	var best *Result
	for _, initial := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := runCandidate(ctx, p, d, opts, initial)
		if err != nil {
			return nil, err
		}
		best = betterResult(best, res)
	}
	return best, nil
}

// runCandidate executes one production pass from the given initial mapping
// and packages the Result (one iteration of the former candidate loop).
func runCandidate(ctx context.Context, p *prep, d *arch.Device, opts Options, initial []int) (*Result, error) {
	s, err := newSchedulerWith(ctx, p, d, opts, initial)
	if err != nil {
		return nil, err
	}
	if opts.Trace {
		s.eng.EnableTrace()
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	res := &Result{
		Metrics:        s.eng.Metrics(),
		Stats:          s.stats,
		InitialMapping: initial,
		FinalMapping:   s.mappingSnapshot(),
		Trace:          s.eng.Trace(),
	}
	if opts.Trace {
		rep := s.eng.BuildReport()
		res.Report = &rep
	}
	return res, nil
}

// betterResult is the deterministic reduction shared by the sequential and
// parallel candidate paths: candidates are offered in index order, and a
// later candidate wins only by strictly higher fidelity — so every
// tie-break matches the sequential loop bit for bit.
func betterResult(best, res *Result) *Result {
	if best == nil || res.Metrics.Fidelity.Log() > best.Metrics.Fidelity.Log() {
		return res
	}
	return best
}

// compileParallel runs the two SABRE candidates concurrently: the calling
// goroutine works through the long chain — forward probe, reverse probe,
// SABRE-candidate production, all reusing the caller's prep — while one
// goroutine runs the trivial candidate's production pass over a cloned
// prep. The probe chain is inherently serial (each pass starts from the
// previous pass's final mapping), so two workers already expose all the
// structural parallelism a SABRE compile has; Parallelism > 2 adds nothing
// here (CompileBatch is the knob that scales wider).
//
// Errors reduce in the same order the sequential path would surface them:
// outer-context cancellation first, then the mapping search, then
// candidates by index. A real error cancels the sibling pass; the sibling's
// resulting context.Canceled is internal noise and is never returned while
// the outer ctx is still live.
func compileParallel(ctx context.Context, p *prep, d *arch.Device, opts Options) (*Result, error) {
	triv, err := trivialMapping(p.c.NumQubits, d)
	if err != nil {
		return nil, err
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Candidate 1 (trivial mapping) buffers its observer events; candidate 0
	// (SABRE) streams live, leading the event order exactly as in the
	// sequential loop.
	trivOpts := opts
	var buf *replayObserver
	if opts.Observer != nil {
		buf = &replayObserver{}
		trivOpts.Observer = buf
	}

	var results [2]*Result
	var errs [2]error
	pc := p.clone()
	done := make(chan struct{})
	go func() {
		defer close(done)
		results[1], errs[1] = runCandidate(ictx, pc, d, trivOpts, triv)
		if errs[1] != nil {
			cancel()
		}
	}()

	sab, mapErr := sabreMapping(ictx, p, d, opts)
	if mapErr != nil {
		cancel()
	} else {
		results[0], errs[0] = runCandidate(ictx, p, d, opts, sab)
		if errs[0] != nil {
			cancel()
		}
	}
	<-done

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The outer ctx is live, so any surviving context.Canceled came from the
	// sibling-cancel above; the real cause is the first non-Canceled error.
	for _, e := range [3]error{mapErr, errs[0], errs[1]} {
		if e != nil && !errors.Is(e, context.Canceled) {
			return nil, e
		}
	}
	for _, e := range [3]error{mapErr, errs[0], errs[1]} {
		if e != nil {
			return nil, e
		}
	}
	if buf != nil {
		buf.replay(opts.Observer)
	}
	return betterResult(results[0], results[1]), nil
}

// candidateMappings returns the initial mappings the compiler will try.
// SABRE evaluates both the two-fold-search mapping and the trivial one and
// Compile keeps whichever schedule reaches the higher fidelity: the search
// is a heuristic, and falling back costs only compile time (which the
// Fig. 11 trade-off accounts for).
func candidateMappings(ctx context.Context, p *prep, d *arch.Device, opts Options) ([][]int, error) {
	switch opts.Mapping {
	case MappingTrivial:
		m, err := trivialMapping(p.c.NumQubits, d)
		if err != nil {
			return nil, err
		}
		return [][]int{m}, nil
	case MappingSABRE:
		triv, err := trivialMapping(p.c.NumQubits, d)
		if err != nil {
			return nil, err
		}
		sab, err := sabreMapping(ctx, p, d, opts)
		if err != nil {
			return nil, err
		}
		return [][]int{sab, triv}, nil
	default:
		return nil, fmt.Errorf("core: unknown mapping strategy %d", opts.Mapping)
	}
}
