package core

import (
	"math"
	"math/rand"
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/quantum"
	"mussti/internal/sim"
)

// compileAndExtract compiles c with tracing, verifies the schedule and
// returns the executed gate order.
func compileAndExtract(t *testing.T, c *circuit.Circuit, d *arch.Device, opts Options) []int {
	t.Helper()
	opts.Trace = true
	res, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	order, err := sim.VerifyAndExtract(c, sim.ZonesOfDevice(d), res.InitialMapping, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return order
}

// TestScheduleSemanticEquivalence is the strongest end-to-end check in the
// repository: for verification-sized circuits, simulating the gates in the
// *scheduled* order must yield exactly the program's quantum state. This
// holds because the scheduler only reorders gates with disjoint supports
// (the dependency graph forbids anything else) and inserted SWAPs are
// transparent at the logical level — and the statevector simulator
// confirms it numerically.
func TestScheduleSemanticEquivalence(t *testing.T) {
	smallDevice := func(n int) *arch.Device {
		cfg := arch.Config{
			Modules: 2, TrapCapacity: 4,
			StorageZones: 1, OperationZones: 1, OpticalZones: 1,
		}
		_ = n
		return arch.MustNew(cfg)
	}

	builders := []struct {
		name  string
		build func() *circuit.Circuit
	}{
		{"ghz8", func() *circuit.Circuit {
			c := circuit.New("ghz8", 8)
			c.H(0)
			for i := 0; i+1 < 8; i++ {
				c.CX(i, i+1)
			}
			return c
		}},
		{"qft6", func() *circuit.Circuit {
			c := circuit.New("qft6", 6)
			for i := 0; i < 6; i++ {
				c.H(i)
				for j := i + 1; j < 6; j++ {
					c.CP(math.Pi/math.Pow(2, float64(j-i)), j, i)
				}
			}
			return c
		}},
		{"random8", func() *circuit.Circuit {
			rng := rand.New(rand.NewSource(7))
			c := circuit.New("random8", 8)
			for i := 0; i < 60; i++ {
				switch rng.Intn(4) {
				case 0:
					c.H(rng.Intn(8))
				case 1:
					c.RZ(rng.Float64()*3, rng.Intn(8))
				default:
					a, b := rng.Intn(8), rng.Intn(8)
					if a != b {
						c.MS(a, b)
					}
				}
			}
			return c
		}},
	}

	for _, tc := range builders {
		for _, opts := range []Options{
			{Mapping: MappingTrivial},
			{Mapping: MappingSABRE, SwapInsertion: true},
		} {
			c := tc.build()
			d := smallDevice(c.NumQubits)
			order := compileAndExtract(t, c, d, opts)

			want, err := quantum.Run(c, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := quantum.Run(c, order)
			if err != nil {
				t.Fatal(err)
			}
			if f := want.Fidelity(got); math.Abs(f-1) > 1e-9 {
				t.Errorf("%s (%v): scheduled order changes the state, fidelity %v",
					tc.name, opts.Mapping, f)
			}
		}
	}
}

// TestScheduleExecutesEveryGateExactlyOnce checks the extracted order is a
// permutation of the program.
func TestScheduleExecutesEveryGateExactlyOnce(t *testing.T) {
	c := circuit.New("perm", 6)
	for i := 0; i < 6; i++ {
		c.H(i)
	}
	for i := 0; i+1 < 6; i++ {
		c.MS(i, i+1)
	}
	for i := 0; i < 6; i++ {
		c.Measure(i)
	}
	d := arch.MustNew(arch.Config{Modules: 2, TrapCapacity: 4, StorageZones: 1, OperationZones: 1, OpticalZones: 1})
	order := compileAndExtract(t, c, d, DefaultOptions())
	seen := make([]bool, len(c.Gates))
	for _, gi := range order {
		if seen[gi] {
			t.Fatalf("gate %d executed twice", gi)
		}
		seen[gi] = true
	}
	for gi, ok := range seen {
		if !ok {
			t.Errorf("gate %d never executed", gi)
		}
	}
}
