package core

import (
	"context"
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
)

// BenchmarkSchedulerRun measures one full scheduling pass (no SABRE probes,
// no SWAP insertion) over the densest small benchmark — the per-step cost of
// the frontier sweep, routing, eviction and look-ahead machinery in
// isolation from the mapping search.
func BenchmarkSchedulerRun(b *testing.B) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	opts := Options{Mapping: MappingTrivial}.withDefaults()
	initial, err := trivialMapping(c.NumQubits, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := newScheduler(context.Background(), c, d, opts, initial)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerStep isolates the steady-state scheduler step by
// amortising setup over the drain: ns/op ≈ cost of (frontier read + route +
// execute) × gates. Allocations here are the ones ISSUE 4 drives to zero.
func BenchmarkSchedulerStep(b *testing.B) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	opts := Options{Mapping: MappingTrivial}.withDefaults()
	initial, err := trivialMapping(c.NumQubits, d)
	if err != nil {
		b.Fatal(err)
	}
	gates := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := newScheduler(context.Background(), c, d, opts, initial)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.run(); err != nil {
			b.Fatal(err)
		}
		gates += s.executed
	}
	b.StopTimer()
	if gates > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(gates), "ns/gate")
	}
}

// BenchmarkSchedulerPassFresh rebuilds the per-circuit prep (DAG, per-qubit
// gate lists, next-use tables) for every scheduling pass — the behaviour
// every SABRE probe pass had before prep reuse. Compare with
// BenchmarkSchedulerPassReuse for the per-pass saving.
func BenchmarkSchedulerPassFresh(b *testing.B) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	opts := Options{Mapping: MappingTrivial}.withDefaults()
	initial, err := trivialMapping(c.NumQubits, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := newSchedulerWith(context.Background(), newPrep(c), d, opts, initial)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerPassReuse replays one shared prep across passes via
// Graph.Reset — what CompileContext now does for the SABRE forward probe
// and both candidate production runs.
func BenchmarkSchedulerPassReuse(b *testing.B) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	opts := Options{Mapping: MappingTrivial}.withDefaults()
	initial, err := trivialMapping(c.NumQubits, d)
	if err != nil {
		b.Fatal(err)
	}
	p := newPrep(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := newSchedulerWith(context.Background(), p, d, opts, initial)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileSABRE is the full headline compile — SABRE probe passes
// plus both candidate runs — whose cost the prep reuse trims: of its four
// scheduling passes, three replay one prep.
func BenchmarkCompileSABRE(b *testing.B) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileContext(context.Background(), c, d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileParallel is BenchmarkCompileSABRE with the candidate
// fan-out on: trivial production and reverse-prep build overlap the SABRE
// chain. Byte-identical output; wall-clock gain needs GOMAXPROCS > 1.
func BenchmarkCompileParallel(b *testing.B) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	opts := DefaultOptions()
	opts.Parallelism = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileContext(context.Background(), c, d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileBatch compiles an 8-variant look-ahead sweep through one
// CompileBatch call: one shared prep, one worker group. Compare against 8×
// BenchmarkCompileSABRE for the shared-prep saving.
func BenchmarkCompileBatch(b *testing.B) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	variants := make([]BatchVariant, 8)
	for i := range variants {
		variants[i] = BatchVariant{Target: d, Config: NewCompileConfig(WithLookAhead(i + 1))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileBatch(context.Background(), c, variants); err != nil {
			b.Fatal(err)
		}
	}
}
