package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
)

// stripTime returns a copy of res with the wall-clock CompileTime zeroed —
// the one Result field that legitimately differs between two identical
// compiles.
func stripTime(res *Result) Result {
	c := *res
	c.CompileTime = 0
	return c
}

// TestParallelCompileByteIdentical is the tentpole invariant: the same
// compile at Parallelism 1, 2 and 8 must produce deeply equal Results
// (metrics, stats, mappings, trace, report) and identical observer event
// sequences. The recorder is the package's own replayObserver, so the
// comparison covers every callback kind and argument.
func TestParallelCompileByteIdentical(t *testing.T) {
	for _, app := range []string{"QFT_n32", "GHZ_n64"} {
		c := bench.MustByName(app)
		d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
		var want Result
		var wantEvents []observerEvent
		for _, par := range []int{1, 2, 8} {
			rec := &replayObserver{}
			opts := DefaultOptions()
			opts.Trace = true
			opts.Observer = rec
			opts.Parallelism = par
			res, err := CompileContext(context.Background(), c, d, opts)
			if err != nil {
				t.Fatalf("%s parallelism=%d: %v", app, par, err)
			}
			if par == 1 {
				want = stripTime(res)
				wantEvents = rec.events
				continue
			}
			if got := stripTime(res); !reflect.DeepEqual(got, want) {
				t.Errorf("%s parallelism=%d: Result differs from sequential", app, par)
			}
			if !reflect.DeepEqual(rec.events, wantEvents) {
				t.Errorf("%s parallelism=%d: observer event sequence differs from sequential (%d vs %d events)",
					app, par, len(rec.events), len(wantEvents))
			}
		}
	}
}

// TestParallelTrivialMappingUnaffected: a single-candidate compile has no
// fan-out; Parallelism must be a no-op there, not an error.
func TestParallelTrivialMappingUnaffected(t *testing.T) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	opts := DefaultOptions()
	opts.Mapping = MappingTrivial
	seq, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTime(seq), stripTime(par)) {
		t.Error("trivial-mapping Result changed under Parallelism=8")
	}
}

// TestCompileBatchMatchesIndividual: every batch member must be
// byte-identical to a standalone CompileContext of the same variant, at any
// worker bound, including traced and grid-targeted variants.
func TestCompileBatchMatchesIndividual(t *testing.T) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	g, err := arch.NewGrid(2, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	variants := []BatchVariant{
		{Target: d, Config: nil}, // nil config = paper defaults
		{Target: d, Config: NewCompileConfig(WithLookAhead(4))},
		{Target: d, Config: NewCompileConfig(WithTrace())},
		{Target: d, Config: NewCompileConfig(WithMapping(MappingTrivial))},
		{Target: d, Config: NewCompileConfig(WithSwapInsertion(false))},
		{Target: g, Config: nil},
	}
	want := make([]Result, len(variants))
	for i, v := range variants {
		opts := DefaultOptions()
		if v.Config != nil {
			opts = *v.Config
		}
		dev, err := deviceFor(v.Target)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompileContext(context.Background(), c, dev, opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		want[i] = stripTime(res)
	}
	for _, workers := range []int{0, 1, 3} {
		results, err := CompileBatchBounded(context.Background(), c, variants, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(variants) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(variants))
		}
		for i, res := range results {
			if !reflect.DeepEqual(stripTime(res), want[i]) {
				t.Errorf("workers=%d variant %d: batch Result differs from standalone compile", workers, i)
			}
		}
	}
}

// TestCompileBatchValidation: bad variants fail fast with the lowest index
// named, before any scheduling work.
func TestCompileBatchValidation(t *testing.T) {
	c := bench.MustByName("SQRT_n299")
	// DefaultConfig(8) still allocates a full 4-module block (capacity 128),
	// so a 299-qubit circuit is what actually overflows it.
	small := arch.MustNew(arch.DefaultConfig(8))
	big := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	_, err := CompileBatch(context.Background(), c, []BatchVariant{
		{Target: big}, {Target: small}, {Target: small},
	})
	if err == nil || !strings.Contains(err.Error(), "batch variant 1") {
		t.Errorf("err = %v, want capacity failure naming variant 1", err)
	}
	if res, err := CompileBatch(context.Background(), c, nil); err != nil || res != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
}

// TestReversePrepConcurrent is the -race stress test for the prep-cache
// path: 8 goroutines compile the same circuit concurrently with mixed
// Parallelism settings, all drawing reverse preps from the shared pool.
// Every compile must match the sequential reference exactly.
func TestReversePrepConcurrent(t *testing.T) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	ref, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := stripTime(ref)
	pars := [3]int{1, 2, 8}
	var wg sync.WaitGroup
	errCh := make(chan error, 8*3)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				opts := DefaultOptions()
				opts.Parallelism = pars[(g+iter)%len(pars)]
				res, err := CompileContext(context.Background(), c, d, opts)
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(stripTime(res), want) {
					errCh <- fmt.Errorf("goroutine %d iter %d (parallelism %d): Result diverged", g, iter, opts.Parallelism)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// waitForGoroutines polls until the goroutine count retires to the baseline
// (with headroom for runtime helpers), failing after a deadline — the
// no-leak check for the parallel cancellation paths.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not retire: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestCompileContextMidCompileCancelParallel extends the mid-compile
// cancellation contract to the parallel candidate path: cancellation fires
// from the live observer (candidate 0's pass), and must stop every
// candidate goroutine within one scheduler step, leaking nothing.
func TestCompileContextMidCompileCancelParallel(t *testing.T) {
	c := bench.MustByName("SQRT_n117")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := DefaultOptions()
	opts.Parallelism = 8
	opts.Observer = &cancelAfterGates{n: 100, cancel: cancel}
	start := time.Now()
	_, err := CompileContext(ctx, c, d, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (compile was not interrupted)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled parallel compile took %s, want a prompt return", elapsed)
	}
	waitForGoroutines(t, baseline)
}

// TestCompileBatchMidCompileCancel: cancelling mid-batch must abort every
// in-flight variant promptly and join all workers before returning.
func TestCompileBatchMidCompileCancel(t *testing.T) {
	c := bench.MustByName("SQRT_n117")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	variants := make([]BatchVariant, 4)
	for i := range variants {
		cfg := DefaultOptions()
		if i == 0 {
			cfg.Observer = &cancelAfterGates{n: 100, cancel: cancel}
		}
		variants[i] = BatchVariant{Target: d, Config: &cfg}
	}
	start := time.Now()
	_, err := CompileBatchBounded(ctx, c, variants, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (batch was not interrupted)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled batch took %s, want a prompt return", elapsed)
	}
	waitForGoroutines(t, baseline)
}

// TestCompileBatchPreCancelled: an already-dead context aborts the batch
// before any variant completes.
func TestCompileBatchPreCancelled(t *testing.T) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileBatch(ctx, c, []BatchVariant{{Target: d}, {Target: d}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelFanOutAllocationCeiling guards the candidate fan-out path
// against creeping steady-state allocations: a Parallelism=2 compile may
// spend only a small fixed overhead (prep clone, context, goroutine
// plumbing) over the sequential compile of the same circuit. A regression
// here fails CI without needing benchmark diffing.
func TestParallelFanOutAllocationCeiling(t *testing.T) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	compileAt := func(par int) float64 {
		opts := DefaultOptions()
		opts.Parallelism = par
		return testing.AllocsPerRun(10, func() {
			if _, err := CompileContext(context.Background(), c, d, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	seq := compileAt(1)
	par := compileAt(2)
	const overhead = 80 // clone + cancel context + goroutine + join channel
	if par > seq+overhead {
		t.Errorf("parallel fan-out allocates %.0f/op vs %.0f/op sequential (budget +%d): new steady-state allocation in the candidate fan-out path", par, seq, overhead)
	}
}
