package core

// ReplacementPolicy selects the conflict-handling victim policy. The paper
// argues for LRU by analogy with page replacement ("near-optimal
// performance by prioritizing eviction of qubits that have remained unused
// for the longest duration", §3.2); the alternatives exist to back that
// claim with an ablation — see the `lru` experiment and BenchmarkLRU.
type ReplacementPolicy int

// Replacement policies.
const (
	// ReplaceLRU evicts the least-recently-used qubit, breaking timestamp
	// ties towards the farthest next use (the paper's policy).
	ReplaceLRU ReplacementPolicy = iota
	// ReplaceFIFO evicts the qubit that has resided in the zone longest,
	// regardless of use.
	ReplaceFIFO
	// ReplaceRandom evicts a deterministic pseudo-random resident.
	ReplaceRandom
	// ReplaceBelady evicts the qubit whose next use lies farthest in the
	// future — the clairvoyant optimum of page replacement, available here
	// because the whole program is known ahead of time. It upper-bounds
	// what any online policy can achieve.
	ReplaceBelady
)

// String names the policy for reports.
func (p ReplacementPolicy) String() string {
	switch p {
	case ReplaceLRU:
		return "lru"
	case ReplaceFIFO:
		return "fifo"
	case ReplaceRandom:
		return "random"
	case ReplaceBelady:
		return "belady"
	}
	return "unknown"
}

// pickVictim selects the eviction victim in zone z under the configured
// policy, never evicting the protected qubits. Returns -1 when no resident
// is evictable.
//
//mussti:hotpath
func (s *scheduler) pickVictim(z, keepA, keepB int) int {
	switch s.opts.Replacement {
	case ReplaceFIFO:
		// Chains append at the tail, so the head-most unprotected ion is
		// the oldest resident.
		for _, q := range s.eng.Chain(z) {
			if q != keepA && q != keepB {
				return q
			}
		}
		return -1
	case ReplaceRandom:
		// Count candidates, then walk to the k-th: same choice (and same
		// RNG stream) as collecting them into a slice, without the per-call
		// allocation.
		chain := s.eng.Chain(z)
		n := 0
		for _, q := range chain {
			if q != keepA && q != keepB {
				n++
			}
		}
		if n == 0 {
			return -1
		}
		s.rngState = splitMix64(s.rngState)
		k := int(s.rngState % uint64(n))
		for _, q := range chain {
			if q != keepA && q != keepB {
				if k == 0 {
					return q
				}
				k--
			}
		}
		return -1
	case ReplaceBelady:
		victim, farthest := -1, -1
		for _, q := range s.eng.Chain(z) {
			if q == keepA || q == keepB {
				continue
			}
			if nu := s.nextUse(q); nu > farthest {
				victim, farthest = q, nu
			}
		}
		return victim
	default: // ReplaceLRU
		return s.pickLRUVictim(z, keepA, keepB)
	}
}

// splitMix64 advances the deterministic eviction RNG (SplitMix64 step).
//
//mussti:hotpath
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
