package core

import (
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
)

// TestReversePrepCacheReuse: the second acquire for a circuit must hand back
// the pooled prep, and a compile running on a recycled prep must produce the
// same schedule as the first — reuse is invisible in the output.
func TestReversePrepCacheReuse(t *testing.T) {
	c := bench.MustByName("QAOA_n64")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))

	p1, pool := acquireReversePrep(c)
	pool.Put(p1)
	p2, pool2 := acquireReversePrep(c)
	if p2 != p1 {
		t.Errorf("second acquire built a fresh prep; want the pooled one back")
	}
	if pool2 != pool {
		t.Errorf("acquire returned a different pool for the same circuit")
	}
	pool2.Put(p2)

	first, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if first.Metrics != second.Metrics {
		t.Errorf("metrics changed across cached-prep compiles: %+v vs %+v", first.Metrics, second.Metrics)
	}
	if len(first.InitialMapping) != len(second.InitialMapping) {
		t.Fatalf("initial mapping length changed: %d vs %d", len(first.InitialMapping), len(second.InitialMapping))
	}
	for q := range first.InitialMapping {
		if first.InitialMapping[q] != second.InitialMapping[q] {
			t.Fatalf("initial mapping for qubit %d changed: %d vs %d", q, first.InitialMapping[q], second.InitialMapping[q])
		}
	}
}
