package core

import (
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
)

func TestReplacementPolicyString(t *testing.T) {
	cases := map[ReplacementPolicy]string{
		ReplaceLRU: "lru", ReplaceFIFO: "fifo", ReplaceRandom: "random",
		ReplaceBelady: "belady", ReplacementPolicy(9): "unknown",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestAllPoliciesCompleteAndVerify(t *testing.T) {
	d := arch.MustNew(arch.DefaultConfig(32))
	c := bench.MustByName("QFT_n32")
	st := c.Stats()
	for _, pol := range []ReplacementPolicy{ReplaceLRU, ReplaceFIFO, ReplaceRandom, ReplaceBelady} {
		opts := Options{Mapping: MappingTrivial, Replacement: pol}
		res, err := Compile(c, d, opts)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if got := res.Metrics.Gates2 + res.Metrics.FiberGates; got != st.TwoQubit {
			t.Errorf("%v: executed %d 2q gates, want %d", pol, got, st.TwoQubit)
		}
	}
}

func TestPoliciesAreDeterministic(t *testing.T) {
	d := arch.MustNew(arch.DefaultConfig(30))
	c := bench.MustByName("SQRT_n30")
	for _, pol := range []ReplacementPolicy{ReplaceRandom, ReplaceFIFO} {
		opts := Options{Mapping: MappingTrivial, Replacement: pol}
		a, err := Compile(c, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(c, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Metrics.Shuttles != b.Metrics.Shuttles {
			t.Errorf("%v: nondeterministic shuttle counts %d vs %d", pol, a.Metrics.Shuttles, b.Metrics.Shuttles)
		}
	}
}

func TestLRUCompetitiveWithBelady(t *testing.T) {
	// The paper claims LRU is near-optimal; the clairvoyant Belady policy
	// bounds the achievable shuttle count. LRU must stay within a small
	// constant factor on the communication-heavy benchmark.
	d := arch.MustNew(arch.DefaultConfig(30))
	c := bench.MustByName("SQRT_n30")
	run := func(pol ReplacementPolicy) int {
		res, err := Compile(c, d, Options{Mapping: MappingTrivial, Replacement: pol})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Shuttles
	}
	lru, belady := run(ReplaceLRU), run(ReplaceBelady)
	if lru > 2*belady+16 {
		t.Errorf("LRU %d shuttles not competitive with Belady %d", lru, belady)
	}
}
