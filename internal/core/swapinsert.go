package core

import (
	"math"

	"mussti/internal/arch"
	"mussti/internal/dag"
)

// weightTable computes the §3.3 weight table W(q, c) for every qubit in qs
// at once, scanning the look-ahead window a single time. Entry [qi][cj]
// counts gates within the first k remaining DAG layers that pair q_i with a
// qubit currently mapped to module c_j.
func (s *scheduler) weightTable(qs []int) map[int][]int {
	w := make(map[int][]int, len(qs))
	for _, q := range qs {
		w[q] = make([]int, len(s.d.Modules))
	}
	s.g.WalkAhead(s.opts.LookAhead, func(_ int, n *dag.Node) {
		a, b := n.Gate.Qubits[0], n.Gate.Qubits[1]
		if row, ok := w[a]; ok {
			row[s.moduleOf(b)]++
		}
		if row, ok := w[b]; ok {
			row[s.moduleOf(a)]++
		}
	})
	return w
}

// weightRow is weightTable for a single qubit, filling the scheduler's
// reused row buffer instead of allocating a map — trySwapFor runs after
// every fiber gate, so this sits on the scheduling hot path. The returned
// slice is valid until the next weightRow call.
func (s *scheduler) weightRow(q int) []int {
	if cap(s.wrowScratch) < len(s.d.Modules) {
		s.wrowScratch = make([]int, len(s.d.Modules))
	}
	row := s.wrowScratch[:len(s.d.Modules)]
	for i := range row {
		row[i] = 0
	}
	s.g.WalkAhead(s.opts.LookAhead, func(_ int, n *dag.Node) {
		if p := n.Gate.Other(q); p >= 0 {
			row[s.moduleOf(p)]++
		}
	})
	return row
}

func (s *scheduler) moduleOf(q int) int {
	return s.d.Zone(s.eng.ZoneOf(q)).Module
}

// maybeInsertSwaps applies the §3.3 rule after a fiber gate on (qa, qb):
// for each operand qx on module cx, if qx has no remaining near-term work
// on its own module (W(qx,cx)=0) but heavy work on some other module cj
// (W(qx,cj) > T), and cj hosts a qubit qc that is itself done with cj
// (W(qc,cj)=0), insert a logical SWAP(qx,qc) — three fiber MS gates — so
// the upcoming gates run locally on cj instead of over the fiber or via
// shuttles.
func (s *scheduler) maybeInsertSwaps(qa, qb int) error {
	for _, qx := range []int{qa, qb} {
		if err := s.trySwapFor(qx); err != nil {
			return err
		}
	}
	return nil
}

func (s *scheduler) trySwapFor(qx int) error {
	s.stats.SwapsConsidered++
	cx := s.moduleOf(qx)
	wx := s.weightRow(qx)
	if wx[cx] != 0 {
		return nil // still needed here in the near future; stay put
	}
	// Pick the foreign module with the most upcoming work, above threshold.
	bestModule, bestW := -1, s.opts.SwapThreshold
	for cj, weight := range wx {
		if cj == cx {
			continue
		}
		if weight > bestW {
			bestModule, bestW = cj, weight
		}
	}
	if bestModule == -1 {
		return nil
	}
	qc := s.pickSwapPartner(bestModule, qx)
	if qc == -1 {
		return nil
	}
	// qx just executed a fiber gate, so it sits in an optical zone; qc may
	// need delivery to its module's optical zone first.
	if s.d.Zone(s.eng.ZoneOf(qx)).Level != arch.LevelOptical {
		// SWAP insertion only triggers right after a fiber gate; qx moving
		// away would indicate a sequencing bug, so treat as not applicable.
		return nil
	}
	if err := s.routeToOptical(qc, qx); err != nil {
		return err
	}
	if err := s.eng.InsertedSwap(qx, qc); err != nil {
		return err
	}
	s.stats.SwapsInserted++
	s.obs.SwapInserted(qx, qc)
	s.clock++
	s.lastUsed[qx] = s.clock
	s.lastUsed[qc] = s.clock
	return nil
}

// pickSwapPartner finds a qubit sitting in an optical zone of module cj
// with W(qc, cj) == 0 — resident at the fiber interface but not needed on
// that module — preferring the least recently used candidate. Restricting
// candidates to the optical zone keeps the insertion conservative (the
// paper's own example swaps an interface-resident qubit): the SWAP then
// costs only its three fiber gates, with no staging shuttles whose heat
// would degrade every later gate in the zone. Returns -1 when no resident
// qualifies.
func (s *scheduler) pickSwapPartner(cj, exclude int) int {
	var residents []int
	for _, z := range s.d.ZonesByLevel(cj, arch.LevelOptical) {
		for _, q := range s.eng.Chain(z) {
			if q != exclude {
				residents = append(residents, q)
			}
		}
	}
	if len(residents) == 0 {
		return -1
	}
	w := s.weightTable(residents)
	best, bestUsed := -1, int64(math.MaxInt64)
	for _, q := range residents {
		if w[q][cj] != 0 {
			continue
		}
		if s.lastUsed[q] < bestUsed {
			best, bestUsed = q, s.lastUsed[q]
		}
	}
	return best
}
