package core

import (
	"math"

	"mussti/internal/arch"
	"mussti/internal/dag"
)

// weightTable computes the §3.3 weight table W(q, c) for every qubit in qs
// at once, scanning the look-ahead window a single time, into the
// scheduler's reused scratch (wtRowOf/wtRows). Entry (q_i, c_j) counts
// gates within the first k remaining DAG layers that pair q_i with a qubit
// currently mapped to module c_j. Read entries with weightAt and release
// the query with clearWeightTable before the next one; until then the
// scratch rows stay valid. Replacing the old per-call map[int][]int, this
// runs allocation-free in steady state — pickSwapPartner calls it on every
// SWAP-insertion check.
//
//mussti:hotpath
func (s *scheduler) weightTable(qs []int) {
	nm := len(s.d.Modules)
	if s.wtRowOf == nil {
		s.wtRowOf = make([]int32, s.c.NumQubits) //mussti:allow=hotalloc one-time lazy scratch sizing
	}
	if need := len(qs) * nm; cap(s.wtRows) < need {
		s.wtRows = make([]int, need) //mussti:allow=hotalloc scratch grows to the largest query, then stays
	}
	rows := s.wtRows[:len(qs)*nm]
	for i := range rows {
		rows[i] = 0
	}
	for i, q := range qs {
		s.wtRowOf[q] = int32(i + 1)
	}
	//mussti:allow=hotalloc visit closure pinned non-escaping by BenchmarkSchedulerPassReuse allocs/op
	s.g.WalkAhead(s.opts.LookAhead, func(_ int, n *dag.Node) {
		a, b := n.Gate.Qubits[0], n.Gate.Qubits[1]
		if r := s.wtRowOf[a]; r > 0 {
			rows[int(r-1)*nm+s.moduleOf(b)]++
		}
		if r := s.wtRowOf[b]; r > 0 {
			rows[int(r-1)*nm+s.moduleOf(a)]++
		}
	})
	s.wtRows = rows
}

// weightAt reads W(q, cj) from the scratch filled by the last weightTable
// call; q must have been in that call's query set.
//
//mussti:hotpath
func (s *scheduler) weightAt(q, cj int) int {
	return s.wtRows[(int(s.wtRowOf[q])-1)*len(s.d.Modules)+cj]
}

// clearWeightTable releases the query rows of qs so the next weightTable
// call starts clean. O(len(qs)), not O(NumQubits).
//
//mussti:hotpath
func (s *scheduler) clearWeightTable(qs []int) {
	for _, q := range qs {
		s.wtRowOf[q] = 0
	}
}

// weightRow is weightTable for a single qubit, filling the scheduler's
// reused row buffer instead of the multi-qubit scratch — trySwapFor runs
// after every fiber gate, so this sits on the scheduling hot path. The
// returned slice is valid until the next weightRow call.
//
//mussti:hotpath
func (s *scheduler) weightRow(q int) []int {
	if cap(s.wrowScratch) < len(s.d.Modules) {
		s.wrowScratch = make([]int, len(s.d.Modules)) //mussti:allow=hotalloc one-time lazy scratch sizing
	}
	row := s.wrowScratch[:len(s.d.Modules)]
	for i := range row {
		row[i] = 0
	}
	//mussti:allow=hotalloc visit closure pinned non-escaping by BenchmarkSchedulerPassReuse allocs/op
	s.g.WalkAhead(s.opts.LookAhead, func(_ int, n *dag.Node) {
		if p := n.Gate.Other(q); p >= 0 {
			row[s.moduleOf(p)]++
		}
	})
	return row
}

//mussti:hotpath
func (s *scheduler) moduleOf(q int) int {
	return s.d.Zone(s.eng.ZoneOf(q)).Module
}

// maybeInsertSwaps applies the §3.3 rule after a fiber gate on (qa, qb):
// for each operand qx on module cx, if qx has no remaining near-term work
// on its own module (W(qx,cx)=0) but heavy work on some other module cj
// (W(qx,cj) > T), and cj hosts a qubit qc that is itself done with cj
// (W(qc,cj)=0), insert a logical SWAP(qx,qc) — three fiber MS gates — so
// the upcoming gates run locally on cj instead of over the fiber or via
// shuttles.
//
//mussti:hotpath
func (s *scheduler) maybeInsertSwaps(qa, qb int) error {
	for _, qx := range [2]int{qa, qb} {
		if err := s.trySwapFor(qx); err != nil {
			return err
		}
	}
	return nil
}

//mussti:hotpath
func (s *scheduler) trySwapFor(qx int) error {
	s.stats.SwapsConsidered++
	cx := s.moduleOf(qx)
	wx := s.weightRow(qx)
	if wx[cx] != 0 {
		return nil // still needed here in the near future; stay put
	}
	// Pick the foreign module with the most upcoming work, above threshold.
	bestModule, bestW := -1, s.opts.SwapThreshold
	for cj, weight := range wx {
		if cj == cx {
			continue
		}
		if weight > bestW {
			bestModule, bestW = cj, weight
		}
	}
	if bestModule == -1 {
		return nil
	}
	qc := s.pickSwapPartner(bestModule, qx)
	if qc == -1 {
		return nil
	}
	// qx just executed a fiber gate, so it sits in an optical zone; qc may
	// need delivery to its module's optical zone first.
	if s.d.Zone(s.eng.ZoneOf(qx)).Level != arch.LevelOptical {
		// SWAP insertion only triggers right after a fiber gate; qx moving
		// away would indicate a sequencing bug, so treat as not applicable.
		return nil
	}
	if err := s.routeToOptical(qc, qx); err != nil {
		return err
	}
	if err := s.eng.InsertedSwap(qx, qc); err != nil {
		return err
	}
	s.stats.SwapsInserted++
	s.obs.SwapInserted(qx, qc)
	s.clock++
	s.lastUsed[qx] = s.clock
	s.lastUsed[qc] = s.clock
	return nil
}

// pickSwapPartner finds a qubit sitting in an optical zone of module cj
// with W(qc, cj) == 0 — resident at the fiber interface but not needed on
// that module — preferring the least recently used candidate. Restricting
// candidates to the optical zone keeps the insertion conservative (the
// paper's own example swaps an interface-resident qubit): the SWAP then
// costs only its three fiber gates, with no staging shuttles whose heat
// would degrade every later gate in the zone. Returns -1 when no resident
// qualifies. The candidate list and the weight table both live in reused
// scheduler scratch: this runs on every SWAP-insertion check and allocates
// nothing in steady state.
//
//mussti:hotpath
func (s *scheduler) pickSwapPartner(cj, exclude int) int {
	residents := s.residentScratch[:0]
	for _, z := range s.d.ZonesByLevel(cj, arch.LevelOptical) {
		for _, q := range s.eng.Chain(z) {
			if q != exclude {
				residents = append(residents, q)
			}
		}
	}
	s.residentScratch = residents
	if len(residents) == 0 {
		return -1
	}
	s.weightTable(residents)
	best, bestUsed := -1, int64(math.MaxInt64)
	for _, q := range residents {
		if s.weightAt(q, cj) != 0 {
			continue
		}
		if s.lastUsed[q] < bestUsed {
			best, bestUsed = q, s.lastUsed[q]
		}
	}
	s.clearWeightTable(residents)
	return best
}
