package core

import (
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
	"mussti/internal/sim"
)

// TestCompiledSchedulesVerify replays every small-suite schedule through
// the independent verifier (internal/sim.VerifySchedule): occupancy, gate
// legality, per-qubit program order, inserted-SWAP bookkeeping and timing
// must all check out for both mapping strategies, on both the EML device
// and the standard grid.
func TestCompiledSchedulesVerify(t *testing.T) {
	devices := []struct {
		name string
		d    *arch.Device
	}{
		{"eml", arch.MustNew(arch.DefaultConfig(32))},
		{"grid2x2", arch.MustNewGrid(2, 2, 12).Device()},
	}
	for _, dev := range devices {
		for _, name := range bench.SmallSuite() {
			for _, opts := range []Options{
				{Mapping: MappingTrivial, Trace: true},
				{Mapping: MappingSABRE, SwapInsertion: true, Trace: true},
			} {
				c := bench.MustByName(name)
				res, err := Compile(c, dev.d, opts)
				if err != nil {
					t.Fatalf("%s/%s: %v", dev.name, name, err)
				}
				zones := sim.ZonesOfDevice(dev.d)
				if err := sim.VerifySchedule(c, zones, res.InitialMapping, res.Trace); err != nil {
					t.Errorf("%s/%s (%v): schedule fails verification: %v",
						dev.name, name, opts.Mapping, err)
				}
			}
		}
	}
}

// TestCompiledMediumScheduleVerifies exercises the verifier on one
// medium-scale schedule with SWAP insertion active (fiber triples present).
func TestCompiledMediumScheduleVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("medium verification skipped in -short")
	}
	c := bench.MustByName("SQRT_n117")
	d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
	opts := DefaultOptions()
	opts.Trace = true
	res, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.VerifySchedule(c, sim.ZonesOfDevice(d), res.InitialMapping, res.Trace); err != nil {
		t.Fatal(err)
	}
}
