package core

import (
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
)

func TestSchedStatsAccounting(t *testing.T) {
	c := bench.MustByName("QFT_n32")
	d := arch.MustNew(arch.DefaultConfig(32))
	res, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	got := res.Stats
	// Every two-qubit gate either took the fast path or was routed.
	if got.ExecutableFast+got.Routed != st.TwoQubit {
		t.Errorf("fast %d + routed %d != 2q gates %d",
			got.ExecutableFast, got.Routed, st.TwoQubit)
	}
	if got.SwapsInserted != res.Metrics.InsertedSwaps {
		t.Errorf("stats swaps %d != metrics swaps %d", got.SwapsInserted, res.Metrics.InsertedSwaps)
	}
	if got.SwapsInserted > got.SwapsConsidered {
		t.Errorf("inserted %d > considered %d", got.SwapsInserted, got.SwapsConsidered)
	}
}

func TestSchedStatsEvictionsDriveShuttles(t *testing.T) {
	// On a congested device, evictions must show up and each eviction is
	// at least one shuttle.
	cfg := arch.DefaultConfig(0)
	cfg.Modules = 2
	cfg.TrapCapacity = 6
	d := arch.MustNew(cfg)
	c := bench.MustByName("SQRT_n30")
	res, err := Compile(c, d, Options{Mapping: MappingTrivial})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evictions == 0 {
		t.Error("no evictions on a congested device")
	}
	if res.Metrics.Shuttles < res.Stats.Evictions {
		t.Errorf("shuttles %d < evictions %d", res.Metrics.Shuttles, res.Stats.Evictions)
	}
}

func TestSchedStatsZeroOnFreeCircuit(t *testing.T) {
	// GHZ on a roomy grid device: everything should co-locate eventually
	// but never consider SWAPs (no optical zones on a grid).
	g := arch.MustNewGrid(2, 2, 12)
	c := bench.MustByName("GHZ_n32")
	res, err := Compile(c, g.Device(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SwapsConsidered != 0 || res.Stats.SwapsInserted != 0 {
		t.Errorf("grid run considered SWAP insertion: %+v", res.Stats)
	}
}
