package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mussti/internal/arch"
	"mussti/internal/circuit"
)

// Compiler is a nameable compilation strategy: anything that can schedule a
// circuit onto a Target machine and report the unified Result. The four
// built-in compilers — "mussti" here, "murali"/"dai"/"mqt" in
// internal/baseline — register themselves at init; out-of-tree compilers
// join through RegisterCompiler and automatically appear in every
// experiment, the measurement cache and CSV output of the eval harness.
type Compiler interface {
	// Name is the registry identifier, e.g. "mussti". Lower-case, stable,
	// unique; it keys cache entries and CLI flags.
	Name() string
	// Compile schedules c onto the target. A nil cfg MUST be treated as
	// exactly DefaultConfigFor(the compiler): the config declared via
	// ConfigDefaulter, or the zero CompileConfig otherwise — harnesses rely
	// on that equivalence when resolving and cache-keying nil configs, so a
	// compiler whose defaults differ from the zero config must implement
	// ConfigDefaulter rather than special-case nil. Compilers must not
	// mutate cfg. A compiler that does not support the target's machine
	// shape returns an error.
	Compile(ctx context.Context, c *circuit.Circuit, t arch.Target, cfg *CompileConfig) (*Result, error)
}

// DisplayNamer is optionally implemented by compilers whose human-facing
// label differs from their registry name — the paper's table labels
// ("MUSS-TI", "QCCD-Murali", ...). CompilerLabel falls back to Name.
type DisplayNamer interface {
	DisplayName() string
}

// ConfigDefaulter is implemented by compilers whose default configuration
// differs from the zero CompileConfig (MUSS-TI defaults to SABRE mapping +
// SWAP insertion, which zero fields cannot express). It is not optional for
// such compilers: Compile's nil-config contract and the harness's cache
// keys both define "nil config" as DefaultConfigFor, which falls back to
// the zero value when this interface is absent.
type ConfigDefaulter interface {
	DefaultConfig() CompileConfig
}

// TargetSupporter is optionally implemented by compilers restricted to
// certain machine shapes (the baselines target only the monolithic grid),
// so harnesses can skip an incompatible compiler up front — with a note —
// instead of failing a whole experiment mid-run. Compile must still reject
// unsupported targets itself; this is advisory.
type TargetSupporter interface {
	SupportsTarget(t arch.Target) bool
}

// SupportsTarget reports whether the compiler declares support for the
// target's machine shape; compilers that don't implement TargetSupporter
// are assumed to support anything (and error from Compile if not).
func SupportsTarget(c Compiler, t arch.Target) bool {
	if s, ok := c.(TargetSupporter); ok {
		return s.SupportsTarget(t)
	}
	return true
}

// CompilerLabel returns the compiler's human-facing label: DisplayName when
// implemented, Name otherwise. Measurement rows and table columns use it.
func CompilerLabel(c Compiler) string {
	if d, ok := c.(DisplayNamer); ok {
		return d.DisplayName()
	}
	return c.Name()
}

// DefaultConfigFor returns the compiler's default configuration:
// DefaultConfig when implemented, the zero CompileConfig otherwise.
func DefaultConfigFor(c Compiler) CompileConfig {
	if d, ok := c.(ConfigDefaulter); ok {
		return d.DefaultConfig()
	}
	return CompileConfig{}
}

// The process-wide compiler registry. Registration order is preserved so
// Compilers() is deterministic: package init order registers "mussti" first,
// then the three baselines.
var (
	registryMu   sync.RWMutex
	registry     = make(map[string]Compiler)
	registryList []Compiler
)

// RegisterCompiler adds a compiler to the process-wide registry. It errors
// on an empty name or a name already taken; registration never replaces.
func RegisterCompiler(c Compiler) error {
	if c == nil {
		return fmt.Errorf("core: RegisterCompiler(nil)")
	}
	name := c.Name()
	if name == "" {
		return fmt.Errorf("core: compiler %T has an empty name", c)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("core: compiler %q already registered", name)
	}
	registry[name] = c
	registryList = append(registryList, c)
	return nil
}

// MustRegisterCompiler is RegisterCompiler for init-time registration of
// known-good compilers; it panics on error.
func MustRegisterCompiler(c Compiler) {
	if err := RegisterCompiler(c); err != nil {
		panic(err)
	}
}

// LookupCompiler returns the registered compiler with the given name. The
// error lists the registered names, so a CLI typo is self-explaining.
func LookupCompiler(name string) (Compiler, error) {
	registryMu.RLock()
	c, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		names := CompilerNames()
		sort.Strings(names)
		return nil, fmt.Errorf("core: unknown compiler %q (registered: %v)", name, names)
	}
	return c, nil
}

// Compilers returns the registered compilers in registration order. The
// slice is a copy; callers may keep or mutate it freely.
func Compilers() []Compiler {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Compiler, len(registryList))
	copy(out, registryList)
	return out
}

// CompilerNames returns the registered names in registration order.
func CompilerNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, len(registryList))
	for i, c := range registryList {
		out[i] = c.Name()
	}
	return out
}

// musstiCompiler adapts CompileContext to the Compiler interface. It accepts
// both machine shapes: an EML-QCCD *Device directly, and a *Grid through the
// zone/module adapter (Table 2 applies MUSS-TI "on these standard QCCD
// structures").
type musstiCompiler struct{}

func (musstiCompiler) Name() string        { return "mussti" }
func (musstiCompiler) DisplayName() string { return "MUSS-TI" }

// DefaultConfig is the paper's headline configuration (DefaultOptions).
func (musstiCompiler) DefaultConfig() CompileConfig { return DefaultOptions() }

// SupportsTarget: both machine shapes of the paper.
func (musstiCompiler) SupportsTarget(t arch.Target) bool {
	switch t.(type) {
	case *arch.Device, *arch.Grid:
		return true
	}
	return false
}

func (musstiCompiler) Compile(ctx context.Context, c *circuit.Circuit, t arch.Target, cfg *CompileConfig) (*Result, error) {
	d, err := deviceFor(t)
	if err != nil {
		return nil, err
	}
	opts := DefaultOptions()
	if cfg != nil {
		opts = *cfg
	}
	return CompileContext(ctx, c, d, opts)
}

func init() {
	MustRegisterCompiler(musstiCompiler{})
}
