package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mussti/internal/arch"
	"mussti/internal/circuit"
)

// BatchVariant is one (target, config) pair of a CompileBatch. A nil Config
// means the paper's headline configuration (DefaultOptions), matching the
// Compiler interface's nil-config contract.
type BatchVariant struct {
	Target arch.Target
	Config *CompileConfig
}

// BatchCompiler is optionally implemented by compilers that can compile many
// (target, config) variants of one circuit while sharing the per-circuit
// preparation, so harnesses sweeping configurations over a fixed circuit
// (eval's Runner, the service endpoints to come) amortise the O(g) prep and
// get intra-batch concurrency without knowing how. workers ≤ 0 means "pick
// a sensible bound" (GOMAXPROCS). results[i] must correspond to variants[i]
// and be byte-identical to a standalone Compile of that variant.
type BatchCompiler interface {
	Compiler
	CompileBatch(ctx context.Context, c *circuit.Circuit, variants []BatchVariant, workers int) ([]*Result, error)
}

// CompileBatch compiles one circuit against many (target, config) variants,
// building the per-circuit preparation — dependency DAG, per-qubit gate
// lists, next-use tables — once and sharing it across all of them (each
// concurrent worker schedules over a cheap Clone, not a rebuild). Variants
// run on a worker group bounded by GOMAXPROCS; use CompileBatchBounded to
// set the bound explicitly.
//
// results[i] corresponds to variants[i] and is byte-identical to what
// Compile(c, variants[i]...) returns (modulo the wall-clock CompileTime),
// regardless of worker count or completion order. On failure the error
// reported is the lowest-indexed variant that failed before cancellation
// propagated; remaining variants are abandoned.
func CompileBatch(ctx context.Context, c *circuit.Circuit, variants []BatchVariant) ([]*Result, error) {
	return CompileBatchBounded(ctx, c, variants, 0)
}

// CompileBatchBounded is CompileBatch with an explicit worker bound
// (workers ≤ 0 means GOMAXPROCS). Callers that already run inside a worker
// pool — eval's Runner — pass the slots they actually own, so batching
// never oversubscribes the process.
func CompileBatchBounded(ctx context.Context, c *circuit.Circuit, variants []BatchVariant, workers int) ([]*Result, error) {
	if len(variants) == 0 {
		return nil, nil
	}
	// Resolve every target and config up front: validation errors surface
	// deterministically on the lowest-indexed bad variant, before any
	// scheduling work starts.
	devs := make([]*arch.Device, len(variants))
	cfgs := make([]Options, len(variants))
	for i, v := range variants {
		d, err := deviceFor(v.Target)
		if err != nil {
			return nil, fmt.Errorf("core: batch variant %d: %w", i, err)
		}
		opts := DefaultOptions()
		if v.Config != nil {
			opts = *v.Config
		}
		if c.NumQubits > d.Capacity() {
			return nil, fmt.Errorf("core: batch variant %d: circuit %q needs %d qubits, device holds %d",
				i, c.Name, c.NumQubits, d.Capacity())
		}
		devs[i], cfgs[i] = d, opts.withDefaults()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(variants) {
		workers = len(variants)
	}

	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	b := &batchRun{
		ctx:      ictx,
		cancel:   cancel,
		variants: variants,
		devs:     devs,
		cfgs:     cfgs,
		results:  make([]*Result, len(variants)),
		errs:     make([]error, len(variants)),
	}
	shared := newPrep(c)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Worker 0 schedules over the shared prep itself; every other worker
		// gets a clone. A worker owns its prep exclusively and passes reuse
		// it serially, so variants processed by one worker replay it via
		// Graph.Reset exactly like back-to-back Compile calls.
		p := shared
		if w > 0 {
			p = shared.clone()
		}
		wg.Add(1)
		go func(p *prep) {
			defer wg.Done()
			b.worker(p)
		}(p)
	}
	wg.Wait()
	results, errs := b.results, b.errs

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The outer ctx is live, so any context.Canceled here is internal
	// cancellation fallout from a sibling's real error — skip past it.
	for _, e := range errs {
		if e != nil && !errors.Is(e, context.Canceled) {
			return nil, e
		}
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return results, nil
}

// batchRun is the shared state of one CompileBatchBounded call: the
// resolved variant table, the claim counter, and the per-variant result and
// error slots. It exists so the worker claim loop is a named method the
// static-analysis suite can see — an anonymous closure is invisible to
// hotalloc and the perf budget.
type batchRun struct {
	ctx      context.Context
	cancel   context.CancelFunc
	variants []BatchVariant
	devs     []*arch.Device
	cfgs     []Options
	results  []*Result
	errs     []error
	next     atomic.Int64
}

// worker claims variants off the shared counter and schedules each over p
// until the batch drains, a sibling fails, or the context dies. Each worker
// owns its prep exclusively, so successive variants replay it via
// Graph.Reset exactly like back-to-back Compile calls.
//
//mussti:hotpath
func (b *batchRun) worker(p *prep) {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= len(b.variants) || b.ctx.Err() != nil {
			return
		}
		start := time.Now() //mussti:allow=determinism CompileTime is reporting metadata, never schedule input
		res, err := compileWithPrep(b.ctx, p, b.devs[i], b.cfgs[i])
		if err != nil {
			b.errs[i] = err
			b.cancel()
			return
		}
		// Per-variant scheduling time; the shared prep build is amortised
		// across the batch and not attributed to anyone.
		res.CompileTime = time.Since(start) //mussti:allow=determinism CompileTime is reporting metadata, never schedule input
		b.results[i] = res
	}
}

// deviceFor resolves a Target to the EML-QCCD device MUSS-TI schedules on:
// a *Device directly, or a *Grid through the zone/module adapter.
func deviceFor(t arch.Target) (*arch.Device, error) {
	switch tt := t.(type) {
	case *arch.Device:
		return tt, nil
	case *arch.Grid:
		return tt.Device(), nil
	}
	return nil, fmt.Errorf("core: mussti cannot target %T (want *arch.Device or *arch.Grid)", t)
}

// CompileBatch implements BatchCompiler for the registry's "mussti" entry.
func (musstiCompiler) CompileBatch(ctx context.Context, c *circuit.Circuit, variants []BatchVariant, workers int) ([]*Result, error) {
	return CompileBatchBounded(ctx, c, variants, workers)
}
