package core

import (
	"sync"

	"mussti/internal/circuit"
)

// reversePrepMaxCircuits bounds how many distinct circuits the reverse-prep
// cache tracks before it is wholesale cleared.
const reversePrepMaxCircuits = 64

// reversePreps caches the SABRE reverse pass's precomputation per source
// circuit. Reversing the circuit and rebuilding its DAG and per-qubit
// tables is O(g) work that depends only on the circuit, yet every compile
// used to repeat it — and experiments and benchmarks compile the same
// circuit many times over (across architectures, repetitions, candidate
// configurations). Entries are sync.Pools so concurrent compiles of one
// circuit each get an exclusive prep (a prep may be reused serially, never
// shared) and idle preps stay reclaimable by the GC. When one circuit too
// many appears the whole table is dropped: real runs churn through few
// distinct circuits, and wholesale clearing keeps eviction deterministic
// where evicting "some" map entry would not be.
var reversePreps = struct {
	mu sync.Mutex
	m  map[*circuit.Circuit]*sync.Pool
}{m: make(map[*circuit.Circuit]*sync.Pool)}

// acquireReversePrep returns a prep for the reverse of c — cached when one
// is idle, freshly built otherwise — plus the pool to Put it back into once
// the pass is done. The caller has exclusive use until then. Reuse cannot
// change output: newSchedulerWith rewinds the prep's DAG and treats every
// other prep structure as read-only, so a recycled prep is indistinguishable
// from a fresh one.
//
// Safe under concurrent compiles of one circuit (intra-compile parallelism
// fans compiles out and CompileBatch compiles many variants at once): the
// map is mutex-guarded, pool.Get hands each goroutine an exclusive prep,
// and returning a prep to a pool that a concurrent wholesale clear has
// since orphaned merely lets the GC reclaim it. TestReversePrepConcurrent
// pins this with -race.
func acquireReversePrep(c *circuit.Circuit) (*prep, *sync.Pool) {
	reversePreps.mu.Lock()
	pool := reversePreps.m[c]
	if pool == nil {
		if len(reversePreps.m) >= reversePrepMaxCircuits {
			clear(reversePreps.m)
		}
		pool = &sync.Pool{}
		reversePreps.m[c] = pool
	}
	reversePreps.mu.Unlock()
	if p, _ := pool.Get().(*prep); p != nil {
		return p, pool
	}
	return newPrep(c.Reverse()), pool
}
