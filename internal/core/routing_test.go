package core

import (
	"context"
	"math"
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit"
)

// testScheduler builds a scheduler over a tiny 2-module device with a
// given placement, for white-box routing tests.
func testScheduler(t *testing.T, c *circuit.Circuit, placement []int) (*scheduler, *arch.Device) {
	t.Helper()
	d := arch.MustNew(arch.Config{
		Modules: 2, TrapCapacity: 4,
		StorageZones: 1, OperationZones: 1, OpticalZones: 1,
	})
	s, err := newScheduler(context.Background(), c, d, Options{}.withDefaults(), placement)
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

// Zone layout per module: 0 storage, 1 operation, 2 optical (module 0);
// 3 storage, 4 operation, 5 optical (module 1).

func TestExecutableNowCases(t *testing.T) {
	c := circuit.New("x", 4)
	c.MS(0, 1)
	s, _ := testScheduler(t, c, []int{1, 1, 2, 5})
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 1, true},  // same operation zone
		{2, 3, true},  // optical zones of different modules (fiber)
		{0, 2, false}, // operation vs optical, same module
		{0, 3, false}, // operation vs remote optical
	}
	for _, tc := range cases {
		if got := s.executableNow(tc.a, tc.b); got != tc.want {
			t.Errorf("executableNow(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestExecutableNowStorageIsNot(t *testing.T) {
	c := circuit.New("x", 2)
	c.MS(0, 1)
	s, _ := testScheduler(t, c, []int{0, 0})
	if s.executableNow(0, 1) {
		t.Error("co-located storage qubits reported executable")
	}
}

func TestGatherCostPrefersPartnerZone(t *testing.T) {
	c := circuit.New("x", 2)
	c.MS(0, 1)
	s, _ := testScheduler(t, c, []int{1, 0}) // q0 in operation, q1 in storage
	// Gathering in the operation zone moves one qubit; in the optical
	// zone it moves both.
	costOp := s.gatherCost(1, 0, 1)
	costOpt := s.gatherCost(2, 0, 1)
	if costOp >= costOpt {
		t.Errorf("gatherCost op=%v >= optical=%v", costOp, costOpt)
	}
}

func TestGatherCostPoisonsCrossModule(t *testing.T) {
	c := circuit.New("x", 2)
	c.MS(0, 1)
	s, _ := testScheduler(t, c, []int{1, 4}) // different modules
	if cost := s.gatherCost(1, 0, 1); !math.IsInf(cost, 1) {
		t.Errorf("cross-module gather cost = %v, want +Inf", cost)
	}
}

func TestEvictionTargetDescendsLevels(t *testing.T) {
	c := circuit.New("x", 1)
	s, _ := testScheduler(t, c, []int{2})
	// From the optical zone (2), eviction should land in operation (1).
	target, err := s.evictionTarget(2)
	if err != nil {
		t.Fatal(err)
	}
	if target != 1 {
		t.Errorf("eviction from optical went to zone %d, want operation 1", target)
	}
}

func TestEvictionTargetFallsBackSideways(t *testing.T) {
	// Fill both lower-level zones of module 0 completely: eviction from
	// the operation zone must fall back to any zone with space (optical).
	c := circuit.New("x", 9)
	placement := []int{0, 0, 0, 0, 1, 1, 1, 1, 2} // storage full, operation full
	s, _ := testScheduler(t, c, placement)
	target, err := s.evictionTarget(1)
	if err != nil {
		t.Fatal(err)
	}
	if target != 2 {
		t.Errorf("fallback eviction went to zone %d, want optical 2", target)
	}
}

func TestMoveWithEvictionEvictsLRU(t *testing.T) {
	c := circuit.New("x", 6)
	c.MS(4, 0)
	// Operation zone (1) full with q0..3; q4 in storage must displace one.
	s, _ := testScheduler(t, c, []int{1, 1, 1, 1, 0, 0})
	s.lastUsed = []int64{5, 1, 4, 3, 0, 0} // q1 is LRU among residents
	if err := s.moveWithEviction(4, 1, 4, 0); err != nil {
		t.Fatal(err)
	}
	if s.eng.ZoneOf(1) == 1 {
		t.Error("LRU victim q1 still in the operation zone")
	}
	if s.eng.ZoneOf(4) != 1 {
		t.Errorf("q4 at zone %d, want 1", s.eng.ZoneOf(4))
	}
	if s.stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.stats.Evictions)
	}
}

func TestPickVictimProtectsOperands(t *testing.T) {
	c := circuit.New("x", 4)
	s, _ := testScheduler(t, c, []int{1, 1, 1, 1})
	// All protected except q3.
	v := s.pickVictim(1, 0, 1)
	if v == 0 || v == 1 {
		t.Errorf("victim %d is protected", v)
	}
	// Everything protected: no victim. (Zone holds q0..q3; protect all by
	// running twice with the two pairs.)
	s2, _ := testScheduler(t, c, []int{1, 1, 5, 5})
	if v := s2.pickVictim(1, 0, 1); v != -1 {
		t.Errorf("victim %d from fully protected zone", v)
	}
}

func TestFutureAttractionPullsTowardOptical(t *testing.T) {
	c := circuit.New("x", 3)
	c.MS(0, 1) // current gate
	c.MS(0, 2) // future gate: q2 lives on module 1 → q0 pulled to optical
	s, _ := testScheduler(t, c, []int{1, 1, 4})
	attr := s.futureAttraction(0, 1)
	found := false
	for _, a := range attr {
		if a.qubit == 0 && a.target == 2 { // module 0's optical zone
			found = true
		}
	}
	if !found {
		t.Errorf("no optical attraction recorded: %+v", attr)
	}
}

func TestAttractionCostZeroWhenTargetMatches(t *testing.T) {
	c := circuit.New("x", 3)
	c.MS(0, 1)
	c.MS(0, 2)
	s, _ := testScheduler(t, c, []int{1, 1, 1})
	attr := []attraction{{qubit: 0, target: 1, weight: 1}}
	if cost := s.attractionCost(1, attr); cost != 0 {
		t.Errorf("matched-target attraction cost = %v, want 0", cost)
	}
	if cost := s.attractionCost(2, attr); cost <= 0 {
		t.Errorf("mismatched-target attraction cost = %v, want > 0", cost)
	}
}

func TestNextUseSentinel(t *testing.T) {
	c := circuit.New("x", 2)
	c.MS(0, 1)
	c.Measure(0)
	s, _ := testScheduler(t, c, []int{1, 1})
	if nu := s.nextUse(0); nu != 0 {
		t.Errorf("nextUse(0) = %d, want gate 0", nu)
	}
	// Consume the gate; next use becomes the sentinel (measure is 1q).
	s.cursor[0] = 1
	if nu := s.nextUse(0); nu != math.MaxInt32 {
		t.Errorf("nextUse after last 2q gate = %d, want sentinel", nu)
	}
}
