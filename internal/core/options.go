package core

import (
	"mussti/internal/physics"
)

// MappingStrategy selects the initial qubit placement (§3.4).
type MappingStrategy int

const (
	// MappingTrivial places qubits sequentially into zones ordered from the
	// highest level to the lowest.
	MappingTrivial MappingStrategy = iota
	// MappingSABRE runs the two-fold forward/reverse search of Li et
	// al. [37] adapted to EML-QCCD, using the final mapping of a reverse
	// pass as the real run's initial mapping.
	MappingSABRE
)

// String names the strategy for reports.
func (m MappingStrategy) String() string {
	switch m {
	case MappingTrivial:
		return "trivial"
	case MappingSABRE:
		return "sabre"
	}
	return "unknown"
}

// Options configures a compilation.
type Options struct {
	// Mapping is the initial-placement strategy.
	Mapping MappingStrategy
	// SwapInsertion enables the inter-module SWAP-gate insertion of §3.3.
	SwapInsertion bool
	// LookAhead is the weight-table window k in DAG layers (paper: 8).
	LookAhead int
	// SwapThreshold is the weight threshold T for inserting a SWAP
	// (paper: 4; must exceed the 3-MS cost of a SWAP).
	SwapThreshold int
	// Params is the physics model; zero-value means physics.Default().
	Params physics.Params
	// Trace enables op-level trace recording on the engine.
	Trace bool
	// Replacement selects the conflict-handling victim policy; the zero
	// value is the paper's LRU scheduler. The alternatives (FIFO, random,
	// clairvoyant Belady) exist for the replacement-policy ablation.
	Replacement ReplacementPolicy
	// DisableRoutingLookAhead turns off the look-ahead attraction term in
	// zone selection (an implementation design choice on top of the
	// paper's multi-level rule); the `routing` extension experiment
	// measures its value.
	DisableRoutingLookAhead bool
	// Observer, when non-nil, receives per-step progress callbacks (gates
	// scheduled, shuttles, evictions, inserted SWAPs) from the run. It
	// never changes the schedule.
	Observer Observer
}

// DefaultOptions returns the paper's headline configuration:
// SABRE mapping + SWAP insertion, k=8, T=4, Table-1 physics.
func DefaultOptions() Options {
	return Options{
		Mapping:       MappingSABRE,
		SwapInsertion: true,
		LookAhead:     8,
		SwapThreshold: 4,
		Params:        physics.Default(),
	}
}

func (o Options) withDefaults() Options {
	if o.LookAhead <= 0 {
		o.LookAhead = 8
	}
	if o.SwapThreshold <= 0 {
		o.SwapThreshold = 4
	}
	if o.Params == (physics.Params{}) {
		o.Params = physics.Default()
	}
	return o
}
