package core

import (
	"fmt"

	"mussti/internal/physics"
)

// MappingStrategy selects the initial qubit placement (§3.4).
type MappingStrategy int

const (
	// MappingTrivial places qubits sequentially into zones ordered from the
	// highest level to the lowest.
	MappingTrivial MappingStrategy = iota
	// MappingSABRE runs the two-fold forward/reverse search of Li et
	// al. [37] adapted to EML-QCCD, using the final mapping of a reverse
	// pass as the real run's initial mapping.
	MappingSABRE
)

// String names the strategy for reports.
func (m MappingStrategy) String() string {
	switch m {
	case MappingTrivial:
		return "trivial"
	case MappingSABRE:
		return "sabre"
	}
	return "unknown"
}

// CompileConfig is the one configuration type shared by every compiler
// behind the Compiler interface. It is the union of the MUSS-TI and baseline
// knobs: each compiler reads the fields it understands and ignores the rest
// (the baselines use Params, LookAhead, Trace and Observer; the mapping,
// SWAP-insertion and replacement fields are MUSS-TI-specific).
//
// Zero values split two ways. The numeric/physics knobs read zero as "this
// compiler's own default" — LookAhead 0 is k=8 for MUSS-TI and k=4 for the
// Dai baseline, zero Params is the Table-1 physics. The enum/bool knobs'
// zero values are real settings, not placeholders: zero Mapping is the
// trivial mapping, zero SwapInsertion is off, zero Replacement is LRU (the
// ablation experiments rely on exactly these). So the zero CompileConfig is
// a meaningful configuration, distinct from the paper's headline one; for
// the latter pass a nil *CompileConfig to Compiler.Compile (each compiler
// substitutes its own paper defaults) or start from NewCompileConfig.
//
// Build one literally, or with the functional options layered on the paper
// defaults: NewCompileConfig(WithLookAhead(6), WithTrace()).
type CompileConfig struct {
	// Mapping is the initial-placement strategy.
	Mapping MappingStrategy
	// SwapInsertion enables the inter-module SWAP-gate insertion of §3.3.
	SwapInsertion bool
	// LookAhead is the weight-table window k in DAG layers (MUSS-TI default
	// 8; the Dai baseline's destination look-ahead defaults to 4).
	LookAhead int
	// SwapThreshold is the weight threshold T for inserting a SWAP
	// (paper: 4; must exceed the 3-MS cost of a SWAP).
	SwapThreshold int
	// Params is the physics model; zero-value means physics.Default().
	Params physics.Params
	// Trace enables op-level trace recording on the engine.
	Trace bool
	// Replacement selects the conflict-handling victim policy; the zero
	// value is the paper's LRU scheduler. The alternatives (FIFO, random,
	// clairvoyant Belady) exist for the replacement-policy ablation.
	Replacement ReplacementPolicy
	// DisableRoutingLookAhead turns off the look-ahead attraction term in
	// zone selection (an implementation design choice on top of the
	// paper's multi-level rule); the `routing` extension experiment
	// measures its value.
	DisableRoutingLookAhead bool
	// Observer, when non-nil, receives per-step progress callbacks (gates
	// scheduled, shuttles, evictions, inserted SWAPs) from the run. It
	// never changes the schedule.
	Observer Observer
	// Parallelism bounds how many scheduling passes one compile may run
	// concurrently. 0 or 1 (the default) is fully sequential — the exact
	// pre-existing code path. At 2+ the SABRE candidate production runs fan
	// out over goroutines with a deterministic reduction, so the Result is
	// byte-identical at any setting; see CompileContext. Like Observer it is
	// an execution-resource knob, not a semantic one: it is excluded from
	// CacheKey and never crosses the dist wire. Callers that already run
	// many compiles in parallel (eval's Runner) should leave it at 1 unless
	// they have idle slots to burn — oversubscribing GOMAXPROCS only adds
	// scheduler churn.
	Parallelism int
}

// Options configures a MUSS-TI compilation.
//
// Deprecated: Options is the pre-registry name of CompileConfig; both
// compilers now share the one configuration type. New code should say
// CompileConfig.
type Options = CompileConfig

// CompileOption mutates a CompileConfig; see NewCompileConfig.
type CompileOption func(*CompileConfig)

// NewCompileConfig returns the paper's MUSS-TI headline configuration
// (DefaultOptions) with the given options applied — the constructor for
// callers who want to tweak one knob without spelling out the whole struct:
//
//	cfg := core.NewCompileConfig(core.WithLookAhead(6), core.WithTrace())
//
// Because the base is MUSS-TI's defaults (k=8, SABRE, SWAP insertion),
// handing the result to a different compiler overrides that compiler's own
// defaults where fields overlap (the Dai baseline would run with k=8, not
// its paper k=4). For cross-compiler sweeps where each compiler should use
// its own defaults, pass nil to Compiler.Compile instead and vary only the
// knob you mean to vary.
func NewCompileConfig(opts ...CompileOption) *CompileConfig {
	cfg := DefaultOptions()
	for _, o := range opts {
		o(&cfg)
	}
	return &cfg
}

// WithMapping selects the initial-placement strategy.
func WithMapping(m MappingStrategy) CompileOption {
	return func(c *CompileConfig) { c.Mapping = m }
}

// WithSwapInsertion toggles the §3.3 inter-module SWAP insertion.
func WithSwapInsertion(on bool) CompileOption {
	return func(c *CompileConfig) { c.SwapInsertion = on }
}

// WithLookAhead sets the look-ahead window k in DAG layers.
func WithLookAhead(k int) CompileOption {
	return func(c *CompileConfig) { c.LookAhead = k }
}

// WithSwapThreshold sets the SWAP-insertion weight threshold T.
func WithSwapThreshold(t int) CompileOption {
	return func(c *CompileConfig) { c.SwapThreshold = t }
}

// WithPhysics sets the physics model (Table 1 of the paper by default).
func WithPhysics(p physics.Params) CompileOption {
	return func(c *CompileConfig) { c.Params = p }
}

// WithTrace enables op-level trace recording.
func WithTrace() CompileOption {
	return func(c *CompileConfig) { c.Trace = true }
}

// WithReplacement selects the conflict-handling victim policy.
func WithReplacement(p ReplacementPolicy) CompileOption {
	return func(c *CompileConfig) { c.Replacement = p }
}

// WithObserver attaches per-step progress callbacks to the run.
func WithObserver(o Observer) CompileOption {
	return func(c *CompileConfig) { c.Observer = o }
}

// WithRoutingLookAhead toggles the look-ahead attraction term in zone
// selection (on by default).
func WithRoutingLookAhead(on bool) CompileOption {
	return func(c *CompileConfig) { c.DisableRoutingLookAhead = !on }
}

// WithParallelism bounds how many scheduling passes one compile may run
// concurrently (default 1: sequential). Output is byte-identical at any
// setting; see CompileConfig.Parallelism for oversubscription guidance.
func WithParallelism(n int) CompileOption {
	return func(c *CompileConfig) { c.Parallelism = n }
}

// DefaultOptions returns the paper's headline configuration:
// SABRE mapping + SWAP insertion, k=8, T=4, Table-1 physics.
func DefaultOptions() CompileConfig {
	return CompileConfig{
		Mapping:       MappingSABRE,
		SwapInsertion: true,
		LookAhead:     8,
		SwapThreshold: 4,
		Params:        physics.Default(),
	}
}

// CacheKey renders every semantic field deterministically for measurement
// caches: no pointers, maps or addresses are involved, so equal configs
// yield equal keys in any process. The Observer and Parallelism are
// deliberately excluded — observation never changes a measurement, and
// parallelism only changes how fast the identical Result arrives — and
// Trace is included so traced runs never alias untraced ones (callers
// typically refuse to cache them at all).
func (c CompileConfig) CacheKey() string {
	return fmt.Sprintf("map=%d swap=%t k=%d T=%d repl=%d nolook=%t trace=%t|phys%+v",
		c.Mapping, c.SwapInsertion, c.LookAhead, c.SwapThreshold,
		c.Replacement, c.DisableRoutingLookAhead, c.Trace, c.Params)
}

func (o CompileConfig) withDefaults() CompileConfig {
	if o.LookAhead <= 0 {
		o.LookAhead = 8
	}
	if o.SwapThreshold <= 0 {
		o.SwapThreshold = 4
	}
	if o.Params == (physics.Params{}) {
		o.Params = physics.Default()
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	return o
}
