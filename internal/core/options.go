// Package core implements the MUSS-TI compiler (§3 of the paper): the
// multi-level shuttle scheduler for EML-QCCD devices.
//
// The scheduling loop mirrors multi-level memory management. Qubits are
// tasks; the storage zone is external storage (level 0), the operation zone
// main memory (level 1), the optical zone the CPU (level 2). A two-qubit
// gate needs its ions delivered to the right zone on time; misplaced
// partners are routed in, and when a target zone is full the least recently
// used resident is evicted one level down — the trap-world analogue of a
// page fault.
package core

import (
	"mussti/internal/physics"
)

// MappingStrategy selects the initial qubit placement (§3.4).
type MappingStrategy int

const (
	// MappingTrivial places qubits sequentially into zones ordered from the
	// highest level to the lowest.
	MappingTrivial MappingStrategy = iota
	// MappingSABRE runs the two-fold forward/reverse search of Li et
	// al. [37] adapted to EML-QCCD, using the final mapping of a reverse
	// pass as the real run's initial mapping.
	MappingSABRE
)

// String names the strategy for reports.
func (m MappingStrategy) String() string {
	switch m {
	case MappingTrivial:
		return "trivial"
	case MappingSABRE:
		return "sabre"
	}
	return "unknown"
}

// Options configures a compilation.
type Options struct {
	// Mapping is the initial-placement strategy.
	Mapping MappingStrategy
	// SwapInsertion enables the inter-module SWAP-gate insertion of §3.3.
	SwapInsertion bool
	// LookAhead is the weight-table window k in DAG layers (paper: 8).
	LookAhead int
	// SwapThreshold is the weight threshold T for inserting a SWAP
	// (paper: 4; must exceed the 3-MS cost of a SWAP).
	SwapThreshold int
	// Params is the physics model; zero-value means physics.Default().
	Params physics.Params
	// Trace enables op-level trace recording on the engine.
	Trace bool
	// Replacement selects the conflict-handling victim policy; the zero
	// value is the paper's LRU scheduler. The alternatives (FIFO, random,
	// clairvoyant Belady) exist for the replacement-policy ablation.
	Replacement ReplacementPolicy
	// DisableRoutingLookAhead turns off the look-ahead attraction term in
	// zone selection (an implementation design choice on top of the
	// paper's multi-level rule); the `routing` extension experiment
	// measures its value.
	DisableRoutingLookAhead bool
}

// DefaultOptions returns the paper's headline configuration:
// SABRE mapping + SWAP insertion, k=8, T=4, Table-1 physics.
func DefaultOptions() Options {
	return Options{
		Mapping:       MappingSABRE,
		SwapInsertion: true,
		LookAhead:     8,
		SwapThreshold: 4,
		Params:        physics.Default(),
	}
}

func (o Options) withDefaults() Options {
	if o.LookAhead <= 0 {
		o.LookAhead = 8
	}
	if o.SwapThreshold <= 0 {
		o.SwapThreshold = 4
	}
	if o.Params == (physics.Params{}) {
		o.Params = physics.Default()
	}
	return o
}
