package core

import (
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/circuit/bench"
	"mussti/internal/physics"
)

func device32() *arch.Device {
	cfg := arch.DefaultConfig(32)
	return arch.MustNew(cfg)
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Mapping != MappingSABRE || !o.SwapInsertion {
		t.Errorf("default options = %+v", o)
	}
	if o.LookAhead != 8 || o.SwapThreshold != 4 {
		t.Errorf("default k/T = %d/%d, want 8/4", o.LookAhead, o.SwapThreshold)
	}
}

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.LookAhead != 8 || o.SwapThreshold != 4 {
		t.Errorf("zero options not defaulted: %+v", o)
	}
	if o.Params.T1US != physics.Default().T1US {
		t.Error("zero params not defaulted")
	}
	custom := Options{LookAhead: 3, SwapThreshold: 5}.withDefaults()
	if custom.LookAhead != 3 || custom.SwapThreshold != 5 {
		t.Error("explicit options overridden")
	}
}

func TestMappingStrategyString(t *testing.T) {
	if MappingTrivial.String() != "trivial" || MappingSABRE.String() != "sabre" {
		t.Error("strategy names wrong")
	}
	if MappingStrategy(9).String() != "unknown" {
		t.Error("unknown strategy name wrong")
	}
}

func TestTrivialMappingValidAndLevelMajor(t *testing.T) {
	d := arch.MustNew(arch.DefaultConfig(128))
	m, err := trivialMapping(128, d)
	if err != nil {
		t.Fatal(err)
	}
	zoneLoad := make(map[int]int)
	moduleLoad := make(map[int]int)
	for q, z := range m {
		zoneLoad[z]++
		moduleLoad[d.Zone(z).Module]++
		if zoneLoad[z] > d.Zone(z).Capacity {
			t.Fatalf("zone %d over capacity", z)
		}
		// Level-major fill: the assigned level never increases with q.
		if q > 0 && d.Zone(m[q]).Level > d.Zone(m[q-1]).Level {
			t.Fatalf("mapping not level-major at qubit %d", q)
		}
	}
	for mod, load := range moduleLoad {
		if load > d.Modules[mod].MaxIons {
			t.Errorf("module %d over MaxIons: %d", mod, load)
		}
		if load > moduleBudget(d, mod) {
			t.Errorf("module %d over routing budget: %d > %d", mod, load, moduleBudget(d, mod))
		}
	}
}

func TestTrivialMappingFillsHighestLevelsFirst(t *testing.T) {
	d := device32()
	m, err := trivialMapping(8, d)
	if err != nil {
		t.Fatal(err)
	}
	// First qubits land in module 0's optical zone (level 2).
	if lvl := d.Zone(m[0]).Level; lvl != arch.LevelOptical {
		t.Errorf("first qubit level = %v, want optical", lvl)
	}
}

func TestTrivialMappingOverflowError(t *testing.T) {
	cfg := arch.Config{Modules: 1, TrapCapacity: 4, OperationZones: 1, OpticalZones: 1}
	d := arch.MustNew(cfg)
	if _, err := trivialMapping(100, d); err == nil {
		t.Error("overflow accepted")
	}
}

func TestCompileRejectsOversizedCircuit(t *testing.T) {
	c := bench.MustByName("GHZ_n256")
	d := device32() // 4 modules x 32 = 128 max
	if _, err := Compile(c, d, DefaultOptions()); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestCompileSmallSuiteAllOptionCombos(t *testing.T) {
	d := device32()
	for _, name := range bench.SmallSuite() {
		c := bench.MustByName(name)
		for _, opts := range []Options{
			{Mapping: MappingTrivial},
			{Mapping: MappingTrivial, SwapInsertion: true},
			{Mapping: MappingSABRE},
			DefaultOptions(),
		} {
			res, err := Compile(c, d, opts)
			if err != nil {
				t.Fatalf("%s %v/%v: %v", name, opts.Mapping, opts.SwapInsertion, err)
			}
			m := res.Metrics
			st := c.Stats()
			if m.Gates2+m.FiberGates != st.TwoQubit+3*m.InsertedSwaps {
				t.Errorf("%s: executed 2q gates %d+%d != circuit %d + 3x%d swaps",
					name, m.Gates2, m.FiberGates, st.TwoQubit, m.InsertedSwaps)
			}
			if m.Gates1 != st.OneQubit {
				t.Errorf("%s: 1q executed %d, want %d", name, m.Gates1, st.OneQubit)
			}
			if m.Measurements != st.Measures {
				t.Errorf("%s: measurements %d, want %d", name, m.Measurements, st.Measures)
			}
			if m.MakespanUS <= 0 || m.Fidelity.Log() >= 0 {
				t.Errorf("%s: degenerate metrics %+v", name, m)
			}
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	c := bench.MustByName("QFT_n32")
	d := device32()
	a, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Shuttles != b.Metrics.Shuttles ||
		a.Metrics.Fidelity.Log() != b.Metrics.Fidelity.Log() ||
		a.Metrics.MakespanUS != b.Metrics.MakespanUS {
		t.Errorf("compilation not deterministic: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestCompileMappingsRecorded(t *testing.T) {
	c := bench.MustByName("GHZ_n32")
	d := device32()
	res, err := Compile(c, d, Options{Mapping: MappingTrivial})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InitialMapping) != 32 || len(res.FinalMapping) != 32 {
		t.Fatalf("mapping lengths %d/%d", len(res.InitialMapping), len(res.FinalMapping))
	}
	for q, z := range res.FinalMapping {
		if z < 0 || z >= d.NumZones() {
			t.Errorf("final mapping of %d = %d out of range", q, z)
		}
	}
}

func TestCompileTraceWhenRequested(t *testing.T) {
	c := bench.MustByName("BV_n32")
	d := device32()
	opts := DefaultOptions()
	opts.Trace = true
	res, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Error("trace requested but empty")
	}
	opts.Trace = false
	res, err = Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace recorded without request")
	}
}

func TestCompileOnGridDevice(t *testing.T) {
	// Table 2 path: MUSS-TI on a standard QCCD grid.
	g := arch.MustNewGrid(2, 2, 12)
	for _, name := range bench.SmallSuite() {
		c := bench.MustByName(name)
		res, err := Compile(c, g.Device(), DefaultOptions())
		if err != nil {
			t.Fatalf("%s on grid: %v", name, err)
		}
		if res.Metrics.FiberGates != 0 {
			t.Errorf("%s: fiber gates on a monolithic grid", name)
		}
		if res.Metrics.InsertedSwaps != 0 {
			t.Errorf("%s: inserted SWAPs on a monolithic grid", name)
		}
	}
}

func TestSabreBeatsOrMatchesTrivialOnLocalApps(t *testing.T) {
	// SABRE should not catastrophically regress shuttle counts on
	// index-local applications (it may tie).
	d := device32()
	for _, name := range []string{"GHZ_n32", "Adder_n32"} {
		c := bench.MustByName(name)
		triv, err := Compile(c, d, Options{Mapping: MappingTrivial})
		if err != nil {
			t.Fatal(err)
		}
		sabre, err := Compile(c, d, Options{Mapping: MappingSABRE})
		if err != nil {
			t.Fatal(err)
		}
		if sabre.Metrics.Shuttles > 2*triv.Metrics.Shuttles+10 {
			t.Errorf("%s: sabre %d shuttles vs trivial %d", name, sabre.Metrics.Shuttles, triv.Metrics.Shuttles)
		}
	}
}

func TestCrossModuleGatesUseFiber(t *testing.T) {
	// Two qubits pinned to different modules must entangle via fiber.
	c := circuit.New("x", 64)
	c.MS(0, 63) // trivially mapped to different modules
	d := arch.MustNew(arch.DefaultConfig(64))
	res, err := Compile(c, d, Options{Mapping: MappingTrivial})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.FiberGates != 1 {
		t.Errorf("fiber gates = %d, want 1", res.Metrics.FiberGates)
	}
	if res.Metrics.Gates2 != 0 {
		t.Errorf("local gates = %d, want 0", res.Metrics.Gates2)
	}
}

func TestPerfectShuttleImprovesFidelity(t *testing.T) {
	c := bench.MustByName("SQRT_n30")
	d := device32()
	normal, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Params.PerfectShuttle = true
	ideal, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Metrics.Fidelity.Log() < normal.Metrics.Fidelity.Log() {
		t.Errorf("perfect shuttle fidelity %v worse than normal %v",
			ideal.Metrics.Fidelity.Log(), normal.Metrics.Fidelity.Log())
	}
}

func TestPerfectGatesImproveFidelity(t *testing.T) {
	c := bench.MustByName("QFT_n32")
	d := device32()
	normal, err := Compile(c, d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Params.PerfectGates = true
	ideal, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Metrics.Fidelity.Log() < normal.Metrics.Fidelity.Log() {
		t.Errorf("perfect gates fidelity %v worse than normal %v",
			ideal.Metrics.Fidelity.Log(), normal.Metrics.Fidelity.Log())
	}
}

func TestCompileMediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale compile skipped in -short")
	}
	for _, name := range bench.MediumSuite() {
		c := bench.MustByName(name)
		d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
		res, err := Compile(c, d, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Metrics.Shuttles == 0 && name != "QAOA_n128" {
			t.Logf("%s: zero shuttles (unusual but not fatal)", name)
		}
	}
}

func TestSwapInsertionTriggersOnStarPattern(t *testing.T) {
	// A hub qubit with heavy future work on a remote module should get
	// swapped there: build a star where q0 first talks to its own module,
	// then repeatedly to module 1 residents.
	n := 64
	c := circuit.New("star", n)
	c.MS(0, 32) // cross-module fiber gate (modules 0 and 1)
	for i := 33; i < 33+8; i++ {
		c.MS(0, i) // heavy follow-up work on module 1
	}
	d := arch.MustNew(arch.DefaultConfig(n))
	opts := Options{Mapping: MappingTrivial, SwapInsertion: true, LookAhead: 8, SwapThreshold: 4}
	with, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.SwapInsertion = false
	without, err := Compile(c, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if with.Metrics.InsertedSwaps == 0 {
		t.Error("star pattern did not trigger SWAP insertion")
	}
	if without.Metrics.InsertedSwaps != 0 {
		t.Error("SWAP inserted with insertion disabled")
	}
	// The swap converts repeated fiber gates into local gates.
	if with.Metrics.FiberGates >= without.Metrics.FiberGates {
		t.Errorf("insertion did not reduce fiber gates: %d vs %d",
			with.Metrics.FiberGates, without.Metrics.FiberGates)
	}
}
