package core

import (
	"context"
	"fmt"
	"sync"

	"mussti/internal/arch"
)

// trivialMapping places qubits sequentially into zones ordered by level
// from highest to lowest ("zones with higher levels typically offer
// superior functionality"): the optical zones of every module fill first,
// then the operation zones, then storage, always respecting zone
// capacities and per-module routing budgets. Consecutive qubits therefore
// land in contiguous blocks of one gate-capable zone, and the scarce
// storage tier is only used once the gate-capable tiers are exhausted —
// the memory-hierarchy picture of §3 (working set high, overflow low).
func trivialMapping(n int, d *arch.Device) ([]int, error) {
	mapping := make([]int, n)
	zoneLoad := make([]int, len(d.Zones))
	moduleLoad := make([]int, len(d.Modules))
	q := 0
	for _, level := range arch.LevelsDescending() {
		for m := range d.Modules {
			budget := moduleBudget(d, m)
			for _, z := range d.ZonesByLevel(m, level) {
				for q < n && zoneLoad[z] < d.Zones[z].Capacity && moduleLoad[m] < budget {
					mapping[q] = z
					zoneLoad[z]++
					moduleLoad[m]++
					q++
				}
			}
		}
	}
	if q < n {
		return nil, fmt.Errorf("core: device cannot place %d qubits with routing slack (capacity %d)", n, d.Capacity())
	}
	return mapping, nil
}

// moduleBudget caps how many ions the initial mapping loads into a module:
// the per-module MaxIons, and never more than 3/4 of the module's physical
// slots — a fully packed module leaves the scheduler no room to shuttle, the
// trap-world equivalent of thrashing a memory with no free pages.
func moduleBudget(d *arch.Device, m int) int {
	slots := 0
	for _, z := range d.Modules[m].Zones {
		slots += d.Zones[z].Capacity
	}
	budget := slots * 3 / 4
	if mx := d.Modules[m].MaxIons; mx < budget {
		budget = mx
	}
	return budget
}

// sabreMapping is the two-fold search of §3.4: execute the circuit from a
// trivial mapping, take the final placement π′, execute the *reversed*
// circuit from π′ to obtain π″, and use π″ as the production run's initial
// mapping. The reverse pass pre-loads qubits near their earliest
// interactions, the "memory pre-loading" analogy of the paper.
//
// The forward probe replays the caller's prep (the production runs reuse
// it again afterwards); the reversed circuit — a different gate order,
// hence a different DAG — gets its prep from the per-circuit cache in
// prepcache.go, so repeated compiles of one circuit reverse it once.
func sabreMapping(ctx context.Context, p *prep, d *arch.Device, opts Options) ([]int, error) {
	probe := opts
	probe.Mapping = MappingTrivial
	probe.Trace = false
	// Probe passes exist only to derive a placement; progress ticks from
	// them would interleave confusingly with the production run's.
	probe.Observer = nil
	// The probe passes only need placement dynamics, not SWAP insertion —
	// but keeping insertion identical to the production run makes the
	// final mapping consistent with how the run will actually behave.
	trivial, err := trivialMapping(p.c.NumQubits, d)
	if err != nil {
		return nil, err
	}

	// The two probe passes are inherently serial (the reverse pass starts
	// from the forward pass's final mapping), but *building* the reverse
	// prep — Reverse() plus a DAG build on a cold cache — depends only on
	// the circuit. With parallelism available, overlap it with the forward
	// probe; the goroutine is always joined before returning, so no work
	// leaks past an error.
	var rprep *prep
	var pool *sync.Pool
	if opts.Parallelism > 1 {
		prefetched := make(chan struct{})
		go func() {
			rprep, pool = acquireReversePrep(p.c)
			close(prefetched)
		}()
		forward, ferr := runForMapping(ctx, p, d, probe, trivial)
		<-prefetched
		if ferr != nil {
			pool.Put(rprep)
			return nil, fmt.Errorf("core: sabre forward pass: %w", ferr)
		}
		backward, berr := runForMapping(ctx, rprep, d, probe, forward)
		pool.Put(rprep)
		if berr != nil {
			return nil, fmt.Errorf("core: sabre reverse pass: %w", berr)
		}
		return backward, nil
	}

	forward, err := runForMapping(ctx, p, d, probe, trivial)
	if err != nil {
		return nil, fmt.Errorf("core: sabre forward pass: %w", err)
	}
	rprep, pool = acquireReversePrep(p.c)
	backward, err := runForMapping(ctx, rprep, d, probe, forward)
	pool.Put(rprep)
	if err != nil {
		return nil, fmt.Errorf("core: sabre reverse pass: %w", err)
	}
	return backward, nil
}

// runForMapping executes one scheduling pass and returns the final mapping.
func runForMapping(ctx context.Context, p *prep, d *arch.Device, opts Options, initial []int) ([]int, error) {
	s, err := newSchedulerWith(ctx, p, d, opts, initial)
	if err != nil {
		return nil, err
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.mappingSnapshot(), nil
}
