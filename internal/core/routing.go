package core

import (
	"fmt"
	"math"

	"mussti/internal/arch"
	"mussti/internal/dag"
)

// route brings the operands of DAG node id into an executable configuration
// (§3.2 "Qubit Routing" + "Conflict Handling"). Same-module pairs are
// gathered into the best gate-capable zone of that module; cross-module
// pairs are delivered to their modules' optical zones for a fiber gate.
//
//mussti:hotpath
func (s *scheduler) route(id int) error {
	a, b := s.operands(id)
	ma := s.d.Zone(s.eng.ZoneOf(a)).Module
	mb := s.d.Zone(s.eng.ZoneOf(b)).Module
	if ma == mb {
		return s.routeIntra(a, b, ma)
	}
	if err := s.routeToOptical(a, b); err != nil {
		return err
	}
	return s.routeToOptical(b, a)
}

// routeIntra co-locates a and b inside module m's best gate-capable zone.
// Zone choice follows the multi-level scheduling rule: among candidate
// zones, minimise the estimated shuttle cost — immediate gather cost plus a
// look-ahead attraction term that keeps moved qubits near their upcoming
// partners; ties break towards the higher level (zones "closest in level"
// to the CPU end of the hierarchy).
//
//mussti:hotpath
func (s *scheduler) routeIntra(a, b, m int) error {
	attract := s.futureAttraction(a, b)
	type cand struct {
		zone  int
		cost  float64
		level arch.Level
	}
	best := cand{zone: -1, cost: math.Inf(1), level: -1}
	for _, z := range s.d.Modules[m].Zones {
		info := s.d.Zone(z)
		if !info.Level.GateCapable() {
			continue
		}
		cost := s.gatherCost(z, a, b) + s.attractionCost(z, attract)
		if cost < best.cost || (cost == best.cost && info.Level > best.level) {
			best = cand{zone: z, cost: cost, level: info.Level}
		}
	}
	if best.zone == -1 {
		return fmt.Errorf("core: module %d has no gate-capable zone", m)
	}
	for _, q := range [2]int{a, b} {
		if s.eng.ZoneOf(q) == best.zone {
			continue
		}
		if err := s.moveWithEviction(q, best.zone, a, b); err != nil {
			return err
		}
	}
	return nil
}

// attraction is one future interaction of a routed qubit: the partner's
// current zone (or the module's optical zone for cross-module partners)
// weighted by how soon the gate comes up.
type attraction struct {
	qubit  int
	target int
	weight float64
}

// futureAttraction scans the look-ahead window once and returns, for the
// two routed qubits, where their upcoming partners sit. Weights decay with
// DAG layer so imminent gates dominate. The returned slice is the
// scheduler's reused scratch buffer — valid until the next routed gate.
//
//mussti:hotpath
func (s *scheduler) futureAttraction(a, b int) []attraction {
	if s.opts.DisableRoutingLookAhead {
		return nil
	}
	out := s.attractScratch[:0]
	//mussti:allow=hotalloc visit closure pinned non-escaping by BenchmarkSchedulerPassReuse allocs/op
	s.g.WalkAhead(s.opts.LookAhead, func(layer int, n *dag.Node) {
		for _, q := range [2]int{a, b} {
			p := n.Gate.Other(q)
			if p < 0 || p == a || p == b {
				continue
			}
			zq, zp := s.eng.ZoneOf(q), s.eng.ZoneOf(p)
			mq, mp := s.d.Zone(zq).Module, s.d.Zone(zp).Module
			target := zp
			if mp != mq {
				// A cross-module partner pulls q towards its own module's
				// optical zone, where the fiber gate will need it.
				opt := s.d.ZonesByLevel(mq, arch.LevelOptical)
				if len(opt) == 0 {
					continue
				}
				target = opt[0]
			}
			out = append(out, attraction{qubit: q, target: target, weight: 1 / float64(1+layer)})
		}
	})
	s.attractScratch = out
	return out
}

// attractionCost estimates the future shuttle cost of parking the routed
// qubits in zone z given their upcoming partners. Both operands end up in z
// after the gather, so every attraction in the list contributes.
//
//mussti:hotpath
func (s *scheduler) attractionCost(z int, attract []attraction) float64 {
	p := s.opts.Params
	cost := 0.0
	for _, at := range attract {
		if at.target == z {
			continue
		}
		cost += at.weight * (p.SplitTimeUS + p.MergeTimeUS + p.MoveTimeUS(s.d.IntraDistanceUM(z, at.target)))
	}
	return cost
}

// routeToOptical delivers q into an optical zone of its own module ahead of
// a fiber gate with partner (partner only matters for eviction exclusion).
//
//mussti:hotpath
func (s *scheduler) routeToOptical(q, partner int) error {
	zq := s.eng.ZoneOf(q)
	if s.d.Zone(zq).Level == arch.LevelOptical {
		return nil
	}
	m := s.d.Zone(zq).Module
	best, bestCost := -1, math.Inf(1)
	for _, z := range s.d.ZonesByLevel(m, arch.LevelOptical) {
		cost := s.gatherCost(z, q, -1)
		if cost < bestCost {
			best, bestCost = z, cost
		}
	}
	if best == -1 {
		return fmt.Errorf("core: module %d has no optical zone", m)
	}
	return s.moveWithEviction(q, best, q, partner)
}

// gatherCost estimates the shuttle cost of bringing a (and b, when b ≥ 0)
// into zone z: chain-swap and split/move/merge times for each qubit not
// already there, plus an eviction penalty when z lacks the needed free
// slots.
//
//mussti:hotpath
func (s *scheduler) gatherCost(z, a, b int) float64 {
	p := s.opts.Params
	cost := 0.0
	need := 0
	for _, q := range [2]int{a, b} {
		if q < 0 {
			continue
		}
		zq := s.eng.ZoneOf(q)
		if zq == z {
			continue
		}
		if s.d.Zone(zq).Module != s.d.Zone(z).Module {
			// Cross-module gather is impossible; poison this candidate.
			return math.Inf(1)
		}
		need++
		cost += float64(s.eng.SwapsToEdge(q)) * p.SwapTimeUS
		cost += p.SplitTimeUS + p.MergeTimeUS + p.MoveTimeUS(s.d.IntraDistanceUM(zq, z))
	}
	if free := s.eng.Free(z); free < need {
		// Each eviction is itself roughly one shuttle.
		evict := float64(need - free)
		cost += evict * (p.SplitTimeUS + p.MergeTimeUS + p.MoveTimeUS(s.d.ZonePitchUM))
	}
	return cost
}

// moveWithEviction shuttles q into zone dst, first making room when dst is
// full (§3.2 "Conflict Handling"). Victim selection goes through pickVictim,
// the ReplacementPolicy dispatcher in replacement.go: under the default
// ReplaceLRU it delegates to pickLRUVictim below (the paper's "qubit
// replacement scheduler"); the FIFO/random/Belady arms exist only for the
// ablation experiments. keepA/keepB are never evicted (the gate's own
// operands).
//
//mussti:hotpath
func (s *scheduler) moveWithEviction(q, dst, keepA, keepB int) error {
	for s.eng.Free(dst) < 1 {
		victim := s.pickVictim(dst, keepA, keepB)
		if victim == -1 {
			return fmt.Errorf("core: zone %d full of protected qubits", dst)
		}
		s.stats.Evictions++
		target, err := s.evictionTarget(dst)
		if err != nil {
			return err
		}
		victimFrom := s.eng.ZoneOf(victim)
		if err := s.eng.Move(victim, target, s.d.IntraDistanceUM(dst, target)); err != nil {
			return fmt.Errorf("core: evicting qubit %d: %w", victim, err)
		}
		s.obs.Eviction(victim, victimFrom, target)
	}
	from := s.eng.ZoneOf(q)
	if err := s.eng.Move(q, dst, s.d.IntraDistanceUM(from, dst)); err != nil {
		return err
	}
	s.obs.Shuttle(q, from, dst)
	return nil
}

// pickLRUVictim returns the least recently used resident of zone z,
// excluding the protected qubits; -1 when none is evictable. Ties on the
// LRU timestamp (common right after initial mapping, when nothing has run
// yet) break towards the qubit whose next gate lies farthest in the
// program — the Belady-style choice, so the replacement scheduler never
// evicts the ion the very next gate needs.
//
//mussti:hotpath
func (s *scheduler) pickLRUVictim(z, keepA, keepB int) int {
	victim, oldest, farthest := -1, int64(math.MaxInt64), -1
	for _, q := range s.eng.Chain(z) {
		if q == keepA || q == keepB {
			continue
		}
		nu := s.nextUse(q)
		if s.lastUsed[q] < oldest || (s.lastUsed[q] == oldest && nu > farthest) {
			victim, oldest, farthest = q, s.lastUsed[q], nu
		}
	}
	return victim
}

// nextUse returns the circuit index of q's next two-qubit gate, or a large
// sentinel (math.MaxInt32) when q is done entangling. O(1): the per-position
// answers were precomputed by buildNextUseTables at scheduler construction.
//
//mussti:hotpath
//mussti:inline
func (s *scheduler) nextUse(q int) int {
	return int(s.next2q[q][s.cursor[q]])
}

// evictionTarget picks where an evicted qubit goes: the multi-level rule
// sends it to the closest level below the source zone's level that has
// space, scanning levels downward, then (as a fallback that only triggers
// in degenerate configurations) any same-module zone with space.
//
//mussti:hotpath
func (s *scheduler) evictionTarget(from int) (int, error) {
	info := s.d.Zone(from)
	m := info.Module
	for level := info.Level - 1; level >= arch.LevelStorage; level-- {
		if z := s.closestWithSpace(from, s.d.ZonesByLevel(m, level)); z != -1 {
			return z, nil
		}
	}
	// No space below: try sideways/up, nearest first.
	if z := s.closestWithSpace(from, s.d.Modules[m].Zones); z != -1 {
		return z, nil
	}
	return -1, fmt.Errorf("core: module %d has no free slot for eviction from zone %d", m, from)
}

//mussti:hotpath
func (s *scheduler) closestWithSpace(from int, zones []int) int {
	best, bestDist := -1, math.Inf(1)
	for _, z := range zones {
		if z == from || s.eng.Free(z) < 1 {
			continue
		}
		d := s.d.IntraDistanceUM(from, z)
		if d < bestDist {
			best, bestDist = z, d
		}
	}
	return best
}
