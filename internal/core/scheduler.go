package core

import (
	"context"
	"fmt"
	"math"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/dag"
	"mussti/internal/sim"
)

// scheduler is the mutable state of one scheduling run.
type scheduler struct {
	ctx  context.Context
	c    *circuit.Circuit
	d    *arch.Device
	opts Options
	eng  *sim.Engine
	g    *dag.Graph
	obs  Observer

	// perQubit[q] lists indices into c.Gates touching q, in order;
	// cursor[q] is the next unexecuted one. Used to interleave one-qubit
	// gates (executed in place) with the scheduled two-qubit gates.
	perQubit [][]int
	cursor   []int

	// next2q[q][i] is the circuit index of the first two-qubit gate at or
	// after position i of perQubit[q] (math.MaxInt32 when q is done
	// entangling), so nextUse — called once per chain resident on every
	// LRU/Belady victim scan — is a table lookup instead of a forward scan
	// of q's remaining gate list.
	next2q [][]int32

	// lastUsed[q] is the logical clock of q's last gate — the LRU key of
	// the qubit-replacement scheduler (§3.2).
	lastUsed []int64
	clock    int64
	// rngState drives the ReplaceRandom ablation policy deterministically.
	rngState uint64

	// executed counts two-qubit gates done this pass, for Observer ticks.
	executed int

	// stats tallies scheduling decisions for Result.Stats.
	stats SchedStats

	// attractScratch is the reused buffer futureAttraction fills on every
	// routed gate.
	attractScratch []attraction
	// wrowScratch is the reused single-qubit weight-table row of trySwapFor.
	wrowScratch []int

	// Multi-qubit weight-table scratch for pickSwapPartner, reused across
	// SWAP-insertion checks: wtRowOf[q] is 1+q's row in the current query
	// (0 = absent), wtRows the flat row backing, residentScratch the
	// optical-zone candidate list. See weightTable/weightAt/clearWeightTable.
	wtRowOf         []int32
	wtRows          []int
	residentScratch []int
}

// prep is the per-circuit precomputation every scheduling pass needs: the
// dependency DAG, the per-qubit gate lists and the next-two-qubit-use
// tables. All three depend only on the circuit, so one compile builds them
// once and replays them across every pass over that circuit — the SABRE
// probe pass and each candidate-mapping production run — via Graph.Reset,
// instead of rebuilding O(g) structures per pass.
type prep struct {
	c        *circuit.Circuit
	g        *dag.Graph
	perQubit [][]int
	next2q   [][]int32
}

// newPrep builds the shared scheduling state for one circuit.
func newPrep(c *circuit.Circuit) *prep {
	p := &prep{c: c, g: dag.Build(c), perQubit: c.PerQubitGates()}
	p.next2q = buildNextUseTables(c, p.perQubit)
	return p
}

// clone returns a prep usable concurrently with p. The per-qubit gate lists
// and next-use tables are read-only to every pass, so they are shared; the
// DAG is the prep's one piece of mutable execution state, so the clone gets
// its own via Graph.Clone (shared structure, private indegree/frontier).
// Cost: O(g) zeroing, no graph reconstruction — the price of one Reset.
//
//mussti:hotpath
func (p *prep) clone() *prep {
	return &prep{c: p.c, g: p.g.Clone(), perQubit: p.perQubit, next2q: p.next2q} //mussti:allow=hotalloc one header per batch worker, amortised over its whole variant share
}

func newScheduler(ctx context.Context, c *circuit.Circuit, d *arch.Device, opts Options, initial []int) (*scheduler, error) {
	return newSchedulerWith(ctx, newPrep(c), d, opts, initial)
}

// newSchedulerWith starts a scheduling pass over p's circuit, rewinding the
// shared DAG to its unexecuted state. The prep's structures are read-only
// to the pass (execution state lives in the scheduler and the graph's
// resettable bookkeeping), so passes may reuse one prep back to back — but
// not concurrently.
func newSchedulerWith(ctx context.Context, p *prep, d *arch.Device, opts Options, initial []int) (*scheduler, error) {
	p.g.Reset()
	s := &scheduler{
		ctx:      ctx,
		c:        p.c,
		d:        d,
		opts:     opts,
		eng:      sim.NewDeviceEngine(d, p.c.NumQubits, opts.Params),
		g:        p.g,
		obs:      ObserverOrNop(opts.Observer),
		perQubit: p.perQubit,
		next2q:   p.next2q,
		cursor:   make([]int, p.c.NumQubits),
		lastUsed: make([]int64, p.c.NumQubits),
	}
	for q, z := range initial {
		if err := s.eng.Place(q, z); err != nil {
			return nil, fmt.Errorf("core: initial mapping: %w", err)
		}
	}
	return s, nil
}

// buildNextUseTables precomputes, for every position of every per-qubit gate
// list, the circuit index of the next two-qubit gate from that position on.
// One backward pass per qubit over a single pooled backing array: O(total
// operand slots) = O(g) time and two allocations overall.
func buildNextUseTables(c *circuit.Circuit, perQubit [][]int) [][]int32 {
	total := 0
	for _, lst := range perQubit {
		total += len(lst) + 1
	}
	backing := make([]int32, total)
	tables := make([][]int32, len(perQubit))
	off := 0
	for q, lst := range perQubit {
		nx := backing[off : off+len(lst)+1]
		off += len(lst) + 1
		nx[len(lst)] = math.MaxInt32
		for i := len(lst) - 1; i >= 0; i-- {
			if c.Gates[lst[i]].Kind.IsTwoQubit() {
				nx[i] = int32(lst[i])
			} else {
				nx[i] = nx[i+1]
			}
		}
		tables[q] = nx
	}
	return tables
}

func (s *scheduler) mappingSnapshot() []int {
	m := make([]int, s.c.NumQubits)
	for q := range m {
		m[q] = s.eng.ZoneOf(q)
	}
	return m
}

// run executes the gate-scheduling loop of Fig. 3: gate selection, qubit
// routing, conflict handling, gate execution, DAG update — until empty or
// the context is cancelled. The cancellation check sits at the top of the
// frontier loop, so a cancelled context aborts within one scheduler step.
//
//mussti:hotpath
func (s *scheduler) run() error {
	// Leading one-qubit gates execute in place before any routing.
	for q := 0; q < s.c.NumQubits; q++ {
		if err := s.flushOneQubit(q); err != nil {
			return err
		}
	}
	for !s.g.Done() {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		frontier := s.g.Frontier()
		// Prioritise gates executable right away (§3.2 "Prioritize
		// executable gates"): execute every such frontier gate first.
		progressed := false
		for _, id := range frontier {
			if s.g.Executed(id) {
				continue // executed earlier in this sweep via flush
			}
			a, b := s.operands(id)
			if s.executableNow(a, b) {
				if err := s.executeNode(id); err != nil {
					return err
				}
				s.stats.ExecutableFast++
				progressed = true
			}
		}
		if progressed {
			continue
		}
		// Otherwise first-come, first-served: route the oldest frontier
		// gate's qubits to a suitable zone, then execute it.
		id := frontier[0]
		if err := s.route(id); err != nil {
			return err
		}
		s.stats.Routed++
		if err := s.executeNode(id); err != nil {
			return err
		}
	}
	// Trailing one-qubit gates (and measurements).
	for q := 0; q < s.c.NumQubits; q++ {
		if err := s.flushOneQubit(q); err != nil {
			return err
		}
	}
	return nil
}

//mussti:hotpath
func (s *scheduler) operands(id int) (int, int) {
	g := s.g.Nodes[id].Gate
	return g.Qubits[0], g.Qubits[1]
}

// executableNow reports whether the pair may entangle without any routing:
// co-located in one gate-capable zone, or sitting in optical zones of two
// different modules (fiber gate).
//
//mussti:hotpath
func (s *scheduler) executableNow(a, b int) bool {
	za, zb := s.eng.ZoneOf(a), s.eng.ZoneOf(b)
	if za == zb {
		return s.d.Zone(za).Level.GateCapable()
	}
	ia, ib := s.d.Zone(za), s.d.Zone(zb)
	return ia.Level == arch.LevelOptical && ib.Level == arch.LevelOptical && ia.Module != ib.Module
}

// executeNode runs DAG node id (gate assumed in an executable configuration),
// advances the one-qubit cursors past it, flushes newly ready one-qubit
// gates, updates LRU clocks, and triggers SWAP insertion after fiber gates.
//
//mussti:hotpath
func (s *scheduler) executeNode(id int) error {
	a, b := s.operands(id)
	za, zb := s.eng.ZoneOf(a), s.eng.ZoneOf(b)
	wasFiber := za != zb
	var err error
	if wasFiber {
		err = s.eng.Fiber(a, b)
	} else {
		err = s.eng.Gate2(a, b)
	}
	if err != nil {
		return fmt.Errorf("core: executing gate %v: %w", s.g.Nodes[id].Gate, err)
	}
	s.clock++
	s.lastUsed[a] = s.clock
	s.lastUsed[b] = s.clock
	s.executed++
	s.obs.GateScheduled(s.executed, len(s.g.Nodes))

	// Advance both cursors past this gate. ([2]int keeps the pair on the
	// stack; a []int literal here escaped to the heap once per gate.)
	gi := s.g.Nodes[id].GateIndex
	for _, q := range [2]int{a, b} {
		if s.cursor[q] < len(s.perQubit[q]) && s.perQubit[q][s.cursor[q]] == gi {
			s.cursor[q]++
		} else {
			return fmt.Errorf("core: cursor desync on qubit %d at gate %d", q, gi)
		}
	}
	s.g.Execute(id)
	for _, q := range [2]int{a, b} {
		if err := s.flushOneQubit(q); err != nil {
			return err
		}
	}
	if wasFiber && s.opts.SwapInsertion {
		if err := s.maybeInsertSwaps(a, b); err != nil {
			return err
		}
	}
	return nil
}

// flushOneQubit executes the run of one-qubit gates (and measurements) now
// at the front of q's per-qubit gate list.
//
//mussti:hotpath
func (s *scheduler) flushOneQubit(q int) error {
	for s.cursor[q] < len(s.perQubit[q]) {
		gi := s.perQubit[q][s.cursor[q]]
		gate := s.c.Gates[gi]
		if gate.Kind.IsTwoQubit() {
			return nil
		}
		var err error
		if gate.Kind == circuit.KindMeasure {
			err = s.eng.Measure(q)
		} else {
			err = s.eng.Gate1(q)
		}
		if err != nil {
			return fmt.Errorf("core: executing %v: %w", gate, err)
		}
		s.cursor[q]++
	}
	return nil
}
