package circuit

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestQASMRoundTrip(t *testing.T) {
	c := New("rt", 4)
	c.H(0)
	c.X(1)
	c.RZ(math.Pi/4, 2)
	c.CX(0, 1)
	c.CP(math.Pi/8, 2, 3)
	c.MS(1, 3)
	c.Swap(0, 3)
	c.Measure(0)
	c.Measure(3)

	var buf bytes.Buffer
	if err := c.WriteQASM(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ParseQASM("rt", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if got.NumQubits != c.NumQubits {
		t.Fatalf("qubits = %d, want %d", got.NumQubits, c.NumQubits)
	}
	if len(got.Gates) != len(c.Gates) {
		t.Fatalf("gates = %d, want %d", len(got.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		a, b := c.Gates[i], got.Gates[i]
		if a.Kind != b.Kind || a.Qubits != b.Qubits {
			t.Errorf("gate %d: got %v, want %v", i, b, a)
		}
		if math.Abs(a.Param-b.Param) > 1e-12 {
			t.Errorf("gate %d param: got %v, want %v", i, b.Param, a.Param)
		}
	}
}

func TestQASMWriteHasHeader(t *testing.T) {
	c := New("h", 2)
	c.H(0)
	var buf bytes.Buffer
	if err := c.WriteQASM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[2];", "h q[0];"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "creg") {
		t.Error("creg emitted without measurements")
	}
	c.Measure(1)
	buf.Reset()
	if err := c.WriteQASM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "creg c[2];") {
		t.Error("creg missing with measurements")
	}
}

func TestParseQASMBasics(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];   // comment
rz(pi/2) q[2];
cu1(pi/4) q[1],q[2];
measure q[0] -> c[0];
`
	c, err := ParseQASM("basic", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 {
		t.Fatalf("qubits = %d, want 3", c.NumQubits)
	}
	kinds := []Kind{KindH, KindCX, KindRZ, KindCP, KindMeasure}
	if len(c.Gates) != len(kinds) {
		t.Fatalf("gates = %d, want %d", len(c.Gates), len(kinds))
	}
	for i, k := range kinds {
		if c.Gates[i].Kind != k {
			t.Errorf("gate %d kind = %v, want %v", i, c.Gates[i].Kind, k)
		}
	}
	if got := c.Gates[2].Param; math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("rz angle = %v, want pi/2", got)
	}
}

func TestParseQASMCCXLowering(t *testing.T) {
	src := "qreg q[3];\nccx q[0],q[1],q[2];\n"
	c, err := ParseQASM("ccx", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.TwoQubit != 6 {
		t.Errorf("ccx lowered to %d 2q gates, want 6", s.TwoQubit)
	}
}

func TestParseQASMErrors(t *testing.T) {
	cases := map[string]string{
		"no qreg":        "h q[0];",
		"unknown gate":   "qreg q[2];\nfrobnicate q[0];",
		"out of range":   "qreg q[2];\nh q[5];",
		"bad arity":      "qreg q[2];\ncx q[0];",
		"double qreg":    "qreg q[2];\nqreg r[2];",
		"unclosed param": "qreg q[2];\nrz(1.0 q[0];",
		"same operands":  "qreg q[2];\ncx q[1],q[1];",
	}
	for name, src := range cases {
		if _, err := ParseQASM(name, strings.NewReader(src)); err == nil {
			t.Errorf("%s: parse accepted %q", name, src)
		}
	}
}

func TestParseAngle(t *testing.T) {
	cases := map[string]float64{
		"pi":       math.Pi,
		"-pi":      -math.Pi,
		"pi/2":     math.Pi / 2,
		"3*pi/4":   3 * math.Pi / 4,
		"0.5":      0.5,
		"-0.25":    -0.25,
		"2*pi":     2 * math.Pi,
		"pi/2/2":   math.Pi / 4,
		"1.5e-3":   0.0015,
		"pi*0.125": math.Pi * 0.125,
	}
	for src, want := range cases {
		got, err := parseAngle(src)
		if err != nil {
			t.Errorf("parseAngle(%q): %v", src, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("parseAngle(%q) = %v, want %v", src, got, want)
		}
	}
	for _, bad := range []string{"", "pi/0", "banana"} {
		if _, err := parseAngle(bad); err == nil {
			t.Errorf("parseAngle(%q) accepted", bad)
		}
	}
}

func TestPropertyQASMRoundTripRandomCircuits(t *testing.T) {
	// Property: WriteQASM → ParseQASM is the identity on kinds, operands
	// and angles for random circuits over the exportable gate set.
	rng := func(seed int64) *Circuit {
		r := newDetRand(seed)
		c := New("prop", 7)
		for i := 0; i < 50; i++ {
			switch r.next() % 5 {
			case 0:
				c.H(int(r.next() % 7))
			case 1:
				c.RZ(float64(r.next()%628)/100, int(r.next()%7))
			case 2:
				a, b := int(r.next()%7), int(r.next()%7)
				if a != b {
					c.CX(a, b)
				}
			case 3:
				a, b := int(r.next()%7), int(r.next()%7)
				if a != b {
					c.CP(float64(r.next()%314)/100, a, b)
				}
			default:
				a, b := int(r.next()%7), int(r.next()%7)
				if a != b {
					c.MS(a, b)
				}
			}
		}
		c.Measure(0)
		return c
	}
	for seed := int64(0); seed < 25; seed++ {
		orig := rng(seed)
		var buf bytes.Buffer
		if err := orig.WriteQASM(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ParseQASM("prop", &buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got.Gates) != len(orig.Gates) {
			t.Fatalf("seed %d: %d gates, want %d", seed, len(got.Gates), len(orig.Gates))
		}
		for i := range orig.Gates {
			a, b := orig.Gates[i], got.Gates[i]
			if a.Kind != b.Kind || a.Qubits != b.Qubits || math.Abs(a.Param-b.Param) > 1e-9 {
				t.Fatalf("seed %d gate %d: %v != %v", seed, i, b, a)
			}
		}
	}
}

// newDetRand is a tiny deterministic generator for the property test.
type detRand struct{ s uint64 }

func newDetRand(seed int64) *detRand { return &detRand{s: uint64(seed)*2654435761 + 1} }

func (r *detRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func TestParseQASMMultipleStatementsPerLine(t *testing.T) {
	src := "qreg q[2]; h q[0]; cx q[0],q[1];"
	c, err := ParseQASM("multi", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Errorf("gates = %d, want 2", len(c.Gates))
	}
}
