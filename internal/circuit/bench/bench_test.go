package bench

import (
	"strings"
	"testing"

	"mussti/internal/circuit"
)

func TestByNameKnownApps(t *testing.T) {
	all := append(append(append([]string{}, SmallSuite()...), MediumSuite()...), LargeSuite()...)
	for _, name := range all {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name != name {
			t.Errorf("%s: circuit name %q", name, c.Name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: invalid circuit: %v", name, err)
		}
	}
}

func TestByNameQubitCounts(t *testing.T) {
	for _, name := range []string{"GHZ_n32", "Adder_n128", "SQRT_n299", "SC_n274", "RAN_n256"} {
		c := MustByName(name)
		i := strings.LastIndex(name, "_n")
		want := name[i+2:]
		if got := c.NumQubits; itoa(got) != want {
			t.Errorf("%s: qubits = %d", name, got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestByNameErrors(t *testing.T) {
	for _, bad := range []string{"GHZ", "GHZ_n", "GHZ_nXY", "Frob_n32", "GHZ_n0", "_n32"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic on bad name")
		}
	}()
	MustByName("nonsense")
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range []string{"RAN_n64", "SC_n64", "SQRT_n40", "Adder_n32"} {
		a := MustByName(name)
		b := MustByName(name)
		if len(a.Gates) != len(b.Gates) {
			t.Fatalf("%s: gate counts differ: %d vs %d", name, len(a.Gates), len(b.Gates))
		}
		for i := range a.Gates {
			if a.Gates[i] != b.Gates[i] {
				t.Fatalf("%s: gate %d differs: %v vs %v", name, i, a.Gates[i], b.Gates[i])
			}
		}
	}
}

func TestTwoQubitGateCountsInPaperRange(t *testing.T) {
	// "a 2-qubit gate number ranging from 31 to 4376" (§4).
	min, max := 1<<30, 0
	all := append(append(append([]string{}, SmallSuite()...), MediumSuite()...), LargeSuite()...)
	for _, name := range all {
		s := MustByName(name).Stats()
		if s.TwoQubit < min {
			min = s.TwoQubit
		}
		if s.TwoQubit > max {
			max = s.TwoQubit
		}
	}
	if min < 16 || min > 200 {
		t.Errorf("smallest 2q gate count %d outside the paper's ballpark (31)", min)
	}
	if max < 2000 || max > 8000 {
		t.Errorf("largest 2q gate count %d outside the paper's ballpark (4376)", max)
	}
}

func TestGHZStructure(t *testing.T) {
	c := GHZ(16)
	s := c.Stats()
	if s.TwoQubit != 15 {
		t.Errorf("GHZ(16) 2q gates = %d, want 15", s.TwoQubit)
	}
	// Chain: each gate links i, i+1.
	i := 0
	for _, g := range c.Gates {
		if !g.Kind.IsTwoQubit() {
			continue
		}
		if g.Qubits[0] != i || g.Qubits[1] != i+1 {
			t.Errorf("GHZ gate %d links %v, want (%d,%d)", i, g.Qubits, i, i+1)
		}
		i++
	}
}

func TestBVStructure(t *testing.T) {
	c := BV(32)
	anc := 31
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() && g.Qubits[1] != anc {
			t.Errorf("BV 2q gate %v does not target ancilla %d", g, anc)
		}
	}
	if s := c.Stats(); s.TwoQubit != 16 {
		t.Errorf("BV(32) 2q gates = %d, want 16", s.TwoQubit)
	}
}

func TestQAOAIsNearestNeighbourRing(t *testing.T) {
	n := 24
	c := QAOA(n)
	for _, g := range c.Gates {
		if !g.Kind.IsTwoQubit() {
			continue
		}
		d := g.Qubits[1] - g.Qubits[0]
		if d < 0 {
			d = -d
		}
		if d != 1 && d != n-1 {
			t.Errorf("QAOA edge %v is not a ring edge", g.Qubits)
		}
	}
	if s := c.Stats(); s.TwoQubit != n {
		t.Errorf("QAOA(%d) edges = %d, want %d", n, s.TwoQubit, n)
	}
}

func TestQFTIsAllToAll(t *testing.T) {
	n := 12
	c := QFT(n)
	s := c.Stats()
	wantCP := n * (n - 1) / 2
	wantTotal := wantCP + n/2 // CPs plus the reversal swaps
	if s.TwoQubit != wantTotal {
		t.Errorf("QFT(%d) 2q gates = %d, want %d", n, s.TwoQubit, wantTotal)
	}
	// All-to-all: every unordered pair interacts at least once via CP.
	pairs := c.InteractionCount()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pairs[[2]int{i, j}] == 0 {
				t.Fatalf("QFT(%d): pair (%d,%d) never interacts", n, i, j)
			}
		}
	}
}

func TestAdderLocality(t *testing.T) {
	c := Adder(32)
	// Interleaved Cuccaro: every 2q gate spans at most 3 indices.
	for _, g := range c.Gates {
		if !g.Kind.IsTwoQubit() {
			continue
		}
		d := g.Qubits[1] - g.Qubits[0]
		if d < 0 {
			d = -d
		}
		if d > 3 {
			t.Errorf("Adder gate %v spans %d indices, want ≤3", g.Qubits, d)
		}
	}
}

func TestSQRTIsCommunicationHeavy(t *testing.T) {
	c := SQRT(64)
	long := 0
	total := 0
	for _, g := range c.Gates {
		if !g.Kind.IsTwoQubit() {
			continue
		}
		total++
		d := g.Qubits[1] - g.Qubits[0]
		if d < 0 {
			d = -d
		}
		if d >= 16 {
			long++
		}
	}
	if long*3 < total {
		t.Errorf("SQRT long-range gates = %d of %d; want at least a third", long, total)
	}
}

func TestSCFitsGrid(t *testing.T) {
	c := SC(30) // non-square count exercises clipping
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.TwoQubit == 0 {
		t.Error("SC(30) has no 2q gates")
	}
}

func TestFamiliesSorted(t *testing.T) {
	fams := Families()
	if len(fams) != 14 {
		t.Errorf("families = %v, want 14 entries", fams)
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1] >= fams[i] {
			t.Errorf("families not sorted: %v", fams)
		}
	}
}

func TestSuitesMatchPaperScales(t *testing.T) {
	checkRange := func(suite []string, lo, hi int) {
		t.Helper()
		for _, name := range suite {
			n := MustByName(name).NumQubits
			if n < lo || n > hi {
				t.Errorf("%s: %d qubits outside [%d,%d]", name, n, lo, hi)
			}
		}
	}
	checkRange(SmallSuite(), 30, 32)
	checkRange(MediumSuite(), 117, 128)
	checkRange(LargeSuite(), 256, 299)
}

func TestCaseInsensitiveFamilies(t *testing.T) {
	a := MustByName("ghz_n16")
	b := MustByName("GHZ_n16")
	if len(a.Gates) != len(b.Gates) {
		t.Error("family matching is case-sensitive")
	}
}

func TestGeneratedCircuitsEndWithMeasurement(t *testing.T) {
	for _, name := range SmallSuite() {
		c := MustByName(name)
		found := false
		for _, g := range c.Gates {
			if g.Kind == circuit.KindMeasure {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no measurements", name)
		}
	}
}
