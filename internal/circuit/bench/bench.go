// Package bench generates the benchmark applications used in the MUSS-TI
// evaluation (MICRO 2025, §4 "Benchmark Applications").
//
// The paper draws its circuits from QASMBench [36] and from Murali et
// al. [55]. Those .qasm files are not redistributable here and the build is
// offline, so each application is regenerated programmatically with the same
// qubit counts and the same structural communication pattern: GHZ is a CX
// chain, BV is a star centred on the ancilla, QAOA is a nearest-neighbour
// ring, QFT is all-to-all with triangular structure, Adder is a Cuccaro
// ripple-carry (local triples walking the register), and SQRT is a deep
// Grover-style iteration with wide cross-register Toffoli cascades — the
// communication-heavy extreme, matching the paper's observation that SQRT
// gains the most from MUSS-TI. RAN is a seeded uniform random two-qubit
// program and SC is a 2-D supremacy-style layered circuit.
//
// All generators are deterministic: the same name always yields the same
// circuit, so experiment output is reproducible run to run.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mussti/internal/circuit"
)

// Generator builds a named benchmark over n qubits.
type Generator func(n int) *circuit.Circuit

// generators maps the family name (lower-case) to its generator.
var generators = map[string]Generator{
	"adder": Adder,
	"bv":    BV,
	"ghz":   GHZ,
	"qaoa":  QAOA,
	"qft":   QFT,
	"sqrt":  SQRT,
	"ran":   RAN,
	"sc":    SC,
}

// Families lists the supported benchmark family names, sorted.
func Families() []string {
	out := make([]string, 0, len(generators))
	for name := range generators { //mussti:allow=determinism keys are sorted before returning
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// generate builds a benchmark from a "Family_nNN" identifier without
// consulting the cache. ByName (cache.go) memoizes it.
func generate(name string) (*circuit.Circuit, error) {
	base := name
	i := strings.LastIndex(name, "_n")
	if i < 0 {
		return nil, fmt.Errorf("bench: malformed name %q (want Family_nNN)", name)
	}
	base = strings.ToLower(name[:i])
	n, err := strconv.Atoi(name[i+2:])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("bench: malformed qubit count in %q", name)
	}
	gen, ok := generators[base]
	if !ok {
		return nil, fmt.Errorf("bench: unknown family %q (have %v)", base, Families())
	}
	c := gen(n)
	c.Name = name
	return c, nil
}

// MustByName is ByName for known-good names; it panics on error.
func MustByName(name string) *circuit.Circuit {
	c, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return c
}

// SmallSuite returns the small-scale applications (30–32 qubits) of
// Table 2 / Fig. 6 left column.
func SmallSuite() []string {
	return []string{"Adder_n32", "BV_n32", "QAOA_n32", "GHZ_n32", "QFT_n32", "SQRT_n30"}
}

// MediumSuite returns the medium-scale applications (117–128 qubits) of
// Fig. 6 middle column. QFT is excluded exactly as in the paper (its
// fidelity underflows and is omitted from the medium/large figures).
func MediumSuite() []string {
	return []string{"Adder_n128", "BV_n128", "QAOA_n128", "GHZ_n128", "SQRT_n117"}
}

// LargeSuite returns the large-scale applications (256–299 qubits) of
// Fig. 6 right column.
func LargeSuite() []string {
	return []string{"Adder_n256", "BV_n256", "QAOA_n256", "GHZ_n256", "RAN_n256", "SC_n274", "SQRT_n299"}
}

// GHZ prepares an n-qubit GHZ state: H on qubit 0 followed by a CX chain.
// Two-qubit gates: n-1.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("GHZ_n%d", n), n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// BV implements Bernstein–Vazirani over n qubits (n-1 data + 1 ancilla).
// The hidden string sets every other bit, giving the star-shaped
// communication pattern on the ancilla with ~n/2 two-qubit gates.
func BV(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("BV_n%d", n), n)
	anc := n - 1
	c.X(anc)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for i := 0; i < anc; i += 2 { // hidden string 1010…
		c.CX(i, anc)
	}
	for i := 0; i < anc; i++ {
		c.H(i)
		c.Measure(i)
	}
	return c
}

// QAOA builds a depth-1 QAOA MaxCut ansatz on the n-cycle: RZZ on each ring
// edge plus the RX mixer. Nearest-neighbour only — the paper's example of an
// application with low communication demand.
func QAOA(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("QAOA_n%d", n), n)
	gamma, beta := 0.42, 0.77
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for i := 0; i < n; i++ {
		c.RZZ(gamma, i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		c.RX(2*beta, i)
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// QFT builds the full quantum Fourier transform: n(n-1)/2 controlled-phase
// gates with all-to-all triangular structure plus the final reversal swaps.
// The most communication-dense small benchmark (496 CP gates at n=32).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("QFT_n%d", n), n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			c.CP(math.Pi/math.Pow(2, float64(j-i)), j, i)
		}
	}
	for i := 0; i < n/2; i++ {
		c.Swap(i, n-1-i)
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// Adder builds a Cuccaro (CDKM) ripple-carry adder. With n total qubits the
// operand width is k = (n-2)/2; the registers interleave as QASMBench's
// adder does — cin, a0, b0, a1, b1, …, cout — so the MAJ and UMA ladders
// walk the register with index-local triples, short-range communication but
// gate-dense Toffoli decompositions.
func Adder(n int) *circuit.Circuit {
	if n < 4 {
		n = 4
	}
	c := circuit.New(fmt.Sprintf("Adder_n%d", n), n)
	k := (n - 2) / 2
	cin := 0
	a := func(i int) int { return 1 + 2*i }
	b := func(i int) int { return 2 + 2*i }
	cout := 1 + 2*k
	// Prepare operands in a classical-looking pattern so the circuit is
	// non-trivial: a = 0101…, b = 0011…
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			c.X(a(i))
		}
		if i%4 < 2 {
			c.X(b(i))
		}
	}
	maj := func(x, y, z int) {
		c.CX(z, y)
		c.CX(z, x)
		c.Toffoli(x, y, z)
	}
	uma := func(x, y, z int) {
		c.Toffoli(x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}
	maj(cin, b(0), a(0))
	for i := 1; i < k; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.CX(a(k-1), cout)
	for i := k - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	for i := 0; i < k; i++ {
		c.Measure(b(i))
	}
	c.Measure(cout)
	return c
}

// SQRT builds a Grover-style integer-square-root search in the shape of the
// QASMBench "sqrt" benchmark: repeated rounds of (multiply-compare oracle,
// diffusion), each realised with Toffoli cascades that couple the input
// register to the work register on the opposite half of the machine. The
// cross-half CX/Toffoli pattern makes it the most communication-heavy
// application in the suite, matching the paper's characterisation.
func SQRT(n int) *circuit.Circuit {
	if n < 6 {
		n = 6
	}
	c := circuit.New(fmt.Sprintf("SQRT_n%d", n), n)
	half := n / 2
	rounds := sqrtRounds(n)
	for i := 0; i < half; i++ {
		c.H(i)
	}
	for r := 0; r < rounds; r++ {
		// Oracle: square the input into the work register — cascades of
		// Toffolis from input pairs into work qubits, then a compare chain.
		for i := 0; i+1 < half; i += 2 {
			w := half + (i/2)%(n-half)
			c.Toffoli(i, i+1, w)
		}
		for i := 0; i < half; i++ {
			c.CX(i, half+(i+r)%(n-half))
		}
		// Phase kickback on the last work qubit.
		c.Z(n - 1)
		// Uncompute.
		for i := half - 1; i >= 0; i-- {
			c.CX(i, half+(i+r)%(n-half))
		}
		for i := half - 2; i >= 0; i -= 2 {
			w := half + (i/2)%(n-half)
			c.Toffoli(i, i+1, w)
		}
		// Diffusion on the input register.
		for i := 0; i < half; i++ {
			c.H(i)
			c.X(i)
		}
		for i := 0; i+2 < half; i += 3 {
			c.Toffoli(i, i+1, i+2)
		}
		for i := 0; i < half; i++ {
			c.X(i)
			c.H(i)
		}
	}
	for i := 0; i < half; i++ {
		c.Measure(i)
	}
	return c
}

// sqrtRounds scales the Grover iteration count so that the generated SQRT
// circuits land in the paper's reported two-qubit-gate range (tens of gates
// at n≈30 up to ~4.4k at n≈299).
func sqrtRounds(n int) int {
	if n <= 40 {
		return 2
	}
	return 3
}

// RAN builds a seeded uniform random circuit: 6n two-qubit MS gates over
// uniformly random distinct pairs, interleaved with random one-qubit
// rotations. Deterministic for a given n.
func RAN(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("RAN_n%d", n), n)
	rng := newSplitMix(0x5eed + uint64(n))
	for i := 0; i < n; i++ {
		c.H(i)
	}
	gates := 6 * n
	for g := 0; g < gates; g++ {
		a := int(rng.next() % uint64(n))
		b := int(rng.next() % uint64(n))
		for b == a {
			b = int(rng.next() % uint64(n))
		}
		if rng.next()%4 == 0 {
			c.RZ(float64(rng.next()%628)/100, a)
		}
		c.MS(a, b)
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// SC builds a 2-D "supremacy-style" layered circuit: qubits on a
// ⌈√n⌉-wide grid, eight cycles alternating horizontal and vertical CZ
// pairings with random one-qubit gates in between — the short-distance
// nearest-neighbour pattern the paper describes as typical of circuits
// optimised for superconducting devices.
func SC(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("SC_n%d", n), n)
	w := int(math.Ceil(math.Sqrt(float64(n))))
	rng := newSplitMix(0x5c + uint64(n))
	oneQ := []func(int){c.H, c.T, func(q int) { c.RX(math.Pi/2, q) }}
	idx := func(r, col int) int { return r*w + col }
	rows := (n + w - 1) / w
	const cycles = 8
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for cyc := 0; cyc < cycles; cyc++ {
		for i := 0; i < n; i++ {
			oneQ[int(rng.next()%uint64(len(oneQ)))](i)
		}
		if cyc%2 == 0 {
			// Horizontal pairs, offset alternates by cycle.
			off := (cyc / 2) % 2
			for r := 0; r < rows; r++ {
				for col := off; col+1 < w; col += 2 {
					a, b := idx(r, col), idx(r, col+1)
					if a < n && b < n {
						c.CZ(a, b)
					}
				}
			}
		} else {
			off := (cyc / 2) % 2
			for r := off; r+1 < rows; r += 2 {
				for col := 0; col < w; col++ {
					a, b := idx(r, col), idx(r+1, col)
					if a < n && b < n {
						c.CZ(a, b)
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// splitMix is a tiny deterministic PRNG (SplitMix64) so generators do not
// depend on math/rand seeding behaviour across Go versions.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
