package bench

import (
	"sync"

	"mussti/internal/circuit"
)

// The evaluation harness compiles the same deterministic benchmark dozens
// of times per experiment sweep (every capacity/look-ahead/policy point
// rebuilds its circuit), and the concurrent runner in internal/eval issues
// those lookups from many goroutines at once. Generation is pure and every
// downstream consumer treats circuits as read-only, so ByName memoizes each
// named circuit and hands out the shared instance.

// cache maps a benchmark name to its generated *circuit.Circuit. A sync.Map
// fits the access pattern exactly: each key is written once and then read
// many times, concurrently.
var cache sync.Map

// ByName builds a benchmark from a "Family_nNN" identifier as used in the
// paper's tables, e.g. "Adder_n32", "SQRT_n299", "RAN_n256". Family
// matching is case-insensitive.
//
// The returned circuit is a shared, memoized instance: generators are
// deterministic, so the same name always denotes the same circuit, and
// callers must treat it as immutable. Use Circuit.Clone before mutating.
// ByName is safe for concurrent use.
func ByName(name string) (*circuit.Circuit, error) {
	if c, ok := cache.Load(name); ok {
		return c.(*circuit.Circuit), nil
	}
	c, err := generate(name)
	if err != nil {
		return nil, err
	}
	// Two goroutines may race to generate the same circuit; determinism
	// makes either result correct, and LoadOrStore keeps exactly one so
	// every caller shares the same instance.
	actual, _ := cache.LoadOrStore(name, c)
	return actual.(*circuit.Circuit), nil
}
