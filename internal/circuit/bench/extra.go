package bench

import (
	"fmt"
	"math"

	"mussti/internal/circuit"
)

// This file adds the QASMBench families beyond the paper's main suites so
// downstream users can study other workload shapes: VQE (hardware-efficient
// ansatz), QV (quantum volume), Ising (nearest-neighbour Hamiltonian
// simulation), Multiplier (arithmetic, long-range), WState (chain
// preparation) and QPE (phase estimation, star+QFT hybrid). They register
// in the same ByName namespace.

func init() {
	generators["vqe"] = VQE
	generators["qv"] = QV
	generators["ising"] = Ising
	generators["multiplier"] = Multiplier
	generators["wstate"] = WState
	generators["qpe"] = QPE
}

// VQE builds a hardware-efficient variational ansatz: layers of RY/RZ
// rotations followed by a CX entangling ladder, two repetitions. Short
// range, rotation dense.
func VQE(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("VQE_n%d", n), n)
	rng := newSplitMix(0x1e + uint64(n))
	angle := func() float64 { return float64(rng.next()%6283) / 1000 }
	for rep := 0; rep < 2; rep++ {
		for i := 0; i < n; i++ {
			c.RY(angle(), i)
			c.RZ(angle(), i)
		}
		for i := 0; i+1 < n; i++ {
			c.CX(i, i+1)
		}
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// QV builds a quantum-volume-style circuit: n/2 random disjoint pairings
// per layer, n layers, each pair entangled by three MS gates (an arbitrary
// SU(4) needs three). Dense, permutation-heavy communication.
func QV(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("QV_n%d", n), n)
	rng := newSplitMix(0x97 + uint64(n))
	layers := n
	if layers > 32 {
		layers = 32 // cap depth so large instances stay tractable
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for l := 0; l < layers; l++ {
		// Fisher–Yates with the deterministic generator.
		for i := n - 1; i > 0; i-- {
			j := int(rng.next() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := 0; i+1 < n; i += 2 {
			a, b := perm[i], perm[i+1]
			c.RZ(float64(rng.next()%6283)/1000, a)
			c.MS(a, b)
			c.MS(a, b)
			c.MS(a, b)
		}
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// Ising builds a first-order Trotter simulation of the 1-D transverse-field
// Ising model: alternating RZZ nearest-neighbour layers and RX field
// layers, four Trotter steps. Nearest-neighbour like QAOA but deeper.
func Ising(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("Ising_n%d", n), n)
	const steps = 4
	dt := 0.1
	for s := 0; s < steps; s++ {
		for i := 0; i+1 < n; i++ {
			c.RZZ(2*dt, i, i+1)
		}
		for i := 0; i < n; i++ {
			c.RX(dt, i)
		}
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// Multiplier builds a shift-and-add multiplier skeleton: controlled
// additions of register a into the accumulator for every bit of register
// b. Long-range controlled structure — arithmetic at its worst for
// shuttling. Register layout: a (n/3), b (n/3), acc (rest).
func Multiplier(n int) *circuit.Circuit {
	if n < 9 {
		n = 9
	}
	c := circuit.New(fmt.Sprintf("Multiplier_n%d", n), n)
	w := n / 3
	a := func(i int) int { return i }
	b := func(i int) int { return w + i }
	acc := func(i int) int { return 2*w + i }
	accW := n - 2*w
	// Initialise operands.
	for i := 0; i < w; i += 2 {
		c.X(a(i))
	}
	for i := 1; i < w; i += 2 {
		c.X(b(i))
	}
	for bit := 0; bit < w; bit++ {
		// Controlled ripple add of a into acc, shifted by `bit`.
		for i := 0; i+bit < accW && i < w; i++ {
			c.Toffoli(b(bit), a(i), acc(i+bit))
		}
		// Carry propagation sketch.
		for i := bit; i+1 < accW; i++ {
			c.CX(acc(i), acc(i+1))
		}
	}
	for i := 0; i < accW; i++ {
		c.Measure(acc(i))
	}
	return c
}

// WState prepares an n-qubit W state with the standard cascade of
// controlled rotations down a chain.
func WState(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("WState_n%d", n), n)
	c.X(0)
	for i := 0; i+1 < n; i++ {
		theta := 2 * math.Acos(math.Sqrt(1/float64(n-i)))
		c.RY(theta/2, i+1)
		c.CZ(i, i+1)
		c.RY(-theta/2, i+1)
		c.CX(i+1, i)
	}
	for i := 0; i < n; i++ {
		c.Measure(i)
	}
	return c
}

// QPE builds a quantum-phase-estimation circuit: t = n-1 counting qubits
// controlling powers of a single-qubit unitary on the target (star
// pattern), followed by an inverse QFT on the counting register
// (all-to-all). The hybrid star+triangle communication shape stresses both
// scheduler mechanisms at once.
func QPE(n int) *circuit.Circuit {
	if n < 3 {
		n = 3
	}
	c := circuit.New(fmt.Sprintf("QPE_n%d", n), n)
	t := n - 1
	target := n - 1
	for i := 0; i < t; i++ {
		c.H(i)
	}
	c.X(target)
	// Controlled-U^(2^i): one CP per control (power folded into the angle).
	for i := 0; i < t; i++ {
		c.CP(math.Pi/math.Pow(2, float64(i%16)), i, target)
	}
	// Inverse QFT on the counting register.
	for i := t - 1; i >= 0; i-- {
		for j := t - 1; j > i; j-- {
			c.CP(-math.Pi/math.Pow(2, float64(j-i)), j, i)
		}
		c.H(i)
	}
	for i := 0; i < t; i++ {
		c.Measure(i)
	}
	return c
}
