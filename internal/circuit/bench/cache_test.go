package bench

import (
	"sync"
	"testing"
)

func TestByNameReturnsSharedInstance(t *testing.T) {
	a := MustByName("GHZ_n32")
	b := MustByName("GHZ_n32")
	if a != b {
		t.Error("ByName regenerated a cached circuit")
	}
}

func TestByNameCacheKeyedByExactName(t *testing.T) {
	// Family matching is case-insensitive but the circuit Name preserves
	// the caller's spelling, so differently-spelled names must not share
	// a cache entry.
	a := MustByName("ghz_n32")
	b := MustByName("GHZ_n32")
	if a == b {
		t.Fatal("case variants share one instance")
	}
	if a.Name != "ghz_n32" || b.Name != "GHZ_n32" {
		t.Errorf("names = %q, %q", a.Name, b.Name)
	}
}

func TestByNameConcurrent(t *testing.T) {
	// Hammer one uncached name from many goroutines; -race verifies the
	// cache, and the pointer check verifies exactly one instance survives.
	const workers = 16
	results := make([]any, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = MustByName("QAOA_n48")
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got a distinct instance", i)
		}
	}
}
