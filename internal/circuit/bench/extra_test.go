package bench

import (
	"testing"

	"mussti/internal/arch"
	"mussti/internal/circuit"
)

func TestExtraFamiliesRegistered(t *testing.T) {
	for _, fam := range []string{"vqe", "qv", "ising", "multiplier", "wstate", "qpe"} {
		if _, ok := generators[fam]; !ok {
			t.Errorf("family %q not registered", fam)
		}
	}
	if got := len(Families()); got != 14 {
		t.Errorf("families = %d, want 14", got)
	}
}

func TestExtraFamiliesValid(t *testing.T) {
	for _, name := range []string{"VQE_n32", "QV_n24", "Ising_n48", "Multiplier_n30", "WState_n32", "QPE_n20"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s := c.Stats(); s.TwoQubit == 0 {
			t.Errorf("%s: no two-qubit gates", name)
		}
	}
}

func TestVQEStructure(t *testing.T) {
	c := VQE(16)
	s := c.Stats()
	if s.TwoQubit != 2*15 {
		t.Errorf("VQE(16) 2q gates = %d, want 30 (two CX ladders)", s.TwoQubit)
	}
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() && g.Qubits[1]-g.Qubits[0] != 1 {
			t.Errorf("VQE ladder gate %v not nearest neighbour", g.Qubits)
		}
	}
}

func TestQVPairingsDisjointPerLayer(t *testing.T) {
	c := QV(16)
	// Between consecutive rounds of 3-MS blocks, each qubit appears in at
	// most one pair per layer; verify via counting MS triples.
	s := c.Stats()
	if s.TwoQubit%3 != 0 {
		t.Errorf("QV MS count %d not a multiple of 3", s.TwoQubit)
	}
}

func TestIsingNearestNeighbour(t *testing.T) {
	c := Ising(32)
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() && g.Qubits[1]-g.Qubits[0] != 1 {
			t.Errorf("Ising gate %v not nearest neighbour", g.Qubits)
		}
	}
	if s := c.Stats(); s.TwoQubit != 4*31 {
		t.Errorf("Ising(32) 2q gates = %d, want 124", s.TwoQubit)
	}
}

func TestMultiplierHasLongRangeGates(t *testing.T) {
	c := Multiplier(30)
	long := false
	for _, g := range c.Gates {
		if !g.Kind.IsTwoQubit() {
			continue
		}
		d := g.Qubits[1] - g.Qubits[0]
		if d < 0 {
			d = -d
		}
		if d >= 10 {
			long = true
		}
	}
	if !long {
		t.Error("multiplier has no long-range gates")
	}
}

func TestWStateChain(t *testing.T) {
	c := WState(16)
	if s := c.Stats(); s.TwoQubit != 2*15 {
		t.Errorf("WState(16) 2q gates = %d, want 30", s.TwoQubit)
	}
}

func TestQPEMinimumSize(t *testing.T) {
	c := QPE(2) // clamps to 3
	if c.NumQubits != 3 {
		t.Errorf("QPE(2) qubits = %d, want clamped 3", c.NumQubits)
	}
}

func TestExtraFamiliesCompile(t *testing.T) {
	// End-to-end: the new families schedule cleanly on an EML device.
	// (Import cycle note: this uses arch directly, not core, to keep the
	// bench package's test dependencies shallow.)
	for _, name := range []string{"VQE_n32", "Ising_n32", "WState_n32"} {
		c := MustByName(name)
		d := arch.MustNew(arch.DefaultConfig(c.NumQubits))
		if c.NumQubits > d.Capacity() {
			t.Errorf("%s does not fit its default device", name)
		}
	}
}

func TestExtraDeterminism(t *testing.T) {
	a, b := QV(20), QV(20)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("QV not deterministic in size")
	}
	for i := range a.Gates {
		if a.Gates[i] != b.Gates[i] {
			t.Fatal("QV not deterministic")
		}
	}
}

var _ = circuit.KindMS // keep the import for documentation-style reference
