package circuit

import "testing"

func TestKindArity(t *testing.T) {
	oneQ := []Kind{KindH, KindX, KindY, KindZ, KindS, KindSdg, KindT, KindTdg, KindRX, KindRY, KindRZ, KindU, KindMeasure}
	twoQ := []Kind{KindMS, KindCX, KindCZ, KindCP, KindRXX, KindRZZ, KindSwap}
	for _, k := range oneQ {
		if k.Arity() != 1 {
			t.Errorf("%v: arity = %d, want 1", k, k.Arity())
		}
		if !k.IsOneQubit() || k.IsTwoQubit() {
			t.Errorf("%v: classification wrong", k)
		}
	}
	for _, k := range twoQ {
		if k.Arity() != 2 {
			t.Errorf("%v: arity = %d, want 2", k, k.Arity())
		}
		if k.IsOneQubit() || !k.IsTwoQubit() {
			t.Errorf("%v: classification wrong", k)
		}
	}
	if KindBarrier.Arity() != 0 {
		t.Errorf("barrier arity = %d, want 0", KindBarrier.Arity())
	}
	if KindInvalid.Arity() != 0 {
		t.Errorf("invalid arity = %d, want 0", KindInvalid.Arity())
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindH:       "h",
		KindMS:      "ms",
		KindCP:      "cp",
		KindMeasure: "measure",
		Kind(200):   "kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestGateOperands(t *testing.T) {
	g1 := NewGate1(KindH, 3)
	if ops := g1.Operands(); len(ops) != 1 || ops[0] != 3 {
		t.Errorf("1q operands = %v, want [3]", ops)
	}
	g2 := NewGate2(KindCX, 1, 5)
	if ops := g2.Operands(); len(ops) != 2 || ops[0] != 1 || ops[1] != 5 {
		t.Errorf("2q operands = %v, want [1 5]", ops)
	}
	b := Gate{Kind: KindBarrier}
	if ops := b.Operands(); ops != nil {
		t.Errorf("barrier operands = %v, want nil", ops)
	}
}

func TestGateOther(t *testing.T) {
	g := NewGate2(KindMS, 2, 7)
	if p := g.Other(2); p != 7 {
		t.Errorf("Other(2) = %d, want 7", p)
	}
	if p := g.Other(7); p != 2 {
		t.Errorf("Other(7) = %d, want 2", p)
	}
	if p := g.Other(4); p != -1 {
		t.Errorf("Other(4) = %d, want -1", p)
	}
	g1 := NewGate1(KindH, 2)
	if p := g1.Other(2); p != -1 {
		t.Errorf("one-qubit Other = %d, want -1", p)
	}
}

func TestGateTouches(t *testing.T) {
	g := NewGate2(KindCZ, 0, 9)
	for q, want := range map[int]bool{0: true, 9: true, 4: false} {
		if got := g.Touches(q); got != want {
			t.Errorf("Touches(%d) = %v, want %v", q, got, want)
		}
	}
	g1 := NewGate1(KindX, 5)
	if !g1.Touches(5) || g1.Touches(0) {
		t.Error("one-qubit Touches wrong")
	}
}

func TestGateString(t *testing.T) {
	cases := []struct {
		g    Gate
		want string
	}{
		{NewGate1(KindH, 2), "h q[2]"},
		{NewGate2(KindCX, 0, 1), "cx q[0],q[1]"},
		{Gate{Kind: KindRZ, Qubits: [2]int{4, -1}, Param: 1.5}, "rz(1.5) q[4]"},
		{Gate{Kind: KindBarrier}, "barrier"},
	}
	for _, c := range cases {
		if got := c.g.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
