package circuit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLowerToNativeKinds(t *testing.T) {
	c := New("t", 3)
	c.H(0)
	c.CX(0, 1)
	c.CZ(1, 2)
	c.CP(math.Pi/4, 0, 2)
	c.Swap(0, 1)
	c.Measure(0)
	n := LowerToNative(c)
	for _, g := range n.Gates {
		switch g.Kind {
		case KindMS, KindRX, KindRY, KindRZ, KindMeasure, KindBarrier:
		default:
			t.Errorf("non-native gate %v survived lowering", g)
		}
	}
}

func TestLowerToNativeMSCounts(t *testing.T) {
	cases := []struct {
		build  func(c *Circuit)
		wantMS int
	}{
		{func(c *Circuit) { c.CX(0, 1) }, 1},
		{func(c *Circuit) { c.CZ(0, 1) }, 1},
		{func(c *Circuit) { c.CP(1.0, 0, 1) }, 1},
		{func(c *Circuit) { c.RZZ(0.5, 0, 1) }, 1},
		{func(c *Circuit) { c.MS(0, 1) }, 1},
		{func(c *Circuit) { c.Swap(0, 1) }, 3}, // the T≥3 identity
	}
	for i, tc := range cases {
		c := New("t", 2)
		tc.build(c)
		n := LowerToNative(c)
		got := 0
		for _, g := range n.Gates {
			if g.Kind == KindMS {
				got++
			}
		}
		if got != tc.wantMS {
			t.Errorf("case %d: MS count = %d, want %d", i, got, tc.wantMS)
		}
	}
}

func TestLowerPreservesQubitCountAndMeasures(t *testing.T) {
	c := New("t", 5)
	c.H(0)
	c.CX(0, 4)
	c.Measure(4)
	n := LowerToNative(c)
	if n.NumQubits != 5 {
		t.Errorf("qubits = %d", n.NumQubits)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := n.Stats(); s.Measures != 1 {
		t.Errorf("measures = %d, want 1", s.Measures)
	}
}

func TestOptimizeCancelsSelfInverses(t *testing.T) {
	c := New("t", 2)
	c.H(0)
	c.H(0)
	c.X(1)
	c.X(1)
	o := OptimizeOneQubit(c)
	if len(o.Gates) != 0 {
		t.Errorf("gates left: %v", o.Gates)
	}
}

func TestOptimizeCancelsAdjoints(t *testing.T) {
	c := New("t", 1)
	c.T(0)
	c.Tdg(0)
	c.S(0)
	c.Append(NewGate1(KindSdg, 0))
	o := OptimizeOneQubit(c)
	if len(o.Gates) != 0 {
		t.Errorf("gates left: %v", o.Gates)
	}
}

func TestOptimizeMergesRotations(t *testing.T) {
	c := New("t", 1)
	c.RZ(0.5, 0)
	c.RZ(0.25, 0)
	o := OptimizeOneQubit(c)
	if len(o.Gates) != 1 {
		t.Fatalf("gates = %v, want one merged RZ", o.Gates)
	}
	if math.Abs(o.Gates[0].Param-0.75) > 1e-12 {
		t.Errorf("merged angle = %v, want 0.75", o.Gates[0].Param)
	}
}

func TestOptimizeRotationCancellation(t *testing.T) {
	c := New("t", 1)
	c.RX(1.2, 0)
	c.RX(-1.2, 0)
	o := OptimizeOneQubit(c)
	if len(o.Gates) != 0 {
		t.Errorf("gates left: %v", o.Gates)
	}
}

func TestOptimizeDropsZeroRotations(t *testing.T) {
	c := New("t", 1)
	c.RZ(0, 0)
	c.RY(2*math.Pi, 0) // full period: identity up to global phase
	o := OptimizeOneQubit(c)
	if len(o.Gates) != 0 {
		t.Errorf("gates left: %v", o.Gates)
	}
}

func TestOptimizeRespectsTwoQubitBarriers(t *testing.T) {
	c := New("t", 2)
	c.H(0)
	c.CX(0, 1) // blocks cancellation across it
	c.H(0)
	o := OptimizeOneQubit(c)
	if len(o.Gates) != 3 {
		t.Errorf("gates = %v, want all three preserved", o.Gates)
	}
}

func TestOptimizeRespectsMeasurement(t *testing.T) {
	c := New("t", 1)
	c.H(0)
	c.Measure(0)
	c.H(0)
	o := OptimizeOneQubit(c)
	if len(o.Gates) != 3 {
		t.Errorf("gates = %v, want all three preserved", o.Gates)
	}
}

func TestOptimizeChainsToFixedPoint(t *testing.T) {
	// T T T T T T T T = Z Z = identity; needs multiple merge rounds.
	c := New("t", 1)
	for i := 0; i < 4; i++ {
		c.T(0)
		c.Tdg(0)
	}
	o := OptimizeOneQubit(c)
	if len(o.Gates) != 0 {
		t.Errorf("gates left after fixed point: %v", o.Gates)
	}
}

func TestOptimizePreservesTwoQubitOrder(t *testing.T) {
	c := New("t", 3)
	c.CX(0, 1)
	c.H(0)
	c.H(0)
	c.CZ(1, 2)
	o := OptimizeOneQubit(c)
	idx := o.TwoQubitGates()
	if len(idx) != 2 {
		t.Fatalf("2q gates = %d, want 2", len(idx))
	}
	if o.Gates[idx[0]].Kind != KindCX || o.Gates[idx[1]].Kind != KindCZ {
		t.Error("two-qubit order changed")
	}
}

func TestNativeStats(t *testing.T) {
	c := New("t", 2)
	c.H(0)
	c.CX(0, 1)
	ms, rot := NativeStats(c)
	if ms != 1 {
		t.Errorf("ms = %d, want 1", ms)
	}
	if rot == 0 {
		t.Error("no rotations after lowering CX+H")
	}
}

func TestPropertyLoweringPreservesInteractionPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("r", 6)
		for i := 0; i < 30; i++ {
			a, b := rng.Intn(6), rng.Intn(6)
			if a == b {
				c.H(a)
				continue
			}
			switch rng.Intn(3) {
			case 0:
				c.CX(a, b)
			case 1:
				c.CZ(a, b)
			default:
				c.CP(rng.Float64(), a, b)
			}
		}
		orig := c.InteractionCount()
		low := LowerToNative(c).InteractionCount()
		// Every interacting pair must still interact (counts may differ
		// because CZ lowers through CX, but the pair set is preserved).
		for pair := range orig {
			if low[pair] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOptimizeNeverChangesTwoQubitSequence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("r", 5)
		for i := 0; i < 40; i++ {
			if rng.Intn(2) == 0 {
				c.H(rng.Intn(5))
			} else {
				a, b := rng.Intn(5), rng.Intn(5)
				if a != b {
					c.MS(a, b)
				}
			}
		}
		before := twoQubitSeq(c)
		after := twoQubitSeq(OptimizeOneQubit(c))
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func twoQubitSeq(c *Circuit) [][2]int {
	var seq [][2]int
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() {
			seq = append(seq, g.Qubits)
		}
	}
	return seq
}
