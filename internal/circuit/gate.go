// Package circuit provides the quantum-circuit intermediate representation
// used throughout the MUSS-TI compiler: gates, circuits, and a small
// OpenQASM 2.0 import/export subset.
//
// The representation is deliberately minimal. Trapped-ion compilers such as
// MUSS-TI care about which qubits a gate touches and in what order gates
// appear; the unitary itself is irrelevant to shuttle scheduling. Gates are
// therefore stored as a kind tag, the qubit operands, and an optional angle
// parameter.
package circuit

import "fmt"

// Kind identifies the operation a Gate performs.
type Kind uint8

// Gate kinds. One- and two-qubit gates common in trapped-ion programs.
// Two-qubit entangling gates are modelled after the Mølmer–Sørensen (MS)
// family; CX/CZ/CP are retained so that imported QASM keeps its identity,
// but the scheduler treats every two-qubit kind identically.
const (
	// KindInvalid is the zero Kind; it never appears in a valid circuit.
	KindInvalid Kind = iota

	// One-qubit gates.
	KindH
	KindX
	KindY
	KindZ
	KindS
	KindSdg
	KindT
	KindTdg
	KindRX
	KindRY
	KindRZ
	KindU // generic one-qubit unitary (angles ignored beyond Param)

	// Two-qubit gates.
	KindMS   // Mølmer–Sørensen entangling gate (native trapped-ion 2q gate)
	KindCX   // controlled-X, compiled to MS on hardware
	KindCZ   // controlled-Z
	KindCP   // controlled-phase (parameterised, used by QFT)
	KindRXX  // XX rotation (QAOA cost unitary on ions)
	KindRZZ  // ZZ rotation
	KindSwap // explicit SWAP in the source program (3 MS equivalents)

	// Non-unitary markers.
	KindMeasure
	KindBarrier
)

var kindNames = map[Kind]string{
	KindInvalid: "invalid",
	KindH:       "h",
	KindX:       "x",
	KindY:       "y",
	KindZ:       "z",
	KindS:       "s",
	KindSdg:     "sdg",
	KindT:       "t",
	KindTdg:     "tdg",
	KindRX:      "rx",
	KindRY:      "ry",
	KindRZ:      "rz",
	KindU:       "u",
	KindMS:      "ms",
	KindCX:      "cx",
	KindCZ:      "cz",
	KindCP:      "cp",
	KindRXX:     "rxx",
	KindRZZ:     "rzz",
	KindSwap:    "swap",
	KindMeasure: "measure",
	KindBarrier: "barrier",
}

// String returns the lower-case OpenQASM-style mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Arity reports how many qubit operands a gate of this kind takes.
// Barrier is variadic and reports 0.
func (k Kind) Arity() int {
	switch k {
	case KindH, KindX, KindY, KindZ, KindS, KindSdg, KindT, KindTdg,
		KindRX, KindRY, KindRZ, KindU, KindMeasure:
		return 1
	case KindMS, KindCX, KindCZ, KindCP, KindRXX, KindRZZ, KindSwap:
		return 2
	default:
		return 0
	}
}

// IsTwoQubit reports whether the kind entangles two qubits. These are the
// gates the shuttle scheduler must route for.
func (k Kind) IsTwoQubit() bool { return k.Arity() == 2 }

// IsOneQubit reports whether the kind acts on a single qubit (measurement
// included: it is executed in place like a one-qubit operation).
func (k Kind) IsOneQubit() bool { return k.Arity() == 1 }

// Gate is a single operation in a circuit.
//
// For one-qubit gates only Qubits[0] is meaningful. For two-qubit gates the
// operand order follows the source program (control first for CX/CZ/CP); the
// scheduler treats the pair symmetrically, as MS gates are symmetric on ions.
type Gate struct {
	Kind   Kind
	Qubits [2]int
	Param  float64 // rotation angle where applicable; 0 otherwise
}

// NewGate1 builds a one-qubit gate.
func NewGate1(k Kind, q int) Gate {
	return Gate{Kind: k, Qubits: [2]int{q, -1}}
}

// NewGate2 builds a two-qubit gate.
func NewGate2(k Kind, a, b int) Gate {
	return Gate{Kind: k, Qubits: [2]int{a, b}}
}

// Operands returns the slice of qubits the gate acts on (length 1 or 2).
func (g Gate) Operands() []int {
	switch g.Kind.Arity() {
	case 1:
		return []int{g.Qubits[0]}
	case 2:
		return []int{g.Qubits[0], g.Qubits[1]}
	default:
		return nil
	}
}

// Other returns the partner qubit of q in a two-qubit gate, or -1 when g is
// not a two-qubit gate or does not touch q.
func (g Gate) Other(q int) int {
	if !g.Kind.IsTwoQubit() {
		return -1
	}
	switch q {
	case g.Qubits[0]:
		return g.Qubits[1]
	case g.Qubits[1]:
		return g.Qubits[0]
	}
	return -1
}

// Touches reports whether the gate acts on qubit q.
func (g Gate) Touches(q int) bool {
	switch g.Kind.Arity() {
	case 1:
		return g.Qubits[0] == q
	case 2:
		return g.Qubits[0] == q || g.Qubits[1] == q
	}
	return false
}

// String renders the gate in a compact OpenQASM-like form.
func (g Gate) String() string {
	switch g.Kind.Arity() {
	case 1:
		if g.Param != 0 {
			return fmt.Sprintf("%s(%g) q[%d]", g.Kind, g.Param, g.Qubits[0])
		}
		return fmt.Sprintf("%s q[%d]", g.Kind, g.Qubits[0])
	case 2:
		if g.Param != 0 {
			return fmt.Sprintf("%s(%g) q[%d],q[%d]", g.Kind, g.Param, g.Qubits[0], g.Qubits[1])
		}
		return fmt.Sprintf("%s q[%d],q[%d]", g.Kind, g.Qubits[0], g.Qubits[1])
	default:
		return g.Kind.String()
	}
}
