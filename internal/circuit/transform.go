package circuit

import "math"

// This file implements the circuit-preparation passes a trapped-ion
// compiler runs before scheduling: lowering to the native gate set
// (Mølmer–Sørensen plus single-qubit rotations, §2.1/§2.2 of the paper)
// and peephole cleanup of the one-qubit layer. Shuttle scheduling treats
// every two-qubit gate identically, so these passes change gate counts and
// timing, not routing decisions — they are exposed so users compiling real
// programs get a faithful native-gate cost model.

// LowerToNative rewrites the circuit into the trapped-ion native set:
// every two-qubit gate becomes exactly one MS gate wrapped in one-qubit
// rotations, and the Clifford+T one-qubit gates become RZ/RY rotations
// (up to global phase). SWAP becomes three MS gates — the identity the
// paper's T≥3 SWAP-insertion threshold rests on. Measurements and
// barriers pass through.
func LowerToNative(c *Circuit) *Circuit {
	out := New(c.Name, c.NumQubits)
	for _, g := range c.Gates {
		lowerGate(out, g)
	}
	return out
}

func lowerGate(out *Circuit, g Gate) {
	switch g.Kind {
	case KindMeasure, KindBarrier:
		out.Gates = append(out.Gates, g)

	// One-qubit gates → RZ/RY decompositions (up to global phase).
	case KindH:
		out.RY(math.Pi/2, g.Qubits[0])
		out.RZ(math.Pi, g.Qubits[0])
	case KindX:
		out.RX(math.Pi, g.Qubits[0])
	case KindY:
		out.RY(math.Pi, g.Qubits[0])
	case KindZ:
		out.RZ(math.Pi, g.Qubits[0])
	case KindS:
		out.RZ(math.Pi/2, g.Qubits[0])
	case KindSdg:
		out.RZ(-math.Pi/2, g.Qubits[0])
	case KindT:
		out.RZ(math.Pi/4, g.Qubits[0])
	case KindTdg:
		out.RZ(-math.Pi/4, g.Qubits[0])
	case KindRX, KindRY, KindRZ, KindU:
		out.Gates = append(out.Gates, g)

	// Two-qubit gates → one MS gate with local corrections.
	case KindMS:
		out.Gates = append(out.Gates, g)
	case KindCX:
		// CX = (RY(-π/2)⊗I) MS (RX(-π/2)⊗RZ(-π/2)) (RY(π/2)⊗I), standard
		// ion-trap identity; the exact local frames are irrelevant to
		// scheduling but the op counts are real.
		a, b := g.Qubits[0], g.Qubits[1]
		out.RY(math.Pi/2, a)
		out.MS(a, b)
		out.RX(-math.Pi/2, a)
		out.RZ(-math.Pi/2, b)
		out.RY(-math.Pi/2, a)
	case KindCZ:
		a, b := g.Qubits[0], g.Qubits[1]
		out.RY(math.Pi/2, b)
		lowerGate(out, NewGate2(KindCX, a, b))
		out.RY(-math.Pi/2, b)
	case KindCP:
		// Controlled-phase via one MS and three RZ corrections.
		a, b := g.Qubits[0], g.Qubits[1]
		out.RZ(g.Param/2, a)
		out.RZ(g.Param/2, b)
		out.MS(a, b)
		out.RZ(-g.Param/2, b)
	case KindRZZ, KindRXX:
		// Native-adjacent interactions: a single MS realises them.
		out.MS(g.Qubits[0], g.Qubits[1])
	case KindSwap:
		// SWAP = 3 MS gates (plus local rotations, folded): the identity
		// behind the paper's SWAP-insertion cost model.
		a, b := g.Qubits[0], g.Qubits[1]
		out.MS(a, b)
		out.MS(a, b)
		out.MS(a, b)
	}
}

// OptimizeOneQubit performs peephole cleanup of the one-qubit layer:
// adjacent self-inverse gates cancel (H·H, X·X, ...), consecutive
// same-axis rotations on a qubit merge, and zero-angle rotations drop.
// Two-qubit gates and measurements act as barriers on their operands.
// The pass is fixed-point: it repeats until no rewrite applies.
func OptimizeOneQubit(c *Circuit) *Circuit {
	gates := append([]Gate(nil), c.Gates...)
	for {
		next, changed := optimizePass(gates, c.NumQubits)
		gates = next
		if !changed {
			break
		}
	}
	out := New(c.Name, c.NumQubits)
	out.Gates = gates
	return out
}

func optimizePass(gates []Gate, nQubits int) ([]Gate, bool) {
	// prev[q] is the index (into out) of the last surviving one-qubit gate
	// on q, or -1 after any two-qubit gate/measurement touched q.
	prev := make([]int, nQubits)
	for i := range prev {
		prev[i] = -1
	}
	out := make([]Gate, 0, len(gates))
	changed := false
	for _, g := range gates {
		switch {
		case g.Kind == KindBarrier:
			for i := range prev {
				prev[i] = -1
			}
			out = append(out, g)
		case g.Kind.IsTwoQubit() || g.Kind == KindMeasure:
			for _, q := range g.Operands() {
				prev[q] = -1
			}
			out = append(out, g)
		case isZeroRotation(g):
			changed = true // dropped
		case g.Kind.IsOneQubit():
			q := g.Qubits[0]
			if p := prev[q]; p >= 0 {
				if merged, ok := mergeOneQubit(out[p], g); ok {
					changed = true
					if merged == (Gate{}) {
						// Cancelled exactly: remove the earlier gate.
						out = append(out[:p], out[p+1:]...)
						fixupAfterRemoval(prev, p)
						prev[q] = -1
					} else {
						out[p] = merged
					}
					continue
				}
			}
			out = append(out, g)
			prev[q] = len(out) - 1
		default:
			out = append(out, g)
		}
	}
	return out, changed
}

func fixupAfterRemoval(prev []int, removed int) {
	for i, p := range prev {
		switch {
		case p == removed:
			prev[i] = -1
		case p > removed:
			prev[i] = p - 1
		}
	}
}

func isZeroRotation(g Gate) bool {
	switch g.Kind {
	case KindRX, KindRY, KindRZ:
		return math.Abs(normalizeAngle(g.Param)) < 1e-12
	}
	return false
}

// mergeOneQubit merges b into a when both act on the same qubit and the
// combination is expressible in the same family. The zero Gate means the
// pair cancels exactly.
func mergeOneQubit(a, b Gate) (Gate, bool) {
	if a.Qubits[0] != b.Qubits[0] {
		return Gate{}, false
	}
	// Self-inverse pairs cancel.
	if a.Kind == b.Kind {
		switch a.Kind {
		case KindH, KindX, KindY, KindZ:
			return Gate{}, true
		}
	}
	// Adjoint pairs cancel.
	adjoint := map[Kind]Kind{KindS: KindSdg, KindSdg: KindS, KindT: KindTdg, KindTdg: KindT}
	if adj, ok := adjoint[a.Kind]; ok && b.Kind == adj {
		return Gate{}, true
	}
	// Same-axis rotations merge.
	if a.Kind == b.Kind {
		switch a.Kind {
		case KindRX, KindRY, KindRZ:
			sum := normalizeAngle(a.Param + b.Param)
			if math.Abs(sum) < 1e-12 {
				return Gate{}, true
			}
			m := a
			m.Param = sum
			return m, true
		}
	}
	return Gate{}, false
}

// normalizeAngle maps an angle to (-2π, 2π) preserving rotation identity
// (one-qubit rotations are 4π-periodic up to global phase; 2π flips sign
// only globally, which scheduling ignores).
func normalizeAngle(a float64) float64 {
	const period = 2 * math.Pi
	a = math.Mod(a, period)
	return a
}

// NativeStats summarises a circuit in native-gate terms: MS count and the
// rotation count after lowering and cleanup. Reports use it to show the
// true hardware cost of an imported program.
func NativeStats(c *Circuit) (msGates, rotations int) {
	n := OptimizeOneQubit(LowerToNative(c))
	for _, g := range n.Gates {
		switch {
		case g.Kind == KindMS:
			msGates++
		case g.Kind.IsOneQubit() && g.Kind != KindMeasure:
			rotations++
		}
	}
	return msGates, rotations
}
