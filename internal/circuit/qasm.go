package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteQASM renders the circuit as OpenQASM 2.0. The output uses a single
// quantum register q[NumQubits] and, when measurements are present, a
// classical register c of the same width.
func (c *Circuit) WriteQASM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "OPENQASM 2.0;")
	fmt.Fprintln(bw, "include \"qelib1.inc\";")
	fmt.Fprintf(bw, "qreg q[%d];\n", c.NumQubits)
	hasMeasure := false
	for _, g := range c.Gates {
		if g.Kind == KindMeasure {
			hasMeasure = true
			break
		}
	}
	if hasMeasure {
		fmt.Fprintf(bw, "creg c[%d];\n", c.NumQubits)
	}
	for _, g := range c.Gates {
		switch {
		case g.Kind == KindMeasure:
			fmt.Fprintf(bw, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.Qubits[0])
		case g.Kind == KindBarrier:
			fmt.Fprintln(bw, "barrier q;")
		case g.Kind.IsOneQubit():
			if hasParam(g.Kind) {
				fmt.Fprintf(bw, "%s(%s) q[%d];\n", g.Kind, formatAngle(g.Param), g.Qubits[0])
			} else {
				fmt.Fprintf(bw, "%s q[%d];\n", g.Kind, g.Qubits[0])
			}
		case g.Kind.IsTwoQubit():
			if hasParam(g.Kind) {
				fmt.Fprintf(bw, "%s(%s) q[%d],q[%d];\n", g.Kind, formatAngle(g.Param), g.Qubits[0], g.Qubits[1])
			} else {
				fmt.Fprintf(bw, "%s q[%d],q[%d];\n", g.Kind, g.Qubits[0], g.Qubits[1])
			}
		}
	}
	return bw.Flush()
}

func hasParam(k Kind) bool {
	switch k {
	case KindRX, KindRY, KindRZ, KindCP, KindRXX, KindRZZ, KindU:
		return true
	}
	return false
}

func formatAngle(a float64) string {
	return strconv.FormatFloat(a, 'g', -1, 64)
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	// Common aliases found in QASMBench output.
	m["ccx"] = KindInvalid // handled specially by the parser
	m["u1"] = KindRZ
	m["u2"] = KindU
	m["u3"] = KindU
	m["p"] = KindRZ
	m["id"] = KindZ // identity scheduled as a trivial 1q op
	m["cu1"] = KindCP
	m["cphase"] = KindCP
	return m
}()

// ParseQASM reads a subset of OpenQASM 2.0 sufficient for QASMBench-style
// benchmark files: one qreg, optional cregs, the qelib1 standard gates, and
// ccx (lowered to the Toffoli decomposition). Gate definitions, conditionals
// and loops are not supported and yield an error.
func ParseQASM(name string, r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	c := &Circuit{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		// Statements may share a line; split on ';'.
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStatement(c, stmt); err != nil {
				return nil, fmt.Errorf("qasm line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c.NumQubits == 0 {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseStatement(c *Circuit, stmt string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "creg"), strings.HasPrefix(stmt, "barrier"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		n, err := parseRegDecl(stmt)
		if err != nil {
			return err
		}
		if c.NumQubits != 0 {
			return fmt.Errorf("multiple qreg declarations")
		}
		c.NumQubits = n
		return nil
	case strings.HasPrefix(stmt, "measure"):
		// measure q[i] -> c[i]
		rest := strings.TrimSpace(strings.TrimPrefix(stmt, "measure"))
		parts := strings.Split(rest, "->")
		q, err := parseQubitRef(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		c.Gates = append(c.Gates, NewGate1(KindMeasure, q))
		return nil
	}
	return parseGateApplication(c, stmt)
}

func parseRegDecl(stmt string) (int, error) {
	open := strings.Index(stmt, "[")
	closeB := strings.Index(stmt, "]")
	if open < 0 || closeB < open {
		return 0, fmt.Errorf("malformed register declaration %q", stmt)
	}
	n, err := strconv.Atoi(strings.TrimSpace(stmt[open+1 : closeB]))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("malformed register size in %q", stmt)
	}
	return n, nil
}

func parseQubitRef(s string) (int, error) {
	open := strings.Index(s, "[")
	closeB := strings.Index(s, "]")
	if open < 0 || closeB < open {
		return 0, fmt.Errorf("malformed qubit reference %q", s)
	}
	return strconv.Atoi(strings.TrimSpace(s[open+1 : closeB]))
}

func parseGateApplication(c *Circuit, stmt string) error {
	nameEnd := strings.IndexAny(stmt, "( \t")
	if nameEnd < 0 {
		return fmt.Errorf("malformed statement %q", stmt)
	}
	name := stmt[:nameEnd]
	rest := stmt[nameEnd:]
	param := 0.0
	if strings.HasPrefix(rest, "(") {
		closeP := strings.Index(rest, ")")
		if closeP < 0 {
			return fmt.Errorf("unclosed parameter list in %q", stmt)
		}
		var err error
		param, err = parseAngle(strings.TrimSpace(rest[1:closeP]))
		if err != nil {
			return fmt.Errorf("in %q: %w", stmt, err)
		}
		rest = rest[closeP+1:]
	}
	var qubits []int
	for _, ref := range strings.Split(strings.TrimSpace(rest), ",") {
		ref = strings.TrimSpace(ref)
		if ref == "" {
			continue
		}
		q, err := parseQubitRef(ref)
		if err != nil {
			return fmt.Errorf("in %q: %w", stmt, err)
		}
		qubits = append(qubits, q)
	}
	if name == "ccx" {
		if len(qubits) != 3 {
			return fmt.Errorf("ccx expects 3 operands, got %d", len(qubits))
		}
		c.Toffoli(qubits[0], qubits[1], qubits[2])
		return nil
	}
	kind, ok := kindByName[name]
	if !ok || kind == KindInvalid {
		return fmt.Errorf("unsupported gate %q", name)
	}
	switch kind.Arity() {
	case 1:
		if len(qubits) != 1 {
			return fmt.Errorf("%s expects 1 operand, got %d", name, len(qubits))
		}
		g := NewGate1(kind, qubits[0])
		g.Param = param
		c.Gates = append(c.Gates, g)
	case 2:
		if len(qubits) != 2 {
			return fmt.Errorf("%s expects 2 operands, got %d", name, len(qubits))
		}
		g := NewGate2(kind, qubits[0], qubits[1])
		g.Param = param
		c.Gates = append(c.Gates, g)
	default:
		return fmt.Errorf("unsupported gate %q", name)
	}
	return nil
}

// parseAngle evaluates the tiny angle grammar QASMBench uses:
// float literals, pi, pi/N, N*pi/M, -expr.
func parseAngle(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty angle")
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = strings.TrimSpace(s[1:])
	}
	v, err := parseAngleProduct(s)
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

func parseAngleProduct(s string) (float64, error) {
	// Split at the rightmost operator so chains associate left-to-right;
	// '*' is checked first, which keeps mixed forms like "pi/2*3" correct.
	if i := strings.LastIndex(s, "*"); i >= 0 {
		a, err := parseAngleProduct(strings.TrimSpace(s[:i]))
		if err != nil {
			return 0, err
		}
		b, err := parseAngleProduct(strings.TrimSpace(s[i+1:]))
		if err != nil {
			return 0, err
		}
		return a * b, nil
	}
	if i := strings.LastIndex(s, "/"); i >= 0 {
		num, err := parseAngleProduct(strings.TrimSpace(s[:i]))
		if err != nil {
			return 0, err
		}
		den, err := parseAngleProduct(strings.TrimSpace(s[i+1:]))
		if err != nil {
			return 0, err
		}
		if den == 0 {
			return 0, fmt.Errorf("division by zero in angle %q", s)
		}
		return num / den, nil
	}
	if s == "pi" {
		return math.Pi, nil
	}
	return strconv.ParseFloat(s, 64)
}
