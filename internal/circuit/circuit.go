package circuit

import (
	"errors"
	"fmt"
)

// Circuit is an ordered list of gates over NumQubits qubits.
//
// The zero value is an empty circuit over zero qubits; use New to size it.
type Circuit struct {
	// Name labels the circuit in reports ("Adder_n32", "QFT_n32", ...).
	Name string
	// NumQubits is the width of the register.
	NumQubits int
	// Gates is the program order; dependencies are implied by operand overlap.
	Gates []Gate
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	return &Circuit{Name: name, NumQubits: n}
}

// PerQubitGates returns, for every qubit, the indices into Gates of the
// gates touching it, in program order — the per-qubit timeline both
// schedulers walk with a cursor. All rows are carved from one backing array
// sized by a counting pass, so the whole structure costs three allocations
// regardless of circuit size.
func (c *Circuit) PerQubitGates() [][]int {
	counts := make([]int, c.NumQubits)
	total := 0
	for _, g := range c.Gates {
		switch g.Kind.Arity() {
		case 1:
			counts[g.Qubits[0]]++
			total++
		case 2:
			counts[g.Qubits[0]]++
			counts[g.Qubits[1]]++
			total += 2
		}
	}
	backing := make([]int, total)
	out := make([][]int, c.NumQubits)
	off := 0
	for q, cnt := range counts {
		out[q] = backing[off : off : off+cnt]
		off += cnt
	}
	for gi, g := range c.Gates {
		switch g.Kind.Arity() {
		case 1:
			out[g.Qubits[0]] = append(out[g.Qubits[0]], gi)
		case 2:
			out[g.Qubits[0]] = append(out[g.Qubits[0]], gi)
			out[g.Qubits[1]] = append(out[g.Qubits[1]], gi)
		}
	}
	return out
}

// Append adds a gate, validating the operands against the register width.
// It panics on malformed gates: circuit construction errors are programming
// errors, matching how the benchmark generators use it.
func (c *Circuit) Append(g Gate) {
	if err := c.check(g); err != nil {
		panic(fmt.Sprintf("circuit %q: %v", c.Name, err))
	}
	c.Gates = append(c.Gates, g)
}

func (c *Circuit) check(g Gate) error {
	switch g.Kind.Arity() {
	case 1:
		if g.Qubits[0] < 0 || g.Qubits[0] >= c.NumQubits {
			return fmt.Errorf("gate %v: qubit out of range [0,%d)", g, c.NumQubits)
		}
	case 2:
		a, b := g.Qubits[0], g.Qubits[1]
		if a < 0 || a >= c.NumQubits || b < 0 || b >= c.NumQubits {
			return fmt.Errorf("gate %v: qubit out of range [0,%d)", g, c.NumQubits)
		}
		if a == b {
			return fmt.Errorf("gate %v: identical operands", g)
		}
	case 0:
		if g.Kind != KindBarrier {
			return fmt.Errorf("gate %v: invalid kind", g)
		}
	}
	return nil
}

// H, X, Y, Z, S, T append the corresponding one-qubit gate.
func (c *Circuit) H(q int) { c.Append(NewGate1(KindH, q)) }
func (c *Circuit) X(q int) { c.Append(NewGate1(KindX, q)) }
func (c *Circuit) Y(q int) { c.Append(NewGate1(KindY, q)) }
func (c *Circuit) Z(q int) { c.Append(NewGate1(KindZ, q)) }
func (c *Circuit) S(q int) { c.Append(NewGate1(KindS, q)) }
func (c *Circuit) T(q int) { c.Append(NewGate1(KindT, q)) }

// Tdg appends the adjoint T gate.
func (c *Circuit) Tdg(q int) { c.Append(NewGate1(KindTdg, q)) }

// RX, RY, RZ append parameterised one-qubit rotations.
func (c *Circuit) RX(theta float64, q int) {
	g := NewGate1(KindRX, q)
	g.Param = theta
	c.Append(g)
}
func (c *Circuit) RY(theta float64, q int) {
	g := NewGate1(KindRY, q)
	g.Param = theta
	c.Append(g)
}
func (c *Circuit) RZ(theta float64, q int) {
	g := NewGate1(KindRZ, q)
	g.Param = theta
	c.Append(g)
}

// CX, CZ, MS, Swap append the corresponding two-qubit gate.
func (c *Circuit) CX(ctrl, tgt int) { c.Append(NewGate2(KindCX, ctrl, tgt)) }
func (c *Circuit) CZ(a, b int)      { c.Append(NewGate2(KindCZ, a, b)) }
func (c *Circuit) MS(a, b int)      { c.Append(NewGate2(KindMS, a, b)) }
func (c *Circuit) Swap(a, b int)    { c.Append(NewGate2(KindSwap, a, b)) }

// CP appends a controlled-phase rotation (used by QFT).
func (c *Circuit) CP(theta float64, a, b int) {
	g := NewGate2(KindCP, a, b)
	g.Param = theta
	c.Append(g)
}

// RZZ appends a ZZ interaction (used by QAOA cost layers).
func (c *Circuit) RZZ(theta float64, a, b int) {
	g := NewGate2(KindRZZ, a, b)
	g.Param = theta
	c.Append(g)
}

// Measure appends a computational-basis measurement of q.
func (c *Circuit) Measure(q int) { c.Append(NewGate1(KindMeasure, q)) }

// Toffoli appends a textbook 6-CX + 7-T decomposition of CCX(a, b, tgt).
// Trapped-ion hardware has no native three-qubit gate, so the benchmark
// generators that need CCX (Adder, SQRT) lower it here.
func (c *Circuit) Toffoli(a, b, tgt int) {
	c.H(tgt)
	c.CX(b, tgt)
	c.Tdg(tgt)
	c.CX(a, tgt)
	c.T(tgt)
	c.CX(b, tgt)
	c.Tdg(tgt)
	c.CX(a, tgt)
	c.T(b)
	c.T(tgt)
	c.H(tgt)
	c.CX(a, b)
	c.T(a)
	c.Tdg(b)
	c.CX(a, b)
}

// Stats summarises a circuit for reports.
type Stats struct {
	Qubits    int
	Gates     int
	OneQubit  int
	TwoQubit  int
	Measures  int
	Depth     int // two-qubit-gate depth (layers of the 2q interaction DAG)
	UsedPairs int // distinct unordered interacting qubit pairs
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Qubits: c.NumQubits, Gates: len(c.Gates)}
	level := make([]int, c.NumQubits)
	pairs := make(map[[2]int]struct{})
	for _, g := range c.Gates {
		switch {
		case g.Kind == KindMeasure:
			s.Measures++
		case g.Kind.IsOneQubit():
			s.OneQubit++
		case g.Kind.IsTwoQubit():
			s.TwoQubit++
			a, b := g.Qubits[0], g.Qubits[1]
			if a > b {
				a, b = b, a
			}
			pairs[[2]int{a, b}] = struct{}{}
			l := max(level[a], level[b]) + 1
			level[a], level[b] = l, l
			if l > s.Depth {
				s.Depth = l
			}
		}
	}
	s.UsedPairs = len(pairs)
	return s
}

// TwoQubitGates returns the indices (into Gates) of all two-qubit gates, in
// program order. The scheduler works on this sequence.
func (c *Circuit) TwoQubitGates() []int {
	var idx []int
	for i, g := range c.Gates {
		if g.Kind.IsTwoQubit() {
			idx = append(idx, i)
		}
	}
	return idx
}

// Reverse returns a new circuit with the gate order inverted. This is the
// "reversed graph G'" used by the SABRE two-fold initial-mapping search; the
// per-gate adjoints are irrelevant for scheduling, so kinds are kept as-is.
func (c *Circuit) Reverse() *Circuit {
	r := New(c.Name+"_rev", c.NumQubits)
	r.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		r.Gates[len(c.Gates)-1-i] = g
	}
	return r
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	r := New(c.Name, c.NumQubits)
	r.Gates = append([]Gate(nil), c.Gates...)
	return r
}

// Validate checks every gate against the register width. It is used by the
// QASM importer and by tests; generator-built circuits are validated on
// Append.
func (c *Circuit) Validate() error {
	if c.NumQubits <= 0 {
		return errors.New("circuit: non-positive qubit count")
	}
	for i, g := range c.Gates {
		if err := c.check(g); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// InteractionCount returns, for each unordered qubit pair that interacts,
// the number of two-qubit gates between them. Keys are [2]int{min, max}.
func (c *Circuit) InteractionCount() map[[2]int]int {
	m := make(map[[2]int]int)
	for _, g := range c.Gates {
		if !g.Kind.IsTwoQubit() {
			continue
		}
		a, b := g.Qubits[0], g.Qubits[1]
		if a > b {
			a, b = b, a
		}
		m[[2]int{a, b}]++
	}
	return m
}
