package circuit

import (
	"strings"
	"testing"
)

func TestBuildersAppendExpectedGates(t *testing.T) {
	c := New("t", 3)
	c.H(0)
	c.X(1)
	c.RZ(0.5, 2)
	c.CX(0, 1)
	c.CP(0.25, 1, 2)
	c.Measure(0)
	if len(c.Gates) != 6 {
		t.Fatalf("got %d gates, want 6", len(c.Gates))
	}
	wantKinds := []Kind{KindH, KindX, KindRZ, KindCX, KindCP, KindMeasure}
	for i, k := range wantKinds {
		if c.Gates[i].Kind != k {
			t.Errorf("gate %d kind = %v, want %v", i, c.Gates[i].Kind, k)
		}
	}
	if c.Gates[2].Param != 0.5 {
		t.Errorf("rz param = %v, want 0.5", c.Gates[2].Param)
	}
}

func TestAppendPanicsOnBadOperands(t *testing.T) {
	cases := []Gate{
		NewGate1(KindH, 5),     // out of range
		NewGate1(KindH, -1),    // negative
		NewGate2(KindCX, 0, 3), // second out of range
		NewGate2(KindCX, 1, 1), // identical operands
	}
	for _, g := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Append(%v) did not panic", g)
				}
			}()
			c := New("t", 3)
			c.Append(g)
		}()
	}
}

func TestStats(t *testing.T) {
	c := New("t", 4)
	c.H(0)
	c.CX(0, 1) // layer 1
	c.CX(2, 3) // layer 1
	c.CX(1, 2) // layer 2
	c.Measure(0)
	c.Measure(1)
	s := c.Stats()
	if s.Qubits != 4 || s.Gates != 6 {
		t.Errorf("qubits/gates = %d/%d, want 4/6", s.Qubits, s.Gates)
	}
	if s.OneQubit != 1 || s.TwoQubit != 3 || s.Measures != 2 {
		t.Errorf("1q/2q/meas = %d/%d/%d, want 1/3/2", s.OneQubit, s.TwoQubit, s.Measures)
	}
	if s.Depth != 2 {
		t.Errorf("depth = %d, want 2", s.Depth)
	}
	if s.UsedPairs != 3 {
		t.Errorf("used pairs = %d, want 3", s.UsedPairs)
	}
}

func TestTwoQubitGates(t *testing.T) {
	c := New("t", 3)
	c.H(0)
	c.CX(0, 1)
	c.X(2)
	c.CZ(1, 2)
	idx := c.TwoQubitGates()
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Errorf("two-qubit gate indices = %v, want [1 3]", idx)
	}
}

func TestReverse(t *testing.T) {
	c := New("t", 3)
	c.H(0)
	c.CX(0, 1)
	c.CZ(1, 2)
	r := c.Reverse()
	if r.NumQubits != 3 || len(r.Gates) != 3 {
		t.Fatalf("reverse shape wrong: %d qubits %d gates", r.NumQubits, len(r.Gates))
	}
	if r.Gates[0].Kind != KindCZ || r.Gates[2].Kind != KindH {
		t.Errorf("reverse order wrong: %v ... %v", r.Gates[0], r.Gates[2])
	}
	// Reversing twice restores the original order.
	rr := r.Reverse()
	for i := range c.Gates {
		if rr.Gates[i] != c.Gates[i] {
			t.Fatalf("double reverse gate %d = %v, want %v", i, rr.Gates[i], c.Gates[i])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := New("t", 2)
	c.CX(0, 1)
	cl := c.Clone()
	cl.H(0)
	if len(c.Gates) != 1 {
		t.Errorf("clone mutation leaked into original: %d gates", len(c.Gates))
	}
	if len(cl.Gates) != 2 {
		t.Errorf("clone has %d gates, want 2", len(cl.Gates))
	}
}

func TestValidate(t *testing.T) {
	c := New("t", 2)
	c.CX(0, 1)
	if err := c.Validate(); err != nil {
		t.Errorf("valid circuit rejected: %v", err)
	}
	bad := &Circuit{Name: "bad", NumQubits: 2, Gates: []Gate{NewGate2(KindCX, 0, 5)}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range gate accepted")
	}
	empty := &Circuit{Name: "e", NumQubits: 0}
	if err := empty.Validate(); err == nil {
		t.Error("zero-qubit circuit accepted")
	}
}

func TestInteractionCount(t *testing.T) {
	c := New("t", 3)
	c.CX(0, 1)
	c.CX(1, 0) // same unordered pair
	c.CZ(1, 2)
	m := c.InteractionCount()
	if m[[2]int{0, 1}] != 2 {
		t.Errorf("pair (0,1) count = %d, want 2", m[[2]int{0, 1}])
	}
	if m[[2]int{1, 2}] != 1 {
		t.Errorf("pair (1,2) count = %d, want 1", m[[2]int{1, 2}])
	}
	if len(m) != 2 {
		t.Errorf("pair count = %d, want 2", len(m))
	}
}

func TestToffoliDecomposition(t *testing.T) {
	c := New("t", 3)
	c.Toffoli(0, 1, 2)
	s := c.Stats()
	if s.TwoQubit != 6 {
		t.Errorf("toffoli 2q gates = %d, want 6 CX", s.TwoQubit)
	}
	if s.OneQubit != 9 {
		t.Errorf("toffoli 1q gates = %d, want 9 (2H + 7 T-family)", s.OneQubit)
	}
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() && g.Kind != KindCX {
			t.Errorf("unexpected 2q kind %v in decomposition", g.Kind)
		}
	}
}

func TestStatsEmptyCircuit(t *testing.T) {
	c := New("empty", 5)
	s := c.Stats()
	if s.Depth != 0 || s.TwoQubit != 0 || s.UsedPairs != 0 {
		t.Errorf("empty circuit stats = %+v", s)
	}
}

func TestCircuitStringsMentionQubits(t *testing.T) {
	c := New("t", 2)
	c.CX(0, 1)
	if !strings.Contains(c.Gates[0].String(), "q[0]") {
		t.Errorf("gate string %q lacks operand", c.Gates[0].String())
	}
}
