package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"mussti/internal/eval"
)

// progressTracker is the per-request core.Observer: plain atomic counters
// the streaming loop snapshots on each tick. Callbacks arrive synchronously
// on the compiling goroutine, so each is one atomic store or add — cheap
// enough for the scheduler's inner loop, and safe for the concurrent
// candidate passes SABRE runs.
type progressTracker struct {
	gatesDone  atomic.Int64
	gatesTotal atomic.Int64
	shuttles   atomic.Int64
	evictions  atomic.Int64
	swaps      atomic.Int64
}

func (p *progressTracker) GateScheduled(done, total int) {
	p.gatesDone.Store(int64(done))
	p.gatesTotal.Store(int64(total))
}
func (p *progressTracker) Shuttle(q, from, to int)       { p.shuttles.Add(1) }
func (p *progressTracker) Eviction(victim, from, to int) { p.evictions.Add(1) }
func (p *progressTracker) SwapInserted(a, b int)         { p.swaps.Add(1) }

// snapshot freezes the counters into one progress event.
func (p *progressTracker) snapshot() progressEvent {
	return progressEvent{
		Event:      "progress",
		GatesDone:  p.gatesDone.Load(),
		GatesTotal: p.gatesTotal.Load(),
		Shuttles:   p.shuttles.Load(),
		Evictions:  p.evictions.Load(),
		Swaps:      p.swaps.Load(),
	}
}

// Streamed responses are a sequence of events: one "accepted", zero or more
// "progress" ticks, then exactly one "done" or "error". Non-streamed
// responses are the bare doneEvent (or errorEvent) JSON object.
type acceptedEvent struct {
	Event string `json:"event"`
	Label string `json:"label"`
}

type progressEvent struct {
	Event      string `json:"event"`
	GatesDone  int64  `json:"gates_done"`
	GatesTotal int64  `json:"gates_total"`
	Shuttles   int64  `json:"shuttles"`
	Evictions  int64  `json:"evictions"`
	Swaps      int64  `json:"swaps"`
}

type doneEvent struct {
	Event  string `json:"event"`
	Result result `json:"result"`
}

type errorEvent struct {
	Event string `json:"event"`
	Error string `json:"error"`
}

// result is the JSON rendering of one eval.Measurement.
type result struct {
	App           string  `json:"app"`
	Compiler      string  `json:"compiler"`
	Qubits        int     `json:"qubits"`
	TwoQubit      int     `json:"two_qubit_gates"`
	Shuttles      int     `json:"shuttles"`
	ChainSwaps    int     `json:"chain_swaps"`
	InsertedSwaps int     `json:"inserted_swaps"`
	FiberGates    int     `json:"fiber_gates"`
	TimeUS        float64 `json:"time_us"`
	Fidelity      float64 `json:"fidelity"`
	Log10F        float64 `json:"log10_fidelity"`
	CompileMS     float64 `json:"compile_ms"`
}

func resultOf(m eval.Measurement) result {
	return result{
		App:           m.App,
		Compiler:      m.Compiler,
		Qubits:        m.Qubits,
		TwoQubit:      m.TwoQubit,
		Shuttles:      m.Shuttles,
		ChainSwaps:    m.ChainSwaps,
		InsertedSwaps: m.InsertedSwaps,
		FiberGates:    m.FiberGates,
		TimeUS:        m.TimeUS,
		Fidelity:      m.Fidelity,
		Log10F:        m.Log10F,
		CompileMS:     float64(m.CompileTime) / float64(time.Millisecond),
	}
}

// eventWriter frames events onto the response: SSE `data:` frames when the
// client asked for text/event-stream, newline-delimited JSON otherwise. Each
// event is flushed immediately so progress reaches the client mid-compile.
type eventWriter struct {
	w   http.ResponseWriter
	f   http.Flusher
	sse bool
}

func newEventWriter(w http.ResponseWriter, r *http.Request) *eventWriter {
	ew := &eventWriter{w: w}
	ew.f, _ = w.(http.Flusher)
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		ew.sse = true
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	return ew
}

// write frames one event. Write errors are ignored: a failed write means the
// client is gone, and the request context tears the compile down.
func (e *eventWriter) write(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	if e.sse {
		fmt.Fprintf(e.w, "data: %s\n\n", data)
	} else {
		e.w.Write(append(data, '\n'))
	}
	if e.f != nil {
		e.f.Flush()
	}
}

// streamCompile runs the task on a worker goroutine and streams progress
// events until it finishes. The compile runs under the request context, so a
// client disconnect cancels it within one scheduler step; the final receive
// from done joins the goroutine on every exit path — no compile outlives its
// request unobserved (coalesced followers detach, but the memo leader hands
// off to them, and the last interested request's cancellation stops it).
func (s *Server) streamCompile(w http.ResponseWriter, r *http.Request, t task) {
	ctx := r.Context()
	obs := &progressTracker{}
	type outcome struct {
		m   eval.Measurement
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		m, err := t.run(ctx, obs)
		done <- outcome{m, err}
	}()

	ew := newEventWriter(w, r)
	ew.write(acceptedEvent{Event: "accepted", Label: t.label})
	ticker := time.NewTicker(s.streamInterval)
	defer ticker.Stop()
	for {
		select {
		case o := <-done:
			if o.err != nil {
				ew.write(errorEvent{Event: "error", Error: o.err.Error()})
				return
			}
			ew.write(obs.snapshot())
			ew.write(doneEvent{Event: "done", Result: resultOf(o.m)})
			return
		case <-ticker.C:
			ew.write(obs.snapshot())
		case <-ctx.Done():
			// Client gone: the compile is aborting on the same context; wait
			// for it so the goroutine never leaks past the handler.
			<-done
			return
		}
	}
}
