package service

import (
	"context"
	"crypto/sha256"
	"fmt"
	"strings"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
	"mussti/internal/eval"
)

// compileRequest is the JSON body of POST /v1/compile. Exactly one circuit
// source is set: App names a built-in paper benchmark ("QFT_n32"), QASM
// carries inline OpenQASM 2.0 source. Everything else is optional and
// defaults to the paper's headline setup: the "mussti" compiler on an
// EML-QCCD device sized for the circuit.
type compileRequest struct {
	// App is a built-in benchmark name, e.g. "GHZ_n32" (GET /v1/benchmarks
	// lists the families).
	App string `json:"app,omitempty"`
	// QASM is inline OpenQASM 2.0 source (QASMBench subset).
	QASM string `json:"qasm,omitempty"`
	// Name labels a QASM circuit in responses; default "qasm".
	Name string `json:"name,omitempty"`
	// Lower rewrites a QASM circuit into the native gate set (MS +
	// rotations) and cleans up one-qubit gates before compiling.
	Lower bool `json:"lower,omitempty"`
	// Compiler is a registry name (GET /v1/compilers); default "mussti".
	Compiler string `json:"compiler,omitempty"`
	// Arch configures the EML-QCCD device; nil means the paper default
	// sized for the circuit. Modules must be set when Arch is present.
	Arch *archRequest `json:"arch,omitempty"`
	// Grid selects a monolithic QCCD grid target instead of a device.
	Grid *gridRequest `json:"grid,omitempty"`
	// Config overrides compile knobs; nil means the compiler's defaults.
	Config *configRequest `json:"config,omitempty"`
	// Stream switches the response to streamed progress events: chunked
	// JSON lines, or SSE when the request Accepts text/event-stream.
	Stream bool `json:"stream,omitempty"`
}

// archRequest mirrors the arch.Config knobs the service exposes.
type archRequest struct {
	Modules         int `json:"modules"`
	TrapCapacity    int `json:"trap_capacity,omitempty"`
	OpticalCapacity int `json:"optical_capacity,omitempty"`
	OpticalZones    int `json:"optical_zones,omitempty"`
}

// gridRequest describes a rows×cols monolithic QCCD grid.
type gridRequest struct {
	Rows     int `json:"rows"`
	Cols     int `json:"cols"`
	Capacity int `json:"capacity"`
}

// configRequest mirrors the CompileConfig knobs the service exposes. Absent
// fields keep the compiler's own defaults.
type configRequest struct {
	// Mapping is "trivial" or "sabre".
	Mapping       string `json:"mapping,omitempty"`
	SwapInsertion *bool  `json:"swap_insertion,omitempty"`
	LookAhead     int    `json:"look_ahead,omitempty"`
	SwapThreshold int    `json:"swap_threshold,omitempty"`
	// Replacement is "lru", "fifo", "random" or "belady".
	Replacement string `json:"replacement,omitempty"`
}

// task is a fully resolved compile request: a display label, the cache key
// the request coalesces under, and a run closure that executes it with an
// optional per-request progress observer attached.
type task struct {
	label string
	key   string
	run   func(ctx context.Context, obs core.Observer) (eval.Measurement, error)
}

// badRequest marks resolution errors the client caused (HTTP 400), as
// opposed to compile failures (HTTP 500).
type badRequest struct{ err error }

func (e badRequest) Error() string { return e.err.Error() }

func badRequestf(format string, args ...any) error {
	return badRequest{fmt.Errorf(format, args...)}
}

// applyConfig folds the request's knob overrides onto the compiler's default
// configuration.
func applyConfig(base core.CompileConfig, req *configRequest) (core.CompileConfig, error) {
	if req == nil {
		return base, nil
	}
	switch strings.ToLower(req.Mapping) {
	case "":
	case "trivial":
		base.Mapping = core.MappingTrivial
	case "sabre":
		base.Mapping = core.MappingSABRE
	default:
		return base, badRequestf("unknown mapping %q (want trivial or sabre)", req.Mapping)
	}
	if req.SwapInsertion != nil {
		base.SwapInsertion = *req.SwapInsertion
	}
	if req.LookAhead < 0 || req.SwapThreshold < 0 {
		return base, badRequestf("look_ahead and swap_threshold must be non-negative")
	}
	if req.LookAhead > 0 {
		base.LookAhead = req.LookAhead
	}
	if req.SwapThreshold > 0 {
		base.SwapThreshold = req.SwapThreshold
	}
	switch strings.ToLower(req.Replacement) {
	case "":
	case "lru":
		base.Replacement = core.ReplaceLRU
	case "fifo":
		base.Replacement = core.ReplaceFIFO
	case "random":
		base.Replacement = core.ReplaceRandom
	case "belady":
		base.Replacement = core.ReplaceBelady
	default:
		return base, badRequestf("unknown replacement %q (want lru, fifo, random or belady)", req.Replacement)
	}
	return base, nil
}

// archConfig lifts the request's device shape into an arch.Config.
func (r *archRequest) config() (arch.Config, error) {
	if r.Modules <= 0 {
		return arch.Config{}, badRequestf("arch.modules must be positive (omit arch entirely for the paper default)")
	}
	cfg := arch.DefaultConfig(0)
	cfg.Modules = r.Modules
	if r.TrapCapacity > 0 {
		cfg.TrapCapacity = r.TrapCapacity
	}
	if r.OpticalCapacity > 0 {
		cfg.OpticalCapacity = r.OpticalCapacity
	}
	if r.OpticalZones > 0 {
		cfg.OpticalZones = r.OpticalZones
	}
	return cfg, nil
}

// resolve validates the request and builds its task. All user-input errors
// surface here as badRequest, before admission — a malformed request never
// holds a compile slot.
func (s *Server) resolve(req *compileRequest) (task, error) {
	name := req.Compiler
	if name == "" {
		name = "mussti"
	}
	comp, err := core.LookupCompiler(name)
	if err != nil {
		return task{}, badRequest{err}
	}
	if req.Arch != nil && req.Grid != nil {
		return task{}, badRequestf("set arch or grid, not both")
	}
	var grid *arch.Grid
	if req.Grid != nil {
		grid, err = arch.NewGrid(req.Grid.Rows, req.Grid.Cols, req.Grid.Capacity)
		if err != nil {
			return task{}, badRequest{err}
		}
	}
	switch {
	case req.App != "" && req.QASM != "":
		return task{}, badRequestf("set app or qasm, not both")
	case req.App != "":
		return s.resolveApp(req, name, comp, grid)
	case req.QASM != "":
		return s.resolveQASM(req, name, comp, grid)
	default:
		return task{}, badRequestf("set app (a built-in benchmark) or qasm (inline OpenQASM 2.0)")
	}
}

// resolveApp builds the task for a built-in benchmark: a registry
// CompileSpec job through Runner.RunJob, so the request rides the same memo
// singleflight, disk cache and (when configured) dist fleet as the
// experiment harness — identical requests across clients compile once.
func (s *Server) resolveApp(req *compileRequest, name string, comp core.Compiler, grid *arch.Grid) (task, error) {
	if _, err := bench.ByName(req.App); err != nil {
		return task{}, badRequest{err}
	}
	spec := eval.CompileSpec{App: req.App, Compiler: name, Grid: grid}
	if req.Arch != nil {
		cfg, err := req.Arch.config()
		if err != nil {
			return task{}, err
		}
		spec.Arch = cfg
	}
	if req.Config != nil {
		cfg, err := applyConfig(core.DefaultConfigFor(comp), req.Config)
		if err != nil {
			return task{}, err
		}
		spec.Config = &cfg
	}
	key, _ := spec.CacheKey()
	return task{
		label: req.App + "/" + name,
		key:   key,
		run: func(ctx context.Context, obs core.Observer) (eval.Measurement, error) {
			j := eval.Job{Spec: &spec}
			if obs != nil {
				j = j.WithObserver(obs)
			}
			return s.runner.RunJob(ctx, j)
		},
	}, nil
}

// resolveQASM builds the task for an inline QASM circuit. Ad-hoc circuits
// have no registry spec, so they run through Runner.RunKeyed under a
// content-hash key: identical submissions — same source, compiler, target
// and knobs — still coalesce in flight and persist to the shared disk
// cache; only the circuit source replaces the benchmark name in the key.
func (s *Server) resolveQASM(req *compileRequest, name string, comp core.Compiler, grid *arch.Grid) (task, error) {
	label := req.Name
	if label == "" {
		label = "qasm"
	}
	c, err := circuit.ParseQASM(label, strings.NewReader(req.QASM))
	if err != nil {
		return task{}, badRequest{err}
	}
	if req.Lower {
		c = circuit.OptimizeOneQubit(circuit.LowerToNative(c))
	}
	var target arch.Target
	if grid != nil {
		target = grid
	} else {
		acfg := arch.DefaultConfig(c.NumQubits)
		if req.Arch != nil {
			if acfg, err = req.Arch.config(); err != nil {
				return task{}, err
			}
		}
		dev, err := arch.New(acfg)
		if err != nil {
			return task{}, badRequest{err}
		}
		target = dev
	}
	cfg, err := applyConfig(core.DefaultConfigFor(comp), req.Config)
	if err != nil {
		return task{}, err
	}
	sum := sha256.Sum256([]byte(req.QASM))
	key := fmt.Sprintf("qasm-sha256:%x|lower=%t|%s|%s|%s|%s",
		sum, req.Lower, label, name, target.CacheKey(), cfg.CacheKey())
	return task{
		label: label + "/" + name,
		key:   key,
		run: func(ctx context.Context, obs core.Observer) (eval.Measurement, error) {
			return s.runner.RunKeyed(ctx, key, func(ctx context.Context) (eval.Measurement, error) {
				cc := cfg
				cc.Observer = obs
				res, err := comp.Compile(ctx, c, target, &cc)
				if err != nil {
					return eval.Measurement{}, err
				}
				return eval.MeasurementOf(c.Name, comp, c, res), nil
			})
		},
	}, nil
}
