//mussti:allow=determinism service telemetry is wall-clock by design and never feeds results

package service

import (
	"math"
	"sort"
	"sync"
	"time"

	"mussti/internal/eval"
)

// metrics aggregates the service's operational counters. Job outcomes feed
// it through Runner.SetJobHook (so fleet-dispatched and locally compiled
// jobs report identically), admission feeds the request counters, and
// /metrics renders a Snapshot.
type metrics struct {
	mu sync.Mutex
	// Counters; all guarded by mu (the hook already serialises nothing, and
	// a single small critical section beats five atomics plus a locked ring).
	requests  int64 // compile requests admitted past decode+resolve
	rejected  int64 // 429s: queue full
	failures  int64 // compiles that returned an error (cancellations included)
	compiles  int64 // outcomes that actually compiled (memo misses)
	cached    int64 // outcomes served by memo or disk without compiling
	firstSeen time.Time

	// ring holds the most recent job latencies for the quantiles and the
	// trailing-window rate; 512 samples bound both memory and sort cost.
	ring [512]sample
	n    int // total samples ever; ring index is n % len(ring)
}

type sample struct {
	wall time.Duration
	at   time.Time
}

// observe ingests one job outcome from the runner hook.
func (m *metrics) observe(o eval.JobOutcome) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case o.Err != nil:
		m.failures++
	case o.Cached:
		m.cached++
	default:
		m.compiles++
	}
	if o.Err == nil {
		m.ring[m.n%len(m.ring)] = sample{wall: o.Wall, at: now}
		m.n++
	}
}

func (m *metrics) admitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if m.firstSeen.IsZero() {
		m.firstSeen = time.Now()
	}
}

func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// rateWindow is the trailing window the jobs-per-second rate is computed
// over.
const rateWindow = 60 * time.Second

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	// Requests counts compile requests admitted; Rejected counts 429s.
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
	// Compiles counts jobs that actually compiled; CacheServed counts jobs
	// answered by the memo or disk cache; Failures counts errored jobs.
	Compiles    int64 `json:"compiles"`
	CacheServed int64 `json:"cache_served"`
	Failures    int64 `json:"failures"`
	// CompilesPerSec is the successful-job completion rate over the
	// trailing 60s window.
	CompilesPerSec float64 `json:"compiles_per_sec"`
	// InFlight and Queued are instantaneous admission gauges.
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	// P50/P99 are job-latency quantiles over the last 512 successful jobs,
	// in milliseconds (0 before any job completes).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Memo and Disk report the runner's cache layers; Disk is all-zero when
	// no disk cache is attached.
	Memo CacheStats `json:"memo"`
	Disk CacheStats `json:"disk"`
	// Fleet is present when the service compiles through a dist worker
	// fleet.
	Fleet *FleetStats `json:"fleet,omitempty"`
}

// CacheStats is one cache layer's hit/miss counters.
type CacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

func cacheStatsOf(hits, misses int64) CacheStats {
	s := CacheStats{Hits: hits, Misses: misses}
	if total := hits + misses; total > 0 {
		s.HitRate = float64(hits) / float64(total)
	}
	return s
}

// FleetStats mirrors dist.CoordinatorStats plus the fleet shape.
type FleetStats struct {
	Workers    int    `json:"workers"`
	Capacity   int    `json:"capacity"`
	Dispatched uint64 `json:"dispatched"`
	Batched    uint64 `json:"batched"`
	Batches    uint64 `json:"batches"`
	Retried    uint64 `json:"retried"`
	Deaths     uint64 `json:"deaths"`
}

// snapshot renders the current counters. inFlight/queued are read from the
// server's admission gauges by the caller.
func (m *metrics) snapshot() MetricsSnapshot {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		Requests:    m.requests,
		Rejected:    m.rejected,
		Compiles:    m.compiles,
		CacheServed: m.cached,
		Failures:    m.failures,
	}
	k := min(m.n, len(m.ring))
	if k == 0 {
		return snap
	}
	walls := make([]time.Duration, 0, k)
	recent := 0
	for _, s := range m.ring[:k] {
		walls = append(walls, s.wall)
		if now.Sub(s.at) <= rateWindow {
			recent++
		}
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	snap.P50MS = float64(quantile(walls, 0.50)) / float64(time.Millisecond)
	snap.P99MS = float64(quantile(walls, 0.99)) / float64(time.Millisecond)
	// The window may be truncated by ring eviction (recent == k with more
	// history) or by service youth; clamp the divisor to the observed span
	// so early rates are not diluted by an empty past.
	window := rateWindow
	if alive := now.Sub(m.firstSeen); !m.firstSeen.IsZero() && alive < window && alive > 0 {
		window = alive
	}
	snap.CompilesPerSec = float64(recent) / window.Seconds()
	return snap
}

// quantile reads the q-th quantile from a sorted sample set (nearest-rank,
// rounding the rank up — with two samples the p99 is the larger one, not the
// smaller).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}
