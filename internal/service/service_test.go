package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mussti/internal/arch"
	"mussti/internal/circuit"
	"mussti/internal/core"
	"mussti/internal/eval"
)

// hookCompiler is a registry compiler whose behaviour each test swaps in:
// the registry is process-wide and registration never replaces, so the one
// registered instance delegates through a settable function.
type hookCompiler struct {
	mu sync.Mutex
	fn func(ctx context.Context) (*core.Result, error)
}

func (h *hookCompiler) Name() string { return "svc-test" }

func (h *hookCompiler) Compile(ctx context.Context, c *circuit.Circuit, t arch.Target, cfg *core.CompileConfig) (*core.Result, error) {
	h.mu.Lock()
	fn := h.fn
	h.mu.Unlock()
	if fn == nil {
		return &core.Result{}, nil
	}
	return fn(ctx)
}

var testCompiler = &hookCompiler{}

func init() {
	core.MustRegisterCompiler(testCompiler)
}

// set installs fn as the test compiler's behaviour for one test.
func (h *hookCompiler) set(t *testing.T, fn func(ctx context.Context) (*core.Result, error)) {
	t.Helper()
	h.mu.Lock()
	h.fn = fn
	h.mu.Unlock()
	t.Cleanup(func() {
		h.mu.Lock()
		h.fn = nil
		h.mu.Unlock()
	})
}

// newTestServer starts a service over a fresh runner (fresh memo: tests
// never share cache entries) and returns it with its HTTP front.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Runner == nil {
		opts.Runner = eval.NewRunner(4)
	}
	if opts.StreamInterval == 0 {
		opts.StreamInterval = 10 * time.Millisecond
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, url string, body string) (*http.Response, func()) {
	t.Helper()
	resp, err := http.Post(url+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, func() { resp.Body.Close() }
}

// decodeDone reads a non-streamed compile response.
func decodeDone(t *testing.T, resp *http.Response) doneEvent {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var ev doneEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Event != "done" {
		t.Fatalf("event = %q, want done", ev.Event)
	}
	return ev
}

func getMetrics(t *testing.T, url string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestCompileBuiltin: a built-in benchmark compiles end to end with the real
// MUSS-TI compiler; the repeat request is served by the memo and /metrics
// reflects both.
func TestCompileBuiltin(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"app":"GHZ_n4"}`
	resp, done := postCompile(t, ts.URL, body)
	ev := decodeDone(t, resp)
	done()
	if ev.Result.App != "GHZ_n4" || ev.Result.Qubits != 4 {
		t.Fatalf("result = %+v", ev.Result)
	}
	if ev.Result.Compiler != "MUSS-TI" {
		t.Errorf("compiler label = %q, want MUSS-TI", ev.Result.Compiler)
	}

	resp, done = postCompile(t, ts.URL, body)
	ev2 := decodeDone(t, resp)
	done()
	if ev2.Result != ev.Result {
		t.Errorf("repeat result differs: %+v vs %+v", ev2.Result, ev.Result)
	}
	snap := getMetrics(t, ts.URL)
	if snap.Requests != 2 || snap.Compiles != 1 || snap.CacheServed != 1 {
		t.Errorf("metrics = requests %d compiles %d cached %d, want 2/1/1",
			snap.Requests, snap.Compiles, snap.CacheServed)
	}
	if snap.Memo.Hits != 1 || snap.Memo.HitRate != 0.5 {
		t.Errorf("memo stats = %+v, want 1 hit, rate 0.5", snap.Memo)
	}
	if snap.P50MS < 0 || snap.P99MS < snap.P50MS {
		t.Errorf("latency quantiles p50=%v p99=%v", snap.P50MS, snap.P99MS)
	}
	if snap.CompilesPerSec <= 0 {
		t.Errorf("compiles_per_sec = %v, want > 0", snap.CompilesPerSec)
	}
}

// TestCompileStreaming: stream:true responds with NDJSON events — accepted
// first, done last — and the SSE variant frames the same events as data:
// lines.
func TestCompileStreaming(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, done := postCompile(t, ts.URL, `{"app":"GHZ_n8","stream":true}`)
	defer done()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var events []map[string]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least accepted+done", len(events))
	}
	if events[0]["event"] != "accepted" {
		t.Errorf("first event = %v", events[0])
	}
	last := events[len(events)-1]
	if last["event"] != "done" {
		t.Fatalf("last event = %v", last)
	}

	// SSE framing of the same request (memo-served now, still streamed).
	req, _ := http.NewRequest("POST", ts.URL+"/v1/compile", strings.NewReader(`{"app":"GHZ_n8","stream":true}`))
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("sse content type = %q", ct)
	}
	raw, _ := io.ReadAll(sresp.Body)
	if !bytes.Contains(raw, []byte("data: ")) || !bytes.Contains(raw, []byte(`"event":"done"`)) {
		t.Errorf("sse body missing frames: %s", raw)
	}
}

// TestCoalescing: concurrent identical requests compile once — the memo
// singleflight makes the followers wait for (or replay) the leader's result
// instead of compiling again.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex
	testCompiler.set(t, func(ctx context.Context) (*core.Result, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		select {
		case <-release:
			return &core.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, ts := newTestServer(t, Options{MaxInFlight: 4})

	const n = 3
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
				strings.NewReader(`{"app":"GHZ_n4","compiler":"svc-test"}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			errs <- nil
		}()
	}
	// Let the requests land and coalesce before releasing the leader. The
	// sleep only widens the window in which coalescing is observable; the
	// calls==1 assertion holds under any interleaving (later arrivals replay
	// the memoized result).
	time.Sleep(50 * time.Millisecond)
	close(release)
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("compiler ran %d times for %d identical requests, want 1", calls, n)
	}
}

// TestDisconnectCancels: a client that disconnects mid-compile cancels the
// compile within one scheduler step, and the handler's compile goroutine is
// joined — the service returns to its goroutine baseline.
func TestDisconnectCancels(t *testing.T) {
	started := make(chan struct{}, 1)
	cancelled := make(chan struct{}, 1)
	testCompiler.set(t, func(ctx context.Context) (*core.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		cancelled <- struct{}{}
		return nil, ctx.Err()
	})
	_, ts := newTestServer(t, Options{})
	client := ts.Client()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/compile",
		strings.NewReader(`{"app":"GHZ_n4","compiler":"svc-test","stream":true}`))
	respErr := make(chan error, 1)
	go func() {
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		respErr <- err
	}()

	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("compile never started")
	}
	cancel()
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("disconnect did not cancel the compile")
	}
	<-respErr
	client.CloseIdleConnections()

	// The compile goroutine and the aborted connection's goroutines must
	// drain; poll briefly since teardown is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines leaked: %d > baseline %d", n, baseline)
	}

	// The service still serves after the aborted request.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after disconnect: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestAdmissionControl: requests beyond MaxInFlight+MaxQueue are rejected
// with 429 immediately, and the rejection is counted.
func TestAdmissionControl(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	testCompiler.set(t, func(ctx context.Context) (*core.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &core.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, ts := newTestServer(t, Options{MaxInFlight: 1, MaxQueue: 1})

	post := func(app string, out chan<- int) {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
			strings.NewReader(`{"app":"`+app+`","compiler":"svc-test"}`))
		if err != nil {
			out <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		out <- resp.StatusCode
	}
	first := make(chan int, 1)
	go post("GHZ_n4", first)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first compile never started")
	}
	second := make(chan int, 1)
	go post("GHZ_n8", second)
	// Wait until the second request occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	third := make(chan int, 1)
	go post("GHZ_n16", third)
	if code := <-third; code != http.StatusTooManyRequests {
		t.Fatalf("overflow request status = %d, want 429", code)
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request status = %d", code)
	}
	if code := <-second; code != http.StatusOK {
		t.Fatalf("second request status = %d", code)
	}
	snap := getMetrics(t, ts.URL)
	if snap.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", snap.Rejected)
	}
	if snap.Requests != 2 {
		t.Errorf("requests = %d, want 2 (the 429 is not admitted)", snap.Requests)
	}
}

// TestCompileQASM: an inline QASM circuit compiles, and the identical
// resubmission is served by the cache under its content-hash key.
func TestCompileQASM(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	qasm := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];`
	body, err := json.Marshal(map[string]any{"qasm": qasm, "name": "ghz3", "lower": true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, done := postCompile(t, ts.URL, string(body))
		ev := decodeDone(t, resp)
		done()
		if ev.Result.App != "ghz3" || ev.Result.Qubits != 3 {
			t.Fatalf("result = %+v", ev.Result)
		}
	}
	snap := getMetrics(t, ts.URL)
	if snap.Compiles != 1 || snap.CacheServed != 1 {
		t.Errorf("metrics = compiles %d cached %d, want 1/1", snap.Compiles, snap.CacheServed)
	}
}

// TestBadRequests: malformed requests are 400s with a JSON error body, and
// never touch admission.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"both sources", `{"app":"GHZ_n4","qasm":"OPENQASM 2.0;"}`},
		{"unknown compiler", `{"app":"GHZ_n4","compiler":"nope"}`},
		{"unknown app", `{"app":"NOPE_n4"}`},
		{"unknown field", `{"app":"GHZ_n4","bogus":1}`},
		{"bad mapping", `{"app":"GHZ_n4","config":{"mapping":"psychic"}}`},
		{"arch and grid", `{"app":"GHZ_n4","arch":{"modules":4},"grid":{"rows":2,"cols":2,"capacity":4}}`},
		{"partial arch", `{"app":"GHZ_n4","arch":{"trap_capacity":8}}`},
		{"bad qasm", `{"qasm":"qreg q[2]; banana q[0];"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, done := postCompile(t, ts.URL, tc.body)
			defer done()
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, b)
			}
			var ev errorEvent
			if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil || ev.Event != "error" || ev.Error == "" {
				t.Fatalf("error body = %+v, %v", ev, err)
			}
		})
	}
	if snap := getMetrics(t, ts.URL); snap.Requests != 0 {
		t.Errorf("bad requests were admitted: requests = %d", snap.Requests)
	}
}

// TestListings: the discovery endpoints report the registered compilers and
// the benchmark families.
func TestListings(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/compilers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var comps []compilerInfo
	if err := json.NewDecoder(resp.Body).Decode(&comps); err != nil {
		t.Fatal(err)
	}
	found := map[string]string{}
	for _, c := range comps {
		found[c.Name] = c.Label
	}
	if found["mussti"] != "MUSS-TI" {
		t.Errorf("compilers = %v, want mussti→MUSS-TI present", found)
	}

	bresp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var info benchmarksInfo
	if err := json.NewDecoder(bresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	hasGHZ := false
	for _, f := range info.Families {
		if f == "ghz" {
			hasGHZ = true
		}
	}
	if !hasGHZ {
		t.Errorf("families = %v, want ghz present", info.Families)
	}
}

// TestDiskCacheAcrossServers: a measurement compiled by one server instance
// is served from the shared disk cache by a fresh one — the service-restart
// (and multi-replica) scenario.
func TestDiskCacheAcrossServers(t *testing.T) {
	dir := t.TempDir()
	compileOnce := func() MetricsSnapshot {
		dc, err := eval.NewDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := eval.NewRunner(2)
		r.SetDiskCache(dc)
		_, ts := newTestServer(t, Options{Runner: r})
		resp, done := postCompile(t, ts.URL, `{"app":"GHZ_n4"}`)
		decodeDone(t, resp)
		done()
		return getMetrics(t, ts.URL)
	}
	first := compileOnce()
	if first.Compiles != 1 || first.Disk.Hits != 0 {
		t.Fatalf("first server: %+v", first)
	}
	second := compileOnce()
	if second.Compiles != 0 || second.CacheServed != 1 || second.Disk.Hits != 1 {
		t.Fatalf("second server should be disk-served: compiles %d cached %d disk %+v",
			second.Compiles, second.CacheServed, second.Disk)
	}
}
