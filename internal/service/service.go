// Package service exposes the MUSS-TI compiler as an HTTP+JSON service:
// clients POST circuits (built-in paper benchmarks or inline OpenQASM 2.0)
// to /v1/compile and receive the compiled measurement — optionally as a
// stream of progress events fed by the compiler's per-step Observer
// callbacks. The service is a thin shell over the experiment harness's
// eval.Runner, so every caching and execution layer carries over unchanged:
// concurrent identical requests coalesce onto one compile through the memo
// singleflight, results persist to the shared disk cache when one is
// attached, and a dist worker fleet compiles remote when the runner has one
// set.
//
// Endpoints:
//
//	POST /v1/compile    compile one circuit; see compileRequest
//	GET  /v1/compilers  registered compiler names and labels
//	GET  /v1/benchmarks built-in benchmark families and the naming scheme
//	GET  /metrics       operational counters; see MetricsSnapshot
//	GET  /healthz       liveness probe
//
// Admission control bounds the service's footprint: at most MaxInFlight
// requests compile concurrently, at most MaxQueue wait behind them, and
// everything beyond that is rejected with 429 before any work happens. Each
// request compiles under its own request context, so a disconnected client
// aborts its compile within one scheduler step — unless another in-flight
// request has coalesced onto the same measurement, in which case the memo
// hands leadership over and the compile continues for the survivors.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"mussti/internal/circuit/bench"
	"mussti/internal/core"
	"mussti/internal/dist"
	"mussti/internal/eval"
)

// Options configures a Server.
type Options struct {
	// Runner executes the compiles; required. The server installs its
	// metrics collector as the runner's job hook (SetJobHook), so the
	// runner must not have another hook attached.
	Runner *eval.Runner
	// Fleet, when the runner dispatches to a dist coordinator, lets
	// /metrics report fleet health. Optional and informational only: the
	// dispatch wiring itself is Runner.SetRemote, done by the caller.
	Fleet *dist.Coordinator
	// MaxInFlight bounds concurrent compiles; 0 means Runner.Workers().
	MaxInFlight int
	// MaxQueue bounds requests waiting for a compile slot; 0 means
	// 4×MaxInFlight. Beyond it requests get 429.
	MaxQueue int
	// StreamInterval is the progress-event cadence for streamed responses;
	// 0 means 500ms.
	StreamInterval time.Duration
}

// Server is the compilation service. Create one with New and serve it with
// net/http; it implements http.Handler.
type Server struct {
	runner         *eval.Runner
	fleet          *dist.Coordinator
	maxQueue       int64
	streamInterval time.Duration

	slots    chan struct{} // compile-slot semaphore, cap MaxInFlight
	queued   atomic.Int64
	inFlight atomic.Int64
	metrics  metrics

	mux *http.ServeMux
}

// New builds a Server over opts.Runner and installs the metrics collector
// as the runner's job hook.
func New(opts Options) (*Server, error) {
	if opts.Runner == nil {
		return nil, fmt.Errorf("service: Options.Runner is required")
	}
	inFlight := opts.MaxInFlight
	if inFlight <= 0 {
		inFlight = opts.Runner.Workers()
	}
	queue := opts.MaxQueue
	if queue <= 0 {
		queue = 4 * inFlight
	}
	interval := opts.StreamInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	s := &Server{
		runner:         opts.Runner,
		fleet:          opts.Fleet,
		maxQueue:       int64(queue),
		streamInterval: interval,
		slots:          make(chan struct{}, inFlight),
		mux:            http.NewServeMux(),
	}
	s.runner.SetJobHook(s.metrics.observe)
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("GET /v1/compilers", s.handleCompilers)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errOverloaded marks admission rejections (HTTP 429).
var errOverloaded = errors.New("service: compile queue full")

// admit claims a compile slot, queueing behind MaxQueue waiters at most.
// It returns the release closure, errOverloaded when the queue is full, or
// ctx.Err() when the client disconnected while queued.
func (s *Server) admit(r *http.Request) (release func(), err error) {
	claim := func() func() {
		s.inFlight.Add(1)
		return func() {
			s.inFlight.Add(-1)
			<-s.slots
		}
	}
	select {
	case s.slots <- struct{}{}:
		return claim(), nil
	default:
	}
	if s.queued.Add(1) > s.maxQueue {
		s.queued.Add(-1)
		return nil, errOverloaded
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return claim(), nil
	case <-r.Context().Done():
		return nil, r.Context().Err()
	}
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEvent{Event: "error", Error: err.Error()})
}

// maxBodyBytes bounds the request body; QASMBench's largest circuits are
// well under this.
const maxBodyBytes = 8 << 20

// handleCompile decodes, resolves, admits and runs one compile request.
// Resolution happens before admission — malformed requests never hold a
// compile slot — and the whole compile runs under the request context, so a
// client disconnect cancels it mid-flight.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	t, err := s.resolve(&req)
	if err != nil {
		status := http.StatusInternalServerError
		var bad badRequest
		if errors.As(err, &bad) {
			status = http.StatusBadRequest
		}
		httpError(w, status, err)
		return
	}
	release, err := s.admit(r)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			s.metrics.reject()
			httpError(w, http.StatusTooManyRequests, err)
		}
		// Client gone while queued: nobody is listening, write nothing.
		return
	}
	defer release()
	s.metrics.admitted()
	if req.Stream {
		s.streamCompile(w, r, t)
		return
	}
	m, err := t.run(r.Context(), nil)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone mid-compile
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doneEvent{Event: "done", Result: resultOf(m)})
}

// compilerInfo is one GET /v1/compilers row.
type compilerInfo struct {
	Name  string `json:"name"`
	Label string `json:"label"`
}

func (s *Server) handleCompilers(w http.ResponseWriter, _ *http.Request) {
	var out []compilerInfo
	for _, c := range core.Compilers() {
		out = append(out, compilerInfo{Name: c.Name(), Label: core.CompilerLabel(c)})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// benchmarksInfo is the GET /v1/benchmarks body: the built-in families and
// how to name a member ("<family>_n<qubits>", e.g. "qft_n32"; family case is
// ignored).
type benchmarksInfo struct {
	Families []string `json:"families"`
	Naming   string   `json:"naming"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(benchmarksInfo{
		Families: bench.Families(),
		Naming:   "<family>_n<qubits>, e.g. qft_n32",
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.snapshot()
	snap.InFlight = s.inFlight.Load()
	snap.Queued = s.queued.Load()
	snap.Memo = cacheStatsOf(s.runner.CacheStats())
	snap.Disk = cacheStatsOf(s.runner.DiskCacheStats())
	if s.fleet != nil {
		st := s.fleet.Stats()
		snap.Fleet = &FleetStats{
			Workers:    s.fleet.Workers(),
			Capacity:   s.fleet.Capacity(),
			Dispatched: st.Dispatched,
			Batched:    st.Batched,
			Batches:    st.Batches,
			Retried:    st.Retried,
			Deaths:     st.Deaths,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}
