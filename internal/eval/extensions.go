package eval

import (
	"fmt"
	"strings"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// Extension experiments beyond the paper's figures. They back claims the
// paper makes in prose with measurements:
//
//   - "lru": §3.2 argues the LRU qubit-replacement scheduler is
//     near-optimal; this ablation compares LRU against FIFO, random and the
//     clairvoyant Belady policy on the medium suite.
//   - "ports": §2.2 motivates minimising optical ports per module; this
//     sweep quantifies the fidelity/shuttle cost of port-limited optical
//     zones (2..16 ports).
func init() {
	extensions = []Experiment{
		experiment("lru", "Extension: replacement-policy ablation (LRU vs FIFO/random/Belady)",
			LRUAblation, lruPlan),
		experiment("ports", "Extension: optical-port-limit sweep (2..16 ports per module)",
			PortSweep, portsPlan),
		experiment("routing", "Extension: routing look-ahead attraction on/off",
			RoutingAblation, routingPlan),
	}
}

var extensions []Experiment

// lruPolicies are the conflict-handling policies under comparison, in
// column order.
var lruPolicies = []core.ReplacementPolicy{
	core.ReplaceLRU, core.ReplaceFIFO, core.ReplaceRandom, core.ReplaceBelady,
}

// LRUAblation compares the conflict-handling policies on the medium suite,
// reporting shuttles — the metric replacement directly controls.
func LRUAblation() (string, error) { return runPlan(planOf(lruPlan)) }

func lruPlan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range bench.MediumSuite() {
			for _, pol := range lruPolicies {
				js = append(js, Job{Spec: &CompileSpec{
					App: app, Compiler: name,
					Config: &core.CompileConfig{Mapping: core.MappingTrivial, Replacement: pol},
				}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		header := []string{"Application"}
		for _, p := range lruPolicies {
			header = append(header, "shut("+p.String()+")")
		}
		tb := NewTable(fmt.Sprintf("LRU ablation — shuttle count by replacement policy (%s, trivial mapping)", labelFor(name)), header...)
		var lruExcess []float64
		for _, app := range bench.MediumSuite() {
			row := []any{app}
			shuttles := make(map[core.ReplacementPolicy]int, len(lruPolicies))
			for _, pol := range lruPolicies {
				m := res.Next()
				shuttles[pol] = m.Shuttles
				row = append(row, m.Shuttles)
			}
			tb.Add(row...)
			if b := shuttles[core.ReplaceBelady]; b > 0 {
				lruExcess = append(lruExcess, 100*(float64(shuttles[core.ReplaceLRU])/float64(b)-1))
			}
		}
		var out strings.Builder
		out.WriteString(tb.String())
		fmt.Fprintf(&out, "LRU excess over clairvoyant Belady: %.1f%% (the paper's \"near-optimal\" claim)\n", mean(lruExcess))
		return out.String(), nil
	}
	return perCompilerPlan(comps, jobsFor, renderFor)
}

// RoutingAblation compares zone selection with and without the look-ahead
// attraction term on the small and medium suites (grid and EML): the term
// is this implementation's refinement of the paper's multi-level rule, so
// its contribution is measured rather than assumed.
func RoutingAblation() (string, error) { return runPlan(planOf(routingPlan)) }

func routingPlan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	apps := append(append([]string{}, bench.SmallSuite()...), bench.MediumSuite()...)
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range apps {
			js = append(js,
				Job{Spec: &CompileSpec{App: app, Compiler: name, Config: core.NewCompileConfig()}},
				Job{Spec: &CompileSpec{App: app, Compiler: name, Config: core.NewCompileConfig(core.WithRoutingLookAhead(false))}},
			)
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		tb := NewTable(fmt.Sprintf("Routing look-ahead ablation — shuttles with/without attraction (%s)", labelFor(name)),
			"Application", "with", "without", "delta%")
		for _, app := range apps {
			mW, mWo := res.Next(), res.Next()
			delta := 0.0
			if mWo.Shuttles > 0 {
				delta = 100 * (float64(mWo.Shuttles) - float64(mW.Shuttles)) / float64(mWo.Shuttles)
			}
			tb.Add(app, mW.Shuttles, mWo.Shuttles, fmt.Sprintf("%.1f", delta))
		}
		return tb.String(), nil
	}
	return perCompilerPlan(comps, jobsFor, renderFor)
}

// PortSweep measures the cost of limiting the optical zone to a fixed
// number of ion-photon ports on the medium suite.
func PortSweep() (string, error) { return runPlan(planOf(portsPlan)) }

func portsPlan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	ports := []int{2, 4, 8, 16}
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range bench.MediumSuite() {
			c, err := bench.ByName(app)
			if err != nil {
				return nil, err
			}
			for _, p := range ports {
				cfg := arch.DefaultConfig(c.NumQubits)
				cfg.OpticalCapacity = p
				js = append(js, Job{Spec: &CompileSpec{App: app, Compiler: name, Arch: cfg}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		header := []string{"Application"}
		for _, p := range ports {
			header = append(header, fmt.Sprintf("fid(p=%d)", p))
		}
		for _, p := range ports {
			header = append(header, fmt.Sprintf("shut(p=%d)", p))
		}
		tb := NewTable(fmt.Sprintf("Optical-port sweep — fidelity and shuttles vs ports per module (%s)", labelFor(name)), header...)
		for _, app := range bench.MediumSuite() {
			fids := make([]any, 0, len(ports))
			shuts := make([]any, 0, len(ports))
			for range ports {
				m := res.Next()
				fids = append(fids, FormatLog10F(m.Log10F))
				shuts = append(shuts, m.Shuttles)
			}
			row := append([]any{app}, fids...)
			row = append(row, shuts...)
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return perCompilerPlan(comps, jobsFor, renderFor)
}
