package eval

import (
	"fmt"
	"strings"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// Extension experiments beyond the paper's figures. They back claims the
// paper makes in prose with measurements:
//
//   - "lru": §3.2 argues the LRU qubit-replacement scheduler is
//     near-optimal; this ablation compares LRU against FIFO, random and the
//     clairvoyant Belady policy on the medium suite.
//   - "ports": §2.2 motivates minimising optical ports per module; this
//     sweep quantifies the fidelity/shuttle cost of port-limited optical
//     zones (2..16 ports).
func init() {
	extensions = []Experiment{
		{"lru", "Extension: replacement-policy ablation (LRU vs FIFO/random/Belady)", LRUAblation},
		{"ports", "Extension: optical-port-limit sweep (2..16 ports per module)", PortSweep},
		{"routing", "Extension: routing look-ahead attraction on/off", RoutingAblation},
	}
}

var extensions []Experiment

// LRUAblation compares the conflict-handling policies on the medium suite,
// reporting shuttles — the metric replacement directly controls.
func LRUAblation() (string, error) {
	policies := []core.ReplacementPolicy{
		core.ReplaceLRU, core.ReplaceFIFO, core.ReplaceRandom, core.ReplaceBelady,
	}
	header := []string{"Application"}
	for _, p := range policies {
		header = append(header, "shut("+p.String()+")")
	}
	tb := NewTable("LRU ablation — shuttle count by replacement policy (MUSS-TI, trivial mapping)", header...)
	var lruExcess []float64
	for _, app := range bench.MediumSuite() {
		row := []any{app}
		shuttles := make(map[core.ReplacementPolicy]int, len(policies))
		for _, pol := range policies {
			opts := core.Options{Mapping: core.MappingTrivial, Replacement: pol}
			m, err := RunMussti(MusstiSpec{App: app, Opts: opts})
			if err != nil {
				return "", err
			}
			shuttles[pol] = m.Shuttles
			row = append(row, m.Shuttles)
		}
		tb.Add(row...)
		if b := shuttles[core.ReplaceBelady]; b > 0 {
			lruExcess = append(lruExcess, 100*(float64(shuttles[core.ReplaceLRU])/float64(b)-1))
		}
	}
	var out strings.Builder
	out.WriteString(tb.String())
	fmt.Fprintf(&out, "LRU excess over clairvoyant Belady: %.1f%% (the paper's \"near-optimal\" claim)\n", mean(lruExcess))
	return out.String(), nil
}

// RoutingAblation compares zone selection with and without the look-ahead
// attraction term on the small and medium suites (grid and EML): the term
// is this implementation's refinement of the paper's multi-level rule, so
// its contribution is measured rather than assumed.
func RoutingAblation() (string, error) {
	apps := append(append([]string{}, bench.SmallSuite()...), bench.MediumSuite()...)
	tb := NewTable("Routing look-ahead ablation — shuttles with/without attraction (MUSS-TI)",
		"Application", "with", "without", "delta%")
	for _, app := range apps {
		with := core.DefaultOptions()
		without := core.DefaultOptions()
		without.DisableRoutingLookAhead = true
		mW, err := RunMussti(MusstiSpec{App: app, Opts: with})
		if err != nil {
			return "", err
		}
		mWo, err := RunMussti(MusstiSpec{App: app, Opts: without})
		if err != nil {
			return "", err
		}
		delta := 0.0
		if mWo.Shuttles > 0 {
			delta = 100 * (float64(mWo.Shuttles) - float64(mW.Shuttles)) / float64(mWo.Shuttles)
		}
		tb.Add(app, mW.Shuttles, mWo.Shuttles, fmt.Sprintf("%.1f", delta))
	}
	return tb.String(), nil
}

// PortSweep measures the cost of limiting the optical zone to a fixed
// number of ion-photon ports on the medium suite.
func PortSweep() (string, error) {
	ports := []int{2, 4, 8, 16}
	header := []string{"Application"}
	for _, p := range ports {
		header = append(header, fmt.Sprintf("fid(p=%d)", p))
	}
	for _, p := range ports {
		header = append(header, fmt.Sprintf("shut(p=%d)", p))
	}
	tb := NewTable("Optical-port sweep — fidelity and shuttles vs ports per module (MUSS-TI)", header...)
	for _, app := range bench.MediumSuite() {
		c := bench.MustByName(app)
		fids := make([]any, 0, len(ports))
		shuts := make([]any, 0, len(ports))
		for _, p := range ports {
			cfg := arch.DefaultConfig(c.NumQubits)
			cfg.OpticalCapacity = p
			m, err := RunMussti(MusstiSpec{App: app, Config: cfg, Opts: core.DefaultOptions()})
			if err != nil {
				return "", err
			}
			fids = append(fids, FormatLog10F(m.Log10F))
			shuts = append(shuts, m.Shuttles)
		}
		row := append([]any{app}, fids...)
		row = append(row, shuts...)
		tb.Add(row...)
	}
	return tb.String(), nil
}
