// Distribution-equivalence goldens: the same experiment run sequentially,
// on the in-process pool, and across a fleet of worker processes must
// render byte-identical text. This file lives in the external test package
// because it exercises internal/dist, which imports eval.
package eval_test

import (
	"context"
	"os"
	"testing"

	"mussti/internal/dist"
	"mussti/internal/eval"
)

// TestEvalDistWorkerHelper is the worker process the golden test spawns —
// the test binary re-executed with MUSSTI_EVAL_DIST_HELPER=1. It exits the
// process directly so testing-framework output never reaches the protocol
// stream.
func TestEvalDistWorkerHelper(t *testing.T) {
	if os.Getenv("MUSSTI_EVAL_DIST_HELPER") != "1" {
		t.Skip("re-exec helper for the distribution goldens, not a test")
	}
	if err := dist.ServeWorker(context.Background(), os.Stdin, os.Stdout, eval.NewRunner(1)); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// TestDistributionEquivalenceGolden runs table2 and fig6 several ways —
// strictly sequential, in-process parallel, and distributed over three
// worker processes at every pipeline setting (lockstep Pipeline=1 and the
// default window with batch coalescing) — and requires every output
// byte-identical to the sequential one. This is the acceptance gate for the
// whole dist subsystem: scheduling, wire codec, pipelined out-of-order
// completion, batch coalescing, reassembly and memoization may not perturb
// a single byte of the paper's tables.
func TestDistributionEquivalenceGolden(t *testing.T) {
	argv := []string{os.Args[0], "-test.run=^TestEvalDistWorkerHelper$"}
	env := append(os.Environ(), "MUSSTI_EVAL_DIST_HELPER=1")
	coords := []struct {
		name  string
		coord *dist.Coordinator
	}{}
	for _, p := range []struct {
		name string
		opts dist.CoordinatorOptions
	}{
		{"dist-lockstep", dist.CoordinatorOptions{Env: env, Pipeline: 1}},
		{"dist-pipelined", dist.CoordinatorOptions{Env: env, Pipeline: 4}},
	} {
		opts := p.opts
		coord, err := dist.NewCoordinator(3, argv, &opts)
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		coords = append(coords, struct {
			name  string
			coord *dist.Coordinator
		}{p.name, coord})
	}

	for _, id := range []string{"table2", "fig6"} {
		e, err := eval.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()

		sequential, _, err := e.CollectContext(ctx, nil)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}

		parallel, _, err := e.CollectContext(ctx, eval.NewRunner(3))
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if parallel != sequential {
			t.Errorf("%s: in-process parallel output differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				id, sequential, parallel)
		}

		for _, c := range coords {
			distRunner := eval.NewRunner(3)
			distRunner.SetRemote(c.coord)
			distributed, _, err := e.CollectContext(ctx, distRunner)
			if err != nil {
				t.Fatalf("%s %s: %v", id, c.name, err)
			}
			if distributed != sequential {
				t.Errorf("%s: %s output differs from sequential:\n--- sequential ---\n%s--- %s ---\n%s",
					id, c.name, sequential, c.name, distributed)
			}
		}
	}
}
