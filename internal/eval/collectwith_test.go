package eval

import (
	"context"
	"strings"
	"testing"
)

// TestCollectWithRestrictsCompilers: table2 restricted to two compilers
// renders only their columns, in the requested order, and measures nothing
// else.
func TestCollectWithRestrictsCompilers(t *testing.T) {
	e, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	out, ms, err := e.CollectWith(context.Background(), nil, []string{"dai", "mussti"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Shut[13]", "ShutOurs"} {
		if !strings.Contains(out, want) {
			t.Errorf("restricted table2 missing column %q:\n%s", want, out)
		}
	}
	for _, unwanted := range []string{"Shut[55]", "Shut[70]"} {
		if strings.Contains(out, unwanted) {
			t.Errorf("restricted table2 still renders %q:\n%s", unwanted, out)
		}
	}
	for _, m := range ms {
		if m.Compiler != "QCCD-Dai" && m.Compiler != "MUSS-TI" {
			t.Errorf("unexpected compiler measured: %q", m.Compiler)
		}
	}
	// Measurements alternate dai, mussti in selection order.
	if len(ms) < 2 || ms[0].Compiler != "QCCD-Dai" || ms[1].Compiler != "MUSS-TI" {
		t.Errorf("selection order not honoured: %q, %q", ms[0].Compiler, ms[1].Compiler)
	}
}

// TestCollectWithUnknownCompiler: an unregistered name fails up front with
// the registry's error instead of mid-run.
func TestCollectWithUnknownCompiler(t *testing.T) {
	e, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.CollectWith(context.Background(), nil, []string{"nope"}); err == nil {
		t.Error("unknown compiler accepted")
	}
}

// TestCollectWithEmptyIsDefault: a nil selection is the experiment's
// default set — the byte-identical paper rendering.
func TestCollectWithEmptyIsDefault(t *testing.T) {
	e, err := ByID("lru")
	if err != nil {
		t.Fatal(err)
	}
	def, _, err := e.CollectContext(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sel, _, err := e.CollectWith(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if def != sel {
		t.Error("CollectWith(nil) differs from CollectContext")
	}
}

// TestSweepSkipsGridOnlyCompilers: an EML-device sweep restricted to a
// selection containing a grid-only baseline still renders the compatible
// compilers' sections and notes the skip, instead of failing the whole
// experiment mid-run.
func TestSweepSkipsGridOnlyCompilers(t *testing.T) {
	e, err := ByID("lru")
	if err != nil {
		t.Fatal(err)
	}
	out, ms, err := e.CollectWith(context.Background(), nil, []string{"mussti", "dai"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(MUSS-TI, trivial mapping)") {
		t.Errorf("compatible compiler's section missing:\n%s", out)
	}
	if !strings.Contains(out, "QCCD-Dai skipped") {
		t.Errorf("grid-only compiler not noted as skipped:\n%s", out)
	}
	for _, m := range ms {
		if m.Compiler != "MUSS-TI" {
			t.Errorf("skipped compiler still measured: %q", m.Compiler)
		}
	}
}

// TestFig6SummaryNeedsBothSides: the shuttle-reduction line compares
// MUSS-TI against the best baseline, so a one-sided selection omits it.
func TestFig6SummaryNeedsBothSides(t *testing.T) {
	p, err := fig6Plan("small", []string{"mussti"})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := p.ExecuteCollect(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "average shuttle reduction") {
		t.Errorf("one-sided fig6 still prints the reduction summary:\n%s", out)
	}
	full, err := fig6Plan("small", nil)
	if err != nil {
		t.Fatal(err)
	}
	outFull, _, err := full.ExecuteCollect(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outFull, "average shuttle reduction") {
		t.Errorf("default fig6 lost the reduction summary:\n%s", outFull)
	}
}

// TestSweepSelectionRendersPerCompilerSections: selecting the sweep's
// default compiler explicitly goes through the per-compiler section
// machinery and must still render the paper's labelled title.
func TestSweepSelectionRendersPerCompilerSections(t *testing.T) {
	e, err := ByID("lru")
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := e.CollectWith(context.Background(), nil, []string{"mussti"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(MUSS-TI, trivial mapping)") {
		t.Errorf("sweep section title missing compiler label:\n%s", out)
	}
}

// TestSelectionDeduplicates: a duplicated name in the selection collapses
// to one column set and one measurement per point.
func TestSelectionDeduplicates(t *testing.T) {
	e, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	once, msOnce, err := e.CollectWith(context.Background(), nil, []string{"mussti"})
	if err != nil {
		t.Fatal(err)
	}
	twice, msTwice, err := e.CollectWith(context.Background(), nil, []string{"mussti", "mussti"})
	if err != nil {
		t.Fatal(err)
	}
	if once != twice {
		t.Errorf("duplicate selection changed output:\n--- once ---\n%s--- twice ---\n%s", once, twice)
	}
	if len(msOnce) != len(msTwice) {
		t.Errorf("duplicate selection measured %d points, want %d", len(msTwice), len(msOnce))
	}
}
