package eval

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mussti/internal/core"
)

// TestParallelMatchesSequential is the determinism contract of the runner:
// the rendered tables must be byte-identical to the sequential output at
// any worker count. table2 covers the mixed baseline+MUSS-TI path, lru the
// extension path.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs skipped in -short")
	}
	for _, id := range []string{"table2", "lru"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := e.RunContext(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		par, err := e.RunContext(context.Background(), NewRunner(4))
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if seq != par {
			t.Errorf("%s: parallel output differs from sequential\n--- sequential ---\n%s--- parallel ---\n%s", id, seq, par)
		}
	}
}

// ghzJobs builds n small independent measurement jobs.
func ghzJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}}
	}
	return jobs
}

func TestRunnerPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, r := range map[string]*Runner{"sequential": nil, "parallel": NewRunner(2)} {
		if _, err := r.Run(ctx, ghzJobs(4)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestRunnerCancelledMidRun(t *testing.T) {
	// Cancellation must land while the pool is still working; the runner
	// must abort in-flight compiles and skip unstarted jobs instead of
	// draining the whole list. Each job is a SQRT_n299 compile (~300ms —
	// two orders of magnitude above the 5ms cancel delay, so the cancel
	// always arrives mid-compile however fast the hardware; GHZ-sized jobs
	// here became so cheap that a whole list could finish first).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(2)
	// The jobs are identical; with the cache on they collapse into one
	// compile.
	r.DisableCache()
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Mussti: &MusstiSpec{App: "SQRT_n299", Opts: core.DefaultOptions()}}
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Draining all four compiles would take >600ms on two workers; a
	// prompt abort stops the in-flight ones within one scheduler step.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled run took %s, want a prompt return", elapsed)
	}
}

func TestRunnerFirstErrorInJobOrder(t *testing.T) {
	// Two failing jobs: the runner must report the lowest-indexed one —
	// the same error a sequential loop surfaces first — at any worker
	// count, because workers claim jobs in index order and a claimed job
	// always runs to completion.
	jobs := []Job{
		{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}},
		{Mussti: &MusstiSpec{App: "Bogus_n1"}},
		{Mussti: &MusstiSpec{App: "AlsoBogus_n1"}},
	}
	_, seqErr := (*Runner)(nil).Run(context.Background(), jobs)
	if seqErr == nil || !strings.Contains(seqErr.Error(), `"bogus"`) {
		t.Fatalf("sequential error = %v", seqErr)
	}
	for _, workers := range []int{1, 3} {
		for i := 0; i < 5; i++ { // worker scheduling varies; try a few times
			_, err := NewRunner(workers).Run(context.Background(), jobs)
			if err == nil || err.Error() != seqErr.Error() {
				t.Fatalf("workers=%d error = %v, want %v", workers, err, seqErr)
			}
		}
	}
}

func TestRunnerEmptyJob(t *testing.T) {
	if _, err := NewRunner(1).Run(context.Background(), []Job{{}}); err == nil {
		t.Error("empty job accepted")
	}
}

func TestRunnerWorkersDefault(t *testing.T) {
	if w := NewRunner(0).Workers(); w < 1 {
		t.Errorf("Workers() = %d", w)
	}
	if w := (*Runner)(nil).Workers(); w != 1 {
		t.Errorf("nil runner Workers() = %d, want 1", w)
	}
}

func TestTimingExperimentsAreSerial(t *testing.T) {
	// fig10/fig11 render wall-clock CompileTime; their jobs must never
	// contend with each other in the pool. Everything else parallelises.
	for _, e := range AllExperiments() {
		p, err := e.Plan()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		wantSerial := e.ID == "fig10" || e.ID == "fig11"
		if p.Serial != wantSerial {
			t.Errorf("%s: Serial = %v, want %v", e.ID, p.Serial, wantSerial)
		}
	}
}

func TestResultsCursorOverrun(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overrunning the results cursor did not panic")
		}
	}()
	(&Results{}).Next()
}
