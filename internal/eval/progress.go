//mussti:allow=determinism progress heartbeats are wall-clock by design and never feed results

package eval

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progressSink serialises tick lines from all in-flight jobs onto one
// writer. Jobs attach a jobProgress (a core.Observer) per measurement; the
// sink throttles output per job so a multi-minute SQRT compile renders a
// heartbeat, not a firehose.
type progressSink struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
}

const progressInterval = time.Second

func newProgressSink(w io.Writer) *progressSink {
	return &progressSink{w: w, every: progressInterval}
}

func (ps *progressSink) printf(format string, args ...any) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	fmt.Fprintf(ps.w, format, args...)
}

// jobProgress observes one measurement. Compiler callbacks arrive on a
// single goroutine (the job's worker), so the counters need no locking —
// only the shared sink does.
type jobProgress struct {
	sink  *progressSink
	label string
	start time.Time
	last  time.Time

	gatesDone, gatesTotal int
	shuttles              int
	evictions             int
	swaps                 int
}

func (ps *progressSink) job(label string) *jobProgress {
	now := time.Now()
	return &jobProgress{sink: ps, label: label, start: now, last: now}
}

func (p *jobProgress) GateScheduled(done, total int) {
	p.gatesDone, p.gatesTotal = done, total
	p.tick()
}

func (p *jobProgress) Shuttle(q, from, to int) {
	p.shuttles++
	p.tick()
}

func (p *jobProgress) Eviction(victim, from, to int) {
	p.evictions++
	p.tick()
}

func (p *jobProgress) SwapInserted(a, b int) {
	p.swaps++
	p.tick()
}

// tick emits one line per throttle interval:
//
//	[SQRT_n299/MUSS-TI] 1520/74866 gates  3210 shuttles  208 evictions  4 swaps  (12s)
func (p *jobProgress) tick() {
	now := time.Now()
	if now.Sub(p.last) < p.sink.every {
		return
	}
	p.last = now
	p.sink.printf("[%s] %d/%d gates  %d shuttles  %d evictions  %d swaps  (%s)\n",
		p.label, p.gatesDone, p.gatesTotal, p.shuttles, p.evictions, p.swaps,
		now.Sub(p.start).Round(time.Second))
}

// finish emits the job's closing line (always, regardless of throttling).
func (p *jobProgress) finish(cached bool) {
	if cached {
		p.sink.printf("[%s] served from measurement cache\n", p.label)
		return
	}
	p.sink.printf("[%s] done: %d/%d gates  %d shuttles  %d evictions  %d swaps  (%s)\n",
		p.label, p.gatesDone, p.gatesTotal, p.shuttles, p.evictions, p.swaps,
		time.Since(p.start).Round(time.Millisecond))
}

// label names a job for progress lines, e.g. "SQRT_n299/MUSS-TI". The
// compiler part is the registry compiler's display label.
func (j Job) label() string {
	s, err := j.resolve()
	if err != nil {
		return "empty-job"
	}
	return s.App + "/" + labelFor(s.Compiler)
}
