package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// Experiment regenerates one table or figure of the paper and renders it as
// text. Run may take seconds for the large-scale figures.
type Experiment struct {
	// ID is the paper's label: "table2", "fig6", ... "fig13".
	ID string
	// Description summarises what the paper shows there.
	Description string
	// Run executes the experiment sequentially and returns its rendered
	// tables.
	Run func() (string, error)
	// Plan decomposes the experiment into independent measurement jobs for
	// the concurrent runner; see RunContext.
	Plan PlanFunc
}

// RunContext executes the experiment on the given runner (nil = sequential
// on the calling goroutine), honouring ctx cancellation. Output is
// byte-identical to Run at any worker count: jobs carry their paper-order
// positions and the renderer consumes them in that order.
func (e Experiment) RunContext(ctx context.Context, r *Runner) (string, error) {
	out, _, err := e.CollectContext(ctx, r)
	return out, err
}

// CollectContext is RunContext, additionally returning the experiment's
// structured Measurement rows in job order — the data behind the rendered
// text, for CSV export and other structured sinks. Experiments without a
// Plan render text only (nil measurements).
func (e Experiment) CollectContext(ctx context.Context, r *Runner) (string, []Measurement, error) {
	if e.Plan == nil {
		out, err := e.Run()
		return out, nil, err
	}
	p, err := e.Plan()
	if err != nil {
		return "", nil, err
	}
	return p.ExecuteCollect(ctx, r)
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table2", Description: "Small-scale comparison on Grid 2x2 (cap 12) and 2x3 (cap 8): shuttles, time, fidelity",
			Run: Table2, Plan: table2Plan},
		{ID: "fig6", Description: "Architectural comparison small/medium/large: shuttles, time, fidelity",
			Run: func() (string, error) { return Fig6() }, Plan: func() (*Plan, error) { return fig6Plan("") }},
		{ID: "fig7", Description: "Trap capacity sweep (12-20) vs fidelity, medium apps + SQRT_n299",
			Run: Fig7, Plan: fig7Plan},
		{ID: "fig8", Description: "Ablation of compilation techniques (Trivial/SWAP/SABRE/SABRE+SWAP)",
			Run: Fig8, Plan: fig8Plan},
		{ID: "fig9", Description: "Look-ahead window k sweep (4-12) vs fidelity",
			Run: Fig9, Plan: fig9Plan},
		{ID: "fig10", Description: "Compilation-time scalability vs application size",
			Run: Fig10, Plan: fig10Plan},
		{ID: "fig11", Description: "Compilation time vs fidelity trade-off per technique",
			Run: Fig11, Plan: fig11Plan},
		{ID: "fig12", Description: "One vs two entanglement (optical) zones, large apps",
			Run: Fig12, Plan: fig12Plan},
		{ID: "fig13", Description: "Optimality analysis: perfect gate / perfect shuttle / MUSS-TI",
			Run: Fig13, Plan: fig13Plan},
	}
}

// AllExperiments returns the paper experiments followed by the extension
// studies (replacement-policy ablation, optical-port sweep).
func AllExperiments() []Experiment {
	return append(Experiments(), extensions...)
}

// ByID returns the experiment (paper figure or extension) with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range AllExperiments() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// table2Structures are the two Table-2 hardware configurations.
var table2Structures = []struct {
	Name       string
	Rows, Cols int
	Capacity   int
}{
	{"Grid 2x2", 2, 2, 12},
	{"Grid 2x3", 2, 3, 8},
}

// table2Compilers are the baseline columns of Table 2 in paper order;
// MUSS-TI is the fourth column.
var table2Compilers = []baseline.Algorithm{baseline.Murali, baseline.Dai, baseline.MQT}

// Table2 regenerates Table 2: the small-scale suite on both structures for
// all four compilers (Murali [55], Dai [13], MQT [70], MUSS-TI).
func Table2() (string, error) { return runPlan(table2Plan) }

func table2Plan() (*Plan, error) {
	var jobs []Job
	for _, st := range table2Structures {
		for _, app := range bench.SmallSuite() {
			for _, algo := range table2Compilers {
				jobs = append(jobs, Job{Baseline: &BaselineSpec{
					App: app, Algorithm: algo, Rows: st.Rows, Cols: st.Cols, Capacity: st.Capacity,
				}})
			}
			jobs = append(jobs, Job{Mussti: &MusstiSpec{
				App:  app,
				Grid: arch.MustNewGrid(st.Rows, st.Cols, st.Capacity),
				Opts: core.DefaultOptions(),
			}})
		}
	}
	render := func(res *Results) (string, error) {
		var out strings.Builder
		for _, st := range table2Structures {
			tb := NewTable(
				fmt.Sprintf("Table 2 — %s (trap capacity %d)", st.Name, st.Capacity),
				"Application",
				"Shut[55]", "Shut[13]", "Shut[70]", "ShutOurs",
				"Time[55]", "Time[13]", "Time[70]", "TimeOurs",
				"Fid[55]", "Fid[13]", "Fid[70]", "FidOurs",
			)
			for _, app := range bench.SmallSuite() {
				ms := res.Take(len(table2Compilers) + 1)
				row := []any{app}
				for _, m := range ms {
					row = append(row, m.Shuttles)
				}
				for _, m := range ms {
					row = append(row, fmt.Sprintf("%.0f", m.TimeUS))
				}
				for _, m := range ms {
					row = append(row, FormatLog10F(m.Log10F))
				}
				tb.Add(row...)
			}
			out.WriteString(tb.String())
			out.WriteByte('\n')
		}
		return out.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// fig6Scales are the three architectural-comparison scales of Fig. 6.
var fig6Scales = []struct {
	Name       string
	Apps       []string
	Rows, Cols int
	Capacity   int
	// OursOnGrid runs MUSS-TI on the standard grid (small scale); the
	// medium/large scales run MUSS-TI on its EML-QCCD device, which is the
	// "architectural comparison" of §5.2.
	OursOnGrid bool
}{
	{"Small Scale, 2x2", bench.SmallSuite(), 2, 2, 12, true},
	{"Middle Scale, 3x4", bench.MediumSuite(), 3, 4, 16, false},
	{"Large Scale, 4x5", bench.LargeSuite(), 4, 5, 16, false},
}

// Fig6 regenerates the architectural comparison: for each scale, shuttle
// count, execution time and fidelity for MUSS-TI vs the Dai and Murali grid
// compilers.
func Fig6(scaleFilter ...string) (string, error) {
	filter := ""
	if len(scaleFilter) > 0 {
		filter = scaleFilter[0]
	}
	return runPlan(func() (*Plan, error) { return fig6Plan(filter) })
}

func fig6Plan(filter string) (*Plan, error) {
	scales := fig6Scales[:0:0]
	for _, sc := range fig6Scales {
		if filter != "" && !strings.Contains(strings.ToLower(sc.Name), strings.ToLower(filter)) {
			continue
		}
		scales = append(scales, sc)
	}
	var jobs []Job
	for _, sc := range scales {
		for _, app := range sc.Apps {
			spec := MusstiSpec{App: app, Opts: core.DefaultOptions()}
			if sc.OursOnGrid {
				spec.Grid = arch.MustNewGrid(sc.Rows, sc.Cols, sc.Capacity)
			}
			ours := spec
			jobs = append(jobs, Job{Mussti: &ours})
			for _, algo := range []baseline.Algorithm{baseline.Dai, baseline.Murali} {
				jobs = append(jobs, Job{Baseline: &BaselineSpec{
					App: app, Algorithm: algo, Rows: sc.Rows, Cols: sc.Cols, Capacity: sc.Capacity,
				}})
			}
		}
	}
	render := func(res *Results) (string, error) {
		var out strings.Builder
		for _, sc := range scales {
			tb := NewTable(
				fmt.Sprintf("Fig 6 — %s (grid cap %d)", sc.Name, sc.Capacity),
				"Application",
				"Shut(ours)", "Shut(Dai)", "Shut(Murali)",
				"Time(ours)", "Time(Dai)", "Time(Murali)",
				"Fid(ours)", "Fid(Dai)", "Fid(Murali)",
			)
			var reduction []float64
			for _, app := range sc.Apps {
				ours, dai, murali := res.Next(), res.Next(), res.Next()
				tb.Add(app,
					ours.Shuttles, dai.Shuttles, murali.Shuttles,
					fmt.Sprintf("%.0f", ours.TimeUS), fmt.Sprintf("%.0f", dai.TimeUS), fmt.Sprintf("%.0f", murali.TimeUS),
					FormatLog10F(ours.Log10F), FormatLog10F(dai.Log10F), FormatLog10F(murali.Log10F),
				)
				best := dai.Shuttles
				if murali.Shuttles < best {
					best = murali.Shuttles
				}
				if best > 0 {
					reduction = append(reduction, 100*(1-float64(ours.Shuttles)/float64(best)))
				}
			}
			out.WriteString(tb.String())
			fmt.Fprintf(&out, "average shuttle reduction vs best baseline: %.2f%%\n\n", mean(reduction))
		}
		return out.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// Fig7 regenerates the trap-capacity analysis: MUSS-TI fidelity for
// capacities 12..20 on the medium apps and SQRT_n299.
func Fig7() (string, error) { return runPlan(fig7Plan) }

func fig7Plan() (*Plan, error) {
	apps := []string{"Adder_n128", "BV_n128", "GHZ_n128", "QAOA_n128", "SQRT_n299"}
	caps := []int{12, 14, 16, 18, 20}
	var jobs []Job
	for _, app := range apps {
		c, err := bench.ByName(app)
		if err != nil {
			return nil, err
		}
		for _, capacity := range caps {
			cfg := arch.DefaultConfig(c.NumQubits)
			cfg.TrapCapacity = capacity
			jobs = append(jobs, Job{Mussti: &MusstiSpec{App: app, Config: cfg, Opts: core.DefaultOptions()}})
		}
	}
	render := func(res *Results) (string, error) {
		tb := NewTable("Fig 7 — EML-QCCD trap capacity vs fidelity (MUSS-TI)",
			append([]string{"Application"}, intsToHeaders("cap=", caps)...)...)
		for _, app := range apps {
			row := []any{app}
			for range caps {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// ablationConfigs are the four Fig. 8 / Fig. 11 technique combinations.
var ablationConfigs = []struct {
	Name string
	Opts core.Options
}{
	{"Trivial", core.Options{Mapping: core.MappingTrivial}},
	{"SWAP Insert", core.Options{Mapping: core.MappingTrivial, SwapInsertion: true}},
	{"SABRE", core.Options{Mapping: core.MappingSABRE}},
	{"SABRE+SWAP", core.Options{Mapping: core.MappingSABRE, SwapInsertion: true}},
}

// Fig8 regenerates the compilation-technique ablation over the medium and
// large suites.
func Fig8() (string, error) { return runPlan(fig8Plan) }

func fig8Plan() (*Plan, error) {
	apps := append(append([]string{}, bench.MediumSuite()...), bench.LargeSuite()...)
	var jobs []Job
	for _, app := range apps {
		for _, cfg := range ablationConfigs {
			jobs = append(jobs, Job{Mussti: &MusstiSpec{App: app, Opts: cfg.Opts}})
		}
	}
	render := func(res *Results) (string, error) {
		header := []string{"Application"}
		for _, cfg := range ablationConfigs {
			header = append(header, cfg.Name)
		}
		tb := NewTable("Fig 8 — ablation of compilation techniques (fidelity)", header...)
		for _, app := range apps {
			row := []any{app}
			for range ablationConfigs {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// Fig9 regenerates the look-ahead analysis: fidelity for k in {4..12} on
// the five applications of the paper's Fig. 9.
func Fig9() (string, error) { return runPlan(fig9Plan) }

func fig9Plan() (*Plan, error) {
	apps := []string{"QAOA_n256", "Adder_n256", "RAN_n256", "SQRT_n117", "SQRT_n299"}
	ks := []int{4, 6, 8, 10, 12}
	var jobs []Job
	for _, app := range apps {
		for _, k := range ks {
			opts := core.DefaultOptions()
			opts.LookAhead = k
			jobs = append(jobs, Job{Mussti: &MusstiSpec{App: app, Opts: opts}})
		}
	}
	render := func(res *Results) (string, error) {
		tb := NewTable("Fig 9 — look-ahead window k vs fidelity (MUSS-TI)",
			append([]string{"Application"}, intsToHeaders("k=", ks)...)...)
		for _, app := range apps {
			row := []any{app}
			for range ks {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// Fig10 regenerates the compilation-time scalability curve: wall-clock
// MUSS-TI compile time for Adder/BV/GHZ/QAOA from ~128 to ~300 qubits.
func Fig10() (string, error) { return runPlan(fig10Plan) }

func fig10Plan() (*Plan, error) {
	families := []string{"Adder", "BV", "GHZ", "QAOA"}
	sizes := []int{128, 160, 192, 224, 256, 288, 300}
	var jobs []Job
	for _, fam := range families {
		for _, n := range sizes {
			app := fmt.Sprintf("%s_n%d", fam, n)
			jobs = append(jobs, Job{Mussti: &MusstiSpec{App: app, Opts: core.DefaultOptions()}})
		}
	}
	render := func(res *Results) (string, error) {
		tb := NewTable("Fig 10 — compilation time (s) vs application size",
			append([]string{"Family"}, intsToHeaders("n=", sizes)...)...)
		for _, fam := range families {
			row := []any{fam}
			for range sizes {
				row = append(row, fmt.Sprintf("%.3f", res.Next().CompileTime.Seconds()))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	// Serial: the cells ARE wall-clock compile times; pool neighbours
	// would contend for CPU and inflate them.
	return &Plan{Jobs: jobs, Render: render, Serial: true}, nil
}

// Fig11 regenerates the compile-time/fidelity trade-off scatter for the
// complex (SQRT_n128) and simple (BV_n128) applications.
func Fig11() (string, error) { return runPlan(fig11Plan) }

func fig11Plan() (*Plan, error) {
	apps := []string{"SQRT_n128", "BV_n128"}
	var jobs []Job
	for _, app := range apps {
		for _, cfg := range ablationConfigs {
			jobs = append(jobs, Job{Mussti: &MusstiSpec{App: app, Opts: cfg.Opts}})
		}
	}
	render := func(res *Results) (string, error) {
		var out strings.Builder
		for _, app := range apps {
			tb := NewTable(fmt.Sprintf("Fig 11 — %s: compilation time vs fidelity", app),
				"Technique", "CompileTime(s)", "Fidelity")
			for _, cfg := range ablationConfigs {
				m := res.Next()
				tb.Add(cfg.Name, fmt.Sprintf("%.3f", m.CompileTime.Seconds()), FormatLog10F(m.Log10F))
			}
			out.WriteString(tb.String())
			out.WriteByte('\n')
		}
		return out.String(), nil
	}
	// Serial for the same reason as fig10: CompileTime cells must not be
	// distorted by pool contention.
	return &Plan{Jobs: jobs, Render: render, Serial: true}, nil
}

// Fig12 regenerates the multiple-entanglement-zone analysis: large apps
// with one vs two optical zones per module.
func Fig12() (string, error) { return runPlan(fig12Plan) }

func fig12Plan() (*Plan, error) {
	zones := []int{1, 2}
	var jobs []Job
	for _, app := range bench.LargeSuite() {
		c, err := bench.ByName(app)
		if err != nil {
			return nil, err
		}
		for _, z := range zones {
			cfg := arch.DefaultConfig(c.NumQubits)
			cfg.OpticalZones = z
			jobs = append(jobs, Job{Mussti: &MusstiSpec{App: app, Config: cfg, Opts: core.DefaultOptions()}})
		}
	}
	render := func(res *Results) (string, error) {
		tb := NewTable("Fig 12 — one vs two entanglement zones (fidelity, MUSS-TI)",
			"Application", "SingleZone", "TwoZones")
		for _, app := range bench.LargeSuite() {
			row := []any{app}
			for range zones {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// fig13Modes are the idealisation switches of Fig. 13 in column order.
var fig13Modes = []struct{ gates, shuttle bool }{{true, false}, {false, true}, {false, false}}

// Fig13 regenerates the optimality analysis: MUSS-TI under Table-1 physics
// vs the perfect-gate and perfect-shuttle idealisations.
func Fig13() (string, error) { return runPlan(fig13Plan) }

func fig13Plan() (*Plan, error) {
	apps := []string{
		"Adder_n128", "BV_n128", "GHZ_n128", "QAOA_n128", "SQRT_n117",
		"Adder_n298", "BV_n298", "GHZ_n298", "QAOA_n298", "SQRT_n299",
	}
	var jobs []Job
	for _, app := range apps {
		for _, mode := range fig13Modes {
			opts := core.DefaultOptions()
			opts.Params = idealParams(mode.gates, mode.shuttle)
			jobs = append(jobs, Job{Mussti: &MusstiSpec{App: app, Opts: opts}})
		}
	}
	render := func(res *Results) (string, error) {
		tb := NewTable("Fig 13 — optimality analysis (fidelity)",
			"Application", "PerfectGate", "PerfectShuttle", "MUSS-TI")
		for _, app := range apps {
			row := []any{app}
			for range fig13Modes {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

func intsToHeaders(prefix string, xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%s%d", prefix, x)
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SortedIDs returns all experiment IDs in paper order (for CLI help).
func SortedIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
