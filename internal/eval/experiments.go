package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// Experiment regenerates one table or figure of the paper and renders it as
// text. Run may take seconds for the large-scale figures.
type Experiment struct {
	// ID is the paper's label: "table2", "fig6", ... "fig13".
	ID string
	// Description summarises what the paper shows there.
	Description string
	// Run executes the experiment sequentially and returns its rendered
	// tables.
	Run func() (string, error)
	// Plan decomposes the experiment into independent measurement jobs for
	// the concurrent runner; see RunContext.
	Plan PlanFunc
	// planWith builds the plan restricted to the given registered compiler
	// names (nil = the experiment's default compiler set); see CollectWith.
	planWith func(compilers []string) (*Plan, error)
}

// RunContext executes the experiment on the given runner (nil = sequential
// on the calling goroutine), honouring ctx cancellation. Output is
// byte-identical to Run at any worker count: jobs carry their paper-order
// positions and the renderer consumes them in that order.
func (e Experiment) RunContext(ctx context.Context, r *Runner) (string, error) {
	out, _, err := e.CollectContext(ctx, r)
	return out, err
}

// CollectContext is RunContext, additionally returning the experiment's
// structured Measurement rows in job order — the data behind the rendered
// text, for CSV export and other structured sinks. Experiments without a
// Plan render text only (nil measurements).
func (e Experiment) CollectContext(ctx context.Context, r *Runner) (string, []Measurement, error) {
	if e.Plan == nil {
		out, err := e.Run()
		return out, nil, err
	}
	p, err := e.Plan()
	if err != nil {
		return "", nil, err
	}
	return p.ExecuteCollect(ctx, r)
}

// CollectWith is CollectContext restricted to the given registered compiler
// names: the experiment measures (and renders columns or sections for) only
// those compilers, in the given order. Any registered compiler qualifies —
// including out-of-tree ones — so `-compilers=mussti,mine` puts a custom
// compiler into the paper's tables. An empty list means the experiment's
// default compiler set, which reproduces the paper byte-for-byte.
func (e Experiment) CollectWith(ctx context.Context, r *Runner, compilers []string) (string, []Measurement, error) {
	if len(compilers) == 0 {
		return e.CollectContext(ctx, r)
	}
	if e.planWith == nil {
		return "", nil, fmt.Errorf("eval: experiment %s does not support compiler selection", e.ID)
	}
	p, err := e.planWith(compilers)
	if err != nil {
		return "", nil, err
	}
	return p.ExecuteCollect(ctx, r)
}

// planOf adapts a compiler-selectable planner to the no-selection PlanFunc.
func planOf(pw func(compilers []string) (*Plan, error)) PlanFunc {
	return func() (*Plan, error) { return pw(nil) }
}

// experiment wires one compiler-selectable planner into an Experiment: Plan
// and planWith both derive from pw here, so a registration cannot point the
// default path and the -compilers path at different job lists.
func experiment(id, desc string, run func() (string, error), pw func(compilers []string) (*Plan, error)) Experiment {
	return Experiment{ID: id, Description: desc, Run: run, Plan: planOf(pw), planWith: pw}
}

// resolveCompilers returns the effective compiler list for an experiment:
// sel when non-empty (every name must be registered; duplicates collapse to
// their first occurrence, so a "-compilers=mussti,mussti" typo cannot double
// columns or compilations), def otherwise.
func resolveCompilers(sel, def []string) ([]string, error) {
	if len(sel) == 0 {
		return def, nil
	}
	seen := make(map[string]bool, len(sel))
	out := make([]string, 0, len(sel))
	for _, name := range sel {
		if _, err := core.LookupCompiler(name); err != nil {
			return nil, err
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, name)
	}
	return out, nil
}

// labelFor returns a registered compiler's display label ("MUSS-TI" for
// "mussti"); unregistered names fall back to themselves.
func labelFor(name string) string {
	if c, err := core.LookupCompiler(name); err == nil {
		return core.CompilerLabel(c)
	}
	return name
}

// musstiDefault is the compiler set of the MUSS-TI-only sweeps.
var musstiDefault = []string{"mussti"}

// splitByTarget partitions a compiler selection into the names that declare
// support for the probe target's machine shape and those that don't — the
// latter are rendered as skip notes rather than failing the experiment
// mid-run. Unregistered names pass through (resolveCompilers already
// validated the selection).
func splitByTarget(comps []string, probe arch.Target) (run, skipped []string) {
	for _, name := range comps {
		if c, err := core.LookupCompiler(name); err == nil && !core.SupportsTarget(c, probe) {
			skipped = append(skipped, name)
			continue
		}
		run = append(run, name)
	}
	return run, skipped
}

// skipNotes renders one line per skipped compiler, naming the target shape
// the experiment needed.
func skipNotes(skipped []string, shape string) string {
	var out strings.Builder
	for _, name := range skipped {
		fmt.Fprintf(&out, "(%s skipped: compiler does not support the %s target)\n", labelFor(name), shape)
	}
	return out.String()
}

// perCompilerPlan builds a sweep plan over a compiler selection: jobsFor
// appends one compiler's jobs, renderFor renders its section (in the same
// job order). Sections concatenate in selection order, separated by a blank
// line; with the default single-compiler selection the output is exactly the
// single section, preserving the paper-era rendering byte for byte.
//
// Every sweep in this package targets EML-QCCD devices, so compilers that
// declare themselves incompatible with that shape (the grid-only baselines)
// are skipped with a note instead of failing the whole plan mid-run — a
// selection like "-compilers=mussti,dai" still renders the sections that
// can run.
func perCompilerPlan(comps []string, jobsFor func(name string) ([]Job, error), renderFor func(name string, res *Results) (string, error)) (*Plan, error) {
	_, skippedList := splitByTarget(comps, arch.MustNew(arch.DefaultConfig(0)))
	skipped := make(map[string]bool, len(skippedList))
	for _, name := range skippedList {
		skipped[name] = true
	}
	var jobs []Job
	for _, name := range comps {
		if skipped[name] {
			continue
		}
		js, err := jobsFor(name)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, js...)
	}
	render := func(res *Results) (string, error) {
		var out strings.Builder
		for i, name := range comps {
			if i > 0 {
				out.WriteByte('\n')
			}
			if skipped[name] {
				out.WriteString(skipNotes([]string{name}, "EML-QCCD device"))
				continue
			}
			sec, err := renderFor(name, res)
			if err != nil {
				return "", err
			}
			out.WriteString(sec)
		}
		return out.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// sweepTitle renders a sweep section title: the base title for the paper's
// own MUSS-TI section, the base plus the compiler label otherwise.
func sweepTitle(base, name string) string {
	if name == "mussti" {
		return base
	}
	return base + " — " + labelFor(name)
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		experiment("table2", "Small-scale comparison on Grid 2x2 (cap 12) and 2x3 (cap 8): shuttles, time, fidelity",
			Table2, table2Plan),
		experiment("fig6", "Architectural comparison small/medium/large: shuttles, time, fidelity",
			func() (string, error) { return Fig6() },
			func(comps []string) (*Plan, error) { return fig6Plan("", comps) }),
		experiment("fig7", "Trap capacity sweep (12-20) vs fidelity, medium apps + SQRT_n299",
			Fig7, fig7Plan),
		experiment("fig8", "Ablation of compilation techniques (Trivial/SWAP/SABRE/SABRE+SWAP)",
			Fig8, fig8Plan),
		experiment("fig9", "Look-ahead window k sweep (4-12) vs fidelity",
			Fig9, fig9Plan),
		experiment("fig10", "Compilation-time scalability vs application size",
			Fig10, fig10Plan),
		experiment("fig11", "Compilation time vs fidelity trade-off per technique",
			Fig11, fig11Plan),
		experiment("fig12", "One vs two entanglement (optical) zones, large apps",
			Fig12, fig12Plan),
		experiment("fig13", "Optimality analysis: perfect gate / perfect shuttle / MUSS-TI",
			Fig13, fig13Plan),
	}
}

// AllExperiments returns the paper experiments followed by the extension
// studies (replacement-policy ablation, optical-port sweep).
func AllExperiments() []Experiment {
	return append(Experiments(), extensions...)
}

// ByID returns the experiment (paper figure or extension) with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range AllExperiments() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// table2Structures are the two Table-2 hardware configurations.
var table2Structures = []struct {
	Name       string
	Rows, Cols int
	Capacity   int
}{
	{"Grid 2x2", 2, 2, 12},
	{"Grid 2x3", 2, 3, 8},
}

// table2Compilers are Table 2's columns in paper order: the three baselines,
// then MUSS-TI ("Ours").
var table2Compilers = []string{"murali", "dai", "mqt", "mussti"}

// table2Tags are the paper's per-compiler column suffixes (the citation
// numbers of Table 2); compilers outside the paper render as "(label)".
var table2Tags = map[string]string{
	"murali": "[55]",
	"dai":    "[13]",
	"mqt":    "[70]",
	"mussti": "Ours",
}

// tagOf renders a compiler's column suffix: the paper's tag when the map
// has one, "(label)" otherwise (out-of-tree compilers).
func tagOf(tags map[string]string, name string) string {
	if t, ok := tags[name]; ok {
		return t
	}
	return "(" + labelFor(name) + ")"
}

// Table2 regenerates Table 2: the small-scale suite on both structures for
// all four compilers (Murali [55], Dai [13], MQT [70], MUSS-TI).
func Table2() (string, error) { return runPlan(planOf(table2Plan)) }

func table2Plan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, table2Compilers)
	if err != nil {
		return nil, err
	}
	// Table 2's structures are all grids; compilers that can't target a
	// grid lose their columns and get a note instead of failing the run.
	comps, skipped := splitByTarget(comps, arch.MustNewGrid(2, 2, 4))
	var jobs []Job
	for _, st := range table2Structures {
		g := arch.MustNewGrid(st.Rows, st.Cols, st.Capacity)
		for _, app := range bench.SmallSuite() {
			for _, name := range comps {
				jobs = append(jobs, Job{Spec: &CompileSpec{App: app, Compiler: name, Grid: g}})
			}
		}
	}
	render := func(res *Results) (string, error) {
		var out strings.Builder
		if len(comps) == 0 {
			// Every selected compiler was target-skipped: data-less tables
			// would only confuse, so explain and stop.
			out.WriteString("table2: no selected compiler can target the QCCD grid\n")
			out.WriteString(skipNotes(skipped, "QCCD grid"))
			return out.String(), nil
		}
		for _, st := range table2Structures {
			headers := []string{"Application"}
			for _, metric := range []string{"Shut", "Time", "Fid"} {
				for _, name := range comps {
					headers = append(headers, metric+tagOf(table2Tags, name))
				}
			}
			tb := NewTable(
				fmt.Sprintf("Table 2 — %s (trap capacity %d)", st.Name, st.Capacity),
				headers...,
			)
			for _, app := range bench.SmallSuite() {
				ms := res.Take(len(comps))
				row := []any{app}
				for _, m := range ms {
					row = append(row, m.Shuttles)
				}
				for _, m := range ms {
					row = append(row, fmt.Sprintf("%.0f", m.TimeUS))
				}
				for _, m := range ms {
					row = append(row, FormatLog10F(m.Log10F))
				}
				tb.Add(row...)
			}
			out.WriteString(tb.String())
			out.WriteByte('\n')
		}
		out.WriteString(skipNotes(skipped, "QCCD grid"))
		return out.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// fig6Scales are the three architectural-comparison scales of Fig. 6.
var fig6Scales = []struct {
	Name       string
	Apps       []string
	Rows, Cols int
	Capacity   int
	// OursOnGrid runs MUSS-TI on the standard grid (small scale); the
	// medium/large scales run MUSS-TI on its EML-QCCD device, which is the
	// "architectural comparison" of §5.2.
	OursOnGrid bool
}{
	{"Small Scale, 2x2", bench.SmallSuite(), 2, 2, 12, true},
	{"Middle Scale, 3x4", bench.MediumSuite(), 3, 4, 16, false},
	{"Large Scale, 4x5", bench.LargeSuite(), 4, 5, 16, false},
}

// fig6Compilers are Fig. 6's columns in paper order.
var fig6Compilers = []string{"mussti", "dai", "murali"}

// fig6Tags are Fig. 6's per-compiler column suffixes.
var fig6Tags = map[string]string{
	"mussti": "(ours)",
	"dai":    "(Dai)",
	"murali": "(Murali)",
}

// Fig6 regenerates the architectural comparison: for each scale, shuttle
// count, execution time and fidelity for MUSS-TI vs the Dai and Murali grid
// compilers.
func Fig6(scaleFilter ...string) (string, error) {
	filter := ""
	if len(scaleFilter) > 0 {
		filter = scaleFilter[0]
	}
	return runPlan(func() (*Plan, error) { return fig6Plan(filter, nil) })
}

func fig6Plan(filter string, sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, fig6Compilers)
	if err != nil {
		return nil, err
	}
	// Fig 6 is the grid-architecture comparison (MUSS-TI alone switches to
	// its EML device at the medium/large scales); grid-incapable compilers
	// are noted, not fatal.
	comps, skipped := splitByTarget(comps, arch.MustNewGrid(2, 2, 4))
	scales := fig6Scales[:0:0]
	for _, sc := range fig6Scales {
		if filter != "" && !strings.Contains(strings.ToLower(sc.Name), strings.ToLower(filter)) {
			continue
		}
		scales = append(scales, sc)
	}
	// At the medium/large scales the architectural comparison puts every
	// EML-capable compiler on its EML-QCCD device (for the built-ins that
	// is MUSS-TI alone) against the grid compilers on the grid; comparing
	// an EML-capable compiler's grid numbers to MUSS-TI's EML numbers
	// would be apples to oranges. The small scale runs everyone on the
	// grid.
	emlCapable := make(map[string]bool, len(comps))
	probe := arch.MustNew(arch.DefaultConfig(0))
	for _, name := range comps {
		if comp, err := core.LookupCompiler(name); err == nil && core.SupportsTarget(comp, probe) {
			emlCapable[name] = true
		}
	}
	var jobs []Job
	for _, sc := range scales {
		g := arch.MustNewGrid(sc.Rows, sc.Cols, sc.Capacity)
		for _, app := range sc.Apps {
			for _, name := range comps {
				spec := &CompileSpec{App: app, Compiler: name}
				if sc.OursOnGrid || !emlCapable[name] {
					spec.Grid = g
				}
				jobs = append(jobs, Job{Spec: spec})
			}
		}
	}
	// The shuttle-reduction summary compares MUSS-TI against the best
	// selected baseline; it needs both sides in the selection to mean
	// anything, so a one-sided selection omits the line.
	hasOurs, hasBaseline := false, false
	for _, name := range comps {
		if name == "mussti" {
			hasOurs = true
		} else {
			hasBaseline = true
		}
	}
	render := func(res *Results) (string, error) {
		var out strings.Builder
		if len(comps) == 0 {
			out.WriteString("fig6: no selected compiler can target the QCCD grid\n")
			out.WriteString(skipNotes(skipped, "QCCD grid"))
			return out.String(), nil
		}
		for _, sc := range scales {
			headers := []string{"Application"}
			for _, metric := range []string{"Shut", "Time", "Fid"} {
				for _, name := range comps {
					headers = append(headers, metric+tagOf(fig6Tags, name))
				}
			}
			tb := NewTable(fmt.Sprintf("Fig 6 — %s (grid cap %d)", sc.Name, sc.Capacity), headers...)
			var reduction []float64
			for _, app := range sc.Apps {
				ms := res.Take(len(comps))
				row := []any{app}
				for _, m := range ms {
					row = append(row, m.Shuttles)
				}
				for _, m := range ms {
					row = append(row, fmt.Sprintf("%.0f", m.TimeUS))
				}
				for _, m := range ms {
					row = append(row, FormatLog10F(m.Log10F))
				}
				tb.Add(row...)
				// Average reduction of MUSS-TI's shuttles vs the best of the
				// selected baselines; skipped when either side is missing
				// from the selection.
				best, ours := -1, -1
				for i, name := range comps {
					if name == "mussti" {
						ours = ms[i].Shuttles
					} else if best < 0 || ms[i].Shuttles < best {
						best = ms[i].Shuttles
					}
				}
				if ours >= 0 && best > 0 {
					reduction = append(reduction, 100*(1-float64(ours)/float64(best)))
				}
			}
			out.WriteString(tb.String())
			if hasOurs && hasBaseline {
				fmt.Fprintf(&out, "average shuttle reduction vs best baseline: %.2f%%\n", mean(reduction))
			}
			out.WriteByte('\n')
		}
		out.WriteString(skipNotes(skipped, "QCCD grid"))
		return out.String(), nil
	}
	return &Plan{Jobs: jobs, Render: render}, nil
}

// Fig7 regenerates the trap-capacity analysis: MUSS-TI fidelity for
// capacities 12..20 on the medium apps and SQRT_n299.
func Fig7() (string, error) { return runPlan(planOf(fig7Plan)) }

func fig7Plan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	apps := []string{"Adder_n128", "BV_n128", "GHZ_n128", "QAOA_n128", "SQRT_n299"}
	caps := []int{12, 14, 16, 18, 20}
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range apps {
			c, err := bench.ByName(app)
			if err != nil {
				return nil, err
			}
			for _, capacity := range caps {
				cfg := arch.DefaultConfig(c.NumQubits)
				cfg.TrapCapacity = capacity
				js = append(js, Job{Spec: &CompileSpec{App: app, Compiler: name, Arch: cfg}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		tb := NewTable(fmt.Sprintf("Fig 7 — EML-QCCD trap capacity vs fidelity (%s)", labelFor(name)),
			append([]string{"Application"}, intsToHeaders("cap=", caps)...)...)
		for _, app := range apps {
			row := []any{app}
			for range caps {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return perCompilerPlan(comps, jobsFor, renderFor)
}

// ablationConfigs are the four Fig. 8 / Fig. 11 technique combinations.
var ablationConfigs = []struct {
	Name string
	Opts core.CompileConfig
}{
	{"Trivial", core.CompileConfig{Mapping: core.MappingTrivial}},
	{"SWAP Insert", core.CompileConfig{Mapping: core.MappingTrivial, SwapInsertion: true}},
	{"SABRE", core.CompileConfig{Mapping: core.MappingSABRE}},
	{"SABRE+SWAP", core.CompileConfig{Mapping: core.MappingSABRE, SwapInsertion: true}},
}

// Fig8 regenerates the compilation-technique ablation over the medium and
// large suites.
func Fig8() (string, error) { return runPlan(planOf(fig8Plan)) }

func fig8Plan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	apps := append(append([]string{}, bench.MediumSuite()...), bench.LargeSuite()...)
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range apps {
			for _, cfg := range ablationConfigs {
				opts := cfg.Opts
				js = append(js, Job{Spec: &CompileSpec{App: app, Compiler: name, Config: &opts}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		header := []string{"Application"}
		for _, cfg := range ablationConfigs {
			header = append(header, cfg.Name)
		}
		tb := NewTable(sweepTitle("Fig 8 — ablation of compilation techniques (fidelity)", name), header...)
		for _, app := range apps {
			row := []any{app}
			for range ablationConfigs {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return perCompilerPlan(comps, jobsFor, renderFor)
}

// Fig9 regenerates the look-ahead analysis: fidelity for k in {4..12} on
// the five applications of the paper's Fig. 9.
func Fig9() (string, error) { return runPlan(planOf(fig9Plan)) }

func fig9Plan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	apps := []string{"QAOA_n256", "Adder_n256", "RAN_n256", "SQRT_n117", "SQRT_n299"}
	ks := []int{4, 6, 8, 10, 12}
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range apps {
			for _, k := range ks {
				js = append(js, Job{Spec: &CompileSpec{
					App: app, Compiler: name, Config: core.NewCompileConfig(core.WithLookAhead(k)),
				}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		tb := NewTable(fmt.Sprintf("Fig 9 — look-ahead window k vs fidelity (%s)", labelFor(name)),
			append([]string{"Application"}, intsToHeaders("k=", ks)...)...)
		for _, app := range apps {
			row := []any{app}
			for range ks {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return perCompilerPlan(comps, jobsFor, renderFor)
}

// Fig10 regenerates the compilation-time scalability curve: wall-clock
// MUSS-TI compile time for Adder/BV/GHZ/QAOA from ~128 to ~300 qubits.
func Fig10() (string, error) { return runPlan(planOf(fig10Plan)) }

func fig10Plan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	families := []string{"Adder", "BV", "GHZ", "QAOA"}
	sizes := []int{128, 160, 192, 224, 256, 288, 300}
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, fam := range families {
			for _, n := range sizes {
				app := fmt.Sprintf("%s_n%d", fam, n)
				js = append(js, Job{Spec: &CompileSpec{App: app, Compiler: name}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		tb := NewTable(sweepTitle("Fig 10 — compilation time (s) vs application size", name),
			append([]string{"Family"}, intsToHeaders("n=", sizes)...)...)
		for _, fam := range families {
			row := []any{fam}
			for range sizes {
				row = append(row, fmt.Sprintf("%.3f", res.Next().CompileTime.Seconds()))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	p, err := perCompilerPlan(comps, jobsFor, renderFor)
	if err != nil {
		return nil, err
	}
	// Serial: the cells ARE wall-clock compile times; pool neighbours
	// would contend for CPU and inflate them.
	p.Serial = true
	return p, nil
}

// Fig11 regenerates the compile-time/fidelity trade-off scatter for the
// complex (SQRT_n128) and simple (BV_n128) applications.
func Fig11() (string, error) { return runPlan(planOf(fig11Plan)) }

func fig11Plan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	apps := []string{"SQRT_n128", "BV_n128"}
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range apps {
			for _, cfg := range ablationConfigs {
				opts := cfg.Opts
				js = append(js, Job{Spec: &CompileSpec{App: app, Compiler: name, Config: &opts}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		var out strings.Builder
		for _, app := range apps {
			tb := NewTable(sweepTitle(fmt.Sprintf("Fig 11 — %s: compilation time vs fidelity", app), name),
				"Technique", "CompileTime(s)", "Fidelity")
			for _, cfg := range ablationConfigs {
				m := res.Next()
				tb.Add(cfg.Name, fmt.Sprintf("%.3f", m.CompileTime.Seconds()), FormatLog10F(m.Log10F))
			}
			out.WriteString(tb.String())
			out.WriteByte('\n')
		}
		return out.String(), nil
	}
	p, err := perCompilerPlan(comps, jobsFor, renderFor)
	if err != nil {
		return nil, err
	}
	// Serial for the same reason as fig10: CompileTime cells must not be
	// distorted by pool contention.
	p.Serial = true
	return p, nil
}

// Fig12 regenerates the multiple-entanglement-zone analysis: large apps
// with one vs two optical zones per module.
func Fig12() (string, error) { return runPlan(planOf(fig12Plan)) }

func fig12Plan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	zones := []int{1, 2}
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range bench.LargeSuite() {
			c, err := bench.ByName(app)
			if err != nil {
				return nil, err
			}
			for _, z := range zones {
				cfg := arch.DefaultConfig(c.NumQubits)
				cfg.OpticalZones = z
				js = append(js, Job{Spec: &CompileSpec{App: app, Compiler: name, Arch: cfg}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		tb := NewTable(fmt.Sprintf("Fig 12 — one vs two entanglement zones (fidelity, %s)", labelFor(name)),
			"Application", "SingleZone", "TwoZones")
		for _, app := range bench.LargeSuite() {
			row := []any{app}
			for range zones {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return perCompilerPlan(comps, jobsFor, renderFor)
}

// fig13Modes are the idealisation switches of Fig. 13 in column order.
var fig13Modes = []struct{ gates, shuttle bool }{{true, false}, {false, true}, {false, false}}

// Fig13 regenerates the optimality analysis: MUSS-TI under Table-1 physics
// vs the perfect-gate and perfect-shuttle idealisations.
func Fig13() (string, error) { return runPlan(planOf(fig13Plan)) }

func fig13Plan(sel []string) (*Plan, error) {
	comps, err := resolveCompilers(sel, musstiDefault)
	if err != nil {
		return nil, err
	}
	apps := []string{
		"Adder_n128", "BV_n128", "GHZ_n128", "QAOA_n128", "SQRT_n117",
		"Adder_n298", "BV_n298", "GHZ_n298", "QAOA_n298", "SQRT_n299",
	}
	jobsFor := func(name string) ([]Job, error) {
		var js []Job
		for _, app := range apps {
			for _, mode := range fig13Modes {
				js = append(js, Job{Spec: &CompileSpec{
					App: app, Compiler: name,
					Config: core.NewCompileConfig(core.WithPhysics(idealParams(mode.gates, mode.shuttle))),
				}})
			}
		}
		return js, nil
	}
	renderFor := func(name string, res *Results) (string, error) {
		// The third column is the compiler under Table-1 physics — the
		// paper's "MUSS-TI" column, labelled after the section's compiler.
		tb := NewTable(sweepTitle("Fig 13 — optimality analysis (fidelity)", name),
			"Application", "PerfectGate", "PerfectShuttle", labelFor(name))
		for _, app := range apps {
			row := []any{app}
			for range fig13Modes {
				row = append(row, FormatLog10F(res.Next().Log10F))
			}
			tb.Add(row...)
		}
		return tb.String(), nil
	}
	return perCompilerPlan(comps, jobsFor, renderFor)
}

func intsToHeaders(prefix string, xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%s%d", prefix, x)
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SortedIDs returns all experiment IDs in paper order (for CLI help).
func SortedIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
