package eval

import (
	"fmt"
	"sort"
	"strings"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// Experiment regenerates one table or figure of the paper and renders it as
// text. Run may take seconds for the large-scale figures.
type Experiment struct {
	// ID is the paper's label: "table2", "fig6", ... "fig13".
	ID string
	// Description summarises what the paper shows there.
	Description string
	// Run executes the experiment and returns its rendered tables.
	Run func() (string, error)
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Small-scale comparison on Grid 2x2 (cap 12) and 2x3 (cap 8): shuttles, time, fidelity", Table2},
		{"fig6", "Architectural comparison small/medium/large: shuttles, time, fidelity",
			func() (string, error) { return Fig6() }},
		{"fig7", "Trap capacity sweep (12-20) vs fidelity, medium apps + SQRT_n299", Fig7},
		{"fig8", "Ablation of compilation techniques (Trivial/SWAP/SABRE/SABRE+SWAP)", Fig8},
		{"fig9", "Look-ahead window k sweep (4-12) vs fidelity", Fig9},
		{"fig10", "Compilation-time scalability vs application size", Fig10},
		{"fig11", "Compilation time vs fidelity trade-off per technique", Fig11},
		{"fig12", "One vs two entanglement (optical) zones, large apps", Fig12},
		{"fig13", "Optimality analysis: perfect gate / perfect shuttle / MUSS-TI", Fig13},
	}
}

// AllExperiments returns the paper experiments followed by the extension
// studies (replacement-policy ablation, optical-port sweep).
func AllExperiments() []Experiment {
	return append(Experiments(), extensions...)
}

// ByID returns the experiment (paper figure or extension) with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range AllExperiments() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// table2Structures are the two Table-2 hardware configurations.
var table2Structures = []struct {
	Name       string
	Rows, Cols int
	Capacity   int
}{
	{"Grid 2x2", 2, 2, 12},
	{"Grid 2x3", 2, 3, 8},
}

// Table2 regenerates Table 2: the small-scale suite on both structures for
// all four compilers (Murali [55], Dai [13], MQT [70], MUSS-TI).
func Table2() (string, error) {
	var out strings.Builder
	for _, st := range table2Structures {
		tb := NewTable(
			fmt.Sprintf("Table 2 — %s (trap capacity %d)", st.Name, st.Capacity),
			"Application",
			"Shut[55]", "Shut[13]", "Shut[70]", "ShutOurs",
			"Time[55]", "Time[13]", "Time[70]", "TimeOurs",
			"Fid[55]", "Fid[13]", "Fid[70]", "FidOurs",
		)
		for _, app := range bench.SmallSuite() {
			row, err := table2Row(app, st.Rows, st.Cols, st.Capacity)
			if err != nil {
				return "", err
			}
			tb.Add(row...)
		}
		out.WriteString(tb.String())
		out.WriteByte('\n')
	}
	return out.String(), nil
}

func table2Row(app string, rows, cols, capacity int) ([]any, error) {
	var ms []Measurement
	for _, algo := range []baseline.Algorithm{baseline.Murali, baseline.Dai, baseline.MQT} {
		m, err := RunBaseline(BaselineSpec{App: app, Algorithm: algo, Rows: rows, Cols: cols, Capacity: capacity})
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	ours, err := RunMussti(MusstiSpec{
		App:  app,
		Grid: arch.MustNewGrid(rows, cols, capacity),
		Opts: core.DefaultOptions(),
	})
	if err != nil {
		return nil, err
	}
	ms = append(ms, ours)
	row := []any{app}
	for _, m := range ms {
		row = append(row, m.Shuttles)
	}
	for _, m := range ms {
		row = append(row, fmt.Sprintf("%.0f", m.TimeUS))
	}
	for _, m := range ms {
		row = append(row, FormatLog10F(m.Log10F))
	}
	return row, nil
}

// fig6Scales are the three architectural-comparison scales of Fig. 6.
var fig6Scales = []struct {
	Name       string
	Apps       []string
	Rows, Cols int
	Capacity   int
	// OursOnGrid runs MUSS-TI on the standard grid (small scale); the
	// medium/large scales run MUSS-TI on its EML-QCCD device, which is the
	// "architectural comparison" of §5.2.
	OursOnGrid bool
}{
	{"Small Scale, 2x2", bench.SmallSuite(), 2, 2, 12, true},
	{"Middle Scale, 3x4", bench.MediumSuite(), 3, 4, 16, false},
	{"Large Scale, 4x5", bench.LargeSuite(), 4, 5, 16, false},
}

// Fig6 regenerates the architectural comparison: for each scale, shuttle
// count, execution time and fidelity for MUSS-TI vs the Dai and Murali grid
// compilers.
func Fig6(scaleFilter ...string) (string, error) {
	var out strings.Builder
	for _, sc := range fig6Scales {
		if len(scaleFilter) > 0 && scaleFilter[0] != "" && !strings.Contains(strings.ToLower(sc.Name), strings.ToLower(scaleFilter[0])) {
			continue
		}
		tb := NewTable(
			fmt.Sprintf("Fig 6 — %s (grid cap %d)", sc.Name, sc.Capacity),
			"Application",
			"Shut(ours)", "Shut(Dai)", "Shut(Murali)",
			"Time(ours)", "Time(Dai)", "Time(Murali)",
			"Fid(ours)", "Fid(Dai)", "Fid(Murali)",
		)
		var reduction []float64
		for _, app := range sc.Apps {
			spec := MusstiSpec{App: app, Opts: core.DefaultOptions()}
			if sc.OursOnGrid {
				spec.Grid = arch.MustNewGrid(sc.Rows, sc.Cols, sc.Capacity)
			}
			ours, err := RunMussti(spec)
			if err != nil {
				return "", err
			}
			dai, err := RunBaseline(BaselineSpec{App: app, Algorithm: baseline.Dai, Rows: sc.Rows, Cols: sc.Cols, Capacity: sc.Capacity})
			if err != nil {
				return "", err
			}
			murali, err := RunBaseline(BaselineSpec{App: app, Algorithm: baseline.Murali, Rows: sc.Rows, Cols: sc.Cols, Capacity: sc.Capacity})
			if err != nil {
				return "", err
			}
			tb.Add(app,
				ours.Shuttles, dai.Shuttles, murali.Shuttles,
				fmt.Sprintf("%.0f", ours.TimeUS), fmt.Sprintf("%.0f", dai.TimeUS), fmt.Sprintf("%.0f", murali.TimeUS),
				FormatLog10F(ours.Log10F), FormatLog10F(dai.Log10F), FormatLog10F(murali.Log10F),
			)
			best := dai.Shuttles
			if murali.Shuttles < best {
				best = murali.Shuttles
			}
			if best > 0 {
				reduction = append(reduction, 100*(1-float64(ours.Shuttles)/float64(best)))
			}
		}
		out.WriteString(tb.String())
		fmt.Fprintf(&out, "average shuttle reduction vs best baseline: %.2f%%\n\n", mean(reduction))
	}
	return out.String(), nil
}

// Fig7 regenerates the trap-capacity analysis: MUSS-TI fidelity for
// capacities 12..20 on the medium apps and SQRT_n299.
func Fig7() (string, error) {
	apps := []string{"Adder_n128", "BV_n128", "GHZ_n128", "QAOA_n128", "SQRT_n299"}
	caps := []int{12, 14, 16, 18, 20}
	tb := NewTable("Fig 7 — EML-QCCD trap capacity vs fidelity (MUSS-TI)",
		append([]string{"Application"}, intsToHeaders("cap=", caps)...)...)
	for _, app := range apps {
		row := []any{app}
		c := bench.MustByName(app)
		for _, capacity := range caps {
			cfg := arch.DefaultConfig(c.NumQubits)
			cfg.TrapCapacity = capacity
			m, err := RunMussti(MusstiSpec{App: app, Config: cfg, Opts: core.DefaultOptions()})
			if err != nil {
				return "", err
			}
			row = append(row, FormatLog10F(m.Log10F))
		}
		tb.Add(row...)
	}
	return tb.String(), nil
}

// ablationConfigs are the four Fig. 8 / Fig. 11 technique combinations.
var ablationConfigs = []struct {
	Name string
	Opts core.Options
}{
	{"Trivial", core.Options{Mapping: core.MappingTrivial}},
	{"SWAP Insert", core.Options{Mapping: core.MappingTrivial, SwapInsertion: true}},
	{"SABRE", core.Options{Mapping: core.MappingSABRE}},
	{"SABRE+SWAP", core.Options{Mapping: core.MappingSABRE, SwapInsertion: true}},
}

// Fig8 regenerates the compilation-technique ablation over the medium and
// large suites.
func Fig8() (string, error) {
	apps := append(append([]string{}, bench.MediumSuite()...), bench.LargeSuite()...)
	header := []string{"Application"}
	for _, cfg := range ablationConfigs {
		header = append(header, cfg.Name)
	}
	tb := NewTable("Fig 8 — ablation of compilation techniques (fidelity)", header...)
	for _, app := range apps {
		row := []any{app}
		for _, cfg := range ablationConfigs {
			m, err := RunMussti(MusstiSpec{App: app, Opts: cfg.Opts})
			if err != nil {
				return "", err
			}
			row = append(row, FormatLog10F(m.Log10F))
		}
		tb.Add(row...)
	}
	return tb.String(), nil
}

// Fig9 regenerates the look-ahead analysis: fidelity for k in {4..12} on
// the five applications of the paper's Fig. 9.
func Fig9() (string, error) {
	apps := []string{"QAOA_n256", "Adder_n256", "RAN_n256", "SQRT_n117", "SQRT_n299"}
	ks := []int{4, 6, 8, 10, 12}
	tb := NewTable("Fig 9 — look-ahead window k vs fidelity (MUSS-TI)",
		append([]string{"Application"}, intsToHeaders("k=", ks)...)...)
	for _, app := range apps {
		row := []any{app}
		for _, k := range ks {
			opts := core.DefaultOptions()
			opts.LookAhead = k
			m, err := RunMussti(MusstiSpec{App: app, Opts: opts})
			if err != nil {
				return "", err
			}
			row = append(row, FormatLog10F(m.Log10F))
		}
		tb.Add(row...)
	}
	return tb.String(), nil
}

// Fig10 regenerates the compilation-time scalability curve: wall-clock
// MUSS-TI compile time for Adder/BV/GHZ/QAOA from ~128 to ~300 qubits.
func Fig10() (string, error) {
	families := []string{"Adder", "BV", "GHZ", "QAOA"}
	sizes := []int{128, 160, 192, 224, 256, 288, 300}
	tb := NewTable("Fig 10 — compilation time (s) vs application size",
		append([]string{"Family"}, intsToHeaders("n=", sizes)...)...)
	for _, fam := range families {
		row := []any{fam}
		for _, n := range sizes {
			app := fmt.Sprintf("%s_n%d", fam, n)
			m, err := RunMussti(MusstiSpec{App: app, Opts: core.DefaultOptions()})
			if err != nil {
				return "", err
			}
			row = append(row, fmt.Sprintf("%.3f", m.CompileTime.Seconds()))
		}
		tb.Add(row...)
	}
	return tb.String(), nil
}

// Fig11 regenerates the compile-time/fidelity trade-off scatter for the
// complex (SQRT_n128) and simple (BV_n128) applications.
func Fig11() (string, error) {
	apps := []string{"SQRT_n128", "BV_n128"}
	var out strings.Builder
	for _, app := range apps {
		tb := NewTable(fmt.Sprintf("Fig 11 — %s: compilation time vs fidelity", app),
			"Technique", "CompileTime(s)", "Fidelity")
		for _, cfg := range ablationConfigs {
			m, err := RunMussti(MusstiSpec{App: app, Opts: cfg.Opts})
			if err != nil {
				return "", err
			}
			tb.Add(cfg.Name, fmt.Sprintf("%.3f", m.CompileTime.Seconds()), FormatLog10F(m.Log10F))
		}
		out.WriteString(tb.String())
		out.WriteByte('\n')
	}
	return out.String(), nil
}

// Fig12 regenerates the multiple-entanglement-zone analysis: large apps
// with one vs two optical zones per module.
func Fig12() (string, error) {
	tb := NewTable("Fig 12 — one vs two entanglement zones (fidelity, MUSS-TI)",
		"Application", "SingleZone", "TwoZones")
	for _, app := range bench.LargeSuite() {
		c := bench.MustByName(app)
		row := []any{app}
		for _, zones := range []int{1, 2} {
			cfg := arch.DefaultConfig(c.NumQubits)
			cfg.OpticalZones = zones
			m, err := RunMussti(MusstiSpec{App: app, Config: cfg, Opts: core.DefaultOptions()})
			if err != nil {
				return "", err
			}
			row = append(row, FormatLog10F(m.Log10F))
		}
		tb.Add(row...)
	}
	return tb.String(), nil
}

// Fig13 regenerates the optimality analysis: MUSS-TI under Table-1 physics
// vs the perfect-gate and perfect-shuttle idealisations.
func Fig13() (string, error) {
	apps := []string{
		"Adder_n128", "BV_n128", "GHZ_n128", "QAOA_n128", "SQRT_n117",
		"Adder_n298", "BV_n298", "GHZ_n298", "QAOA_n298", "SQRT_n299",
	}
	tb := NewTable("Fig 13 — optimality analysis (fidelity)",
		"Application", "PerfectGate", "PerfectShuttle", "MUSS-TI")
	for _, app := range apps {
		row := []any{app}
		for _, mode := range []struct{ gates, shuttle bool }{{true, false}, {false, true}, {false, false}} {
			opts := core.DefaultOptions()
			opts.Params = idealParams(mode.gates, mode.shuttle)
			m, err := RunMussti(MusstiSpec{App: app, Opts: opts})
			if err != nil {
				return "", err
			}
			row = append(row, FormatLog10F(m.Log10F))
		}
		tb.Add(row...)
	}
	return tb.String(), nil
}

func intsToHeaders(prefix string, xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%s%d", prefix, x)
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SortedIDs returns all experiment IDs in paper order (for CLI help).
func SortedIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
