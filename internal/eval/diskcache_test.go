package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// measurementFor derives a deterministic fake measurement from a key, so
// any reader can verify an entry's integrity from its key alone — the
// property the torn-read tests below lean on.
func measurementFor(key string) Measurement {
	return Measurement{App: key, Compiler: "fake", Qubits: len(key), Shuttles: 7 * len(key), TimeUS: float64(len(key)) * 1.5}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dc, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Get("missing"); ok {
		t.Fatal("empty cache reported a hit")
	}
	m := measurementFor("k1")
	if err := dc.Put("k1", m); err != nil {
		t.Fatal(err)
	}
	got, ok := dc.Get("k1")
	if !ok || got != m {
		t.Fatalf("Get after Put: ok=%v, %+v", ok, got)
	}
	// Re-putting is a no-op, not an error.
	if err := dc.Put("k1", m); err != nil {
		t.Fatal(err)
	}
	hits, misses := dc.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats: %d hits %d misses, want 1/1", hits, misses)
	}
}

// TestDiskCacheRejectsCorruptAndForeignEntries: a truncated file, garbage,
// a version-skewed entry and a key mismatch (hash collision stand-in) must
// all read as misses — never as wrong measurements.
func TestDiskCacheRejectsCorruptAndForeignEntries(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Put("good", measurementFor("good")); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 entry, got %v (%v)", entries, err)
	}
	path := entries[0]

	cases := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"truncated", `{"v":1,"key":"good","measure`},
		{"version skew", `{"v":99,"key":"good","measurement":{}}`},
		{"key mismatch", `{"v":1,"key":"evil","measurement":{}}`},
	}
	for _, c := range cases {
		if err := os.WriteFile(path, []byte(c.data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := dc.Get("good"); ok {
			t.Errorf("%s entry reported a hit", c.name)
		}
	}
}

// TestDiskCachePutRepairsInvalidEntry is the regression test for the Put
// early-return bug: Put used to skip any existing entry file, so a corrupt,
// version-skewed or key-collided entry was never repaired and every later
// run recompiled the point forever. Put must now validate the existing
// entry with Get's checks and rewrite it when invalid — one recompile, then
// hits again.
func TestDiskCachePutRepairsInvalidEntry(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"truncated", `{"v":1,"key":"point","measure`},
		{"version skew", `{"v":99,"key":"point","measurement":{}}`},
		{"key collision", `{"v":1,"key":"evil","measurement":{}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			dc, err := NewDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			want := measurementFor("point")
			if err := dc.Put("point", want); err != nil {
				t.Fatal(err)
			}
			path := dc.path("point")
			if err := os.WriteFile(path, []byte(c.data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := dc.Get("point"); ok {
				t.Fatal("invalid entry reported a hit")
			}
			// The miss makes the caller recompile; its Put must repair.
			if err := dc.Put("point", want); err != nil {
				t.Fatal(err)
			}
			got, ok := dc.Get("point")
			if !ok || got != want {
				t.Fatalf("Get after repairing Put: ok=%v, %+v", ok, got)
			}
			// A valid entry stays untouched by further Puts (same mtime check
			// would be flaky; the content check is what matters).
			if err := dc.Put("point", want); err != nil {
				t.Fatal(err)
			}
			if got, ok := dc.Get("point"); !ok || got != want {
				t.Fatalf("Get after no-op Put: ok=%v, %+v", ok, got)
			}
		})
	}
}

// TestDiskCacheRepairHelper is the subprocess body of the cross-process
// repair test below: it Puts the measurement for the key named by the
// environment into the shared directory. Not a test on its own.
func TestDiskCacheRepairHelper(t *testing.T) {
	dir := os.Getenv("MUSSTI_DISKCACHE_REPAIR_DIR")
	if dir == "" {
		t.Skip("re-exec helper for TestDiskCacheRepairAcrossProcesses, not a test")
	}
	key := os.Getenv("MUSSTI_DISKCACHE_REPAIR_KEY")
	dc, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Put(key, measurementFor(key)); err != nil {
		t.Fatalf("put %s: %v", key, err)
	}
}

// TestDiskCacheRepairAcrossProcesses: a corrupt entry left by one process
// must be repaired by another process's Put (the fleet scenario: a worker
// finds the shared store corrupted, recompiles, and its Put heals the store
// for every other worker). The parent corrupts the entry, a fresh OS
// process Puts, and the parent's next Get must hit.
func TestDiskCacheRepairAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "cross-point"
	want := measurementFor(key)
	if err := dc.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dc.path(key), []byte(`{"v":1,"key":"collided","measurement":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestDiskCacheRepairHelper$")
	cmd.Env = append(os.Environ(),
		"MUSSTI_DISKCACHE_REPAIR_DIR="+dir,
		"MUSSTI_DISKCACHE_REPAIR_KEY="+key)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("repair process failed: %v\n%s", err, out)
	}
	got, ok := dc.Get(key)
	if !ok || got != want {
		t.Fatalf("Get after cross-process repair: ok=%v, %+v", ok, got)
	}
}

// TestDiskCacheConcurrentHammer drives one cache from many goroutines under
// -race: overlapping Puts and Gets on a small key set must race benignly —
// every hit returns exactly the measurement its key derives.
func TestDiskCacheConcurrentHammer(t *testing.T) {
	dc, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, ops, keys = 8, 200, 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := "key-" + strconv.Itoa((g+i)%keys)
				want := measurementFor(key)
				if (g+i)%3 == 0 {
					if err := dc.Put(key, want); err != nil {
						errs <- err
						return
					}
				}
				if m, ok := dc.Get(key); ok && m != want {
					errs <- fmt.Errorf("torn read: key %s returned %+v", key, m)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDiskCacheHammerHelper is the subprocess body of the cross-process
// test below: it hammers the shared directory named by the environment and
// verifies every hit it sees. Not a test on its own.
func TestDiskCacheHammerHelper(t *testing.T) {
	dir := os.Getenv("MUSSTI_DISKCACHE_HAMMER_DIR")
	if dir == "" {
		t.Skip("re-exec helper for TestDiskCacheTwoProcesses, not a test")
	}
	dc, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	const ops, keys = 400, 16
	for i := 0; i < ops; i++ {
		key := "key-" + strconv.Itoa(i%keys)
		want := measurementFor(key)
		if err := dc.Put(key, want); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		m, ok := dc.Get(key)
		if !ok {
			t.Fatalf("key %s missing right after Put", key)
		}
		if m != want {
			t.Fatalf("torn read across processes: key %s returned %+v", key, m)
		}
	}
}

// TestDiskCacheTwoProcesses is the cross-process half of the atomic-rename
// contract: two separate OS processes hammer one cache directory at once,
// and no reader in either may ever observe a torn or corrupt entry. The
// in-process goroutine hammer above covers the same interleavings under
// -race; this covers real inter-process visibility.
func TestDiskCacheTwoProcesses(t *testing.T) {
	dir := t.TempDir()
	var procs []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=^TestDiskCacheHammerHelper$")
		cmd.Env = append(os.Environ(), "MUSSTI_DISKCACHE_HAMMER_DIR="+dir)
		out, err := os.CreateTemp(t.TempDir(), "hammer-out-*")
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stdout, cmd.Stderr = out, out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
	}
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			data, _ := os.ReadFile(cmd.Stdout.(*os.File).Name())
			t.Fatalf("hammer process %d failed: %v\n%s", i, err, data)
		}
	}
	// Post-mortem: every surviving entry file must parse and match its key.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("hammer left no entries behind")
	}
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var e diskEntry
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("%s: corrupt entry: %v", filepath.Base(path), err)
			continue
		}
		if e.Measurement != measurementFor(e.Key) {
			t.Errorf("entry %s holds a measurement that does not match its key", e.Key)
		}
	}
	// No temp files may survive either — a leftover tmp-* is an interrupted
	// write that was also renamed-over or orphaned.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "tmp-*")); len(tmps) != 0 {
		t.Errorf("leftover temp files: %v", tmps)
	}
}

// TestMemoDiskLayer: a memo backed by a disk store serves a key computed by
// an earlier memo (a "previous process") without calling the compute
// function again — and singleflight still holds within each memo.
func TestMemoDiskLayer(t *testing.T) {
	dc, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := NewMemo()
	first.SetDisk(dc)
	want := measurementFor("point")
	calls := 0
	m, err := first.Do(context.Background(), "point", func() (Measurement, error) {
		calls++
		return want, nil
	})
	if err != nil || m != want || calls != 1 {
		t.Fatalf("first compute: m=%+v err=%v calls=%d", m, err, calls)
	}

	second := NewMemo() // fresh memo = fresh process, same disk
	second.SetDisk(dc)
	m, err = second.Do(context.Background(), "point", func() (Measurement, error) {
		calls++
		return Measurement{}, fmt.Errorf("must not recompute")
	})
	if err != nil || m != want {
		t.Fatalf("disk-served compute: m=%+v err=%v", m, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times across two memos sharing a disk, want 1", calls)
	}
	if hits, _ := dc.Stats(); hits != 1 {
		t.Errorf("disk hits = %d, want 1", hits)
	}
}

// TestMemoDiskLayerDoesNotPersistErrors: a failed compute must not poison
// the shared store — errors are per-process outcomes.
func TestMemoDiskLayerDoesNotPersistErrors(t *testing.T) {
	dir := t.TempDir()
	dc, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	mo := NewMemo()
	mo.SetDisk(dc)
	if _, err := mo.Do(context.Background(), "bad", func() (Measurement, error) {
		return Measurement{}, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("error swallowed")
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(entries) != 0 {
		t.Errorf("error persisted to disk: %v", entries)
	}
}
