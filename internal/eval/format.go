package eval

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple text table builder used by all experiment formatters.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; values are stringified with %v unless already strings.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// FormatFloat renders a float the way the paper's tables do: plain decimal
// for readable magnitudes, scientific for tiny fidelities, and "0" for
// values that underflowed.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsInf(v, 0) || math.IsNaN(v):
		return fmt.Sprintf("%v", v)
	case math.Abs(v) >= 0.01 && math.Abs(v) < 1e6:
		return trimZeros(fmt.Sprintf("%.4f", v))
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1e", v)
	}
}

func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// FormatLog10F renders a log10 fidelity series value the way the paper's
// tables do: decimal for readable magnitudes, scientific below that, and a
// synthesised "1e-xxx" once the linear value would underflow float64.
func FormatLog10F(log10F float64) string {
	switch {
	case log10F > -2:
		return trimZeros(fmt.Sprintf("%.4f", math.Pow(10, log10F)))
	case log10F > -300:
		return fmt.Sprintf("%.1e", math.Pow(10, log10F))
	default:
		return fmt.Sprintf("1e%.0f", math.Floor(log10F))
	}
}
