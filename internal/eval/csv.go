package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteMeasurementsCSV writes measurements as CSV with a header row, the
// interchange format for plotting the figures outside Go.
func WriteMeasurementsCSV(w io.Writer, ms []Measurement) error {
	cw := csv.NewWriter(w)
	header := []string{
		"app", "compiler", "qubits", "two_qubit_gates",
		"shuttles", "chain_swaps", "inserted_swaps", "fiber_gates",
		"time_us", "fidelity", "log10_fidelity", "compile_seconds",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, m := range ms {
		rec := []string{
			m.App, m.Compiler,
			strconv.Itoa(m.Qubits), strconv.Itoa(m.TwoQubit),
			strconv.Itoa(m.Shuttles), strconv.Itoa(m.ChainSwaps),
			strconv.Itoa(m.InsertedSwaps), strconv.Itoa(m.FiberGates),
			strconv.FormatFloat(m.TimeUS, 'f', 0, 64),
			strconv.FormatFloat(m.Fidelity, 'g', 6, 64),
			strconv.FormatFloat(m.Log10F, 'f', 3, 64),
			strconv.FormatFloat(m.CompileTime.Seconds(), 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CollectComparison runs one application through MUSS-TI (on its EML
// device) and the given grid baselines, returning the measurements — the
// unit of data behind Fig. 6, exported for users who want raw numbers.
func CollectComparison(app string, rows, cols, capacity int, baselines []BaselineSpec) ([]Measurement, error) {
	var out []Measurement
	ours, err := RunMussti(MusstiSpec{App: app})
	if err != nil {
		return nil, err
	}
	out = append(out, ours)
	for _, spec := range baselines {
		spec.App = app
		if spec.Rows == 0 {
			spec.Rows, spec.Cols, spec.Capacity = rows, cols, capacity
		}
		m, err := RunBaseline(spec)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", app, err)
		}
		out = append(out, m)
	}
	return out, nil
}
