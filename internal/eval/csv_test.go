package eval

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"mussti/internal/baseline"
)

func TestWriteMeasurementsCSV(t *testing.T) {
	ms := []Measurement{
		{App: "GHZ_n32", Compiler: "MUSS-TI", Qubits: 32, TwoQubit: 31,
			Shuttles: 3, TimeUS: 2075, Fidelity: 0.815, Log10F: -0.0888,
			CompileTime: 5 * time.Millisecond},
		{App: "GHZ_n32", Compiler: "QCCD-Dai", Qubits: 32, TwoQubit: 31,
			Shuttles: 6, TimeUS: 2535, Fidelity: 0.7525, Log10F: -0.1235},
	}
	var buf bytes.Buffer
	if err := WriteMeasurementsCSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(records))
	}
	if records[0][0] != "app" || records[0][4] != "shuttles" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][1] != "MUSS-TI" || records[1][4] != "3" {
		t.Errorf("row 1 = %v", records[1])
	}
	if records[2][1] != "QCCD-Dai" {
		t.Errorf("row 2 = %v", records[2])
	}
}

func TestCollectComparison(t *testing.T) {
	ms, err := CollectComparison("GHZ_n32", 2, 2, 12, []BaselineSpec{
		{Algorithm: baseline.Murali},
		{Algorithm: baseline.Dai},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("measurements = %d, want 3", len(ms))
	}
	if ms[0].Compiler != "MUSS-TI" {
		t.Errorf("first measurement = %q", ms[0].Compiler)
	}
	var buf bytes.Buffer
	if err := WriteMeasurementsCSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "QCCD-Murali") {
		t.Error("CSV missing baseline row")
	}
}
