package eval

import (
	"strings"
	"testing"
)

// TestCheapExperimentsEndToEnd runs the experiments that complete in about
// a second so the experiment plumbing itself stays covered; the heavy
// figures run through bench_test.go and cmd/experiments.
func TestCheapExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment end-to-end runs skipped in -short")
	}
	for _, tc := range []struct {
		id   string
		want []string
	}{
		{"fig10", []string{"Adder", "n=300"}},
		{"lru", []string{"shut(lru)", "shut(belady)", "Belady"}},
		{"routing", []string{"with", "without", "delta%"}},
	} {
		e, err := ByID(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", tc.id, err)
		}
		for _, w := range tc.want {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q", tc.id, w)
			}
		}
	}
}

func TestFig8AblationOrderingOnHeavyApp(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run skipped in -short")
	}
	// The combined strategy must beat trivial on the most communication-
	// heavy medium app — the paper's central Fig. 8 claim.
	trivial, err := RunMussti(MusstiSpec{App: "SQRT_n117",
		Opts: ablationConfigs[0].Opts})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := RunMussti(MusstiSpec{App: "SQRT_n117",
		Opts: ablationConfigs[3].Opts})
	if err != nil {
		t.Fatal(err)
	}
	if combined.Log10F < trivial.Log10F {
		t.Errorf("SABRE+SWAP (%.1f) worse than trivial (%.1f) on SQRT_n117",
			combined.Log10F, trivial.Log10F)
	}
}

func TestFig13EnvelopesBoundMussti(t *testing.T) {
	if testing.Short() {
		t.Skip("optimality run skipped in -short")
	}
	// Idealised physics can only help: both envelopes must sit at or
	// above the realistic run for a representative app.
	base, err := RunMussti(MusstiSpec{App: "GHZ_n128"})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name           string
		gates, shuttle bool
	}{{"perfect gate", true, false}, {"perfect shuttle", false, true}} {
		spec := MusstiSpec{App: "GHZ_n128"}
		spec.Opts.Params = idealParams(mode.gates, mode.shuttle)
		m, err := RunMussti(spec)
		if err != nil {
			t.Fatal(err)
		}
		if m.Log10F < base.Log10F-1e-9 {
			t.Errorf("%s fidelity %.2f below realistic %.2f", mode.name, m.Log10F, base.Log10F)
		}
	}
}
