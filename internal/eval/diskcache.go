package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// This file is the shared on-disk measurement cache. The in-memory Memo
// dedupes points within one process; the DiskCache extends that across
// processes and runs: every worker of a distributed fleet (internal/dist)
// and every repeated suite invocation pointed at the same directory reads
// and writes one store, so each (compiler, app, target, config) point
// compiles once per fleet, ever.
//
// Entries are keyed by the same `compiler|app|target|config` strings the
// Memo uses — pinned cross-process-stable by TestCacheKeysStableAcrossProcesses
// — hashed to a filename. Writes go through an O_EXCL temp file plus an
// atomic rename in the same directory, so concurrent writers (processes
// included) can never expose a torn entry: a reader sees the old entry, no
// entry, or the complete new one. Each entry echoes its full key and is
// verified on read, so a hash collision or a foreign file degrades to a
// cache miss, never a wrong measurement.

// diskCacheVersion is the entry format version. Bump it when the entry
// layout or the cache-key format changes; old entries then read as misses.
const diskCacheVersion = 1

// DiskCache is a measurement store shared by any number of processes
// pointing at one directory. All methods are safe for concurrent use, in
// and across processes.
type DiskCache struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
}

// diskEntry is the JSON layout of one cached measurement file.
type diskEntry struct {
	V           int         `json:"v"`
	Key         string      `json:"key"`
	Measurement Measurement `json:"measurement"`
}

// NewDiskCache opens (creating if needed) the cache directory.
func NewDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("eval: disk cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eval: disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (d *DiskCache) Dir() string { return d.dir }

// Stats reports how many lookups were served from disk (hits) and how many
// missed — misses are the points this process had to compile.
func (d *DiskCache) Stats() (hits, misses int64) {
	return d.hits.Load(), d.misses.Load()
}

// path maps a cache key to its entry file. Keys contain separators and can
// be long, so the filename is the key's SHA-256; the entry itself echoes
// the full key for verification.
func (d *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// readEntry loads and validates the entry file at path against key: it must
// parse, carry the current format version and echo the full key. One helper
// serves both Get (a failed check is a miss) and Put (a failed check means
// the entry is due for repair), so the two can never disagree about what a
// valid entry is.
func (d *DiskCache) readEntry(path, key string) (Measurement, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Measurement{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil || e.V != diskCacheVersion || e.Key != key {
		return Measurement{}, false
	}
	return e.Measurement, true
}

// Get returns the cached measurement for key. Unreadable, corrupt,
// version-skewed or key-mismatched entries all report a miss — the caller
// recompiles and Put repairs the entry.
func (d *DiskCache) Get(key string) (Measurement, bool) {
	m, ok := d.readEntry(d.path(key), key)
	if !ok {
		d.misses.Add(1)
		return Measurement{}, false
	}
	d.hits.Add(1)
	return m, true
}

// Put persists the measurement for key. The write is atomic (temp file +
// rename within the cache directory), so concurrent writers — including
// other processes — race benignly: measurements are deterministic functions
// of their key, so whichever rename lands last installs identical content.
// A valid entry already present is left untouched; an existing entry that
// fails Get's checks — corrupt, version-skewed, or holding a colliding key —
// is rewritten, completing Get's documented miss-then-repair contract (a bad
// file must cost one recompile, not one per run forever).
func (d *DiskCache) Put(key string, m Measurement) error {
	path := d.path(key)
	if _, ok := d.readEntry(path, key); ok {
		return nil
	}
	data, err := json.Marshal(diskEntry{V: diskCacheVersion, Key: key, Measurement: m})
	if err != nil {
		return fmt.Errorf("eval: disk cache: encoding %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("eval: disk cache: %w", err)
	}
	if _, err = tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("eval: disk cache: writing %q: %w", key, err)
	}
	return nil
}
