package eval

import (
	"context"
	"fmt"
	"sync/atomic"

	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// This file teaches the Runner to exploit core's batch compilation. Most
// experiment plans sweep many configurations or targets over the same
// benchmark circuit; compiled job by job, every one of those measurements
// rebuilds an identical per-circuit prep (DAG, per-qubit lists, next-use
// tables). planUnits groups such jobs into units, and runBatchUnit sends a
// unit through BatchCompiler.CompileBatch behind the existing memo and
// disk-cache seam (Memo.DoBatch), so cached members still skip compilation
// and singleflight coalescing still holds across concurrent experiments.
// Output is unaffected by the partition: results land by job index and the
// rendered tables stay byte-identical.

// planUnits partitions the job list into execution units. Jobs compiling
// the same circuit with the same batch-capable compiler form one unit and
// go through CompileBatch — one shared prep, one worker sub-group — while
// everything else stays a singleton. Units are ordered by first member and
// results land by job index, so the partition never affects output, only
// the work performed. Batching is skipped entirely with a remote executor
// (jobs must ship individually) and when disabled via DisableBatching.
func (r *Runner) planUnits(jobs []Job) [][]int {
	groupable := r.batching && r.remote == nil && len(jobs) > 1
	keys := make([]string, len(jobs))
	if groupable {
		for i, j := range jobs {
			s, err := j.resolve()
			if err != nil {
				continue // stays a singleton; the error surfaces when it runs
			}
			comp, err := core.LookupCompiler(s.Compiler)
			if err != nil {
				continue
			}
			if _, ok := comp.(core.BatchCompiler); !ok {
				continue
			}
			if r.memo != nil {
				if _, ok := s.CacheKey(); !ok {
					continue // uncacheable (traced) jobs keep the per-job path
				}
			}
			keys[i] = s.Compiler + "\x00" + s.App
		}
	}
	units := make([][]int, 0, len(jobs))
	at := make(map[string]int, len(jobs))
	for i := range jobs {
		k := keys[i]
		if k == "" {
			units = append(units, []int{i})
			continue
		}
		if u, ok := at[k]; ok {
			units[u] = append(units[u], i)
		} else {
			at[k] = len(units)
			units = append(units, []int{i})
		}
	}
	return units
}

// parallelizable reports whether intra-compile parallelism can help this
// job: the compiler must be batch-capable (core's) and the config must run
// the SABRE two-fold search — the only shape with concurrent candidate
// work. The baselines ignore CompileConfig.Parallelism, so boosting them
// would only hold a semaphore slot idle.
func parallelizable(j Job) bool {
	s, err := j.resolve()
	if err != nil {
		return false
	}
	comp, err := core.LookupCompiler(s.Compiler)
	if err != nil {
		return false
	}
	if _, ok := comp.(core.BatchCompiler); !ok {
		return false
	}
	return s.config(comp).Mapping == core.MappingSABRE
}

// borrowSlots claims up to n extra semaphore slots without blocking,
// returning how many it got. The caller already holds one slot; borrowed
// slots widen one unit's internal worker group, so batches and boosted
// compiles use idle capacity without ever oversubscribing the runner's
// global GOMAXPROCS-bounded budget.
func (r *Runner) borrowSlots(n int) int {
	got := 0
	for got < n {
		select {
		case r.sem <- struct{}{}: //mussti:allow=sempair the claimed slots are handed to the caller, who must return them via releaseSlots — sempair holds every caller to that
			got++
		default:
			return got
		}
	}
	return got
}

// releaseSlots returns borrowed slots to the pool.
func (r *Runner) releaseSlots(n int) {
	for ; n > 0; n-- {
		// The receives drain tokens this goroutine itself placed via
		// borrowSlots, so they never block and never oversubscribe.
		//mussti:allow=sempair releases the caller's borrowSlots claim; the pair of primitives is the blessed unbalanced seam
		<-r.sem //mussti:allow=leakcheck every token was placed by this goroutine via borrowSlots, so the receive never blocks
	}
}

// runBatchUnit executes one multi-job unit through CompileBatch with the
// runner's cache and progress layers applied, writing each member's
// measurement to ms by job index. workers bounds the batch's internal
// concurrency (the slots the caller actually holds). On failure the whole
// unit aborts and the error is attributed to the unit's first member — the
// lowest job index, consistent with Run's first-error rule.
func (r *Runner) runBatchUnit(ctx context.Context, jobs []Job, unit []int, workers int, ms []Measurement, done *atomic.Int64) error {
	specs := make([]CompileSpec, len(unit))
	for k, i := range unit {
		s, err := jobs[i].resolve()
		if err != nil {
			return err
		}
		specs[k] = s
	}
	comp, err := core.LookupCompiler(specs[0].Compiler)
	if err != nil {
		return err
	}
	bc, ok := comp.(core.BatchCompiler)
	if !ok {
		return fmt.Errorf("eval: compiler %q grouped into a batch unit but lacks CompileBatch", specs[0].Compiler)
	}
	c, err := bench.ByName(specs[0].App)
	if err != nil {
		return err
	}
	progs := make([]*jobProgress, len(unit))
	variants := make([]core.BatchVariant, len(unit))
	for k := range unit {
		target, err := specs[k].target(c.NumQubits)
		if err != nil {
			return err
		}
		cfg := specs[k].config(comp)
		if r.progress != nil {
			progs[k] = r.progress.job(jobs[unit[k]].label())
			cfg.Observer = progs[k]
		}
		variants[k] = core.BatchVariant{Target: target, Config: &cfg}
	}

	compiled := make([]bool, len(unit))
	compute := func(need []int) ([]Measurement, error) {
		sub := make([]core.BatchVariant, len(need))
		for x, k := range need {
			sub[x] = variants[k]
			compiled[k] = true
		}
		results, err := bc.CompileBatch(ctx, c, sub, workers)
		if err != nil {
			return nil, fmt.Errorf("eval: %s/%s batch: %w", specs[0].App, specs[0].Compiler, err)
		}
		out := make([]Measurement, len(need))
		for x, k := range need {
			out[x] = measurementFrom(specs[k], comp, c, results[x])
		}
		return out, nil
	}

	var got []Measurement
	if r.memo != nil {
		keys := make([]string, len(unit))
		for k, s := range specs {
			key, ok := s.CacheKey()
			if !ok {
				return fmt.Errorf("eval: uncacheable spec %s/%s grouped into a memoized batch unit", s.App, s.Compiler)
			}
			keys[k] = key
		}
		one := func(k int) (Measurement, error) {
			compiled[k] = true
			results, err := bc.CompileBatch(ctx, c, variants[k:k+1], 1)
			if err != nil {
				return Measurement{}, fmt.Errorf("eval: %s/%s: %w", specs[k].App, specs[k].Compiler, err)
			}
			return measurementFrom(specs[k], comp, c, results[0]), nil
		}
		got, err = r.memo.DoBatch(ctx, keys, compute, one)
	} else {
		all := make([]int, len(unit))
		for k := range all {
			all[k] = k
		}
		got, err = compute(all)
	}
	if err != nil {
		return err
	}
	for k, i := range unit {
		ms[i] = got[k]
		done.Add(1)
		if progs[k] != nil {
			progs[k].finish(!compiled[k])
		}
	}
	return nil
}
