package eval

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestExperimentsByteIdenticalAcrossExecutionModes is the harness-level
// determinism golden: the rendered table2 and fig6 output must be
// byte-identical whether jobs run sequentially, through the concurrent
// runner with batching (the default), with batching disabled, or with the
// measurement cache off. The execution strategy is a pure performance knob.
func TestExperimentsByteIdenticalAcrossExecutionModes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode experiment sweep")
	}
	ctx := context.Background()
	modes := []struct {
		name string
		mk   func() *Runner
	}{
		{"sequential", func() *Runner { return nil }},
		{"batched", func() *Runner { return NewRunner(8) }},
		{"unbatched", func() *Runner { r := NewRunner(8); r.DisableBatching(); return r }},
		{"uncached", func() *Runner { r := NewRunner(4); r.DisableCache(); return r }},
	}
	for _, id := range []string{"table2", "fig6"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var want string
		for _, mode := range modes {
			got, err := e.RunContext(ctx, mode.mk())
			if err != nil {
				t.Fatalf("%s (%s): %v", id, mode.name, err)
			}
			if mode.name == "sequential" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s (%s): output differs from sequential run", id, mode.name)
			}
		}
	}
}

// TestBatchRunnerCancelLeavesNoGoroutines extends the no-leak cancellation
// contract to the batch path: a run cancelled from inside a batched compile
// must return promptly and retire every worker and candidate goroutine.
func TestBatchRunnerCancelLeavesNoGoroutines(t *testing.T) {
	jobs := make([]Job, 0, 64)
	for i := 0; i < 64; i++ {
		jobs = append(jobs, Job{Spec: &CompileSpec{App: "GHZ_n64", Compiler: "mussti"}})
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(4)
	r.DisableCache() // identical jobs would otherwise collapse and finish early
	// Cancel from inside the first compile that schedules a gate. With the
	// cache off, batching still groups all 64 identical jobs into one
	// CompileBatch unit, so this aborts the unit's workers mid-flight.
	jobs[0] = jobs[0].withObserver(cancelOnGate{cancel: cancel, after: 1})
	start := time.Now()
	_, err := r.Run(ctx, jobs)
	if err == nil {
		t.Fatal("cancelled batched run returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled batched run took %s, want a prompt return", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines did not retire after batched cancel: %d running, baseline %d", n, baseline)
	}
}
