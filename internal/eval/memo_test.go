package eval

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mussti/internal/arch"
	"mussti/internal/core"
)

// TestMemoExactlyOnce: identical measurement points run through one Runner
// compile exactly once, however many jobs request them.
func TestMemoExactlyOnce(t *testing.T) {
	same := func() Job {
		return Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}}
	}
	other := Job{Mussti: &MusstiSpec{App: "BV_n32", Opts: core.DefaultOptions()}}
	r := NewRunner(4)
	ms, err := r.Run(context.Background(), []Job{same(), same(), other, same()})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := r.CacheStats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (one compile per distinct point)", misses)
	}
	if hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
	if ms[0] != ms[1] || ms[0] != ms[3] {
		t.Errorf("cached measurements differ from compiled one")
	}
	if ms[2] == ms[0] {
		t.Errorf("distinct point served the wrong cached measurement")
	}
}

// TestMemoSharedAcrossRuns: two Run calls on the same Runner — the shape of
// two experiments in the CLI's all mode — share the cache, so the second
// run's overlapping points are all hits.
func TestMemoSharedAcrossRuns(t *testing.T) {
	jobs := func() []Job {
		return []Job{
			{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}},
			{Baseline: &BaselineSpec{App: "GHZ_n32", Algorithm: 0, Rows: 2, Cols: 2, Capacity: 12}},
		}
	}
	r := NewRunner(2)
	first, err := r.Run(context.Background(), jobs())
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(context.Background(), jobs())
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := r.CacheStats()
	if misses != 2 || hits != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", hits, misses)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("job %d: cached measurement differs from compiled one", i)
		}
	}
}

// TestMemoSingleflight: concurrent requests for one in-flight key coalesce
// onto a single computation instead of compiling in parallel.
func TestMemoSingleflight(t *testing.T) {
	mo := NewMemo()
	var calls int
	var mu sync.Mutex
	const waiters = 8
	var wg sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := mo.Do(context.Background(), "k", func() (Measurement, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				<-release // hold the key in-flight until all goroutines queued
				return Measurement{App: "x"}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Give every goroutine time to reach Do, then let the leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	if hits, misses := mo.Stats(); hits != waiters-1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", hits, misses, waiters-1)
	}
}

// TestMemoCancelledLeaderRetries: a leader cancelled mid-compile must not
// poison the key — the next caller with a live context computes it.
func TestMemoCancelledLeaderRetries(t *testing.T) {
	mo := NewMemo()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := mo.Do(cancelled, "k", func() (Measurement, error) {
		return Measurement{}, cancelled.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	m, err := mo.Do(context.Background(), "k", func() (Measurement, error) {
		return Measurement{App: "fresh"}, nil
	})
	if err != nil || m.App != "fresh" {
		t.Fatalf("retry after cancelled leader: m=%+v err=%v", m, err)
	}
	if hits, misses := mo.Stats(); hits != 0 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 0/1", hits, misses)
	}
}

// TestMemoRealErrorsAreCached: deterministic failures (bad app names) are
// served from cache like results, not recompiled per experiment.
func TestMemoRealErrorsAreCached(t *testing.T) {
	r := NewRunner(1)
	bad := func() []Job { return []Job{{Mussti: &MusstiSpec{App: "Bogus_n1"}}} }
	if _, err := r.Run(context.Background(), bad()); err == nil {
		t.Fatal("bogus app accepted")
	}
	if _, err := r.Run(context.Background(), bad()); err == nil {
		t.Fatal("bogus app accepted on second run")
	}
	if hits, misses := r.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

// TestCacheKeysDistinguishConfigs: nearby-but-different specs must never
// collide on one cache key.
func TestCacheKeysDistinguishConfigs(t *testing.T) {
	optsK4 := core.DefaultOptions()
	optsK4.LookAhead = 4
	specs := []Job{
		{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}},
		{Mussti: &MusstiSpec{App: "GHZ_n64", Opts: core.DefaultOptions()}},
		{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: optsK4}},
		{Mussti: &MusstiSpec{App: "GHZ_n32", Grid: arch.MustNewGrid(2, 2, 12), Opts: core.DefaultOptions()}},
		{Mussti: &MusstiSpec{App: "GHZ_n32", Grid: arch.MustNewGrid(2, 3, 12), Opts: core.DefaultOptions()}},
		{Mussti: &MusstiSpec{App: "GHZ_n32", Grid: arch.MustNewGrid(2, 2, 8), Opts: core.DefaultOptions()}},
		{Baseline: &BaselineSpec{App: "GHZ_n32", Algorithm: 0, Rows: 2, Cols: 2, Capacity: 12}},
		{Baseline: &BaselineSpec{App: "GHZ_n32", Algorithm: 1, Rows: 2, Cols: 2, Capacity: 12}},
		{Baseline: &BaselineSpec{App: "GHZ_n32", Algorithm: 0, Rows: 2, Cols: 2, Capacity: 8}},
	}
	seen := make(map[string]int)
	for i, j := range specs {
		key, ok := j.cacheKey()
		if !ok {
			t.Fatalf("spec %d not cacheable", i)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("specs %d and %d collide on key %q", prev, i, key)
		}
		seen[key] = i
	}
	// An identical respec must reproduce the key.
	a, _ := Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}}.cacheKey()
	b, _ := Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}}.cacheKey()
	if a != b {
		t.Errorf("identical specs produced different keys:\n%s\n%s", a, b)
	}
}

// TestTraceJobsBypassCache: trace-recording runs are never cached (their
// point of existence is the per-run trace the Measurement drops), while an
// Observer never affects cacheability (observation changes no measurement).
func TestTraceJobsBypassCache(t *testing.T) {
	traced := core.DefaultOptions()
	traced.Trace = true
	if _, ok := (Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: traced}}).cacheKey(); ok {
		t.Error("trace-recording mussti job was cacheable")
	}
	observed := core.DefaultOptions()
	observed.Observer = &nopObsForTest{}
	plainKey, ok1 := Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}}.cacheKey()
	obsKey, ok2 := Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: observed}}.cacheKey()
	if !ok1 || !ok2 || plainKey != obsKey {
		t.Errorf("observer changed cacheability or key: %v %v\n%s\n%s", ok1, ok2, plainKey, obsKey)
	}
}

type nopObsForTest struct{}

func (nopObsForTest) GateScheduled(done, total int) {}
func (nopObsForTest) Shuttle(q, from, to int)       {}
func (nopObsForTest) Eviction(victim, from, to int) {}
func (nopObsForTest) SwapInserted(a, b int)         {}

// TestCacheOutputByteIdentical is the rendering contract of the cache:
// table2 and the fig6 small scale share measurement points, and running
// them cached, uncached, or sequentially must produce the same bytes while
// the cached run performs strictly fewer compilations.
func TestCacheOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs skipped in -short")
	}
	ids := []string{"table2", "fig6small"}
	render := func(r *Runner) map[string]string {
		out := make(map[string]string)
		for _, id := range ids {
			var text string
			var err error
			if id == "fig6small" {
				p, perr := fig6Plan("small", nil)
				if perr != nil {
					t.Fatal(perr)
				}
				text, _, err = p.ExecuteCollect(context.Background(), r)
			} else {
				e, eerr := ByID(id)
				if eerr != nil {
					t.Fatal(eerr)
				}
				text, err = e.RunContext(context.Background(), r)
			}
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out[id] = text
		}
		return out
	}

	// Total jobs the two experiments enqueue, to assert "strictly fewer
	// compilations than points measured".
	totalJobs := 0
	t2, err := table2Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := fig6Plan("small", nil)
	if err != nil {
		t.Fatal(err)
	}
	totalJobs = len(t2.Jobs) + len(f6.Jobs)

	cached := NewRunner(4)
	withCache := render(cached)
	hits, misses := cached.CacheStats()
	if hits == 0 {
		t.Errorf("table2+fig6(small) share points but the cache recorded no hits")
	}
	if int(misses) >= totalJobs {
		t.Errorf("cache performed no dedup: %d compilations for %d points", misses, totalJobs)
	}
	if int(hits+misses) != totalJobs {
		t.Errorf("hits+misses = %d, want %d (every point served once)", hits+misses, totalJobs)
	}

	uncached := NewRunner(4)
	uncached.DisableCache()
	withoutCache := render(uncached)

	for _, id := range ids {
		if withCache[id] != withoutCache[id] {
			t.Errorf("%s: cached output differs from uncached\n--- cached ---\n%s--- uncached ---\n%s",
				id, withCache[id], withoutCache[id])
		}
		if !strings.Contains(withCache[id], "—") {
			t.Errorf("%s: suspiciously empty render", id)
		}
	}
}

// cancelOnGate is an Observer that cancels the run from inside a compiling
// gate once `after` gates have executed. Cancelling from within the compile
// makes mid-compile cancellation deterministic regardless of compile speed —
// wall-clock timers stopped landing reliably once the hot-path rework made
// whole compiles faster than a few milliseconds.
type cancelOnGate struct {
	cancel context.CancelFunc
	after  int
}

func (c cancelOnGate) GateScheduled(done, total int) {
	if done >= c.after {
		c.cancel()
	}
}
func (c cancelOnGate) Shuttle(q, from, to int)       {}
func (c cancelOnGate) Eviction(victim, from, to int) {}
func (c cancelOnGate) SwapInserted(a, b int)         {}

// TestCancelledRunLeavesNoGoroutines: a cancelled concurrent run must not
// strand worker goroutines (the runner joins its pool before returning).
func TestCancelledRunLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(4)
	r.DisableCache() // identical jobs would otherwise collapse and finish early
	jobs := make([]Job, 200)
	for i := range jobs {
		opts := core.DefaultOptions()
		// The first job to execute a gate cancels the whole run in flight.
		opts.Observer = cancelOnGate{cancel: cancel, after: 1}
		jobs[i] = Job{Mussti: &MusstiSpec{App: "GHZ_n64", Opts: opts}}
	}
	if _, err := r.Run(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The pool is joined before Run returns; give the runtime a few
	// scheduling rounds to retire exiting goroutines, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before run, %d after cancelled run", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunnerPassesContextMidCompile: cancellation interrupts a measurement
// that is already compiling — the capability PR 1 lacked (it only stopped
// between measurements).
func TestRunnerPassesContextMidCompile(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(1)
	// The compile cancels itself from its 10th scheduled gate: success here
	// is only possible if the runner handed its ctx into the compiler and
	// the scheduler checks it mid-run — the capability PR 1 lacked (it only
	// stopped between measurements).
	opts := core.DefaultOptions()
	opts.Observer = cancelOnGate{cancel: cancel, after: 10}
	jobs := []Job{{Mussti: &MusstiSpec{App: "SQRT_n117", Opts: opts}}}
	start := time.Now()
	_, err := r.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (compile was not interrupted)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled run took %s, want a prompt mid-compile abort", elapsed)
	}
}
