package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the concurrent measurement runner. Every experiment in this
// package is a fixed set of independent (application, compiler, device)
// measurements followed by pure formatting, so each one decomposes into a
// Plan: an ordered job list plus a renderer over the ordered results. Jobs
// fan out over a bounded worker pool; results keep their enqueue positions,
// so the renderer consumes them in exactly the order the old sequential
// loops produced them and the rendered tables are byte-identical to the
// sequential output at any worker count.

// Job is one independent measurement: exactly one of Mussti or Baseline is
// set. Jobs share no mutable state, so any number may run concurrently.
type Job struct {
	Mussti   *MusstiSpec
	Baseline *BaselineSpec
}

// run executes the measurement this job describes.
func (j Job) run() (Measurement, error) {
	switch {
	case j.Mussti != nil:
		return RunMussti(*j.Mussti)
	case j.Baseline != nil:
		return RunBaseline(*j.Baseline)
	default:
		return Measurement{}, fmt.Errorf("eval: empty job")
	}
}

// Plan is a decomposed experiment: the measurement jobs in deterministic
// paper order, and a renderer that turns the ordered results into the
// experiment's text output.
type Plan struct {
	Jobs []Job
	// Render formats the results. Results arrive in job order regardless
	// of execution order; Render must not depend on wall-clock effects.
	Render func(res *Results) (string, error)
	// Serial forces sequential in-place execution even when a Runner is
	// supplied. Set it on experiments whose rendered cells are wall-clock
	// measurements (Fig. 10/11 print CompileTime): concurrent neighbours
	// would contend for CPU and distort the numbers being reported.
	Serial bool
}

// PlanFunc builds an experiment's plan. Building is cheap (no compilation
// happens until the jobs run).
type PlanFunc func() (*Plan, error)

// Results hands measurements back to a renderer in job order. The cursor
// API lets renderers keep the same nested-loop shape as the planners that
// enqueued the jobs.
type Results struct {
	ms []Measurement
	i  int
}

// Next returns the next measurement in job order. It panics if the
// renderer consumes more results than the plan enqueued — a planner/
// renderer mismatch, which is a programming error.
func (r *Results) Next() Measurement {
	if r.i >= len(r.ms) {
		panic("eval: renderer consumed more measurements than planned")
	}
	m := r.ms[r.i]
	r.i++
	return m
}

// Take returns the next n measurements in job order.
func (r *Results) Take(n int) []Measurement {
	out := make([]Measurement, n)
	for i := range out {
		out[i] = r.Next()
	}
	return out
}

// Runner executes job lists over a bounded worker pool. The pool bound is a
// semaphore shared by every Run call on the same Runner, so concurrent
// experiments (the CLI's all-experiments mode) stay within one global
// concurrency budget instead of multiplying it.
type Runner struct {
	workers int
	sem     chan struct{}
}

// NewRunner returns a runner with the given concurrency; workers <= 0 means
// runtime.GOMAXPROCS(0). A nil *Runner is valid everywhere one is accepted
// and means strictly sequential in-place execution.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers reports the pool size.
func (r *Runner) Workers() int {
	if r == nil {
		return 1
	}
	return r.workers
}

// Run executes all jobs and returns their measurements in job order. On
// failure it cancels the jobs that have not started and returns the error
// of the lowest-indexed failed job — exactly the error a sequential loop
// surfaces first. (Workers claim jobs in index order and a claimed job
// always runs, so every job below the first failure has completed by the
// time Run returns.) A cancelled ctx aborts promptly between jobs — a
// measurement already compiling runs to completion — and surfaces
// ctx.Err().
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Measurement, error) {
	if r == nil {
		return runSequential(ctx, jobs)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ms := make([]Measurement, len(jobs))
	errs := make([]error, len(jobs)) // only real job errors; skips stay nil
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(r.workers, len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Checked before the select: with both channels ready,
				// select picks arbitrarily, and cancellation must win.
				if ctx.Err() != nil {
					return
				}
				// The semaphore is shared by every Run call on this
				// Runner, holding concurrent experiments to one global
				// concurrency budget.
				select {
				case <-ctx.Done():
					return
				case r.sem <- struct{}{}:
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					<-r.sem
					return
				}
				// No ctx check between claim and run: a claimed job always
				// executes, which is what makes the first-error guarantee
				// deterministic.
				m, err := jobs[i].run()
				if err != nil {
					errs[i] = err
					cancel() // skip jobs that have not been claimed yet
				} else {
					ms[i] = m
				}
				done.Add(1)
				<-r.sem
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if int(done.Load()) < len(jobs) {
		// Only a cancelled ctx can leave jobs unclaimed without an error.
		return nil, ctx.Err()
	}
	return ms, nil
}

// runSequential is the nil-Runner path: jobs run in order on the calling
// goroutine, exactly like the pre-runner harness.
func runSequential(ctx context.Context, jobs []Job) ([]Measurement, error) {
	ms := make([]Measurement, len(jobs))
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := j.run()
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

// Execute runs the plan's jobs on r (nil = sequential) and renders the
// results. A renderer that consumes fewer measurements than the plan
// enqueued is an error — the planner/renderer loops have drifted apart and
// the rendered columns can no longer be trusted (over-consumption panics
// in Results.Next).
func (p *Plan) Execute(ctx context.Context, r *Runner) (string, error) {
	if p.Serial {
		r = nil
	}
	ms, err := r.Run(ctx, p.Jobs)
	if err != nil {
		return "", err
	}
	res := &Results{ms: ms}
	out, err := p.Render(res)
	if err != nil {
		return "", err
	}
	if res.i != len(res.ms) {
		return "", fmt.Errorf("eval: renderer consumed %d of %d measurements", res.i, len(res.ms))
	}
	return out, nil
}

// runPlan builds and sequentially executes a plan — the implementation
// behind the package's exported experiment functions (Table2, Fig6, ...),
// which keep their historical sequential semantics.
func runPlan(pf PlanFunc) (string, error) {
	p, err := pf()
	if err != nil {
		return "", err
	}
	return p.Execute(context.Background(), nil)
}
