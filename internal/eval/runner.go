package eval

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mussti/internal/core"
)

// This file is the concurrent measurement runner. Every experiment in this
// package is a fixed set of independent (application, compiler, device)
// measurements followed by pure formatting, so each one decomposes into a
// Plan: an ordered job list plus a renderer over the ordered results. Jobs
// fan out over a bounded worker pool; results keep their enqueue positions,
// so the renderer consumes them in exactly the order the old sequential
// loops produced them and the rendered tables are byte-identical to the
// sequential output at any worker count.
//
// The runner threads its context into every compile (cancellation aborts a
// measurement mid-flight, not just between measurements), dedupes identical
// measurement points across experiments through a shared Memo, and can
// attach per-job progress observers.

// Job is one independent measurement: a registry-resolved Spec, or one of
// the deprecated Mussti/Baseline spec types (converted internally). Exactly
// one of the three is set. Jobs share no mutable state, so any number may
// run concurrently.
type Job struct {
	Spec *CompileSpec
	// Deprecated: Mussti/Baseline are the pre-registry spec types; set Spec
	// in new code.
	Mussti   *MusstiSpec
	Baseline *BaselineSpec
}

// Resolve normalises the job to the unified CompileSpec, whichever spec
// style built it. Wire codecs (internal/dist) serialise the resolved spec,
// so a legacy MusstiSpec/BaselineSpec job crosses process boundaries as the
// same envelope its registry-style equivalent would.
func (j Job) Resolve() (CompileSpec, error) { return j.resolve() }

// resolve normalises the job to the unified CompileSpec, whichever spec
// style built it. Every consumer — execution, cache keys, progress labels —
// goes through this one conversion, so the three spec styles cannot drift.
func (j Job) resolve() (CompileSpec, error) {
	switch {
	case j.Spec != nil:
		return *j.Spec, nil
	case j.Mussti != nil:
		return j.Mussti.spec(), nil
	case j.Baseline != nil:
		return j.Baseline.spec()
	default:
		return CompileSpec{}, fmt.Errorf("eval: empty job")
	}
}

// run executes the measurement this job describes. ctx cancellation aborts
// the compile within one scheduler step.
func (j Job) run(ctx context.Context) (Measurement, error) {
	s, err := j.resolve()
	if err != nil {
		return Measurement{}, err
	}
	return RunSpecContext(ctx, s)
}

// WithObserver returns a copy of the job with obs attached to its compile
// configuration — the seam per-request progress streaming (internal/service)
// hangs on. The cache key is unaffected: Observer is excluded from
// CompileConfig.CacheKey, so an observed request still coalesces with (and
// is served by) unobserved ones.
func (j Job) WithObserver(obs core.Observer) Job { return j.withObserver(obs) }

// withObserver returns a copy of the job with obs attached to its compile
// configuration; the original job (and its spec) stays untouched, so cache
// keys and replans are unaffected. Jobs that fail to resolve are returned
// unchanged — the error surfaces when the job runs.
func (j Job) withObserver(obs core.Observer) Job {
	s, err := j.resolve()
	if err != nil {
		return j
	}
	var cfg core.CompileConfig
	if comp, err := core.LookupCompiler(s.Compiler); err == nil {
		// One owner for the nil-Config resolution rule: CompileSpec.config.
		cfg = s.config(comp)
	} else if s.Config != nil {
		cfg = *s.Config
	}
	cfg.Observer = obs
	s.Config = &cfg
	return Job{Spec: &s}
}

// withParallelism returns a copy of the job whose compile may run up to n
// scheduling passes concurrently (core's intra-compile parallelism). Like
// withObserver it leaves the original job untouched — and the cache key is
// unaffected anyway, since Parallelism is excluded from CacheKey.
func (j Job) withParallelism(n int) Job {
	s, err := j.resolve()
	if err != nil {
		return j
	}
	var cfg core.CompileConfig
	if comp, err := core.LookupCompiler(s.Compiler); err == nil {
		cfg = s.config(comp)
	} else if s.Config != nil {
		cfg = *s.Config
	}
	cfg.Parallelism = n
	s.Config = &cfg
	return Job{Spec: &s}
}

// Plan is a decomposed experiment: the measurement jobs in deterministic
// paper order, and a renderer that turns the ordered results into the
// experiment's text output.
type Plan struct {
	Jobs []Job
	// Render formats the results. Results arrive in job order regardless
	// of execution order; Render must not depend on wall-clock effects.
	Render func(res *Results) (string, error)
	// Serial forces sequential in-place execution even when a Runner is
	// supplied. Set it on experiments whose rendered cells are wall-clock
	// measurements (Fig. 10/11 print CompileTime): concurrent neighbours
	// would contend for CPU and distort the numbers being reported, and a
	// cache hit would report another experiment's timing — so Serial plans
	// also bypass the measurement cache.
	Serial bool
}

// PlanFunc builds an experiment's plan. Building is cheap (no compilation
// happens until the jobs run).
type PlanFunc func() (*Plan, error)

// Results hands measurements back to a renderer in job order. The cursor
// API lets renderers keep the same nested-loop shape as the planners that
// enqueued the jobs.
type Results struct {
	ms []Measurement
	i  int
}

// Next returns the next measurement in job order. It panics if the
// renderer consumes more results than the plan enqueued — a planner/
// renderer mismatch, which is a programming error.
func (r *Results) Next() Measurement {
	if r.i >= len(r.ms) {
		panic("eval: renderer consumed more measurements than planned")
	}
	m := r.ms[r.i]
	r.i++
	return m
}

// Take returns the next n measurements in job order.
func (r *Results) Take(n int) []Measurement {
	out := make([]Measurement, n)
	for i := range out {
		out[i] = r.Next()
	}
	return out
}

// Runner executes job lists over a bounded worker pool. The pool bound is a
// semaphore shared by every Run call on the same Runner, so concurrent
// experiments (the CLI's all-experiments mode) stay within one global
// concurrency budget. Runs on the same Runner also share its measurement
// cache: identical (application, compiler, device config, options) points
// across experiments compile exactly once per process.
type Runner struct {
	workers  int
	sem      chan struct{}
	memo     *Memo
	progress *progressSink
	remote   RemoteExecutor
	// batching, when true (the default), groups same-circuit jobs of a
	// batch-capable compiler through CompileBatch so they share per-circuit
	// prep; see planUnits. Output is byte-identical either way.
	batching bool
	// hook, when set, observes every job completed through the per-job path;
	// see SetJobHook.
	hook func(JobOutcome)
}

// JobOutcome describes one finished measurement call for telemetry sinks —
// the compilation service's latency quantiles and hit-rate counters feed on
// these. It carries outcomes, never results: the measurement itself flows
// through the normal return path.
type JobOutcome struct {
	// Key is the measurement's cache key; empty for uncacheable jobs
	// (traced runs) and for cache-disabled runners.
	Key string
	// Cached reports that the call was served by the memo or disk cache —
	// coalesced onto an in-flight compile, replayed from memory, or read
	// from the shared store — without compiling in this call.
	Cached bool
	// Wall is the wall-clock latency of the whole call, queueing inside the
	// memo included.
	Wall time.Duration
	// Err is the call's error, nil on success (cancellation included).
	Err error
}

// SetJobHook registers fn to observe every job completed through the
// runner's per-job path: RunJob, RunKeyed, and each singleton unit Run and
// RunJobs execute. (Members of a grouped batch unit do not report — the
// experiment CLI's bulk sweeps are not service traffic.) fn is called
// synchronously from worker goroutines, so it must be cheap and safe for
// concurrent use. Call it before the runner sees traffic.
func (r *Runner) SetJobHook(fn func(JobOutcome)) { r.hook = fn }

// RemoteExecutor dispatches one job to an external execution substrate — a
// fleet of worker processes (internal/dist), a remote service, anything that
// can turn a Job into its Measurement. The runner keeps every scheduling
// responsibility (worker pool bound, deterministic first-error semantics,
// paper-order reassembly, memoization); the executor is pure transport, so
// rendered output stays byte-identical to in-process execution.
//
// RunJob must honour ctx cancellation promptly and must be safe for
// concurrent calls up to the runner's worker count.
type RemoteExecutor interface {
	RunJob(ctx context.Context, j Job) (Measurement, error)
}

// PipelinedExecutor is a RemoteExecutor that absorbs more than one job per
// transport endpoint — a dist coordinator keeping a window of envelopes in
// flight per worker. Capacity reports how many concurrent RunJob calls the
// executor can hold in flight (workers × pipeline window); SetRemote widens
// the runner's pool to match, so every window stays full instead of the
// pool bound throttling dispatch to one job per worker.
type PipelinedExecutor interface {
	RemoteExecutor
	// Capacity is the number of concurrent RunJob calls the executor absorbs
	// without queueing.
	Capacity() int
}

// NewRunner returns a runner with the given concurrency; workers <= 0 means
// runtime.GOMAXPROCS(0). The cross-experiment measurement cache starts
// enabled; DisableCache turns it off. A nil *Runner is valid everywhere one
// is accepted and means strictly sequential, uncached in-place execution.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sem: make(chan struct{}, workers), memo: NewMemo(), batching: true}
}

// Workers reports the pool size.
func (r *Runner) Workers() int {
	if r == nil {
		return 1
	}
	return r.workers
}

// DisableCache turns the cross-experiment measurement cache off: every job
// compiles from scratch. Rendered output is byte-identical either way; only
// the work performed changes.
func (r *Runner) DisableCache() { r.memo = nil }

// DisableBatching turns off same-circuit job grouping: every job compiles
// through the per-job path with its own prep, as before batch compilation
// existed. Rendered output is byte-identical either way; only the work
// performed changes.
func (r *Runner) DisableBatching() { r.batching = false }

// CacheStats reports the measurement cache's hit and miss counters (misses
// are actual compilations). Zeros when the cache is disabled or the runner
// is nil.
func (r *Runner) CacheStats() (hits, misses int64) {
	if r == nil || r.memo == nil {
		return 0, 0
	}
	return r.memo.Stats()
}

// SetProgress attaches a progress sink: every job run on this runner emits
// throttled per-job tick lines (gates scheduled, shuttles, evictions) to w.
// Call it before Run; w must tolerate concurrent jobs' interleaved lines
// (the sink serialises writes).
func (r *Runner) SetProgress(w io.Writer) { r.progress = newProgressSink(w) }

// SetRemote routes job execution through x: the runner still schedules,
// memoizes, reassembles and reports exactly as before, but the compile
// itself happens wherever x dispatches it (a spawned worker process fleet
// via internal/dist, typically). Call it before Run. Per-step progress ticks
// cannot cross a process boundary, so with a remote set the progress sink
// reports job completions only.
//
// A PipelinedExecutor widens the pool to its capacity: with dispatch
// pipelined, the number of jobs profitably in flight is workers × window,
// not the local core count — the compiles happen in other processes, and a
// narrower pool would leave windows idle.
func (r *Runner) SetRemote(x RemoteExecutor) {
	r.remote = x
	if p, ok := x.(PipelinedExecutor); ok {
		if c := p.Capacity(); c > r.workers {
			r.workers = c
			r.sem = make(chan struct{}, c)
		}
	}
}

// SetDiskCache backs the runner's measurement cache with a shared on-disk
// store: cache misses consult dir before compiling, and every compiled
// measurement is persisted for other processes (and later runs) to reuse.
// The disk layer rides the in-memory memo, so DisableCache also disables it.
func (r *Runner) SetDiskCache(d *DiskCache) {
	if r.memo != nil {
		r.memo.SetDisk(d)
	}
}

// DiskCacheStats reports the on-disk cache's hit and miss counters; zeros
// when no disk cache is attached.
func (r *Runner) DiskCacheStats() (hits, misses int64) {
	if r == nil || r.memo == nil || r.memo.disk == nil {
		return 0, 0
	}
	return r.memo.disk.Stats()
}

// RunJob executes one job with the runner's cache, progress and remote
// layers applied — the same path Run drives for every planned job, exposed
// so distributed workers (internal/dist) execute received jobs with
// identical semantics: context cancellation, observer ticks and memoization
// intact. A nil runner executes the job bare.
func (r *Runner) RunJob(ctx context.Context, j Job) (Measurement, error) {
	if r == nil {
		return j.run(ctx)
	}
	return r.runJob(ctx, j)
}

// runJob executes one job with the runner's cache and progress layers
// applied.
func (r *Runner) runJob(ctx context.Context, j Job) (Measurement, error) {
	return r.runJobN(ctx, j, 1)
}

// RunJobs executes a job list on the calling goroutine, returning every
// member's measurement and error positionally — unlike Run, no job's
// failure aborts its neighbours. It is the execution path for coalesced
// wire batches: a distributed worker (internal/dist) receives several jobs
// in one envelope and must answer each individually. Same-circuit members
// group through the shared-prep batch path exactly as Run would group them,
// behind the same memo and disk-cache layers; if a batch unit fails as a
// whole, its members re-run individually so each reports its own error. A
// nil runner executes the jobs bare, in order.
func (r *Runner) RunJobs(ctx context.Context, jobs []Job) ([]Measurement, []error) {
	ms := make([]Measurement, len(jobs))
	errs := make([]error, len(jobs))
	if r == nil {
		for i, j := range jobs {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			ms[i], errs[i] = j.run(ctx)
		}
		return ms, errs
	}
	var done atomic.Int64
	units := r.planUnits(jobs)
	for u, unit := range units {
		// The semaphore bounds this runner's global concurrency budget; one
		// slot per unit, exactly as Run's workers claim it. Cancellation
		// while waiting fails every remaining unit — ctx stays done.
		select {
		case r.sem <- struct{}{}:
		case <-ctx.Done():
			for _, rest := range units[u:] {
				for _, i := range rest {
					errs[i] = ctx.Err()
				}
			}
			return ms, errs
		}
		if len(unit) == 1 {
			i := unit[0]
			extra := 0
			if r.remote == nil && parallelizable(jobs[i]) {
				extra = r.borrowSlots(1)
			}
			ms[i], errs[i] = r.runJobN(ctx, jobs[i], 1+extra)
			r.releaseSlots(extra)
		} else {
			extra := r.borrowSlots(len(unit) - 1)
			if err := r.runBatchUnit(ctx, jobs, unit, 1+extra, ms, &done); err != nil {
				// The unit failed as a whole (first-member attribution); fall
				// back to per-job execution so every member reports its own
				// result or error. Members the batch already computed hit the
				// memo and cost nothing.
				for _, i := range unit {
					ms[i], errs[i] = r.runJob(ctx, jobs[i])
				}
			}
			r.releaseSlots(extra)
		}
		<-r.sem
	}
	return ms, errs
}

// runJobN is runJob with an intra-compile parallelism bound: parallelism is
// how many semaphore slots the caller holds for this job (1 plus any
// borrowed), which caps how many scheduling passes the compile may run
// concurrently — so boosted compiles never oversubscribe the pool.
func (r *Runner) runJobN(ctx context.Context, j Job, parallelism int) (Measurement, error) {
	var prog *jobProgress
	exec := j
	if parallelism > 1 && r.remote == nil {
		exec = exec.withParallelism(parallelism)
	}
	if r.progress != nil {
		prog = r.progress.job(j.label())
		if r.remote == nil {
			// Observers cannot cross a process boundary; remotely executed
			// jobs report completion ticks only.
			exec = exec.withObserver(prog)
		}
	}
	run := exec.run
	if r.remote != nil {
		run = func(ctx context.Context) (Measurement, error) { return r.remote.RunJob(ctx, j) }
	}
	var start time.Time
	if r.hook != nil {
		start = time.Now() //mussti:allow=determinism job-latency telemetry for the hook, never measured output
	}
	var m Measurement
	var err error
	compiled := true
	key, cacheable := j.cacheKey()
	if cacheable && r.memo != nil {
		compiled = false
		m, err = r.memo.Do(ctx, key, func() (Measurement, error) {
			compiled = true
			return run(ctx)
		})
	} else {
		key = ""
		m, err = run(ctx)
	}
	if prog != nil && err == nil {
		prog.finish(!compiled)
	}
	if r.hook != nil {
		r.hook(JobOutcome{Key: key, Cached: !compiled, Wall: time.Since(start), Err: err}) //mussti:allow=determinism job-latency telemetry for the hook, never measured output
	}
	return m, err
}

// RunKeyed executes fn through the runner's singleflight memo and disk-cache
// layers under an explicit cache key — the seam for measurements that are
// not registry Jobs (the compilation service's ad-hoc QASM circuits, keyed
// by a content hash). Concurrent RunKeyed calls sharing a key coalesce onto
// one compute exactly like jobs sharing a cache key, and a successful result
// persists to any attached disk cache under key. Like RunJob it claims no
// worker-pool slot: admission is the caller's responsibility. A nil runner,
// a disabled cache or an empty key runs fn directly.
func (r *Runner) RunKeyed(ctx context.Context, key string, fn func(context.Context) (Measurement, error)) (Measurement, error) {
	if r == nil {
		return fn(ctx)
	}
	var start time.Time
	if r.hook != nil {
		start = time.Now() //mussti:allow=determinism job-latency telemetry for the hook, never measured output
	}
	var m Measurement
	var err error
	compiled := true
	if r.memo != nil && key != "" {
		compiled = false
		m, err = r.memo.Do(ctx, key, func() (Measurement, error) {
			compiled = true
			return fn(ctx)
		})
	} else {
		m, err = fn(ctx)
	}
	if r.hook != nil {
		r.hook(JobOutcome{Key: key, Cached: !compiled, Wall: time.Since(start), Err: err}) //mussti:allow=determinism job-latency telemetry for the hook, never measured output
	}
	return m, err
}

// Run executes all jobs and returns their measurements in job order. On
// failure it cancels the rest of the run — aborting in-flight compiles and
// skipping unclaimed jobs — and returns the error of the lowest-indexed job
// that reported a real failure. (Unlike PR 1's between-jobs cancellation, a
// lower-indexed in-flight job may now be interrupted before its own failure
// surfaces, so on multi-failure runs the reported error can differ from the
// strictly sequential one; successful runs are unaffected.) A cancelled ctx
// aborts promptly — in-flight compiles stop within one scheduler step — and
// surfaces ctx.Err().
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Measurement, error) {
	if r == nil {
		return runSequential(ctx, jobs)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ms := make([]Measurement, len(jobs))
	errs := make([]error, len(jobs)) // only real job errors; cancellations stay nil
	units := r.planUnits(jobs)
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(r.workers, len(units)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Checked before the select: with both channels ready,
				// select picks arbitrarily, and cancellation must win.
				if ctx.Err() != nil {
					return
				}
				// The semaphore is shared by every Run call on this
				// Runner, holding concurrent experiments to one global
				// concurrency budget.
				select {
				case <-ctx.Done():
					return
				case r.sem <- struct{}{}:
				}
				u := int(next.Add(1)) - 1
				if u >= len(units) {
					<-r.sem
					return
				}
				unit := units[u]
				if len(unit) == 1 {
					i := unit[0]
					// A lone SABRE compile can use one idle slot for its
					// trivial-candidate pass — free speedup when the pool
					// has spare capacity, strictly bounded when it doesn't.
					extra := 0
					if r.remote == nil && parallelizable(jobs[i]) {
						extra = r.borrowSlots(1)
					}
					m, err := r.runJobN(ctx, jobs[i], 1+extra)
					r.releaseSlots(extra)
					switch {
					case err == nil:
						ms[i] = m
						done.Add(1)
					case ctx.Err() != nil && errors.Is(err, ctx.Err()):
						// The compile was interrupted by cancellation, not by
						// a failure of its own; the final ctx.Err() return
						// covers it.
					default:
						errs[i] = err
						cancel() // abort in-flight jobs, skip unclaimed ones
					}
				} else {
					// A batch unit holds this slot plus whatever is idle
					// right now, so its internal worker group exactly fills
					// the capacity it owns.
					extra := r.borrowSlots(len(unit) - 1)
					err := r.runBatchUnit(ctx, jobs, unit, 1+extra, ms, &done)
					r.releaseSlots(extra)
					switch {
					case err == nil:
					case ctx.Err() != nil && errors.Is(err, ctx.Err()):
					default:
						errs[unit[0]] = err
						cancel()
					}
				}
				<-r.sem
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if int(done.Load()) < len(jobs) {
		// Only a cancelled ctx can leave jobs unfinished without an error.
		return nil, ctx.Err()
	}
	return ms, nil
}

// runSequential is the nil-Runner path: jobs run in order on the calling
// goroutine, exactly like the pre-runner harness (uncached, unobserved —
// ctx still interrupts a compile mid-flight).
func runSequential(ctx context.Context, jobs []Job) ([]Measurement, error) {
	ms := make([]Measurement, len(jobs))
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, err := j.run(ctx)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

// Execute runs the plan's jobs on r (nil = sequential) and renders the
// results.
func (p *Plan) Execute(ctx context.Context, r *Runner) (string, error) {
	out, _, err := p.ExecuteCollect(ctx, r)
	return out, err
}

// ExecuteCollect is Execute, additionally returning the structured
// measurements in job order — the rows behind the rendered text, for sinks
// (CSV export) that want data instead of scraped tables. A renderer that
// consumes fewer measurements than the plan enqueued is an error — the
// planner/renderer loops have drifted apart and the rendered columns can no
// longer be trusted (over-consumption panics in Results.Next).
func (p *Plan) ExecuteCollect(ctx context.Context, r *Runner) (string, []Measurement, error) {
	if p.Serial {
		r = nil
	}
	ms, err := r.Run(ctx, p.Jobs)
	if err != nil {
		return "", nil, err
	}
	res := &Results{ms: ms}
	out, err := p.Render(res)
	if err != nil {
		return "", nil, err
	}
	if res.i != len(res.ms) {
		return "", nil, fmt.Errorf("eval: renderer consumed %d of %d measurements", res.i, len(res.ms))
	}
	return out, ms, nil
}

// runPlan builds and sequentially executes a plan — the implementation
// behind the package's exported experiment functions (Table2, Fig6, ...),
// which keep their historical sequential semantics.
func runPlan(pf PlanFunc) (string, error) {
	p, err := pf()
	if err != nil {
		return "", err
	}
	return p.Execute(context.Background(), nil)
}
