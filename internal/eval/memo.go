package eval

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// This file is the cross-experiment measurement cache. Every experiment is
// a bag of deterministic (application, compiler, device config, options)
// points, and several experiments sweep overlapping points: table2 and the
// fig6 small scale share their whole grid-2x2 columns, fig7/fig12 revisit
// default-capacity cells, and the -all CLI mode runs all of them in one
// process. A Memo keys each point by its full configuration and runs it
// exactly once, singleflight-style: concurrent requests for an in-flight
// key wait for the leader instead of compiling again.
//
// Caching is safe because measurements are deterministic functions of
// their spec — the only nondeterministic field, CompileTime, is never
// rendered by a cached experiment (the wall-clock experiments fig10/fig11
// are Serial and bypass the runner, hence the cache).

// Memo is a concurrency-safe, singleflight measurement cache shared by all
// experiments running in one process. The zero value is not usable; call
// NewMemo.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// memoEntry is one cached (or in-flight) measurement. done closes when the
// leader finishes; retry marks a leader that was cancelled mid-compile, so
// waiters re-claim the key instead of caching a context error.
type memoEntry struct {
	done  chan struct{}
	m     Measurement
	err   error
	retry bool
}

// NewMemo returns an empty measurement cache.
func NewMemo() *Memo {
	return &Memo{entries: make(map[string]*memoEntry)}
}

// Stats reports how many measurements were served from cache (hits —
// including waiters coalesced onto an in-flight compile) and how many were
// actually compiled (misses).
func (mo *Memo) Stats() (hits, misses int64) {
	return mo.hits.Load(), mo.misses.Load()
}

// Do returns the measurement for key, computing it with fn at most once per
// key across all concurrent callers. Real errors (bad app names, compiler
// invariant failures) are cached like results; context cancellation is not:
// a cancelled leader's entry is discarded so a later caller with a live
// context retries, and waiters whose own ctx dies stop waiting.
func (mo *Memo) Do(ctx context.Context, key string, fn func() (Measurement, error)) (Measurement, error) {
	for {
		mo.mu.Lock()
		if e, ok := mo.entries[key]; ok {
			mo.mu.Unlock()
			select {
			case <-ctx.Done():
				return Measurement{}, ctx.Err()
			case <-e.done:
			}
			if e.retry {
				continue // leader was cancelled; re-claim the key
			}
			mo.hits.Add(1)
			return e.m, e.err
		}
		e := &memoEntry{done: make(chan struct{})}
		mo.entries[key] = e
		mo.mu.Unlock()

		m, err := fn()
		if err != nil && errors.Is(err, ctx.Err()) {
			// Cancelled mid-compile: the measurement never happened, so
			// leave nothing behind but this leader's context error.
			mo.mu.Lock()
			delete(mo.entries, key)
			mo.mu.Unlock()
			e.retry = true
			close(e.done)
			return Measurement{}, err
		}
		mo.misses.Add(1)
		e.m, e.err = m, err
		close(e.done)
		return m, err
	}
}

// cacheKey renders a Job's full configuration as a deterministic string
// key, or ok=false when the job must not be cached (trace-recording runs,
// jobs that fail to resolve). All three spec styles normalise to the unified
// CompileSpec first, so a legacy MusstiSpec job and a registry CompileSpec
// job describing the same point share one cache entry.
func (j Job) cacheKey() (key string, ok bool) {
	s, err := j.resolve()
	if err != nil {
		return "", false
	}
	return s.cacheKey()
}

// cacheKey is `compiler|app|target|config`, each part rendered
// deterministically (see arch.Target.CacheKey and CompileConfig.CacheKey),
// so keys are stable across processes — the property a shared or remote
// measurement cache needs. The Observer is excluded by CompileConfig.CacheKey:
// observation never changes a measurement.
func (s CompileSpec) cacheKey() (key string, ok bool) {
	comp, err := core.LookupCompiler(s.Compiler)
	if err != nil {
		return "", false
	}
	cfg := s.config(comp)
	if cfg.Trace {
		return "", false
	}
	target := ""
	if s.Grid != nil {
		target = s.Grid.CacheKey()
	} else {
		// A zero Arch resolves to arch.DefaultConfig(qubits), and the qubit
		// count is a function of App — so keying the literal Arch config is
		// sound. An Arch explicitly spelled as that same default normalises
		// to the zero form first, so e.g. fig7's capacity-16 point and a
		// zero-Arch default point of the same app share one cache entry
		// (they are the identical measurement).
		a := s.Arch
		if a != (arch.Config{}) {
			if c, err := bench.ByName(s.App); err == nil && a == arch.DefaultConfig(c.NumQubits) {
				a = arch.Config{}
			}
		}
		target = a.CacheKey()
	}
	return fmt.Sprintf("%s|%s|%s|%s", s.Compiler, s.App, target, cfg.CacheKey()), true
}
