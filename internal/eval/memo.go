package eval

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mussti/internal/arch"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// This file is the cross-experiment measurement cache. Every experiment is
// a bag of deterministic (application, compiler, device config, options)
// points, and several experiments sweep overlapping points: table2 and the
// fig6 small scale share their whole grid-2x2 columns, fig7/fig12 revisit
// default-capacity cells, and the -all CLI mode runs all of them in one
// process. A Memo keys each point by its full configuration and runs it
// exactly once, singleflight-style: concurrent requests for an in-flight
// key wait for the leader instead of compiling again.
//
// Caching is safe because measurements are deterministic functions of
// their spec — the only nondeterministic field, CompileTime, is never
// rendered by a cached experiment (the wall-clock experiments fig10/fig11
// are Serial and bypass the runner, hence the cache).

// Memo is a concurrency-safe, singleflight measurement cache shared by all
// experiments running in one process. The zero value is not usable; call
// NewMemo.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
	// disk, when set, backs the in-memory entries with a store shared
	// across processes: leaders consult it before computing and persist
	// what they compute. See SetDisk.
	disk *DiskCache

	hits   atomic.Int64
	misses atomic.Int64
}

// memoEntry is one cached (or in-flight) measurement. done closes when the
// leader finishes; retry marks a leader that was cancelled mid-compile, so
// waiters re-claim the key instead of caching a context error.
type memoEntry struct {
	done  chan struct{}
	m     Measurement
	err   error
	retry bool
}

// NewMemo returns an empty measurement cache.
func NewMemo() *Memo {
	return &Memo{entries: make(map[string]*memoEntry)}
}

// Stats reports how many measurements were served from cache (hits —
// including waiters coalesced onto an in-flight compile) and how many were
// actually compiled (misses).
func (mo *Memo) Stats() (hits, misses int64) {
	return mo.hits.Load(), mo.misses.Load()
}

// SetDisk attaches a shared on-disk store behind the in-memory cache: a
// leader claiming a key reads the store before computing, and persists the
// measurement after a successful compute. The singleflight layer stays in
// front, so within one process each key touches the disk at most once per
// outcome; across processes the store's atomic writes keep entries intact.
// Call it before the memo sees traffic. Real errors are cached in memory
// only — an error is this process's outcome, not a fleet-wide fact.
func (mo *Memo) SetDisk(d *DiskCache) { mo.disk = d }

// Do returns the measurement for key, computing it with fn at most once per
// key across all concurrent callers. Real errors (bad app names, compiler
// invariant failures) are cached like results; context cancellation is not:
// a cancelled leader's entry is discarded so a later caller with a live
// context retries, and waiters whose own ctx dies stop waiting.
func (mo *Memo) Do(ctx context.Context, key string, fn func() (Measurement, error)) (Measurement, error) {
	for {
		mo.mu.Lock()
		if e, ok := mo.entries[key]; ok {
			mo.mu.Unlock()
			select {
			case <-ctx.Done():
				return Measurement{}, ctx.Err()
			case <-e.done:
			}
			if e.retry {
				continue // leader was cancelled; re-claim the key
			}
			mo.hits.Add(1)
			return e.m, e.err
		}
		e := &memoEntry{done: make(chan struct{})}
		mo.entries[key] = e
		mo.mu.Unlock()

		if mo.disk != nil {
			if m, ok := mo.disk.Get(key); ok {
				// Served from the shared store without compiling; the disk
				// cache's own counters record it (memo hits/misses count
				// in-process coalescing and compilations respectively).
				e.m = m
				close(e.done)
				return m, nil
			}
		}
		m, err := fn()
		if err != nil && errors.Is(err, ctx.Err()) {
			// Cancelled mid-compile: the measurement never happened, so
			// leave nothing behind but this leader's context error.
			mo.mu.Lock()
			delete(mo.entries, key)
			mo.mu.Unlock()
			e.retry = true
			close(e.done)
			return Measurement{}, err
		}
		mo.misses.Add(1)
		e.m, e.err = m, err
		close(e.done)
		if err == nil && mo.disk != nil {
			// Best-effort persistence: a full disk or unwritable directory
			// degrades the store to pass-through, never fails the run.
			_ = mo.disk.Put(key, m)
		}
		return m, err
	}
}

// DoBatch is Do over a group of keys whose measurements can be computed
// together (one CompileBatch over same-circuit variants). It claims every
// key not already cached or in flight, consults the disk store per claimed
// key, computes the rest in one batch(need) call (need holds indices into
// keys), and returns the measurements in key order. Members whose keys were
// already claimed — by another goroutine, or by a duplicate earlier in this
// very batch — coalesce through Do's wait/retry path with the single-member
// fallback one(i), so they inherit its cancellation and retry semantics.
//
// A failed batch releases its claimed keys instead of caching the group
// error under each of them: a later caller retries each point individually
// and surfaces its own precise outcome.
func (mo *Memo) DoBatch(ctx context.Context, keys []string, batch func(need []int) ([]Measurement, error), one func(i int) (Measurement, error)) ([]Measurement, error) {
	out := make([]Measurement, len(keys))
	leads := make([]*memoEntry, len(keys)) // non-nil where this call leads the key
	var waiters, need []int
	mo.mu.Lock()
	for i, key := range keys {
		if _, ok := mo.entries[key]; ok {
			waiters = append(waiters, i)
			continue
		}
		e := &memoEntry{done: make(chan struct{})}
		mo.entries[key] = e
		leads[i] = e
	}
	mo.mu.Unlock()

	for i, e := range leads {
		if e == nil {
			continue
		}
		if mo.disk != nil {
			if m, ok := mo.disk.Get(keys[i]); ok {
				e.m = m
				close(e.done)
				out[i] = m
				continue
			}
		}
		need = append(need, i)
	}

	if len(need) > 0 {
		ms, err := batch(need)
		if err != nil {
			mo.mu.Lock()
			for _, i := range need {
				delete(mo.entries, keys[i])
			}
			mo.mu.Unlock()
			for _, i := range need {
				leads[i].retry = true
				close(leads[i].done)
			}
			return nil, err
		}
		for x, i := range need {
			mo.misses.Add(1)
			e := leads[i]
			e.m = ms[x]
			close(e.done)
			out[i] = ms[x]
			if mo.disk != nil {
				_ = mo.disk.Put(keys[i], ms[x])
			}
		}
	}

	// Every entry this call leads is closed by now, so waiting on other
	// leaders cannot deadlock against us.
	for _, i := range waiters {
		i := i
		m, err := mo.Do(ctx, keys[i], func() (Measurement, error) { return one(i) })
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// cacheKey renders a Job's full configuration as a deterministic string
// key, or ok=false when the job must not be cached (trace-recording runs,
// jobs that fail to resolve). All three spec styles normalise to the unified
// CompileSpec first, so a legacy MusstiSpec job and a registry CompileSpec
// job describing the same point share one cache entry.
func (j Job) cacheKey() (key string, ok bool) {
	s, err := j.resolve()
	if err != nil {
		return "", false
	}
	return s.CacheKey()
}

// CacheKey is `compiler|app|target|config`, each part rendered
// deterministically (see arch.Target.CacheKey and CompileConfig.CacheKey),
// so keys are stable across processes — the property the shared on-disk
// cache and the distributed wire codec (internal/dist) both build on: a
// job envelope round-trips losslessly exactly when the decoded spec
// reproduces this key. ok=false marks specs that must not be cached
// (trace-recording runs, unknown compilers). The Observer is excluded by
// CompileConfig.CacheKey: observation never changes a measurement.
func (s CompileSpec) CacheKey() (key string, ok bool) {
	comp, err := core.LookupCompiler(s.Compiler)
	if err != nil {
		return "", false
	}
	cfg := s.config(comp)
	if cfg.Trace {
		return "", false
	}
	target := ""
	if s.Grid != nil {
		target = s.Grid.CacheKey()
	} else {
		// A zero Arch resolves to arch.DefaultConfig(qubits), and the qubit
		// count is a function of App — so keying the literal Arch config is
		// sound. An Arch explicitly spelled as that same default normalises
		// to the zero form first, so e.g. fig7's capacity-16 point and a
		// zero-Arch default point of the same app share one cache entry
		// (they are the identical measurement).
		a := s.Arch
		if a != (arch.Config{}) {
			if c, err := bench.ByName(s.App); err == nil && a == arch.DefaultConfig(c.NumQubits) {
				a = arch.Config{}
			}
		}
		target = a.CacheKey()
	}
	return fmt.Sprintf("%s|%s|%s|%s", s.Compiler, s.App, target, cfg.CacheKey()), true
}
