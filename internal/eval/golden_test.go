package eval

import (
	"context"
	"testing"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
)

// TestWrapperRegistryByteIdentical is the migration contract of the
// compiler registry: table2 rendered through the registry path (CompileSpec
// jobs resolved via LookupCompiler) is byte-identical to the same table
// computed through the deprecated wrapper API (core.Compile /
// baseline.Compile with the pre-registry Options types).
func TestWrapperRegistryByteIdentical(t *testing.T) {
	p, err := table2Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, ms, err := p.ExecuteCollect(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Recompute every cell through the deprecated wrappers, in the plan's
	// job order, filling exactly the fields the renderer reads.
	var manual []Measurement
	for _, st := range table2Structures {
		g := arch.MustNewGrid(st.Rows, st.Cols, st.Capacity)
		for _, app := range bench.SmallSuite() {
			c, err := bench.ByName(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range []baseline.Algorithm{baseline.Murali, baseline.Dai, baseline.MQT} {
				res, err := baseline.Compile(algo, c, g, baseline.Options{})
				if err != nil {
					t.Fatalf("%s/%s: %v", app, algo, err)
				}
				manual = append(manual, Measurement{
					Shuttles: res.Metrics.Shuttles,
					TimeUS:   res.Metrics.MakespanUS,
					Log10F:   res.Metrics.Fidelity.Log10(),
				})
			}
			res, err := core.Compile(c, g.Device(), core.DefaultOptions())
			if err != nil {
				t.Fatalf("%s/mussti: %v", app, err)
			}
			manual = append(manual, Measurement{
				Shuttles: res.Metrics.Shuttles,
				TimeUS:   res.Metrics.MakespanUS,
				Log10F:   res.Metrics.Fidelity.Log10(),
			})
		}
	}
	if len(manual) != len(ms) {
		t.Fatalf("wrapper path produced %d measurements, registry plan %d", len(manual), len(ms))
	}
	viaWrappers, err := p.Render(&Results{ms: manual})
	if err != nil {
		t.Fatal(err)
	}
	if viaRegistry != viaWrappers {
		t.Errorf("registry and deprecated-wrapper table2 differ:\n--- registry ---\n%s--- wrappers ---\n%s",
			viaRegistry, viaWrappers)
	}
}

// TestLegacySpecsShareRegistryCacheKeys: a legacy MusstiSpec/BaselineSpec
// job and the CompileSpec job describing the same point must share one cache
// key, so experiments written against either API style dedupe against each
// other in the measurement cache.
func TestLegacySpecsShareRegistryCacheKeys(t *testing.T) {
	opts := core.DefaultOptions()
	pairs := []struct {
		name             string
		legacy, registry Job
	}{
		{
			name:     "mussti-eml",
			legacy:   Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: opts}},
			registry: Job{Spec: &CompileSpec{App: "GHZ_n32", Compiler: "mussti"}},
		},
		{
			name:     "mussti-grid",
			legacy:   Job{Mussti: &MusstiSpec{App: "GHZ_n32", Grid: arch.MustNewGrid(2, 2, 12), Opts: opts}},
			registry: Job{Spec: &CompileSpec{App: "GHZ_n32", Compiler: "mussti", Grid: arch.MustNewGrid(2, 2, 12)}},
		},
		{
			name:     "baseline-dai",
			legacy:   Job{Baseline: &BaselineSpec{App: "GHZ_n32", Algorithm: baseline.Dai, Rows: 2, Cols: 3, Capacity: 8}},
			registry: Job{Spec: &CompileSpec{App: "GHZ_n32", Compiler: "dai", Grid: arch.MustNewGrid(2, 3, 8)}},
		},
	}
	for _, p := range pairs {
		lk, ok1 := p.legacy.cacheKey()
		rk, ok2 := p.registry.cacheKey()
		if !ok1 || !ok2 {
			t.Errorf("%s: uncacheable (legacy %v, registry %v)", p.name, ok1, ok2)
			continue
		}
		if lk != rk {
			t.Errorf("%s: keys differ across API styles:\nlegacy:   %s\nregistry: %s", p.name, lk, rk)
		}
	}
}

// TestCacheKeysStableAcrossProcesses pins the cache-key format to literal
// strings. Keys contain no pointers, maps or other per-process state, so a
// key computed in one process matches the same spec's key in another — the
// property a shared or remote measurement cache (ROADMAP) depends on. If
// this test fails because the format changed deliberately, bump the format
// knowingly: persisted caches invalidate.
func TestCacheKeysStableAcrossProcesses(t *testing.T) {
	const physDefault = "phys{SplitTimeUS:80 MergeTimeUS:80 SwapTimeUS:40 MoveSpeedUMUS:2 " +
		"Gate1TimeUS:5 Gate2TimeUS:40 FiberTimeUS:200 SplitHeat:1 MoveHeat:0.1 SwapHeat:0.3 " +
		"MergeHeat:1 T1US:6e+08 HeatingRate:0.001 Gate1Fidelity:0.9999 Epsilon:3.90625e-05 " +
		"FiberFidelity:0.99 PerfectShuttle:false PerfectGates:false}"
	const physZero = "phys{SplitTimeUS:0 MergeTimeUS:0 SwapTimeUS:0 MoveSpeedUMUS:0 " +
		"Gate1TimeUS:0 Gate2TimeUS:0 FiberTimeUS:0 SplitHeat:0 MoveHeat:0 SwapHeat:0 " +
		"MergeHeat:0 T1US:0 HeatingRate:0 Gate1Fidelity:0 Epsilon:0 FiberFidelity:0 " +
		"PerfectShuttle:false PerfectGates:false}"
	cases := []struct {
		job  Job
		want string
	}{
		{
			job: Job{Spec: &CompileSpec{App: "GHZ_n32", Compiler: "mussti"}},
			want: "mussti|GHZ_n32|emlcfg{Modules:0 TrapCapacity:0 StorageZones:0 OperationZones:0 " +
				"OpticalZones:0 OpticalCapacity:0 MaxIonsPerModule:0 ZonePitchUM:0}|" +
				"map=1 swap=true k=8 T=4 repl=0 nolook=false trace=false|" + physDefault,
		},
		{
			job: Job{Spec: &CompileSpec{App: "GHZ_n32", Compiler: "dai", Grid: arch.MustNewGrid(2, 2, 12)}},
			want: "dai|GHZ_n32|grid{2x2 cap=12 pitch=100}|" +
				"map=0 swap=false k=0 T=0 repl=0 nolook=false trace=false|" + physZero,
		},
	}
	for i, c := range cases {
		got, ok := c.job.cacheKey()
		if !ok {
			t.Fatalf("case %d: not cacheable", i)
		}
		if got != c.want {
			t.Errorf("case %d: key drifted from the pinned format:\ngot  %s\nwant %s", i, got, c.want)
		}
	}
}

// TestExplicitDefaultArchSharesKey: an Arch explicitly spelled as the app's
// paper default (fig7's capacity-16 point) and the zero Arch resolve to the
// same machine, so they must share one cache entry — the cross-experiment
// dedup for the heaviest points in the suite.
func TestExplicitDefaultArchSharesKey(t *testing.T) {
	c, err := bench.ByName("GHZ_n128")
	if err != nil {
		t.Fatal(err)
	}
	explicit := arch.DefaultConfig(c.NumQubits)
	explicit.TrapCapacity = 16 // spelled out, but identical to the default
	k1, ok1 := Job{Spec: &CompileSpec{App: "GHZ_n128", Compiler: "mussti", Arch: explicit}}.cacheKey()
	k2, ok2 := Job{Spec: &CompileSpec{App: "GHZ_n128", Compiler: "mussti"}}.cacheKey()
	if !ok1 || !ok2 {
		t.Fatalf("uncacheable (%v, %v)", ok1, ok2)
	}
	if k1 != k2 {
		t.Errorf("explicit default Arch and zero Arch keyed differently:\n%s\n%s", k1, k2)
	}
	// A genuinely different config must still get its own key.
	other := arch.DefaultConfig(c.NumQubits)
	other.TrapCapacity = 12
	k3, _ := Job{Spec: &CompileSpec{App: "GHZ_n128", Compiler: "mussti", Arch: other}}.cacheKey()
	if k3 == k2 {
		t.Errorf("non-default Arch collided with the default key %s", k3)
	}
}
