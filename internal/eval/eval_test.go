package eval

import (
	"strings"
	"testing"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/core"
)

func TestRunMusstiOnEML(t *testing.T) {
	m, err := RunMussti(MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if m.App != "GHZ_n32" || m.Compiler != "MUSS-TI" {
		t.Errorf("labels = %q/%q", m.App, m.Compiler)
	}
	if m.Qubits != 32 || m.TwoQubit != 31 {
		t.Errorf("qubits/2q = %d/%d", m.Qubits, m.TwoQubit)
	}
	if m.TimeUS <= 0 || m.Log10F >= 0 || m.CompileTime <= 0 {
		t.Errorf("degenerate measurement %+v", m)
	}
}

func TestRunMusstiOnGrid(t *testing.T) {
	m, err := RunMussti(MusstiSpec{
		App:  "GHZ_n32",
		Grid: arch.MustNewGrid(2, 2, 12),
		Opts: core.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FiberGates != 0 {
		t.Error("grid run produced fiber gates")
	}
}

func TestRunMusstiBadApp(t *testing.T) {
	if _, err := RunMussti(MusstiSpec{App: "Nope_n12"}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunBaseline(t *testing.T) {
	m, err := RunBaseline(BaselineSpec{
		App: "BV_n32", Algorithm: baseline.Dai, Rows: 2, Cols: 2, Capacity: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Compiler != "QCCD-Dai" {
		t.Errorf("compiler label = %q", m.Compiler)
	}
}

func TestRunBaselineBadGrid(t *testing.T) {
	if _, err := RunBaseline(BaselineSpec{App: "BV_n32", Rows: 0, Cols: 2, Capacity: 12}); err == nil {
		t.Error("bad grid accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "BB")
	tb.Add("x", 12)
	tb.Add("longer", 3.5)
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "longer") {
		t.Errorf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5",
		1234.25: "1234.25",
		1e-9:    "1.0e-09",
		2.5e7:   "25000000",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFormatLog10F(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{-0.1, "0.7943"},
		{-5, "1.0e-05"},
		{-100, "1.0e-100"},
		{-500, "1e-500"},
	}
	for _, c := range cases {
		if got := FormatLog10F(c.in); got != c.want {
			t.Errorf("FormatLog10F(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 9 {
		t.Fatalf("experiments = %d, want 9 (table2 + fig6..fig13)", len(exps))
	}
	for _, e := range exps {
		if e.Run == nil || e.ID == "" || e.Description == "" {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
	}
	if _, err := ByID("table2"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestEmlConfigClampsOptical(t *testing.T) {
	cfg := emlConfig(4, 8)
	if cfg.Modules != 4 || cfg.TrapCapacity != 8 {
		t.Errorf("emlConfig = %+v", cfg)
	}
	d, err := arch.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range d.OpticalZones() {
		if d.Zone(z).Capacity > 8 {
			t.Errorf("optical capacity %d exceeds trap capacity 8", d.Zone(z).Capacity)
		}
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	// Re-derive one Table 2 row and check the paper's ordering: MUSS-TI
	// fewest shuttles, MQT most.
	app := "SQRT_n30"
	rows, cols, capacity := 2, 3, 8
	ours, err := RunMussti(MusstiSpec{App: app, Grid: arch.MustNewGrid(rows, cols, capacity), Opts: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	get := func(a baseline.Algorithm) Measurement {
		m, err := RunBaseline(BaselineSpec{App: app, Algorithm: a, Rows: rows, Cols: cols, Capacity: capacity})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mur, dai, mqt := get(baseline.Murali), get(baseline.Dai), get(baseline.MQT)
	if !(ours.Shuttles <= dai.Shuttles && dai.Shuttles <= mur.Shuttles && mur.Shuttles < mqt.Shuttles) {
		t.Errorf("shuttle ordering broken: ours=%d dai=%d murali=%d mqt=%d",
			ours.Shuttles, dai.Shuttles, mur.Shuttles, mqt.Shuttles)
	}
	if ours.Log10F < mqt.Log10F {
		t.Errorf("MUSS-TI fidelity below MQT: %v vs %v", ours.Log10F, mqt.Log10F)
	}
}

func TestTable2Runs(t *testing.T) {
	out, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Grid 2x2", "Grid 2x3", "Adder_n32", "SQRT_n30"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestFig6SmallRuns(t *testing.T) {
	out, err := Fig6("small")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Small Scale") || strings.Contains(out, "Middle Scale") {
		t.Errorf("scale filter broken:\n%s", out)
	}
	if !strings.Contains(out, "average shuttle reduction") {
		t.Error("summary line missing")
	}
}

func TestFig11Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 runs 128-qubit compiles")
	}
	out, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SQRT_n128", "BV_n128", "Trivial", "SABRE+SWAP"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig11 output missing %q", want)
		}
	}
}

func TestIdealParams(t *testing.T) {
	p := idealParams(true, false)
	if !p.PerfectGates || p.PerfectShuttle {
		t.Error("idealParams(gates) wrong")
	}
	p = idealParams(false, true)
	if p.PerfectGates || !p.PerfectShuttle {
		t.Error("idealParams(shuttle) wrong")
	}
}

func TestMean(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean(nil) != 0")
	}
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}
