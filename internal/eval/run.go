// Package eval is the experiment harness: it runs application × device ×
// compiler combinations and regenerates every table and figure of the
// MUSS-TI evaluation (§5) as text rows. Each experiment has a function
// returning structured results plus a formatter, so both the CLI
// (cmd/experiments) and the benchmark suite (bench_test.go) share one
// implementation.
package eval

import (
	"context"
	"fmt"
	"time"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
	"mussti/internal/physics"
)

// Measurement is one (application, compiler, device) data point.
type Measurement struct {
	App      string
	Compiler string
	Qubits   int
	TwoQubit int

	Shuttles      int
	ChainSwaps    int
	InsertedSwaps int
	FiberGates    int
	TimeUS        float64
	Fidelity      float64 // linear; underflows to 0 exactly like the paper
	Log10F        float64
	CompileTime   time.Duration
}

// MusstiSpec describes a MUSS-TI run: either on an EML-QCCD device built
// from Config (the default), or directly on a standard QCCD grid when Grid
// is set (Table 2 / Fig. 6 small scale apply MUSS-TI "on these standard
// QCCD structures").
type MusstiSpec struct {
	App    string
	Config arch.Config
	Grid   *arch.Grid
	Opts   core.Options
}

// RunMussti compiles one application with MUSS-TI and packages the metrics.
// It is RunMusstiContext with a background context.
func RunMussti(spec MusstiSpec) (Measurement, error) {
	return RunMusstiContext(context.Background(), spec)
}

// RunMusstiContext is RunMussti with cooperative cancellation: ctx aborts
// the compile mid-flight within one scheduler step.
func RunMusstiContext(ctx context.Context, spec MusstiSpec) (Measurement, error) {
	c, err := bench.ByName(spec.App)
	if err != nil {
		return Measurement{}, err
	}
	var d *arch.Device
	if spec.Grid != nil {
		d = spec.Grid.Device()
	} else {
		if spec.Config.Modules == 0 {
			spec.Config = arch.DefaultConfig(c.NumQubits)
		}
		d, err = arch.New(spec.Config)
		if err != nil {
			return Measurement{}, err
		}
	}
	res, err := core.CompileContext(ctx, c, d, spec.Opts)
	if err != nil {
		return Measurement{}, fmt.Errorf("eval: %s: %w", spec.App, err)
	}
	st := c.Stats()
	m := res.Metrics
	return Measurement{
		App:           spec.App,
		Compiler:      "MUSS-TI",
		Qubits:        c.NumQubits,
		TwoQubit:      st.TwoQubit,
		Shuttles:      m.Shuttles,
		ChainSwaps:    m.ChainSwaps,
		InsertedSwaps: m.InsertedSwaps,
		FiberGates:    m.FiberGates,
		TimeUS:        m.MakespanUS,
		Fidelity:      m.Fidelity.Value(),
		Log10F:        m.Fidelity.Log10(),
		CompileTime:   res.CompileTime,
	}, nil
}

// BaselineSpec describes a baseline run on the monolithic grid.
type BaselineSpec struct {
	App       string
	Algorithm baseline.Algorithm
	Rows      int
	Cols      int
	Capacity  int
	Opts      baseline.Options
}

// RunBaseline compiles one application with a grid baseline. It is
// RunBaselineContext with a background context.
func RunBaseline(spec BaselineSpec) (Measurement, error) {
	return RunBaselineContext(context.Background(), spec)
}

// RunBaselineContext is RunBaseline with cooperative cancellation.
func RunBaselineContext(ctx context.Context, spec BaselineSpec) (Measurement, error) {
	c, err := bench.ByName(spec.App)
	if err != nil {
		return Measurement{}, err
	}
	g, err := arch.NewGrid(spec.Rows, spec.Cols, spec.Capacity)
	if err != nil {
		return Measurement{}, err
	}
	res, err := baseline.CompileContext(ctx, spec.Algorithm, c, g, spec.Opts)
	if err != nil {
		return Measurement{}, fmt.Errorf("eval: %s/%s: %w", spec.App, spec.Algorithm, err)
	}
	st := c.Stats()
	m := res.Metrics
	return Measurement{
		App:         spec.App,
		Compiler:    spec.Algorithm.String(),
		Qubits:      c.NumQubits,
		TwoQubit:    st.TwoQubit,
		Shuttles:    m.Shuttles,
		ChainSwaps:  m.ChainSwaps,
		FiberGates:  m.FiberGates,
		TimeUS:      m.MakespanUS,
		Fidelity:    m.Fidelity.Value(),
		Log10F:      m.Fidelity.Log10(),
		CompileTime: res.CompileTime,
	}, nil
}

// emlConfig builds the EML-QCCD configuration MUSS-TI uses when the paper
// pins a module count and trap capacity (Table 2, Fig. 6): `modules`
// modules of the standard 2-storage/1-operation/1-optical layout.
func emlConfig(modules, capacity int) arch.Config {
	cfg := arch.DefaultConfig(0)
	cfg.Modules = modules
	cfg.TrapCapacity = capacity
	if cfg.OpticalCapacity > capacity {
		cfg.OpticalCapacity = capacity
	}
	return cfg
}

// idealParams returns Table-1 physics with the Fig. 13 idealisation
// switches applied.
func idealParams(perfectGates, perfectShuttle bool) physics.Params {
	p := physics.Default()
	p.PerfectGates = perfectGates
	p.PerfectShuttle = perfectShuttle
	return p
}
