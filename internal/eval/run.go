// Package eval is the experiment harness: it runs application × device ×
// compiler combinations and regenerates every table and figure of the
// MUSS-TI evaluation (§5) as text rows. Each experiment has a function
// returning structured results plus a formatter, so both the CLI
// (cmd/experiments) and the benchmark suite (bench_test.go) share one
// implementation.
//
// Compilers are resolved through the process-wide registry in internal/core:
// every CompileSpec names its compiler by registry name ("mussti", "murali",
// "dai", "mqt", or any out-of-tree registration), so registered compilers
// automatically flow through the experiments, the measurement cache and CSV
// output. Note the asymmetry: specs and cache keys carry the registry name,
// while the rendered Measurement.Compiler column carries the compiler's
// display label ("MUSS-TI", "QCCD-Dai", ...) — the paper's table labels.
package eval

import (
	"context"
	"fmt"
	"time"

	"mussti/internal/arch"
	"mussti/internal/baseline"
	"mussti/internal/circuit"
	"mussti/internal/circuit/bench"
	"mussti/internal/core"
	"mussti/internal/physics"
)

// Measurement is one (application, compiler, device) data point.
type Measurement struct {
	App      string
	Compiler string
	Qubits   int
	TwoQubit int

	Shuttles      int
	ChainSwaps    int
	InsertedSwaps int
	FiberGates    int
	TimeUS        float64
	Fidelity      float64 // linear; underflows to 0 exactly like the paper
	Log10F        float64
	CompileTime   time.Duration
}

// CompileSpec describes one measurement through the compiler registry:
// Compiler names a registered compiler, App the benchmark, and the machine
// is the Grid when set or an EML-QCCD device built from Arch otherwise. A
// fully zero Arch resolves to the paper's default configuration for the
// app's qubit count; a partially populated Arch must set Modules, or the
// spec errors (silently swapping in the defaults would measure the wrong
// machine). A nil Config means the compiler's own paper-default
// configuration.
type CompileSpec struct {
	App      string
	Compiler string
	Grid     *arch.Grid
	Arch     arch.Config
	Config   *core.CompileConfig
}

// target resolves the machine the spec compiles onto; numQubits sizes the
// default EML configuration when Arch is zero.
func (s CompileSpec) target(numQubits int) (arch.Target, error) {
	if s.Grid != nil {
		return s.Grid, nil
	}
	cfg := s.Arch
	if cfg == (arch.Config{}) {
		cfg = arch.DefaultConfig(numQubits)
	} else if cfg.Modules == 0 {
		return nil, fmt.Errorf("eval: %s/%s: partial Arch config %+v: set Modules, or leave the whole config zero for the paper default",
			s.App, s.Compiler, cfg)
	}
	return arch.New(cfg)
}

// config resolves the effective compile configuration: the spec's own when
// set, the compiler's default otherwise.
func (s CompileSpec) config(c core.Compiler) core.CompileConfig {
	if s.Config != nil {
		return *s.Config
	}
	return core.DefaultConfigFor(c)
}

// RunSpec compiles one measurement point through the compiler registry. It
// is RunSpecContext with a background context.
func RunSpec(spec CompileSpec) (Measurement, error) {
	return RunSpecContext(context.Background(), spec)
}

// RunSpecContext resolves spec.Compiler in the registry, builds the target
// machine, compiles, and packages the metrics as a Measurement whose
// Compiler column carries the compiler's display label. ctx aborts the
// compile mid-flight within one scheduler step.
func RunSpecContext(ctx context.Context, spec CompileSpec) (Measurement, error) {
	comp, err := core.LookupCompiler(spec.Compiler)
	if err != nil {
		return Measurement{}, err
	}
	c, err := bench.ByName(spec.App)
	if err != nil {
		return Measurement{}, err
	}
	target, err := spec.target(c.NumQubits)
	if err != nil {
		return Measurement{}, err
	}
	cfg := spec.config(comp)
	res, err := comp.Compile(ctx, c, target, &cfg)
	if err != nil {
		return Measurement{}, fmt.Errorf("eval: %s/%s: %w", spec.App, spec.Compiler, err)
	}
	return measurementFrom(spec, comp, c, res), nil
}

// measurementFrom packages one compile Result as the spec's Measurement
// row — the single conversion both the per-job path (RunSpecContext) and
// the batch path (runBatchUnit) go through, so the two can never drift.
func measurementFrom(spec CompileSpec, comp core.Compiler, c *circuit.Circuit, res *core.Result) Measurement {
	return MeasurementOf(spec.App, comp, c, res)
}

// MeasurementOf packages one compile Result as a Measurement row under the
// given application name — the same conversion every harness path uses,
// exported for callers that compile outside the registry spec path (the
// compilation service's ad-hoc QASM circuits).
func MeasurementOf(app string, comp core.Compiler, c *circuit.Circuit, res *core.Result) Measurement {
	st := c.Stats()
	m := res.Metrics
	return Measurement{
		App:           app,
		Compiler:      core.CompilerLabel(comp),
		Qubits:        c.NumQubits,
		TwoQubit:      st.TwoQubit,
		Shuttles:      m.Shuttles,
		ChainSwaps:    m.ChainSwaps,
		InsertedSwaps: m.InsertedSwaps,
		FiberGates:    m.FiberGates,
		TimeUS:        m.MakespanUS,
		Fidelity:      m.Fidelity.Value(),
		Log10F:        m.Fidelity.Log10(),
		CompileTime:   res.CompileTime,
	}
}

// MusstiSpec describes a MUSS-TI run: either on an EML-QCCD device built
// from Config (the default), or directly on a standard QCCD grid when Grid
// is set (Table 2 / Fig. 6 small scale apply MUSS-TI "on these standard
// QCCD structures").
//
// Deprecated: MusstiSpec is the pre-registry spec; it is converted to a
// CompileSpec with Compiler "mussti" internally. New code should build a
// CompileSpec.
type MusstiSpec struct {
	App    string
	Config arch.Config
	Grid   *arch.Grid
	Opts   core.Options
}

// spec lifts the legacy MUSS-TI spec into the unified CompileSpec. The
// legacy sentinel — any Config with Modules == 0 meant "the paper default",
// other fields ignored — is normalised to the zero Arch so legacy callers
// keep their documented behaviour (and their cache keys coincide with the
// equivalent zero-Arch registry specs).
func (s MusstiSpec) spec() CompileSpec {
	opts := s.Opts
	cfg := s.Config
	if cfg.Modules == 0 {
		cfg = arch.Config{}
	}
	return CompileSpec{App: s.App, Compiler: "mussti", Grid: s.Grid, Arch: cfg, Config: &opts}
}

// RunMussti compiles one application with MUSS-TI and packages the metrics.
// It is RunMusstiContext with a background context.
func RunMussti(spec MusstiSpec) (Measurement, error) {
	return RunMusstiContext(context.Background(), spec)
}

// RunMusstiContext is RunMussti with cooperative cancellation: ctx aborts
// the compile mid-flight within one scheduler step.
func RunMusstiContext(ctx context.Context, spec MusstiSpec) (Measurement, error) {
	return RunSpecContext(ctx, spec.spec())
}

// BaselineSpec describes a baseline run on the monolithic grid.
//
// Deprecated: BaselineSpec is the pre-registry spec; it is converted to a
// CompileSpec named after the algorithm internally. New code should build a
// CompileSpec.
type BaselineSpec struct {
	App       string
	Algorithm baseline.Algorithm
	Rows      int
	Cols      int
	Capacity  int
	Opts      baseline.Options
}

// spec lifts the legacy baseline spec into the unified CompileSpec. The
// grid construction can fail (that was RunBaseline's error path), so unlike
// MusstiSpec.spec this returns an error.
func (s BaselineSpec) spec() (CompileSpec, error) {
	name := s.Algorithm.RegistryName()
	if name == "" {
		return CompileSpec{}, fmt.Errorf("eval: unknown baseline algorithm %d", s.Algorithm)
	}
	g, err := arch.NewGrid(s.Rows, s.Cols, s.Capacity)
	if err != nil {
		return CompileSpec{}, err
	}
	cfg := s.Opts.Config()
	return CompileSpec{App: s.App, Compiler: name, Grid: g, Config: &cfg}, nil
}

// RunBaseline compiles one application with a grid baseline. It is
// RunBaselineContext with a background context.
func RunBaseline(spec BaselineSpec) (Measurement, error) {
	return RunBaselineContext(context.Background(), spec)
}

// RunBaselineContext is RunBaseline with cooperative cancellation.
func RunBaselineContext(ctx context.Context, spec BaselineSpec) (Measurement, error) {
	s, err := spec.spec()
	if err != nil {
		return Measurement{}, err
	}
	return RunSpecContext(ctx, s)
}

// emlConfig builds the EML-QCCD configuration MUSS-TI uses when the paper
// pins a module count and trap capacity (Table 2, Fig. 6): `modules`
// modules of the standard 2-storage/1-operation/1-optical layout.
func emlConfig(modules, capacity int) arch.Config {
	cfg := arch.DefaultConfig(0)
	cfg.Modules = modules
	cfg.TrapCapacity = capacity
	if cfg.OpticalCapacity > capacity {
		cfg.OpticalCapacity = capacity
	}
	return cfg
}

// idealParams returns Table-1 physics with the Fig. 13 idealisation
// switches applied.
func idealParams(perfectGates, perfectShuttle bool) physics.Params {
	p := physics.Default()
	p.PerfectGates = perfectGates
	p.PerfectShuttle = perfectShuttle
	return p
}
