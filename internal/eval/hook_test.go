package eval

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"mussti/internal/core"
)

// TestRunnerJobHook: the per-job hook must see one outcome per RunJob call —
// the first a compile (Cached=false), the repeat a cache hit — with the
// job's cache key attached and a non-negative wall-clock latency.
func TestRunnerJobHook(t *testing.T) {
	r := NewRunner(2)
	var mu sync.Mutex
	var outcomes []JobOutcome
	r.SetJobHook(func(o JobOutcome) {
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
	})
	job := Job{Mussti: &MusstiSpec{App: "GHZ_n32", Opts: core.DefaultOptions()}}
	for i := 0; i < 2; i++ {
		if _, err := r.RunJob(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	if len(outcomes) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(outcomes))
	}
	wantKey, ok := job.cacheKey()
	if !ok {
		t.Fatal("job unexpectedly uncacheable")
	}
	for i, o := range outcomes {
		if o.Key != wantKey {
			t.Errorf("outcome %d key = %q, want %q", i, o.Key, wantKey)
		}
		if o.Err != nil {
			t.Errorf("outcome %d err = %v", i, o.Err)
		}
		if o.Wall < 0 {
			t.Errorf("outcome %d wall = %v", i, o.Wall)
		}
	}
	if outcomes[0].Cached || !outcomes[1].Cached {
		t.Errorf("cached flags = %v/%v, want false/true", outcomes[0].Cached, outcomes[1].Cached)
	}
}

// TestRunKeyedCoalesces: RunKeyed calls sharing a key compute once per
// process — concurrent callers coalesce through the memo singleflight, later
// callers replay from memory — and errors surface per call.
func TestRunKeyedCoalesces(t *testing.T) {
	r := NewRunner(4)
	var calls int
	var mu sync.Mutex
	want := Measurement{App: "adhoc", Shuttles: 3}
	fn := func(ctx context.Context) (Measurement, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return want, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := r.RunKeyed(context.Background(), "adhoc-key", fn)
			if err != nil || m != want {
				t.Errorf("RunKeyed: m=%+v err=%v", m, err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("fn ran %d times across 8 keyed calls, want 1", calls)
	}
	// An empty key bypasses the cache entirely.
	if _, err := r.RunKeyed(context.Background(), "", fn); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("empty-key call should have recomputed: %d calls, want 2", calls)
	}
}

// TestRunKeyedDiskPersistence: a keyed result computed by one runner must be
// served from a shared disk cache by a second runner (a fresh process in the
// service-restart scenario) without recomputing.
func TestRunKeyedDiskPersistence(t *testing.T) {
	dc, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := NewRunner(1)
	first.SetDiskCache(dc)
	want := Measurement{App: "adhoc", Shuttles: 9}
	if _, err := first.RunKeyed(context.Background(), "persist-key", func(ctx context.Context) (Measurement, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}

	second := NewRunner(1)
	second.SetDiskCache(dc)
	m, err := second.RunKeyed(context.Background(), "persist-key", func(ctx context.Context) (Measurement, error) {
		return Measurement{}, fmt.Errorf("must not recompute")
	})
	if err != nil || m != want {
		t.Fatalf("disk-served RunKeyed: m=%+v err=%v", m, err)
	}
	if hits, _ := dc.Stats(); hits != 1 {
		t.Errorf("disk hits = %d, want 1", hits)
	}
}
