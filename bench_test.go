// Benchmark harness: one testing.B benchmark per table and figure of the
// MUSS-TI paper. Each benchmark regenerates the corresponding experiment;
// run the full evaluation with
//
//	go test -bench=. -benchmem
//
// or a single artefact with e.g. -bench=BenchmarkFig7. The experiments
// print nothing here; cmd/experiments renders the same rows as text.
package mussti_test

import (
	"context"
	"sync"
	"testing"

	"mussti"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := mussti.RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the small-scale suite on Grid 2x2
// (capacity 12) and Grid 2x3 (capacity 8) under all four compilers.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig6 regenerates Fig. 6: the small/medium/large architectural
// comparison (shuttles, execution time, fidelity) of MUSS-TI vs the Dai and
// Murali grid compilers.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Fig. 7: the EML-QCCD trap-capacity sweep
// (12–20) against final fidelity.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Fig. 8: the ablation of compilation techniques
// (Trivial / SWAP Insert / SABRE / SABRE+SWAP Insert).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9: the look-ahead-window sweep k ∈ {4..12}.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10: compilation-time scalability from
// ~128 to ~300 qubits for Adder/BV/GHZ/QAOA.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11: the compilation-time vs fidelity
// trade-off of the four technique combinations.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12: one vs two entanglement zones on the
// large-scale applications.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Fig. 13: the optimality analysis against the
// perfect-gate and perfect-shuttle idealisations.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkLRU regenerates the extension study backing §3.2's claim that
// the LRU replacement scheduler is near-optimal (vs FIFO/random/Belady).
func BenchmarkLRU(b *testing.B) { benchExperiment(b, "lru") }

// BenchmarkPorts regenerates the optical-port-limit extension sweep
// quantifying §2.2's "minimal number of optical ports" design pressure.
func BenchmarkPorts(b *testing.B) { benchExperiment(b, "ports") }

// BenchmarkRouting regenerates the routing look-ahead ablation (the
// attraction term this implementation adds to the multi-level rule).
func BenchmarkRouting(b *testing.B) { benchExperiment(b, "routing") }

// suiteIDs is the multi-experiment bundle behind the suite benchmarks: the
// three fastest experiments, together a few hundred independent
// measurements.
var suiteIDs = []string{"table2", "lru", "routing"}

// BenchmarkSuiteSequential runs the bundle strictly sequentially — the
// harness's behaviour before the concurrent runner existed (modulo the
// benchmark-circuit cache, which both paths share).
func BenchmarkSuiteSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range suiteIDs {
			if _, err := mussti.RunExperimentContext(context.Background(), id, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSuiteParallel runs the same bundle with the experiments launched
// concurrently over one shared GOMAXPROCS-sized runner, the cmd/experiments
// all-mode configuration. Compare against BenchmarkSuiteSequential for the
// wall-clock speedup; on a single-core machine the two coincide.
func BenchmarkSuiteParallel(b *testing.B) {
	r := mussti.NewRunner(0)
	for i := 0; i < b.N; i++ {
		errs := make([]error, len(suiteIDs))
		var wg sync.WaitGroup
		for j, id := range suiteIDs {
			wg.Add(1)
			go func(j int, id string) {
				defer wg.Done()
				_, errs[j] = mussti.RunExperimentContext(context.Background(), id, r)
			}(j, id)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompileQFT32 measures the compiler itself on the densest small
// benchmark (the unit of work behind every table cell).
func BenchmarkCompileQFT32(b *testing.B) {
	c := mussti.Benchmark("QFT_n32")
	dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mussti.Compile(c, dev, mussti.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileSQRT299 measures the compiler on the largest benchmark
// (the Fig. 10 worst case).
func BenchmarkCompileSQRT299(b *testing.B) {
	c := mussti.Benchmark("SQRT_n299")
	dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mussti.Compile(c, dev, mussti.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDAGBuild measures dependency-graph construction (§3.1, O(g)).
func BenchmarkDAGBuild(b *testing.B) {
	c := mussti.Benchmark("SQRT_n299")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(c.TwoQubitGates()); got == 0 {
			b.Fatal("no gates")
		}
	}
}
