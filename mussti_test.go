package mussti_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"mussti"
)

func TestPublicQuickstartFlow(t *testing.T) {
	c := mussti.Benchmark("QFT_n32")
	dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
	res, err := mussti.Compile(c, dev, mussti.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Gates2+res.Metrics.FiberGates == 0 {
		t.Error("no gates executed")
	}
	if res.Metrics.Fidelity.Log10() >= 0 {
		t.Error("fidelity not accumulated")
	}
}

func TestPublicCircuitConstruction(t *testing.T) {
	c := mussti.NewCircuit("bell", 2)
	c.H(0)
	c.CX(0, 1)
	c.Measure(0)
	c.Measure(1)
	dev := mussti.NewDevice(mussti.DeviceConfigFor(2))
	res, err := mussti.Compile(c, dev, mussti.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Gates2 != 1 {
		t.Errorf("gates2 = %d, want 1", res.Metrics.Gates2)
	}
}

func TestPublicQASM(t *testing.T) {
	src := "qreg q[2];\nh q[0];\ncx q[0],q[1];\n"
	c, err := mussti.ParseQASM("bell", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 || len(c.Gates) != 2 {
		t.Errorf("parsed %d qubits %d gates", c.NumQubits, len(c.Gates))
	}
}

func TestPublicBaselines(t *testing.T) {
	c := mussti.Benchmark("BV_n32")
	g, err := mussti.NewGrid(2, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []mussti.BaselineAlgorithm{mussti.BaselineMurali, mussti.BaselineDai, mussti.BaselineMQT} {
		res, err := mussti.CompileBaseline(algo, c, g, mussti.BaselineOptions{})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Metrics.Gates2 == 0 {
			t.Errorf("%v executed no gates", algo)
		}
	}
}

func TestPublicBenchmarkHelpers(t *testing.T) {
	if len(mussti.BenchmarkFamilies()) != 14 {
		t.Errorf("families = %v", mussti.BenchmarkFamilies())
	}
	if _, err := mussti.BenchmarkByName("GHZ_n8"); err != nil {
		t.Error(err)
	}
	if _, err := mussti.BenchmarkByName("bogus"); err == nil {
		t.Error("bogus benchmark accepted")
	}
}

func TestPublicExperimentList(t *testing.T) {
	exps := mussti.ExperimentList()
	if len(exps) != 12 {
		t.Fatalf("experiments = %d, want 12 (9 paper + 3 extensions)", len(exps))
	}
	if _, err := mussti.RunExperiment("does-not-exist"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPublicRunExperimentContext(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short")
	}
	seq, err := mussti.RunExperimentContext(context.Background(), "table2", nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mussti.RunExperimentContext(context.Background(), "table2", mussti.NewRunner(4))
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Error("parallel table2 differs from sequential")
	}
	if !strings.Contains(par, "Table 2") {
		t.Error("table2 output malformed")
	}
}

func TestPublicPhysicsDefaults(t *testing.T) {
	p := mussti.DefaultPhysics()
	if p.FiberTimeUS != 200 || p.Gate2TimeUS != 40 {
		t.Errorf("physics defaults off: %+v", p)
	}
}

func TestPublicDeviceLevels(t *testing.T) {
	dev := mussti.NewDevice(mussti.DeviceConfigFor(32))
	if len(dev.OpticalZones()) == 0 {
		t.Error("device has no optical zones")
	}
	if mussti.LevelOptical <= mussti.LevelStorage {
		t.Error("level ordering broken")
	}
}

// tickObserver counts public-API observer callbacks.
type tickObserver struct{ gates, moves int }

func (o *tickObserver) GateScheduled(done, total int) { o.gates = done }
func (o *tickObserver) Shuttle(q, from, to int)       { o.moves++ }
func (o *tickObserver) Eviction(victim, from, to int) { o.moves++ }
func (o *tickObserver) SwapInserted(a, b int)         {}

func TestPublicCompileContextAndObserver(t *testing.T) {
	c := mussti.Benchmark("QFT_n32")
	dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mussti.CompileContext(cancelled, c, dev, mussti.DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	obs := &tickObserver{}
	opts := mussti.DefaultOptions()
	opts.Observer = obs
	if _, err := mussti.CompileContext(context.Background(), c, dev, opts); err != nil {
		t.Fatal(err)
	}
	if obs.gates == 0 {
		t.Error("observer saw no gates")
	}

	g, err := mussti.NewGrid(2, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mussti.CompileBaselineContext(cancelled, mussti.BaselineDai, c, g, mussti.BaselineOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("baseline err = %v, want context.Canceled", err)
	}
}

func TestPublicRunExperimentCollectCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short")
	}
	out, ms, err := mussti.RunExperimentCollect(context.Background(), "table2", mussti.NewRunner(4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 2") {
		t.Error("table2 output malformed")
	}
	if len(ms) == 0 {
		t.Fatal("no measurements collected")
	}
	var buf bytes.Buffer
	if err := mussti.WriteMeasurementsCSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(ms)+1 {
		t.Errorf("csv has %d lines, want %d rows + header", lines, len(ms))
	}
}

func TestPublicCompilerRegistry(t *testing.T) {
	// The four built-ins resolve by name, in registration order.
	names := mussti.CompilerNames()
	if len(names) < 4 || names[0] != "mussti" || names[1] != "murali" || names[2] != "dai" || names[3] != "mqt" {
		t.Fatalf("CompilerNames() = %v, want [mussti murali dai mqt ...]", names)
	}
	c := mussti.Benchmark("GHZ_n32")
	g, err := mussti.NewGrid(2, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mussti", "murali", "dai", "mqt"} {
		comp, err := mussti.LookupCompiler(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := comp.Compile(context.Background(), c, g, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Metrics.Gates2+res.Metrics.FiberGates == 0 {
			t.Errorf("%s: no gates executed", name)
		}
	}
	if _, err := mussti.LookupCompiler("nope"); err == nil {
		t.Error("unknown compiler resolved")
	}
}

func TestPublicCompileConfigOptions(t *testing.T) {
	cfg := mussti.NewCompileConfig(mussti.WithLookAhead(6), mussti.WithMapping(mussti.MappingTrivial))
	if cfg.LookAhead != 6 || cfg.Mapping != mussti.MappingTrivial || !cfg.SwapInsertion {
		t.Errorf("functional options misapplied: %+v", cfg)
	}
	// The unified config drives the registry path end to end.
	comp, err := mussti.LookupCompiler("mussti")
	if err != nil {
		t.Fatal(err)
	}
	c := mussti.Benchmark("GHZ_n32")
	dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
	if _, err := comp.Compile(context.Background(), c, dev, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRunExperimentWith(t *testing.T) {
	out, ms, err := mussti.RunExperimentWith(context.Background(), "table2", nil, []string{"mussti"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ShutOurs") || strings.Contains(out, "Shut[55]") {
		t.Errorf("compiler restriction not applied:\n%s", out)
	}
	for _, m := range ms {
		if m.Compiler != "MUSS-TI" {
			t.Errorf("unexpected compiler %q in measurements", m.Compiler)
		}
	}
}
