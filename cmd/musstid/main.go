// Command musstid serves the MUSS-TI compiler over HTTP+JSON. Clients POST
// circuits — built-in paper benchmarks by name, or inline OpenQASM 2.0 — to
// /v1/compile and receive the compiled measurement, optionally as a stream
// of progress events (NDJSON, or SSE when the request Accepts
// text/event-stream). Identical concurrent requests coalesce onto one
// compile, -cachedir persists measurements across restarts and replicas,
// and -dist moves the compiles into a spawned worker fleet.
//
//	go run ./cmd/musstid -addr :8080
//	curl -s localhost:8080/v1/compile -d '{"app":"QFT_n32"}'
//	curl -sN localhost:8080/v1/compile -d '{"app":"SQRT_n45","stream":true}'
//	curl -s localhost:8080/metrics
//
// Admission control bounds the footprint: at most -maxinflight requests
// compile concurrently, -maxqueue wait behind them, and the rest get 429.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mussti"
)

func main() { os.Exit(realMain()) }

// realMain is main with an exit code instead of os.Exit calls, so deferred
// cleanup (fleet teardown, graceful shutdown) always runs.
func realMain() int {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	jobs := flag.Int("j", 0, "compile worker count (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "coalesce identical requests through the in-process measurement cache")
	batch := flag.Bool("batch", true, "group same-circuit jobs into shared-prep batch compiles; with -dist, also coalesce jobs into batched wire envelopes")
	cacheDir := flag.String("cachedir", "", "shared on-disk measurement cache directory: restarts, replicas and -dist fleets compile each point once, ever")
	distFlag := flag.String("dist", "", "compile in N spawned worker processes (\"auto\" sizes the fleet from NumCPU)")
	pipeline := flag.Int("pipeline", 0, "jobs kept in flight per -dist worker (0 = default window of 4; 1 = lockstep dispatch)")
	launcher := flag.String("launcher", "", "command prefix wrapping each -dist worker, e.g. \"ssh -o BatchMode=yes build-02\" (default: local processes)")
	maxInFlight := flag.Int("maxinflight", 0, "concurrent compile bound (0 = the worker count)")
	maxQueue := flag.Int("maxqueue", 0, "requests allowed to wait for a compile slot before 429 (0 = 4×maxinflight)")
	streamEvery := flag.Duration("stream-interval", 0, "progress-event cadence for streamed responses (0 = 500ms)")
	worker := flag.Bool("worker", false, "run as a distributed worker: read job envelopes on stdin, write measurement envelopes to stdout (what -dist spawns)")
	flag.Parse()

	// Flag mistakes fail up front, before anything listens or compiles.
	distN := 0
	switch {
	case *distFlag == "":
	case *distFlag == "auto":
		distN = runtime.NumCPU()
	default:
		n, err := strconv.Atoi(*distFlag)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "musstid: -dist wants a positive worker count or \"auto\", got %q\n", *distFlag)
			return 2
		}
		distN = n
	}
	if *pipeline < 0 {
		fmt.Fprintf(os.Stderr, "musstid: -pipeline wants a window of at least 1 (or 0 for the default), got %d\n", *pipeline)
		return 2
	}
	if distN == 0 && (*pipeline > 0 || *launcher != "") {
		fmt.Fprintln(os.Stderr, "musstid: -pipeline and -launcher need -dist")
		return 2
	}
	if *maxInFlight < 0 || *maxQueue < 0 {
		fmt.Fprintln(os.Stderr, "musstid: -maxinflight and -maxqueue must be non-negative")
		return 2
	}

	// Worker mode: this process is one member of another musstid's -dist
	// fleet. It speaks the job-envelope protocol on stdin/stdout and exits
	// when the coordinator closes the pipe.
	if *worker {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		r := mussti.NewRunner(1)
		if !*cache {
			r.DisableCache()
		}
		if !*batch {
			r.DisableBatching()
		}
		if *cacheDir != "" {
			dc, err := mussti.NewDiskCache(*cacheDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "musstid:", err)
				return 1
			}
			r.SetDiskCache(dc)
		}
		if err := mussti.ServeWorker(ctx, os.Stdin, os.Stdout, r); err != nil {
			fmt.Fprintln(os.Stderr, "musstid: worker:", err)
			return 1
		}
		return 0
	}

	workers := *jobs
	if distN > 0 {
		workers = distN
	}
	runner := mussti.NewRunner(workers)
	if !*cache {
		runner.DisableCache()
	}
	if !*batch {
		runner.DisableBatching()
	}
	var fleet *mussti.Coordinator
	if distN > 0 {
		// Fleet mode: compiles dispatch to spawned copies of this binary in
		// worker mode; the service's scheduling, coalescing and metrics stay
		// coordinator-side.
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "musstid: -dist:", err)
			return 1
		}
		argv := []string{exe, "-worker"}
		// -cache=false means "compile every request from scratch": workers
		// must not quietly serve stale measurements from the cache dir the
		// coordinator just promised to ignore.
		if *cacheDir != "" && *cache {
			argv = append(argv, "-cachedir", *cacheDir)
		}
		if !*batch {
			argv = append(argv, "-batch=false")
		}
		opts := &mussti.CoordinatorOptions{Pipeline: *pipeline, DisableCoalescing: !*batch}
		if *launcher != "" {
			opts.Launcher = mussti.CommandLauncher{Prefix: strings.Fields(*launcher)}
		}
		fleet, err = mussti.NewCoordinator(distN, argv, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "musstid: -dist:", err)
			return 1
		}
		defer fleet.Close()
		runner.SetRemote(fleet)
	}
	if *cacheDir != "" {
		if !*cache {
			fmt.Fprintln(os.Stderr, "musstid: -cachedir needs -cache")
			return 2
		}
		dc, err := mussti.NewDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "musstid:", err)
			return 1
		}
		runner.SetDiskCache(dc)
	}

	svc, err := mussti.NewService(mussti.ServiceOptions{
		Runner:         runner,
		Fleet:          fleet,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		StreamInterval: *streamEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstid:", err)
		return 1
	}

	// Interrupt triggers a graceful drain: the listener closes, in-flight
	// requests get a grace period (their compiles continue), then the
	// server's base context cancellation aborts whatever is still running.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     svc,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "musstid: listening on %s (workers=%d", *addr, runner.Workers())
		if distN > 0 {
			fmt.Fprintf(os.Stderr, ", fleet=%d", distN)
		}
		fmt.Fprintln(os.Stderr, ")")
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "musstid:", err)
		return 1
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "musstid: shutdown:", err)
		return 1
	}
	return 0
}
