// Command benchgen writes the repository's benchmark circuits as OpenQASM
// 2.0 files, so they can be fed to other toolchains (or back into musstic
// -qasm for a round trip).
//
//	benchgen -out ./qasm Adder_n32 QFT_n32 SQRT_n117
//	benchgen -out ./qasm -suite small
//	benchgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mussti"
)

func main() {
	out := flag.String("out", ".", "output directory")
	suite := flag.String("suite", "", "write a whole suite: small | medium | large")
	list := flag.Bool("list", false, "list benchmark families and exit")
	lower := flag.Bool("lower", false, "lower to the native gate set before writing")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(mussti.BenchmarkFamilies(), " "))
		return
	}

	names := flag.Args()
	switch *suite {
	case "":
	case "small":
		names = append(names, smallSuite...)
	case "medium":
		names = append(names, mediumSuite...)
	case "large":
		names = append(names, largeSuite...)
	default:
		fmt.Fprintf(os.Stderr, "benchgen: unknown suite %q (want small, medium or large)\n", *suite)
		os.Exit(2)
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgen: nothing to write; pass names (e.g. GHZ_n32) or -suite")
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	for _, name := range names {
		c, err := mussti.BenchmarkByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(2)
		}
		if *lower {
			c = mussti.OptimizeOneQubit(mussti.LowerToNative(c))
		}
		path := filepath.Join(*out, name+".qasm")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := c.WriteQASM(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		st := c.Stats()
		fmt.Printf("wrote %-28s %4d qubits  %5d gates (%d 2q)\n", path, st.Qubits, st.Gates, st.TwoQubit)
	}
}

// The paper's three suites, mirrored here so the tool stays dependency-free
// of internal packages.
var (
	smallSuite  = []string{"Adder_n32", "BV_n32", "QAOA_n32", "GHZ_n32", "QFT_n32", "SQRT_n30"}
	mediumSuite = []string{"Adder_n128", "BV_n128", "QAOA_n128", "GHZ_n128", "SQRT_n117"}
	largeSuite  = []string{"Adder_n256", "BV_n256", "QAOA_n256", "GHZ_n256", "RAN_n256", "SC_n274", "SQRT_n299"}
)
