// Command benchjson measures the compilation hot paths with
// testing.Benchmark and writes the results as JSON — the per-PR performance
// trajectory record committed as BENCH_compile.json at the repo root:
//
//	go run ./cmd/benchjson                  # rewrites BENCH_compile.json
//	go run ./cmd/benchjson -o -             # print to stdout
//
// The benchmarked units mirror the microbenchmarks under internal/... (one
// full compile, DAG construction, the frontier drain, one look-ahead window
// scan, one engine shuttle) so the committed trajectory and `go test -bench`
// agree on what is being measured.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"mussti"
	"mussti/internal/circuit/bench"
	"mussti/internal/dag"
	"mussti/internal/physics"
	"mussti/internal/sim"
)

type entry struct {
	// Name identifies the benchmarked unit, e.g. "compile/SQRT_n299".
	Name string `json:"name"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the usual -benchmem triple.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// NumCPU and GOMAXPROCS pin the parallelism this entry ran under, so
	// numbers from different machines (or a later -gomaxprocs run) are never
	// compared as if they were like for like. Recorded per entry because
	// GOMAXPROCS is mutable at runtime.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

type report struct {
	Tool       string  `json:"tool"`
	Go         string  `json:"go"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchmarks []entry `json:"benchmarks"`
}

func measure(name string, fn func(b *testing.B)) entry {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return entry{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
}

// compileBench compiles the named application on its default-sized EML
// device with the paper's headline options — the unit of work behind every
// table cell and the Fig. 10 compile-time curves.
func compileBench(app string) func(b *testing.B) {
	return func(b *testing.B) {
		c := bench.MustByName(app)
		dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mussti.Compile(c, dev, mussti.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// compileTrivialBench is compileBench with the trivial initial mapping: one
// scheduling pass instead of SABRE's four. The gap between this entry and
// compile/<app> is the mapping search's cost — the overhead the shared
// per-circuit prep (DAG + scheduler reuse across probe passes) trims.
func compileTrivialBench(app string) func(b *testing.B) {
	return func(b *testing.B) {
		c := bench.MustByName(app)
		dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
		opts := mussti.DefaultOptions()
		opts.Mapping = mussti.MappingTrivial
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mussti.Compile(c, dev, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// compileParallelBench is compileBench with intra-compile parallelism: the
// trivial production pass and the reverse-prep build overlap the SABRE
// chain. Compare against compile/<app> — the output is byte-identical, only
// the wall clock moves (and only when GOMAXPROCS grants real cores).
func compileParallelBench(app string, parallelism int) func(b *testing.B) {
	return func(b *testing.B) {
		c := bench.MustByName(app)
		dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
		opts := mussti.DefaultOptions()
		opts.Parallelism = parallelism
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mussti.Compile(c, dev, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// compileBatchBench compiles `variants` look-ahead sweeps of one circuit
// through CompileBatch: one shared prep, one bounded worker group. Compare
// ns/op against variants × compile/<app> to see the shared-prep and fan-out
// saving.
func compileBatchBench(app string, nvariants int) func(b *testing.B) {
	return func(b *testing.B) {
		c := bench.MustByName(app)
		dev := mussti.NewDevice(mussti.DeviceConfigFor(c.NumQubits))
		variants := make([]mussti.BatchVariant, nvariants)
		for i := range variants {
			variants[i] = mussti.BatchVariant{
				Target: dev,
				Config: mussti.NewCompileConfig(mussti.WithLookAhead(i + 1)),
			}
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mussti.CompileBatch(ctx, c, variants); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// distBench measures dispatch throughput through a two-worker fleet of
// re-executed benchjson processes in -worker mode, each job a trivial
// sub-millisecond compile with the worker's cache disabled (every envelope
// pays a real compile: the entry measures transport + compile, never memo
// hits). pipeline is the per-worker window: 1 is lockstep — one job on the
// wire per worker, the pre-pipelining shape — so ns/op(roundtrip) /
// ns/op(pipelined) is the multiplexing speedup in jobs/s. Concurrent
// submitters keep every window full; the coordinator coalesces their
// window-mates into batched envelopes exactly as a -dist experiment run
// would.
func distBench(pipeline int) func(b *testing.B) {
	return func(b *testing.B) {
		exe, err := os.Executable()
		if err != nil {
			b.Fatal(err)
		}
		coord, err := mussti.NewCoordinator(2, []string{exe, "-worker"},
			&mussti.CoordinatorOptions{Pipeline: pipeline})
		if err != nil {
			b.Fatal(err)
		}
		defer coord.Close()
		spec := mussti.CompileSpec{App: "GHZ_n32", Compiler: "mussti",
			Config: mussti.NewCompileConfig(mussti.WithMapping(mussti.MappingTrivial))}
		job := mussti.EvalJob{Spec: &spec}
		ctx := context.Background()
		// Absorb process start and first-compile warmup outside the timer.
		if _, err := coord.RunJob(ctx, job); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.SetParallelism(8) // 8×GOMAXPROCS submitters: windows stay full at any pipeline
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := coord.RunJob(ctx, job); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
}

func main() {
	out := flag.String("o", "BENCH_compile.json", `output path ("-" for stdout)`)
	maxprocs := flag.Int("gomaxprocs", 4, "GOMAXPROCS to measure at (the parallel entries need >1; 0 = leave the runtime default)")
	worker := flag.Bool("worker", false, "run as a dist worker process for the dist/* entries (spawned by benchjson itself, not for direct use)")
	flag.Parse()
	if *worker {
		r := mussti.NewRunner(1)
		r.DisableCache()
		if err := mussti.ServeWorker(context.Background(), os.Stdin, os.Stdout, r); err != nil {
			os.Exit(1)
		}
		return
	}
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	big := bench.MustByName("SQRT_n299")
	r := report{Tool: "benchjson", Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	r.Benchmarks = []entry{
		measure("compile/QFT_n32", compileBench("QFT_n32")),
		measure("compile/QFT_n32-trivialmap", compileTrivialBench("QFT_n32")),
		measure("compile/SQRT_n299", compileBench("SQRT_n299")),
		measure("compile-parallel/SQRT_n299", compileParallelBench("SQRT_n299", 2)),
		measure("compilebatch/QFT_n32x8", compileBatchBench("QFT_n32", 8)),
		measure("dist/roundtrip", distBench(1)),
		measure("dist/pipelined", distBench(4)),
		measure("dag/build/SQRT_n299", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if g := dag.Build(big); g.Done() {
					b.Fatal("empty graph")
				}
			}
		}),
		measure("dag/drain/SQRT_n299", func(b *testing.B) {
			g := dag.Build(big)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Reset()
				for !g.Done() {
					g.Execute(g.Frontier()[0])
				}
			}
		}),
		measure("dag/walkahead8/SQRT_n299", func(b *testing.B) {
			g := dag.Build(big)
			for g.Remaining() > len(g.Nodes)/2 {
				g.Execute(g.Frontier()[0])
			}
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				g.WalkAhead(8, func(_ int, n *dag.Node) { sink += n.ID })
			}
			_ = sink
		}),
		measure("sim/move", func(b *testing.B) {
			zones := []sim.ZoneInfo{
				{Capacity: 16, GateCapable: true, Module: 0},
				{Capacity: 16, GateCapable: true, Module: 0},
			}
			e := sim.NewEngine(zones, 16, physics.Default())
			for q := 0; q < 16; q++ {
				if err := e.Place(q, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Move whichever ion is mid-chain so every iteration pays
				// the same chain-swap cost (a fixed qubit would settle at
				// the chain tail and measure the swap-free best case).
				q := e.Chain(0)[8]
				if err := e.Move(q, 1, 100); err != nil {
					b.Fatal(err)
				}
				if err := e.Move(q, 0, 100); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}

	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(r.Benchmarks), *out)
}
