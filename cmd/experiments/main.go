// Command experiments regenerates the tables and figures of the MUSS-TI
// paper (MICRO 2025). Without flags it runs everything in paper order;
// -exp selects one ("table2", "fig6", ... "fig13"), -list enumerates them.
// Measurements fan out over a worker pool by default (-parallel=false for
// strictly sequential runs, -j to pin the worker count); the worker count
// never changes the rendered tables. fig10/fig11 report wall-clock compile
// times, so their own measurements always run serially — for faithful
// timing curves run them alone (-exp fig10) rather than in all mode, where
// concurrent neighbour experiments still compete for CPU.
//
//	go run ./cmd/experiments -exp table2
//	go run ./cmd/experiments -j 4          # full evaluation
//	go run ./cmd/experiments -parallel=false
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"mussti"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	parallel := flag.Bool("parallel", true, "fan measurements (and, in all-experiments mode, whole experiments) out over a worker pool")
	jobs := flag.Int("j", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, e := range mussti.ExperimentList() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	// Interrupt cancels the run between measurements: in-flight compiles
	// finish, queued ones are skipped, and the failure surfaces per
	// experiment. stop() runs as soon as the first signal lands so that a
	// second interrupt regains default handling and kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	var runner *mussti.Runner
	if *parallel {
		runner = mussti.NewRunner(*jobs)
	}

	// run renders one experiment with its banner and timing footer.
	run := func(e mussti.ExperimentInfo) (string, error) {
		start := time.Now()
		out, err := e.RunContext(ctx, runner)
		if err != nil {
			return "", fmt.Errorf("%s: %w", e.ID, err)
		}
		return fmt.Sprintf("== %s — %s ==\n\n%s(completed in %s)\n\n",
			e.ID, e.Description, out, time.Since(start).Round(time.Millisecond)), nil
	}

	if *exp != "" {
		for _, e := range mussti.ExperimentList() {
			if e.ID != *exp {
				continue
			}
			out, err := run(e)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Print(out)
			return
		}
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}

	// All-experiments mode: every experiment runs even when earlier ones
	// fail; failures print as they surface and the process exits non-zero
	// at the end. With a runner, experiments execute concurrently — their
	// measurements share the runner's global worker budget — while output
	// still prints in paper order.
	exps := mussti.ExperimentList()
	type result struct {
		out string
		err error
	}
	results := make([]chan result, len(exps))
	for i, e := range exps {
		results[i] = make(chan result, 1)
		if runner == nil {
			continue
		}
		go func(i int, e mussti.ExperimentInfo) {
			out, err := run(e)
			results[i] <- result{out, err}
		}(i, e)
	}
	failed := 0
	for i, e := range exps {
		var res result
		if runner == nil {
			res.out, res.err = run(e)
		} else {
			res = <-results[i]
		}
		if res.err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", res.err)
			failed++
			continue
		}
		fmt.Print(res.out)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed\n", failed, len(exps))
		os.Exit(1)
	}
}
