// Command experiments regenerates the tables and figures of the MUSS-TI
// paper (MICRO 2025). Without flags it runs everything in paper order;
// -exp selects one ("table2", "fig6", ... "fig13"), -list enumerates the
// registered compilers and the experiment IDs. -compilers=a,b restricts an
// experiment to a subset of the registered compilers — or widens it to an
// out-of-tree compiler registered via mussti.RegisterCompiler.
// Measurements fan out over a worker pool by default (-parallel=false for
// strictly sequential runs, -j to pin the worker count); the worker count
// never changes the rendered tables. Identical measurement points shared by
// several experiments compile once per process through the cross-experiment
// cache (-cache=false to disable it). fig10/fig11 report wall-clock compile
// times, so their own measurements always run serially and uncached — for
// faithful timing curves run them alone (-exp fig10) rather than in all
// mode, where concurrent neighbour experiments still compete for CPU.
//
//	go run ./cmd/experiments -exp table2
//	go run ./cmd/experiments -exp table2 -compilers=dai,mussti
//	go run ./cmd/experiments -j 4 -progress     # full evaluation, tick lines
//	go run ./cmd/experiments -csv results.csv   # structured rows to a file
//	go run ./cmd/experiments -parallel=false
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mussti"
)

func main() { os.Exit(realMain()) }

// realMain is main with an exit code instead of os.Exit calls, so the
// deferred profile writers (and any other cleanup) always run — os.Exit
// would skip them.
func realMain() int {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list registered compilers and experiment IDs, then exit")
	compilers := flag.String("compilers", "", "comma-separated registry names; experiments measure only these compilers (default: each experiment's paper set)")
	parallel := flag.Bool("parallel", true, "fan measurements (and, in all-experiments mode, whole experiments) out over a worker pool")
	jobs := flag.Int("j", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "dedupe identical measurement points across experiments (needs -parallel)")
	batch := flag.Bool("batch", true, "group same-circuit measurements into shared-prep batch compiles; with -dist, also coalesce jobs into batched wire envelopes (needs -parallel or -dist)")
	distFlag := flag.String("dist", "", "distribute measurements across N spawned worker processes (\"auto\" sizes the fleet from NumCPU; implies -parallel)")
	pipeline := flag.Int("pipeline", 0, "jobs kept in flight per -dist worker (0 = default window of 4; 1 = lockstep dispatch)")
	launcher := flag.String("launcher", "", "command prefix wrapping each -dist worker, e.g. \"ssh -o BatchMode=yes build-02\" (default: local processes)")
	worker := flag.Bool("worker", false, "run as a distributed worker: read job envelopes on stdin, write measurement envelopes to stdout (what -dist coordinators spawn)")
	cacheDir := flag.String("cachedir", "", "shared on-disk measurement cache directory: repeated runs and whole -dist fleets compile each point once, ever")
	progress := flag.Bool("progress", false, "print per-job progress tick lines to stderr (needs -parallel)")
	csvPath := flag.String("csv", "", "write every structured Measurement row to this CSV file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	flag.Parse()

	// -dist takes a worker count or "auto" (fleet sized from the machine's
	// CPU count); flag mistakes fail up front, before anything compiles.
	distN := 0
	switch {
	case *distFlag == "":
	case *distFlag == "auto":
		distN = runtime.NumCPU()
	default:
		n, err := strconv.Atoi(*distFlag)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: -dist wants a positive worker count or \"auto\", got %q\n", *distFlag)
			return 2
		}
		distN = n
	}
	if *pipeline < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -pipeline wants a window of at least 1 (or 0 for the default), got %d\n", *pipeline)
		return 2
	}
	if distN == 0 && (*pipeline > 0 || *launcher != "") {
		// A fleet flag without a fleet is a misread command line, not a
		// preference to ignore: fail like any other flag mistake.
		fmt.Fprintln(os.Stderr, "experiments: -pipeline and -launcher need -dist")
		return 2
	}

	// Profiling flags so perf work on the compilers is driven by pprof
	// rather than guesswork:
	//
	//	go run ./cmd/experiments -exp fig10 -parallel=false -cpuprofile cpu.out
	//	go tool pprof cpu.out
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			}
		}()
	}

	// Worker mode: the process is one member of a -dist fleet. It speaks
	// the job-envelope protocol on stdin/stdout and exits when the
	// coordinator closes the pipe. Jobs run through the same Runner path as
	// everywhere else, so the worker's own memoization and the shared
	// -cachedir store apply.
	if *worker {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		r := mussti.NewRunner(1)
		if !*cache {
			r.DisableCache()
		}
		if !*batch {
			r.DisableBatching()
		}
		if *cacheDir != "" {
			dc, err := mussti.NewDiskCache(*cacheDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 1
			}
			r.SetDiskCache(dc)
		}
		if *progress {
			r.SetProgress(os.Stderr)
		}
		if err := mussti.ServeWorker(ctx, os.Stdin, os.Stdout, r); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: worker:", err)
			return 1
		}
		return 0
	}

	if *list {
		fmt.Println("registered compilers:")
		for _, c := range mussti.Compilers() {
			fmt.Printf("  %-8s %s\n", c.Name(), mussti.CompilerLabel(c))
		}
		fmt.Println("\nexperiments:")
		for _, e := range mussti.ExperimentList() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		return 0
	}

	// -compilers validates up front, so a typo fails with the registry's
	// name list instead of surfacing mid-run from inside an experiment.
	var comps []string
	if *compilers != "" {
		for _, name := range strings.Split(*compilers, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := mussti.LookupCompiler(name); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 2
			}
			comps = append(comps, name)
		}
	}

	// Interrupt cancels the run mid-measurement: in-flight compiles abort
	// within one scheduler step, queued ones are skipped, and the failure
	// surfaces per experiment. stop() runs as soon as the first signal
	// lands so that a second interrupt regains default handling and kills
	// the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	var runner *mussti.Runner
	switch {
	case distN > 0:
		// Distributed mode: the runner's pool is sized to the fleet's
		// in-flight capacity and its jobs dispatch to spawned copies of this
		// binary in worker mode. Scheduling, dedup and paper-order
		// reassembly stay coordinator-side, so the rendered tables are
		// byte-identical to any other mode.
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -dist:", err)
			return 1
		}
		argv := []string{exe, "-worker"}
		// -cache=false means "compile every point from scratch": the workers
		// must not quietly serve stale measurements from the cache dir the
		// coordinator just promised to ignore.
		if *cacheDir != "" && *cache {
			argv = append(argv, "-cachedir", *cacheDir)
		}
		// -batch reaches the whole transport: with it off, the workers skip
		// shared-prep batch compiles AND the coordinator ships every job as
		// its own envelope instead of coalescing window-mates.
		if !*batch {
			argv = append(argv, "-batch=false")
		}
		opts := &mussti.CoordinatorOptions{Pipeline: *pipeline, DisableCoalescing: !*batch}
		if *launcher != "" {
			opts.Launcher = mussti.CommandLauncher{Prefix: strings.Fields(*launcher)}
		}
		coord, err := mussti.NewCoordinator(distN, argv, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -dist:", err)
			return 1
		}
		defer coord.Close()
		runner = mussti.NewRunner(distN)
		runner.SetRemote(coord)
		if !*cache {
			runner.DisableCache()
		}
		if *progress {
			runner.SetProgress(os.Stderr)
		}
	case *parallel:
		runner = mussti.NewRunner(*jobs)
		if !*cache {
			runner.DisableCache()
		}
		if !*batch {
			runner.DisableBatching()
		}
		if *progress {
			runner.SetProgress(os.Stderr)
		}
	default:
		if *progress || !*cache || !*batch {
			fmt.Fprintln(os.Stderr, "experiments: -progress, -cache and -batch need -parallel; ignoring")
		}
	}
	if *cacheDir != "" {
		switch {
		case runner == nil:
			fmt.Fprintln(os.Stderr, "experiments: -cachedir needs -parallel or -dist; ignoring")
		case !*cache:
			fmt.Fprintln(os.Stderr, "experiments: -cachedir needs -cache; ignoring")
		default:
			dc, err := mussti.NewDiskCache(*cacheDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 1
			}
			runner.SetDiskCache(dc)
		}
	}

	// run renders one experiment with its banner and timing footer, and
	// hands back its structured measurement rows for the CSV sink.
	run := func(e mussti.ExperimentInfo) (string, []mussti.Measurement, error) {
		start := time.Now() //mussti:allow=determinism wall-clock banner timing, not measured output
		out, ms, err := e.CollectWith(ctx, runner, comps)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		return fmt.Sprintf("== %s — %s ==\n\n%s(completed in %s)\n\n",
			e.ID, e.Description, out, time.Since(start).Round(time.Millisecond)), ms, nil //mussti:allow=determinism wall-clock banner timing, not measured output
	}

	var collected []mussti.Measurement
	// finish reports cache stats and flushes the CSV sink; it returns a
	// non-zero exit code when the CSV cannot be written.
	finish := func() int {
		if runner != nil {
			if hits, misses := runner.CacheStats(); hits > 0 {
				fmt.Fprintf(os.Stderr, "experiments: measurement cache served %d of %d points without compiling\n",
					hits, hits+misses)
			}
			// The disk line is the contract the CI dist-smoke job greps: a
			// second run against a warm -cachedir must report hits == total.
			if hits, misses := runner.DiskCacheStats(); hits+misses > 0 {
				fmt.Fprintf(os.Stderr, "experiments: disk cache served %d of %d points\n",
					hits, hits+misses)
			}
		}
		if *csvPath == "" {
			return 0
		}
		f, err := os.Create(*csvPath)
		if err == nil {
			err = mussti.WriteMeasurementsCSV(f, collected)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: writing csv:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d measurement rows to %s\n", len(collected), *csvPath)
		return 0
	}

	if *exp != "" {
		for _, e := range mussti.ExperimentList() {
			if e.ID != *exp {
				continue
			}
			out, ms, err := run(e)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 1
			}
			fmt.Print(out)
			collected = ms
			return finish()
		}
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; use -list\n", *exp)
		return 2
	}

	// All-experiments mode: every experiment runs even when earlier ones
	// fail; failures print as they surface and the process exits non-zero
	// at the end. With a runner, experiments execute concurrently — their
	// measurements share the runner's global worker budget and measurement
	// cache — while output (and the CSV rows) stay in paper order.
	exps := mussti.ExperimentList()
	type result struct {
		out string
		ms  []mussti.Measurement
		err error
	}
	results := make([]chan result, len(exps))
	for i, e := range exps {
		results[i] = make(chan result, 1)
		if runner == nil {
			continue
		}
		go func(i int, e mussti.ExperimentInfo) {
			out, ms, err := run(e)
			results[i] <- result{out, ms, err}
		}(i, e)
	}
	failed := 0
	for i, e := range exps {
		var res result
		if runner == nil {
			res.out, res.ms, res.err = run(e)
		} else {
			res = <-results[i]
		}
		if res.err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", res.err)
			failed++
			continue
		}
		fmt.Print(res.out)
		collected = append(collected, res.ms...)
	}
	code := finish()
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed\n", failed, len(exps))
		return 1
	}
	return code
}
