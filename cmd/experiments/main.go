// Command experiments regenerates the tables and figures of the MUSS-TI
// paper (MICRO 2025). Without flags it runs everything in paper order;
// -exp selects one ("table2", "fig6", ... "fig13"), -list enumerates them.
//
//	go run ./cmd/experiments -exp table2
//	go run ./cmd/experiments                # full evaluation (minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mussti"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range mussti.ExperimentList() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	run := func(e mussti.ExperimentInfo) error {
		start := time.Now()
		out, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("== %s — %s ==\n\n%s(completed in %s)\n\n", e.ID, e.Description, out, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *exp != "" {
		found := false
		for _, e := range mussti.ExperimentList() {
			if e.ID == *exp {
				found = true
				if err := run(e); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		return
	}

	for _, e := range mussti.ExperimentList() {
		if err := run(e); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
