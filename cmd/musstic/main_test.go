package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadCircuitFromBench(t *testing.T) {
	c, err := loadCircuit("GHZ_n8", "")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 8 {
		t.Errorf("qubits = %d, want 8", c.NumQubits)
	}
}

func TestLoadCircuitFromQASM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bell.qasm")
	src := "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit("", path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "bell" {
		t.Errorf("name = %q, want bell (from file stem)", c.Name)
	}
	if len(c.Gates) != 2 {
		t.Errorf("gates = %d, want 2", len(c.Gates))
	}
}

func TestLoadCircuitErrors(t *testing.T) {
	if _, err := loadCircuit("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadCircuit("GHZ_n8", "x.qasm"); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadCircuit("", "/does/not/exist.qasm"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := loadCircuit("Bogus_n8", ""); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
