// Command musstic compiles a single quantum circuit for an EML-QCCD device
// with the MUSS-TI scheduler and prints a compilation report.
//
// The circuit comes either from a named paper benchmark or an OpenQASM 2.0
// file (QASMBench subset):
//
//	musstic -bench QFT_n32
//	musstic -qasm adder.qasm -mapping trivial -no-swap-insert
//	musstic -bench SQRT_n117 -modules 8 -capacity 12 -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mussti"
)

func main() {
	var (
		benchName    = flag.String("bench", "", "paper benchmark name, e.g. QFT_n32 (see -families)")
		qasmPath     = flag.String("qasm", "", "OpenQASM 2.0 file to compile")
		families     = flag.Bool("families", false, "list benchmark families and exit")
		mapping      = flag.String("mapping", "sabre", "initial mapping: trivial | sabre")
		noSwapInsert = flag.Bool("no-swap-insert", false, "disable SWAP-gate insertion (§3.3)")
		lookAhead    = flag.Int("k", 8, "SWAP-insertion look-ahead window in DAG layers")
		threshold    = flag.Int("t", 4, "SWAP-insertion weight threshold")
		modules      = flag.Int("modules", 0, "module count (0 = sized for the circuit)")
		capacity     = flag.Int("capacity", 16, "trap capacity")
		opticalCap   = flag.Int("optical-capacity", 0, "optical-zone port capacity (0 = trap capacity)")
		opticalZones = flag.Int("optical-zones", 1, "optical zones per module")
		trace        = flag.Bool("trace", false, "print the op-level schedule")
		lower        = flag.Bool("lower", false, "lower to the native gate set (MS + rotations) and clean up 1q gates first")
		report       = flag.Bool("report", false, "print the per-zone activity report")
		scheduleOut  = flag.String("schedule-out", "", "write the schedule as JSON to this file")
		verify       = flag.Bool("verify", false, "independently re-verify the schedule before reporting")
	)
	flag.Parse()

	if *families {
		fmt.Println(strings.Join(mussti.BenchmarkFamilies(), " "))
		return
	}

	c, err := loadCircuit(*benchName, *qasmPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstic:", err)
		os.Exit(2)
	}
	if *lower {
		c = mussti.OptimizeOneQubit(mussti.LowerToNative(c))
	}

	cfg := mussti.DeviceConfigFor(c.NumQubits)
	if *modules > 0 {
		cfg.Modules = *modules
	}
	cfg.TrapCapacity = *capacity
	cfg.OpticalCapacity = *opticalCap
	cfg.OpticalZones = *opticalZones
	dev, err := mussti.NewDeviceErr(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstic:", err)
		os.Exit(2)
	}

	opts := mussti.DefaultOptions()
	switch strings.ToLower(*mapping) {
	case "trivial":
		opts.Mapping = mussti.MappingTrivial
	case "sabre":
		opts.Mapping = mussti.MappingSABRE
	default:
		fmt.Fprintf(os.Stderr, "musstic: unknown mapping %q (want trivial or sabre)\n", *mapping)
		os.Exit(2)
	}
	opts.SwapInsertion = !*noSwapInsert
	opts.LookAhead = *lookAhead
	opts.SwapThreshold = *threshold
	opts.Trace = *trace || *report || *scheduleOut != "" || *verify

	res, err := mussti.Compile(c, dev, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstic:", err)
		os.Exit(1)
	}

	st := c.Stats()
	fmt.Printf("circuit          %s (%d qubits, %d gates: %d 1q, %d 2q, depth %d)\n",
		c.Name, st.Qubits, st.Gates, st.OneQubit, st.TwoQubit, st.Depth)
	effOptical := cfg.OpticalCapacity
	if effOptical <= 0 || effOptical > cfg.TrapCapacity {
		effOptical = cfg.TrapCapacity
	}
	fmt.Printf("device           %d modules, trap capacity %d, optical %d×%d ports\n",
		cfg.Modules, cfg.TrapCapacity, cfg.OpticalZones, effOptical)
	fmt.Printf("options          mapping=%s swap-insert=%v k=%d T=%d\n",
		opts.Mapping, opts.SwapInsertion, opts.LookAhead, opts.SwapThreshold)
	m := res.Metrics
	fmt.Printf("shuttles         %d (+%d chain swaps)\n", m.Shuttles, m.ChainSwaps)
	fmt.Printf("fiber gates      %d (%d from inserted SWAPs)\n", m.FiberGates, 3*m.InsertedSwaps)
	fmt.Printf("execution time   %.0f µs\n", m.MakespanUS)
	fmt.Printf("fidelity         %.3g (log10 %.2f)\n", m.Fidelity.Value(), m.Fidelity.Log10())
	fmt.Printf("compile time     %s\n", res.CompileTime)

	if *verify {
		if err := mussti.VerifySchedule(c, dev, res.InitialMapping, res.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "musstic: schedule verification FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("verification     ok (occupancy, legality, program order, timing)")
	}

	if *report && res.Report != nil {
		fmt.Println()
		if err := res.Report.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "musstic:", err)
			os.Exit(1)
		}
	}

	if *scheduleOut != "" {
		f, err := os.Create(*scheduleOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "musstic:", err)
			os.Exit(1)
		}
		if err := mussti.WriteScheduleJSON(f, c.NumQubits, res.Trace); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "musstic:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "musstic:", err)
			os.Exit(1)
		}
		fmt.Printf("schedule written  %s (%d ops)\n", *scheduleOut, len(res.Trace))
	}

	if *trace {
		fmt.Println("\nschedule:")
		for _, op := range res.Trace {
			fmt.Printf("  t=%9.1f +%7.1f  %-9s q=%v zone=%d", op.StartUS, op.DurUS, op.Kind, op.Qubits, op.Zone)
			if op.ZoneB >= 0 {
				fmt.Printf(" zoneB=%d", op.ZoneB)
			}
			fmt.Println()
		}
	}
}

func loadCircuit(benchName, qasmPath string) (*mussti.Circuit, error) {
	switch {
	case benchName != "" && qasmPath != "":
		return nil, fmt.Errorf("use either -bench or -qasm, not both")
	case benchName != "":
		return mussti.BenchmarkByName(benchName)
	case qasmPath != "":
		f, err := os.Open(qasmPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		name := strings.TrimSuffix(filepath.Base(qasmPath), filepath.Ext(qasmPath))
		return mussti.ParseQASM(name, f)
	default:
		return nil, fmt.Errorf("need -bench NAME or -qasm FILE (try -families)")
	}
}
