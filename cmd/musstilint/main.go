// Command musstilint runs the repo-invariant lint suite (internal/analysis):
// determinism, ctxflow, hotalloc, wirecompat, leakcheck and sempair.
//
// Standalone, over package patterns:
//
//	go run ./cmd/musstilint ./...
//
// It exits 0 when the tree is clean, 1 when any diagnostic fires, 2 on load
// failure. With -list it prints the analyzers and their one-line docs.
//
// The compiler-feedback perf budget is a separate gate:
//
//	go run ./cmd/musstilint -budget       # diff the tree against perfbudget.json
//	go run ./cmd/musstilint -writebudget  # regenerate perfbudget.json
//
// -budget rebuilds the module with escape/inline/bounds diagnostics enabled,
// folds them onto every //mussti:hotpath and //mussti:inline function, and
// fails with a per-function diff when the committed perfbudget.json no
// longer matches. -writebudget commits the current verdicts, refusing if an
// //mussti:inline function is no longer inlinable.
//
// The command also speaks the `go vet -vettool` protocol (-V=full, -flags,
// and a *.cfg compilation-unit file), so the same binary plugs into the
// standard vet driver:
//
//	go build -o /tmp/musstilint ./cmd/musstilint
//	go vet -vettool=/tmp/musstilint ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"mussti/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("musstilint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	budget := fs.Bool("budget", false, "check the compiler-feedback perf budget against perfbudget.json")
	writeBudget := fs.Bool("writebudget", false, "regenerate perfbudget.json from the current tree")
	version := fs.String("V", "", "print version and exit (go vet protocol; use -V=full)")
	flagsJSON := fs.Bool("flags", false, "describe flags in JSON (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: musstilint [packages]   (or: -budget | -writebudget; under go vet: -V=full | -flags | unit.cfg)\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	switch {
	case *version != "":
		return printVersion(*version)
	case *flagsJSON:
		// None of the suite's analyzers takes flags; report an empty list.
		fmt.Println("[]")
		return 0
	case *list:
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	case *budget || *writeBudget:
		return runBudget(*writeBudget)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(rest)
}

// runStandalone loads packages from source via the go command and checks
// them all in-process.
func runStandalone(patterns []string) int {
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "musstilint: %s: %v\n", pkg.PkgPath, e)
			broken = true
		}
	}
	if broken {
		return 2
	}
	findings, err := analysis.Check(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// runBudget implements -budget and -writebudget: collect compiler facts
// over the whole module, fold them onto the annotated functions, and either
// diff against the committed perfbudget.json or regenerate it.
func runBudget(write bool) int {
	modroot, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	pkgs, err := analysis.Load(modroot, "./...")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "musstilint: %s: %v\n", pkg.PkgPath, e)
			return 2
		}
	}
	facts, err := analysis.CollectCompilerFacts(modroot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := analysis.ComputeBudget(modroot, pkgs, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	path := filepath.Join(modroot, analysis.BudgetFile)
	if write {
		if regress := res.InlineRegressions(); len(regress) > 0 {
			fmt.Fprintf(os.Stderr, "musstilint: refusing to write %s: //mussti:inline functions are not inlinable\n", analysis.BudgetFile)
			for _, d := range regress {
				fmt.Fprintf(os.Stderr, "\t%s: %s\n", d.Key, d.Message)
			}
			return 1
		}
		if err := analysis.WriteBudgetFile(path, res.Budget); err != nil {
			fmt.Fprintln(os.Stderr, "musstilint:", err)
			return 2
		}
		fmt.Printf("musstilint: wrote %s: %d functions budgeted (%s %s)\n",
			analysis.BudgetFile, len(res.Budget.Functions), res.Budget.Go, res.Budget.GOARCH)
		return 0
	}
	committed, err := analysis.ReadBudgetFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "musstilint: %v\n\trun `go run ./cmd/musstilint -writebudget` to create %s\n", err, analysis.BudgetFile)
		return 1
	}
	drifts := analysis.CheckBudget(committed, res)
	if len(drifts) == 0 {
		fmt.Printf("musstilint: perf budget holds: %d functions match %s\n", len(res.Budget.Functions), analysis.BudgetFile)
		return 0
	}
	if committed.Go != res.Budget.Go || committed.GOARCH != res.Budget.GOARCH {
		fmt.Fprintf(os.Stderr, "musstilint: note: budget written by %s/%s, checking with %s/%s — verdicts can differ across toolchains\n",
			committed.Go, committed.GOARCH, res.Budget.Go, res.Budget.GOARCH)
	}
	for _, d := range drifts {
		fmt.Fprintf(os.Stderr, "musstilint: budget drift: %s\n", d)
	}
	fmt.Fprintf(os.Stderr, "musstilint: %d budget drift(s); if intentional, run `go run ./cmd/musstilint -writebudget` and commit %s\n",
		len(drifts), analysis.BudgetFile)
	return 1
}

// moduleRoot locates the enclosing module via `go env GOMOD`.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module (go env GOMOD is empty)")
	}
	return filepath.Dir(gomod), nil
}

// vetConfig is the JSON compilation-unit description `go vet` hands a
// vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single compilation unit described by cfgFile.
// Type information for imports comes from cfg.PackageFile, exactly as the
// build system compiled it. The suite uses no cross-package facts, so the
// vetx output is an empty placeholder (the file must exist for the go
// command's caching).
func runVetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "musstilint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "musstilint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// The suite checks production code only — tests range over map-keyed
	// cases and time things freely. go vet hands us test variants of each
	// package too; dropping _test.go files makes vet mode agree with the
	// standalone loader (and leaves external test units empty, hence clean).
	files := cfg.GoFiles[:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	pkg := &analysis.Package{PkgPath: cfg.ImportPath, Fset: fset}
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "musstilint:", err)
			return 2
		}
		pkg.Files = append(pkg.Files, f)
	}
	imp := analysis.NewExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	var errs []error
	pkg.Types, pkg.Info, errs = analysis.TypeCheck(fset, cfg.ImportPath, pkg.Files, imp)
	if len(errs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "musstilint:", e)
		}
		return 2
	}
	findings, err := analysis.Check([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// printVersion implements -V=full: the go command caches vet results keyed
// by this line, so it must change whenever the tool's behavior does — the
// executable's own hash guarantees that.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Fprintf(os.Stderr, "musstilint: unsupported flag value: -V=%s (use -V=full)\n", mode)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	fmt.Printf("musstilint version devel buildID=%x\n", h.Sum(nil))
	return 0
}
