// Command musstilint runs the repo-invariant lint suite (internal/analysis):
// determinism, ctxflow, hotalloc and wirecompat.
//
// Standalone, over package patterns:
//
//	go run ./cmd/musstilint ./...
//
// It exits 0 when the tree is clean, 1 when any diagnostic fires, 2 on load
// failure. With -list it prints the analyzers and their one-line docs.
//
// The command also speaks the `go vet -vettool` protocol (-V=full, -flags,
// and a *.cfg compilation-unit file), so the same binary plugs into the
// standard vet driver:
//
//	go build -o /tmp/musstilint ./cmd/musstilint
//	go vet -vettool=/tmp/musstilint ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"mussti/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("musstilint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	version := fs.String("V", "", "print version and exit (go vet protocol; use -V=full)")
	flagsJSON := fs.Bool("flags", false, "describe flags in JSON (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: musstilint [packages]   (or, under go vet: -V=full | -flags | unit.cfg)\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	switch {
	case *version != "":
		return printVersion(*version)
	case *flagsJSON:
		// None of the suite's analyzers takes flags; report an empty list.
		fmt.Println("[]")
		return 0
	case *list:
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(rest)
}

// runStandalone loads packages from source via the go command and checks
// them all in-process.
func runStandalone(patterns []string) int {
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			fmt.Fprintf(os.Stderr, "musstilint: %s: %v\n", pkg.PkgPath, e)
			broken = true
		}
	}
	if broken {
		return 2
	}
	findings, err := analysis.Check(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the JSON compilation-unit description `go vet` hands a
// vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single compilation unit described by cfgFile.
// Type information for imports comes from cfg.PackageFile, exactly as the
// build system compiled it. The suite uses no cross-package facts, so the
// vetx output is an empty placeholder (the file must exist for the go
// command's caching).
func runVetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "musstilint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "musstilint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// The suite checks production code only — tests range over map-keyed
	// cases and time things freely. go vet hands us test variants of each
	// package too; dropping _test.go files makes vet mode agree with the
	// standalone loader (and leaves external test units empty, hence clean).
	files := cfg.GoFiles[:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	pkg := &analysis.Package{PkgPath: cfg.ImportPath, Fset: fset}
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "musstilint:", err)
			return 2
		}
		pkg.Files = append(pkg.Files, f)
	}
	imp := analysis.NewExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	var errs []error
	pkg.Types, pkg.Info, errs = analysis.TypeCheck(fset, cfg.ImportPath, pkg.Files, imp)
	if len(errs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "musstilint:", e)
		}
		return 2
	}
	findings, err := analysis.Check([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// printVersion implements -V=full: the go command caches vet results keyed
// by this line, so it must change whenever the tool's behavior does — the
// executable's own hash guarantees that.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Fprintf(os.Stderr, "musstilint: unsupported flag value: -V=%s (use -V=full)\n", mode)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "musstilint:", err)
		return 2
	}
	fmt.Printf("musstilint version devel buildID=%x\n", h.Sum(nil))
	return 0
}
